.PHONY: all test fmt smoke ci clean bench-json bench-gate fig8 farm farm-big profile fuzz-deep cache-clean

# Default on-disk binary store used by `cgra_tool compile/cache --cache`
# unless a different directory is passed.
CGRA_CACHE ?= .cgra-cache

all:
	dune build

test:
	dune runtest

# dune-file formatting only: the dependency contract excludes the
# ocamlformat binary, so (formatting (enabled_for dune)) scopes @fmt to
# what dune formats natively.
fmt:
	dune build @fmt

# End-to-end smoke: a traced Multi/Single run in both export formats
# (self-validated by the trace command) plus the fuzz harnesses.
smoke:
	dune build @smoke

ci: all fmt test smoke

# Regenerate the committed perf baselines at the repo root.  BENCH_micro
# rows carry a per-row "domains" field: the sequential rows are
# single-domain per-call latencies, and the "(paged, -j 4)" rows time the
# same compiles with the scheduler ladder raced across a 4-domain pool
# (clamped to physical cores).  BENCH_fig9 uses every core, so compare
# wall-clock only across hosts with the same CGRA_DOMAINS.
bench-json:
	dune build bench/main.exe
	dune exec bench/main.exe -- micro --json
	CGRA_DOMAINS=$$(nproc) dune exec bench/main.exe -- fig9 --json
	CGRA_DOMAINS=$$(nproc) dune exec bench/main.exe -- fig8 --json
	CGRA_DOMAINS=$$(nproc) dune exec bench/main.exe -- farm --json
	CGRA_DOMAINS=$$(nproc) dune exec bench/main.exe -- farm-big --json

# One-shot Fig. 8 regeneration: print every (fabric, page size) table
# and rewrite the gated BENCH_fig8.json quality rows (the per-fabric
# 4-PE-page geomeans; deterministic at seed 0, byte-identical at any -j).
fig8:
	dune build bench/main.exe
	CGRA_DOMAINS=$$(nproc) dune exec bench/main.exe -- fig8 --json

# Regenerate the farm serving load curve and rewrite the gated
# BENCH_farm.json rows (req/kcycle and latency quantiles at each
# offered load; deterministic at seed 0, byte-identical at any -j),
# then prove the fresh rows still gate against the committed baseline.
farm:
	dune build bench/main.exe
	CGRA_DOMAINS=$$(nproc) dune exec bench/main.exe -- farm --json
	dune exec bench/main.exe -- gate --check

# The at-scale harness: 24 mixed shards, 8 tenants, 10^4 requests
# through the epoch-stepped coordinator.  Rewrites BENCH_farm_big.json:
# quality rows at nominal load, the least-loaded/cost-aware overload
# pair, and the -j1/-j4 front-end simulation rate with the speedup row
# the gate holds to its machine-aware floor.
farm-big:
	dune build bench/main.exe
	CGRA_DOMAINS=$$(nproc) dune exec bench/main.exe -- farm-big --json
	dune exec bench/main.exe -- gate --check --farm-big

# Re-measure every bench family and compare each row against the
# committed baselines with per-row tolerances; non-zero exit on any
# regression.  --farm-big opts the at-scale fleet into the re-measured
# set.  `gate --check` (run by @smoke) only re-validates the committed
# files against themselves.
bench-gate:
	dune build bench/main.exe
	dune exec bench/main.exe -- gate --farm-big

# A profiled 16-thread Multi-mode run on the default 4x4: occupancy heatmap,
# row-bus contention, stall attribution, reshape accounting, latency
# quantiles.  Pass a JSONL trace through cgra_tool directly for
# post-hoc analysis: `cgra_tool profile trace.jsonl [--json]`.
profile:
	dune build bin/cgra_tool.exe
	dune exec bin/cgra_tool.exe -- profile --mode multi --threads 16

# Long fuzz across all cores: the corpus that caught the absolute-page
# indexing bugs, two orders of magnitude deeper than the @smoke run.
fuzz-deep:
	dune build bin/cgra_tool.exe
	CGRA_DOMAINS=$$(nproc) dune exec bin/cgra_tool.exe -- verify --fuzz 10000 --meld-fuzz 10000
	CGRA_DOMAINS=$$(nproc) dune exec bin/cgra_tool.exe -- farm --fuzz 500

# Drop stale/corrupt artifacts from the binary store, then report what
# survives.  `rm -rf $(CGRA_CACHE)` is the nuclear version.
cache-clean:
	dune build bin/cgra_tool.exe
	dune exec bin/cgra_tool.exe -- cache gc --cache $(CGRA_CACHE)
	dune exec bin/cgra_tool.exe -- cache stats --cache $(CGRA_CACHE)

clean:
	dune clean
