.PHONY: all test fmt smoke ci clean

all:
	dune build

test:
	dune runtest

# dune-file formatting only: the dependency contract excludes the
# ocamlformat binary, so (formatting (enabled_for dune)) scopes @fmt to
# what dune formats natively.
fmt:
	dune build @fmt

# End-to-end smoke: a traced Multi/Single run in both export formats
# (self-validated by the trace command) plus the fuzz harnesses.
smoke:
	dune build @smoke

ci: all fmt test smoke

clean:
	dune clean
