(* The motivation of Section IV, measured on real mappings — through the
   profiling layer (Cgra_prof) rather than ad-hoc arithmetic:

   1. a recurrence circuit bounds the II no matter how large the CGRA is
      (Fig. 3) — so a single kernel cannot use a big fabric; the per-PE
      utilization heatmap (Analyze.pe_heatmap) shows exactly which PEs
      sit idle;
   2. the IPC identity IPC = N * U_a: throughput is exactly proportional
      to average utilization;
   3. therefore utilization — and throughput — can only rise by running
      several kernels at once, which the trace-derived profile of a
      multithreaded run demonstrates directly.

   Run with:  dune exec examples/utilization_study.exe *)

open Cgra_arch
open Cgra_dfg
open Cgra_mapper

let ops_of g =
  List.length
    (List.filter
       (fun (n : Graph.node) -> match n.op with Op.Const _ -> false | _ -> true)
       (Graph.nodes g))

(* Mean of the per-PE occupancy matrix: the fabric-wide utilization this
   mapping can ever reach, routing hops included. *)
let mean_heat heat =
  let total = ref 0.0 and n = ref 0 in
  Array.iter
    (Array.iter (fun u ->
         total := !total +. u;
         incr n))
    heat;
  if !n = 0 then 0.0 else !total /. float_of_int !n

let render_heat heat =
  Array.iter
    (fun row ->
      print_string "     ";
      Array.iter (fun u -> Printf.printf " %4.0f%%" (100.0 *. u)) row;
      print_newline ())
    heat

let () =
  let sor = Cgra_kernels.Kernels.find_exn "sor" in
  Printf.printf "sor: %d ops, RecMII = %d (a 3-op recurrence circuit, distance 1)\n\n"
    (Graph.n_nodes sor.graph) (Analysis.rec_mii sor.graph);

  print_endline
    "1. Bigger fabrics do not help a recurrence-limited kernel (Fig. 3).\n\
    \   Per-PE utilization from the mapping itself (Cgra_prof.Analyze.pe_heatmap,\n\
    \   routing hops included):";
  List.iter
    (fun size ->
      let arch = Option.get (Cgra.standard ~size ~page_pes:4) in
      match Scheduler.map Scheduler.Unconstrained arch sor.graph with
      | Ok m ->
          let heat = Cgra_prof.Analyze.pe_heatmap m in
          Printf.printf "   %dx%d: II=%d, mean PE utilization %.1f%%\n" size size
            m.ii
            (100.0 *. mean_heat heat);
          if size = 4 then render_heat heat
      | Error e -> print_endline e)
    [ 4; 6; 8 ];

  print_endline "\n2. The IPC identity (Section IV): IPC = N x U_a.";
  let arch = Option.get (Cgra.standard ~size:8 ~page_pes:4) in
  let pes = Cgra.pe_count arch in
  let resident =
    List.filter_map
      (fun name ->
        let k = Cgra_kernels.Kernels.find_exn name in
        match Scheduler.map Scheduler.Paged arch k.graph with
        | Ok m -> Some (name, ops_of k.graph, m.ii)
        | Error _ -> None)
      [ "sor"; "mpeg"; "gsr"; "histeq" ]
  in
  let pairs = List.map (fun (_, ops, ii) -> (ops, ii)) resident in
  List.iter
    (fun (name, ops, ii) ->
      Printf.printf "   %-8s contributes IPC %.2f (utilization %.1f%%)\n" name
        (Cgra_core.Metrics.ipc_of_kernel ~ops ~ii)
        (100.0 *. Cgra_core.Metrics.utilization_of_kernel ~ops ~ii ~pes))
    resident;
  let ipc = Cgra_core.Metrics.aggregate_ipc pairs in
  let u_a =
    List.fold_left
      (fun acc (ops, ii) -> acc +. Cgra_core.Metrics.utilization_of_kernel ~ops ~ii ~pes)
      0.0 pairs
  in
  Printf.printf "   together: IPC %.2f = %d PEs x U_a %.3f (identity gap %.2e)\n" ipc
    pes u_a
    (Cgra_core.Metrics.ipc_identity_gap ~pes pairs);

  print_endline
    "\n3. Multithreading turns the idle pages into throughput.  One traced\n\
    \   8-thread Multi-mode run on the 4x4, profiled through Cgra_prof:";
  let arch4 = Option.get (Cgra.standard ~size:4 ~page_pes:4) in
  let suite =
    match Cgra_core.Binary.compile_suite arch4 with
    | Ok s -> s
    | Error e -> failwith e
  in
  let workload =
    Cgra_core.Workload.generate ~seed:0 ~n_threads:8 ~cgra_need:0.875 ~suite ()
  in
  let trace = Cgra_trace.Trace.make () in
  ignore
    (Cgra_core.Os_sim.run ~trace
       {
         Cgra_core.Os_sim.suite;
         threads = workload;
         total_pages = Cgra.n_pages arch4;
         mode = Cgra_core.Os_sim.Multi;
       });
  match Cgra_prof.Analyze.profile (Cgra_trace.Trace.events trace) with
  | Error e -> failwith e
  | Ok report ->
      let fabric =
        report.run.Cgra_prof.Analyze.makespan
        *. float_of_int report.run.Cgra_prof.Analyze.total_pages
      in
      let busy =
        List.fold_left
          (fun acc (r : Cgra_prof.Analyze.resident_heat) -> acc +. r.busy_total)
          0.0 report.residents
      in
      Printf.printf
        "   %d residents kept %.1f%% of the page-cycles busy over a %.0f-cycle\n\
        \   makespan — against %.1f%% for sor alone — which is where Fig. 9's\n\
        \   throughput improvements come from.\n"
        (List.length report.residents)
        (100.0 *. busy /. fabric)
        report.run.Cgra_prof.Analyze.makespan
        (let _, ops, ii = List.hd resident in
         100.0 *. Cgra_core.Metrics.utilization_of_kernel ~ops ~ii ~pes)
