(* A video-server scenario: the workload the paper's introduction
   motivates.  Four streams arrive at a 6x6 CGRA; each stream alternates
   host-CPU work (bitstream parsing) with accelerated kernels (mpeg motion
   compensation, yuv2rgb conversion, sobel-based deinterlacing).

   We run the same four threads on a single-threaded, non-preemptive CGRA
   and on the paper's multithreaded CGRA and compare completion times,
   utilization, and the number of PageMaster transformations the OS
   performed.

   Run with:  dune exec examples/video_server.exe *)

open Cgra_core

let () =
  let arch = Option.get (Cgra_arch.Cgra.standard ~size:6 ~page_pes:4) in
  let suite =
    match Binary.compile_suite arch with Ok s -> s | Error e -> failwith e
  in
  Printf.printf "compiled the kernel suite for a 6x6 CGRA (%d pages of 4 PEs)\n\n"
    (Cgra_arch.Cgra.n_pages arch);
  List.iter
    (fun (b : Binary.t) ->
      if List.mem b.name [ "mpeg"; "yuv2rgb"; "sobel" ] then
        Printf.printf "  %-8s II_base=%d  II_paged=%d  pages=%d\n" b.name
          (Binary.ii_base b) (Binary.ii_paged b) (Binary.pages_used b))
    suite;

  (* four streams; staggered arrival is modelled by leading CPU segments *)
  let stream id arrival =
    {
      Thread_model.id;
      segments =
        [
          Thread_model.Cpu (arrival + 50);
          Thread_model.Kernel { kernel = "mpeg"; iterations = 120 };
          Thread_model.Cpu 60;
          Thread_model.Kernel { kernel = "yuv2rgb"; iterations = 100 };
          Thread_model.Cpu 40;
          Thread_model.Kernel { kernel = "sobel"; iterations = 80 };
        ];
    }
  in
  let threads = [ stream 0 0; stream 1 40; stream 2 80; stream 3 120 ] in
  let run mode =
    Os_sim.run { suite; threads; total_pages = Cgra_arch.Cgra.n_pages arch; mode }
  in
  let single = run Os_sim.Single in
  let multi = run Os_sim.Multi in
  let show label (r : Os_sim.result_t) =
    Printf.printf
      "\n%s:\n  makespan %.0f cycles, CGRA IPC %.2f, page utilization %.1f%%\n\
      \  stalls %d, PageMaster transformations %d\n"
      label r.makespan r.ipc (100.0 *. r.page_utilization) r.stalls r.transformations;
    List.iter
      (fun (id, f) -> Printf.printf "  stream %d done at %.0f\n" id f)
      (List.sort compare r.finishes)
  in
  show "single-threaded CGRA (today's systems)" single;
  show "multithreaded CGRA (this paper)" multi;
  Printf.printf "\nthroughput improvement: %+.1f%%\n"
    (Os_sim.improvement_percent ~single ~multi);

  (* Re-run the multithreaded case with tracing on: the event stream
     shows the dynamics the aggregates hide — who waited how long, and
     every PageMaster reshape with its before/after page ranges. *)
  let trace = Cgra_trace.Trace.make () in
  let traced =
    Os_sim.run ~trace
      { suite; threads; total_pages = Cgra_arch.Cgra.n_pages arch;
        mode = Os_sim.Multi }
  in
  assert (traced = multi) (* tracing never changes the simulation *);
  let events = Cgra_trace.Trace.events trace in
  let ws = Cgra_trace.Replay.wait_statistics events in
  Printf.printf
    "\ntraced the multithreaded run: %d events\n\
    \  queue: %d waits served, mean %.0f cycles, max %.0f\n"
    (List.length events) ws.Cgra_trace.Replay.n ws.Cgra_trace.Replay.mean
    ws.Cgra_trace.Replay.max;
  List.iter
    (fun (e : Cgra_trace.Trace.event) ->
      match e.payload with
      | Cgra_trace.Trace.Reshape r ->
          Printf.printf "  t=%-6.0f PageMaster %s stream %d: pages [%d+%d] -> [%d+%d]\n"
            e.time
            (match r.kind with
            | Cgra_trace.Trace.Shrink -> "shrinks"
            | Cgra_trace.Trace.Expand -> "expands"
            | Cgra_trace.Trace.Move -> "moves")
            r.thread r.before.base r.before.len r.after.base r.after.len
      | _ -> ())
    events;
  let out = "video_server.trace.json" in
  let oc = open_out out in
  output_string oc (Cgra_trace.Export.chrome events);
  close_out oc;
  Printf.printf "\nwrote %s - load it at https://ui.perfetto.dev to see the\n\
                 streams' kernel slices, waits, and the allocated-pages track\n"
    out
