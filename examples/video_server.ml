(* A video-server scenario: the workload the paper's introduction
   motivates, served for real.  This example grew into the Cgra_farm
   subsystem (lib/farm) and is now a thin client of it: tenants submit
   mpeg / yuv2rgb / sobel requests against a mixed fleet of fabrics, the
   front end admits and routes them, and each shard's Os_sim engine
   multiplexes residents over its pages with PageMaster reshapes.

   Everything below is deterministic: virtual clock, seeded arrivals,
   byte-identical output at any CGRA_DOMAINS width.

   Run with:  dune exec examples/video_server.exe *)

open Cgra_farm

let () =
  let base = { Farm.default_params with n_requests = 100 } in
  Printf.printf
    "video serving on a mixed CGRA fleet (%s), %d tenants, kernels: %s\n"
    (String.concat ", "
       (List.map
          (fun (s : Farm.shard_spec) -> Printf.sprintf "%dx%d" s.size s.size)
          base.Farm.fleet))
    base.Farm.n_tenants
    (String.concat " / " (Array.to_list Farm.mix));

  (* the load curve: headroom, nominal, saturated *)
  List.iter
    (fun load ->
      match Farm.run { base with offered_load = load } with
      | Error e -> failwith e
      | Ok r ->
          print_newline ();
          print_string (Farm.render r))
    [ 0.5; 1.0; 4.0 ];

  (* one saturated run with tracing on: the farm_* stream shows each
     request's queued -> admitted -> resident -> retired spans, and each
     shard's OS stream shows the reshapes that made room for it *)
  match Farm.run ~traced:true { base with offered_load = 4.0 } with
  | Error e -> failwith e
  | Ok r ->
      let reshapes =
        List.fold_left
          (fun acc events ->
            acc
            + List.length
                (List.filter
                   (fun (e : Cgra_trace.Trace.event) ->
                     match e.Cgra_trace.Trace.payload with
                     | Cgra_trace.Trace.Reshape _ -> true
                     | _ -> false)
                   events))
          0 r.Farm.shard_events
      in
      Printf.printf
        "\ntraced the saturated run: %d farm events, %d PageMaster reshapes \
         across the fleet\n"
        (List.length r.Farm.farm_events)
        reshapes;
      let out = "video_server.trace.json" in
      let oc = open_out out in
      output_string oc (Cgra_trace.Export.chrome r.Farm.farm_events);
      close_out oc;
      Printf.printf
        "wrote %s - load it at https://ui.perfetto.dev to see each request's\n\
         queued / shard-resident spans on the farm track\n"
        out
