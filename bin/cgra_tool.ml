(* Command-line front end: explore kernels, map them, shrink schedules with
   the PageMaster transformation, simulate, and regenerate the paper's
   figures. *)

open Cmdliner
open Cgra_arch
open Cgra_dfg
open Cgra_mapper
open Cgra_core

(* ----- shared arguments ----- *)

let kernel_arg =
  let doc = "Kernel name (see the kernels command)." in
  Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~docv:"NAME" ~doc)

let size_arg =
  let doc = "CGRA size (4, 6, or 8 for a size x size mesh)." in
  Arg.(value & opt int 4 & info [ "s"; "size" ] ~docv:"N" ~doc)

let page_arg =
  let doc = "PEs per page (2, 4, or 8)." in
  Arg.(value & opt int 4 & info [ "p"; "page-size" ] ~docv:"PES" ~doc)

let seed_arg =
  let doc = "Random seed for the compiler and workloads." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let iters_arg =
  let doc = "Loop iterations to simulate." in
  Arg.(value & opt int 32 & info [ "i"; "iterations" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "Worker domains for the parallel sections (figure sweeps, fuzz corpora, \
     and the compiler's speculative II/attempt race).  Output is \
     byte-identical at any width.  Default: the $(b,CGRA_DOMAINS) \
     environment variable, or 1 (sequential)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "domains" ] ~docv:"N" ~doc)

let arch_of ~size ~page_pes =
  match Cgra.standard ~size ~page_pes with
  | Some a -> Ok a
  | None ->
      Error
        (Printf.sprintf
           "%dx%d with %d-PE pages is not a supported configuration (fewer than four \
            pages)"
           size size page_pes)

let kernel_of name =
  match Cgra_kernels.Kernels.find name with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown kernel %s (known: %s)" name
           (String.concat ", " Cgra_kernels.Kernels.names))

let or_die = function
  | Ok x -> x
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 1

(* ----- trace output helpers ----- *)

let write_file path data =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let trace_format ~format ~path =
  match format with
  | Some f -> f
  | None -> if Filename.check_suffix path ".jsonl" then `Jsonl else `Chrome

(* Serialize, self-validate with the project's own parser, and write. *)
let export_trace ~format ~path events =
  let fmt = trace_format ~format ~path in
  let data =
    match fmt with
    | `Jsonl -> Cgra_trace.Export.jsonl events
    | `Chrome -> Cgra_trace.Export.chrome events
  in
  (match fmt with
  | `Chrome -> (
      match Cgra_trace.Json.parse data with
      | Ok _ -> ()
      | Error e -> or_die (Error ("emitted Chrome trace is not valid JSON: " ^ e)))
  | `Jsonl ->
      List.iteri
        (fun i line ->
          if line <> "" then
            match Cgra_trace.Json.parse line with
            | Ok _ -> ()
            | Error e ->
                or_die
                  (Error (Printf.sprintf "emitted JSONL line %d is invalid: %s" (i + 1) e)))
        (String.split_on_char '\n' data));
  write_file path data;
  Printf.printf "wrote %s (%s, %d events, kinds: %s)\n" path
    (match fmt with
    | `Jsonl -> "JSONL"
    | `Chrome -> "Chrome trace_event; open in https://ui.perfetto.dev")
    (List.length events)
    (String.concat ", " (Cgra_trace.Export.kinds events))

let format_arg =
  let doc =
    "Trace file format: $(b,chrome) (Perfetto-loadable trace_event JSON) or \
     $(b,jsonl) (one event object per line).  Default: by file extension \
     ($(b,.jsonl) means jsonl, anything else chrome)."
  in
  Arg.(
    value
    & opt (some (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ])) None
    & info [ "format" ] ~docv:"FMT" ~doc)

(* ----- kernels ----- *)

let cmd_kernels =
  let run () =
    let header = [ "kernel"; "ops"; "edges"; "mem"; "RecMII"; "description" ] in
    let rows =
      List.map
        (fun (k : Cgra_kernels.Kernels.t) ->
          [
            k.name;
            string_of_int (Graph.n_nodes k.graph);
            string_of_int (Graph.n_edges k.graph);
            string_of_int (Graph.mem_node_count k.graph);
            string_of_int (Analysis.rec_mii k.graph);
            k.description;
          ])
        Cgra_kernels.Kernels.all
    in
    print_endline
      (Cgra_util.Table.render
         ~align:[ Cgra_util.Table.Left; Right; Right; Right; Right; Left ]
         ~header rows)
  in
  Cmd.v (Cmd.info "kernels" ~doc:"List the benchmark kernel suite.")
    Term.(const run $ const ())

(* ----- map ----- *)

let cmd_map =
  let run kernel size page_pes seed paged show stats domains trace_out format =
    let arch = or_die (arch_of ~size ~page_pes) in
    let k = or_die (kernel_of kernel) in
    let kind = if paged then Scheduler.Paged else Scheduler.Unconstrained in
    let trace =
      match trace_out with
      | None -> Cgra_trace.Trace.null
      | Some _ -> Cgra_trace.Trace.make ()
    in
    let m =
      Cgra_util.Pool.with_pool ?domains (fun pool ->
          or_die (Scheduler.map ~seed ~pool ~trace kind arch k.graph))
    in
    Format.printf "%a@." Mapping.pp_stats m;
    (match Mapping.validate m with
    | Ok () -> print_endline "validation: ok"
    | Error es -> List.iter (fun e -> print_endline ("VIOLATION: " ^ e)) es);
    if stats then begin
      print_newline ();
      print_string
        (Cgra_prof.Render.bus_pressure_text (Cgra_prof.Analyze.bus_pressure m))
    end;
    (match trace_out with
    | Some path -> export_trace ~format ~path (Cgra_trace.Trace.events trace)
    | None -> ());
    if show then begin
      Format.printf "@.%a" Mapping.pp m;
      Format.printf "@.page-level schedule:@.%a" Page_schedule.pp
        (Page_schedule.of_mapping m)
    end
  in
  let paged =
    Arg.(value & flag & info [ "paged" ] ~doc:"Apply the paging constraints.")
  in
  let show = Arg.(value & flag & info [ "show" ] ~doc:"Print the placement grids.") in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the mapping's exact per-(row, slot) memory-port demand \
             table — what the bandwidth-aware scheduler's cost model sees.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record the scheduler's speculative race (candidates launched, \
             cancelled, winner) to FILE.")
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Compile a kernel onto the CGRA and report II and placement.")
    Term.(
      const run $ kernel_arg $ size_arg $ page_arg $ seed_arg $ paged $ show
      $ stats $ domains_arg $ trace_out $ format_arg)

(* ----- shrink ----- *)

let cmd_shrink =
  let run kernel size page_pes seed target show domains =
    let arch = or_die (arch_of ~size ~page_pes) in
    let k = or_die (kernel_of kernel) in
    let m =
      Cgra_util.Pool.with_pool ?domains (fun pool ->
          or_die (Scheduler.map ~seed ~pool Scheduler.Paged arch k.graph))
    in
    Format.printf "original: %a@." Mapping.pp_stats m;
    let sh = or_die (Transform.fold ~target_pages:target m) in
    Format.printf "shrunk:   %a@." Mapping.pp_stats sh.mapping;
    Printf.printf "fold factor s = %d, II %d -> %d, PE-exact: %b\n" sh.s m.ii
      sh.mapping.ii sh.pe_exact;
    if sh.pe_exact then begin
      (match Mapping.validate ~check_mem:false sh.mapping with
      | Ok () -> print_endline "validation: ok"
      | Error es -> List.iter (fun e -> print_endline ("VIOLATION: " ^ e)) es);
      let mem = Cgra_kernels.Kernels.init_memory k in
      match Cgra_sim.Check.against_oracle sh.mapping mem ~iterations:32 with
      | Ok () -> print_endline "simulation vs oracle: bit-exact over 32 iterations"
      | Error es -> List.iter (fun e -> print_endline ("MISMATCH: " ^ e)) es
    end;
    if show then begin
      Format.printf "@.before:@.%a" Page_schedule.pp (Page_schedule.of_mapping m);
      Format.printf "@.after:@.%a" Page_schedule.pp
        (Page_schedule.of_mapping sh.mapping)
    end
  in
  let target =
    Arg.(
      required
      & opt (some int) None
      & info [ "m"; "target-pages" ] ~docv:"M" ~doc:"Pages to shrink to.")
  in
  let show = Arg.(value & flag & info [ "show" ] ~doc:"Print page schedules.") in
  Cmd.v
    (Cmd.info "shrink"
       ~doc:"Compile a kernel, then shrink it with the PageMaster transformation.")
    Term.(
      const run $ kernel_arg $ size_arg $ page_arg $ seed_arg $ target $ show
      $ domains_arg)

(* ----- simulate ----- *)

let cmd_simulate =
  let run kernel size page_pes seed paged iterations trace_out format domains =
    let arch = or_die (arch_of ~size ~page_pes) in
    let k = or_die (kernel_of kernel) in
    let kind = if paged then Scheduler.Paged else Scheduler.Unconstrained in
    let m =
      Cgra_util.Pool.with_pool ?domains (fun pool ->
          or_die (Scheduler.map ~seed ~pool kind arch k.graph))
    in
    let mem = Cgra_kernels.Kernels.init_memory k in
    let trace =
      match trace_out with
      | None -> Cgra_trace.Trace.null
      | Some _ -> Cgra_trace.Trace.make ()
    in
    let outcome = Cgra_sim.Check.against_oracle ~trace m mem ~iterations in
    (match trace_out with
    | Some path -> export_trace ~format ~path (Cgra_trace.Trace.events trace)
    | None -> ());
    match outcome with
    | Ok () ->
        Printf.printf
          "%s on %dx%d: %d iterations executed cycle-accurately, bit-exact vs the \
           sequential oracle (II=%d)\n"
          kernel size size iterations m.ii
    | Error es ->
        List.iter (fun e -> print_endline ("MISMATCH: " ^ e)) es;
        exit 1
  in
  let paged =
    Arg.(value & flag & info [ "paged" ] ~doc:"Use the paging-constrained compiler.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record the execution (spans, counters, violations) to FILE.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Execute a mapped kernel cycle-accurately and compare with the oracle.")
    Term.(
      const run $ kernel_arg $ size_arg $ page_arg $ seed_arg $ paged $ iters_arg
      $ trace_out $ format_arg $ domains_arg)

(* ----- trace ----- *)

(* ----- OS-run arguments (shared by trace and profile) ----- *)

let mode_arg =
  let doc = "OS mode: $(b,single) (baseline) or $(b,multi) (the paper's system)." in
  Arg.(
    value
    & opt (enum [ ("single", Os_sim.Single); ("multi", Os_sim.Multi) ]) Os_sim.Multi
    & info [ "mode" ] ~docv:"MODE" ~doc)

let threads_arg =
  Arg.(value & opt int 8 & info [ "threads" ] ~docv:"N" ~doc:"Thread count.")

let need_arg =
  Arg.(
    value & opt float 0.875
    & info [ "need" ] ~docv:"F" ~doc:"Fraction of time each thread wants the CGRA.")

let policy_arg =
  let doc =
    "Contention policy: $(b,halving) (the paper's), $(b,repack), or $(b,cost) \
     (reconfiguration-cost-aware halving)."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("halving", Allocator.Halving); ("repack", Allocator.Repack_equal);
             ("cost", Allocator.Cost_halving) ])
        Allocator.Halving
    & info [ "policy" ] ~docv:"POLICY" ~doc)

let reconfig_cost_arg =
  Arg.(
    value & opt float 0.0
    & info [ "reconfig-cost" ] ~docv:"CYCLES"
        ~doc:"Cycles of stalled progress charged per PageMaster reshape.")

let cmd_trace =
  let run size page_pes seed mode threads need policy reconfig_cost out format
      domains =
    let arch = or_die (arch_of ~size ~page_pes) in
    if threads < 1 then or_die (Error "--threads must be positive");
    if need <= 0.0 || need >= 1.0 then or_die (Error "--need must be in (0, 1)");
    if reconfig_cost < 0.0 then or_die (Error "--reconfig-cost must be >= 0");
    let suite =
      Cgra_util.Pool.with_pool ?domains (fun pool ->
          or_die (Binary.compile_suite ~seed ~pool arch))
    in
    let total_pages = Cgra.n_pages arch in
    let workload =
      Workload.generate ~seed ~n_threads:threads ~cgra_need:need ~suite ()
    in
    let trace = Cgra_trace.Trace.make () in
    let r =
      Os_sim.run ~policy ~reconfig_cost ~trace
        { Os_sim.suite; threads = workload; total_pages; mode }
    in
    let events = Cgra_trace.Trace.events trace in
    Printf.printf
      "%s mode on %dx%d (%d pages), %d threads, need %.3f, seed %d:\n\
      \  makespan %.0f cycles, ipc %.2f, page utilization %.2f, %d \
       transformations, %d stalls\n"
      (match mode with Os_sim.Single -> "single" | Os_sim.Multi -> "multi")
      size size total_pages threads need seed r.Os_sim.makespan r.Os_sim.ipc
      r.Os_sim.page_utilization r.Os_sim.transformations r.Os_sim.stalls;
    let ws = Cgra_trace.Replay.wait_statistics events in
    if ws.Cgra_trace.Replay.n > 0 then
      Printf.printf "  waits: %d served, mean %.0f cycles, p95 %.0f, max %.0f\n"
        ws.Cgra_trace.Replay.n ws.Cgra_trace.Replay.mean
        ws.Cgra_trace.Replay.p95 ws.Cgra_trace.Replay.max;
    (* the trace must be a complete, invariant-respecting witness of the
       run before it is worth archiving *)
    (match
       Cgra_verify.Os_fuzz.monitor events
       @ Cgra_verify.Os_fuzz.replay_check r events
     with
    | [] ->
        print_endline
          "  replay: aggregates reproduced exactly from the event stream; OS \
           invariants hold"
    | es ->
        List.iter (fun e -> print_endline ("TRACE DEFECT: " ^ e)) es;
        exit 1);
    export_trace ~format ~path:out events
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the OS simulator with full event tracing, verify the trace is a \
          complete witness (replay + invariant monitor), and export it as a \
          Chrome/Perfetto trace or JSONL.")
    Term.(
      const run $ size_arg $ page_arg $ seed_arg $ mode_arg $ threads_arg
      $ need_arg $ policy_arg $ reconfig_cost_arg $ out $ format_arg
      $ domains_arg)

(* ----- profile ----- *)

let cmd_profile =
  let run file json out size page_pes seed mode threads need policy
      reconfig_cost mapping paged domains =
    match mapping with
    | Some kernel ->
        (* static single-mapping bus pressure: compile the kernel and
           report exact per-(row, slot) port demand — no OS run, no slab
           approximation *)
        let arch = or_die (arch_of ~size ~page_pes) in
        let k = or_die (kernel_of kernel) in
        let kind = if paged then Scheduler.Paged else Scheduler.Unconstrained in
        let m =
          Cgra_util.Pool.with_pool ?domains (fun pool ->
              or_die (Scheduler.map ~seed ~pool kind arch k.graph))
        in
        let b = Cgra_prof.Analyze.bus_pressure m in
        let doc =
          if json then begin
            let s = Cgra_prof.Render.bus_pressure_json_string b in
            (match Cgra_trace.Json.parse s with
            | Ok _ -> ()
            | Error e -> or_die (Error ("emitted bus-pressure JSON is invalid: " ^ e)));
            s
          end
          else Cgra_prof.Render.bus_pressure_text b
        in
        (match out with
        | None -> print_string doc
        | Some path ->
            write_file path doc;
            Printf.printf "wrote %s\n" path)
    | None ->
    let events =
      match file with
      | Some path ->
          (* post-hoc: analyze an archived JSONL trace; the stream is
             self-describing (geometry in run_begin), so no arch flags *)
          let data =
            try In_channel.with_open_bin path In_channel.input_all
            with Sys_error e -> or_die (Error e)
          in
          or_die (Cgra_trace.Export.of_jsonl data)
      | None ->
          (* live: one traced OS run, same knobs as the trace command *)
          let arch = or_die (arch_of ~size ~page_pes) in
          if threads < 1 then or_die (Error "--threads must be positive");
          if need <= 0.0 || need >= 1.0 then
            or_die (Error "--need must be in (0, 1)");
          if reconfig_cost < 0.0 then
            or_die (Error "--reconfig-cost must be >= 0");
          let suite =
            Cgra_util.Pool.with_pool ?domains (fun pool ->
                or_die (Binary.compile_suite ~seed ~pool arch))
          in
          let total_pages = Cgra.n_pages arch in
          let workload =
            Workload.generate ~seed ~n_threads:threads ~cgra_need:need ~suite ()
          in
          let trace = Cgra_trace.Trace.make () in
          ignore
            (Os_sim.run ~policy ~reconfig_cost ~trace
               { Os_sim.suite; threads = workload; total_pages; mode });
          Cgra_trace.Trace.events trace
    in
    let report = or_die (Cgra_prof.Analyze.profile events) in
    let doc =
      if json then begin
        let s = Cgra_prof.Render.json_string report in
        (match Cgra_trace.Json.parse s with
        | Ok _ -> ()
        | Error e -> or_die (Error ("emitted profile JSON is invalid: " ^ e)));
        s
      end
      else Cgra_prof.Render.text report
    in
    match out with
    | None -> print_string doc
    | Some path ->
        write_file path doc;
        Printf.printf "wrote %s\n" path
  in
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TRACE.jsonl"
          ~doc:
            "JSONL trace to analyze post-hoc.  Omitted: run the OS simulator \
             live with the flags below and profile that run.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the machine-readable report (stable, sorted keys).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the report to FILE.")
  in
  let mapping =
    Arg.(
      value
      & opt (some string) None
      & info [ "mapping" ] ~docv:"KERNEL"
          ~doc:
            "Instead of profiling an OS run, compile KERNEL and report its \
             mapping's exact per-(row, slot) memory-port demand table \
             (replaces the slab approximation for single-kernel questions).  \
             Honors --size, --page-size, --seed, --paged, --json, and -o.")
  in
  let paged =
    Arg.(
      value & flag
      & info [ "paged" ]
          ~doc:"With --mapping: use the paging-constrained compiler.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile an OS run: per-resident page-occupancy heatmap, row-bus \
          contention, per-thread stall attribution (queueing vs. reshape vs. \
          execution), reshape accounting, and segment-latency quantiles.  \
          Works post-hoc on a JSONL trace or live on a fresh simulated run.")
    Term.(
      const run $ file $ json $ out $ size_arg $ page_arg $ seed_arg $ mode_arg
      $ threads_arg $ need_arg $ policy_arg $ reconfig_cost_arg $ mapping
      $ paged $ domains_arg)

(* ----- greedy ----- *)

let cmd_greedy =
  let run n m ii iterations =
    let r = Greedy.run ~n ~m ~ii_p:ii ~iterations in
    Printf.printf
      "N=%d M=%d II_p=%d over %d kernel iterations:\n\
      \  steady-state II: %.2f (fold optimum %d)\n\
      \  cases: two-hop %d, one-hop %d, zero-hop %d, fallbacks %d\n\
      \  dependency violations: %d\n"
      n m ii iterations r.steady_ii
      (Transform.ii_q ~ii_p:ii ~n_used:n ~target_pages:m)
      r.case_two_hop r.case_one_hop r.case_zero_hop r.fallbacks r.dep_violations;
    (* first two page-iterations as a column/time diagram *)
    let show_step step =
      Printf.printf "  step %d:" step;
      Array.iteri
        (fun page (p : Greedy.placement) ->
          Printf.printf " p%d@(c%d,t%d)" page p.col p.time)
        r.place.(step);
      print_newline ()
    in
    show_step 0;
    if iterations * ii > 1 then show_step 1
  in
  let n = Arg.(value & opt int 6 & info [ "n" ] ~docv:"N" ~doc:"Source pages.") in
  let m = Arg.(value & opt int 5 & info [ "m" ] ~docv:"M" ~doc:"Destination columns.") in
  let ii = Arg.(value & opt int 1 & info [ "ii" ] ~docv:"II" ~doc:"Source II.") in
  let iters =
    Arg.(value & opt int 20 & info [ "iterations" ] ~docv:"K" ~doc:"Kernel iterations.")
  in
  Cmd.v
    (Cmd.info "greedy"
       ~doc:"Run the paper's Algorithm 1 (greedy PlacePage) at page granularity.")
    Term.(const run $ n $ m $ ii $ iters)

(* ----- encode ----- *)

let cmd_encode =
  let run kernel size page_pes seed paged target domains =
    let arch = or_die (arch_of ~size ~page_pes) in
    let k = or_die (kernel_of kernel) in
    let kind = if paged then Scheduler.Paged else Scheduler.Unconstrained in
    let m =
      Cgra_util.Pool.with_pool ?domains (fun pool ->
          or_die (Scheduler.map ~seed ~pool kind arch k.graph))
    in
    let m =
      match target with
      | None -> m
      | Some t ->
          let sh = or_die (Transform.fold ~target_pages:t m) in
          if not sh.Transform.pe_exact then
            or_die (Error "fold is page-level only; cannot lower to contexts");
          sh.Transform.mapping
    in
    let img = or_die (Cgra_isa.Config.encode m) in
    Printf.printf
      "%s: II=%d, %d context words over %d slots, %d-register rotating files\n\n"
      kernel img.Cgra_isa.Config.ii
      (Cgra_isa.Config.context_count img)
      (Cgra_isa.Config.words img)
      img.Cgra_isa.Config.reg_capacity;
    Format.printf "%a" Cgra_isa.Config.pp img;
    let mem = Cgra_kernels.Kernels.init_memory k in
    let mem_ref = Cgra_dfg.Memory.copy mem in
    let report = Cgra_isa.Exec_image.run img mem ~iterations:32 in
    Interp.run k.graph mem_ref ~iterations:32;
    match Cgra_dfg.Memory.diff mem mem_ref with
    | [] ->
        Printf.printf
          "\ndecoder machine: %d cycles, %d firings, %d squashed - bit-exact vs the \
           oracle\n"
          report.cycles report.fired report.squashed
    | ds ->
        List.iter
          (fun (a, i, x, y) -> Printf.printf "MISMATCH %s[%d]: %d vs %d\n" a i x y)
          ds;
        exit 1
  in
  let paged =
    Arg.(value & flag & info [ "paged" ] ~doc:"Use the paging-constrained compiler.")
  in
  let target =
    Arg.(
      value
      & opt (some int) None
      & info [ "m"; "target-pages" ] ~docv:"M"
          ~doc:"Shrink with PageMaster before encoding.")
  in
  Cmd.v
    (Cmd.info "encode"
       ~doc:
         "Lower a (possibly shrunk) schedule to per-PE context words and run the \
          decoder-level machine.")
    Term.(
      const run $ kernel_arg $ size_arg $ page_arg $ seed_arg $ paged $ target
      $ domains_arg)

(* ----- compile / cache ----- *)

let cache_arg =
  let doc =
    "Directory of the persistent binary store.  Compiled kernels are \
     content-addressed by (format version, canonical arch fingerprint, kernel \
     digest, seed); warm artifacts turn compilation into a disk read, and \
     corrupt or version-stale artifacts fall back to recompilation."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let cmd_compile =
  let run kernel size page_pes seed cache_dir domains =
    let arch = or_die (arch_of ~size ~page_pes) in
    let store = Option.map Cgra_store.open_ cache_dir in
    Option.iter Cgra_store.install store;
    Fun.protect
      ~finally:(fun () -> if store <> None then Cgra_store.uninstall ())
      (fun () ->
        let binaries =
          Cgra_util.Pool.with_pool ?domains (fun pool ->
              match kernel with
              | Some name ->
                  let k = or_die (kernel_of name) in
                  or_die (Result.map (fun b -> [ b ]) (Binary.compile ~seed ~pool arch k))
              | None -> or_die (Binary.compile_suite ~seed ~pool arch))
        in
        (* stdout carries only the deterministic compile results, so a
           cold and a warm run byte-compare (the @smoke rule does) *)
        List.iter
          (fun (b : Binary.t) ->
            Printf.printf "%-10s II_b=%2d  II_c=%2d  pages=%d\n" b.Binary.name
              (Binary.ii_base b) (Binary.ii_paged b) (Binary.pages_used b))
          binaries;
        match store with
        | None -> ()
        | Some s ->
            let c = Cgra_store.counters s in
            Printf.eprintf
              "cache %s: %d disk hits, %d compiles, %d stored, %d rejected\n"
              (Cgra_store.dir s) c.Cgra_store.load_hits
              (Binary.stats ()).Binary.compiles c.Cgra_store.saves
              c.Cgra_store.rejects)
  in
  let kernel =
    let doc = "Kernel to compile (default: the whole suite)." in
    Arg.(value & opt (some string) None & info [ "k"; "kernel" ] ~docv:"NAME" ~doc)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile a kernel (or the whole suite) to its base/paged binary pair, \
          optionally through the persistent binary store: warm artifacts load \
          from disk without running the scheduler.")
    Term.(
      const run $ kernel $ size_arg $ page_arg $ seed_arg $ cache_arg $ domains_arg)

let cmd_cache =
  let run action dir =
    let s = Cgra_store.open_ dir in
    match action with
    | `Stats ->
        let st = Cgra_store.stats s in
        Printf.printf
          "store %s: %d artifacts, %d bytes (%d intact, %d stale-version, %d \
           corrupt)\n"
          (Cgra_store.dir s) st.Cgra_store.artifacts st.Cgra_store.bytes
          st.Cgra_store.intact st.Cgra_store.stale st.Cgra_store.corrupt
    | `Verify -> (
        let bad =
          List.filter_map
            (fun (rel, status) ->
              match status with
              | Cgra_store.Intact -> None
              | Cgra_store.Stale_version v ->
                  Some (Printf.sprintf "%s: stale format version %d" rel v)
              | Cgra_store.Corrupt e -> Some (Printf.sprintf "%s: %s" rel e))
            (Cgra_store.scan s)
        in
        match bad with
        | [] ->
            Printf.printf "verify: all %d artifacts intact\n"
              (Cgra_store.stats s).Cgra_store.artifacts
        | problems ->
            List.iter (fun p -> print_endline ("BAD ARTIFACT " ^ p)) problems;
            exit 1)
    | `Gc ->
        let removed, freed = Cgra_store.gc s in
        Printf.printf "gc: removed %d artifacts (%d bytes)\n" removed freed
  in
  let action =
    let doc =
      "$(b,stats) (artifact and byte counts), $(b,verify) (re-check every \
       artifact's framing, payload digest, and content address; non-zero exit \
       on any bad artifact), or $(b,gc) (delete corrupt and version-stale \
       artifacts)."
    in
    Arg.(
      required
      & pos 0 (some (enum [ ("stats", `Stats); ("verify", `Verify); ("gc", `Gc) ])) None
      & info [] ~docv:"ACTION" ~doc)
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR" ~doc:"Store directory.")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:"Inspect, verify, or garbage-collect a persistent binary store.")
    Term.(const run $ action $ dir)

(* ----- verify ----- *)

let cmd_verify =
  let run kernel size page_pes seed paged fold_sweep fuzz meld_fuzz iterations
      domains =
    match (fuzz, meld_fuzz) with
    | Some _, _ | _, Some _ ->
        Cgra_util.Pool.with_pool ?domains (fun pool ->
            if Cgra_util.Pool.width pool > 1 then
              Printf.printf "fuzzing across %d domains\n"
                (Cgra_util.Pool.width pool);
            let failed = ref false in
            (match fuzz with
            | None -> ()
            | Some n ->
                if n < 0 then
                  or_die (Error "--fuzz needs a non-negative seed count");
                let seeds = List.init n (fun i -> seed + i) in
                let o = Cgra_verify.Fuzz.run ~iterations ~pool ~seeds () in
                Format.printf "%a@." Cgra_verify.Fuzz.pp_outcome o;
                let os = Cgra_verify.Os_fuzz.run ~pool ~seeds () in
                Format.printf "%a@." Cgra_verify.Os_fuzz.pp_outcome os;
                if
                  o.Cgra_verify.Fuzz.failures <> []
                  || os.Cgra_verify.Os_fuzz.failures <> []
                then failed := true);
            (match meld_fuzz with
            | None -> ()
            | Some n ->
                if n < 0 then
                  or_die (Error "--meld-fuzz needs a non-negative seed count");
                let seeds = List.init n (fun i -> seed + i) in
                let o = Cgra_verify.Meld_fuzz.run ~pool ~seeds () in
                Format.printf "%a@." Cgra_verify.Meld_fuzz.pp_outcome o;
                if o.Cgra_verify.Meld_fuzz.failures <> [] then failed := true);
            if !failed then exit 1)
    | None, None ->
        let kernel =
          match kernel with
          | Some k -> k
          | None ->
              or_die (Error "verify needs --kernel (or --fuzz N / --meld-fuzz N)")
        in
        let arch = or_die (arch_of ~size ~page_pes) in
        let k = or_die (kernel_of kernel) in
        let kind = if paged then Scheduler.Paged else Scheduler.Unconstrained in
        let m =
          Cgra_util.Pool.with_pool ?domains (fun pool ->
              or_die (Scheduler.map ~seed ~pool kind arch k.graph))
        in
        Format.printf "%a@." Mapping.pp_stats m;
        let report what = function
          | [] -> Printf.printf "%s: ok\n" what
          | vs ->
              List.iter
                (fun v ->
                  Format.printf "%s VIOLATION %a@." what Cgra_verify.Verify.pp_violation
                    v)
                vs;
              exit 1
        in
        report "mapping" (Cgra_verify.Verify.check m);
        if fold_sweep then begin
          if not paged then or_die (Error "--fold-sweep needs --paged");
          let n = Mapping.n_pages_used m in
          let total = Cgra.n_pages arch in
          let mem = Cgra_kernels.Kernels.init_memory k in
          for target = 1 to n do
            for base = 0 to total - min target n do
              let what = Printf.sprintf "fold m=%d base=%d" target base in
              let sh = or_die (Transform.fold ~base_page:base ~target_pages:target m) in
              if sh.Transform.mapping.ii
                 <> Transform.ii_q ~ii_p:m.ii ~n_used:n ~target_pages:target
              then or_die (Error (what ^ ": II_q law violated"));
              if sh.Transform.pe_exact then begin
                report what
                  (Cgra_verify.Verify.check ~check_mem:false sh.Transform.mapping);
                match
                  Cgra_sim.Check.against_oracle sh.Transform.mapping mem ~iterations
                with
                | Ok () -> ()
                | Error es -> or_die (Error (what ^ ": " ^ List.hd es))
              end
              else Printf.printf "%s: page-level only (no PE-exact mirroring)\n" what
            done
          done;
          Printf.printf
            "fold sweep: every target in [1, %d] at every base verified, bit-exact \
             over %d iterations\n"
            n iterations
        end
  in
  let kernel =
    let doc = "Kernel to verify (omit when fuzzing)." in
    Arg.(value & opt (some string) None & info [ "k"; "kernel" ] ~docv:"NAME" ~doc)
  in
  let paged =
    Arg.(value & flag & info [ "paged" ] ~doc:"Use the paging-constrained compiler.")
  in
  let fold_sweep =
    Arg.(
      value & flag
      & info [ "fold-sweep" ]
          ~doc:"Fold to every target page count at every base page and verify each.")
  in
  let fuzz =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz" ] ~docv:"N"
          ~doc:
            "Run the property-based fuzz harness over N seeds (starting at --seed) \
             instead of verifying one kernel.")
  in
  let meld_fuzz =
    Arg.(
      value
      & opt (some int) None
      & info [ "meld-fuzz" ] ~docv:"N"
          ~doc:
            "Run the co-residency fuzz harness over N seeds (starting at --seed): \
             random melded resident sets checked differentially by the runtime's \
             Coexec.check and the independent Meld checker.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check the paper's mapping invariants mechanically: one kernel's mapping \
          (optionally across the whole fold sweep), a randomized \
          compile-fold-execute fuzz corpus, or a differential co-residency fuzz \
          corpus over melded resident sets.")
    Term.(
      const run $ kernel $ size_arg $ page_arg $ seed_arg $ paged $ fold_sweep $ fuzz
      $ meld_fuzz $ iters_arg $ domains_arg)

(* ----- dot ----- *)

let cmd_dot =
  let run kernel =
    let k = or_die (kernel_of kernel) in
    print_string (Dot.to_dot k.graph)
  in
  Cmd.v (Cmd.info "dot" ~doc:"Print a kernel's data-flow graph in Graphviz format.")
    Term.(const run $ kernel_arg)

(* ----- farm ----- *)

let cmd_farm =
  let run shards page_pes tenants requests load queue_bound max_resident seed
      policy reconfig_cost epoch stats fuzz trace_out format show_log domains =
    let policy, dispatch = policy in
    Cgra_util.Pool.with_pool ?domains (fun pool ->
        match fuzz with
        | Some n ->
            if n < 1 then or_die (Error "--fuzz wants a positive case count");
            let seeds = List.init n (fun i -> seed + i) in
            let o = Cgra_farm.Farm_fuzz.run ~pool ~seeds () in
            Format.printf "%a@." Cgra_farm.Farm_fuzz.pp_outcome o;
            List.iter (fun f -> print_endline ("  " ^ f)) o.Cgra_farm.Farm_fuzz.failures;
            if o.Cgra_farm.Farm_fuzz.failures <> [] then exit 1
        | None ->
            if shards = [] then or_die (Error "--shards wants at least one size");
            let p =
              {
                Cgra_farm.Farm.fleet =
                  List.map (fun size -> { Cgra_farm.Farm.size; page_pes }) shards;
                n_tenants = tenants;
                n_requests = requests;
                offered_load = load;
                queue_bound;
                max_resident;
                seed;
                policy;
                reconfig_cost;
                dispatch;
                epoch;
              }
            in
            let r = or_die (Cgra_farm.Farm.run ~pool ~traced:true p) in
            (* the trace must witness the run before it is worth printing
               numbers derived from it *)
            (match
               Cgra_farm.Farm_fuzz.monitor ~queue_bound ~max_resident
                 r.Cgra_farm.Farm.farm_events
               @ Cgra_farm.Farm_fuzz.check_report r
               @ List.concat
                   (List.map2
                      (fun (sr : Cgra_farm.Farm.shard_report) events ->
                        Cgra_verify.Os_fuzz.monitor events
                        @ Cgra_verify.Os_fuzz.replay_check
                            sr.Cgra_farm.Farm.s_os events)
                      r.Cgra_farm.Farm.shard_reports
                      r.Cgra_farm.Farm.shard_events)
             with
            | [] -> ()
            | es ->
                List.iter (fun e -> print_endline ("FARM DEFECT: " ^ e)) es;
                exit 1);
            print_string (Cgra_farm.Farm.render ~log:show_log r);
            if stats then print_string (Cgra_farm.Farm.render_stats r);
            (match trace_out with
            | None -> ()
            | Some path ->
                export_trace ~format ~path r.Cgra_farm.Farm.farm_events))
  in
  let shards =
    Arg.(
      value
      & opt (list int) [ 4; 6; 8 ]
      & info [ "shards" ] ~docv:"SIZES"
          ~doc:"Comma-separated fabric sizes, one shard each (e.g. 4,6,8).")
  in
  let tenants =
    Arg.(value & opt int 4 & info [ "tenants" ] ~docv:"N" ~doc:"Tenant count.")
  in
  let requests =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to offer.")
  in
  let load =
    Arg.(
      value & opt float 1.0
      & info [ "load" ] ~docv:"F"
          ~doc:"Offered load as a multiple of the fleet's nominal capacity.")
  in
  let queue_bound =
    Arg.(
      value & opt int 8
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:"Max queued requests per tenant before admission rejects.")
  in
  let max_resident =
    Arg.(
      value & opt int 8
      & info [ "max-resident" ] ~docv:"N"
          ~doc:"Max in-flight requests per shard.")
  in
  let fuzz =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz" ] ~docv:"N"
          ~doc:
            "Instead of one run: fuzz N seeded random tenant mixes through \
             random arrival bursts and check the conservation invariants \
             (exactly one terminal state per request, FIFO admission, \
             bounded queues, disjoint page grants, bit-exact replay).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Export the front end's farm_* event stream to FILE.")
  in
  let show_log =
    Arg.(
      value & flag
      & info [ "log" ] ~doc:"Print the per-request retirement log.")
  in
  (* The farm spells one extra policy: $(b,cost-aware) keeps the
     cost-halving allocator and additionally defers dispatch when
     queueing is cheaper than the reshape cycles a grant would cost. *)
  let farm_policy_arg =
    let doc =
      "Serving policy: $(b,halving) (the paper's), $(b,repack), $(b,cost) \
       (reconfiguration-cost-aware halving), or $(b,cost-aware) (cost-halving \
       allocation plus cost-aware dispatch that defers grants when queueing \
       is cheaper than reshaping)."
    in
    Arg.(
      value
      & opt
          (enum
             [ ("halving", (Allocator.Halving, Cgra_farm.Farm.Least_loaded));
               ("repack", (Allocator.Repack_equal, Cgra_farm.Farm.Least_loaded));
               ("cost", (Allocator.Cost_halving, Cgra_farm.Farm.Least_loaded));
               ("cost-aware", (Allocator.Cost_halving, Cgra_farm.Farm.Cost_aware));
             ])
          (Allocator.Halving, Cgra_farm.Farm.Least_loaded)
      & info [ "policy" ] ~docv:"POLICY" ~doc)
  in
  let epoch_arg =
    Arg.(
      value
      & opt float Cgra_farm.Farm.default_params.Cgra_farm.Farm.epoch
      & info [ "epoch" ] ~docv:"CYCLES"
          ~doc:
            "Sync-epoch length of the parallel coordinator, in virtual \
             cycles.  Part of the simulated semantics (dispatch is \
             quantized to epoch boundaries), not just a tuning knob.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Also print front-end statistics: per-shard active epoch counts, \
             busy fractions, and the steal-free load imbalance.")
  in
  Cmd.v
    (Cmd.info "farm"
       ~doc:
         "Serve an open-loop request stream on a sharded fleet of fabrics \
          (per-tenant FIFO queues, admission control, Os_sim page \
          allocation as each shard's online scheduler), deterministically \
          from a seed, and report throughput and latency quantiles.")
    Term.(
      const run $ shards $ page_arg $ tenants $ requests $ load $ queue_bound
      $ max_resident $ seed_arg $ farm_policy_arg $ reconfig_cost_arg
      $ epoch_arg $ stats $ fuzz $ trace_out $ format_arg $ show_log
      $ domains_arg)

(* ----- fig8 / fig9 ----- *)

let cmd_fig8 =
  let run size seed domains =
    Cgra_util.Pool.with_pool ?domains (fun pool ->
        List.iter
          (fun f ->
            print_endline (Experiments.render_fig8 f);
            print_newline ())
          (Experiments.fig8_all ~seed ~pool ~size ()))
  in
  Cmd.v
    (Cmd.info "fig8" ~doc:"Reproduce Fig. 8 (constraint cost) for one CGRA size.")
    Term.(const run $ size_arg $ seed_arg $ domains_arg)

let cmd_fig9 =
  let run size seed replicates trace_out format domains =
    Cgra_util.Pool.with_pool ?domains (fun pool ->
        List.iter
          (fun f ->
            print_endline (Experiments.render_fig9 f);
            print_newline ())
          (Experiments.fig9_all ~seed ~replicates ~pool ~size ());
        match trace_out with
        | None -> ()
        | Some path ->
            (* one representative run of the figure's most contended point:
               16 threads wanting the CGRA 87.5% of the time, Multi mode —
               compiled through the same pool as the sweep, so -j means
               the same thing here as in map/simulate/trace *)
            let arch = or_die (arch_of ~size ~page_pes:4) in
            let suite = or_die (Binary.compile_suite ~seed ~pool arch) in
            let total_pages = Cgra.n_pages arch in
            let threads =
              Workload.generate ~seed ~n_threads:16 ~cgra_need:0.875 ~suite ()
            in
            let trace = Cgra_trace.Trace.make () in
            ignore
              (Os_sim.run ~trace
                 { Os_sim.suite; threads; total_pages; mode = Os_sim.Multi });
            export_trace ~format ~path (Cgra_trace.Trace.events trace))
  in
  let replicates =
    Arg.(
      value & opt int 3
      & info [ "replicates" ] ~docv:"R" ~doc:"Random workloads per data point.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Also record one representative 16-thread Multi-mode run (the \
             figure's most contended point) to FILE.")
  in
  Cmd.v
    (Cmd.info "fig9"
       ~doc:"Reproduce Fig. 9 (multithreading improvement) for one CGRA size.")
    Term.(
      const run $ size_arg $ seed_arg $ replicates $ trace_out $ format_arg
      $ domains_arg)

let () =
  let doc = "multithreaded CGRA compiler, PageMaster transformation, and simulator" in
  let info = Cmd.info "cgra_tool" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            cmd_kernels; cmd_map; cmd_shrink; cmd_simulate; cmd_trace;
            cmd_profile; cmd_encode; cmd_compile; cmd_cache; cmd_greedy;
            cmd_verify; cmd_dot; cmd_farm; cmd_fig8; cmd_fig9;
          ]))
