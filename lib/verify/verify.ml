open Cgra_arch
open Cgra_dfg
open Cgra_mapper

type rule =
  | Schedule
  | Bounds
  | Slot_conflict
  | Continuity
  | Ring
  | Rf_capacity
  | Mem_ports
  | Routes

let rule_name = function
  | Schedule -> "schedule"
  | Bounds -> "bounds"
  | Slot_conflict -> "slot-conflict"
  | Continuity -> "continuity"
  | Ring -> "ring"
  | Rf_capacity -> "rf-capacity"
  | Mem_ports -> "mem-ports"
  | Routes -> "routes"

type violation = { rule : rule; detail : string }

let pp_violation ppf v = Format.fprintf ppf "%s: %s" (rule_name v.rule) v.detail

let is_const g v = match (Graph.node g v).op with Op.Const _ -> true | _ -> false

(* Occupants recomputed from the raw mapping record, not via
   [Mapping.all_occupants], so a bug there cannot hide from the checker. *)
let occupants (m : Mapping.t) =
  let ops =
    Array.to_list m.placements
    |> List.mapi (fun v p -> Option.map (fun p -> (Printf.sprintf "op %d" v, p)) p)
    |> List.filter_map Fun.id
  in
  let hops =
    List.concat_map
      (fun (r : Mapping.route) ->
        List.map
          (fun h -> (Printf.sprintf "hop of edge %d->%d" r.edge.src r.edge.dst, h))
          r.hops)
      m.routes
  in
  ops @ hops

let check ?(check_mem = true) (m : Mapping.t) =
  let out = ref [] in
  let err rule fmt =
    Printf.ksprintf (fun detail -> out := { rule; detail } :: !out) fmt
  in
  let g = m.graph in
  let grid = m.arch.Cgra.grid in
  let pages = m.arch.Cgra.pages in
  let page_of pe = Page.page_of_pe pages pe in
  if m.ii < 1 then err Schedule "ii %d < 1" m.ii;
  (* ----- placement shape ----- *)
  let shape_ok = ref (m.ii >= 1) in
  Array.iteri
    (fun v pl ->
      match (pl, is_const g v) with
      | None, false ->
          shape_ok := false;
          err Schedule "node %d is unplaced" v
      | Some _, true -> err Schedule "const node %d is placed" v
      | Some (p : Mapping.placement), false ->
          if p.time < 0 then begin
            shape_ok := false;
            err Schedule "node %d scheduled at negative time %d" v p.time
          end;
          if not (Grid.in_bounds grid p.pe) then begin
            shape_ok := false;
            err Bounds "node %d placed outside the fabric at %s" v (Coord.to_string p.pe)
          end
          else if m.paged && page_of p.pe = None then
            err Bounds "node %d placed on a remainder PE %s outside every page" v
              (Coord.to_string p.pe)
      | None, true -> ())
    m.placements;
  List.iter
    (fun (r : Mapping.route) ->
      List.iter
        (fun (h : Mapping.placement) ->
          if not (Grid.in_bounds grid h.pe) then begin
            shape_ok := false;
            err Bounds "hop of edge %d->%d outside the fabric at %s" r.edge.src
              r.edge.dst (Coord.to_string h.pe)
          end
          else if m.paged && page_of h.pe = None then
            err Bounds "hop of edge %d->%d on a remainder PE %s" r.edge.src r.edge.dst
              (Coord.to_string h.pe))
        r.hops)
    m.routes;
  (* ----- route bookkeeping ----- *)
  let edge_set = Graph.edges g in
  List.iter
    (fun (r : Mapping.route) ->
      if not (List.mem r.edge edge_set) then
        err Routes "route for edge %d->%d which is not in the graph" r.edge.src
          r.edge.dst
      else if is_const g r.edge.src then
        err Routes "route for const edge %d->%d" r.edge.src r.edge.dst)
    m.routes;
  let route_keys = List.map (fun (r : Mapping.route) -> r.edge) m.routes in
  if List.length route_keys <> List.length (List.sort_uniq compare route_keys) then
    err Routes "more than one route for one edge";
  if not !shape_ok then List.rev !out
  else begin
    (* ----- exclusive slot occupancy ----- *)
    let occ = Hashtbl.create 64 in
    List.iter
      (fun (who, (p : Mapping.placement)) ->
        let key = (Grid.index grid p.pe, p.time mod m.ii) in
        (match Hashtbl.find_opt occ key with
        | Some other ->
            err Slot_conflict "%s and %s both occupy %s modulo-slot %d" who other
              (Coord.to_string p.pe) (p.time mod m.ii)
        | None -> ());
        Hashtbl.replace occ key who)
      (occupants m);
    (* ----- used pages form one contiguous ring run ----- *)
    if m.paged then begin
      match Mapping.pages_used m with
      | [] -> ()
      | first :: _ as used ->
          List.iteri
            (fun i pg ->
              if pg <> first + i then
                err Ring "used pages are not a contiguous ring run: page %d at rank %d"
                  pg i)
            used
    end;
    (* ----- per-edge transfer chains ----- *)
    let serp pe = Grid.serp_index grid pe in
    let rect = Page.is_rect pages in
    let instances = Hashtbl.create 64 in
    (* (pe index, birth time) -> last read time; for the register-usage
       accounting below *)
    let record_use ~pe ~born ~read =
      let key = (Grid.index grid pe, born) in
      let last = Option.value ~default:born (Hashtbl.find_opt instances key) in
      Hashtbl.replace instances key (max last read)
    in
    let placement v =
      match m.placements.(v) with
      | Some p -> p
      | None -> assert false (* shape_ok ruled this out *)
    in
    let step_check (e : Graph.edge) ~what (a : Mapping.placement) ~reader_pe
        ~read_time =
      if read_time < a.time + 1 then
        err Continuity "edge %d->%d: %s reads at %d before the value exists (holder \
                        fires at %d)"
          e.src e.dst what read_time a.time;
      let near = Coord.equal a.pe reader_pe || Coord.adjacent a.pe reader_pe in
      if not near then
        err Continuity "edge %d->%d: %s at %s cannot reach holder at %s" e.src e.dst
          what
          (Coord.to_string reader_pe)
          (Coord.to_string a.pe)
      else if m.paged then begin
        match (page_of a.pe, page_of reader_pe) with
        | Some pa, Some pb ->
            if pb <> pa && pb <> pa + 1 then
              err Ring
                "edge %d->%d: %s on page %d consumes from page %d (only page %d or %d \
                 may feed it)"
                e.src e.dst what pb pa pb (pb - 1)
            else if
              (not rect)
              && (not (Coord.equal a.pe reader_pe))
              && abs (serp a.pe - serp reader_pe) <> 1
            then
              err Ring
                "edge %d->%d: %s transfer %s -> %s is not serpentine-consecutive on \
                 band pages"
                e.src e.dst what (Coord.to_string a.pe) (Coord.to_string reader_pe)
        | None, _ | _, None -> () (* already a Bounds violation *)
      end
    in
    List.iter
      (fun (e : Graph.edge) ->
        if not (is_const g e.src) then begin
          let pu = placement e.src and pv = placement e.dst in
          let read_time = pv.time + (e.distance * m.ii) in
          let hops =
            match List.find_opt (fun (r : Mapping.route) -> r.edge = e) m.routes with
            | Some r -> r.hops
            | None -> []
          in
          let last =
            List.fold_left
              (fun (prev : Mapping.placement) (h : Mapping.placement) ->
                step_check e ~what:"routing hop" prev ~reader_pe:h.pe ~read_time:h.time;
                record_use ~pe:prev.pe ~born:prev.time ~read:h.time;
                h)
              pu hops
          in
          step_check e ~what:"consumer" last ~reader_pe:pv.pe ~read_time;
          record_use ~pe:last.pe ~born:last.time ~read:read_time
        end)
      (Graph.edges g);
    (* ----- memory ordering ----- *)
    List.iter
      (fun (o : Memdep.t) ->
        match (m.placements.(o.src), m.placements.(o.dst)) with
        | Some a, Some b ->
            if b.time + (o.distance * m.ii) < a.time + 1 then
              err Schedule "memory ordering %d->%d (distance %d) violated (%d vs %d)"
                o.src o.dst o.distance a.time b.time
        | None, _ | _, None -> ())
      (Memdep.ordering g);
    (* ----- register-usage constraint ----- *)
    let rf = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (pe_idx, born) last ->
        let lifetime = last - born in
        if lifetime > 0 then begin
          let regs = (lifetime + m.ii - 1) / m.ii in
          let n = Option.value ~default:0 (Hashtbl.find_opt rf pe_idx) in
          Hashtbl.replace rf pe_idx (n + regs)
        end)
      instances;
    Hashtbl.iter
      (fun pe_idx n ->
        if n > m.arch.Cgra.rf_capacity then
          err Rf_capacity "PE index %d holds %d rotating registers (capacity %d)"
            pe_idx n m.arch.Cgra.rf_capacity)
      rf;
    (* ----- row memory ports ----- *)
    if check_mem then begin
      let mem_use = Hashtbl.create 16 in
      Array.iteri
        (fun v pl ->
          match pl with
          | Some (p : Mapping.placement) when Op.is_mem (Graph.node g v).op ->
              let key = (p.pe.Coord.row, p.time mod m.ii) in
              let n = Option.value ~default:0 (Hashtbl.find_opt mem_use key) in
              Hashtbl.replace mem_use key (n + 1)
          | Some _ | None -> ())
        m.placements;
      Hashtbl.iter
        (fun (row, slot) n ->
          if n > m.arch.Cgra.mem_ports_per_row then
            err Mem_ports "row %d modulo-slot %d issues %d memory ops (ports %d)" row
              slot n m.arch.Cgra.mem_ports_per_row)
        mem_use
    end;
    List.rev !out
  end

let mapping ?check_mem m =
  match check ?check_mem m with
  | [] -> Ok ()
  | vs -> Error (List.map (fun v -> Format.asprintf "%a" pp_violation v) vs)
