(** Property-based differential fuzzing of the compile → fold → execute
    pipeline.

    Each seed drives one deterministic case through {!Cgra_util.Rng}:
    pick a fabric, generate a random synthetic kernel, map it with the
    paging-constrained scheduler, then

    - check the mapping with {!Verify.mapping} and run it against the
      sequential oracle ({!Cgra_sim.Check.against_oracle});
    - fold it to {e every} [target_pages] in [1 .. n_used] at {e every}
      feasible [base_page] (including every non-zero base), checking the
      [II_q = II_p * ceil (N/M)] law on each fold, re-verifying every
      PE-exact fold, and running it against the oracle;
    - on square-tile fabrics, relocate the mapping to a non-zero base
      page, re-mark it paged, verify it there, and fold it {e again} —
      the absolute-page-indexing regression class.

    Everything is reproducible from the seed list; the test suite pins a
    fixed corpus. *)

type outcome = {
  cases : int;  (** seeds attempted *)
  mapped : int;  (** cases the scheduler mapped (the rest are skipped) *)
  folds : int;  (** fold results checked *)
  nonzero_base_folds : int;  (** of which [base_page > 0] *)
  refolds : int;  (** relocate-then-refold exercises *)
  oracle_runs : int;  (** differential simulations executed *)
  failures : string list;  (** human-readable, with seed context; [] = pass *)
}

val default_fabrics : (int * int) list
(** [(size, page_pes)] choices: [(4, 4); (4, 2); (6, 8)] — square tiles,
    1x2 tiles, and 2x4 tiles over a bigger mesh. *)

val run :
  ?fabrics:(int * int) list ->
  ?iterations:int ->
  ?pool:Cgra_util.Pool.t ->
  seeds:int list ->
  unit ->
  outcome
(** Run the corpus.  [iterations] (default 8) is the oracle-comparison
    depth per simulation.  With [pool], the per-seed cases fan out
    across its domains; counters and failures are aggregated in seed
    order, so the outcome is identical at any pool width. *)

val pp_outcome : Format.formatter -> outcome -> unit
