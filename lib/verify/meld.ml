open Cgra_arch
open Cgra_mapper

type rule =
  | Residents
  | Disjoint
  | Page_range
  | Bus_capacity
  | Resident_legal

let rule_name = function
  | Residents -> "residents"
  | Disjoint -> "disjoint"
  | Page_range -> "page-range"
  | Bus_capacity -> "bus-capacity"
  | Resident_legal -> "resident-legal"

type violation = { rule : rule; detail : string }

let pp_violation ppf v = Format.fprintf ppf "%s: %s" (rule_name v.rule) v.detail

type resident = {
  id : int;
  mapping : Mapping.t;
  grant : Cgra_core.Allocator.range option;
  exact : bool;
}

let resident ?grant ?(exact = false) ~id mapping = { id; mapping; grant; exact }

let of_shrunk ?grant ~id (sh : Cgra_core.Transform.shrunk) =
  { id; mapping = sh.mapping; grant; exact = sh.pe_exact }

type report = {
  residents : int;
  hyperperiod : int;
  ipc : float;
  utilization : float;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let hyperperiod mappings =
  List.fold_left
    (fun acc (m : Mapping.t) -> acc / gcd acc m.ii * m.ii)
    1 mappings

(* Every PE a resident touches, recomputed from the raw mapping record
   (placements array plus route hops) rather than through any shared
   occupancy helper, so a bug there cannot hide from this checker. *)
let touched_pes (m : Mapping.t) =
  let acc = ref [] in
  Array.iter
    (fun pl ->
      match pl with
      | Some (p : Mapping.placement) -> acc := p.pe :: !acc
      | None -> ())
    m.placements;
  List.iter
    (fun (r : Mapping.route) ->
      List.iter (fun (h : Mapping.placement) -> acc := h.pe :: !acc) r.hops)
    m.routes;
  List.rev !acc

let check ?(check_mem = true) ?(trace = Cgra_trace.Trace.null) residents =
  let module T = Cgra_trace.Trace in
  T.with_span trace "meld.check" @@ fun () ->
  let out = ref [] in
  let err rule fmt =
    Printf.ksprintf (fun detail -> out := { rule; detail } :: !out) fmt
  in
  (match residents with
  | [] -> err Residents "no residents"
  | r0 :: rest ->
      let arch = r0.mapping.Mapping.arch in
      List.iter
        (fun r ->
          if r.mapping.Mapping.arch <> arch then
            err Residents "resident %d targets a different fabric than resident %d"
              r.id r0.id)
        rest;
      (* ----- spatial disjointness ----- *)
      (* keyed by coordinate, not grid index, so out-of-bounds placements
         cannot alias an in-bounds PE *)
      let owner : (Coord.t, int) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun r ->
          List.iter
            (fun pe ->
              match Hashtbl.find_opt owner pe with
              | Some other when other <> r.id ->
                  err Disjoint "residents %d and %d both occupy PE %s" other r.id
                    (Coord.to_string pe)
              | Some _ | None -> Hashtbl.replace owner pe r.id)
            (touched_pes r.mapping))
        residents;
      (* ----- page ranges vs allocator grants ----- *)
      let pages = arch.Cgra.pages in
      let n_pages = Page.n_pages pages in
      let grants =
        List.filter_map
          (fun r -> Option.map (fun g -> (r.id, g)) r.grant)
          residents
        |> List.sort (fun (_, (a : Cgra_core.Allocator.range)) (_, b) ->
               compare a.base b.base)
      in
      List.iter
        (fun (id, (g : Cgra_core.Allocator.range)) ->
          if g.len < 1 || g.base < 0 || g.base + g.len > n_pages then
            err Page_range "resident %d claims out-of-bounds grant [%d+%d] on %d pages"
              id g.base g.len n_pages)
        grants;
      let rec overlaps = function
        | (id1, (g1 : Cgra_core.Allocator.range))
          :: ((id2, (g2 : Cgra_core.Allocator.range)) :: _ as rest) ->
            if g1.base + g1.len > g2.base then
              err Page_range "grants of residents %d [%d+%d] and %d [%d+%d] overlap"
                id1 g1.base g1.len id2 g2.base g2.len;
            overlaps rest
        | [ _ ] | [] -> ()
      in
      overlaps grants;
      List.iter
        (fun r ->
          let used =
            touched_pes r.mapping
            |> List.filter_map (fun pe -> Page.page_of_pe pages pe)
            |> List.sort_uniq compare
          in
          (match used with
          | [] -> ()
          | first :: _ ->
              List.iteri
                (fun i pg ->
                  if pg <> first + i then
                    err Page_range
                      "resident %d occupies non-contiguous pages (page %d at rank %d \
                       after base %d)"
                      r.id pg i first)
                used);
          match (r.grant, used) with
          | Some g, _ :: _ ->
              let lo = List.hd used and hi = List.nth used (List.length used - 1) in
              if lo < g.base || hi >= g.base + g.len then
                err Page_range
                  "resident %d occupies pages [%d..%d] outside its grant [%d+%d]" r.id
                  lo hi g.base g.len
          | Some _, [] | None, _ -> ())
        residents;
      (* ----- shared row buses, walked cycle by cycle ----- *)
      if check_mem then begin
        let hp = hyperperiod (List.map (fun r -> r.mapping) residents) in
        let rows = arch.Cgra.grid.Grid.rows in
        (* per resident: memory issues per (row, modulo slot) *)
        let profiles =
          List.map
            (fun r ->
              let m = r.mapping in
              let slots = Array.make_matrix rows m.ii 0 in
              Array.iteri
                (fun v pl ->
                  match pl with
                  | Some (p : Mapping.placement)
                    when Cgra_dfg.Op.is_mem (Cgra_dfg.Graph.node m.graph v).op ->
                      let row = p.pe.Coord.row in
                      if row >= 0 && row < rows then
                        slots.(row).(p.time mod m.ii) <-
                          slots.(row).(p.time mod m.ii) + 1
                  | Some _ | None -> ())
                m.placements;
              (m.ii, slots))
            residents
        in
        for c = 0 to hp - 1 do
          for row = 0 to rows - 1 do
            let issued =
              List.fold_left
                (fun acc (ii, slots) -> acc + slots.(row).(c mod ii))
                0 profiles
            in
            if issued > arch.Cgra.mem_ports_per_row then
              err Bus_capacity
                "row %d cycle %d of hyperperiod %d: %d memory ops on a %d-port bus"
                row c hp issued arch.Cgra.mem_ports_per_row
          done
        done
      end;
      (* ----- each exact resident is a legal mapping on its own ----- *)
      List.iter
        (fun r ->
          if r.exact then
            List.iter
              (fun (v : Verify.violation) ->
                err Resident_legal "resident %d: %s: %s" r.id
                  (Verify.rule_name v.rule) v.detail)
              (Verify.check ~check_mem:false r.mapping))
        residents);
  match List.rev !out with
  | [] ->
      let mappings = List.map (fun r -> r.mapping) residents in
      let ops_of (m : Mapping.t) =
        Array.fold_left
          (fun acc pl -> match pl with Some _ -> acc + 1 | None -> acc)
          0 m.placements
      in
      (* same fold order and per-term arithmetic as the runtime's own
         report, so agreement can be checked with exact float equality *)
      let ipc =
        List.fold_left
          (fun acc (m : Mapping.t) ->
            acc +. (float_of_int (ops_of m) /. float_of_int m.ii))
          0.0 mappings
      in
      let arch = (List.hd mappings).Mapping.arch in
      let report =
        {
          residents = List.length residents;
          hyperperiod = hyperperiod mappings;
          ipc;
          utilization = ipc /. float_of_int (Cgra.pe_count arch);
        }
      in
      if T.enabled trace then begin
        T.emit trace
          (T.Counter
             { name = "meld.residents"; value = float_of_int report.residents });
        T.emit trace
          (T.Counter
             { name = "meld.hyperperiod"; value = float_of_int report.hyperperiod });
        T.emit trace (T.Counter { name = "meld.ipc"; value = report.ipc });
        T.emit trace
          (T.Counter { name = "meld.utilization"; value = report.utilization })
      end;
      Ok report
  | vs ->
      if T.enabled trace then
        List.iter
          (fun v ->
            T.emit trace
              (T.Mark
                 { name = "meld.violation";
                   detail = Format.asprintf "%a" pp_violation v }))
          vs;
      Error vs

let check_mappings ?check_mem ?trace mappings =
  check ?check_mem ?trace (List.mapi (fun i m -> resident ~id:i m) mappings)
