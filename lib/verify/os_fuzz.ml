open Cgra_core
module T = Cgra_trace.Trace
module Replay = Cgra_trace.Replay

let pp_range ppf (r : T.page_range) =
  Format.fprintf ppf "[%d+%d]" r.base r.len

let range_str (r : T.page_range) = Format.asprintf "%a" pp_range r

let monitor events =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let total = ref None in
  let alloc : (int, T.page_range) Hashtbl.t = Hashtbl.create 8 in
  let waiting : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let finished : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let last_time = ref neg_infinity in
  (* pages conserved: disjoint, in bounds, and no more than the fabric.
     All events sharing one timestamp form a transaction — a Repack_equal
     contention rewrites several residents "at once", and no serial order
     of the individual moves is stepwise-disjoint in general — so the
     check runs at every instant boundary, not after every event. *)
  let dirty = ref None (* seq of the last allocation change, if unchecked *) in
  let conserved seq =
    match !total with
    | None -> ()
    | Some total ->
        let ranges =
          Hashtbl.fold (fun c r acc -> (c, r) :: acc) alloc []
          |> List.sort (fun (_, (a : T.page_range)) (_, b) ->
                 compare a.base b.base)
        in
        let sum =
          List.fold_left (fun acc (_, (r : T.page_range)) -> acc + r.len) 0 ranges
        in
        if sum > total then
          err "event %d: %d pages allocated on a %d-page fabric" seq sum total;
        List.iter
          (fun (c, (r : T.page_range)) ->
            if r.base < 0 || r.len <= 0 || r.base + r.len > total then
              err "event %d: thread %d holds out-of-bounds range %s" seq c
                (range_str r))
          ranges;
        let rec disjoint = function
          | (c1, (r1 : T.page_range)) :: ((c2, (r2 : T.page_range)) :: _ as rest)
            ->
              if r1.base + r1.len > r2.base then
                err "event %d: threads %d %s and %d %s overlap" seq c1
                  (range_str r1) c2 (range_str r2);
              disjoint rest
          | [ _ ] | [] -> ()
        in
        disjoint ranges
  in
  List.iter
    (fun (e : T.event) ->
      let seq = e.seq in
      if e.time < !last_time then
        err "event %d: time went backwards (%g after %g)" seq e.time !last_time;
      (match !dirty with
      | Some s when e.time > !last_time ->
          conserved s;
          dirty := None
      | Some _ | None -> ());
      last_time := e.time;
      let touched () = dirty := Some seq in
      match e.payload with
      | T.Run_begin r ->
          if !total <> None then err "event %d: duplicate run_begin" seq;
          if r.total_pages <= 0 then
            err "event %d: run_begin with %d pages" seq r.total_pages;
          total := Some r.total_pages
      | T.Kernel_stall r ->
          if Hashtbl.mem waiting r.thread then
            err "event %d: thread %d queued while already waiting" seq r.thread;
          Hashtbl.replace waiting r.thread ();
          if r.queue_depth <> Hashtbl.length waiting then
            err "event %d: stall reports queue depth %d, monitor sees %d" seq
              r.queue_depth (Hashtbl.length waiting)
      | T.Kernel_grant r ->
          Hashtbl.remove waiting r.thread;
          if Hashtbl.mem alloc r.thread then
            err "event %d: thread %d granted while already holding pages" seq
              r.thread;
          Hashtbl.replace alloc r.thread r.range;
          touched ()
      | T.Reshape r ->
          (match Hashtbl.find_opt alloc r.thread with
          | None ->
              err "event %d: reshape of thread %d, which holds nothing" seq
                r.thread
          | Some held ->
              if held <> r.before then
                err "event %d: reshape claims before=%s but thread %d holds %s"
                  seq (range_str r.before) r.thread (range_str held));
          if r.pages_rewritten <> r.after.T.len then
            err "event %d: reshape rewrites %d pages into a %d-page range" seq
              r.pages_rewritten r.after.T.len;
          if r.cost < 0.0 then err "event %d: negative reshape cost" seq;
          Hashtbl.replace alloc r.thread r.after;
          touched ()
      | T.Kernel_release r ->
          (match Hashtbl.find_opt alloc r.thread with
          | None ->
              err "event %d: thread %d released pages it does not hold" seq
                r.thread
          | Some held ->
              if held <> r.range then
                err "event %d: thread %d releases %s but holds %s" seq r.thread
                  (range_str r.range) (range_str held));
          Hashtbl.remove alloc r.thread;
          touched ()
      | T.Occupancy r -> (
          if r.elapsed <= 0.0 then
            err "event %d: non-positive occupancy interval %g" seq r.elapsed;
          match Hashtbl.find_opt alloc r.thread with
          | None ->
              err "event %d: occupancy sample for thread %d with no allocation"
                seq r.thread
          | Some held ->
              if held.T.len <> r.pages then
                err "event %d: occupancy says %d pages, thread %d holds %d" seq
                  r.pages r.thread held.T.len)
      | T.Thread_finish r ->
          if Hashtbl.mem finished r.thread then
            err "event %d: thread %d finished twice" seq r.thread;
          Hashtbl.replace finished r.thread ();
          if Hashtbl.mem alloc r.thread then
            err "event %d: thread %d finished still holding pages" seq r.thread;
          if Hashtbl.mem waiting r.thread then
            err "event %d: thread %d finished while queued" seq r.thread
      | T.Run_end _ ->
          if Hashtbl.length alloc <> 0 then
            err "event %d: run ended with %d allocations live" seq
              (Hashtbl.length alloc);
          if Hashtbl.length waiting <> 0 then
            err "event %d: run ended with %d threads still queued" seq
              (Hashtbl.length waiting)
      | T.Thread_arrival _ | T.Kernel_request _ | T.Alloc_decision _
      | T.Farm_begin _ | T.Farm_request _ | T.Farm_reject _ | T.Farm_admit _
      | T.Farm_resident _ | T.Farm_retire _ | T.Farm_end _
      | T.Counter _ | T.Span_begin _ | T.Span_end _ | T.Mark _ ->
          ())
    events;
  (match !dirty with Some s -> conserved s | None -> ());
  List.rev !errs

let replay_check (result : Os_sim.result_t) events =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := !errs @ [ s ]) fmt in
  (match Replay.aggregates events with
  | Error e -> err "replay failed: %s" e
  | Ok a ->
      let fcheck name got expected =
        if compare (got : float) expected <> 0 then
          err "replay %s = %.17g, simulator says %.17g" name got expected
      in
      let icheck name got expected =
        if (got : int) <> expected then
          err "replay %s = %d, simulator says %d" name got expected
      in
      let sorted_finishes =
        List.sort (fun (a, _) (b, _) -> compare a b) result.Os_sim.finishes
      in
      fcheck "makespan" a.Replay.makespan result.Os_sim.makespan;
      if a.Replay.finishes <> sorted_finishes then
        err "replay finishes diverge from the simulator's";
      fcheck "total_ops" a.Replay.total_ops result.Os_sim.total_ops;
      fcheck "ipc" a.Replay.ipc result.Os_sim.ipc;
      fcheck "busy_page_cycles" a.Replay.busy_page_cycles
        result.Os_sim.busy_page_cycles;
      fcheck "page_utilization" a.Replay.page_utilization
        result.Os_sim.page_utilization;
      icheck "transformations" a.Replay.transformations
        result.Os_sim.transformations;
      (* the headline queue invariant: the aggregate stall count is
         exactly the number of stall events the run emitted *)
      icheck "stalls" a.Replay.stalls result.Os_sim.stalls);
  !errs

let check_run ?policy ?reconfig_cost (p : Os_sim.params) =
  let trace = T.make () in
  let result = Os_sim.run ?policy ?reconfig_cost ~trace p in
  let events = T.events trace in
  (T.n_events trace, monitor events @ replay_check result events)

type outcome = {
  cases : int;
  runs : int;
  events : int;
  failures : string list;
}

let default_fabrics = [ (4, 4); (4, 2) ]

let run ?(fabrics = default_fabrics) ?pool ~seeds () =
  if fabrics = [] then invalid_arg "Os_fuzz.run: no fabrics";
  (* suites come from Binary's memoized compile cache (safe to share
     across domains): each fabric compiles once, whichever case asks
     first *)
  let suite_for (size, page_pes) =
    let arch = Option.get (Cgra_arch.Cgra.standard ~size ~page_pes) in
    match Binary.compile_suite ~seed:1 arch with
    | Ok suite -> (suite, Cgra_arch.Cgra.n_pages arch)
    | Error e ->
        failwith
          (Printf.sprintf "Os_fuzz: %dx%d p%d suite failed: %s" size size
             page_pes e)
  in
  let one_case seed =
    let runs = ref 0 in
    let events = ref 0 in
    let failures = ref [] in
    let rng = Cgra_util.Rng.create ~seed in
    let ((size, page_pes) as fabric) =
      Cgra_util.Rng.choose rng (Array.of_list fabrics)
    in
    let suite, total_pages = suite_for fabric in
    let n_threads = Cgra_util.Rng.int_in rng 2 9 in
    let need = Cgra_util.Rng.choose rng [| 0.5; 0.75; 0.875 |] in
    let policy =
      if Cgra_util.Rng.bool rng then Allocator.Halving
      else Allocator.Repack_equal
    in
    let reconfig_cost = Cgra_util.Rng.choose rng [| 0.0; 7.0; 250.0 |] in
    let threads =
      Workload.generate ~seed ~n_threads ~cgra_need:need ~suite ()
    in
    List.iter
      (fun mode ->
        incr runs;
        let n, errs =
          check_run ~policy ~reconfig_cost
            { Os_sim.suite; threads; total_pages; mode }
        in
        events := !events + n;
        List.iter
          (fun e ->
            failures :=
              Printf.sprintf "seed %d (%dx%d p%d, %s, %s, rc %g, %d threads): %s"
                seed size size page_pes
                (match mode with Os_sim.Single -> "single" | Os_sim.Multi -> "multi")
                (match policy with
                | Allocator.Halving -> "halving"
                | Allocator.Repack_equal -> "repack"
                | Allocator.Cost_halving -> "cost")
                reconfig_cost n_threads e
              :: !failures)
          errs)
      [ Os_sim.Single; Os_sim.Multi ];
    (!runs, !events, List.rev !failures)
  in
  let cases =
    match pool with
    | Some p -> Cgra_util.Pool.map p one_case seeds
    | None -> List.map one_case seeds
  in
  (* aggregated in seed order: identical at any pool width *)
  List.fold_left
    (fun acc (r, e, fs) ->
      {
        acc with
        runs = acc.runs + r;
        events = acc.events + e;
        failures = acc.failures @ fs;
      })
    { cases = List.length seeds; runs = 0; events = 0; failures = [] }
    cases

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>%d cases, %d traced runs, %d events monitored@,%s@]"
    o.cases o.runs o.events
    (match o.failures with
    | [] -> "all OS invariants hold; replay matches every aggregate"
    | fs ->
        Printf.sprintf "%d FAILURES:\n%s" (List.length fs)
          (String.concat "\n" fs))
