open Cgra_arch
open Cgra_mapper
open Cgra_core

type outcome = {
  cases : int;
  mapped : int;
  folds : int;
  nonzero_base_folds : int;
  refolds : int;
  oracle_runs : int;
  failures : string list;
}

let default_fabrics = [ (4, 4); (4, 2); (6, 8) ]

(* What one seed's case contributes to the outcome.  Cases touch only
   their own counters, so they can run on any domain; the caller sums
   the records in seed order, which keeps counts and failure reports
   identical at any pool width. *)
type stats = {
  s_mapped : int;
  s_folds : int;
  s_nonzero : int;
  s_refolds : int;
  s_oracle_runs : int;
  s_failures : string list;  (* in discovery order *)
}

let run ?(fabrics = default_fabrics) ?(iterations = 8) ?pool ~seeds () =
  if fabrics = [] then invalid_arg "Fuzz.run: no fabrics";
  if iterations < 1 then invalid_arg "Fuzz.run: iterations < 1";
  let fabrics = Array.of_list fabrics in
  let one_case seed =
    let mapped = ref 0 in
    let folds = ref 0 in
    let nonzero = ref 0 in
    let refolds = ref 0 in
    let oracle_runs = ref 0 in
    let failures = ref [] in
    let rng = Cgra_util.Rng.create ~seed in
    let size, page_pes = Cgra_util.Rng.choose rng fabrics in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          failures :=
            Printf.sprintf "seed %d (%dx%d p%d): %s" seed size size page_pes s
            :: !failures)
        fmt
    in
    let arch = Option.get (Cgra.standard ~size ~page_pes) in
    let cfg =
      {
        Cgra_kernels.Synthetic.n_ops = Cgra_util.Rng.int_in rng 8 15;
        mem_fraction = 0.15 +. Cgra_util.Rng.float rng 0.15;
        recurrence = Cgra_util.Rng.bool rng;
      }
    in
    let g = Cgra_kernels.Synthetic.generate ~seed cfg in
    (match Scheduler.map ~seed ?pool Scheduler.Paged arch g with
    | Error _ -> () (* a capacity miss, not an invariant failure *)
    | Ok m -> (
        incr mapped;
        let mem = Cgra_kernels.Synthetic.memory_for ~seed g in
        let verify_and_simulate ~what ~check_mem q =
          (match Verify.mapping ~check_mem q with
          | Ok () -> ()
          | Error es -> fail "%s violates invariants: %s" what (String.concat "; " es));
          incr oracle_runs;
          match Cgra_sim.Check.against_oracle q mem ~iterations with
          | Ok () -> ()
          | Error es -> fail "%s diverges from oracle: %s" what (List.hd es)
        in
        verify_and_simulate ~what:"source mapping" ~check_mem:true m;
        let n = Mapping.n_pages_used m in
        let total = Cgra.n_pages arch in
        (* fold to every target at every feasible base *)
        for target = 1 to n do
          let m_eff = min target n in
          for base = 0 to total - m_eff do
            match Transform.fold ~base_page:base ~target_pages:target m with
            | Error e -> fail "fold target %d base %d refused: %s" target base e
            | Ok sh ->
                incr folds;
                if base > 0 then incr nonzero;
                let expect = Transform.ii_q ~ii_p:m.ii ~n_used:n ~target_pages:target in
                if sh.Transform.mapping.ii <> expect then
                  fail "fold target %d base %d: II %d, law says %d" target base
                    sh.Transform.mapping.ii expect;
                if sh.Transform.pe_exact then
                  verify_and_simulate
                    ~what:(Printf.sprintf "fold target %d base %d" target base)
                    ~check_mem:false sh.Transform.mapping
          done
        done;
        (* relocate to a non-zero base, re-mark paged, fold again: the
           regression class where length-n arrays met absolute page ids *)
        if Page.is_rect arch.Cgra.pages && Page.is_square_tile arch.Cgra.pages
           && total > n
        then begin
          let b = Cgra_util.Rng.int_in rng 1 (total - n) in
          match Transform.fold ~base_page:b ~target_pages:n m with
          | Error e -> fail "relocation to base %d refused: %s" b e
          | Ok sh when not sh.Transform.pe_exact ->
              fail "relocation to base %d not PE-exact on square tiles" b
          | Ok sh -> (
              incr refolds;
              let relocated = { sh.Transform.mapping with Mapping.paged = true } in
              (match Verify.mapping relocated with
              | Ok () -> ()
              | Error es ->
                  fail "relocated mapping at base %d invalid: %s" b
                    (String.concat "; " es));
              match Transform.fold ~target_pages:1 relocated with
              | Error e -> fail "refold from base %d refused: %s" b e
              | Ok sh2 ->
                  incr folds;
                  let expect = Transform.ii_q ~ii_p:relocated.Mapping.ii ~n_used:n ~target_pages:1 in
                  if sh2.Transform.mapping.ii <> expect then
                    fail "refold from base %d: II %d, law says %d" b
                      sh2.Transform.mapping.ii expect;
                  if sh2.Transform.pe_exact then
                    verify_and_simulate
                      ~what:(Printf.sprintf "refold from base %d" b)
                      ~check_mem:false sh2.Transform.mapping)
        end));
    {
      s_mapped = !mapped;
      s_folds = !folds;
      s_nonzero = !nonzero;
      s_refolds = !refolds;
      s_oracle_runs = !oracle_runs;
      s_failures = List.rev !failures;
    }
  in
  let cases =
    match pool with
    | Some p -> Cgra_util.Pool.map p one_case seeds
    | None -> List.map one_case seeds
  in
  List.fold_left
    (fun acc c ->
      {
        acc with
        mapped = acc.mapped + c.s_mapped;
        folds = acc.folds + c.s_folds;
        nonzero_base_folds = acc.nonzero_base_folds + c.s_nonzero;
        refolds = acc.refolds + c.s_refolds;
        oracle_runs = acc.oracle_runs + c.s_oracle_runs;
        failures = acc.failures @ c.s_failures;
      })
    {
      cases = List.length seeds;
      mapped = 0;
      folds = 0;
      nonzero_base_folds = 0;
      refolds = 0;
      oracle_runs = 0;
      failures = [];
    }
    cases

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%d cases (%d mapped), %d folds (%d at base > 0), %d refolds, %d oracle \
     runs@,%s@]"
    o.cases o.mapped o.folds o.nonzero_base_folds o.refolds o.oracle_runs
    (match o.failures with
    | [] -> "all invariants hold"
    | fs -> Printf.sprintf "%d FAILURES:\n%s" (List.length fs) (String.concat "\n" fs))
