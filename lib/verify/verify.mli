(** Mechanical checker for the paper's mapping invariants.

    [Mapping.validate] is the {e compiler's} legality filter; this module
    is an {e independent} re-implementation of the rules from the paper's
    statement of them, used to cross-check the compiler, the PageMaster
    transformation, and any future producer of mappings.  Each finding is
    tagged with the rule it violates, so the fuzz harness and the CLI can
    report which class of invariant broke.

    Rules checked (Sections IV and VI of the paper):

    - {b Schedule}: [ii >= 1], every non-const node placed exactly once
      at a non-negative time, const nodes unplaced, memory-ordering
      edges respected.
    - {b Bounds}: every operation and routing hop inside the fabric and,
      for paged mappings, inside a page (not on remainder PEs).
    - {b Slot_conflict}: exclusive occupancy of each (PE, modulo-slot).
    - {b Continuity}: each producer-to-reader step of every edge —
      producer to first hop, hop to hop, last holder to consumer — is
      between the same PE or grid neighbours, at least one cycle apart
      (values become readable the cycle after they are written).
    - {b Ring}: the data-flow paging constraint — page [n] at time [t]
      consumes only from page [n-1] or page [n] at [t-1]; the used pages
      form a contiguous run of the ring order (any base page); band
      pages additionally require serpentine-consecutive transfers so
      that page reversal stays legal.
    - {b Rf_capacity}: the register-usage constraint — a value alive [l]
      cycles occupies [ceil (l/ii)] rotating registers of its holder's
      file; per-PE totals stay within [rf_capacity].
    - {b Mem_ports}: at most [mem_ports_per_row] memory operations per
      row per modulo-slot.
    - {b Routes}: routes reference real DFG edges, at most one route per
      edge, none for const edges. *)

type rule =
  | Schedule
  | Bounds
  | Slot_conflict
  | Continuity
  | Ring
  | Rf_capacity
  | Mem_ports
  | Routes

val rule_name : rule -> string

type violation = { rule : rule; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val check : ?check_mem:bool -> Cgra_mapper.Mapping.t -> violation list
(** All violations found, in discovery order.  [check_mem] (default
    [true]) controls the {b Mem_ports} rule: folded runtime schedules
    interleave pages in time, and the paper models memory-port pressure
    at compile time only, so callers verifying [Transform.fold] output
    disable it (as the repo's validator-based tests always have). *)

val mapping : ?check_mem:bool -> Cgra_mapper.Mapping.t -> (unit, string list) result
(** [check] with each violation rendered as ["rule: detail"]. *)
