(** Differential fuzzing of co-residency checking: the runtime's own
    filter ([Cgra_sim.Coexec.check]) against the independent checker
    ({!Meld.check}), over randomized melded resident sets.

    Each seed drives one deterministic case through {!Cgra_util.Rng}:
    pick a fabric, draw 1–4 random kernels from the suite (compiled once
    per fabric through [Binary]'s memoized cache), push them through a
    random allocator grant/release churn (random policy, random release
    and re-request orders), fold each survivor into its granted range
    with the PageMaster transformation, and then

    - run [Coexec.check] (under a live trace) and {!Meld.check} on the
      same resident set and require accept/reject agreement — and, on
      accept, an identical report (exact float equality: both checkers
      fold the same per-resident terms in the same order);
    - cross-check the emitted [coexec.*] trace events against the
      outcome: the check span is present, an accepted set's counters
      reproduce the report exactly, and a rejected set emits one
      [coexec.violation] mark per error, in order;
    - inject mutants: a duplicated resident (both checkers must reject;
      {!Meld} must name {b Disjoint}), a resident claiming a shifted
      allocator grant ({!Meld} must name {b Page_range}), and a resident
      compiled for a different fabric (both must reject; {!Meld} must
      name {b Residents}).

    Everything is reproducible from the seed list; with a pool, cases
    fan out across domains and are aggregated in seed order, so the
    outcome is identical at any width. *)

type outcome = {
  cases : int;  (** seeds attempted *)
  sets : int;  (** resident sets checked differentially *)
  residents : int;  (** residents across all non-mutant sets *)
  accepts : int;  (** sets both checkers accepted (reports compared) *)
  rejects : int;  (** sets both checkers rejected *)
  mutants : int;  (** corrupted sets injected and rejected *)
  failures : string list;  (** human-readable, with seed context; [] = pass *)
}

val default_fabrics : (int * int) list
(** [(size, page_pes)] choices: [(4, 2); (6, 4); (8, 4)]. *)

val run :
  ?fabrics:(int * int) list ->
  ?pool:Cgra_util.Pool.t ->
  seeds:int list ->
  unit ->
  outcome

val pp_outcome : Format.formatter -> outcome -> unit
