open Cgra_arch
open Cgra_core
module T = Cgra_trace.Trace

type outcome = {
  cases : int;
  sets : int;
  residents : int;
  accepts : int;
  rejects : int;
  mutants : int;
  failures : string list;
}

let default_fabrics = [ (4, 2); (6, 4); (8, 4) ]

(* What one seed's case contributes; summed in seed order by the caller,
   so counts and failure reports are identical at any pool width. *)
type stats = {
  s_sets : int;
  s_residents : int;
  s_accepts : int;
  s_rejects : int;
  s_mutants : int;
  s_failures : string list;
}

let has_rule rule = function
  | Ok _ -> false
  | Error vs -> List.exists (fun (v : Meld.violation) -> v.rule = rule) vs

(* The coexec.* events the runtime emitted, held against the outcome it
   returned: span present, counters reproduce an accepted report exactly,
   one violation mark per error in order. *)
let trace_cross_check events outcome =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let spans =
    List.filter_map
      (fun (e : T.event) ->
        match e.payload with
        | T.Span_begin { name = "coexec.check" } -> Some `Begin
        | T.Span_end { name = "coexec.check" } -> Some `End
        | _ -> None)
      events
  in
  if not (List.mem `Begin spans && List.mem `End spans) then
    err "trace is missing the coexec.check span";
  let counter name =
    List.find_map
      (fun (e : T.event) ->
        match e.payload with
        | T.Counter c when c.name = name -> Some c.value
        | _ -> None)
      events
  in
  let marks =
    List.filter_map
      (fun (e : T.event) ->
        match e.payload with
        | T.Mark { name = "coexec.violation"; detail } -> Some detail
        | _ -> None)
      events
  in
  (match outcome with
  | Ok (rep : Cgra_sim.Coexec.report) ->
      if marks <> [] then
        err "accepted set emitted %d coexec.violation marks" (List.length marks);
      List.iter
        (fun (name, expected) ->
          match counter name with
          | None -> err "accepted set emitted no %s counter" name
          | Some v ->
              if compare (v : float) expected <> 0 then
                err "%s counter says %.17g, report says %.17g" name v expected)
        [
          ("coexec.residents", float_of_int rep.residents);
          ("coexec.hyperperiod", float_of_int rep.hyperperiod);
          ("coexec.ipc", rep.ipc);
          ("coexec.utilization", rep.utilization);
        ]
  | Error es ->
      if marks <> es then
        err "rejected set emitted %d coexec.violation marks for %d errors%s"
          (List.length marks) (List.length es)
          (if List.length marks = List.length es then " (details differ)" else ""));
  List.rev !errs

let run ?(fabrics = default_fabrics) ?pool ~seeds () =
  if fabrics = [] then invalid_arg "Meld_fuzz.run: no fabrics";
  let fabric_arr = Array.of_list fabrics in
  let suite_for (size, page_pes) =
    let arch = Option.get (Cgra.standard ~size ~page_pes) in
    match Binary.compile_suite ~seed:1 arch with
    | Ok suite -> (arch, Array.of_list suite)
    | Error e ->
        failwith
          (Printf.sprintf "Meld_fuzz: %dx%d p%d suite failed: %s" size size
             page_pes e)
  in
  let one_case seed =
    let sets = ref 0 in
    let residents_n = ref 0 in
    let accepts = ref 0 in
    let rejects = ref 0 in
    let mutants = ref 0 in
    let failures = ref [] in
    let rng = Cgra_util.Rng.create ~seed in
    let ((size, page_pes) as fabric) = Cgra_util.Rng.choose rng fabric_arr in
    let fail fmt =
      Printf.ksprintf
        (fun s ->
          failures :=
            Printf.sprintf "seed %d (%dx%d p%d): %s" seed size size page_pes s
            :: !failures)
        fmt
    in
    let arch, binaries = suite_for fabric in
    let total_pages = Cgra.n_pages arch in
    let policy =
      if Cgra_util.Rng.bool rng then Allocator.Halving else Allocator.Repack_equal
    in
    let al = Allocator.create ~policy ~total_pages () in
    let placed : (int, Binary.t) Hashtbl.t = Hashtbl.create 8 in
    let k = Cgra_util.Rng.int_in rng 1 4 in
    for client = 0 to k - 1 do
      let b = Cgra_util.Rng.choose rng binaries in
      match Allocator.request al ~client ~desired:(Binary.pages_used b) with
      | Some _ -> Hashtbl.replace placed client b
      | None -> ()
    done;
    (* random release / re-request churn, to fragment the page space *)
    for _ = 1 to Cgra_util.Rng.int_in rng 0 2 do
      let live =
        Hashtbl.fold (fun c _ acc -> c :: acc) placed [] |> List.sort compare
      in
      match live with
      | [] -> ()
      | _ ->
          let c = List.nth live (Cgra_util.Rng.int rng (List.length live)) in
          let b = Hashtbl.find placed c in
          Allocator.release al ~client:c;
          if Allocator.request al ~client:c ~desired:(Binary.pages_used b) = None
          then Hashtbl.remove placed c
    done;
    (* fold every survivor into its grant; these are the melded residents *)
    let residents =
      List.filter_map
        (fun (c, (r : Allocator.range)) ->
          let b = Hashtbl.find placed c in
          match
            Transform.fold ~base_page:r.base ~target_pages:r.len b.Binary.paged
          with
          | Error e ->
              fail "fold of %s into [%d+%d] refused: %s" b.Binary.name r.base
                r.len e;
              None
          | Ok sh -> Some (Meld.of_shrunk ~grant:r ~id:c sh))
        (Allocator.clients al)
    in
    let mappings = List.map (fun (r : Meld.resident) -> r.mapping) residents in
    let check_mem = Cgra_util.Rng.bool rng in
    let trace = T.make () in
    let co = Cgra_sim.Coexec.check ~check_mem ~trace mappings in
    let me = Meld.check ~check_mem residents in
    incr sets;
    residents_n := !residents_n + List.length residents;
    (match (co, me) with
    | Ok cr, Ok mr ->
        incr accepts;
        if cr.Cgra_sim.Coexec.residents <> mr.Meld.residents then
          fail "reports disagree on residents: %d vs %d"
            cr.Cgra_sim.Coexec.residents mr.Meld.residents;
        if cr.Cgra_sim.Coexec.hyperperiod <> mr.Meld.hyperperiod then
          fail "reports disagree on hyperperiod: %d vs %d"
            cr.Cgra_sim.Coexec.hyperperiod mr.Meld.hyperperiod;
        if compare cr.Cgra_sim.Coexec.ipc mr.Meld.ipc <> 0 then
          fail "reports disagree on ipc: %.17g vs %.17g" cr.Cgra_sim.Coexec.ipc
            mr.Meld.ipc;
        if compare cr.Cgra_sim.Coexec.utilization mr.Meld.utilization <> 0 then
          fail "reports disagree on utilization: %.17g vs %.17g"
            cr.Cgra_sim.Coexec.utilization mr.Meld.utilization
    | Error _, Error _ -> incr rejects
    | Ok _, Error vs ->
        fail "checker rejects a set the runtime accepts: %s"
          (Format.asprintf "%a" Meld.pp_violation (List.hd vs))
    | Error es, Ok _ ->
        fail "runtime rejects a set the checker accepts: %s" (List.hd es));
    List.iter (fun e -> fail "trace: %s" e) (trace_cross_check (T.events trace) co);
    (* ----- mutants: corrupted sets must be rejected ----- *)
    (match residents with
    | [] -> ()
    | (first : Meld.resident) :: _ ->
        (* a duplicated resident occupies every one of its PEs twice *)
        let next_id =
          1 + List.fold_left (fun acc (r : Meld.resident) -> max acc r.id) 0 residents
        in
        let dup = { first with Meld.id = next_id } in
        let co' =
          Cgra_sim.Coexec.check ~check_mem:false
            (mappings @ [ first.Meld.mapping ])
        in
        let me' = Meld.check ~check_mem:false (residents @ [ dup ]) in
        incr mutants;
        (match co' with
        | Ok _ -> fail "runtime accepts a duplicated resident"
        | Error _ -> ());
        if not (has_rule Meld.Disjoint me') then
          fail "checker misses the duplicated resident (no disjoint violation)";
        (* a resident lying about its grant: shift the claimed range past
           the pages it actually occupies *)
        (match first.Meld.grant with
        | None -> ()
        | Some g ->
            let lied =
              { first with Meld.grant = Some { g with Allocator.base = g.base + 1 } }
            in
            incr mutants;
            if
              not
                (has_rule Meld.Page_range
                   (Meld.check ~check_mem:false
                      (lied :: List.tl residents)))
            then fail "checker misses a shifted grant (no page-range violation)");
        (* a resident compiled for a different fabric *)
        if List.exists (fun f -> f <> fabric) fabrics && Cgra_util.Rng.bool rng
        then begin
          let other = List.find (fun f -> f <> fabric) fabrics in
          let _, foreign_binaries = suite_for other in
          let fb = Cgra_util.Rng.choose rng foreign_binaries in
          let foreign = Meld.resident ~id:(next_id + 1) fb.Binary.paged in
          incr mutants;
          (match
             Cgra_sim.Coexec.check ~check_mem:false
               (mappings @ [ fb.Binary.paged ])
           with
          | Ok _ -> fail "runtime accepts a resident from another fabric"
          | Error _ -> ());
          if
            not
              (has_rule Meld.Residents
                 (Meld.check ~check_mem:false (residents @ [ foreign ])))
          then fail "checker misses a foreign-fabric resident"
        end);
    {
      s_sets = !sets;
      s_residents = !residents_n;
      s_accepts = !accepts;
      s_rejects = !rejects;
      s_mutants = !mutants;
      s_failures = List.rev !failures;
    }
  in
  let cases =
    match pool with
    | Some p -> Cgra_util.Pool.map p one_case seeds
    | None -> List.map one_case seeds
  in
  List.fold_left
    (fun acc c ->
      {
        acc with
        sets = acc.sets + c.s_sets;
        residents = acc.residents + c.s_residents;
        accepts = acc.accepts + c.s_accepts;
        rejects = acc.rejects + c.s_rejects;
        mutants = acc.mutants + c.s_mutants;
        failures = acc.failures @ c.s_failures;
      })
    {
      cases = List.length seeds;
      sets = 0;
      residents = 0;
      accepts = 0;
      rejects = 0;
      mutants = 0;
      failures = [];
    }
    cases

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%d meld cases: %d resident sets (%d residents), %d accepted / %d \
     rejected in agreement, %d mutants rejected@,%s@]"
    o.cases o.sets o.residents o.accepts o.rejects o.mutants
    (match o.failures with
    | [] -> "runtime and independent checker agree on every set"
    | fs ->
        Printf.sprintf "%d FAILURES:\n%s" (List.length fs) (String.concat "\n" fs))
