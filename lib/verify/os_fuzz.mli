(** Property-based fuzzing of the OS layer through its trace.

    Where {!Fuzz} shakes the compile → fold → execute pipeline, this
    module shakes the runtime above it: random workloads are run through
    {!Cgra_core.Os_sim} with a live trace collector, and the emitted
    event stream is held to the OS invariants that the aggregate
    [result_t] cannot express:

    - the service queue never holds a thread twice, and every stall
      event's reported depth matches a replayed queue;
    - pages are conserved at {e every} instant: allocations stay
      disjoint, in bounds, and never exceed the fabric at each timestamp
      boundary (events sharing a timestamp are one transaction — a
      repack rewrites several residents at once);
    - every occupancy sample matches the pages its thread actually holds
      at that moment;
    - grants, reshapes, and releases are consistent with the held ranges
      they claim to transform;
    - threads finish exactly once, holding nothing, queued nowhere, and
      the run ends with the fabric empty;
    - event times never go backwards.

    Each traced run is then folded back through
    {!Cgra_trace.Replay.aggregates} and compared {e exactly} — every
    field, including the float accumulations — against the simulator's
    own [result_t]; in particular [stalls] must equal the number of
    observed queue events.  Everything is reproducible from the seed. *)

val monitor : Cgra_trace.Trace.event list -> string list
(** Check the stream invariants above; [[]] means they all hold.
    Messages carry the offending event's sequence number. *)

val replay_check :
  Cgra_core.Os_sim.result_t -> Cgra_trace.Trace.event list -> string list
(** Fold the stream through {!Cgra_trace.Replay.aggregates} and compare
    every field — exactly, floats included — against the simulator's
    result; [[]] means the trace is a complete witness. *)

val check_run :
  ?policy:Cgra_core.Allocator.policy ->
  ?reconfig_cost:float ->
  Cgra_core.Os_sim.params ->
  int * string list
(** Run the simulator with a fresh collector, monitor the stream, and
    cross-check {!Cgra_trace.Replay.aggregates} against the returned
    [result_t].  Returns (events checked, failures). *)

type outcome = {
  cases : int;  (** seeds attempted *)
  runs : int;  (** traced simulations (two per seed: Single and Multi) *)
  events : int;  (** events monitored across all runs *)
  failures : string list;  (** human-readable, with seed context; [] = pass *)
}

val default_fabrics : (int * int) list
(** [(size, page_pes)] choices: [(4, 4); (4, 2)] — the contended fabrics
    where stalls, halving, and repacking actually happen. *)

val run :
  ?fabrics:(int * int) list ->
  ?pool:Cgra_util.Pool.t ->
  seeds:int list ->
  unit ->
  outcome
(** Each seed picks a fabric, a thread count in [2..9], a CGRA-need
    level, a policy, and a reconfiguration cost, then checks both Single
    and Multi modes.  Suites are compiled once per fabric (through the
    {!Cgra_core.Binary} compile cache).  With [pool], cases fan out
    across its domains; counters and failures aggregate in seed order,
    so the outcome is identical at any pool width. *)

val pp_outcome : Format.formatter -> outcome -> unit
