(** Independent checker for the co-residency invariants of melded
    schedules (Section V of the paper).

    [Cgra_sim.Coexec.check] is the {e runtime's} own legality filter for
    resident sets; this module is an independent re-implementation of the
    same invariants from the paper's statement of them, in the mould of
    {!Verify} for single mappings, so the runtime and the checker can be
    fuzzed differentially ({!Meld_fuzz}) and neither can silently drift.

    Rules checked:

    - {b Residents}: the set is non-empty and every resident targets the
      same fabric as the first.
    - {b Disjoint}: no PE is occupied (by an operation or a routing hop)
      by two residents.  Residents run different IIs, so any shared PE
      eventually collides regardless of modulo slot.
    - {b Page_range}: each resident's occupied pages form one contiguous
      run of the ring order; when the resident carries the allocator
      grant it was folded into, its pages stay inside that grant, and the
      grants themselves are in bounds and pairwise disjoint.
    - {b Bus_capacity}: walking every cycle of the lcm-of-IIs
      hyperperiod, the memory operations the residents issue on each
      row's shared bus never exceed [mem_ports_per_row].  (The walk is
      cycle-major — a deliberately different algorithm from [Coexec]'s
      op-major marking.)
    - {b Resident_legal}: every PE-exact resident passes the
      single-mapping checker ({!Verify.check}, without the per-mapping
      memory-port rule — bus pressure is checked across residents by
      {b Bus_capacity}). *)

type rule =
  | Residents
  | Disjoint
  | Page_range
  | Bus_capacity
  | Resident_legal

val rule_name : rule -> string

type violation = { rule : rule; detail : string }

val pp_violation : Format.formatter -> violation -> unit

type resident = {
  id : int;  (** allocator client id (or list position) *)
  mapping : Cgra_mapper.Mapping.t;
  grant : Cgra_core.Allocator.range option;
      (** the page range the allocator handed this resident, if known *)
  exact : bool;
      (** PE coordinates are physical ([Transform.shrunk.pe_exact]);
          enables the {b Resident_legal} rule for this resident *)
}

val resident :
  ?grant:Cgra_core.Allocator.range -> ?exact:bool -> id:int ->
  Cgra_mapper.Mapping.t -> resident
(** [exact] defaults to [false]. *)

val of_shrunk :
  ?grant:Cgra_core.Allocator.range -> id:int -> Cgra_core.Transform.shrunk ->
  resident
(** A resident from a PageMaster fold result; [exact] comes from
    [pe_exact]. *)

type report = {
  residents : int;
  hyperperiod : int;  (** lcm of the residents' IIs *)
  ipc : float;  (** aggregate ops per cycle *)
  utilization : float;  (** aggregate PE utilization *)
}

val hyperperiod : Cgra_mapper.Mapping.t list -> int
(** lcm of the IIs (1 for the empty list). *)

val check :
  ?check_mem:bool ->
  ?trace:Cgra_trace.Trace.t ->
  resident list ->
  (report, violation list) result
(** All violations found, or the independently recomputed report.
    [check_mem] (default [true]) controls the {b Bus_capacity} rule,
    mirroring [Coexec.check].

    When [trace] is live the check runs inside a [meld.check] span; every
    violation is emitted as a [meld.violation] mark and an accepted set
    lands as [meld.*] counter events, mirroring the [coexec.*]
    vocabulary. *)

val check_mappings :
  ?check_mem:bool ->
  ?trace:Cgra_trace.Trace.t ->
  Cgra_mapper.Mapping.t list ->
  (report, violation list) result
(** [check] over bare mappings (ids by list position, no grants, no
    per-resident checking) — the exact surface [Coexec.check] offers,
    for differential comparison. *)
