(** Byte-level serialization of compiled artifacts.

    This is the persistence contract behind the on-disk binary store
    ([Cgra_store]): a compiled kernel — its unconstrained and paged
    {!Cgra_mapper.Mapping.t}s, or a lowered {!Config.t} context image —
    round-trips through an explicit, versioned byte format so that
    thread launch can be a disk read instead of a scheduler run.

    Design rules:

    - {b Explicit format}: every encoder writes fields one by one
      (zigzag LEB128 varints, length-prefixed strings).  Nothing uses
      [Marshal], so artifacts are stable across compiler versions and
      can be digested byte-for-byte.
    - {b Versioned}: {!format_version} names the payload shape.  The
      store refuses (and recompiles past) any artifact whose version
      word differs — decoders never need to speak old dialects.
    - {b Closed over identity}: mapping payloads do not embed the
      architecture or the kernel graph; the caller supplies both at
      decode time, and the store's key (arch fingerprint x graph
      digest) guarantees they are the ones the artifact was compiled
      against.
    - {b Total decoders}: decoding never raises on hostile bytes — any
      truncation, range error, or trailing garbage is an [Error],
      which the cache treats as a miss. *)

val format_version : int
(** Version word of every payload this module writes.  Bump whenever any
    encoding below changes shape; the store segregates artifacts by it. *)

(** {1 Canonical kernel identity} *)

val graph_bytes : Cgra_dfg.Graph.t -> string
(** Canonical encoding of a kernel DFG: name, per-node operations in id
    order, and the edge list in definition order.  Two structurally
    identical graphs encode identically; this is what {!graph_digest}
    hashes, not any pretty-printed rendering. *)

val graph_digest : Cgra_dfg.Graph.t -> string
(** MD5 of {!graph_bytes}, in hex — the kernel component of persistent
    cache keys. *)

(** {1 Mappings} *)

val mapping_bytes : Cgra_mapper.Mapping.t -> string
(** Placements, routes, II, and the paged flag — everything the mapping
    adds on top of its (externally keyed) arch and graph. *)

val mapping_of_bytes :
  arch:Cgra_arch.Cgra.t ->
  graph:Cgra_dfg.Graph.t ->
  string ->
  (Cgra_mapper.Mapping.t, string) result
(** Inverse of {!mapping_bytes} over the given arch and graph.  Checks
    structural sanity (placement count matches the graph, routed edges
    exist in it) but not schedule legality — run
    [Cgra_mapper.Mapping.validate] for that. *)

(** {1 Compiled binaries (base + paged mapping pair)} *)

val binary_payload :
  name:string -> base:Cgra_mapper.Mapping.t -> paged:Cgra_mapper.Mapping.t -> string

val binary_of_payload :
  arch:Cgra_arch.Cgra.t ->
  graph:Cgra_dfg.Graph.t ->
  string ->
  (string * Cgra_mapper.Mapping.t * Cgra_mapper.Mapping.t, string) result
(** [(name, base, paged)] from a {!binary_payload}. *)

(** {1 Context images} *)

val config_bytes : Config.t -> string
(** Full per-PE context image, including debug node annotations — a
    decoded image runs bit-identically under {!Exec_image.run}. *)

val config_of_bytes : string -> (Config.t, string) result

(** {1 Wire primitives}

    The varint/string framing the encoders above are built from, exposed
    so the artifact store can frame its headers in the same dialect. *)

module Wire : sig
  val w_int : Buffer.t -> int -> unit
  (** Zigzag LEB128: small magnitudes of either sign stay one byte. *)

  val w_str : Buffer.t -> string -> unit
  (** Length-prefixed ({!w_int}) raw bytes. *)

  type reader

  exception Corrupt of string
  (** Raised by the [r_*] functions on truncation or malformed framing;
      callers turn it into a cache miss / [Error]. *)

  val reader : ?pos:int -> string -> reader

  val r_int : reader -> int

  val r_str : reader -> string

  val at_end : reader -> bool
end
