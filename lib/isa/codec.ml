open Cgra_arch
open Cgra_dfg
open Cgra_mapper

(* 2: bandwidth-aware scheduling — the wire shape is unchanged, but the
   scheduler now produces different (better) mappings for the same
   (arch, kernel, seed) key, so stored artifacts from version 1 must be
   re-addressed rather than served. *)
let format_version = 2

(* ----- primitive writers: zigzag LEB128 varints, length-prefixed
   strings.  Every composite encoder below is built from these two, so
   the whole format is byte-stable by construction. ----- *)

let w_int b n =
  (* zigzag: small magnitudes (either sign) stay one byte *)
  let u = ref ((n lsl 1) lxor (n asr 62)) in
  let continue_ = ref true in
  while !continue_ do
    let byte = !u land 0x7f in
    u := !u lsr 7;
    if !u = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue_ := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let w_str b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_bool b v = w_int b (if v then 1 else 0)

let w_list b f xs =
  w_int b (List.length xs);
  List.iter (f b) xs

let w_opt b f = function
  | None -> w_int b 0
  | Some x ->
      w_int b 1;
      f b x

(* ----- primitive readers.  [Corrupt] is internal; the public decoders
   catch it and return [Error], so hostile bytes can never raise. ----- *)

exception Corrupt of string

type reader = { data : string; mutable pos : int }

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let r_int r =
  let v = ref 0 and shift = ref 0 and more = ref true in
  while !more do
    if r.pos >= String.length r.data then corrupt "truncated varint";
    if !shift > 62 then corrupt "varint overflow";
    let byte = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    more := byte land 0x80 <> 0
  done;
  (!v lsr 1) lxor (- (!v land 1))

let r_str r =
  let n = r_int r in
  if n < 0 || r.pos + n > String.length r.data then corrupt "truncated string";
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_bool r = match r_int r with 0 -> false | 1 -> true | n -> corrupt "bad bool %d" n

let r_list r f =
  let n = r_int r in
  if n < 0 then corrupt "negative list length %d" n;
  List.init n (fun _ -> f r)

let r_opt r f = match r_int r with 0 -> None | 1 -> Some (f r) | n -> corrupt "bad option tag %d" n

let finish r v =
  if r.pos <> String.length r.data then corrupt "trailing garbage (%d of %d bytes read)" r.pos (String.length r.data);
  v

let decoding what f s =
  match f { data = s; pos = 0 } with
  | v -> Ok v
  | exception Corrupt e -> Error (Printf.sprintf "%s: %s" what e)

(* ----- operations ----- *)

let cmp_tag = function Op.Lt -> 0 | Le -> 1 | Eq -> 2 | Ne -> 3 | Gt -> 4 | Ge -> 5

let cmp_of_tag = function
  | 0 -> Op.Lt | 1 -> Le | 2 -> Eq | 3 -> Ne | 4 -> Gt | 5 -> Ge
  | n -> corrupt "bad cmp tag %d" n

let w_op b (op : Op.t) =
  let tag n = w_int b n in
  match op with
  | Const k -> tag 0; w_int b k
  | Iter -> tag 1
  | Add -> tag 2
  | Sub -> tag 3
  | Mul -> tag 4
  | Shl -> tag 5
  | Shr -> tag 6
  | And -> tag 7
  | Or -> tag 8
  | Xor -> tag 9
  | Min -> tag 10
  | Max -> tag 11
  | Abs -> tag 12
  | Neg -> tag 13
  | Cmp c -> tag 14; w_int b (cmp_tag c)
  | Select -> tag 15
  | Clamp8 -> tag 16
  | Load { array; offset; stride } -> tag 17; w_str b array; w_int b offset; w_int b stride
  | Load_idx { array } -> tag 18; w_str b array
  | Store { array; offset; stride } -> tag 19; w_str b array; w_int b offset; w_int b stride
  | Store_idx { array } -> tag 20; w_str b array
  | Route -> tag 21

let r_op r : Op.t =
  match r_int r with
  | 0 -> Const (r_int r)
  | 1 -> Iter
  | 2 -> Add
  | 3 -> Sub
  | 4 -> Mul
  | 5 -> Shl
  | 6 -> Shr
  | 7 -> And
  | 8 -> Or
  | 9 -> Xor
  | 10 -> Min
  | 11 -> Max
  | 12 -> Abs
  | 13 -> Neg
  | 14 -> Cmp (cmp_of_tag (r_int r))
  | 15 -> Select
  | 16 -> Clamp8
  | 17 ->
      let array = r_str r in
      let offset = r_int r in
      let stride = r_int r in
      Load { array; offset; stride }
  | 18 -> Load_idx { array = r_str r }
  | 19 ->
      let array = r_str r in
      let offset = r_int r in
      let stride = r_int r in
      Store { array; offset; stride }
  | 20 -> Store_idx { array = r_str r }
  | 21 -> Route
  | n -> corrupt "bad op tag %d" n

(* ----- canonical kernel identity ----- *)

let graph_bytes g =
  let b = Buffer.create 256 in
  w_str b (Graph.name g);
  w_int b (Graph.n_nodes g);
  List.iter (fun (n : Graph.node) -> w_op b n.op) (Graph.nodes g);
  w_list b
    (fun b (e : Graph.edge) ->
      w_int b e.src;
      w_int b e.dst;
      w_int b e.operand;
      w_int b e.distance)
    (Graph.edges g);
  Buffer.contents b

let graph_digest g = Digest.to_hex (Digest.string (graph_bytes g))

(* ----- mappings ----- *)

let w_placement b (p : Mapping.placement) =
  w_int b p.pe.Coord.row;
  w_int b p.pe.Coord.col;
  w_int b p.time

let r_placement r : Mapping.placement =
  let row = r_int r in
  let col = r_int r in
  let time = r_int r in
  { pe = Coord.make ~row ~col; time }

let w_mapping b (m : Mapping.t) =
  w_int b m.Mapping.ii;
  w_bool b m.Mapping.paged;
  w_int b (Array.length m.Mapping.placements);
  Array.iter (fun p -> w_opt b w_placement p) m.Mapping.placements;
  w_list b
    (fun b (route : Mapping.route) ->
      w_int b route.edge.Graph.src;
      w_int b route.edge.Graph.dst;
      w_int b route.edge.Graph.operand;
      w_int b route.edge.Graph.distance;
      w_list b w_placement route.hops)
    m.Mapping.routes

let r_mapping ~arch ~graph r : Mapping.t =
  let ii = r_int r in
  if ii < 1 then corrupt "ii %d < 1" ii;
  let paged = r_bool r in
  let n = r_int r in
  if n <> Graph.n_nodes graph then
    corrupt "placement count %d does not match the %d-node graph" n
      (Graph.n_nodes graph);
  let placements = Array.init n (fun _ -> r_opt r r_placement) in
  let edge_set = Graph.edges graph in
  let routes =
    r_list r (fun r ->
        let src = r_int r in
        let dst = r_int r in
        let operand = r_int r in
        let distance = r_int r in
        let edge = { Graph.src; dst; operand; distance } in
        if not (List.mem edge edge_set) then
          corrupt "route for edge %d->%d absent from the graph" src dst;
        let hops = r_list r r_placement in
        { Mapping.edge; hops })
  in
  { Mapping.arch; graph; ii; placements; routes; paged }

let mapping_bytes m =
  let b = Buffer.create 512 in
  w_mapping b m;
  Buffer.contents b

let mapping_of_bytes ~arch ~graph s =
  decoding "mapping" (fun r -> finish r (r_mapping ~arch ~graph r)) s

(* ----- compiled binaries ----- *)

let binary_payload ~name ~base ~paged =
  let b = Buffer.create 1024 in
  w_str b name;
  w_mapping b base;
  w_mapping b paged;
  Buffer.contents b

let binary_of_payload ~arch ~graph s =
  decoding "binary" (fun r ->
      let name = r_str r in
      let base = r_mapping ~arch ~graph r in
      let paged = r_mapping ~arch ~graph r in
      finish r (name, base, paged))
    s

(* ----- context images ----- *)

let w_src b = function
  | Config.Imm k -> w_int b 0; w_int b k
  | Config.Self reg -> w_int b 1; w_int b reg
  | Config.Neigh (d, reg) ->
      w_int b 2;
      w_int b (match d with Coord.North -> 0 | East -> 1 | South -> 2 | West -> 3);
      w_int b reg

let r_src r =
  match r_int r with
  | 0 -> Config.Imm (r_int r)
  | 1 -> Config.Self (r_int r)
  | 2 ->
      let d =
        match r_int r with
        | 0 -> Coord.North | 1 -> East | 2 -> South | 3 -> West
        | n -> corrupt "bad direction tag %d" n
      in
      Config.Neigh (d, r_int r)
  | n -> corrupt "bad src tag %d" n

let w_context b (c : Config.context) =
  w_op b c.Config.op;
  w_list b
    (fun b (o : Config.operand) ->
      w_src b o.Config.sel;
      w_int b o.Config.valid_from)
    c.Config.srcs;
  w_opt b w_int c.Config.dst;
  w_int b c.Config.stage;
  w_opt b w_int c.Config.debug_node

let r_context r : Config.context =
  let op = r_op r in
  let srcs =
    r_list r (fun r ->
        let sel = r_src r in
        let valid_from = r_int r in
        { Config.sel; valid_from })
  in
  let dst = r_opt r r_int in
  let stage = r_int r in
  let debug_node = r_opt r r_int in
  { Config.op; srcs; dst; stage; debug_node }

let config_bytes (t : Config.t) =
  let b = Buffer.create 1024 in
  w_int b t.Config.ii;
  w_int b t.Config.rows;
  w_int b t.Config.cols;
  w_int b t.Config.reg_capacity;
  Array.iter (fun row -> Array.iter (fun c -> w_opt b w_context c) row) t.Config.contexts;
  Buffer.contents b

let config_of_bytes s =
  decoding "config" (fun r ->
      let ii = r_int r in
      let rows = r_int r in
      let cols = r_int r in
      let reg_capacity = r_int r in
      if ii < 1 || rows < 1 || cols < 1 || reg_capacity < 1 then
        corrupt "non-positive image dimensions";
      if rows * cols > 1 lsl 20 || ii > 1 lsl 20 then corrupt "absurd image dimensions";
      let contexts =
        Array.init (rows * cols) (fun _ -> Array.init ii (fun _ -> r_opt r r_context))
      in
      finish r { Config.ii; rows; cols; reg_capacity; contexts })
    s

module Wire = struct
  let w_int = w_int

  let w_str = w_str

  type nonrec reader = reader

  exception Corrupt = Corrupt

  let reader ?(pos = 0) data = { data; pos }

  let r_int = r_int

  let r_str = r_str

  let at_end r = r.pos = String.length r.data
end
