(** Pure reconstruction of runtime aggregates from an event stream.

    A trace is only trustworthy if it is {e complete}: this module folds
    an event list back into the same aggregate record the discrete-event
    simulator reports, so every traced run carries an independent
    witness of its own summary.  The contract with the emitter is exact:
    occupancy samples are emitted at precisely the simulator's
    busy-page-cycle accrual points and replay folds them in stream
    order, so the floating-point accumulations reproduce {e bit for
    bit} — [Os_sim.result_t] and {!aggregates} must agree on every
    field, not merely within a tolerance (the test-suite asserts
    equality on the whole Fig. 9 grid).

    On top of the aggregate witness, replay derives the timelines the
    paper's narrative is about: page utilization over time, service
    queue depth, and per-thread wait statistics (via
    {!Cgra_util.Stats}). *)

type aggregates = {
  makespan : float;
  finishes : (int * float) list;  (** sorted by thread id *)
  total_ops : float;
  ipc : float;
  busy_page_cycles : float;
  page_utilization : float;
  transformations : int;
  stalls : int;
}

val aggregates : Trace.event list -> (aggregates, string) result
(** [Error] when the stream lacks a [Run_begin] header or ends with
    threads unaccounted for. *)

val utilization_timeline : Trace.event list -> (float * float) list
(** [(time, allocated_fraction)] steps, one per allocation change
    (grants, releases, reshapes), starting at [(0, 0)]. *)

val queue_depth_timeline : Trace.event list -> (float * int) list
(** [(time, waiting_threads)] steps, one per stall or stalled grant. *)

val wait_intervals : Trace.event list -> (int * float) list
(** One entry per served stall: (thread, cycles from queueing to
    grant), in service order. *)

type wait_stats = { n : int; mean : float; p95 : float; max : float }

val wait_statistics : Trace.event list -> wait_stats
(** Summary over {!wait_intervals} ({!Cgra_util.Stats}); zeros when no
    thread ever waited. *)
