(** Trace serialization.

    Two formats, both built on {!Json}:

    - {b JSONL} — one self-describing object per event, in emission
      order.  This is the canonical archival format: it is byte-stable
      for a fixed seed (the test-suite's determinism golden), loads with
      one [read_line] loop from any language, and {!Replay} consumes the
      same event stream it encodes.
    - {b Chrome [trace_event]} — a JSON object loadable in Perfetto or
      [chrome://tracing].  Kernel occupancy becomes duration slices per
      thread track, stall-to-grant waits become ["wait:<kernel>"]
      slices, reshapes and arrivals become instants, and allocated-page /
      queue-depth totals become counter tracks.  Timestamps are CGRA
      cycles (displayed as microseconds — the unit label is cosmetic). *)

val event_json : Trace.event -> Json.value
(** Flat object: [{"seq":…,"t":…,"kind":…, …payload fields}]. *)

val jsonl : Trace.event list -> string
(** One {!event_json} per line, trailing newline included. *)

val chrome : ?process_name:string -> Trace.event list -> string
(** A complete [{"traceEvents": […], …}] document.  Every entry carries
    the originating event kind in its ["cat"] field. *)

val kinds : Trace.event list -> string list
(** Distinct {!Trace.kind_name}s present, sorted. *)

val event_of_json : Json.value -> (Trace.event, string) result
(** Total inverse of {!event_json}: rebuild a typed event from one JSONL
    object.  Unknown kinds, missing fields, and wrong field types are
    [Error]s, never exceptions. *)

val of_jsonl : string -> (Trace.event list, string) result
(** Parse a whole JSONL document (as produced by {!jsonl}) back into
    events, skipping blank lines.  [Export.of_jsonl (Export.jsonl es)]
    returns [Ok es] for any event list.  Errors carry the 1-based line
    number.  This is what lets [cgra_tool profile] analyze archived
    traces post-hoc. *)
