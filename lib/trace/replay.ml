open Trace

type aggregates = {
  makespan : float;
  finishes : (int * float) list;
  total_ops : float;
  ipc : float;
  busy_page_cycles : float;
  page_utilization : float;
  transformations : int;
  stalls : int;
}

(* The accumulations below mirror Os_sim.run operation for operation —
   same operands, same order — so the floats come out identical, not
   merely close.  Do not "simplify" e.g. [elapsed *. float pages] into a
   pre-multiplied event field. *)
let aggregates events =
  let total_pages = ref None in
  let total_ops = ref 0.0 in
  let busy = ref 0.0 in
  let transformations = ref 0 in
  let stalls = ref 0 in
  let finishes = ref [] in
  List.iter
    (fun (e : event) ->
      match e.payload with
      | Run_begin r -> total_pages := Some r.total_pages
      | Kernel_request r -> total_ops := !total_ops +. float_of_int r.ops
      | Occupancy r -> busy := !busy +. (r.elapsed *. float_of_int r.pages)
      | Kernel_stall _ -> incr stalls
      | Reshape _ -> incr transformations
      | Kernel_grant r -> if r.shrunk then incr transformations
      | Thread_finish r -> finishes := (r.thread, e.time) :: !finishes
      | Run_end _ | Thread_arrival _ | Kernel_release _ | Alloc_decision _
      | Farm_begin _ | Farm_request _ | Farm_reject _ | Farm_admit _
      | Farm_resident _ | Farm_retire _ | Farm_end _
      | Counter _ | Span_begin _ | Span_end _ | Mark _ ->
          ())
    events;
  match !total_pages with
  | None -> Error "no run_begin event in the stream"
  | Some pages ->
      let finishes =
        List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !finishes)
      in
      let makespan =
        List.fold_left (fun acc (_, f) -> Float.max acc f) 0.0 finishes
      in
      Ok
        {
          makespan;
          finishes;
          total_ops = !total_ops;
          ipc = (if makespan > 0.0 then !total_ops /. makespan else 0.0);
          busy_page_cycles = !busy;
          page_utilization =
            (if makespan > 0.0 then !busy /. (makespan *. float_of_int pages)
             else 0.0);
          transformations = !transformations;
          stalls = !stalls;
        }

let utilization_timeline events =
  let total =
    List.find_map
      (fun (e : event) ->
        match e.payload with Run_begin r -> Some r.total_pages | _ -> None)
      events
  in
  match total with
  | None -> []
  | Some total ->
      let frac n = float_of_int n /. float_of_int total in
      let allocated = ref 0 in
      let steps = ref [ (0.0, 0.0) ] in
      List.iter
        (fun (e : event) ->
          let record () = steps := (e.time, frac !allocated) :: !steps in
          match e.payload with
          | Kernel_grant r ->
              allocated := !allocated + r.range.len;
              record ()
          | Kernel_release r ->
              allocated := !allocated - r.range.len;
              record ()
          | Reshape r ->
              allocated := !allocated + r.after.len - r.before.len;
              record ()
          | _ -> ())
        events;
      List.rev !steps

let queue_depth_timeline events =
  let waiting = Hashtbl.create 8 in
  let steps = ref [] in
  List.iter
    (fun (e : event) ->
      match e.payload with
      | Kernel_stall r ->
          Hashtbl.replace waiting r.thread ();
          steps := (e.time, Hashtbl.length waiting) :: !steps
      | Kernel_grant r when Hashtbl.mem waiting r.thread ->
          Hashtbl.remove waiting r.thread;
          steps := (e.time, Hashtbl.length waiting) :: !steps
      | _ -> ())
    events;
  List.rev !steps

let wait_intervals events =
  let since = Hashtbl.create 8 in
  let served = ref [] in
  List.iter
    (fun (e : event) ->
      match e.payload with
      | Kernel_stall r ->
          if not (Hashtbl.mem since r.thread) then
            Hashtbl.replace since r.thread e.time
      | Kernel_grant r -> (
          match Hashtbl.find_opt since r.thread with
          | Some t0 ->
              Hashtbl.remove since r.thread;
              served := (r.thread, e.time -. t0) :: !served
          | None -> ())
      | _ -> ())
    events;
  List.rev !served

type wait_stats = { n : int; mean : float; p95 : float; max : float }

let wait_statistics events =
  match wait_intervals events with
  | [] -> { n = 0; mean = 0.0; p95 = 0.0; max = 0.0 }
  | waits ->
      let xs = List.map snd waits in
      {
        n = List.length xs;
        mean = Cgra_util.Stats.mean xs;
        p95 = Cgra_util.Stats.percentile 95.0 xs;
        max = Cgra_util.Stats.maximum xs;
      }
