(** A deliberately small JSON reader/writer.

    The trace exporters need to {e emit} JSON (JSONL and Chrome
    [trace_event] files) and the test-suite needs to {e validate} what
    was emitted — but the project's dependency contract forbids adding
    [yojson].  This module is the minimal, total implementation of both
    directions: a compact writer with correct string escaping and
    round-trip float formatting, and a recursive-descent parser used to
    check that every emitted trace is well-formed.

    Numbers are all [float] (JSON has one number type); integers within
    2{^53} round-trip exactly and print without a fractional part. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

val num_of_int : int -> value
(** [Num (float_of_int n)]. *)

val to_string : value -> string
(** Compact (single-line, no spaces) rendering.  Integral floats print
    with no decimal point; other floats print with enough digits to
    round-trip ([%.15g], widened to [%.17g] when needed). *)

val parse : string -> (value, string) result
(** Full-string parse: leading/trailing whitespace is allowed, trailing
    garbage is an error.  Errors carry a character offset. *)

val member : string -> value -> value option
(** Field lookup in an [Obj]; [None] for other constructors. *)

val to_float : value -> float option

val to_str : value -> string option
