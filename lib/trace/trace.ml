type page_range = { base : int; len : int }

type reshape_kind = Shrink | Expand | Move

type payload =
  | Run_begin of {
      mode : string;
      total_pages : int;
      n_threads : int;
      policy : string;
      reconfig_cost : float;
      rows : int;
      mem_ports : int;
    }
  | Run_end of { makespan : float }
  | Thread_arrival of { thread : int; segments : int }
  | Thread_finish of { thread : int }
  | Kernel_request of {
      thread : int;
      kernel : string;
      iterations : int;
      ops : int;
      mem : int;
      desired : int;
    }
  | Kernel_grant of {
      thread : int;
      kernel : string;
      range : page_range;
      shrunk : bool;
      cost : float;
      rate : float;
    }
  | Kernel_stall of { thread : int; kernel : string; queue_depth : int }
  | Kernel_release of { thread : int; kernel : string; range : page_range }
  | Reshape of {
      thread : int;
      kind : reshape_kind;
      before : page_range;
      after : page_range;
      pages_rewritten : int;
      cost : float;
      rate : float;
    }
  | Occupancy of { thread : int; pages : int; elapsed : float }
  | Alloc_decision of {
      client : int;
      desired : int;
      granted : page_range option;
      considered : (string * page_range) list;
    }
  | Farm_begin of {
      shards : int;
      tenants : int;
      queue_bound : int;
      max_resident : int;
      requests : int;
    }
  | Farm_request of { req : int; tenant : int; kernel : string; iterations : int }
  | Farm_reject of { req : int; tenant : int; queue_depth : int }
  | Farm_admit of { req : int; tenant : int; shard : int }
  | Farm_resident of { req : int; shard : int }
  | Farm_retire of { req : int; tenant : int; shard : int; latency : float }
  | Farm_end of { makespan : float; retired : int; rejected : int }
  | Counter of { name : string; value : float }
  | Span_begin of { name : string }
  | Span_end of { name : string }
  | Mark of { name : string; detail : string }

type event = { seq : int; time : float; payload : payload }

type state = {
  mutable rev_events : event list;
  mutable next_seq : int;
  mutable now : float;
  totals : (string, float ref) Hashtbl.t;
}

type t = Null | On of state

let null = Null

let make () =
  On { rev_events = []; next_seq = 0; now = 0.0; totals = Hashtbl.create 16 }

let enabled = function Null -> false | On _ -> true

let set_clock t time = match t with Null -> () | On s -> s.now <- time

let clock = function Null -> 0.0 | On s -> s.now

let emit_at t ~time payload =
  match t with
  | Null -> ()
  | On s ->
      s.now <- time;
      s.rev_events <- { seq = s.next_seq; time; payload } :: s.rev_events;
      s.next_seq <- s.next_seq + 1

let emit t payload =
  match t with Null -> () | On s -> emit_at t ~time:s.now payload

let events = function Null -> [] | On s -> List.rev s.rev_events

let n_events = function Null -> 0 | On s -> s.next_seq

let count t name v =
  match t with
  | Null -> ()
  | On s -> (
      match Hashtbl.find_opt s.totals name with
      | Some r -> r := !r +. v
      | None -> Hashtbl.add s.totals name (ref v))

let counters = function
  | Null -> []
  | On s ->
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) s.totals []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let with_span t name f =
  match t with
  | Null -> f ()
  | On _ ->
      emit t (Span_begin { name });
      Fun.protect ~finally:(fun () -> emit t (Span_end { name })) f

let kind_name = function
  | Run_begin _ -> "run_begin"
  | Run_end _ -> "run_end"
  | Thread_arrival _ -> "thread_arrival"
  | Thread_finish _ -> "thread_finish"
  | Kernel_request _ -> "kernel_request"
  | Kernel_grant _ -> "kernel_grant"
  | Kernel_stall _ -> "kernel_stall"
  | Kernel_release _ -> "kernel_release"
  | Reshape _ -> "reshape"
  | Occupancy _ -> "occupancy"
  | Alloc_decision _ -> "alloc_decision"
  | Farm_begin _ -> "farm_begin"
  | Farm_request _ -> "farm_request"
  | Farm_reject _ -> "farm_reject"
  | Farm_admit _ -> "farm_admit"
  | Farm_resident _ -> "farm_resident"
  | Farm_retire _ -> "farm_retire"
  | Farm_end _ -> "farm_end"
  | Counter _ -> "counter"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Mark _ -> "mark"

let pp_range ppf (r : page_range) = Format.fprintf ppf "[%d+%d]" r.base r.len

let pp_event ppf e =
  Format.fprintf ppf "@[%6.0f #%d %s" e.time e.seq (kind_name e.payload);
  (match e.payload with
  | Run_begin r ->
      Format.fprintf ppf " mode=%s pages=%d threads=%d policy=%s cost=%g rows=%d ports=%d"
        r.mode r.total_pages r.n_threads r.policy r.reconfig_cost r.rows r.mem_ports
  | Run_end r -> Format.fprintf ppf " makespan=%g" r.makespan
  | Thread_arrival r -> Format.fprintf ppf " t%d segments=%d" r.thread r.segments
  | Thread_finish r -> Format.fprintf ppf " t%d" r.thread
  | Kernel_request r ->
      Format.fprintf ppf " t%d %s x%d ops=%d mem=%d desired=%d" r.thread r.kernel
        r.iterations r.ops r.mem r.desired
  | Kernel_grant r ->
      Format.fprintf ppf " t%d %s %a%s cost=%g rate=%g" r.thread r.kernel pp_range
        r.range
        (if r.shrunk then " (shrunk)" else "")
        r.cost r.rate
  | Kernel_stall r ->
      Format.fprintf ppf " t%d %s depth=%d" r.thread r.kernel r.queue_depth
  | Kernel_release r ->
      Format.fprintf ppf " t%d %s %a" r.thread r.kernel pp_range r.range
  | Reshape r ->
      Format.fprintf ppf " t%d %s %a -> %a rewritten=%d cost=%g rate=%g" r.thread
        (match r.kind with Shrink -> "shrink" | Expand -> "expand" | Move -> "move")
        pp_range r.before pp_range r.after r.pages_rewritten r.cost r.rate
  | Occupancy r ->
      Format.fprintf ppf " t%d pages=%d elapsed=%g" r.thread r.pages r.elapsed
  | Alloc_decision r ->
      Format.fprintf ppf " c%d desired=%d granted=%s considered=%d" r.client
        r.desired
        (match r.granted with
        | Some g -> Format.asprintf "%a" pp_range g
        | None -> "none")
        (List.length r.considered)
  | Farm_begin r ->
      Format.fprintf ppf " shards=%d tenants=%d bound=%d resident=%d requests=%d"
        r.shards r.tenants r.queue_bound r.max_resident r.requests
  | Farm_request r ->
      Format.fprintf ppf " r%d tenant=%d %s x%d" r.req r.tenant r.kernel
        r.iterations
  | Farm_reject r ->
      Format.fprintf ppf " r%d tenant=%d depth=%d" r.req r.tenant r.queue_depth
  | Farm_admit r ->
      Format.fprintf ppf " r%d tenant=%d shard=%d" r.req r.tenant r.shard
  | Farm_resident r -> Format.fprintf ppf " r%d shard=%d" r.req r.shard
  | Farm_retire r ->
      Format.fprintf ppf " r%d tenant=%d shard=%d latency=%g" r.req r.tenant
        r.shard r.latency
  | Farm_end r ->
      Format.fprintf ppf " makespan=%g retired=%d rejected=%d" r.makespan
        r.retired r.rejected
  | Counter r -> Format.fprintf ppf " %s=%g" r.name r.value
  | Span_begin r -> Format.fprintf ppf " %s" r.name
  | Span_end r -> Format.fprintf ppf " %s" r.name
  | Mark r -> Format.fprintf ppf " %s: %s" r.name r.detail);
  Format.fprintf ppf "@]"
