type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

let num_of_int n = Num (float_of_int n)

(* ----- writer ----- *)

let float_repr f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape buf s
  | Arr vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ----- parser ----- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* keep it simple: BMP code points as UTF-8 *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end;
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Bad (at, msg) -> Error (Printf.sprintf "%s at offset %d" msg at)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
