open Trace

let range_json (r : page_range) =
  Json.Obj [ ("base", Json.num_of_int r.base); ("len", Json.num_of_int r.len) ]

let kind_json p = Json.Str (kind_name p)

let reshape_kind_name = function
  | Shrink -> "shrink"
  | Expand -> "expand"
  | Move -> "move"

let payload_fields = function
  | Run_begin r ->
      [
        ("mode", Json.Str r.mode);
        ("total_pages", Json.num_of_int r.total_pages);
        ("threads", Json.num_of_int r.n_threads);
        ("policy", Json.Str r.policy);
        ("reconfig_cost", Json.Num r.reconfig_cost);
      ]
  | Run_end r -> [ ("makespan", Json.Num r.makespan) ]
  | Thread_arrival r ->
      [ ("thread", Json.num_of_int r.thread); ("segments", Json.num_of_int r.segments) ]
  | Thread_finish r -> [ ("thread", Json.num_of_int r.thread) ]
  | Kernel_request r ->
      [
        ("thread", Json.num_of_int r.thread);
        ("kernel", Json.Str r.kernel);
        ("iterations", Json.num_of_int r.iterations);
        ("ops", Json.num_of_int r.ops);
        ("desired", Json.num_of_int r.desired);
      ]
  | Kernel_grant r ->
      [
        ("thread", Json.num_of_int r.thread);
        ("kernel", Json.Str r.kernel);
        ("range", range_json r.range);
        ("shrunk", Json.Bool r.shrunk);
        ("cost", Json.Num r.cost);
        ("rate", Json.Num r.rate);
      ]
  | Kernel_stall r ->
      [
        ("thread", Json.num_of_int r.thread);
        ("kernel", Json.Str r.kernel);
        ("queue_depth", Json.num_of_int r.queue_depth);
      ]
  | Kernel_release r ->
      [
        ("thread", Json.num_of_int r.thread);
        ("kernel", Json.Str r.kernel);
        ("range", range_json r.range);
      ]
  | Reshape r ->
      [
        ("thread", Json.num_of_int r.thread);
        ("reshape", Json.Str (reshape_kind_name r.kind));
        ("before", range_json r.before);
        ("after", range_json r.after);
        ("pages_rewritten", Json.num_of_int r.pages_rewritten);
        ("cost", Json.Num r.cost);
      ]
  | Occupancy r ->
      [
        ("thread", Json.num_of_int r.thread);
        ("pages", Json.num_of_int r.pages);
        ("elapsed", Json.Num r.elapsed);
      ]
  | Alloc_decision r ->
      [
        ("client", Json.num_of_int r.client);
        ("desired", Json.num_of_int r.desired);
        ( "granted",
          match r.granted with Some g -> range_json g | None -> Json.Null );
        ( "considered",
          Json.Arr
            (List.map
               (fun (what, range) ->
                 Json.Obj [ ("what", Json.Str what); ("range", range_json range) ])
               r.considered) );
      ]
  | Counter r -> [ ("name", Json.Str r.name); ("value", Json.Num r.value) ]
  | Span_begin r -> [ ("name", Json.Str r.name) ]
  | Span_end r -> [ ("name", Json.Str r.name) ]
  | Mark r -> [ ("name", Json.Str r.name); ("detail", Json.Str r.detail) ]

let event_json (e : event) =
  Json.Obj
    (("seq", Json.num_of_int e.seq)
    :: ("t", Json.Num e.time)
    :: ("kind", kind_json e.payload)
    :: payload_fields e.payload)

let jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let kinds events =
  List.sort_uniq String.compare
    (List.map (fun (e : event) -> kind_name e.payload) events)

(* ----- Chrome trace_event ----- *)

(* Track layout: pid 1 carries one row per simulated thread (kernel
   occupancy slices and wait slices), pid 2 carries the runtime itself
   (allocator decisions, spans, marks) and the counter tracks. *)

let chrome ?(process_name = "cgra") events =
  let out = ref [] in
  let push v = out := v :: !out in
  let ev ?(pid = 1) ?(tid = 0) ?args ~cat ~name ~ph ~ts () =
    push
      (Json.Obj
         ([
            ("name", Json.Str name);
            ("cat", Json.Str cat);
            ("ph", Json.Str ph);
            ("ts", Json.Num ts);
            ("pid", Json.num_of_int pid);
            ("tid", Json.num_of_int tid);
          ]
         @ match args with None -> [] | Some a -> [ ("args", Json.Obj a) ]))
  in
  let metadata ~pid ?tid which name =
    push
      (Json.Obj
         ([
            ("name", Json.Str which);
            ("ph", Json.Str "M");
            ("pid", Json.num_of_int pid);
          ]
         @ (match tid with Some t -> [ ("tid", Json.num_of_int t) ] | None -> [])
         @ [ ("args", Json.Obj [ ("name", Json.Str name) ]) ]))
  in
  metadata ~pid:1 "process_name" (process_name ^ " threads");
  metadata ~pid:2 "process_name" (process_name ^ " runtime");
  let counter ~ts name value =
    ev ~pid:2 ~cat:"counter" ~name ~ph:"C" ~ts
      ~args:[ ("value", Json.num_of_int value) ]
      ()
  in
  (* derived running totals for the counter tracks *)
  let allocated = ref 0 in
  let queue_depth = ref 0 in
  let waiting : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let handle (e : event) =
    let ts = e.time in
    let cat = kind_name e.payload in
    match e.payload with
    | Run_begin r ->
        ev ~cat ~name:(Printf.sprintf "run %s" r.mode) ~ph:"i" ~ts
          ~args:(payload_fields e.payload) ()
    | Run_end _ ->
        ev ~cat ~name:"run end" ~ph:"i" ~ts ~args:(payload_fields e.payload) ()
    | Thread_arrival r ->
        metadata ~pid:1 ~tid:r.thread "thread_name"
          (Printf.sprintf "thread %d" r.thread);
        ev ~tid:r.thread ~cat ~name:"arrival" ~ph:"i" ~ts
          ~args:(payload_fields e.payload) ()
    | Thread_finish r ->
        ev ~tid:r.thread ~cat ~name:"finish" ~ph:"i" ~ts ()
    | Kernel_request r ->
        ev ~tid:r.thread ~cat ~name:("request " ^ r.kernel) ~ph:"i" ~ts
          ~args:(payload_fields e.payload) ()
    | Kernel_stall r ->
        Hashtbl.replace waiting r.thread r.kernel;
        incr queue_depth;
        ev ~tid:r.thread ~cat ~name:("wait:" ^ r.kernel) ~ph:"B" ~ts
          ~args:(payload_fields e.payload) ();
        counter ~ts "queue_depth" !queue_depth
    | Kernel_grant r ->
        (match Hashtbl.find_opt waiting r.thread with
        | Some k ->
            Hashtbl.remove waiting r.thread;
            decr queue_depth;
            ev ~tid:r.thread ~cat ~name:("wait:" ^ k) ~ph:"E" ~ts ();
            counter ~ts "queue_depth" !queue_depth
        | None -> ());
        allocated := !allocated + r.range.len;
        ev ~tid:r.thread ~cat ~name:r.kernel ~ph:"B" ~ts
          ~args:(payload_fields e.payload) ();
        counter ~ts "allocated_pages" !allocated
    | Kernel_release r ->
        allocated := !allocated - r.range.len;
        ev ~tid:r.thread ~cat ~name:r.kernel ~ph:"E" ~ts ();
        counter ~ts "allocated_pages" !allocated
    | Reshape r ->
        allocated := !allocated + r.after.len - r.before.len;
        ev ~tid:r.thread ~cat
          ~name:(reshape_kind_name r.kind)
          ~ph:"i" ~ts ~args:(payload_fields e.payload) ();
        counter ~ts "allocated_pages" !allocated
    | Occupancy _ -> ()  (* already visible as slice durations *)
    | Alloc_decision r ->
        ev ~pid:2 ~cat
          ~name:(Printf.sprintf "alloc c%d" r.client)
          ~ph:"i" ~ts ~args:(payload_fields e.payload) ()
    | Counter r ->
        ev ~pid:2 ~cat ~name:r.name ~ph:"C" ~ts
          ~args:[ ("value", Json.Num r.value) ]
          ()
    | Span_begin r -> ev ~pid:2 ~cat ~name:r.name ~ph:"B" ~ts ()
    | Span_end r -> ev ~pid:2 ~cat ~name:r.name ~ph:"E" ~ts ()
    | Mark r ->
        ev ~pid:2 ~cat ~name:r.name ~ph:"i" ~ts
          ~args:[ ("detail", Json.Str r.detail) ]
          ()
  in
  List.iter handle events;
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.Arr (List.rev !out));
         ("displayTimeUnit", Json.Str "ms");
         ("otherData", Json.Obj [ ("clock", Json.Str "cgra-cycles") ]);
       ])
