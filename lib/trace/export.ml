open Trace

let range_json (r : page_range) =
  Json.Obj [ ("base", Json.num_of_int r.base); ("len", Json.num_of_int r.len) ]

let kind_json p = Json.Str (kind_name p)

let reshape_kind_name = function
  | Shrink -> "shrink"
  | Expand -> "expand"
  | Move -> "move"

let payload_fields = function
  | Run_begin r ->
      [
        ("mode", Json.Str r.mode);
        ("total_pages", Json.num_of_int r.total_pages);
        ("threads", Json.num_of_int r.n_threads);
        ("policy", Json.Str r.policy);
        ("reconfig_cost", Json.Num r.reconfig_cost);
        ("rows", Json.num_of_int r.rows);
        ("mem_ports", Json.num_of_int r.mem_ports);
      ]
  | Run_end r -> [ ("makespan", Json.Num r.makespan) ]
  | Thread_arrival r ->
      [ ("thread", Json.num_of_int r.thread); ("segments", Json.num_of_int r.segments) ]
  | Thread_finish r -> [ ("thread", Json.num_of_int r.thread) ]
  | Kernel_request r ->
      [
        ("thread", Json.num_of_int r.thread);
        ("kernel", Json.Str r.kernel);
        ("iterations", Json.num_of_int r.iterations);
        ("ops", Json.num_of_int r.ops);
        ("mem", Json.num_of_int r.mem);
        ("desired", Json.num_of_int r.desired);
      ]
  | Kernel_grant r ->
      [
        ("thread", Json.num_of_int r.thread);
        ("kernel", Json.Str r.kernel);
        ("range", range_json r.range);
        ("shrunk", Json.Bool r.shrunk);
        ("cost", Json.Num r.cost);
        ("rate", Json.Num r.rate);
      ]
  | Kernel_stall r ->
      [
        ("thread", Json.num_of_int r.thread);
        ("kernel", Json.Str r.kernel);
        ("queue_depth", Json.num_of_int r.queue_depth);
      ]
  | Kernel_release r ->
      [
        ("thread", Json.num_of_int r.thread);
        ("kernel", Json.Str r.kernel);
        ("range", range_json r.range);
      ]
  | Reshape r ->
      [
        ("thread", Json.num_of_int r.thread);
        ("reshape", Json.Str (reshape_kind_name r.kind));
        ("before", range_json r.before);
        ("after", range_json r.after);
        ("pages_rewritten", Json.num_of_int r.pages_rewritten);
        ("cost", Json.Num r.cost);
        ("rate", Json.Num r.rate);
      ]
  | Occupancy r ->
      [
        ("thread", Json.num_of_int r.thread);
        ("pages", Json.num_of_int r.pages);
        ("elapsed", Json.Num r.elapsed);
      ]
  | Alloc_decision r ->
      [
        ("client", Json.num_of_int r.client);
        ("desired", Json.num_of_int r.desired);
        ( "granted",
          match r.granted with Some g -> range_json g | None -> Json.Null );
        ( "considered",
          Json.Arr
            (List.map
               (fun (what, range) ->
                 Json.Obj [ ("what", Json.Str what); ("range", range_json range) ])
               r.considered) );
      ]
  | Farm_begin r ->
      [
        ("shards", Json.num_of_int r.shards);
        ("tenants", Json.num_of_int r.tenants);
        ("queue_bound", Json.num_of_int r.queue_bound);
        ("max_resident", Json.num_of_int r.max_resident);
        ("requests", Json.num_of_int r.requests);
      ]
  | Farm_request r ->
      [
        ("req", Json.num_of_int r.req);
        ("tenant", Json.num_of_int r.tenant);
        ("kernel", Json.Str r.kernel);
        ("iterations", Json.num_of_int r.iterations);
      ]
  | Farm_reject r ->
      [
        ("req", Json.num_of_int r.req);
        ("tenant", Json.num_of_int r.tenant);
        ("queue_depth", Json.num_of_int r.queue_depth);
      ]
  | Farm_admit r ->
      [
        ("req", Json.num_of_int r.req);
        ("tenant", Json.num_of_int r.tenant);
        ("shard", Json.num_of_int r.shard);
      ]
  | Farm_resident r ->
      [ ("req", Json.num_of_int r.req); ("shard", Json.num_of_int r.shard) ]
  | Farm_retire r ->
      [
        ("req", Json.num_of_int r.req);
        ("tenant", Json.num_of_int r.tenant);
        ("shard", Json.num_of_int r.shard);
        ("latency", Json.Num r.latency);
      ]
  | Farm_end r ->
      [
        ("makespan", Json.Num r.makespan);
        ("retired", Json.num_of_int r.retired);
        ("rejected", Json.num_of_int r.rejected);
      ]
  | Counter r -> [ ("name", Json.Str r.name); ("value", Json.Num r.value) ]
  | Span_begin r -> [ ("name", Json.Str r.name) ]
  | Span_end r -> [ ("name", Json.Str r.name) ]
  | Mark r -> [ ("name", Json.Str r.name); ("detail", Json.Str r.detail) ]

let event_json (e : event) =
  Json.Obj
    (("seq", Json.num_of_int e.seq)
    :: ("t", Json.Num e.time)
    :: ("kind", kind_json e.payload)
    :: payload_fields e.payload)

let jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let kinds events =
  List.sort_uniq String.compare
    (List.map (fun (e : event) -> kind_name e.payload) events)

(* ----- JSONL import ----- *)

(* Total inverse of [event_json], so post-hoc analyzers ([Cgra_prof])
   can consume archived traces without the producing process.  Every
   malformed line is an [Error] with its 1-based line number — never an
   exception. *)

let ( let* ) = Result.bind

let field name v =
  match Json.member name v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "missing field %S" name)

let float_field name v =
  let* x = field name v in
  match Json.to_float x with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S is not a number" name)

let int_field name v =
  let* f = float_field name v in
  Ok (int_of_float f)

let str_field name v =
  let* x = field name v in
  match Json.to_str x with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is not a string" name)

let bool_field name v =
  let* x = field name v in
  match x with
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S is not a boolean" name)

let range_of_json name v =
  let* x = field name v in
  let* base = int_field "base" x in
  let* len = int_field "len" x in
  Ok { base; len }

let reshape_kind_of_name = function
  | "shrink" -> Ok Shrink
  | "expand" -> Ok Expand
  | "move" -> Ok Move
  | s -> Error (Printf.sprintf "unknown reshape kind %S" s)

let payload_of_json kind v =
  match kind with
  | "run_begin" ->
      let* mode = str_field "mode" v in
      let* total_pages = int_field "total_pages" v in
      let* n_threads = int_field "threads" v in
      let* policy = str_field "policy" v in
      let* reconfig_cost = float_field "reconfig_cost" v in
      let* rows = int_field "rows" v in
      let* mem_ports = int_field "mem_ports" v in
      Ok (Run_begin { mode; total_pages; n_threads; policy; reconfig_cost;
                      rows; mem_ports })
  | "run_end" ->
      let* makespan = float_field "makespan" v in
      Ok (Run_end { makespan })
  | "thread_arrival" ->
      let* thread = int_field "thread" v in
      let* segments = int_field "segments" v in
      Ok (Thread_arrival { thread; segments })
  | "thread_finish" ->
      let* thread = int_field "thread" v in
      Ok (Thread_finish { thread })
  | "kernel_request" ->
      let* thread = int_field "thread" v in
      let* kernel = str_field "kernel" v in
      let* iterations = int_field "iterations" v in
      let* ops = int_field "ops" v in
      let* mem = int_field "mem" v in
      let* desired = int_field "desired" v in
      Ok (Kernel_request { thread; kernel; iterations; ops; mem; desired })
  | "kernel_grant" ->
      let* thread = int_field "thread" v in
      let* kernel = str_field "kernel" v in
      let* range = range_of_json "range" v in
      let* shrunk = bool_field "shrunk" v in
      let* cost = float_field "cost" v in
      let* rate = float_field "rate" v in
      Ok (Kernel_grant { thread; kernel; range; shrunk; cost; rate })
  | "kernel_stall" ->
      let* thread = int_field "thread" v in
      let* kernel = str_field "kernel" v in
      let* queue_depth = int_field "queue_depth" v in
      Ok (Kernel_stall { thread; kernel; queue_depth })
  | "kernel_release" ->
      let* thread = int_field "thread" v in
      let* kernel = str_field "kernel" v in
      let* range = range_of_json "range" v in
      Ok (Kernel_release { thread; kernel; range })
  | "reshape" ->
      let* thread = int_field "thread" v in
      let* kind_name = str_field "reshape" v in
      let* kind = reshape_kind_of_name kind_name in
      let* before = range_of_json "before" v in
      let* after = range_of_json "after" v in
      let* pages_rewritten = int_field "pages_rewritten" v in
      let* cost = float_field "cost" v in
      let* rate = float_field "rate" v in
      Ok (Reshape { thread; kind; before; after; pages_rewritten; cost; rate })
  | "occupancy" ->
      let* thread = int_field "thread" v in
      let* pages = int_field "pages" v in
      let* elapsed = float_field "elapsed" v in
      Ok (Occupancy { thread; pages; elapsed })
  | "alloc_decision" ->
      let* client = int_field "client" v in
      let* desired = int_field "desired" v in
      let* granted =
        let* g = field "granted" v in
        match g with
        | Json.Null -> Ok None
        | _ ->
            let* r = range_of_json "granted" v in
            Ok (Some r)
      in
      let* considered =
        let* c = field "considered" v in
        match c with
        | Json.Arr entries ->
            List.fold_left
              (fun acc e ->
                let* acc = acc in
                let* what = str_field "what" e in
                let* range = range_of_json "range" e in
                Ok ((what, range) :: acc))
              (Ok []) entries
            |> Result.map List.rev
        | _ -> Error "field \"considered\" is not an array"
      in
      Ok (Alloc_decision { client; desired; granted; considered })
  | "farm_begin" ->
      let* shards = int_field "shards" v in
      let* tenants = int_field "tenants" v in
      let* queue_bound = int_field "queue_bound" v in
      let* max_resident = int_field "max_resident" v in
      let* requests = int_field "requests" v in
      Ok (Farm_begin { shards; tenants; queue_bound; max_resident; requests })
  | "farm_request" ->
      let* req = int_field "req" v in
      let* tenant = int_field "tenant" v in
      let* kernel = str_field "kernel" v in
      let* iterations = int_field "iterations" v in
      Ok (Farm_request { req; tenant; kernel; iterations })
  | "farm_reject" ->
      let* req = int_field "req" v in
      let* tenant = int_field "tenant" v in
      let* queue_depth = int_field "queue_depth" v in
      Ok (Farm_reject { req; tenant; queue_depth })
  | "farm_admit" ->
      let* req = int_field "req" v in
      let* tenant = int_field "tenant" v in
      let* shard = int_field "shard" v in
      Ok (Farm_admit { req; tenant; shard })
  | "farm_resident" ->
      let* req = int_field "req" v in
      let* shard = int_field "shard" v in
      Ok (Farm_resident { req; shard })
  | "farm_retire" ->
      let* req = int_field "req" v in
      let* tenant = int_field "tenant" v in
      let* shard = int_field "shard" v in
      let* latency = float_field "latency" v in
      Ok (Farm_retire { req; tenant; shard; latency })
  | "farm_end" ->
      let* makespan = float_field "makespan" v in
      let* retired = int_field "retired" v in
      let* rejected = int_field "rejected" v in
      Ok (Farm_end { makespan; retired; rejected })
  | "counter" ->
      let* name = str_field "name" v in
      let* value = float_field "value" v in
      Ok (Counter { name; value })
  | "span_begin" ->
      let* name = str_field "name" v in
      Ok (Span_begin { name })
  | "span_end" ->
      let* name = str_field "name" v in
      Ok (Span_end { name })
  | "mark" ->
      let* name = str_field "name" v in
      let* detail = str_field "detail" v in
      Ok (Mark { name; detail })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let event_of_json v =
  let* seq = int_field "seq" v in
  let* time = float_field "t" v in
  let* kind = str_field "kind" v in
  let* payload = payload_of_json kind v in
  Ok { seq; time; payload }

let of_jsonl s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else
          let parsed =
            let* v = Json.parse line in
            event_of_json v
          in
          (match parsed with
          | Ok e -> go (lineno + 1) (e :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] lines

(* ----- Chrome trace_event ----- *)

(* Track layout: pid 1 carries one row per simulated thread (kernel
   occupancy slices and wait slices), pid 2 carries the runtime itself
   (allocator decisions, spans, marks) and the counter tracks. *)

let chrome ?(process_name = "cgra") events =
  let out = ref [] in
  let push v = out := v :: !out in
  let ev ?(pid = 1) ?(tid = 0) ?args ~cat ~name ~ph ~ts () =
    push
      (Json.Obj
         ([
            ("name", Json.Str name);
            ("cat", Json.Str cat);
            ("ph", Json.Str ph);
            ("ts", Json.Num ts);
            ("pid", Json.num_of_int pid);
            ("tid", Json.num_of_int tid);
          ]
         @ match args with None -> [] | Some a -> [ ("args", Json.Obj a) ]))
  in
  let metadata ~pid ?tid which name =
    push
      (Json.Obj
         ([
            ("name", Json.Str which);
            ("ph", Json.Str "M");
            ("pid", Json.num_of_int pid);
          ]
         @ (match tid with Some t -> [ ("tid", Json.num_of_int t) ] | None -> [])
         @ [ ("args", Json.Obj [ ("name", Json.Str name) ]) ]))
  in
  metadata ~pid:1 "process_name" (process_name ^ " threads");
  metadata ~pid:2 "process_name" (process_name ^ " runtime");
  let counter ~ts name value =
    ev ~pid:2 ~cat:"counter" ~name ~ph:"C" ~ts
      ~args:[ ("value", Json.num_of_int value) ]
      ()
  in
  (* derived running totals for the counter tracks *)
  let allocated = ref 0 in
  let queue_depth = ref 0 in
  (* pid 3 (front-end requests) only appears when farm events do, so
     traces without them export byte-identically to before *)
  let farm_pid_announced = ref false in
  let farm_ev ?tid ?args ~cat ~name ~ph ~ts () =
    if not !farm_pid_announced then begin
      farm_pid_announced := true;
      metadata ~pid:3 "process_name" (process_name ^ " farm")
    end;
    ev ~pid:3 ?tid ?args ~cat ~name ~ph ~ts ()
  in
  let waiting : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let handle (e : event) =
    let ts = e.time in
    let cat = kind_name e.payload in
    match e.payload with
    | Run_begin r ->
        ev ~cat ~name:(Printf.sprintf "run %s" r.mode) ~ph:"i" ~ts
          ~args:(payload_fields e.payload) ()
    | Run_end _ ->
        ev ~cat ~name:"run end" ~ph:"i" ~ts ~args:(payload_fields e.payload) ()
    | Thread_arrival r ->
        metadata ~pid:1 ~tid:r.thread "thread_name"
          (Printf.sprintf "thread %d" r.thread);
        ev ~tid:r.thread ~cat ~name:"arrival" ~ph:"i" ~ts
          ~args:(payload_fields e.payload) ()
    | Thread_finish r ->
        ev ~tid:r.thread ~cat ~name:"finish" ~ph:"i" ~ts ()
    | Kernel_request r ->
        ev ~tid:r.thread ~cat ~name:("request " ^ r.kernel) ~ph:"i" ~ts
          ~args:(payload_fields e.payload) ()
    | Kernel_stall r ->
        Hashtbl.replace waiting r.thread r.kernel;
        incr queue_depth;
        ev ~tid:r.thread ~cat ~name:("wait:" ^ r.kernel) ~ph:"B" ~ts
          ~args:(payload_fields e.payload) ();
        counter ~ts "queue_depth" !queue_depth
    | Kernel_grant r ->
        (match Hashtbl.find_opt waiting r.thread with
        | Some k ->
            Hashtbl.remove waiting r.thread;
            decr queue_depth;
            ev ~tid:r.thread ~cat ~name:("wait:" ^ k) ~ph:"E" ~ts ();
            counter ~ts "queue_depth" !queue_depth
        | None -> ());
        allocated := !allocated + r.range.len;
        ev ~tid:r.thread ~cat ~name:r.kernel ~ph:"B" ~ts
          ~args:(payload_fields e.payload) ();
        counter ~ts "allocated_pages" !allocated
    | Kernel_release r ->
        allocated := !allocated - r.range.len;
        ev ~tid:r.thread ~cat ~name:r.kernel ~ph:"E" ~ts ();
        counter ~ts "allocated_pages" !allocated
    | Reshape r ->
        allocated := !allocated + r.after.len - r.before.len;
        ev ~tid:r.thread ~cat
          ~name:(reshape_kind_name r.kind)
          ~ph:"i" ~ts ~args:(payload_fields e.payload) ();
        counter ~ts "allocated_pages" !allocated
    | Occupancy _ -> ()  (* already visible as slice durations *)
    | Alloc_decision r ->
        ev ~pid:2 ~cat
          ~name:(Printf.sprintf "alloc c%d" r.client)
          ~ph:"i" ~ts ~args:(payload_fields e.payload) ()
    | Farm_begin _ ->
        farm_ev ~cat ~name:"farm begin" ~ph:"i" ~ts
          ~args:(payload_fields e.payload) ()
    | Farm_request r ->
        farm_ev ~tid:r.req ~cat ~name:("queued " ^ r.kernel) ~ph:"B" ~ts
          ~args:(payload_fields e.payload) ()
    | Farm_reject r ->
        farm_ev ~tid:r.req ~cat ~name:"queued" ~ph:"E" ~ts ();
        farm_ev ~tid:r.req ~cat ~name:"reject" ~ph:"i" ~ts
          ~args:(payload_fields e.payload) ()
    | Farm_admit r ->
        farm_ev ~tid:r.req ~cat ~name:"queued" ~ph:"E" ~ts ();
        farm_ev ~tid:r.req ~cat
          ~name:(Printf.sprintf "shard %d" r.shard)
          ~ph:"B" ~ts ~args:(payload_fields e.payload) ()
    | Farm_resident r ->
        farm_ev ~tid:r.req ~cat ~name:"resident" ~ph:"i" ~ts
          ~args:(payload_fields e.payload) ()
    | Farm_retire r ->
        farm_ev ~tid:r.req ~cat ~name:(Printf.sprintf "shard %d" r.shard)
          ~ph:"E" ~ts ();
        farm_ev ~tid:r.req ~cat ~name:"retire" ~ph:"i" ~ts
          ~args:(payload_fields e.payload) ()
    | Farm_end _ ->
        farm_ev ~cat ~name:"farm end" ~ph:"i" ~ts
          ~args:(payload_fields e.payload) ()
    | Counter r ->
        ev ~pid:2 ~cat ~name:r.name ~ph:"C" ~ts
          ~args:[ ("value", Json.Num r.value) ]
          ()
    | Span_begin r -> ev ~pid:2 ~cat ~name:r.name ~ph:"B" ~ts ()
    | Span_end r -> ev ~pid:2 ~cat ~name:r.name ~ph:"E" ~ts ()
    | Mark r ->
        ev ~pid:2 ~cat ~name:r.name ~ph:"i" ~ts
          ~args:[ ("detail", Json.Str r.detail) ]
          ()
  in
  List.iter handle events;
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.Arr (List.rev !out));
         ("displayTimeUnit", Json.Str "ms");
         ("otherData", Json.Obj [ ("clock", Json.Str "cgra-cycles") ]);
       ])
