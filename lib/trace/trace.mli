(** Structured runtime tracing for the multithreaded-CGRA runtime.

    The paper's whole argument is dynamic — threads arrive, the
    PageMaster shrinks and expands allocations, utilization climbs — yet
    aggregate results ({!Cgra_core.Os_sim.result_t} and friends) only
    show the end state.  This module gives every runtime layer a common,
    typed event vocabulary:

    - {b lifecycle}: simulation begin/end, thread arrival/finish;
    - {b kernel service}: request, grant, stall (queued), release;
    - {b PageMaster}: shrink/expand/move reshapes with before/after page
      ranges, pages rewritten, and the cycles charged — the measurements
      the cost-aware-allocation work needs;
    - {b occupancy}: per-interval page-occupancy samples, emitted exactly
      when the simulator accrues busy page-cycles, so a trace can
      reproduce the aggregate {e bit for bit} (see {!Replay});
    - {b allocator}: every placement decision with the alternatives that
      were considered;
    - {b generic}: monotonic counters, timing spans, and marks for
      instrumenting non-timed layers (checker, executor).

    A trace handle is either {!null} — every emission is a no-op, so
    instrumented code costs one branch when tracing is off — or a
    collector created by {!make} that records events in emission order.
    Emission order {e is} the contract: {!Replay} folds events in stream
    order to reproduce floating-point accumulations exactly. *)

type page_range = { base : int; len : int }
(** A contiguous run of pages in serpentine ring order, as handed out by
    {!Cgra_core.Allocator}. *)

type reshape_kind = Shrink | Expand | Move

type payload =
  | Run_begin of {
      mode : string;  (** ["single"] or ["multi"] *)
      total_pages : int;
      n_threads : int;
      policy : string;
      reconfig_cost : float;
      rows : int;  (** row buses on the fabric (0 when unknown) *)
      mem_ports : int;  (** memory ports per row bus per cycle *)
    }
  | Run_end of { makespan : float }
  | Thread_arrival of { thread : int; segments : int }
  | Thread_finish of { thread : int }
  | Kernel_request of {
      thread : int;
      kernel : string;
      iterations : int;
      ops : int;  (** total micro-ops this segment adds ([ops/iter * iterations]) *)
      mem : int;  (** memory accesses per iteration (static load/store count) *)
      desired : int;  (** pages the paged binary wants *)
    }
  | Kernel_grant of {
      thread : int;
      kernel : string;
      range : page_range;
      shrunk : bool;  (** granted below desire (counts as a transformation) *)
      cost : float;  (** reconfiguration cycles charged before progress *)
      rate : float;  (** cycles per kernel iteration at this allocation *)
    }
  | Kernel_stall of { thread : int; kernel : string; queue_depth : int }
  | Kernel_release of { thread : int; kernel : string; range : page_range }
  | Reshape of {
      thread : int;
      kind : reshape_kind;
      before : page_range;
      after : page_range;
      pages_rewritten : int;  (** pages that receive re-folded contexts *)
      cost : float;  (** cycles of stalled progress charged *)
      rate : float;  (** cycles per kernel iteration after the reshape *)
    }
  | Occupancy of { thread : int; pages : int; elapsed : float }
      (** the thread held [pages] pages for the [elapsed] cycles ending at
          the event time; emitted at every busy-page-cycle accrual *)
  | Alloc_decision of {
      client : int;
      desired : int;
      granted : page_range option;
      considered : (string * page_range) list;
          (** the alternatives weighed: free segments, victims to halve, … *)
    }
  | Farm_begin of {
      shards : int;
      tenants : int;
      queue_bound : int;  (** max queued-but-undispatched requests per tenant *)
      max_resident : int;  (** max in-flight requests per shard *)
      requests : int;  (** offered requests in this run *)
    }
  | Farm_request of { req : int; tenant : int; kernel : string; iterations : int }
      (** a request arrives at the front end (queued) *)
  | Farm_reject of { req : int; tenant : int; queue_depth : int }
      (** admission control bounced the request (tenant queue full) *)
  | Farm_admit of { req : int; tenant : int; shard : int }
      (** dispatched from the tenant queue onto a shard's {!Os_sim} engine *)
  | Farm_resident of { req : int; shard : int }
      (** the shard granted fabric pages — the request is executing *)
  | Farm_retire of { req : int; tenant : int; shard : int; latency : float }
      (** finished; [latency] is arrival→retire in cycles *)
  | Farm_end of { makespan : float; retired : int; rejected : int }
  | Counter of { name : string; value : float }
  | Span_begin of { name : string }
  | Span_end of { name : string }
  | Mark of { name : string; detail : string }

type event = { seq : int; time : float; payload : payload }
(** [seq] is the emission index (dense from 0); [time] is simulation
    time in cycles (0 for untimed layers). *)

type t

val null : t
(** The disabled sink: {!enabled} is [false], every emission is a no-op,
    {!events} is empty.  Instrumented code must behave identically under
    [null] and under a collector. *)

val make : unit -> t
(** A fresh collector with clock 0 and no events. *)

val enabled : t -> bool
(** Guard for any work beyond constructing the payload itself. *)

val set_clock : t -> float -> unit
(** Set the current simulation time used by {!emit}.  Layers that know
    time pass it explicitly via {!emit_at}; layers that do not (the
    allocator) inherit the driver's clock. *)

val clock : t -> float

val emit : t -> payload -> unit
(** Record at the current clock. *)

val emit_at : t -> time:float -> payload -> unit
(** Record at an explicit time (also advances the clock to [time]). *)

val events : t -> event list
(** All events in emission order. *)

val n_events : t -> int

val count : t -> string -> float -> unit
(** Bump a named monotonic counter (no event is emitted). *)

val counters : t -> (string * float) list
(** Counter totals, sorted by name. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Emit [Span_begin]/[Span_end] around the call (the end marker is
    emitted even on exceptions). *)

val kind_name : payload -> string
(** Stable snake_case tag, e.g. ["kernel_grant"] — the ["kind"] field of
    the JSONL export and the ["cat"] of the Chrome export. *)

val pp_event : Format.formatter -> event -> unit
