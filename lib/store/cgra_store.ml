open Cgra_core
module Codec = Cgra_isa.Codec
module Wire = Cgra_isa.Codec.Wire

let magic = "CGRB"

let extension = ".cgrabin"

type counters = {
  load_hits : int;
  load_misses : int;
  rejects : int;
  saves : int;
  save_failures : int;
}

type t = {
  root : string;
  load_hits : int Atomic.t;
  load_misses : int Atomic.t;
  rejects : int Atomic.t;
  saves : int Atomic.t;
  save_failures : int Atomic.t;
  tmp_seq : int Atomic.t;
}

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ root =
  mkdir_p root;
  {
    root;
    load_hits = Atomic.make 0;
    load_misses = Atomic.make 0;
    rejects = Atomic.make 0;
    saves = Atomic.make 0;
    save_failures = Atomic.make 0;
    tmp_seq = Atomic.make 0;
  }

let dir t = t.root

let counters t =
  {
    load_hits = Atomic.get t.load_hits;
    load_misses = Atomic.get t.load_misses;
    rejects = Atomic.get t.rejects;
    saves = Atomic.get t.saves;
    save_failures = Atomic.get t.save_failures;
  }

(* ----- keys and paths ----- *)

(* The content address covers the full identity 4-tuple.  Bumping
   [Codec.format_version] therefore re-addresses every artifact — stale
   files are simply never looked up again (and [gc] reaps them). *)
let key_hash ~version ~arch_fp ~kernel_digest ~seed =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%d|%s|%s|%d" version arch_fp kernel_digest seed))

let rel_path_of_hash hash = Filename.concat (String.sub hash 0 2) (hash ^ extension)

let key_of ~seed arch (k : Cgra_kernels.Kernels.t) =
  (Binary.fingerprint arch, Codec.graph_digest k.graph, seed)

let path_for t ~seed arch k =
  let arch_fp, kernel_digest, seed = key_of ~seed arch k in
  Filename.concat t.root
    (rel_path_of_hash
       (key_hash ~version:Codec.format_version ~arch_fp ~kernel_digest ~seed))

(* ----- artifact framing ----- *)

let artifact_bytes ~arch_fp ~kernel_digest ~seed ~payload =
  let b = Buffer.create (String.length payload + 128) in
  Buffer.add_string b magic;
  Wire.w_int b Codec.format_version;
  Wire.w_str b arch_fp;
  Wire.w_str b kernel_digest;
  Wire.w_int b seed;
  Wire.w_str b payload;
  Wire.w_str b (Digest.string payload);
  Buffer.contents b

type header = {
  version : int;
  arch_fp : string;
  kernel_digest : string;
  seed : int;
  payload : string;
}

(* Parse and integrity-check one artifact file's bytes: magic, framing,
   and the payload digest.  Key/version judgement is left to callers
   ([load] compares against its expectation, [scan] classifies). *)
let parse_artifact content =
  if String.length content < 4 || String.sub content 0 4 <> magic then
    Error "bad magic"
  else
    match
      let r = Wire.reader ~pos:4 content in
      let version = Wire.r_int r in
      let arch_fp = Wire.r_str r in
      let kernel_digest = Wire.r_str r in
      let seed = Wire.r_int r in
      let payload = Wire.r_str r in
      let digest = Wire.r_str r in
      if not (Wire.at_end r) then Error "trailing garbage"
      else if Digest.string payload <> digest then Error "payload digest mismatch"
      else Ok { version; arch_fp; kernel_digest; seed; payload }
    with
    | r -> r
    | exception Wire.Corrupt e -> Error e

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception (Sys_error _ | End_of_file) -> None)

(* ----- load / save ----- *)

let load t ~seed arch (k : Cgra_kernels.Kernels.t) =
  let arch_fp, kernel_digest, seed = key_of ~seed arch k in
  let path = path_for t ~seed arch k in
  match read_file path with
  | None ->
      Atomic.incr t.load_misses;
      None
  | Some content ->
      let decoded =
        match parse_artifact content with
        | Error _ as e -> e
        | Ok h ->
            if h.version <> Codec.format_version then
              Error (Printf.sprintf "format version %d (want %d)" h.version
                       Codec.format_version)
            else if h.arch_fp <> arch_fp then Error "arch fingerprint mismatch"
            else if h.kernel_digest <> kernel_digest then
              Error "kernel digest mismatch"
            else if h.seed <> seed then Error "seed mismatch"
            else (
              match
                Codec.binary_of_payload ~arch ~graph:k.graph h.payload
              with
              | Error _ as e -> e
              | Ok (name, _, _) when name <> k.name ->
                  Error (Printf.sprintf "artifact names kernel %s, not %s" name k.name)
              | Ok (name, base, paged) ->
                  Ok { Binary.name; graph = k.graph; base; paged })
      in
      (match decoded with
      | Ok b ->
          Atomic.incr t.load_hits;
          Some b
      | Error _ ->
          (* corrupt / truncated / stale / misfiled: reject, let the
             caller recompile (and eventually re-publish over it) *)
          Atomic.incr t.rejects;
          None)

let save t ~seed arch (k : Cgra_kernels.Kernels.t) (b : Binary.t) =
  let arch_fp, kernel_digest, seed = key_of ~seed arch k in
  let payload = Codec.binary_payload ~name:b.Binary.name ~base:b.Binary.base ~paged:b.Binary.paged in
  let bytes = artifact_bytes ~arch_fp ~kernel_digest ~seed ~payload in
  let path = path_for t ~seed arch k in
  (* temp-then-rename so concurrent readers (and writers racing on the
     same key) only ever observe complete artifacts; the tmp name is
     unique per process x handle x write *)
  let tmp =
    Printf.sprintf "%s.tmp-%d-%d" path (Unix.getpid ())
      (Atomic.fetch_and_add t.tmp_seq 1)
  in
  match
    mkdir_p (Filename.dirname path);
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc bytes);
    Sys.rename tmp path
  with
  | () -> Atomic.incr t.saves
  | exception (Sys_error _ | Unix.Unix_error _) ->
      (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
      Atomic.incr t.save_failures

(* ----- Binary tier wiring ----- *)

let install t =
  Binary.set_store
    (Some
       {
         Binary.tier_load = (fun ~seed arch k -> load t ~seed arch k);
         tier_save = (fun ~seed arch k b -> save t ~seed arch k b);
       })

let uninstall () = Binary.set_store None

(* ----- audit: scan / stats / gc ----- *)

type artifact_status =
  | Intact
  | Stale_version of int
  | Corrupt of string

let artifact_files t =
  match Sys.readdir t.root with
  | exception Sys_error _ -> []
  | shards ->
      Array.to_list shards
      |> List.concat_map (fun shard ->
             let d = Filename.concat t.root shard in
             if not (Sys.is_directory d) then []
             else
               Array.to_list (Sys.readdir d)
               |> List.filter_map (fun f ->
                      if Filename.check_suffix f extension then
                        Some (Filename.concat shard f)
                      else None))
      |> List.sort String.compare

let status_of t rel =
  match read_file (Filename.concat t.root rel) with
  | None -> Corrupt "unreadable"
  | Some content -> (
      match parse_artifact content with
      | Error e -> Corrupt e
      | Ok h ->
          if h.version <> Codec.format_version then Stale_version h.version
          else
            (* content address must match the key the header claims *)
            let expect =
              rel_path_of_hash
                (key_hash ~version:h.version ~arch_fp:h.arch_fp
                   ~kernel_digest:h.kernel_digest ~seed:h.seed)
            in
            if expect <> rel then
              Corrupt (Printf.sprintf "misfiled (key addresses %s)" expect)
            else Intact)

let scan t = List.map (fun rel -> (rel, status_of t rel)) (artifact_files t)

type stats = {
  artifacts : int;
  bytes : int;
  intact : int;
  stale : int;
  corrupt : int;
}

let file_size path = match (Unix.stat path).Unix.st_size with s -> s | exception Unix.Unix_error _ -> 0

let stats t =
  List.fold_left
    (fun acc (rel, status) ->
      let sz = file_size (Filename.concat t.root rel) in
      {
        artifacts = acc.artifacts + 1;
        bytes = acc.bytes + sz;
        intact = (acc.intact + match status with Intact -> 1 | _ -> 0);
        stale = (acc.stale + match status with Stale_version _ -> 1 | _ -> 0);
        corrupt = (acc.corrupt + match status with Corrupt _ -> 1 | _ -> 0);
      })
    { artifacts = 0; bytes = 0; intact = 0; stale = 0; corrupt = 0 }
    (scan t)

let gc t =
  List.fold_left
    (fun (removed, freed) (rel, status) ->
      match status with
      | Intact -> (removed, freed)
      | Stale_version _ | Corrupt _ -> (
          let path = Filename.concat t.root rel in
          let sz = file_size path in
          match Sys.remove path with
          | () -> (removed + 1, freed + sz)
          | exception Sys_error _ -> (removed, freed)))
    (0, 0) (scan t)
