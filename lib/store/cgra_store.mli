(** Persistent, content-addressed store of compiled kernel binaries.

    The paper's premise is that a CGRA OS launches threads by loading
    pre-compiled, pre-transformed configurations — compilation is
    offline, launch is cheap.  This module makes that true across
    processes: compiled {!Cgra_core.Binary.t}s are serialized with
    [Cgra_isa.Codec] and kept in a directory keyed by

    {v (format version, canonical arch fingerprint, kernel digest, seed) v}

    so every [cgra_tool] invocation and every farm worker that shares a
    store directory launches threads from warm artifacts in microseconds
    and only races the scheduler ladder on genuine misses.

    Integrity before trust: artifacts carry the full key in their header
    plus an MD5 of the payload, and {!load} re-derives and re-checks all
    of it — a truncated, bit-flipped, version-stale, or misfiled
    artifact is {e rejected} (returning [None], i.e. a cache miss that
    falls back to recompilation), never decoded into a wrong binary.
    Writes go through a temp file and an atomic [rename], so concurrent
    writers — domains of one process or whole separate processes — can
    share a directory without readers ever observing a torn file. *)

type t

val open_ : string -> t
(** Open (creating if needed, like [mkdir -p]) a store rooted at the
    given directory. *)

val dir : t -> string

val path_for :
  t -> seed:int -> Cgra_arch.Cgra.t -> Cgra_kernels.Kernels.t -> string
(** The content-addressed path an artifact for this key lives at:
    [dir/hh/<key-hash>.cgrabin], where [hh] shards by the hash's first
    two hex digits. *)

val load :
  t -> seed:int -> Cgra_arch.Cgra.t -> Cgra_kernels.Kernels.t ->
  Cgra_core.Binary.t option
(** [None] when the artifact is absent — or present but fails any of:
    magic/version word, key match (arch fingerprint, kernel digest,
    seed), payload digest, payload decode, or kernel-name match.
    Rejections bump {!counters}[.rejects] and are indistinguishable
    from misses to the caller, which recompiles. *)

val save :
  t -> seed:int -> Cgra_arch.Cgra.t -> Cgra_kernels.Kernels.t ->
  Cgra_core.Binary.t -> unit
(** Serialize and publish atomically (temp file + [rename]).  Best
    effort: IO failure (full disk, unwritable dir) is swallowed and
    counted, never raised — a farm worker must not die because its
    cache is sick. *)

val install : t -> unit
(** Wire this store in as {!Cgra_core.Binary}'s disk tier, making
    [Binary.compile] memory -> disk -> compile. *)

val uninstall : unit -> unit
(** Detach whatever store is installed from [Binary]. *)

type counters = {
  load_hits : int;
  load_misses : int;  (** artifact simply absent *)
  rejects : int;  (** present but corrupt / stale / mismatched *)
  saves : int;
  save_failures : int;
}

val counters : t -> counters
(** This handle's activity since {!open_}. *)

type artifact_status =
  | Intact
  | Stale_version of int  (** decodes, but under a different format version *)
  | Corrupt of string  (** truncated, bad digest, bad magic, misfiled, … *)

val scan : t -> (string * artifact_status) list
(** Audit every [*.cgrabin] under the store root: re-check magic,
    version, payload digest, and that the file sits at the path its key
    hashes to.  Paths are relative to {!dir}, sorted. *)

type stats = {
  artifacts : int;
  bytes : int;
  intact : int;
  stale : int;
  corrupt : int;
}

val stats : t -> stats

val gc : t -> int * int
(** [(removed, bytes_freed)]: delete every non-[Intact] artifact (stale
    format versions, corrupt or misfiled files).  Intact artifacts are
    never touched. *)
