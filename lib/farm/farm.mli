(** Multi-tenant CGRA farm: a sharded fleet of fabrics behind a
    discrete-event request front end.

    This is the serving layer the ROADMAP's north star asks for, grown
    out of [examples/video_server.ml]: each shard is one fabric (its own
    compiled suite, {!Cgra_core.Allocator} and
    {!Cgra_core.Os_sim.Engine} as the online page scheduler), and the
    front end is an open-loop arrival process with per-tenant FIFO
    queues and admission control.

    Determinism is the contract.  Everything runs on the virtual clock —
    no wall time anywhere in the simulated path — and all randomness
    flows from the seeded {!Cgra_util.Rng}, so one seed fixes the whole
    run: arrivals, admissions, dispatches, retirement log, quantiles.  A
    [pool] only parallelizes suite compilation (itself bit-deterministic
    at any width), so results are byte-identical at any [-j].

    The event loop totally orders work: the earliest pending event wins;
    a shard event beats an arrival at the same instant; the lowest shard
    index beats other shards.  Admission bounds each tenant's queue at
    [queue_bound] (excess requests are rejected at arrival, never
    dropped later) and each shard's in-flight population at
    [max_resident]; dispatch picks the shard with the fewest in-flight
    requests, then the least-allocated fabric, then the lowest index. *)

module T := Cgra_trace.Trace
module Hist := Cgra_prof.Metrics.Hist

type shard_spec = { size : int; page_pes : int }

val default_fleet : shard_spec list
(** The mixed fleet of the committed benchmark: 4x4, 6x6, 8x8, all with
    4-PE pages. *)

type params = {
  fleet : shard_spec list;
  n_tenants : int;
  n_requests : int;
  offered_load : float;
      (** arrival rate as a multiple of the fleet's nominal capacity
          (mean full-allocation service rate of the request mix summed
          over shards): 1.0 offers exactly what the fleet can nominally
          serve, 2.0 saturates it *)
  queue_bound : int;  (** max queued-but-undispatched requests per tenant *)
  max_resident : int;  (** max in-flight requests per shard *)
  seed : int;
  policy : Cgra_core.Allocator.policy;
  reconfig_cost : float;
}

val default_params : params
(** The committed-benchmark configuration: the default fleet, 4 tenants,
    200 requests, load 1.0, bound 8, resident 8, seed 0, [Cost_halving]. *)

val mix : string array
(** The request kernel mix (mpeg, yuv2rgb, sobel — the video-serving
    story of the paper's introduction). *)

val min_iterations : int

val max_iterations : int
(** Request sizes are uniform in [[min_iterations, max_iterations]]. *)

type terminal = Retired | Rejected

type request = {
  rid : int;
  tenant : int;
  kernel : string;
  iterations : int;
  arrival : float;
  mutable shard : int;  (** -1 until admitted *)
  mutable dispatched : float;  (** nan until admitted *)
  mutable resident_at : float;  (** nan until first page grant *)
  mutable retired_at : float;  (** nan until finished *)
  mutable terminal : terminal option;
}

type shard_report = {
  s_index : int;
  s_spec : shard_spec;
  s_pages : int;
  s_served : int;
  s_busy_cycles : float;
      (** front-end accounting: sum of (retire - dispatch) over the
          shard's requests — for single-kernel requests this equals the
          summed per-thread stall-attribution totals
          {!Cgra_prof.Analyze.profile} reconstructs from the shard's
          trace *)
  s_os : Cgra_core.Os_sim.result_t;
}

type report = {
  params : params;
  offered : int;
  retired : int;
  rejected : int;
  makespan : float;
  throughput : float;  (** retired requests per 1000 cycles *)
  latency : Hist.summary;  (** arrival -> retire, cycles *)
  queue_wait : Hist.summary;  (** arrival -> dispatch, cycles *)
  log : (int * int * int * float) list;
      (** (rid, tenant, shard, time), in retirement order *)
  requests : request list;  (** arrival order, final states *)
  shard_reports : shard_report list;
  farm_events : T.event list;  (** the [farm_*] stream (empty untraced) *)
  shard_events : T.event list list;
      (** per-shard OS streams, fleet order: each is a complete
          {!Cgra_verify.Os_fuzz.monitor}-able / replayable run *)
}

val run :
  ?pool:Cgra_util.Pool.t ->
  ?traced:bool ->
  params ->
  (report, string) result
(** Simulate the farm.  [traced] (default false) collects the front
    end's [farm_*] stream and one OS stream per shard; tracing never
    changes the simulation.  Errors are validation or compile failures. *)

val render : ?log:bool -> report -> string
(** Deterministic text report (fixed-precision floats); [log] appends
    the retirement log — the byte-compare surface of the @smoke rule. *)
