(** Multi-tenant CGRA farm: a sharded fleet of fabrics behind a
    discrete-event request front end.

    This is the serving layer the ROADMAP's north star asks for, grown
    out of [examples/video_server.ml]: each shard is one fabric (its own
    compiled suite, {!Cgra_core.Allocator} and
    {!Cgra_core.Os_sim.Engine} as the online page scheduler), and the
    front end is an open-loop arrival process with per-tenant FIFO
    queues and admission control.

    {b The epoch-stepped coordinator.}  The run is quantized into sync
    epochs of [epoch] virtual cycles.  Per epoch [(t, t']]: every shard
    first settles its own internal events up to [t'] — shards are
    share-nothing between boundaries, so this phase fans out across the
    [pool] worker domains, with grant/finish callbacks buffering into
    per-shard logs; the coordinator then replays the window in one total
    order (event time, shard events before arrivals, shard index, buffer
    order), does admission, and dispatches queued requests at exactly
    [t'].  A boundary stretches beyond [t + epoch] when nothing lands
    earlier, so idle stretches cost one epoch and an arrival into an
    idle fleet is dispatched at its exact arrival time.

    Determinism is the contract.  Everything runs on the virtual clock —
    no wall time anywhere in the simulated path — and all randomness
    flows from the seeded {!Cgra_util.Rng}, so one seed (plus the epoch
    length, which is part of {!params}) fixes the whole run: arrivals,
    admissions, dispatches, retirement log, quantiles.  Every
    coordinator decision reads settled boundary-time state and the
    merged replay order is a total order, so results are byte-identical
    at any [-j] — the pool width changes the wall clock, never a byte
    of the report, the traces, or the {!Cgra_prof.Metrics.Hist}
    quantiles.

    Admission bounds each tenant's queue at [queue_bound] (excess
    requests are rejected at arrival, never dropped later) and each
    shard's in-flight population at [max_resident]; dispatch picks the
    shard with the fewest in-flight requests, then the least-allocated
    fabric, then the lowest index.  The {!Cost_aware} dispatch policy
    additionally prices the reshape cycles a non-fitting request would
    inflict on residents against the shard's next wake-up and defers
    the grant when queueing is cheaper. *)

module T := Cgra_trace.Trace
module Hist := Cgra_prof.Metrics.Hist

type shard_spec = { size : int; page_pes : int }

val default_fleet : shard_spec list
(** The mixed fleet of the committed benchmark: 4x4, 6x6, 8x8, all with
    4-PE pages. *)

type dispatch =
  | Least_loaded
      (** fewest in-flight, least-allocated, lowest index — always
          dispatch when some shard has capacity *)
  | Cost_aware
      (** same order, but defer a request whose missing pages would cost
          more reshape cycles (priced at [reconfig_cost] each) than
          waiting for the shard's next event; identical to
          [Least_loaded] when [reconfig_cost = 0] *)

type params = {
  fleet : shard_spec list;
  n_tenants : int;
  n_requests : int;
  offered_load : float;
      (** arrival rate as a multiple of the fleet's nominal capacity
          (mean full-allocation service rate of the request mix summed
          over shards): 1.0 offers exactly what the fleet can nominally
          serve, 2.0 saturates it *)
  queue_bound : int;  (** max queued-but-undispatched requests per tenant *)
  max_resident : int;  (** max in-flight requests per shard *)
  seed : int;
  policy : Cgra_core.Allocator.policy;
  reconfig_cost : float;
  dispatch : dispatch;
  epoch : float;
      (** sync-epoch length in virtual cycles; smaller epochs track
          arrivals more tightly, larger epochs give the parallel settle
          phase more work per barrier *)
}

val default_params : params
(** The committed-benchmark configuration: the default fleet, 4 tenants,
    200 requests, load 1.0, bound 8, resident 8, seed 0, [Cost_halving],
    [Least_loaded] dispatch, 64-cycle epochs. *)

val big_fleet : shard_spec list
(** The at-scale fleet: eight shards each of 4x4, 6x6 and 8x8 (24
    shards, three unique architectures to compile). *)

val big_params : params
(** [default_params] on {!big_fleet} with 8 tenants and 10,000 requests
    — the [BENCH_farm_big.json] / [make farm-big] configuration. *)

val mix : string array
(** The request kernel mix (mpeg, yuv2rgb, sobel — the video-serving
    story of the paper's introduction). *)

val min_iterations : int

val max_iterations : int
(** Request sizes are uniform in [[min_iterations, max_iterations]]. *)

type terminal = Retired | Rejected

type request = {
  rid : int;
  tenant : int;
  kernel : string;
  iterations : int;
  arrival : float;
  mutable shard : int;  (** -1 until admitted *)
  mutable dispatched : float;  (** nan until admitted *)
  mutable resident_at : float;  (** nan until first page grant *)
  mutable retired_at : float;  (** nan until finished *)
  mutable terminal : terminal option;
}

type shard_report = {
  s_index : int;
  s_spec : shard_spec;
  s_pages : int;
  s_served : int;
  s_busy_cycles : float;
      (** front-end accounting: sum of (retire - dispatch) over the
          shard's requests — for single-kernel requests this equals the
          summed per-thread stall-attribution totals
          {!Cgra_prof.Analyze.profile} reconstructs from the shard's
          trace *)
  s_epochs : int;
      (** sync epochs in which this shard had at least one internal
          event to step — its share of the front end's settle work *)
  s_os : Cgra_core.Os_sim.result_t;
}

type report = {
  params : params;
  offered : int;
  retired : int;
  rejected : int;
  makespan : float;
  epochs : int;  (** coordinator sync boundaries processed *)
  throughput : float;  (** retired requests per 1000 cycles *)
  latency : Hist.summary;  (** arrival -> retire, cycles *)
  queue_wait : Hist.summary;  (** arrival -> dispatch, cycles *)
  log : (int * int * int * float) list;
      (** (rid, tenant, shard, time), in retirement order *)
  requests : request list;  (** arrival order, final states *)
  shard_reports : shard_report list;
  farm_events : T.event list;  (** the [farm_*] stream (empty untraced) *)
  shard_events : T.event list list;
      (** per-shard OS streams, fleet order: each is a complete
          {!Cgra_verify.Os_fuzz.monitor}-able / replayable run *)
}

val run :
  ?pool:Cgra_util.Pool.t ->
  ?traced:bool ->
  params ->
  (report, string) result
(** Simulate the farm.  The [pool] parallelizes suite compilation and
    the per-epoch shard settle phase; both are bit-deterministic at any
    width.  [traced] (default false) collects the front end's [farm_*]
    stream and one OS stream per shard; tracing never changes the
    simulation.  Errors are validation or compile failures. *)

val dispatch_name : dispatch -> string
(** ["least-loaded"] / ["cost-aware"] — the rendering and CLI spelling. *)

val render : ?log:bool -> report -> string
(** Deterministic text report (fixed-precision floats); [log] appends
    the retirement log — the byte-compare surface of the @smoke rule. *)

val render_stats : report -> string
(** Front-end observability ([cgra_tool farm --stats]): per-shard active
    epoch counts, busy fractions, and the steal-free load imbalance
    (max/mean busy cycles — dispatch is final and work never migrates,
    so the ratio is the true imbalance). *)
