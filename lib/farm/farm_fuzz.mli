(** Property-based fuzzing of the farm front end.

    Random tenant mixes through random arrival bursts, every run
    reproducible from its seed.  Three layers of checks per case:

    - the [farm_*] stream discipline ({!monitor}): every request is
      requested exactly once and reaches exactly one terminal state;
      admits pop the tenant's FIFO head; per-tenant queue depth never
      exceeds the bound; per-shard in-flight never exceeds
      [max_resident]; a retire's recorded latency equals its span; time
      never goes backwards;
    - report-level conservation ({!check_report}): retired + rejected =
      offered, no admitted request is ever dropped, per-tenant dispatch
      order follows arrival order;
    - each shard's OS stream through {!Cgra_verify.Os_fuzz.monitor}
      (instant-level page conservation and disjoint grants) and
      {!Cgra_verify.Os_fuzz.replay_check} (the stream reproduces the
      shard engine's aggregate bit for bit). *)

val monitor :
  queue_bound:int -> max_resident:int -> Cgra_trace.Trace.event list ->
  string list
(** Check the farm-stream invariants above; [[]] means they all hold. *)

val check_report : Farm.report -> string list
(** Report-level conservation invariants; [[]] means they all hold. *)

type outcome = {
  cases : int;  (** seeds attempted *)
  requests : int;  (** requests offered across all cases *)
  events : int;  (** farm + shard events checked *)
  failures : string list;  (** with seed context; [] = pass *)
}

val params_of_seed : int -> Farm.params
(** The random case a seed denotes: fleet, tenants, load, bounds,
    policy, reconfiguration cost. *)

val run : ?pool:Cgra_util.Pool.t -> seeds:int list -> unit -> outcome
(** Run every seed's case with tracing on and aggregate in seed order
    (with [pool], cases fan out but the outcome is width-independent). *)

val pp_outcome : Format.formatter -> outcome -> unit
