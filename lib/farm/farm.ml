module T = Cgra_trace.Trace
module Hist = Cgra_prof.Metrics.Hist
open Cgra_core

type shard_spec = { size : int; page_pes : int }

let default_fleet =
  [ { size = 4; page_pes = 4 }; { size = 6; page_pes = 4 };
    { size = 8; page_pes = 4 } ]

type dispatch = Least_loaded | Cost_aware

type params = {
  fleet : shard_spec list;
  n_tenants : int;
  n_requests : int;
  offered_load : float;
  queue_bound : int;
  max_resident : int;
  seed : int;
  policy : Allocator.policy;
  reconfig_cost : float;
  dispatch : dispatch;
  epoch : float;
}

let default_params =
  {
    fleet = default_fleet;
    n_tenants = 4;
    n_requests = 200;
    offered_load = 1.0;
    queue_bound = 8;
    max_resident = 8;
    seed = 0;
    policy = Allocator.Cost_halving;
    reconfig_cost = 0.0;
    dispatch = Least_loaded;
    epoch = 64.0;
  }

(* The at-scale configuration (ROADMAP: tens of shards, 10^4+ requests).
   Eight of each fabric size keeps the compile cost at three unique
   architectures while giving the coordinator 24 engines to settle per
   epoch — the shape the parallel settle phase is built for. *)
let big_fleet =
  List.concat_map
    (fun size -> List.init 8 (fun _ -> { size; page_pes = 4 }))
    [ 4; 6; 8 ]

let big_params =
  { default_params with fleet = big_fleet; n_tenants = 8; n_requests = 10_000 }

(* The request mix: the video-serving story the paper's introduction
   motivates — motion compensation, colour conversion, deinterlacing. *)
let mix = [| "mpeg"; "yuv2rgb"; "sobel" |]
let min_iterations = 40
let max_iterations = 120

type terminal = Retired | Rejected

type request = {
  rid : int;
  tenant : int;
  kernel : string;
  iterations : int;
  arrival : float;
  mutable shard : int;  (* -1 until admitted *)
  mutable dispatched : float;  (* nan until admitted *)
  mutable resident_at : float;  (* nan until first page grant *)
  mutable retired_at : float;  (* nan until finished *)
  mutable terminal : terminal option;
}

type shard_report = {
  s_index : int;
  s_spec : shard_spec;
  s_pages : int;
  s_served : int;
  s_busy_cycles : float;  (* sum of (retired - dispatched) over its requests *)
  s_epochs : int;  (* epochs in which the shard stepped at least one event *)
  s_os : Os_sim.result_t;
}

type report = {
  params : params;
  offered : int;
  retired : int;
  rejected : int;
  makespan : float;
  epochs : int;  (* coordinator sync boundaries processed *)
  throughput : float;  (* retired requests per 1000 cycles *)
  latency : Hist.summary;  (* arrival -> retire, cycles *)
  queue_wait : Hist.summary;  (* arrival -> dispatch, cycles *)
  log : (int * int * int * float) list;  (* rid, tenant, shard, time; retirement order *)
  requests : request list;  (* arrival order, final states *)
  shard_reports : shard_report list;
  farm_events : T.event list;
  shard_events : T.event list list;
}

(* Engine callbacks fire while a shard is being stepped — possibly on a
   worker domain — so they only append to the shard's private buffer;
   the coordinator drains every buffer at the next sync boundary. *)
type cb = Cb_grant of int * float | Cb_finish of int * float

type shard = {
  index : int;
  spec : shard_spec;
  total_pages : int;
  suite : Binary.t list;
  pages_by_kernel : (string * int) list;
  engine : Os_sim.Engine.t;
  strace : T.t;
  cbs : cb Queue.t;
  mutable active_epochs : int;
  mutable served : int;
  mutable busy_cycles : float;
}

let ( let* ) = Result.bind

let validate p =
  if p.fleet = [] then Error "farm: empty fleet"
  else if p.n_tenants < 1 then Error "farm: need at least one tenant"
  else if p.n_requests < 0 then Error "farm: negative request count"
  else if p.offered_load <= 0.0 then Error "farm: offered load must be positive"
  else if p.queue_bound < 1 then Error "farm: queue bound must be >= 1"
  else if p.max_resident < 1 then Error "farm: max resident must be >= 1"
  else if p.reconfig_cost < 0.0 then Error "farm: negative reconfig cost"
  else if not (p.epoch > 0.0 && Float.is_finite p.epoch) then
    Error "farm: epoch must be a positive number of cycles"
  else Ok ()

(* Nominal per-shard service rate: the mean full-allocation service time
   of the request mix.  [offered_load = 1.0] then offers exactly the
   fleet's aggregate capacity under this (optimistic — no queueing, no
   shrinking) model, so loads above 1 saturate by construction. *)
let mean_iters = float_of_int (min_iterations + max_iterations) /. 2.0

let shard_service_cycles suite =
  let total =
    Array.fold_left
      (fun acc name ->
        match List.find_opt (fun (b : Binary.t) -> b.name = name) suite with
        | Some b ->
            acc
            +. (float_of_int
                  (Binary.iteration_cycles b ~pages:(Binary.pages_used b))
               *. mean_iters)
        | None -> acc)
      0.0 mix
  in
  total /. float_of_int (Array.length mix)

let run ?pool ?(traced = false) p =
  let* () = validate p in
  let ftrace = if traced then T.make () else T.null in
  let* shards =
    let rec build i acc = function
      | [] -> Ok (List.rev acc)
      | spec :: rest -> (
          match Cgra_arch.Cgra.standard ~size:spec.size ~page_pes:spec.page_pes with
          | None ->
              Error
                (Printf.sprintf "farm: bad shard spec %dx%d (page %d PEs)"
                   spec.size spec.size spec.page_pes)
          | Some arch ->
              let* suite = Binary.compile_suite ~seed:p.seed ?pool arch in
              let strace = if traced then T.make () else T.null in
              let engine =
                Os_sim.Engine.create ~policy:p.policy
                  ~reconfig_cost:p.reconfig_cost ~trace:strace ~suite
                  ~total_pages:(Cgra_arch.Cgra.n_pages arch) ~mode:Os_sim.Multi ()
              in
              build (i + 1)
                ({ index = i; spec; total_pages = Cgra_arch.Cgra.n_pages arch;
                   suite;
                   pages_by_kernel =
                     List.map
                       (fun (b : Binary.t) -> (b.name, Binary.pages_used b))
                       suite;
                   engine; strace; cbs = Queue.create (); active_epochs = 0;
                   served = 0; busy_cycles = 0.0 }
                :: acc)
                rest)
    in
    build 0 [] p.fleet
  in
  (* open-loop Poisson-style arrivals on the virtual clock *)
  let rng = Cgra_util.Rng.create ~seed:p.seed in
  let capacity =
    List.fold_left (fun acc s -> acc +. (1.0 /. shard_service_cycles s.suite))
      0.0 shards
  in
  let rate = p.offered_load *. capacity in
  let requests =
    let rec gen i t acc =
      if i = p.n_requests then Array.of_list (List.rev acc)
      else begin
        let t = t +. Cgra_util.Rng.exponential rng ~mean:(1.0 /. rate) in
        let tenant = Cgra_util.Rng.int rng p.n_tenants in
        let kernel = mix.(Cgra_util.Rng.int rng (Array.length mix)) in
        let iterations =
          Cgra_util.Rng.int_in rng min_iterations max_iterations
        in
        gen (i + 1) t
          ({ rid = i; tenant; kernel; iterations; arrival = t; shard = -1;
             dispatched = Float.nan; resident_at = Float.nan;
             retired_at = Float.nan; terminal = None }
          :: acc)
      end
    in
    gen 0 0.0 []
  in
  T.emit_at ftrace ~time:0.0
    (T.Farm_begin
       { shards = List.length shards; tenants = p.n_tenants;
         queue_bound = p.queue_bound; max_resident = p.max_resident;
         requests = p.n_requests });
  let shard_arr = Array.of_list shards in
  List.iter
    (fun s ->
      Os_sim.Engine.set_on_grant s.engine (fun rid time ->
          Queue.add (Cb_grant (rid, time)) s.cbs);
      Os_sim.Engine.set_on_finish s.engine (fun rid time ->
          Queue.add (Cb_finish (rid, time)) s.cbs))
    shards;
  let queues = Array.init p.n_tenants (fun _ -> Queue.create ()) in
  let latency_h = Hist.create () in
  let queue_wait_h = Hist.create () in
  let retired = ref 0 in
  let rejected = ref 0 in
  let rev_log = ref [] in
  let n_epochs = ref 0 in
  let process_grant shard_idx rid time =
    let r = requests.(rid) in
    if Float.is_nan r.resident_at then begin
      r.resident_at <- time;
      T.emit_at ftrace ~time (T.Farm_resident { req = rid; shard = shard_idx })
    end
  in
  let process_finish rid time =
    let r = requests.(rid) in
    let s = shard_arr.(r.shard) in
    r.retired_at <- time;
    r.terminal <- Some Retired;
    s.served <- s.served + 1;
    s.busy_cycles <- s.busy_cycles +. (time -. r.dispatched);
    incr retired;
    rev_log := (rid, r.tenant, r.shard, time) :: !rev_log;
    Hist.observe latency_h (time -. r.arrival);
    Hist.observe queue_wait_h (r.dispatched -. r.arrival);
    T.emit_at ftrace ~time
      (T.Farm_retire
         { req = rid; tenant = r.tenant; shard = r.shard;
           latency = time -. r.arrival })
  in
  let process_cb shard_idx = function
    | Cb_grant (rid, time) -> process_grant shard_idx rid time
    | Cb_finish (rid, time) -> process_finish rid time
  in
  let drain_cbs s = Queue.iter (process_cb s.index) s.cbs; Queue.clear s.cbs in
  (* load-aware shard candidates: fewest in-flight requests, then least
     allocated fabric, then lowest index — all deterministic signals,
     all read at a sync boundary where every shard is settled *)
  let candidates () =
    List.filter
      (fun s -> Os_sim.Engine.in_flight s.engine < p.max_resident)
      shards
    |> List.sort (fun a b ->
           compare
             ( Os_sim.Engine.in_flight a.engine,
               Os_sim.Engine.used_page_fraction a.engine,
               a.index )
             ( Os_sim.Engine.in_flight b.engine,
               Os_sim.Engine.used_page_fraction b.engine,
               b.index ))
  in
  (* Cost-aware deferral: dispatching a request whose binary does not fit
     in the shard's free pages forces the allocator to shrink residents —
     each squeezed page is a PageMaster reshape priced at
     [reconfig_cost].  When that price exceeds the time until the shard
     next wakes up (its events are finishes and regrants, i.e. chances
     for pages to free up), queueing is the cheaper move and the grant is
     deferred to a later boundary.  At [reconfig_cost = 0] the estimate
     is always 0, so the policy degenerates to [Least_loaded] exactly. *)
  let affordable s (r : request) now =
    match p.dispatch with
    | Least_loaded -> true
    | Cost_aware -> (
        match List.assoc_opt r.kernel s.pages_by_kernel with
        | None -> true
        | Some need ->
            let free = Os_sim.Engine.free_pages s.engine in
            if free >= need then true
            else
              let reshape =
                p.reconfig_cost *. float_of_int (need - free)
              in
              let wake =
                match Os_sim.Engine.next_event s.engine with
                | Some t -> t -. now
                | None -> 0.0
              in
              reshape <= wake)
  in
  let dispatch r (s : shard) now =
    r.shard <- s.index;
    r.dispatched <- now;
    T.emit_at ftrace ~time:now
      (T.Farm_admit { req = r.rid; tenant = r.tenant; shard = s.index });
    Os_sim.Engine.submit s.engine ~at:now
      {
        Thread_model.id = r.rid;
        segments =
          [ Thread_model.Kernel { kernel = r.kernel; iterations = r.iterations } ];
      };
    (* a submit can grant pages synchronously: surface the residency now,
       in admission order, rather than at the next boundary *)
    drain_cbs s
  in
  (* drain tenant queues (tenant order, FIFO within a tenant) while some
     shard has admission capacity; a tenant whose head request is
     deferred by the cost model is skipped, not popped, so per-tenant
     FIFO order is preserved *)
  let rec try_dispatch now =
    let rec scan tid =
      if tid >= p.n_tenants then false
      else if Queue.is_empty queues.(tid) then scan (tid + 1)
      else
        match candidates () with
        | [] -> false (* capacity is fleet-wide: nobody can dispatch *)
        | cands -> (
            let r = Queue.peek queues.(tid) in
            match List.find_opt (fun s -> affordable s r now) cands with
            | None -> scan (tid + 1)
            | Some s ->
                ignore (Queue.take queues.(tid));
                dispatch r s now;
                true)
    in
    if scan 0 then try_dispatch now
  in
  let admit (r : request) =
    T.emit_at ftrace ~time:r.arrival
      (T.Farm_request
         { req = r.rid; tenant = r.tenant; kernel = r.kernel;
           iterations = r.iterations });
    let q = queues.(r.tenant) in
    if Queue.length q >= p.queue_bound then begin
      r.terminal <- Some Rejected;
      incr rejected;
      T.emit_at ftrace ~time:r.arrival
        (T.Farm_reject
           { req = r.rid; tenant = r.tenant; queue_depth = Queue.length q })
    end
    else Queue.add r q
  in
  (* The epoch-stepped coordinator.  Per epoch (t, t']:
       1. settle — every shard runs its own events up to t', in parallel
          across the pool (shards are share-nothing between boundaries;
          callbacks buffer into per-shard logs);
       2. merge — buffered grants/finishes and the window's arrivals are
          replayed on the coordinator in one total order: (event time,
          shard events before arrivals, shard index, buffer order);
       3. dispatch — admission control runs at the boundary, submitting
          new work at exactly t' (the settled engines' horizon).
     Every decision reads settled, boundary-time state, so the run is a
     pure function of the seed and the epoch length — byte-identical at
     any pool width.  t' stretches beyond t + epoch when nothing (no
     event, no arrival) lands earlier, so idle stretches cost one epoch,
     and an arrival into an idle fleet is dispatched at its exact
     arrival time. *)
  let ai = ref 0 in
  let settle t' =
    let one s =
      (match Os_sim.Engine.next_event s.engine with
      | Some te when te <= t' -> s.active_epochs <- s.active_epochs + 1
      | Some _ | None -> ());
      Os_sim.Engine.run_until s.engine t'
    in
    match pool with
    | Some pool -> ignore (Cgra_util.Pool.map pool one shards)
    | None -> List.iter one shards
  in
  let boundary t' =
    incr n_epochs;
    (* one totally ordered replay of the window: stable sort keeps each
       shard's buffer order and the arrival order within equal keys *)
    let items =
      List.concat_map
        (fun s ->
          let l =
            Queue.fold
              (fun acc c ->
                let time =
                  match c with Cb_grant (_, t) | Cb_finish (_, t) -> t
                in
                (time, 0, s.index, `Cb c) :: acc)
              [] s.cbs
          in
          Queue.clear s.cbs;
          List.rev l)
        shards
    in
    let arrivals = ref [] in
    while
      !ai < Array.length requests && requests.(!ai).arrival <= t'
    do
      arrivals := (requests.(!ai).arrival, 1, 0, `Arrival requests.(!ai)) :: !arrivals;
      incr ai
    done;
    let merged =
      List.stable_sort
        (fun (t1, k1, s1, _) (t2, k2, s2, _) -> compare (t1, k1, s1) (t2, k2, s2))
        (items @ List.rev !arrivals)
    in
    List.iter
      (fun (_, _, shard_idx, item) ->
        match item with
        | `Cb c -> process_cb shard_idx c
        | `Arrival r -> admit r)
      merged;
    try_dispatch t'
  in
  let next_candidate () =
    let ev =
      List.fold_left
        (fun acc s ->
          match (Os_sim.Engine.next_event s.engine, acc) with
          | None, a -> a
          | Some t, None -> Some t
          | Some t, Some a -> Some (Float.min t a))
        None shards
    in
    let ar =
      if !ai < Array.length requests then Some requests.(!ai).arrival else None
    in
    match (ev, ar) with
    | None, None -> None
    | (Some _ as x), None | None, (Some _ as x) -> x
    | Some x, Some y -> Some (Float.min x y)
  in
  let rec loop t =
    match next_candidate () with
    | None -> ()
    | Some c ->
        let t' = Float.max (t +. p.epoch) c in
        settle t';
        boundary t';
        loop t'
  in
  loop 0.0;
  let makespan =
    Array.fold_left
      (fun acc r ->
        let acc = Float.max acc r.arrival in
        if Float.is_nan r.retired_at then acc else Float.max acc r.retired_at)
      0.0 requests
  in
  T.emit_at ftrace ~time:makespan
    (T.Farm_end { makespan; retired = !retired; rejected = !rejected });
  let shard_reports =
    List.map
      (fun s ->
        {
          s_index = s.index;
          s_spec = s.spec;
          s_pages = s.total_pages;
          s_served = s.served;
          s_busy_cycles = s.busy_cycles;
          s_epochs = s.active_epochs;
          s_os = Os_sim.Engine.result s.engine;
        })
      shards
  in
  Ok
    {
      params = p;
      offered = p.n_requests;
      retired = !retired;
      rejected = !rejected;
      makespan;
      epochs = !n_epochs;
      throughput =
        (if makespan > 0.0 then float_of_int !retired /. makespan *. 1000.0
         else 0.0);
      latency = Hist.summary latency_h;
      queue_wait = Hist.summary queue_wait_h;
      log = List.rev !rev_log;
      requests = Array.to_list requests;
      shard_reports;
      farm_events = T.events ftrace;
      shard_events = List.map (fun s -> T.events s.strace) shards;
    }

let dispatch_name = function
  | Least_loaded -> "least-loaded"
  | Cost_aware -> "cost-aware"

let render ?(log = false) (r : report) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let p = r.params in
  pf "farm: %d shards (%s), %d tenants, %d requests, load %.2f, seed %d\n"
    (List.length p.fleet)
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "%dx%d" s.size s.size) p.fleet))
    p.n_tenants p.n_requests p.offered_load p.seed;
  pf
    "  policy %s, dispatch %s, reconfig cost %.0f, queue bound %d, max \
     resident %d, epoch %.0f\n"
    (match p.policy with
    | Allocator.Halving -> "halving"
    | Allocator.Repack_equal -> "repack"
    | Allocator.Cost_halving -> "cost")
    (dispatch_name p.dispatch) p.reconfig_cost p.queue_bound p.max_resident
    p.epoch;
  pf "  retired %d, rejected %d, makespan %.0f cycles, %d epochs\n" r.retired
    r.rejected r.makespan r.epochs;
  pf "  throughput %.3f req/kcycle\n" r.throughput;
  pf "  latency    p50 %.0f  p90 %.0f  p99 %.0f  max %.0f cycles\n"
    r.latency.Hist.p50 r.latency.Hist.p90 r.latency.Hist.p99 r.latency.Hist.max;
  pf "  queue wait p50 %.0f  p90 %.0f  p99 %.0f  max %.0f cycles\n"
    r.queue_wait.Hist.p50 r.queue_wait.Hist.p90 r.queue_wait.Hist.p99
    r.queue_wait.Hist.max;
  List.iter
    (fun s ->
      pf "  shard %d (%dx%d, %d pages): served %d, busy %.0f cycles, util %.3f\n"
        s.s_index s.s_spec.size s.s_spec.size s.s_pages s.s_served
        s.s_busy_cycles s.s_os.Os_sim.page_utilization)
    r.shard_reports;
  if log then begin
    pf "retirements:\n";
    List.iter
      (fun (rid, tenant, shard, time) ->
        pf "  r%-4d tenant %d shard %d at %.0f\n" rid tenant shard time)
      r.log
  end;
  Buffer.contents b

(* The front-end observability report: where coordinator epochs landed,
   how busy each shard was, and how uneven the (steal-free) load ended
   up — dispatch is final, work never migrates, so max/mean busy is the
   true imbalance, not a sampling artifact. *)
let render_stats (r : report) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "epochs: %d boundaries (epoch %.0f cycles, makespan %.0f)\n" r.epochs
    r.params.epoch r.makespan;
  let busy = List.map (fun s -> s.s_busy_cycles) r.shard_reports in
  let total_busy = List.fold_left ( +. ) 0.0 busy in
  let mean_busy = total_busy /. float_of_int (List.length busy) in
  let max_busy = List.fold_left Float.max 0.0 busy in
  List.iter
    (fun s ->
      pf
        "  shard %-2d (%dx%d): active epochs %-5d (%.3f of %d)  busy %8.0f \
         cycles  busy frac %.3f  served %d\n"
        s.s_index s.s_spec.size s.s_spec.size s.s_epochs
        (if r.epochs > 0 then float_of_int s.s_epochs /. float_of_int r.epochs
         else 0.0)
        r.epochs s.s_busy_cycles
        (if r.makespan > 0.0 then s.s_busy_cycles /. r.makespan else 0.0)
        s.s_served)
    r.shard_reports;
  pf "  load imbalance (max/mean busy, steal-free): %.3f\n"
    (if mean_busy > 0.0 then max_busy /. mean_busy else 1.0);
  Buffer.contents b
