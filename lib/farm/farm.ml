module T = Cgra_trace.Trace
module Hist = Cgra_prof.Metrics.Hist
open Cgra_core

type shard_spec = { size : int; page_pes : int }

let default_fleet =
  [ { size = 4; page_pes = 4 }; { size = 6; page_pes = 4 };
    { size = 8; page_pes = 4 } ]

type params = {
  fleet : shard_spec list;
  n_tenants : int;
  n_requests : int;
  offered_load : float;
  queue_bound : int;
  max_resident : int;
  seed : int;
  policy : Allocator.policy;
  reconfig_cost : float;
}

let default_params =
  {
    fleet = default_fleet;
    n_tenants = 4;
    n_requests = 200;
    offered_load = 1.0;
    queue_bound = 8;
    max_resident = 8;
    seed = 0;
    policy = Allocator.Cost_halving;
    reconfig_cost = 0.0;
  }

(* The request mix: the video-serving story the paper's introduction
   motivates — motion compensation, colour conversion, deinterlacing. *)
let mix = [| "mpeg"; "yuv2rgb"; "sobel" |]
let min_iterations = 40
let max_iterations = 120

type terminal = Retired | Rejected

type request = {
  rid : int;
  tenant : int;
  kernel : string;
  iterations : int;
  arrival : float;
  mutable shard : int;  (* -1 until admitted *)
  mutable dispatched : float;  (* nan until admitted *)
  mutable resident_at : float;  (* nan until first page grant *)
  mutable retired_at : float;  (* nan until finished *)
  mutable terminal : terminal option;
}

type shard_report = {
  s_index : int;
  s_spec : shard_spec;
  s_pages : int;
  s_served : int;
  s_busy_cycles : float;  (* sum of (retired - dispatched) over its requests *)
  s_os : Os_sim.result_t;
}

type report = {
  params : params;
  offered : int;
  retired : int;
  rejected : int;
  makespan : float;
  throughput : float;  (* retired requests per 1000 cycles *)
  latency : Hist.summary;  (* arrival -> retire, cycles *)
  queue_wait : Hist.summary;  (* arrival -> dispatch, cycles *)
  log : (int * int * int * float) list;  (* rid, tenant, shard, time; retirement order *)
  requests : request list;  (* arrival order, final states *)
  shard_reports : shard_report list;
  farm_events : T.event list;
  shard_events : T.event list list;
}

type shard = {
  index : int;
  spec : shard_spec;
  total_pages : int;
  suite : Binary.t list;
  engine : Os_sim.Engine.t;
  strace : T.t;
  mutable served : int;
  mutable busy_cycles : float;
}

let ( let* ) = Result.bind

let validate p =
  if p.fleet = [] then Error "farm: empty fleet"
  else if p.n_tenants < 1 then Error "farm: need at least one tenant"
  else if p.n_requests < 0 then Error "farm: negative request count"
  else if p.offered_load <= 0.0 then Error "farm: offered load must be positive"
  else if p.queue_bound < 1 then Error "farm: queue bound must be >= 1"
  else if p.max_resident < 1 then Error "farm: max resident must be >= 1"
  else if p.reconfig_cost < 0.0 then Error "farm: negative reconfig cost"
  else Ok ()

(* Nominal per-shard service rate: the mean full-allocation service time
   of the request mix.  [offered_load = 1.0] then offers exactly the
   fleet's aggregate capacity under this (optimistic — no queueing, no
   shrinking) model, so loads above 1 saturate by construction. *)
let mean_iters = float_of_int (min_iterations + max_iterations) /. 2.0

let shard_service_cycles suite =
  let total =
    Array.fold_left
      (fun acc name ->
        match List.find_opt (fun (b : Binary.t) -> b.name = name) suite with
        | Some b ->
            acc
            +. (float_of_int
                  (Binary.iteration_cycles b ~pages:(Binary.pages_used b))
               *. mean_iters)
        | None -> acc)
      0.0 mix
  in
  total /. float_of_int (Array.length mix)

let run ?pool ?(traced = false) p =
  let* () = validate p in
  let ftrace = if traced then T.make () else T.null in
  let* shards =
    let rec build i acc = function
      | [] -> Ok (List.rev acc)
      | spec :: rest -> (
          match Cgra_arch.Cgra.standard ~size:spec.size ~page_pes:spec.page_pes with
          | None ->
              Error
                (Printf.sprintf "farm: bad shard spec %dx%d (page %d PEs)"
                   spec.size spec.size spec.page_pes)
          | Some arch ->
              let* suite = Binary.compile_suite ~seed:p.seed ?pool arch in
              let strace = if traced then T.make () else T.null in
              let engine =
                Os_sim.Engine.create ~policy:p.policy
                  ~reconfig_cost:p.reconfig_cost ~trace:strace ~suite
                  ~total_pages:(Cgra_arch.Cgra.n_pages arch) ~mode:Os_sim.Multi ()
              in
              build (i + 1)
                ({ index = i; spec; total_pages = Cgra_arch.Cgra.n_pages arch;
                   suite; engine; strace; served = 0; busy_cycles = 0.0 }
                :: acc)
                rest)
    in
    build 0 [] p.fleet
  in
  (* open-loop Poisson-style arrivals on the virtual clock *)
  let rng = Cgra_util.Rng.create ~seed:p.seed in
  let capacity =
    List.fold_left (fun acc s -> acc +. (1.0 /. shard_service_cycles s.suite))
      0.0 shards
  in
  let rate = p.offered_load *. capacity in
  let requests =
    let rec gen i t acc =
      if i = p.n_requests then Array.of_list (List.rev acc)
      else begin
        let t = t +. Cgra_util.Rng.exponential rng ~mean:(1.0 /. rate) in
        let tenant = Cgra_util.Rng.int rng p.n_tenants in
        let kernel = mix.(Cgra_util.Rng.int rng (Array.length mix)) in
        let iterations =
          Cgra_util.Rng.int_in rng min_iterations max_iterations
        in
        gen (i + 1) t
          ({ rid = i; tenant; kernel; iterations; arrival = t; shard = -1;
             dispatched = Float.nan; resident_at = Float.nan;
             retired_at = Float.nan; terminal = None }
          :: acc)
      end
    in
    gen 0 0.0 []
  in
  T.emit_at ftrace ~time:0.0
    (T.Farm_begin
       { shards = List.length shards; tenants = p.n_tenants;
         queue_bound = p.queue_bound; max_resident = p.max_resident;
         requests = p.n_requests });
  let shard_arr = Array.of_list shards in
  List.iter
    (fun s ->
      Os_sim.Engine.set_on_grant s.engine (fun rid time ->
          let r = requests.(rid) in
          if Float.is_nan r.resident_at then begin
            r.resident_at <- time;
            T.emit_at ftrace ~time
              (T.Farm_resident { req = rid; shard = s.index })
          end))
    shards;
  (* finish notifications are recorded here and acted on after the engine
     step returns (the callbacks must not re-enter an engine) *)
  let finished : (int * float) Queue.t = Queue.create () in
  List.iter
    (fun s ->
      Os_sim.Engine.set_on_finish s.engine (fun rid time ->
          Queue.add (rid, time) finished))
    shards;
  let queues = Array.init p.n_tenants (fun _ -> Queue.create ()) in
  let latency_h = Hist.create () in
  let queue_wait_h = Hist.create () in
  let retired = ref 0 in
  let rejected = ref 0 in
  let rev_log = ref [] in
  (* load-aware shard pick: fewest in-flight requests, then least
     allocated fabric, then lowest index — all deterministic signals *)
  let pick_shard () =
    List.fold_left
      (fun best s ->
        if Os_sim.Engine.in_flight s.engine >= p.max_resident then best
        else
          let key s =
            ( Os_sim.Engine.in_flight s.engine,
              Os_sim.Engine.used_page_fraction s.engine,
              s.index )
          in
          match best with
          | Some b when key b <= key s -> best
          | Some _ | None -> Some s)
      None shards
  in
  let dispatch r (s : shard) now =
    r.shard <- s.index;
    r.dispatched <- now;
    T.emit_at ftrace ~time:now
      (T.Farm_admit { req = r.rid; tenant = r.tenant; shard = s.index });
    Os_sim.Engine.submit s.engine ~at:now
      {
        Thread_model.id = r.rid;
        segments =
          [ Thread_model.Kernel { kernel = r.kernel; iterations = r.iterations } ];
      }
  in
  (* drain tenant queues (tenant order, FIFO within a tenant) while some
     shard has admission capacity *)
  let rec try_dispatch now =
    let rec scan tid =
      if tid >= p.n_tenants then false
      else if Queue.is_empty queues.(tid) then scan (tid + 1)
      else
        match pick_shard () with
        | None -> false (* capacity is fleet-wide: nobody can dispatch *)
        | Some s ->
            dispatch (Queue.take queues.(tid)) s now;
            true
    in
    if scan 0 then try_dispatch now
  in
  let admit r =
    T.emit_at ftrace ~time:r.arrival
      (T.Farm_request
         { req = r.rid; tenant = r.tenant; kernel = r.kernel;
           iterations = r.iterations });
    let q = queues.(r.tenant) in
    if Queue.length q >= p.queue_bound then begin
      r.terminal <- Some Rejected;
      incr rejected;
      T.emit_at ftrace ~time:r.arrival
        (T.Farm_reject
           { req = r.rid; tenant = r.tenant; queue_depth = Queue.length q })
    end
    else begin
      Queue.add r q;
      try_dispatch r.arrival
    end
  in
  let drain_finished () =
    while not (Queue.is_empty finished) do
      let rid, time = Queue.take finished in
      let r = requests.(rid) in
      let s = shard_arr.(r.shard) in
      r.retired_at <- time;
      r.terminal <- Some Retired;
      s.served <- s.served + 1;
      s.busy_cycles <- s.busy_cycles +. (time -. r.dispatched);
      incr retired;
      rev_log := (rid, r.tenant, r.shard, time) :: !rev_log;
      Hist.observe latency_h (time -. r.arrival);
      Hist.observe queue_wait_h (r.dispatched -. r.arrival);
      T.emit_at ftrace ~time
        (T.Farm_retire
           { req = rid; tenant = r.tenant; shard = r.shard;
             latency = time -. r.arrival });
      try_dispatch time
    done
  in
  (* the global event loop: one event at a time, earliest first; a shard
     event wins a tie with an arrival, the lowest shard index wins a tie
     between shards (strict [<] over the fold) — total order, so the run
     is deterministic at any pool width (the pool only compiles) *)
  let next_shard_event () =
    List.fold_left
      (fun best s ->
        match (Os_sim.Engine.next_event s.engine, best) with
        | None, b -> b
        | Some t, None -> Some (t, s)
        | Some t, Some (bt, _) -> if t < bt then Some (t, s) else best)
      None shards
  in
  let ai = ref 0 in
  let step_shard s =
    ignore (Os_sim.Engine.step s.engine);
    drain_finished ()
  in
  let take_arrival () =
    let r = requests.(!ai) in
    incr ai;
    admit r;
    drain_finished ()
  in
  let rec loop () =
    let next_arrival =
      if !ai < Array.length requests then Some requests.(!ai).arrival else None
    in
    match (next_shard_event (), next_arrival) with
    | None, None -> ()
    | Some (_, s), None ->
        step_shard s;
        loop ()
    | None, Some _ ->
        take_arrival ();
        loop ()
    | Some (t, s), Some ta ->
        if t <= ta then step_shard s else take_arrival ();
        loop ()
  in
  loop ();
  let makespan =
    Array.fold_left
      (fun acc r ->
        let acc = Float.max acc r.arrival in
        if Float.is_nan r.retired_at then acc else Float.max acc r.retired_at)
      0.0 requests
  in
  T.emit_at ftrace ~time:makespan
    (T.Farm_end { makespan; retired = !retired; rejected = !rejected });
  let shard_reports =
    List.map
      (fun s ->
        {
          s_index = s.index;
          s_spec = s.spec;
          s_pages = s.total_pages;
          s_served = s.served;
          s_busy_cycles = s.busy_cycles;
          s_os = Os_sim.Engine.result s.engine;
        })
      shards
  in
  Ok
    {
      params = p;
      offered = p.n_requests;
      retired = !retired;
      rejected = !rejected;
      makespan;
      throughput =
        (if makespan > 0.0 then float_of_int !retired /. makespan *. 1000.0
         else 0.0);
      latency = Hist.summary latency_h;
      queue_wait = Hist.summary queue_wait_h;
      log = List.rev !rev_log;
      requests = Array.to_list requests;
      shard_reports;
      farm_events = T.events ftrace;
      shard_events = List.map (fun s -> T.events s.strace) shards;
    }

let render ?(log = false) (r : report) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let p = r.params in
  pf "farm: %d shards (%s), %d tenants, %d requests, load %.2f, seed %d\n"
    (List.length p.fleet)
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "%dx%d" s.size s.size) p.fleet))
    p.n_tenants p.n_requests p.offered_load p.seed;
  pf "  policy %s, reconfig cost %.0f, queue bound %d, max resident %d\n"
    (match p.policy with
    | Allocator.Halving -> "halving"
    | Allocator.Repack_equal -> "repack"
    | Allocator.Cost_halving -> "cost")
    p.reconfig_cost p.queue_bound p.max_resident;
  pf "  retired %d, rejected %d, makespan %.0f cycles\n" r.retired r.rejected
    r.makespan;
  pf "  throughput %.3f req/kcycle\n" r.throughput;
  pf "  latency    p50 %.0f  p90 %.0f  p99 %.0f  max %.0f cycles\n"
    r.latency.Hist.p50 r.latency.Hist.p90 r.latency.Hist.p99 r.latency.Hist.max;
  pf "  queue wait p50 %.0f  p90 %.0f  p99 %.0f  max %.0f cycles\n"
    r.queue_wait.Hist.p50 r.queue_wait.Hist.p90 r.queue_wait.Hist.p99
    r.queue_wait.Hist.max;
  List.iter
    (fun s ->
      pf "  shard %d (%dx%d, %d pages): served %d, busy %.0f cycles, util %.3f\n"
        s.s_index s.s_spec.size s.s_spec.size s.s_pages s.s_served
        s.s_busy_cycles s.s_os.Os_sim.page_utilization)
    r.shard_reports;
  if log then begin
    pf "retirements:\n";
    List.iter
      (fun (rid, tenant, shard, time) ->
        pf "  r%-4d tenant %d shard %d at %.0f\n" rid tenant shard time)
      r.log
  end;
  Buffer.contents b
