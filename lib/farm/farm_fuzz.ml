module T = Cgra_trace.Trace
open Cgra_core

(* ----- the farm-stream monitor ----- *)

type req_state = Queued | In_shard of int | Terminal

let monitor ~queue_bound ~max_resident (events : T.event list) =
  let failures = ref [] in
  let err fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let state : (int, req_state) Hashtbl.t = Hashtbl.create 64 in
  let request_time : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let resident : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  (* per-tenant queued-but-undispatched requests, FIFO *)
  let tenant_q : (int, int Queue.t) Hashtbl.t = Hashtbl.create 8 in
  let queue_of tenant =
    match Hashtbl.find_opt tenant_q tenant with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace tenant_q tenant q;
        q
  in
  let in_flight : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let last_time = ref neg_infinity in
  List.iter
    (fun (e : T.event) ->
      let seq = e.T.seq in
      if e.T.time < !last_time then
        err "event %d: time goes backwards (%g after %g)" seq e.T.time !last_time;
      last_time := Float.max !last_time e.T.time;
      match e.T.payload with
      | T.Farm_request r ->
          if Hashtbl.mem state r.req then
            err "event %d: duplicate farm_request for r%d" seq r.req;
          Hashtbl.replace state r.req Queued;
          Hashtbl.replace request_time r.req e.T.time;
          Queue.add r.req (queue_of r.tenant);
          if Queue.length (queue_of r.tenant) > queue_bound + 1 then
            err "event %d: tenant %d queue depth %d beyond bound %d" seq r.tenant
              (Queue.length (queue_of r.tenant))
              queue_bound
      | T.Farm_reject r -> (
          (* a reject must bounce the request we just queued over-bound *)
          match Hashtbl.find_opt state r.req with
          | Some Queued ->
              Hashtbl.replace state r.req Terminal;
              let q = queue_of r.tenant in
              (* the rejected request is the newest entry *)
              let entries = Queue.fold (fun acc x -> x :: acc) [] q in
              (match entries with
              | newest :: _ when newest = r.req ->
                  Queue.clear q;
                  List.iter (fun x -> Queue.add x q) (List.rev (List.tl entries))
              | _ -> err "event %d: farm_reject r%d is not the newest queued" seq r.req)
          | Some _ -> err "event %d: farm_reject for non-queued r%d" seq r.req
          | None -> err "event %d: farm_reject for unknown r%d" seq r.req)
      | T.Farm_admit r -> (
          match Hashtbl.find_opt state r.req with
          | Some Queued -> (
              let q = queue_of r.tenant in
              (match Queue.take_opt q with
              | Some head when head = r.req -> ()
              | Some head ->
                  err "event %d: tenant %d FIFO violated (admitted r%d, head r%d)"
                    seq r.tenant r.req head
              | None -> err "event %d: farm_admit r%d with empty queue" seq r.req);
              Hashtbl.replace state r.req (In_shard r.shard);
              let n = Option.value ~default:0 (Hashtbl.find_opt in_flight r.shard) in
              Hashtbl.replace in_flight r.shard (n + 1);
              if n + 1 > max_resident then
                err "event %d: shard %d in-flight %d beyond max_resident %d" seq
                  r.shard (n + 1) max_resident)
          | Some _ -> err "event %d: farm_admit for non-queued r%d" seq r.req
          | None -> err "event %d: farm_admit for unknown r%d" seq r.req)
      | T.Farm_resident r -> (
          match Hashtbl.find_opt state r.req with
          | Some (In_shard s) ->
              if s <> r.shard then
                err "event %d: r%d resident on shard %d but admitted to %d" seq
                  r.req r.shard s;
              if Hashtbl.mem resident r.req then
                err "event %d: duplicate farm_resident for r%d" seq r.req;
              Hashtbl.replace resident r.req ()
          | Some _ | None ->
              err "event %d: farm_resident for non-admitted r%d" seq r.req)
      | T.Farm_retire r -> (
          match Hashtbl.find_opt state r.req with
          | Some (In_shard s) ->
              if s <> r.shard then
                err "event %d: r%d retired on shard %d but admitted to %d" seq
                  r.req r.shard s;
              if not (Hashtbl.mem resident r.req) then
                err "event %d: r%d retired without ever becoming resident" seq r.req;
              Hashtbl.replace state r.req Terminal;
              let n = Option.value ~default:0 (Hashtbl.find_opt in_flight r.shard) in
              Hashtbl.replace in_flight r.shard (n - 1);
              (match Hashtbl.find_opt request_time r.req with
              | Some t0 ->
                  if Float.abs (e.T.time -. t0 -. r.latency) > 1e-9 then
                    err "event %d: r%d latency %g but span says %g" seq r.req
                      r.latency (e.T.time -. t0)
              | None -> ())
          | Some _ -> err "event %d: farm_retire for non-admitted r%d" seq r.req
          | None -> err "event %d: farm_retire for unknown r%d" seq r.req)
      | T.Farm_end r ->
          let open_reqs =
            Hashtbl.fold
              (fun req s acc -> if s <> Terminal then req :: acc else acc)
              state []
          in
          if open_reqs <> [] then
            err "event %d: farm_end with %d non-terminal requests" seq
              (List.length open_reqs);
          let terminals = Hashtbl.length state in
          if r.retired + r.rejected <> terminals then
            err "event %d: farm_end counts %d+%d but %d requests seen" seq
              r.retired r.rejected terminals
      | _ -> ())
    events;
  List.rev !failures

(* ----- report-level conservation checks ----- *)

let check_report (r : Farm.report) =
  let failures = ref [] in
  let err fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (* every request reaches exactly one terminal state, consistently *)
  List.iter
    (fun (q : Farm.request) ->
      match q.Farm.terminal with
      | None -> err "r%d has no terminal state" q.Farm.rid
      | Some Farm.Retired ->
          if Float.is_nan q.Farm.retired_at || q.Farm.shard < 0 then
            err "r%d retired without dispatch accounting" q.Farm.rid
      | Some Farm.Rejected ->
          if not (Float.is_nan q.Farm.dispatched) then
            err "r%d rejected after being dispatched" q.Farm.rid)
    r.Farm.requests;
  if r.Farm.retired + r.Farm.rejected <> r.Farm.offered then
    err "conservation: %d retired + %d rejected <> %d offered" r.Farm.retired
      r.Farm.rejected r.Farm.offered;
  (* admitted requests are never dropped *)
  List.iter
    (fun (q : Farm.request) ->
      if (not (Float.is_nan q.Farm.dispatched)) && q.Farm.terminal <> Some Farm.Retired
      then err "r%d was admitted but never retired" q.Farm.rid)
    r.Farm.requests;
  (* per-tenant FIFO: dispatch order = arrival order among admitted *)
  let by_tenant = Hashtbl.create 8 in
  List.iter
    (fun (q : Farm.request) ->
      if not (Float.is_nan q.Farm.dispatched) then
        Hashtbl.replace by_tenant q.Farm.tenant
          (q :: Option.value ~default:[] (Hashtbl.find_opt by_tenant q.Farm.tenant)))
    r.Farm.requests;
  Hashtbl.iter
    (fun tenant reqs ->
      (* reqs is reverse arrival order; dispatch times must be
         non-decreasing in arrival order *)
      let in_arrival = List.rev reqs in
      ignore
        (List.fold_left
           (fun prev (q : Farm.request) ->
             (match prev with
             | Some (pd, prid) when q.Farm.dispatched < pd ->
                 err "tenant %d FIFO violated: r%d dispatched before r%d" tenant
                   q.Farm.rid prid
             | Some _ | None -> ());
             Some (q.Farm.dispatched, q.Farm.rid))
           None in_arrival))
    by_tenant;
  List.rev !failures

(* ----- the seeded fuzz harness ----- *)

type outcome = {
  cases : int;
  requests : int;
  events : int;
  failures : string list;
}

let fleets =
  [|
    [ { Farm.size = 4; page_pes = 4 } ];
    [ { Farm.size = 4; page_pes = 4 }; { Farm.size = 4; page_pes = 2 } ];
    [ { Farm.size = 4; page_pes = 4 }; { Farm.size = 6; page_pes = 4 } ];
  |]

let params_of_seed seed =
  let rng = Cgra_util.Rng.create ~seed in
  let fleet = Cgra_util.Rng.choose rng fleets in
  let n_tenants = Cgra_util.Rng.int_in rng 1 4 in
  let n_requests = Cgra_util.Rng.int_in rng 5 40 in
  let offered_load = 0.25 +. Cgra_util.Rng.float rng 3.0 in
  let queue_bound = Cgra_util.Rng.int_in rng 1 4 in
  let max_resident = Cgra_util.Rng.int_in rng 1 6 in
  let policy =
    Cgra_util.Rng.choose rng
      [| Allocator.Halving; Allocator.Cost_halving; Allocator.Repack_equal |]
  in
  let reconfig_cost = float_of_int (Cgra_util.Rng.choose rng [| 0; 10; 50 |]) in
  let dispatch =
    Cgra_util.Rng.choose rng [| Farm.Least_loaded; Farm.Cost_aware |]
  in
  let epoch = Cgra_util.Rng.choose rng [| 16.0; 64.0; 256.0 |] in
  {
    Farm.fleet;
    n_tenants;
    n_requests;
    offered_load;
    queue_bound;
    max_resident;
    seed;
    policy;
    reconfig_cost;
    dispatch;
    epoch;
  }

let check_case seed =
  let p = params_of_seed seed in
  match Farm.run ~traced:true p with
  | Error e -> (p.Farm.n_requests, 0, [ Printf.sprintf "seed %d: %s" seed e ])
  | Ok r ->
      let tag m = Printf.sprintf "seed %d: %s" seed m in
      let farm_failures =
        monitor ~queue_bound:p.Farm.queue_bound ~max_resident:p.Farm.max_resident
          r.Farm.farm_events
        @ check_report r
      in
      (* each shard's OS stream must satisfy the instant-level page
         conservation/disjointness invariants and replay to the engine's
         own aggregate, bit for bit *)
      let shard_failures =
        List.concat
          (List.map2
             (fun (sr : Farm.shard_report) events ->
               List.map
                 (Printf.sprintf "shard %d: %s" sr.Farm.s_index)
                 (Cgra_verify.Os_fuzz.monitor events
                 @ Cgra_verify.Os_fuzz.replay_check sr.Farm.s_os events))
             r.Farm.shard_reports r.Farm.shard_events)
      in
      let events =
        List.length r.Farm.farm_events
        + List.fold_left (fun a es -> a + List.length es) 0 r.Farm.shard_events
      in
      (p.Farm.n_requests, events, List.map tag (farm_failures @ shard_failures))

let run ?pool ~seeds () =
  let one seed = check_case seed in
  let results =
    match pool with
    | Some pool -> Cgra_util.Pool.map pool one seeds
    | None -> List.map one seeds
  in
  List.fold_left
    (fun acc (reqs, events, failures) ->
      {
        cases = acc.cases + 1;
        requests = acc.requests + reqs;
        events = acc.events + events;
        failures = acc.failures @ failures;
      })
    { cases = 0; requests = 0; events = 0; failures = [] }
    results

let pp_outcome ppf o =
  Format.fprintf ppf "farm fuzz: %d cases, %d requests, %d events checked: %s"
    o.cases o.requests o.events
    (if o.failures = [] then "all invariants hold"
     else Printf.sprintf "%d FAILURES" (List.length o.failures))
