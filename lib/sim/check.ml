open Cgra_dfg

let against_oracle ?(trace = Cgra_trace.Trace.null) (m : Cgra_mapper.Mapping.t)
    init ~iterations =
  let mem_sim = Memory.copy init in
  let mem_ref = Memory.copy init in
  let report = Exec.run ~trace m mem_sim ~iterations in
  let oracle = Interp.run_history m.graph mem_ref ~iterations in
  let errors = ref (List.rev report.violations) in
  let err s = errors := s :: !errors in
  let mismatches = ref 0 in
  for i = 0 to iterations - 1 do
    Array.iteri
      (fun v expected ->
        let got = report.values.(i).(v) in
        if got <> expected then begin
          incr mismatches;
          if !mismatches <= 5 then
            err
              (Printf.sprintf "node %d iter %d: simulator %d, oracle %d" v i got
                 expected)
        end)
      oracle.(i)
  done;
  if !mismatches > 5 then
    err (Printf.sprintf "... %d value mismatches in total" !mismatches);
  List.iter
    (fun (array, idx, simv, refv) ->
      err (Printf.sprintf "memory %s[%d]: simulator %d, oracle %d" array idx simv refv))
    (Memory.diff mem_sim mem_ref);
  match List.rev !errors with [] -> Ok () | es -> Error es
