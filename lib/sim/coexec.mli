(** Co-residency of several kernels on one fabric — the melded schedules
    of Section V ("combine them to create one schedule that uses the
    entire CGRA, but still satisfies all the dependencies of the input
    schedules").

    Residents occupy disjoint PEs (the allocator hands out disjoint page
    ranges), so their dataflow cannot interfere; what they {e do} share
    is the per-row memory buses.  {!check} verifies spatial disjointness
    and bus capacity over the combined hyperperiod, and reports the
    aggregate IPC and utilization of Section IV; {!simulate} runs every
    resident cycle-accurately against its own oracle (threads have
    private memory). *)

type report = {
  residents : int;
  hyperperiod : int;  (** lcm of the residents' IIs (bus-check window) *)
  ipc : float;  (** aggregate ops per cycle, Section IV *)
  utilization : float;  (** aggregate PE utilization *)
}

val check :
  ?check_mem:bool ->
  ?trace:Cgra_trace.Trace.t ->
  Cgra_mapper.Mapping.t list ->
  (report, string list) result
(** All mappings must target the same fabric.  Errors list PE slot
    overlaps between residents and row-bus over-subscriptions
    ([check_mem:false] skips the latter, as for transformed schedules —
    see [Mapping.validate]).

    When [trace] is live the check runs inside a [coexec.check] span; the
    report lands as [coexec.*] counter events and every violation as a
    [Mark]. *)

val simulate :
  ?trace:Cgra_trace.Trace.t ->
  (Cgra_mapper.Mapping.t * Cgra_dfg.Memory.t) list ->
  iterations:int ->
  (unit, string list) result
(** {!check} (without the bus check) plus a cycle-accurate run of each
    resident compared against the interpreter.  [trace] wraps the whole
    call in a [coexec.simulate] span and is forwarded to
    {!Check.against_oracle}. *)
