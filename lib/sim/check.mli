(** Oracle equivalence: a mapped (or PageMaster-transformed) schedule must
    compute exactly what the sequential interpreter computes — same value
    for every node instance, same final memory, and zero dynamic
    violations.  This is the end-to-end proof the test-suite leans on:
    compile, shrink, execute, compare. *)

val against_oracle :
  ?trace:Cgra_trace.Trace.t ->
  Cgra_mapper.Mapping.t ->
  Cgra_dfg.Memory.t ->
  iterations:int ->
  (unit, string list) result
(** [against_oracle m init ~iterations] runs the simulator and the
    interpreter on independent copies of [init] and compares.  The error
    list contains dynamic violations, value mismatches (first few), and
    memory differences; [Ok] means bit-exact equivalence.  [trace] is
    forwarded to {!Exec.run}. *)
