open Cgra_arch
open Cgra_dfg
open Cgra_mapper

type report = {
  residents : int;
  hyperperiod : int;
  ipc : float;
  utilization : float;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b = a / gcd a b * b

let occupants (m : Mapping.t) =
  let ops =
    Array.to_list m.placements
    |> List.filter_map (fun pl -> pl)
  in
  let hops = List.concat_map (fun (r : Mapping.route) -> r.hops) m.routes in
  ops @ hops

let check ?(check_mem = true) ?(trace = Cgra_trace.Trace.null) mappings =
  let module T = Cgra_trace.Trace in
  T.with_span trace "coexec.check" @@ fun () ->
  match mappings with
  | [] -> Error [ "Coexec.check: no residents" ]
  | first :: rest ->
      let errs = ref [] in
      let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
      let arch = first.Mapping.arch in
      List.iter
        (fun (m : Mapping.t) ->
          if m.arch != arch && m.arch <> arch then err "residents target different fabrics")
        rest;
      (* spatial disjointness: no PE may be touched by two residents
         (regardless of slot: residents run different IIs, so any shared
         PE eventually collides) *)
      let owner = Hashtbl.create 64 in
      List.iteri
        (fun who (m : Mapping.t) ->
          List.iter
            (fun (p : Mapping.placement) ->
              let idx = Grid.index arch.Cgra.grid p.pe in
              match Hashtbl.find_opt owner idx with
              | Some other when other <> who ->
                  err "residents %d and %d share PE %s" other who (Coord.to_string p.pe)
              | Some _ | None -> Hashtbl.replace owner idx who)
            (occupants m))
        mappings;
      (* row-bus capacity over the hyperperiod *)
      let hyperperiod =
        List.fold_left (fun acc (m : Mapping.t) -> lcm acc m.ii) 1 mappings
      in
      if check_mem then begin
        let use = Hashtbl.create 64 in
        List.iter
          (fun (m : Mapping.t) ->
            Array.iteri
              (fun v pl ->
                match pl with
                | Some (p : Mapping.placement)
                  when Op.is_mem (Graph.node m.graph v).op ->
                    let slot = p.time mod m.ii in
                    let rec mark c =
                      if c < hyperperiod then begin
                        let key = (p.pe.Coord.row, c) in
                        let n = Option.value ~default:0 (Hashtbl.find_opt use key) in
                        Hashtbl.replace use key (n + 1);
                        mark (c + m.ii)
                      end
                    in
                    mark slot
                | Some _ | None -> ())
              m.placements)
          mappings;
        Hashtbl.iter
          (fun (row, c) n ->
            if n > arch.Cgra.mem_ports_per_row then
              err "row %d cycle %d (mod %d): %d memory ops on a %d-port bus" row c
                hyperperiod n arch.Cgra.mem_ports_per_row)
          use
      end;
      if !errs <> [] then begin
        let es = List.rev !errs in
        if T.enabled trace then
          List.iter
            (fun e ->
              T.emit trace (T.Mark { name = "coexec.violation"; detail = e }))
            es;
        Error es
      end
      else begin
        let ops_of (m : Mapping.t) =
          Array.fold_left
            (fun acc pl -> match pl with Some _ -> acc + 1 | None -> acc)
            0 m.placements
        in
        let ipc =
          List.fold_left
            (fun acc (m : Mapping.t) ->
              acc +. (float_of_int (ops_of m) /. float_of_int m.ii))
            0.0 mappings
        in
        let report =
          {
            residents = List.length mappings;
            hyperperiod;
            ipc;
            utilization = ipc /. float_of_int (Cgra.pe_count arch);
          }
        in
        if T.enabled trace then begin
          T.emit trace
            (T.Counter
               { name = "coexec.residents";
                 value = float_of_int report.residents });
          T.emit trace
            (T.Counter
               { name = "coexec.hyperperiod";
                 value = float_of_int report.hyperperiod });
          T.emit trace (T.Counter { name = "coexec.ipc"; value = report.ipc });
          T.emit trace
            (T.Counter
               { name = "coexec.utilization"; value = report.utilization })
        end;
        Ok report
      end

let simulate ?(trace = Cgra_trace.Trace.null) residents ~iterations =
  let module T = Cgra_trace.Trace in
  T.with_span trace "coexec.simulate" @@ fun () ->
  match check ~check_mem:false ~trace (List.map fst residents) with
  | Error es -> Error es
  | Ok _ ->
      let failures =
        List.concat_map
          (fun ((m : Mapping.t), mem) ->
            match Check.against_oracle ~trace m mem ~iterations with
            | Ok () -> []
            | Error es ->
                List.map
                  (fun e -> Printf.sprintf "%s: %s" (Graph.name m.graph) e)
                  es)
          residents
      in
      if failures = [] then Ok () else Error failures
