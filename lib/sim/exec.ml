open Cgra_arch
open Cgra_dfg
open Cgra_mapper

type report = {
  cycles : int;
  values : int array array;
  violations : string list;
}

type event =
  | Fire of int * int  (* node, iteration *)
  | Hop of Mapping.route * int * int  (* route, hop index, iteration *)

let edge_key (e : Graph.edge) = (e.src, e.dst, e.operand)

let run ?(trace = Cgra_trace.Trace.null) (m : Mapping.t) mem ~iterations =
  if iterations < 0 then invalid_arg "Exec.run: negative iteration count";
  let module T = Cgra_trace.Trace in
  let tracing = T.enabled trace in
  let span = Printf.sprintf "exec:%s" (Graph.name m.graph) in
  let t0 = T.clock trace in
  if tracing then T.emit trace (T.Span_begin { name = span });
  let g = m.graph in
  let grid = m.arch.Cgra.grid in
  let violations = ref [] in
  let violate s = violations := s :: !violations in
  let machine = Machine.create grid mem in
  let values = Array.init iterations (fun _ -> Array.make (Graph.n_nodes g) 0) in
  (* Constants are configuration immediates, not scheduled operations;
     their "result" is the immediate itself in every iteration. *)
  List.iter
    (fun (n : Graph.node) ->
      match n.op with
      | Op.Const k ->
          Array.iter (fun row -> row.(n.id) <- k) values
      | _ -> ())
    (Graph.nodes g);
  let routes_by_edge = Hashtbl.create 16 in
  List.iter
    (fun (r : Mapping.route) -> Hashtbl.replace routes_by_edge (edge_key r.edge) r)
    m.routes;
  (* Collect and order all events: cycle, then PE (determinism only —
     same-cycle events are independent when the mapping is valid). *)
  let events = ref [] in
  for i = 0 to iterations - 1 do
    Array.iteri
      (fun v pl ->
        match pl with
        | Some (p : Mapping.placement) ->
            events := ((i * m.ii) + p.time, Grid.index grid p.pe, Fire (v, i)) :: !events
        | None -> ())
      m.placements;
    List.iter
      (fun (r : Mapping.route) ->
        List.iteri
          (fun j (h : Mapping.placement) ->
            events := ((i * m.ii) + h.time, Grid.index grid h.pe, Hop (r, j, i)) :: !events)
          r.hops)
      m.routes
  done;
  let events =
    List.sort
      (fun (c1, p1, _) (c2, p2, _) -> if c1 <> c2 then compare c1 c2 else compare p1 p2)
      !events
  in
  (* Where does the final value of edge [e] live, and under which tag? *)
  let source_location (e : Graph.edge) src_iter =
    match Hashtbl.find_opt routes_by_edge (edge_key e) with
    | Some r when r.hops <> [] ->
        let last = List.length r.hops - 1 in
        let h = List.nth r.hops last in
        (h.Mapping.pe, Machine.Relay ((e.src, e.dst, e.operand), last, src_iter))
    | Some _ | None ->
        let p = Mapping.placement_exn m e.src in
        (p.pe, Machine.Value (e.src, src_iter))
  in
  let read_operand ~reader ~cycle ~iter (e : Graph.edge) =
    match (Graph.node g e.src).op with
    | Op.Const k -> k
    | _ ->
        let src_iter = iter - e.distance in
        if src_iter < 0 then 0
        else
          let holder, tag = source_location e src_iter in
          (match Machine.read machine ~reader ~holder ~tag ~cycle with
          | Ok v -> v
          | Error msg ->
              violate msg;
              values.(src_iter).(e.src))
  in
  let exec_event (cycle, _, ev) =
    match ev with
    | Fire (v, i) ->
        let p = Mapping.placement_exn m v in
        let args =
          List.map (read_operand ~reader:p.pe ~cycle ~iter:i) (Graph.preds g v)
        in
        let load array idx =
          match Machine.load machine ~cycle array idx with
          | Ok value -> value
          | Error msg ->
              violate msg;
              Memory.load (Machine.memory machine) array idx
        in
        let store array idx value =
          match Machine.store machine ~cycle array idx value with
          | Ok () -> ()
          | Error msg -> violate msg
        in
        let result = Op.eval (Graph.node g v).op ~iter:i ~load ~store args in
        values.(i).(v) <- result;
        Machine.write machine ~pe:p.pe ~tag:(Machine.Value (v, i)) ~cycle result
    | Hop (r, j, i) ->
        let e = r.edge in
        let h = List.nth r.hops j in
        let holder, tag =
          if j = 0 then
            let p = Mapping.placement_exn m e.src in
            (p.Mapping.pe, Machine.Value (e.src, i))
          else
            let prev = List.nth r.hops (j - 1) in
            (prev.Mapping.pe, Machine.Relay ((e.src, e.dst, e.operand), j - 1, i))
        in
        let v =
          match Machine.read machine ~reader:h.Mapping.pe ~holder ~tag ~cycle with
          | Ok v -> v
          | Error msg ->
              violate msg;
              values.(i).(e.src)
        in
        Machine.write machine ~pe:h.Mapping.pe
          ~tag:(Machine.Relay ((e.src, e.dst, e.operand), j, i))
          ~cycle v
  in
  List.iter exec_event events;
  let cycles =
    match List.rev events with [] -> 0 | (c, _, _) :: _ -> c + 1
  in
  let violations = List.rev !violations in
  if tracing then begin
    let fired, hops =
      List.fold_left
        (fun (f, h) (_, _, ev) ->
          match ev with Fire _ -> (f + 1, h) | Hop _ -> (f, h + 1))
        (0, 0) events
    in
    T.count trace "exec.cycles" (float_of_int cycles);
    T.count trace "exec.fired" (float_of_int fired);
    T.count trace "exec.hops" (float_of_int hops);
    T.count trace "exec.violations" (float_of_int (List.length violations));
    T.emit trace
      (T.Counter { name = "exec.cycles"; value = float_of_int cycles });
    T.emit trace
      (T.Counter { name = "exec.fired"; value = float_of_int fired });
    T.emit trace (T.Counter { name = "exec.hops"; value = float_of_int hops });
    T.emit trace
      (T.Counter
         { name = "exec.violations";
           value = float_of_int (List.length violations) });
    List.iter
      (fun v -> T.emit trace (T.Mark { name = "exec.violation"; detail = v }))
      violations;
    T.emit_at trace ~time:(t0 +. float_of_int cycles) (T.Span_end { name = span })
  end;
  { cycles; values; violations }
