(** Cycle-accurate execution of a mapped kernel.

    Every operation instance [(v, i)] fires at cycle [i*ii + time(v)],
    every routing-hop instance at its scheduled cycle; values move only
    through register files within mesh reach.  Prologue and epilogue fall
    out naturally: early cycles simply have fewer live stages.

    The executor reports {e dynamic} violations (a value read before it
    was produced, from out of reach, or a memory race) even if it can
    still limp on numerically — a mapping that validates statically must
    execute with zero violations, and the test-suite asserts exactly
    that. *)

type report = {
  cycles : int;  (** total cycles simulated *)
  values : int array array;  (** [values.(i).(v)] = result of node v, iteration i *)
  violations : string list;  (** dynamic physical violations, oldest first *)
}

val run :
  ?trace:Cgra_trace.Trace.t ->
  Cgra_mapper.Mapping.t ->
  Cgra_dfg.Memory.t ->
  iterations:int ->
  report
(** Executes [iterations] loop iterations, mutating the given memory.
    Raises [Invalid_argument] on negative iteration counts.

    When [trace] is live, the run is bracketed by an [exec:<kernel>] span
    whose end time is the trace clock advanced by [cycles]; the
    [exec.cycles] / [exec.violations] counters are bumped and every
    dynamic violation is recorded as a [Mark]. *)
