module Json = Cgra_trace.Json
module Table = Cgra_util.Table

let farr a = Json.Arr (Array.to_list (Array.map (fun v -> Json.Num v) a))

let to_json (r : Analyze.report) =
  let run =
    Json.Obj
      [
        ("makespan", Json.Num r.run.makespan);
        ("mem_ports", Json.num_of_int r.run.mem_ports);
        ("mode", Json.Str r.run.mode);
        ("n_events", Json.num_of_int r.run.n_events);
        ("policy", Json.Str r.run.policy);
        ("reconfig_cost", Json.Num r.run.reconfig_cost);
        ("rows", Json.num_of_int r.run.rows);
        ("threads", Json.num_of_int r.run.n_threads);
        ("total_pages", Json.num_of_int r.run.total_pages);
      ]
  in
  let fabric_cycles =
    r.run.makespan *. float_of_int (max 1 r.run.total_pages)
  in
  let residents =
    Json.Arr
      (List.map
         (fun (h : Analyze.resident_heat) ->
           Json.Obj
             [
               ("busy_cycles", Json.Num h.busy_total);
               ("page_busy", farr h.page_busy);
               ("thread", Json.num_of_int h.thread);
               ( "utilization",
                 Json.Num
                   (if fabric_cycles > 0.0 then h.busy_total /. fabric_cycles
                    else 0.0) );
             ])
         r.residents)
  in
  let row_bus =
    match r.row_bus with
    | None -> Json.Null
    | Some b ->
        Json.Obj
          [
            ("avg", farr b.avg);
            ("capacity", Json.Num b.capacity);
            ("over_frac", farr b.over_frac);
            ("peak", farr b.peak);
            ("rows", Json.num_of_int b.n_rows);
          ]
  in
  let stall (s : Analyze.stall_attrib) =
    Json.Obj
      [
        ("execution", Json.Num s.execution);
        ("queueing", Json.Num s.queueing);
        ("reshape", Json.Num s.reshape);
        ("segments", Json.num_of_int s.segments);
        ("thread", Json.num_of_int s.thread);
        ("total", Json.Num s.total);
      ]
  in
  let reshapes =
    Json.Obj
      [
        ("considered", Json.num_of_int r.reshapes.considered);
        ("decisions", Json.num_of_int r.reshapes.decisions);
        ("denials", Json.num_of_int r.reshapes.denials);
        ("entry_cycles", Json.Num r.reshapes.entry_cycles);
        ("expands", Json.num_of_int r.reshapes.expands);
        ("moves", Json.num_of_int r.reshapes.moves);
        ("pages_rewritten", Json.num_of_int r.reshapes.pages_rewritten);
        ("reshape_cycles", Json.Num r.reshapes.reshape_cycles);
        ("shrinks", Json.num_of_int r.reshapes.shrinks);
      ]
  in
  let latency =
    Json.Obj
      [
        ("all", Metrics.Hist.summary_json r.latency_all);
        ( "threads",
          Json.Arr
            (List.map
               (fun (tid, h) ->
                 match Metrics.Hist.summary_json h with
                 | Json.Obj fields ->
                     (* "thread" sorts after every summary key except none
                        beginning later than 't'; keep full object sorted *)
                     Json.Obj
                       (List.sort
                          (fun (a, _) (b, _) -> String.compare a b)
                          (("thread", Json.num_of_int tid) :: fields))
                 | other -> other)
               r.latency) );
      ]
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Num v)) r.counters) );
      ("latency", latency);
      ("occupancy", residents);
      ("reshapes", reshapes);
      ("row_bus", row_bus);
      ("run", run);
      ("stalls", Json.Arr (List.map stall r.stalls));
    ]

let json_string r = Json.to_string (to_json r) ^ "\n"

let fmt = Table.fmt_float
let pct = Table.fmt_percent

let text (r : Analyze.report) =
  let buf = Buffer.create 4096 in
  let line s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
  let table t = Buffer.add_string buf t; Buffer.add_char buf '\n' in
  line
    (Printf.sprintf
       "profile: %s mode, %d threads, %d pages, policy %s, makespan %s \
        cycles (%d events)"
       r.run.mode r.run.n_threads r.run.total_pages r.run.policy
       (fmt ~decimals:0 r.run.makespan)
       r.run.n_events);
  let fabric_cycles =
    r.run.makespan *. float_of_int (max 1 r.run.total_pages)
  in
  if r.residents <> [] then begin
    line "";
    line "page occupancy (busy fraction of makespan per page)";
    let header =
      "thread"
      :: List.init r.run.total_pages (fun p -> Printf.sprintf "p%d" p)
      @ [ "busy cyc"; "util" ]
    in
    let rows =
      List.map
        (fun (h : Analyze.resident_heat) ->
          Printf.sprintf "t%d" h.thread
          :: Array.to_list
               (Array.map
                  (fun busy ->
                    if r.run.makespan > 0.0 then
                      pct ~decimals:1 (100.0 *. busy /. r.run.makespan)
                    else pct ~decimals:1 0.0)
                  h.page_busy)
          @ [
              fmt ~decimals:0 h.busy_total;
              (if fabric_cycles > 0.0 then
                 pct ~decimals:1 (100.0 *. h.busy_total /. fabric_cycles)
               else pct ~decimals:1 0.0);
            ])
        r.residents
    in
    table (Table.render ~header rows)
  end;
  (match r.row_bus with
  | None -> ()
  | Some b ->
      line "";
      line
        (Printf.sprintf
           "row-bus demand (accesses/cycle, capacity %s per row)"
           (fmt ~decimals:0 b.capacity));
      let rows =
        List.init b.n_rows (fun i ->
            [
              Printf.sprintf "row %d" i;
              fmt ~decimals:3 b.avg.(i);
              fmt ~decimals:3 b.peak.(i);
              pct ~decimals:1 (100.0 *. b.over_frac.(i));
            ])
      in
      table (Table.render ~header:[ "row bus"; "avg"; "peak"; "over cap" ] rows));
  if r.stalls <> [] then begin
    line "";
    line "stall attribution (cycles per thread)";
    let row (s : Analyze.stall_attrib) name =
      [
        name;
        string_of_int s.segments;
        fmt ~decimals:0 s.queueing;
        fmt ~decimals:0 s.reshape;
        fmt ~decimals:0 s.execution;
        fmt ~decimals:0 s.total;
      ]
    in
    let total =
      List.fold_left
        (fun (acc : Analyze.stall_attrib) (s : Analyze.stall_attrib) ->
          {
            acc with
            segments = acc.segments + s.segments;
            queueing = acc.queueing +. s.queueing;
            reshape = acc.reshape +. s.reshape;
            execution = acc.execution +. s.execution;
            total = acc.total +. s.total;
          })
        { thread = -1; segments = 0; queueing = 0.0; reshape = 0.0;
          execution = 0.0; total = 0.0 }
        r.stalls
    in
    let rows =
      List.map
        (fun (s : Analyze.stall_attrib) ->
          row s (Printf.sprintf "t%d" s.thread))
        r.stalls
      @ [ row total "TOTAL" ]
    in
    table
      (Table.render
         ~header:[ "thread"; "segments"; "queueing"; "reshape"; "execution";
                   "total" ]
         rows)
  end;
  line "";
  line
    (Printf.sprintf
       "reshapes: %d shrinks, %d expands, %d moves; %d pages rewritten, %s \
        reshape cycles + %s shrunk-entry cycles; %d allocator decisions (%d \
        denied, %d alternatives weighed)"
       r.reshapes.shrinks r.reshapes.expands r.reshapes.moves
       r.reshapes.pages_rewritten
       (fmt ~decimals:0 r.reshapes.reshape_cycles)
       (fmt ~decimals:0 r.reshapes.entry_cycles)
       r.reshapes.decisions r.reshapes.denials r.reshapes.considered);
  if Metrics.Hist.count r.latency_all > 0 then begin
    line "";
    line "segment latency (request -> release, cycles)";
    let row name h =
      let s = Metrics.Hist.summary h in
      [
        name;
        string_of_int s.n;
        fmt ~decimals:1 s.mean;
        fmt ~decimals:0 s.p50;
        fmt ~decimals:0 s.p90;
        fmt ~decimals:0 s.p99;
        fmt ~decimals:0 s.max;
      ]
    in
    let rows =
      List.map (fun (tid, h) -> row (Printf.sprintf "t%d" tid) h) r.latency
      @ [ row "all" r.latency_all ]
    in
    table
      (Table.render
         ~header:[ "thread"; "n"; "mean"; "p50"; "p90"; "p99"; "max" ]
         rows)
  end;
  if r.counters <> [] then begin
    line "";
    line "counters";
    table
      (Table.render ~header:[ "name"; "value" ]
         (List.map (fun (n, v) -> [ n; Printf.sprintf "%g" v ]) r.counters))
  end;
  Buffer.contents buf

(* ----- static bus-pressure table (one mapping, exact counts) ----- *)

let iarr a = Json.Arr (Array.to_list (Array.map Json.num_of_int a))

let bus_pressure_json (b : Analyze.bus_pressure) =
  Json.Obj
    [
      ("capacity", Json.num_of_int b.capacity);
      ("demand", Json.Arr (Array.to_list (Array.map iarr b.demand)));
      ("headroom", Json.num_of_int b.headroom);
      ("ii", Json.num_of_int b.ii);
      ("kernel", Json.Str b.kernel);
      ("mem_ops", Json.num_of_int b.mem_ops);
      ("rows", Json.num_of_int b.n_rows);
      ("saturated", Json.num_of_int b.saturated);
    ]

let bus_pressure_json_string b = Json.to_string (bus_pressure_json b) ^ "\n"

let bus_pressure_text (b : Analyze.bus_pressure) =
  let buf = Buffer.create 1024 in
  let line s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
  line
    (Printf.sprintf
       "bus pressure: %s, II=%d, %d memory ops, %d ports per row bus"
       b.kernel b.ii b.mem_ops b.capacity);
  let header =
    "row bus" :: List.init b.ii (fun s -> Printf.sprintf "t%d" s) @ [ "total" ]
  in
  let rows =
    List.init b.n_rows (fun r ->
        let total = Array.fold_left ( + ) 0 b.demand.(r) in
        Printf.sprintf "row %d" r
        :: Array.to_list (Array.map string_of_int b.demand.(r))
        @ [ string_of_int total ])
  in
  Buffer.add_string buf (Table.render ~header rows);
  Buffer.add_char buf '\n';
  line
    (Printf.sprintf "saturated slots: %d of %d; headroom: %d ports" b.saturated
       (b.n_rows * b.ii) b.headroom);
  Buffer.contents buf
