(** Trace-derived analyzers: turn an {!Cgra_trace.Trace} event stream
    (live sink or re-parsed JSONL archive) into typed reports.

    Everything here is a pure fold over the event list, so a report is a
    deterministic function of the trace — byte-identical however many
    domains produced the run, because the trace itself is.  The analyses
    answer the paper's questions about a run:

    - {b occupancy heatmap} — busy page-cycles per (resident thread,
      page), from [Occupancy] samples attributed to the holder's current
      page range;
    - {b row-bus contention} — per-row-bus memory-access demand per
      cycle under the {e slab approximation}: a page range spanning
      fraction [f] of the fabric's pages is charged to the corresponding
      fraction of its row buses, with each resident's demand
      ([mem accesses per iteration / cycles per iteration]) spread
      uniformly over its rows.  Demand is piecewise constant between
      allocation changes, so time-weighted averages, peaks, and
      over-capacity fractions are exact under the approximation;
    - {b stall attribution} — each kernel segment's wall time split into
      queueing (request→grant), reshape (entry reconfiguration + every
      mid-flight PageMaster reshape), and execution;
    - {b reshape accounting} — shrink/expand/move counts, pages
      rewritten, cycles charged, allocator decisions and denials;
    - {b latency} — per-thread and overall segment-latency histograms
      with quantiles ({!Metrics.Hist}). *)

type run_info = {
  mode : string;
  total_pages : int;
  n_threads : int;
  policy : string;
  reconfig_cost : float;
  rows : int;  (** 0 when the trace predates geometry stamping *)
  mem_ports : int;
  makespan : float;
  n_events : int;
}

type resident_heat = {
  thread : int;
  page_busy : float array;  (** busy page-cycles per page, length [total_pages] *)
  busy_total : float;
}

type row_bus = {
  n_rows : int;
  capacity : float;  (** accesses per row bus per cycle ([mem_ports]) *)
  avg : float array;  (** time-weighted mean demand per row, accesses/cycle *)
  peak : float array;
  over_frac : float array;  (** fraction of makespan with demand > capacity *)
}

type stall_attrib = {
  thread : int;
  segments : int;
  queueing : float;  (** cycles between kernel request and grant *)
  reshape : float;  (** entry reconfiguration + mid-flight reshape cycles *)
  execution : float;  (** remainder of the segment *)
  total : float;  (** request → release *)
}

type reshape_acct = {
  shrinks : int;
  expands : int;
  moves : int;
  pages_rewritten : int;
  reshape_cycles : float;  (** cost charged by mid-flight reshapes *)
  entry_cycles : float;  (** cost charged by shrunk entry grants *)
  decisions : int;
  denials : int;
  considered : int;  (** alternatives weighed across all decisions *)
}

type report = {
  run : run_info;
  residents : resident_heat list;  (** sorted by thread id *)
  row_bus : row_bus option;  (** [None] when the trace carries no geometry *)
  stalls : stall_attrib list;  (** sorted by thread id *)
  reshapes : reshape_acct;
  latency : (int * Metrics.Hist.t) list;  (** per thread, sorted *)
  latency_all : Metrics.Hist.t;
  counters : (string * float) list;  (** last value per Counter name, sorted *)
}

val profile : Cgra_trace.Trace.event list -> (report, string) result
(** Fold a full event stream into a report.  [Error] when the stream has
    no [Run_begin] (nothing to attribute against). *)

val pe_heatmap : Cgra_mapper.Mapping.t -> float array array
(** Static per-PE utilization of one mapping: a [rows x cols] matrix
    where each entry is (occupied schedule slots) / II for that PE —
    operation firings and routing hops both occupy slots.  This is the
    paper's Fig. 4 measurement, derived from the mapping itself. *)

type bus_pressure = {
  kernel : string;
  ii : int;
  n_rows : int;
  capacity : int;  (** the row bus's port budget ([mem_ports_per_row]) *)
  demand : int array array;
      (** [n_rows x ii]: memory accesses issued on each row bus in each
          modulo slot — exact counts from the placements, not the
          profiler's slab approximation *)
  mem_ops : int;  (** placed loads + stores *)
  saturated : int;  (** (row, slot) pairs at [demand = capacity] *)
  headroom : int;  (** spare ports summed over unsaturated (row, slot) pairs *)
}

val bus_pressure : Cgra_mapper.Mapping.t -> bus_pressure
(** Static per-(row, slot) port-demand table of one mapping: what the
    bandwidth-aware scheduler's cost model sees, derived from the
    mapping itself.  Every mapping accepted by [Mapping.validate] has
    [demand <= capacity] everywhere; [saturated] counts the slots with
    no slack left — the slots the spill pass re-times memory ops away
    from.  For single-kernel bus questions this replaces the profiler's
    slab approximation ({!row_bus}) with exact counts. *)
