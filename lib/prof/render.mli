(** Report rendering: human text tables and stable machine JSON.

    Both renderings are deterministic functions of the report — every
    JSON object is emitted with keys sorted, arrays in thread/page/row
    order, and floats through {!Cgra_trace.Json}'s round-trip formatter
    — so golden tests can pin them byte-for-byte and [-j] width can
    never leak into the output. *)

val to_json : Analyze.report -> Cgra_trace.Json.value

val json_string : Analyze.report -> string
(** [Json.to_string (to_json r)] plus a trailing newline. *)

val text : Analyze.report -> string
(** Aligned tables: run header, per-resident page-occupancy heatmap,
    row-bus contention, stall attribution (with a TOTAL row), reshape
    accounting, per-thread latency quantiles, and trailing counters. *)

val bus_pressure_json : Analyze.bus_pressure -> Cgra_trace.Json.value
(** Stable (sorted-key) JSON object for one mapping's exact per-(row,
    slot) port-demand table. *)

val bus_pressure_json_string : Analyze.bus_pressure -> string
(** [Json.to_string (bus_pressure_json b)] plus a trailing newline. *)

val bus_pressure_text : Analyze.bus_pressure -> string
(** One aligned table: a row per row bus, a column per modulo slot,
    demand counts in the cells, plus saturation/headroom totals. *)
