module Json = Cgra_trace.Json

module Hist = struct
  (* Bucket key for v > 0: frexp gives v = m * 2^ex with m in [0.5,1);
     2m-1 in [0,1) selects one of 16 linear sub-buckets, so the key is
     ex*16 + sub and the bucket's lower bound is 2^(ex-1) * (1+sub/16).
     Both maps are exact for dyadic values, which is what makes quantile
     answers exact at bucket edges (integers, cycle counts). *)

  type t = {
    buckets : (int, int ref) Hashtbl.t;
    mutable n : int;
    mutable total : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let zero_key = min_int

  let create () =
    { buckets = Hashtbl.create 16; n = 0; total = 0.0; vmin = infinity;
      vmax = neg_infinity }

  let bucket_key v =
    if v <= 0.0 then zero_key
    else
      let m, ex = Float.frexp v in
      let sub = int_of_float (Float.floor (((2.0 *. m) -. 1.0) *. 16.0)) in
      let sub = if sub < 0 then 0 else if sub > 15 then 15 else sub in
      (ex * 16) + sub

  let bucket_lower key =
    if key = zero_key then 0.0
    else
      let ex = if key >= 0 then key / 16 else (key - 15) / 16 in
      let sub = key - (ex * 16) in
      Float.ldexp (1.0 +. (float_of_int sub /. 16.0)) (ex - 1)

  let add_bucket t key c =
    match Hashtbl.find_opt t.buckets key with
    | Some r -> r := !r + c
    | None -> Hashtbl.add t.buckets key (ref c)

  let observe t v =
    add_bucket t (bucket_key v) 1;
    t.n <- t.n + 1;
    t.total <- t.total +. v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  let count t = t.n
  let sum t = t.total
  let mean t = if t.n = 0 then 0.0 else t.total /. float_of_int t.n
  let min_value t = if t.n = 0 then 0.0 else t.vmin
  let max_value t = if t.n = 0 then 0.0 else t.vmax

  let quantile t p =
    if t.n = 0 then 0.0
    else begin
      let rank =
        max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.n)))
      in
      let keys =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.buckets [])
      in
      let rec walk cum = function
        | [] -> t.vmax
        | k :: rest ->
            let cum = cum + !(Hashtbl.find t.buckets k) in
            if cum >= rank then bucket_lower k else walk cum rest
      in
      Float.min t.vmax (Float.max t.vmin (walk 0 keys))
    end

  let merge a b =
    let t = create () in
    let absorb src =
      Hashtbl.iter (fun k r -> add_bucket t k !r) src.buckets;
      t.n <- t.n + src.n;
      t.total <- t.total +. src.total;
      if src.vmin < t.vmin then t.vmin <- src.vmin;
      if src.vmax > t.vmax then t.vmax <- src.vmax
    in
    absorb a;
    absorb b;
    t

  type summary = {
    n : int;
    sum : float;
    mean : float;
    min : float;
    max : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }

  let summary t =
    {
      n = count t;
      sum = sum t;
      mean = mean t;
      min = min_value t;
      max = max_value t;
      p50 = quantile t 50.0;
      p90 = quantile t 90.0;
      p99 = quantile t 99.0;
    }

  let summary_json t =
    let s = summary t in
    Json.Obj
      [
        ("count", Json.num_of_int s.n);
        ("max", Json.Num s.max);
        ("mean", Json.Num s.mean);
        ("min", Json.Num s.min);
        ("p50", Json.Num s.p50);
        ("p90", Json.Num s.p90);
        ("p99", Json.Num s.p99);
        ("sum", Json.Num s.sum);
      ]
end

type t = {
  counters : (string, float ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16; gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16 }

let counter t name v =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r +. v
  | None -> Hashtbl.add t.counters name (ref v)

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0.0

let gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges name (ref v)

let hist t name = Hashtbl.find_opt t.hists name

let observe t name v =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h = Hist.create () in
        Hashtbl.add t.hists name h;
        h
  in
  Hist.observe h v

let merge a b =
  let t = create () in
  Hashtbl.iter (fun name r -> counter t name !r) a.counters;
  Hashtbl.iter (fun name r -> counter t name !r) b.counters;
  (* right-biased: apply [a] first so [b] overwrites on collision *)
  Hashtbl.iter (fun name r -> gauge t name !r) a.gauges;
  Hashtbl.iter (fun name r -> gauge t name !r) b.gauges;
  let absorb src =
    Hashtbl.iter
      (fun name h ->
        match Hashtbl.find_opt t.hists name with
        | Some existing -> Hashtbl.replace t.hists name (Hist.merge existing h)
        | None -> Hashtbl.replace t.hists name (Hist.merge h (Hist.create ())))
      src.hists
  in
  absorb a;
  absorb b;
  t

let sorted_items tbl value =
  Hashtbl.fold (fun name v acc -> (name, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json t =
  Json.Obj
    [
      ("counters", Json.Obj (sorted_items t.counters (fun r -> Json.Num !r)));
      ("gauges", Json.Obj (sorted_items t.gauges (fun r -> Json.Num !r)));
      ("histograms", Json.Obj (sorted_items t.hists Hist.summary_json));
    ]

let pp ppf t =
  let section title items pp_item =
    if items <> [] then begin
      Format.fprintf ppf "@[<v 2>%s:@," title;
      List.iteri
        (fun i (name, v) ->
          if i > 0 then Format.pp_print_cut ppf ();
          pp_item name v)
        items;
      Format.fprintf ppf "@]@,"
    end
  in
  Format.pp_open_vbox ppf 0;
  section "counters"
    (sorted_items t.counters (fun r -> !r))
    (fun name v -> Format.fprintf ppf "%-32s %g" name v);
  section "gauges"
    (sorted_items t.gauges (fun r -> !r))
    (fun name v -> Format.fprintf ppf "%-32s %g" name v);
  section "histograms"
    (sorted_items t.hists Hist.summary)
    (fun name (s : Hist.summary) ->
      Format.fprintf ppf "%-32s n=%d mean=%g p50=%g p90=%g p99=%g max=%g" name
        s.n s.mean s.p50 s.p90 s.p99 s.max);
  Format.pp_close_box ppf ()
