(** Metrics registry: counters, gauges, and streaming histograms.

    The observability layer's primitive vocabulary.  Three instrument
    kinds, all addressed by name:

    - {b counters} — monotonic accumulators ([requests], [reshapes]);
    - {b gauges} — last-write-wins point samples ([queue_depth]);
    - {b histograms} — log-bucketed streaming distributions with
      exact-count quantiles (p50/p90/p99) and exact min/max.

    Everything here is built for {e deterministic aggregation}: a
    registry filled on one domain {!merge}d into another gives the same
    result regardless of domain count or completion order (counter and
    histogram merges are commutative sums; gauges are right-biased, so
    merge in a fixed order), and every serialization emits keys sorted,
    never in hash-table iteration order. *)

module Hist : sig
  (** HDR-style log-bucketed histogram: 16 sub-buckets per power of two,
      so any recorded value is attributed with under 6.25% relative
      error, and values that {e are} bucket lower bounds (dyadic
      rationals such as integers up to 2{^20}, or exact cycle counts)
      are reported exactly.  Negative observations clamp to the zero
      bucket. *)

  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  (** 0 when empty. *)

  val min_value : t -> float
  (** Exact smallest observation (0 when empty). *)

  val max_value : t -> float
  (** Exact largest observation (0 when empty). *)

  val quantile : t -> float -> float
  (** [quantile h p] with [p] in [\[0,100\]]: nearest-rank quantile —
      the lower bound of the bucket containing the ⌈p/100·n⌉-th smallest
      observation, clamped to [\[min_value, max_value\]].  Exact when
      that observation is a bucket boundary. *)

  val merge : t -> t -> t
  (** Pointwise bucket sum; exact min/max combine.  Commutative and
      associative, so cross-domain aggregation is order-independent. *)

  type summary = {
    n : int;
    sum : float;
    mean : float;
    min : float;
    max : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }

  val summary : t -> summary

  val summary_json : t -> Cgra_trace.Json.value
  (** [Obj] with keys sorted: count, max, mean, min, p50, p90, p99, sum. *)
end

type t
(** A registry.  Not thread-safe: fill one per domain, then {!merge}. *)

val create : unit -> t

val counter : t -> string -> float -> unit
(** [counter t name v] adds [v] to the named monotonic counter. *)

val counter_value : t -> string -> float
(** 0 for never-bumped names. *)

val gauge : t -> string -> float -> unit
(** Set the named gauge (last write wins). *)

val observe : t -> string -> float -> unit
(** Record one observation into the named histogram. *)

val hist : t -> string -> Hist.t option

val merge : t -> t -> t
(** [merge a b]: fresh registry with summed counters, merged histograms,
    and gauges right-biased ([b] wins on collision).  [a] and [b] are
    unchanged. *)

val to_json : t -> Cgra_trace.Json.value
(** [{"counters":{…},"gauges":{…},"histograms":{…}}], every level
    sorted by name — byte-stable across hash-table iteration order. *)

val pp : Format.formatter -> t -> unit
(** Aligned text dump, same sorted order as {!to_json}. *)
