(** The repo's first enforced perf contract: compare freshly measured
    bench rows against the committed [BENCH_micro.json] /
    [BENCH_fig9.json] baselines, with per-row tolerances, and fail
    loudly on regressions.

    The comparator lives in the library (not the bench binary) so the
    test-suite can prove both directions: the committed baselines pass
    against themselves, and a row inflated beyond tolerance fails. *)

type row = {
  name : string;
  value : float;
  domains : int;  (** pool width this row ran at *)
  runs : int;  (** samples taken; the recorded value is the minimum *)
  spread : float;  (** (max-min)/min over the samples, percent *)
}

type doc = { bench : string; unit_ : string; rows : row list }

val parse : string -> (doc, string) result
(** Parse a BENCH_*.json document.  [runs]/[spread] default to 1/0 for
    rows written by older harnesses, [domains] to the document level. *)

val tolerance : string -> float
(** Allowed slowdown factor for the named row.  Warm-start rows measure
    microsecond-scale disk reads and jitter hardest (4.0x); wall-clock
    sweep and fold rows get the 2.0x default; {!sim_rate} rows gate the
    same 2.0x ratio in the upward direction
    ([current >= baseline / tolerance]).  A factor, not a margin.
    Meaningless (1.0) for {!higher_is_better} and {!deterministic}
    rows, which gate on a flat epsilon instead. *)

val deterministic : string -> bool
(** Rows named with the "farm" prefix are virtual-clock simulation
    outputs, reproducible down to float formatting — except the
    {!sim_rate} rows, which are wall measurements.  Deterministic rows
    gate on a flat 0.001 epsilon (covering the %.3f quantization of the
    written value) in whichever direction {!higher_is_better} says,
    never on a jitter factor. *)

val sim_rate : string -> bool
(** Farm rows containing "sim-rate" time the front-end coordinator in
    requests per wall-second: measurements, not simulation outputs, so
    they gate upward with the 2.0x jitter ratio rather than an
    epsilon. *)

val speedup : string -> bool
(** The "sim-rate speedup" row (parallel over sequential rate) is gated
    against {!speedup_floor} of its own recorded pool width — an
    absolute floor on the fresh measurement, not a baseline
    comparison. *)

val speedup_floor : domains:int -> float
(** The parallel coordinator's scaling contract, machine-aware: a pool
    that really ran [>= 4] domains owes a 2.0x speedup over sequential;
    a machine too narrow to widen the pool (the row records the
    effective width) just must not run the parallel path slower than
    sequential (0.85). *)

val higher_is_better : string -> bool
(** Rows named with the "fig8" prefix are deterministic quality scores
    (geomean percent of baseline II, epsilon 0.05), and farm rows
    containing "req/" are throughputs (epsilon 0.001): the gate passes
    when [current >= baseline - epsilon] — any real drop fails, and
    jitter tolerances do not apply.  {!sim_rate} rows are also
    higher-is-better, but with the ratio tolerance above. *)

type outcome = {
  o_name : string;
  baseline : float;
  current : float option;  (** [None]: row missing from the fresh run *)
  tol : float;
  ok : bool;
}

val check : baseline:doc -> current:doc -> outcome list
(** One outcome per baseline row, in baseline order.  Missing rows and
    beyond-tolerance regressions are [not ok]; faster-than-baseline is
    always ok (improvements never fail the gate). *)

val failures : outcome list -> int

val render : unit_:string -> outcome list -> string
(** Aligned verdict table: name, baseline, current, ratio, tolerance,
    PASS/FAIL. *)
