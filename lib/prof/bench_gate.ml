module Json = Cgra_trace.Json
module Table = Cgra_util.Table

type row = {
  name : string;
  value : float;
  domains : int;
  runs : int;
  spread : float;
}

type doc = { bench : string; unit_ : string; rows : row list }

let ( let* ) = Result.bind

let str_member name v =
  match Json.member name v with
  | Some s -> (
      match Json.to_str s with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "field %S is not a string" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let num_member ?default name v =
  match (Json.member name v, default) with
  | Some n, _ -> (
      match Json.to_float n with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S is not a number" name))
  | None, Some d -> Ok d
  | None, None -> Error (Printf.sprintf "missing field %S" name)

let parse s =
  let* v = Json.parse s in
  let* bench = str_member "bench" v in
  let* unit_ = str_member "unit" v in
  let* doc_domains = num_member ~default:1.0 "domains" v in
  match Json.member "results" v with
  | Some (Json.Arr entries) ->
      let* rows =
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* name = str_member "name" e in
            let* value = num_member "value" e in
            let* domains = num_member ~default:doc_domains "domains" e in
            let* runs = num_member ~default:1.0 "runs" e in
            let* spread = num_member ~default:0.0 "spread" e in
            Ok
              ({ name; value; domains = int_of_float domains;
                 runs = int_of_float runs; spread }
              :: acc))
          (Ok []) entries
      in
      Ok { bench; unit_; rows = List.rev rows }
  | Some _ -> Error "field \"results\" is not an array"
  | None -> Error "missing field \"results\""

let has_prefix p name =
  String.length name >= String.length p
  && String.sub name 0 (String.length p) = p

let contains sub name =
  let n = String.length name and m = String.length sub in
  let rec go i = i + m <= n && (String.sub name i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Farm sim-rate rows time the coordinator's wall clock (requests per
   wall-second), so despite the "farm" prefix they are measurements,
   not deterministic outputs.  The speedup row among them is gated
   against a machine-aware floor, not against its baseline. *)
let sim_rate name = contains "sim-rate" name

let speedup name = sim_rate name && contains "speedup" name

(* All other farm rows are virtual-clock simulation outputs:
   deterministic down to float formatting, so the budget is a flat
   epsilon either way. *)
let deterministic name = has_prefix "farm" name && not (sim_rate name)

(* Fig. 8 geomean rows are deterministic quality scores (percent,
   higher is better), not wall measurements; farm throughput rows
   (req/kcycle) likewise gate upward, with a flat epsilon for float
   formatting.  Sim-rate rows also gate upward — a slower front end is
   the regression — but as wall measurements, with a jitter ratio. *)
let higher_is_better name =
  has_prefix "fig8" name || sim_rate name
  || (deterministic name && contains "req/" name)

let epsilon name = if deterministic name then 0.001 else 0.05

(* The -j4/-j1 speedup floor cannot be a constant: a CI box with fewer
   than four cores clamps the pool to what it has, and demanding 2x
   there would gate on hardware, not code.  The row records the
   effective pool width; a machine that really ran four domains owes
   the 2x scaling contract, anything narrower just must not have made
   the parallel path slower than sequential. *)
let speedup_floor ~domains = if domains >= 4 then 2.0 else 0.85

(* Per-row slowdown budgets.  Everything here is a shared-machine wall
   measurement, so the budgets are about catching algorithmic
   regressions (2x-10x), not scheduling noise. *)
let tolerance name =
  if sim_rate name then 2.0
  else if higher_is_better name || deterministic name then 1.0
  else if has_prefix "compile-sobel-warm" name || has_prefix "compile-suite-warm" name
  then 4.0 (* microsecond-scale disk reads: highest relative jitter *)
  else 2.0

type outcome = {
  o_name : string;
  baseline : float;
  current : float option;
  tol : float;
  ok : bool;
}

let check ~baseline ~current =
  List.map
    (fun b ->
      let tol = tolerance b.name in
      match List.find_opt (fun c -> c.name = b.name) current.rows with
      | None -> { o_name = b.name; baseline = b.value; current = None; tol;
                  ok = false }
      | Some c ->
          if speedup b.name then
            (* absolute machine-aware floor on the fresh measurement *)
            let floor = speedup_floor ~domains:c.domains in
            { o_name = b.name; baseline = b.value; current = Some c.value;
              tol = floor; ok = c.value >= floor }
          else
            let ok =
              if sim_rate b.name then c.value >= b.value /. tol
              else if higher_is_better b.name then
                c.value >= b.value -. epsilon b.name
              else if deterministic b.name then
                c.value <= b.value +. epsilon b.name
              else c.value <= b.value *. tol
            in
            { o_name = b.name; baseline = b.value; current = Some c.value; tol;
              ok })
    baseline.rows

let failures outcomes =
  List.length (List.filter (fun o -> not o.ok) outcomes)

let render ~unit_ outcomes =
  let fmt v = Table.fmt_float ~decimals:1 v in
  let tol_label o =
    if speedup o.o_name then Printf.sprintf ">=%.2fx" o.tol
    else if sim_rate o.o_name then Printf.sprintf ">=base/%.1f" o.tol
    else if higher_is_better o.o_name then ">=base"
    else if deterministic o.o_name then "<=base"
    else Printf.sprintf "%.1fx" o.tol
  in
  let rows =
    List.map
      (fun o ->
        match o.current with
        | None ->
            [ o.o_name; fmt o.baseline; "-"; "-"; tol_label o;
              "FAIL (missing)" ]
        | Some c ->
            [
              o.o_name;
              fmt o.baseline;
              fmt c;
              Printf.sprintf "%.2fx" (c /. o.baseline);
              tol_label o;
              (if o.ok then "pass" else "FAIL");
            ])
      outcomes
  in
  Table.render
    ~header:
      [ "row"; "baseline " ^ unit_; "current " ^ unit_; "ratio"; "tol";
        "verdict" ]
    rows
