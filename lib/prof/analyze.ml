module T = Cgra_trace.Trace

type run_info = {
  mode : string;
  total_pages : int;
  n_threads : int;
  policy : string;
  reconfig_cost : float;
  rows : int;
  mem_ports : int;
  makespan : float;
  n_events : int;
}

type resident_heat = {
  thread : int;
  page_busy : float array;
  busy_total : float;
}

type row_bus = {
  n_rows : int;
  capacity : float;
  avg : float array;
  peak : float array;
  over_frac : float array;
}

type stall_attrib = {
  thread : int;
  segments : int;
  queueing : float;
  reshape : float;
  execution : float;
  total : float;
}

type reshape_acct = {
  shrinks : int;
  expands : int;
  moves : int;
  pages_rewritten : int;
  reshape_cycles : float;
  entry_cycles : float;
  decisions : int;
  denials : int;
  considered : int;
}

type report = {
  run : run_info;
  residents : resident_heat list;
  row_bus : row_bus option;
  stalls : stall_attrib list;
  reshapes : reshape_acct;
  latency : (int * Metrics.Hist.t) list;
  latency_all : Metrics.Hist.t;
  counters : (string * float) list;
}

(* Slab approximation: page range [base, base+len) maps to the
   proportional row span [floor(base*R/P), ceil((base+len)*R/P)). *)
let row_span ~rows ~pages base len =
  if rows <= 0 || pages <= 0 || len <= 0 then (0, 0)
  else
    let lo = max 0 (min (rows - 1) (base * rows / pages)) in
    let hi = (((base + len) * rows) + pages - 1) / pages in
    let hi = max (lo + 1) (min rows hi) in
    (lo, hi)

(* Per-segment attribution state for one thread. *)
type seg = {
  req_time : float;
  mutable grant_time : float;
  mutable grant_cost : float;
  mutable reshape_cost : float;
}

type resident = {
  mutable r_base : int;
  mutable r_len : int;
  mutable r_mem : int;  (* memory accesses per iteration *)
  mutable r_rate : float;  (* cycles per iteration *)
}

let profile events =
  (* Pass 1: the run envelope. *)
  let makespan =
    match
      List.find_map
        (fun (e : T.event) ->
          match e.payload with T.Run_end r -> Some r.makespan | _ -> None)
        events
    with
    | Some m -> m
    | None ->
        List.fold_left (fun acc (e : T.event) -> Float.max acc e.time) 0.0
          events
  in
  let header =
    List.find_map
      (fun (e : T.event) ->
        match e.payload with
        | T.Run_begin r ->
            Some
              {
                mode = r.mode;
                total_pages = r.total_pages;
                n_threads = r.n_threads;
                policy = r.policy;
                reconfig_cost = r.reconfig_cost;
                rows = r.rows;
                mem_ports = r.mem_ports;
                makespan;
                n_events = List.length events;
              }
        | _ -> None)
      events
  in
  match header with
  | None -> Error "trace has no run_begin event: nothing to profile"
  | Some run ->
      let h = run in
      (* Pass 2: the fold. *)
      let pages = max 1 h.total_pages in
      let heat : (int, float array) Hashtbl.t = Hashtbl.create 16 in
      let heat_row tid =
        match Hashtbl.find_opt heat tid with
        | Some a -> a
        | None ->
            let a = Array.make pages 0.0 in
            Hashtbl.add heat tid a;
            a
      in
      let residents : (int, resident) Hashtbl.t = Hashtbl.create 16 in
      (* pending mem count from the segment's request, keyed by thread *)
      let pending_mem : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let segs : (int, seg) Hashtbl.t = Hashtbl.create 16 in
      let done_stalls : (int, stall_attrib) Hashtbl.t = Hashtbl.create 16 in
      let lat : (int, Metrics.Hist.t) Hashtbl.t = Hashtbl.create 16 in
      let lat_all = Metrics.Hist.create () in
      let lat_row tid =
        match Hashtbl.find_opt lat tid with
        | Some hh -> hh
        | None ->
            let hh = Metrics.Hist.create () in
            Hashtbl.add lat tid hh;
            hh
      in
      let shrinks = ref 0 and expands = ref 0 and moves = ref 0 in
      let pages_rewritten = ref 0 in
      let reshape_cycles = ref 0.0 and entry_cycles = ref 0.0 in
      let decisions = ref 0 and denials = ref 0 and considered = ref 0 in
      let counters : (string, float) Hashtbl.t = Hashtbl.create 8 in
      (* Row-bus contention: demand is piecewise constant between
         allocation changes; flush the elapsed interval before applying
         each change. *)
      let bus_on = h.rows > 0 in
      let bus_avg = Array.make (max 1 h.rows) 0.0 in
      let bus_peak = Array.make (max 1 h.rows) 0.0 in
      let bus_over = Array.make (max 1 h.rows) 0.0 in
      let bus_t = ref 0.0 in
      let capacity = float_of_int h.mem_ports in
      let flush_bus now =
        if bus_on && now > !bus_t then begin
          let dt = now -. !bus_t in
          let demand = Array.make h.rows 0.0 in
          Hashtbl.iter
            (fun _ r ->
              if r.r_mem > 0 && r.r_rate > 0.0 then begin
                let lo, hi = row_span ~rows:h.rows ~pages r.r_base r.r_len in
                if hi > lo then begin
                  let per_row =
                    float_of_int r.r_mem /. r.r_rate /. float_of_int (hi - lo)
                  in
                  for i = lo to hi - 1 do
                    demand.(i) <- demand.(i) +. per_row
                  done
                end
              end)
            residents;
          for i = 0 to h.rows - 1 do
            bus_avg.(i) <- bus_avg.(i) +. (demand.(i) *. dt);
            if demand.(i) > bus_peak.(i) then bus_peak.(i) <- demand.(i);
            if demand.(i) > capacity then bus_over.(i) <- bus_over.(i) +. dt
          done;
          bus_t := now
        end
        else if now > !bus_t then bus_t := now
      in
      let close_segment tid now =
        match Hashtbl.find_opt segs tid with
        | None -> ()
        | Some s ->
            Hashtbl.remove segs tid;
            let queueing = s.grant_time -. s.req_time in
            let reshape = s.grant_cost +. s.reshape_cost in
            let total = now -. s.req_time in
            let execution = total -. queueing -. reshape in
            Metrics.Hist.observe (lat_row tid) total;
            Metrics.Hist.observe lat_all total;
            let prev =
              match Hashtbl.find_opt done_stalls tid with
              | Some p -> p
              | None ->
                  { thread = tid; segments = 0; queueing = 0.0; reshape = 0.0;
                    execution = 0.0; total = 0.0 }
            in
            Hashtbl.replace done_stalls tid
              {
                prev with
                segments = prev.segments + 1;
                queueing = prev.queueing +. queueing;
                reshape = prev.reshape +. reshape;
                execution = prev.execution +. execution;
                total = prev.total +. total;
              }
      in
      let handle (e : T.event) =
        match e.payload with
        | T.Run_begin _ | T.Run_end _ | T.Thread_arrival _ | T.Thread_finish _
        | T.Farm_begin _ | T.Farm_request _ | T.Farm_reject _ | T.Farm_admit _
        | T.Farm_resident _ | T.Farm_retire _ | T.Farm_end _
        | T.Span_begin _ | T.Span_end _ | T.Mark _ ->
            ()
        | T.Kernel_request r ->
            Hashtbl.replace pending_mem r.thread r.mem;
            Hashtbl.replace segs r.thread
              { req_time = e.time; grant_time = e.time; grant_cost = 0.0;
                reshape_cost = 0.0 }
        | T.Kernel_stall _ -> ()
        | T.Kernel_grant r ->
            flush_bus e.time;
            (match Hashtbl.find_opt segs r.thread with
            | Some s ->
                s.grant_time <- e.time;
                s.grant_cost <- r.cost
            | None -> ());
            if r.shrunk then entry_cycles := !entry_cycles +. r.cost;
            let mem =
              match Hashtbl.find_opt pending_mem r.thread with
              | Some m -> m
              | None -> 0
            in
            Hashtbl.replace residents r.thread
              { r_base = r.range.T.base; r_len = r.range.T.len; r_mem = mem;
                r_rate = r.rate }
        | T.Reshape r ->
            flush_bus e.time;
            (match r.kind with
            | T.Shrink -> incr shrinks
            | T.Expand -> incr expands
            | T.Move -> incr moves);
            pages_rewritten := !pages_rewritten + r.pages_rewritten;
            reshape_cycles := !reshape_cycles +. r.cost;
            (match Hashtbl.find_opt segs r.thread with
            | Some s -> s.reshape_cost <- s.reshape_cost +. r.cost
            | None -> ());
            (match Hashtbl.find_opt residents r.thread with
            | Some res ->
                res.r_base <- r.after.T.base;
                res.r_len <- r.after.T.len;
                res.r_rate <- r.rate
            | None -> ())
        | T.Kernel_release r ->
            flush_bus e.time;
            Hashtbl.remove residents r.thread;
            close_segment r.thread e.time
        | T.Occupancy r ->
            (* attribute the elapsed interval to the holder's current
               range; the stream guarantees the sample precedes any
               reshape at the same instant *)
            let row = heat_row r.thread in
            let base, len =
              match Hashtbl.find_opt residents r.thread with
              | Some res -> (res.r_base, res.r_len)
              | None -> (0, min r.pages pages)
            in
            for p = base to min (pages - 1) (base + len - 1) do
              row.(p) <- row.(p) +. r.elapsed
            done
        | T.Alloc_decision r ->
            incr decisions;
            if r.granted = None then incr denials;
            considered := !considered + List.length r.considered
        | T.Counter r -> Hashtbl.replace counters r.name r.value
      in
      List.iter handle events;
      flush_bus makespan;
      let residents_out =
        Hashtbl.fold
          (fun tid page_busy acc ->
            { thread = tid; page_busy;
              busy_total = Array.fold_left ( +. ) 0.0 page_busy }
            :: acc)
          heat []
        |> List.sort (fun (a : resident_heat) (b : resident_heat) ->
               compare a.thread b.thread)
      in
      let row_bus_out =
        if not bus_on then None
        else begin
          let avg =
            Array.map
              (fun a -> if makespan > 0.0 then a /. makespan else 0.0)
              bus_avg
          in
          let over =
            Array.map
              (fun o -> if makespan > 0.0 then o /. makespan else 0.0)
              bus_over
          in
          Some
            { n_rows = h.rows; capacity; avg; peak = bus_peak;
              over_frac = over }
        end
      in
      let stalls_out =
        Hashtbl.fold (fun _ s acc -> s :: acc) done_stalls []
        |> List.sort (fun a b -> compare a.thread b.thread)
      in
      let latency_out =
        Hashtbl.fold (fun tid hh acc -> (tid, hh) :: acc) lat []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let counters_out =
        Hashtbl.fold (fun name v acc -> (name, v) :: acc) counters []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Ok
        {
          run;
          residents = residents_out;
          row_bus = row_bus_out;
          stalls = stalls_out;
          reshapes =
            {
              shrinks = !shrinks;
              expands = !expands;
              moves = !moves;
              pages_rewritten = !pages_rewritten;
              reshape_cycles = !reshape_cycles;
              entry_cycles = !entry_cycles;
              decisions = !decisions;
              denials = !denials;
              considered = !considered;
            };
          latency = latency_out;
          latency_all = lat_all;
          counters = counters_out;
        }

let pe_heatmap (m : Cgra_mapper.Mapping.t) =
  let grid = m.arch.Cgra_arch.Cgra.grid in
  let rows = grid.Cgra_arch.Grid.rows and cols = grid.Cgra_arch.Grid.cols in
  let slots = Array.make_matrix rows cols 0.0 in
  let bump (c : Cgra_arch.Coord.t) =
    slots.(c.row).(c.col) <- slots.(c.row).(c.col) +. 1.0
  in
  Array.iter
    (function
      | Some (p : Cgra_mapper.Mapping.placement) -> bump p.pe
      | None -> ())
    m.placements;
  List.iter
    (fun (r : Cgra_mapper.Mapping.route) ->
      List.iter (fun (hop : Cgra_mapper.Mapping.placement) -> bump hop.pe) r.hops)
    m.routes;
  let ii = float_of_int (max 1 m.ii) in
  Array.map (Array.map (fun s -> s /. ii)) slots

type bus_pressure = {
  kernel : string;
  ii : int;
  n_rows : int;
  capacity : int;
  demand : int array array;
  mem_ops : int;
  saturated : int;
  headroom : int;
}

let bus_pressure (m : Cgra_mapper.Mapping.t) =
  let grid = m.arch.Cgra_arch.Cgra.grid in
  let rows = grid.Cgra_arch.Grid.rows in
  let ii = max 1 m.ii in
  let capacity = m.arch.Cgra_arch.Cgra.mem_ports_per_row in
  let demand = Array.make_matrix rows ii 0 in
  let mem_ops = ref 0 in
  Array.iteri
    (fun id p ->
      match p with
      | Some (p : Cgra_mapper.Mapping.placement) ->
          if Cgra_dfg.Op.is_mem (Cgra_dfg.Graph.node m.graph id).op then begin
            incr mem_ops;
            let slot = p.time mod ii in
            demand.(p.pe.Cgra_arch.Coord.row).(slot) <-
              demand.(p.pe.Cgra_arch.Coord.row).(slot) + 1
          end
      | None -> ())
    m.placements;
  let saturated = ref 0 and headroom = ref 0 in
  Array.iter
    (Array.iter (fun d ->
         if d >= capacity then incr saturated
         else headroom := !headroom + (capacity - d)))
    demand;
  {
    kernel = Cgra_dfg.Graph.name m.graph;
    ii;
    n_rows = rows;
    capacity;
    demand;
    mem_ops = !mem_ops;
    saturated = !saturated;
    headroom = !headroom;
  }
