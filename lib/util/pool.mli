(** A reusable fixed-size domain pool for deterministic data parallelism.

    Every hot surface in this project — figure sweeps, ablation grids,
    fuzz corpora — is a list of independent tasks, each reproducible from
    an explicit seed.  This module fans such lists out across OCaml 5
    domains while keeping the results {e exactly} what the sequential
    code would produce:

    - {b Order preservation}: [map]/[filter_map] return results in input
      order, so downstream float accumulations (means, geomeans, stall
      sums) see the same operand order and stay bit-identical.
    - {b Exception propagation}: if tasks raise, the exception of the
      {e earliest} failing input is re-raised in the caller (with its
      backtrace) — the same exception a sequential run would surface.
    - {b Sequential fallback}: a pool of width 1 (the default when
      [CGRA_DOMAINS] is unset) runs tasks in place on the calling domain
      and spawns nothing, so default behaviour is unchanged.

    Tasks must be independent: they may share immutable data (compiled
    suites, kernel graphs) but must not race on mutable state.  Nested
    use of one pool is safe — the caller always participates in its own
    batch, so an inner [map] issued from inside a task makes progress
    even when every helper domain is busy. *)

type t
(** A pool: the calling domain plus [width - 1] parked helper domains. *)

val env_var : string
(** ["CGRA_DOMAINS"]. *)

val domains_from_env : unit -> int
(** Width requested by the [CGRA_DOMAINS] environment variable; [1] when
    unset, unparsable, or non-positive. *)

val create : ?clamp:bool -> ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] helper domains (none when
    [domains <= 1]).  Default width: {!domains_from_env}.  The requested
    width is clamped to [Domain.recommended_domain_count ()]: domains
    beyond the core count add minor-GC handshake stalls without adding
    throughput, and results never depend on the width, so the clamp is
    unobservable apart from the wall clock.  [clamp:false] keeps the
    requested width (capped at 64) even past the core count — slower,
    but it forces genuine cross-domain execution, which is what
    determinism tests want to exercise on small machines. *)

val width : t -> int
(** Total domains working a batch, caller included (after clamping). *)

val shutdown : t -> unit
(** Stop and join the helper domains.  Idempotent.  Outstanding batches
    must have completed ([map] only returns once its batch has). *)

val with_pool : ?clamp:bool -> ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Like [List.map], with the work spread across the pool.  Results are
    in input order; see the determinism contract above. *)

val filter_map : t -> ('a -> 'b option) -> 'a list -> 'b list
(** Like [List.filter_map]; survivors keep their input order. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of [map]. *)

val race : t -> ('a -> 'b option) -> 'a list -> ('a * 'b) option
(** [race t f xs] evaluates [f] over [xs] speculatively across the pool
    and returns [Some (x, y)] for the {e earliest} [x] in [xs] with
    [f x = Some y] — exactly what a sequential first-success scan would
    return, at any pool width:

    - {b Deterministic winner}: a shared best-bound records the lowest
      succeeding index; every candidate below it still runs to
      completion (a lower index could still win), while candidates above
      it are abandoned at claim time — they can no longer affect the
      result.
    - {b Exception propagation}: as in {!map}, the earliest failing
      candidate's exception is re-raised — but only if no candidate
      before it succeeded, mirroring a sequential scan that stops at the
      first success.  Exceptions from speculative work past the winner
      are discarded (a sequential run would never have reached them).
    - {b Width-1 fallback}: with one domain the scan is lazy — nothing
      past the winner is evaluated at all.

    [f] runs speculatively on candidates a sequential scan might never
    reach, so it must be effect-free (or idempotent) on losing
    candidates. *)

val race_poll :
  t -> (doomed:(unit -> bool) -> 'a -> 'b option) -> 'a list -> ('a * 'b) option
(** {!race}, with mid-flight cancellation: [f] receives a cheap [doomed]
    poll that turns [true] once some earlier candidate has succeeded —
    this candidate can no longer win, so [f] may abandon it and return
    anything (the value is discarded).  [doomed] never turns [true] for
    the eventual winner or any candidate before it. *)

val parallel_map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [with_pool ?domains (fun p -> map p f xs)]. *)

val parallel_filter_map : ?domains:int -> ('a -> 'b option) -> 'a list -> 'b list
(** One-shot convenience for [filter_map]. *)
