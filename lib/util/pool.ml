type task = Run of (unit -> unit) | Stop

type t = {
  pool_width : int;
  tasks : task Queue.t;
  lock : Mutex.t;
  pending : Condition.t;
  mutable helpers : unit Domain.t list;
  mutable live : bool;
}

let env_var = "CGRA_DOMAINS"

let domains_from_env () =
  match Sys.getenv_opt env_var with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> 1)

let width t = t.pool_width

(* Helper domains loop on the task queue.  [Run] closures are the
   per-batch work loops built by [run_batch]; they never raise (task
   exceptions are captured per item) and return once the batch's item
   counter is exhausted, so executing a stale closure from an already
   completed batch is a no-op. *)
let rec worker t =
  let task =
    Mutex.lock t.lock;
    let rec await () =
      match Queue.take_opt t.tasks with
      | Some tk -> tk
      | None ->
          Condition.wait t.pending t.lock;
          await ()
    in
    let tk = await () in
    Mutex.unlock t.lock;
    tk
  in
  match task with
  | Stop -> ()
  | Run f ->
      f ();
      worker t

let create ?(clamp = true) ?domains () =
  let requested = max 1 (Option.value ~default:(domains_from_env ()) domains) in
  (* Clamp to the machine: domains beyond the core count cannot add
     throughput, but every active domain joins each minor-GC handshake,
     so oversubscribing cores turns each collection into a wait on
     descheduled peers — a pure slowdown.  Results never depend on the
     width (the determinism contract), so clamping is unobservable apart
     from the wall clock.  [clamp:false] keeps the requested width even
     beyond the core count: determinism tests use it to force real
     cross-domain execution on small machines (capped at 64 so a typo
     cannot spawn thousands of domains). *)
  let w =
    if clamp then min requested (Domain.recommended_domain_count ())
    else min requested 64
  in
  let t =
    {
      pool_width = w;
      tasks = Queue.create ();
      lock = Mutex.create ();
      pending = Condition.create ();
      helpers = [];
      live = true;
    }
  in
  if w > 1 then
    t.helpers <- List.init (w - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  if t.live then begin
    t.live <- false;
    Mutex.lock t.lock;
    List.iter (fun _ -> Queue.push Stop t.tasks) t.helpers;
    Condition.broadcast t.pending;
    Mutex.unlock t.lock;
    List.iter Domain.join t.helpers;
    t.helpers <- []
  end

let with_pool ?clamp ?domains f =
  let t = create ?clamp ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [body 0 .. body (n-1)] across the pool.  Items are claimed from an
   atomic counter; the caller works its own batch and then waits for the
   last in-flight item.  [body] must not raise.  The completion counter's
   atomic updates publish each item's (plain) result writes to the
   caller. *)
let run_batch t n ~body =
  if n > 0 then begin
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let fin_lock = Mutex.create () in
    let fin = Condition.create () in
    let step () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          body i;
          let done_ = 1 + Atomic.fetch_and_add completed 1 in
          if done_ = n then begin
            Mutex.lock fin_lock;
            Condition.broadcast fin;
            Mutex.unlock fin_lock
          end;
          go ()
        end
      in
      go ()
    in
    let helpers = min (t.pool_width - 1) (n - 1) in
    if helpers > 0 then begin
      Mutex.lock t.lock;
      for _ = 1 to helpers do
        Queue.push (Run step) t.tasks
      done;
      Condition.broadcast t.pending;
      Mutex.unlock t.lock
    end;
    step ();
    Mutex.lock fin_lock;
    while Atomic.get completed < n do
      Condition.wait fin fin_lock
    done;
    Mutex.unlock fin_lock
  end

let map_array t f xs =
  let n = Array.length xs in
  if t.pool_width <= 1 || n <= 1 then Array.map f xs
  else begin
    let out = Array.make n None in
    let errs = Array.make n None in
    run_batch t n ~body:(fun i ->
        match f xs.(i) with
        | y -> out.(i) <- Some y
        | exception e -> errs.(i) <- Some (e, Printexc.get_raw_backtrace ()));
    (* re-raise the earliest failure: the one a sequential run hits first *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errs;
    Array.map (function Some y -> y | None -> assert false) out
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

(* Speculative race: evaluate candidates until the lowest-indexed success
   is known.  [best] holds the lowest succeeding index found so far; a
   candidate whose index is above it can no longer win, so it is skipped
   at claim time and [doomed] lets a long-running task notice mid-flight.
   Every index below the eventual winner is always fully evaluated (skips
   only happen above a recorded success), which is what makes the result
   deterministic. *)
let race_poll t f xs =
  match xs with
  | [] -> None
  | _ when t.pool_width <= 1 ->
      (* lazy sequential fallback: nothing past the winner runs at all *)
      let doomed () = false in
      let rec go = function
        | [] -> None
        | x :: rest -> (
            match f ~doomed x with Some y -> Some (x, y) | None -> go rest)
      in
      go xs
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let errs = Array.make n None in
      let best = Atomic.make n in
      let rec lower_best i =
        let b = Atomic.get best in
        if i < b && not (Atomic.compare_and_set best b i) then lower_best i
      in
      run_batch t n ~body:(fun i ->
          if i < Atomic.get best then
            let doomed () = i > Atomic.get best in
            match f ~doomed arr.(i) with
            | Some y ->
                results.(i) <- Some y;
                lower_best i
            | None -> ()
            | exception e -> errs.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      (* Resolve in input order: the first success or failure met is the
         one a sequential run would have met (later speculative outcomes
         are unreachable sequentially and are discarded). *)
      let rec resolve i =
        if i >= n then None
        else
          match errs.(i) with
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> (
              match results.(i) with
              | Some y -> Some (arr.(i), y)
              | None -> resolve (i + 1))
      in
      resolve 0

let race t f xs = race_poll t (fun ~doomed:_ x -> f x) xs

let filter_map t f xs = List.filter_map Fun.id (map t f xs)

let parallel_map ?domains f xs = with_pool ?domains (fun t -> map t f xs)

let parallel_filter_map ?domains f xs =
  with_pool ?domains (fun t -> filter_map t f xs)
