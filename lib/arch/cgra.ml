type t = {
  grid : Grid.t;
  pages : Page.t;
  rf_capacity : int;
  mem_ports_per_row : int;
}

let make ?rf_capacity ?(mem_ports_per_row = 2) pages =
  let rf_capacity =
    match rf_capacity with Some c -> c | None -> max 16 (3 * Page.n_pages pages)
  in
  if rf_capacity <= 0 then invalid_arg "Cgra.make: rf_capacity must be positive";
  if mem_ports_per_row <= 0 then
    invalid_arg "Cgra.make: mem_ports_per_row must be positive";
  { grid = pages.Page.grid; pages; rf_capacity; mem_ports_per_row }

let standard ~size ~page_pes =
  let grid = Grid.square size in
  Option.map make (Page.for_size grid page_pes)

let n_pages t = Page.n_pages t.pages

let pe_count t = Grid.pe_count t.grid

let pp ppf t =
  Format.fprintf ppf "CGRA %a rf=%d memports/row=%d" Page.pp t.pages t.rf_capacity
    t.mem_ports_per_row

(* The canonical identity is deliberately not [pp]: pretty-printers are
   free to re-wrap or re-word, while this string is a pinned contract
   (golden-tested) that persistent cache keys are derived from.  Bump the
   leading version if the encoding ever has to change shape. *)
let fingerprint t =
  let shape =
    match t.pages.Page.shape with
    | Page.Rect { tile_rows; tile_cols } ->
        Printf.sprintf "rect:%d,%d" tile_rows tile_cols
    | Page.Band { size } -> Printf.sprintf "band:%d" size
  in
  Printf.sprintf "cgra-v1;grid=%d,%d;pages=%s;rf=%d;memports=%d"
    t.grid.Grid.rows t.grid.Grid.cols shape t.rf_capacity t.mem_ports_per_row
