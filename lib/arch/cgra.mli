(** Whole-array architecture description.

    Bundles the mesh, its page division, and the microarchitectural
    parameters the mapper and validator need: rotating register-file
    capacity per PE and the number of memory ports on each row's shared
    data bus (Fig. 1 shows one bus per row). *)

type t = private {
  grid : Grid.t;
  pages : Page.t;
  rf_capacity : int;  (** registers per PE usable for live temporaries *)
  mem_ports_per_row : int;  (** simultaneous loads/stores per row per cycle *)
}

val make : ?rf_capacity:int -> ?mem_ports_per_row:int -> Page.t -> t
(** Defaults: [rf_capacity] is [max 16 (3 * n_pages)] — the paper requires
    N rotating registers per PE to shrink an N-page schedule to one page,
    and folded lifetimes can stretch up to one extra II per page crossing,
    so 3N provisions the worst case; [mem_ports_per_row = 2]. *)

val standard : size:int -> page_pes:int -> t option
(** [standard ~size ~page_pes] is the configuration used in the paper's
    experiments: a [size x size] grid with [page_pes]-PE pages.  [None]
    when the page size leaves fewer than two pages (e.g. 8-PE pages on a
    4x4 CGRA). *)

val n_pages : t -> int

val pe_count : t -> int

val pp : Format.formatter -> t -> unit

val fingerprint : t -> string
(** Canonical field-by-field identity of the architecture, e.g.
    ["cgra-v1;grid=4,4;pages=rect:2,2;rf=16;memports=2"].  Unlike {!pp}
    (whose wording and line-wrapping are free to change), this string is
    a pinned, golden-tested contract: compile caches and the on-disk
    binary store derive their keys from it, so its shape may only change
    together with the leading version tag. *)
