open Cgra_arch

let earliest_free ~ii ~free pe ~lower ~deadline =
  (* Scanning one full II window suffices: slots repeat modulo ii. *)
  let rec go t =
    if t > deadline || t >= lower + ii then None
    else if free pe t then Some t
    else go (t + 1)
  in
  go lower

let find ~grid ~ii ~free ~allowed ~read_adjacent ?goal_adjacent ?neighbors
    ?hop_cost ~(src : Mapping.placement) ~dst_pe ~deadline ~max_hops () =
  (* Infeasibility prechecks: each hop is one mesh move and one cycle,
     and the final hop must sit on or next to [dst_pe], so a chain needs
     at least [max 1 (manhattan - 1)] hops and as many cycles before the
     [deadline] read.  The scheduler probes many (PE, time) candidates
     whose edges cannot route; rejecting those without expanding the
     best-first frontier is cheaper than the exhausted search. *)
  let d =
    abs (src.Mapping.pe.Coord.row - dst_pe.Coord.row)
    + abs (src.Mapping.pe.Coord.col - dst_pe.Coord.col)
  in
  let need = max 1 (d - 1) in
  let goal_adjacent = Option.value ~default:read_adjacent goal_adjacent in
  let neighbors =
    match neighbors with
    | Some f -> f
    | None -> fun pe -> Grid.neighbors grid pe @ [ pe ]
  in
  if goal_adjacent src.Mapping.pe dst_pe && deadline >= src.Mapping.time + 1 then
    Some []
  else if
    need > max_hops
    || deadline < src.Mapping.time + need + 1
    ||
    (* The final hop must be an [allowed], goal-adjacent PE with a free
       slot late enough to be reached (one cycle per unit of distance
       from [src], at least one hop) and early enough to be read by
       [deadline]. *)
    not
      (List.exists
         (fun pe ->
           allowed pe
           && goal_adjacent pe dst_pe
           &&
           let dist_src =
             abs (src.Mapping.pe.Coord.row - pe.Coord.row)
             + abs (src.Mapping.pe.Coord.col - pe.Coord.col)
           in
           let lower = src.Mapping.time + max 1 dist_src in
           earliest_free ~ii ~free pe ~lower ~deadline:(deadline - 1) <> None)
         (neighbors dst_pe))
  then None
  else begin
    (* Best-first over (hops, accumulated hop cost, arrival time);
       parents recorded for path reconstruction.  The visited map is
       three dense per-PE arrays — the scheduler calls this in its
       innermost loop, so constant factors matter.  Without [hop_cost]
       every cost is 0 and the search degenerates to the original
       (hops, time) order, expansion for expansion. *)
    let hop_cost = match hop_cost with Some f -> f | None -> fun _ _ -> 0 in
    let module Pq = Cgra_util.Pqueue in
    let n = Grid.pe_count grid in
    (* pe index -> (hops, cost, time) already expanded with *)
    let best_h = Array.make n max_int in
    let best_c = Array.make n max_int in
    let best_t = Array.make n max_int in
    let cmp (h1, c1, t1) (h2, c2, t2) =
      let c = Int.compare h1 h2 in
      if c <> 0 then c
      else
        let c = Int.compare c1 c2 in
        if c <> 0 then c else Int.compare t1 t2
    in
    let q = ref (Pq.empty ~cmp) in
    let push hops cost time pe path =
      match earliest_free ~ii ~free pe ~lower:time ~deadline:(deadline - 1) with
      | None -> ()
      | Some t ->
          let cost = cost + hop_cost pe t in
          let key = Grid.index grid pe in
          let better =
            hops < best_h.(key)
            || hops = best_h.(key)
               && (cost < best_c.(key)
                  || (cost = best_c.(key) && t < best_t.(key)))
          in
          if better then begin
            best_h.(key) <- hops;
            best_c.(key) <- cost;
            best_t.(key) <- t;
            q := Pq.push !q (hops, cost, t) (pe, { Mapping.pe; time = t } :: path)
          end
    in
    List.iter
      (fun pe ->
        if allowed pe && read_adjacent src.Mapping.pe pe then
          push 1 0 (src.Mapping.time + 1) pe [])
      (neighbors src.Mapping.pe);
    let rec search () =
      match Pq.pop !q with
      | None -> None
      | Some (((hops, cost, t), (pe, path)), rest) ->
          q := rest;
          if goal_adjacent pe dst_pe && deadline >= t + 1 then Some (List.rev path)
          else if hops >= max_hops then search ()
          else begin
            List.iter
              (fun pe' ->
                if allowed pe' && read_adjacent pe pe' then
                  push (hops + 1) cost (t + 1) pe' path)
              (neighbors pe);
            search ()
          end
    in
    search ()
  end
