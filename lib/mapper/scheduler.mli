(** Iterative modulo scheduling of a kernel onto the CGRA — the compiler
    of Section II, in two flavours:

    - {b Unconstrained}: the EMS-style baseline.  Operations may use any
      PE; operands travel via neighbour register-file reads or routing-PE
      chains.  This produces the paper's baseline [II_b].
    - {b Paged}: adds the compile-time constraints of Section VI-B — the
      ring-topology dataflow constraint between pages and the
      register-usage rule — and packs operations into as few pages as
      possible (unused pages are what multithreading harvests).  This
      produces the constrained [II_c] compared in Fig. 8.

    The engine is a priority-ordered list scheduler over the modulo
    resource table: nodes are placed in condensation-topological order
    (recurrence circuits first among their dependents), each into the
    cheapest feasible (PE, time) of its modulo window, with bounded-hop
    routing.  Failed attempts restart with a perturbed placement order;
    exhausted attempts escalate the II.  Every returned mapping has been
    re-checked by [Mapping.validate]. *)

type kind = Unconstrained | Paged

val map :
  ?seed:int ->
  ?max_ii:int ->
  ?attempts:int ->
  ?bus_aware:bool ->
  ?pool:Cgra_util.Pool.t ->
  ?trace:Cgra_trace.Trace.t ->
  kind ->
  Cgra_arch.Cgra.t ->
  Cgra_dfg.Graph.t ->
  (Mapping.t, string) result
(** [map kind arch g] schedules [g].  Defaults: [seed 0], [attempts 64]
    restarts per II, [max_ii] = MII + 40.  [Error] only when every II up
    to [max_ii] fails — which the test-suite treats as a bug for the
    bundled kernels.

    [bus_aware] (default [true]) makes the row bus a first-class
    allocation: each II races a bandwidth-aware attempt family — bus
    pressure priced into the candidate cost against per-(row, slot) port
    budgets, routing hops steered off port-saturated slots, and a
    bounded spill pass that re-times or re-rows the worst memory ops
    when an attempt gets stuck — ahead of the legacy family, which is
    replayed byte-identically after it.  The achieved II is therefore
    monotonically no worse than with [bus_aware:false] (which reproduces
    the pre-bandwidth scheduler exactly), at the price of up to twice
    the attempts on IIs that fail entirely.

    [pool] races the (II, attempt) ladder speculatively across the
    domain pool (see {!Cgra_util.Pool.race}): the winner is always the
    {e lowest} [(ii, attempt)] pair that succeeds, and a success at II
    [k] abandons in-flight work at II [> k].  The returned mapping — and
    the [Error] text on failure — is bit-identical to the sequential
    result at any pool width.  Per-attempt debug logging stays coherent:
    raced attempts buffer their diagnostics, which are re-emitted in
    ladder order up to the winner.

    [trace] receives a ["sched.race"] span around the search plus
    counters (candidates / launched / cancelled / polish) and a winner
    mark. *)

val mii : kind -> Cgra_arch.Cgra.t -> Cgra_dfg.Graph.t -> int
(** The lower bound the search starts from ([Analysis.mii] with the
    fabric's PE and memory-port resources). *)

val log_src : Logs.Src.t
(** Debug logging source ("cgra.mapper"): per-attempt failure reasons. *)
