open Cgra_arch
open Cgra_dfg

type placement = { pe : Coord.t; time : int }

type route = { edge : Graph.edge; hops : placement list }

type t = {
  arch : Cgra.t;
  graph : Graph.t;
  ii : int;
  placements : placement option array;
  routes : route list;
  paged : bool;
}

let placement_exn t v =
  match t.placements.(v) with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Mapping.placement_exn: node %d unplaced" v)

let page_of_node t v =
  match t.placements.(v) with
  | None -> None
  | Some p -> Page.page_of_pe t.arch.Cgra.pages p.pe

let all_occupants t =
  let ops =
    Array.to_list t.placements
    |> List.mapi (fun v p -> Option.map (fun p -> (`Op v, p)) p)
    |> List.filter_map Fun.id
  in
  let hops =
    List.concat_map (fun r -> List.map (fun h -> (`Hop r.edge, h)) r.hops) t.routes
  in
  ops @ hops

let pages_used t =
  let module S = Set.Make (Int) in
  List.fold_left
    (fun acc (_, p) ->
      match Page.page_of_pe t.arch.Cgra.pages p.pe with
      | Some pg -> S.add pg acc
      | None -> acc)
    S.empty (all_occupants t)
  |> S.elements

let n_pages_used t = List.length (pages_used t)

let schedule_length t =
  1
  + List.fold_left (fun acc (_, p) -> max acc p.time) 0 (all_occupants t)

let slot_of t (p : placement) = p.time mod t.ii

let utilization t =
  let occupied = List.length (all_occupants t) in
  float_of_int occupied /. float_of_int (Cgra.pe_count t.arch * t.ii)

(* ----- validation ---------------------------------------------------- *)

(* The effective read time of edge [e] at its consumer, in the producer's
   iteration frame. *)
let consumer_read_time t (e : Graph.edge) =
  (placement_exn t e.dst).time + (e.distance * t.ii)

let is_const t v = match (Graph.node t.graph v).op with Op.Const _ -> true | _ -> false

let route_for t (e : Graph.edge) =
  List.find_opt (fun r -> r.edge = e) t.routes

(* Same-page adjacency for reads.  For band pages the transformation may
   reverse a page, which only preserves path-consecutive adjacency. *)
let read_adjacent t ~same_page a b =
  Coord.equal a b
  || Coord.adjacent a b
     &&
     if same_page && not (Page.is_rect t.arch.Cgra.pages) then
       abs (Grid.serp_index t.arch.Cgra.grid a - Grid.serp_index t.arch.Cgra.grid b) = 1
     else true

(* Adjacency for the page-boundary crossing of a cross-page edge.  Band
   pages only guarantee the serpentine junction survives page reversal. *)
let cross_adjacent t a b =
  Coord.adjacent a b
  && (Page.is_rect t.arch.Cgra.pages
     || abs (Grid.serp_index t.arch.Cgra.grid a - Grid.serp_index t.arch.Cgra.grid b) = 1)

let steps t =
  List.concat_map
    (fun (e : Graph.edge) ->
      if is_const t e.src then []
      else
        let pu = placement_exn t e.src and pv = placement_exn t e.dst in
        let hops = match route_for t e with None -> [] | Some r -> r.hops in
        let rec chain prev acc = function
          | [] -> List.rev ((prev, pv) :: acc)
          | h :: rest -> chain h ((prev, h) :: acc) rest
        in
        chain pu [] hops)
    (Graph.edges t.graph)

type value_key =
  | Produced of int
  | Relayed of Graph.edge * int

type transfer = {
  key : value_key;
  holder : placement;
  reader_pe : Coord.t;
  read_time : int;
}

let transfers t =
  List.concat_map
    (fun (e : Graph.edge) ->
      if is_const t e.src then []
      else
        let pu = placement_exn t e.src and pv = placement_exn t e.dst in
        let final_read = consumer_read_time t e in
        let hops = match route_for t e with None -> [] | Some r -> r.hops in
        let rec chain prev_key (prev : placement) acc idx = function
          | [] ->
              List.rev
                ({ key = prev_key; holder = prev; reader_pe = pv.pe;
                   read_time = final_read }
                :: acc)
          | (h : placement) :: rest ->
              let step =
                { key = prev_key; holder = prev; reader_pe = h.pe; read_time = h.time }
              in
              chain (Relayed (e, idx)) h (step :: acc) (idx + 1) rest
        in
        chain (Produced e.src) pu [] 0 hops)
    (Graph.edges t.graph)

let validate ?(check_mem = true) t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let g = t.graph in
  let arch = t.arch in
  let pages = arch.Cgra.pages in
  if t.ii < 1 then err "ii %d < 1" t.ii;
  (* every non-const node placed, in bounds, at time >= 0 *)
  Array.iteri
    (fun v pl ->
      match (pl, is_const t v) with
      | None, false -> err "node %d is unplaced" v
      | Some _, true -> err "const node %d should not be placed" v
      | Some p, false ->
          if not (Grid.in_bounds arch.Cgra.grid p.pe) then
            err "node %d placed out of bounds at %s" v (Coord.to_string p.pe);
          if p.time < 0 then err "node %d scheduled at negative time %d" v p.time;
          if t.paged && Page.page_of_pe pages p.pe = None then
            err "node %d placed on unused remainder PE %s" v (Coord.to_string p.pe)
      | None, true -> ())
    t.placements;
  if !errs <> [] then Error (List.rev !errs)
  else begin
    (* exclusive slot occupancy *)
    let occ = Hashtbl.create 64 in
    List.iter
      (fun (who, (p : placement)) ->
        let key = (Grid.index arch.Cgra.grid p.pe, p.time mod t.ii) in
        (match Hashtbl.find_opt occ key with
        | Some _ ->
            err "slot conflict at %s mod-slot %d" (Coord.to_string p.pe)
              (p.time mod t.ii)
        | None -> ());
        Hashtbl.add occ key who)
      (all_occupants t);
    (* memory ports per row per modulo cycle *)
    let mem_use = Hashtbl.create 16 in
    Array.iteri
      (fun v pl ->
        match pl with
        | Some (p : placement) when Op.is_mem (Graph.node g v).op ->
            let key = (p.pe.Coord.row, p.time mod t.ii) in
            let n = Option.value ~default:0 (Hashtbl.find_opt mem_use key) in
            Hashtbl.replace mem_use key (n + 1)
        | Some _ | None -> ())
      t.placements;
    if check_mem then
      Hashtbl.iter
        (fun (row, slot) n ->
          if n > arch.Cgra.mem_ports_per_row then
            err "row %d mod-slot %d uses %d memory ports (limit %d)" row slot n
              arch.Cgra.mem_ports_per_row)
        mem_use;
    (* edges: realizability and paging rules; collect value instances for
       register-file accounting as we go *)
    let instances = Hashtbl.create 64 in
    (* key: (pe index, birth time); value: mutable last read time *)
    let record_use ~pe ~born ~read =
      let key = (Grid.index arch.Cgra.grid pe, born) in
      let last = Option.value ~default:born (Hashtbl.find_opt instances key) in
      Hashtbl.replace instances key (max last read)
    in
    let check_edge (e : Graph.edge) =
      if is_const t e.src then begin
        if route_for t e <> None then
          err "edge %d->%d from const has a route" e.src e.dst
      end
      else begin
        let pu = placement_exn t e.src and pv = placement_exn t e.dst in
        let read_time = consumer_read_time t e in
        (* One producer-to-reader step of the chain: legal when it stays
           in its page (same-page reach) or advances exactly one page
           across a boundary-adjacent pair.  Without paging, plain
           register-file reach. *)
        let step_ok a b =
          if not t.paged then read_adjacent t ~same_page:false a b
          else
            match (Page.page_of_pe pages a, Page.page_of_pe pages b) with
            | Some pa, Some pb when pb = pa -> read_adjacent t ~same_page:true a b
            | Some pa, Some pb when pb = pa + 1 -> cross_adjacent t a b
            | Some _, Some _ | None, _ | _, None -> false
        in
        (* Producer -> hop1 -> ... -> hopK -> consumer. *)
        let hops = match route_for t e with None -> [] | Some r -> r.hops in
        let ok = ref true in
        let prev = ref (pu : placement) in
        List.iter
          (fun (h : placement) ->
            if not (step_ok !prev.pe h.pe) then begin
              err "edge %d->%d route hop %s unreachable from %s" e.src e.dst
                (Coord.to_string h.pe) (Coord.to_string !prev.pe);
              ok := false
            end;
            if h.time < !prev.time + 1 then begin
              err "edge %d->%d route hop at %d too early (prev %d)" e.src e.dst h.time
                !prev.time;
              ok := false
            end;
            record_use ~pe:!prev.pe ~born:!prev.time ~read:h.time;
            prev := h)
          hops;
        if !ok then begin
          if not (step_ok !prev.pe pv.pe) then
            err "edge %d->%d consumer at %s cannot read %s" e.src e.dst
              (Coord.to_string pv.pe) (Coord.to_string !prev.pe);
          if read_time < !prev.time + 1 then
            err "edge %d->%d read at %d before value ready at %d" e.src e.dst
              read_time !prev.time;
          record_use ~pe:!prev.pe ~born:!prev.time ~read:read_time
        end
      end
    in
    List.iter check_edge (Graph.edges g);
    (* memory ordering: conflicting accesses must keep sequential order *)
    List.iter
      (fun (o : Memdep.t) ->
        match (t.placements.(o.src), t.placements.(o.dst)) with
        | Some a, Some b ->
            if b.time + (o.distance * t.ii) < a.time + 1 then
              err "memory ordering %d->%d (distance %d) violated (%d vs %d)" o.src
                o.dst o.distance a.time b.time
        | None, _ | _, None -> ())
      (Memdep.ordering g);
    (* routes must correspond to real edges, one per edge *)
    let edge_set = Graph.edges g in
    List.iter
      (fun r ->
        if not (List.mem r.edge edge_set) then err "route for a non-existent edge")
      t.routes;
    let keys = List.map (fun r -> r.edge) t.routes in
    if List.length keys <> List.length (List.sort_uniq compare keys) then
      err "duplicate routes for one edge";
    (* register-file pressure: a value alive l cycles needs ceil(l/ii)
       rotating registers *)
    let rf = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (pe_idx, born) last ->
        let lifetime = last - born in
        if lifetime > 0 then begin
          let regs = (lifetime + t.ii - 1) / t.ii in
          let n = Option.value ~default:0 (Hashtbl.find_opt rf pe_idx) in
          Hashtbl.replace rf pe_idx (n + regs)
        end)
      instances;
    Hashtbl.iter
      (fun pe_idx n ->
        if n > arch.Cgra.rf_capacity then
          err "PE index %d needs %d registers (capacity %d)" pe_idx n
            arch.Cgra.rf_capacity)
      rf;
    (* paged: used pages form a contiguous run of the ring order (the
       compiler emits base 0; the runtime may relocate to any base) *)
    if t.paged then begin
      match pages_used t with
      | [] -> ()
      | first :: _ as used ->
          List.iteri
            (fun i pg ->
              if pg <> first + i then
                err "pages used are not contiguous: %d at rank %d (base %d)" pg i first)
            used
    end;
    match List.rev !errs with [] -> Ok () | es -> Error es
  end

(* ----- rendering ------------------------------------------------------ *)

let pp ppf t =
  let arch = t.arch in
  let cell = Array.make_matrix t.ii (Cgra.pe_count arch) "." in
  List.iter
    (fun (who, (p : placement)) ->
      let s =
        match who with `Op v -> string_of_int v | `Hop (e : Graph.edge) ->
          Printf.sprintf "r%d" e.src
      in
      cell.(p.time mod t.ii).(Grid.index arch.Cgra.grid p.pe) <- s)
    (all_occupants t);
  let rows = arch.Cgra.grid.Grid.rows and cols = arch.Cgra.grid.Grid.cols in
  for slot = 0 to t.ii - 1 do
    Format.fprintf ppf "slot %d:@." slot;
    for r = 0 to rows - 1 do
      Format.pp_print_string ppf "  ";
      for c = 0 to cols - 1 do
        Format.fprintf ppf "%4s" cell.(slot).((r * cols) + c)
      done;
      Format.pp_print_newline ppf ()
    done
  done

let pp_stats ppf t =
  Format.fprintf ppf "%s on %a: II=%d, pages=%d, len=%d, util=%.1f%%"
    (Graph.name t.graph) Cgra.pp t.arch t.ii (n_pages_used t) (schedule_length t)
    (100.0 *. utilization t)
