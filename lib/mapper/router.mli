(** Operand routing through intermediate PEs.

    When a consumer is not within register-file reach of its producer
    (same PE or a mesh neighbour), the value is relayed through routing
    PEs: each hop occupies one schedule slot exclusively and
    re-materializes the value in its own register file, where it can wait
    any number of cycles for the next hop (the paper's routing PEs
    "can only transfer input data to [their] outputs").

    The search is a best-first (fewest hops, then earliest arrival)
    expansion over PEs, assigning each hop the earliest free modulo slot
    after its predecessor. *)

val find :
  grid:Cgra_arch.Grid.t ->
  ii:int ->
  free:(Cgra_arch.Coord.t -> int -> bool) ->
  allowed:(Cgra_arch.Coord.t -> bool) ->
  read_adjacent:(Cgra_arch.Coord.t -> Cgra_arch.Coord.t -> bool) ->
  ?goal_adjacent:(Cgra_arch.Coord.t -> Cgra_arch.Coord.t -> bool) ->
  ?neighbors:(Cgra_arch.Coord.t -> Cgra_arch.Coord.t list) ->
  ?hop_cost:(Cgra_arch.Coord.t -> int -> int) ->
  src:Mapping.placement ->
  dst_pe:Cgra_arch.Coord.t ->
  deadline:int ->
  max_hops:int ->
  unit ->
  Mapping.placement list option
(** [find ... ~src ~dst_pe ~deadline ()] returns a hop chain (possibly
    empty when the consumer can read the producer directly) such that the
    consumer can read the final value at time [deadline].

    [free pe t] must say whether slot [(pe, t mod ii)] is unoccupied;
    [allowed] restricts the hop region (a page under paging constraints);
    [read_adjacent a b] is the reach relation between hops (who can read
    whose RF); [goal_adjacent] (default [read_adjacent]) is the relation
    for the final read by the consumer — it differs for cross-page edges,
    where the last producer-side PE must sit on the page boundary.
    [neighbors pe] must return the mesh neighbours of [pe] followed by
    [pe] itself (the default computes exactly that); callers on a hot
    path pass a precomputed table.  [hop_cost pe t] (default 0) is a
    secondary routing price charged per hop slot: the search minimizes
    (hops, total cost, arrival time) lexicographically, so with the
    default the original fewest-hops/earliest-arrival behaviour is
    preserved exactly — the bandwidth-aware scheduler uses it to steer
    routing chains away from (row, slot) pairs whose memory-port budget
    is nearly spent.  [None] when no chain of at most [max_hops] hops
    exists. *)
