(** Mapped and scheduled kernels, and the legality rules they obey.

    A mapping assigns every schedulable DFG node a PE and an absolute
    schedule time; the modulo schedule repeats with period [ii], so node
    [v] of loop iteration [i] executes at cycle [i*ii + time(v)].

    {2 Data-movement model}

    A value produced at PE [p], time [t] is written to [p]'s rotating
    register file and can be read at any time [>= t+1] by an operation on
    [p] itself or on a mesh neighbour of [p] (Fig. 1: a PE operates on the
    output of a neighbouring PE in the next cycle, and the RF of one PE is
    readable by its neighbours).  Longer distances are covered by chains
    of routing PEs, each of which occupies a schedule slot exclusively.
    An edge with iteration distance [d] is read by the consumer [d]
    iterations later, i.e. at producer-frame time [time(v) + d*ii].

    [Const] nodes are loop-invariant and live in the consumer's register
    file (preloaded by the configuration), so they are not placed and
    consume no slots.

    {2 Paging rules (claimed by [paged] mappings)}

    - data flows forward along the serpentine ring order of pages (a
      subset of the paper's ring topology, with no wrap edge): every
      producer-to-consumer step of every edge — including each routing
      hop — stays in its page or advances to the next page, and a
      page-advancing step happens between boundary-adjacent PEs (for band
      pages: serpentine-consecutive PEs).  An edge from page [n] to page
      [n+k] is therefore relayed by routing PEs in each intermediate
      page, which are themselves operations of those pages, so the
      page-level dependence structure the PageMaster transformation
      relies on is preserved;
    - intra-page data movement never leaves the page (routing hops stay
      inside), and for band-shaped pages "adjacent" additionally means
      consecutive along the serpentine path (so that reversing a page
      preserves legality);
    - the pages used form a contiguous run [b .. b+k-1] of the ring
      order.  The compiler always emits [b = 0]; the multithreading
      runtime may relocate a mapping to any base page. *)

type placement = { pe : Cgra_arch.Coord.t; time : int }

type route = { edge : Cgra_dfg.Graph.edge; hops : placement list }
(** Routing chain for one edge, ordered from producer to consumer. *)

type t = {
  arch : Cgra_arch.Cgra.t;
  graph : Cgra_dfg.Graph.t;
  ii : int;
  placements : placement option array;  (** indexed by node id; [None] for consts *)
  routes : route list;
  paged : bool;
}

val placement_exn : t -> int -> placement
(** Raises [Invalid_argument] for unplaced (const) nodes. *)

val page_of_node : t -> int -> int option
(** Page of a placed node's PE. *)

val pages_used : t -> int list
(** Sorted distinct pages hosting at least one op or routing hop. *)

val n_pages_used : t -> int

val schedule_length : t -> int
(** One plus the largest scheduled time — the length of one iteration's
    span (prologue depth is [ceil (length / ii)] stages). *)

val utilization : t -> float
(** Fraction of PE slots of one II window occupied by ops or routing
    hops, over the whole fabric — the U of Section IV. *)

val slot_of : t -> placement -> int
(** [time mod ii]. *)

val steps : t -> (placement * placement) list
(** Every producer-to-reader step of every edge: producer to first hop,
    hop to hop, and last value instance to consumer (const edges
    contribute nothing).  The PageMaster mirroring machinery constrains
    orientations so each step's PEs stay within register-file reach after
    the transformation. *)

type value_key =
  | Produced of int  (** a node's result, by node id *)
  | Relayed of Cgra_dfg.Graph.edge * int  (** a routing hop's copy *)

type transfer = {
  key : value_key;
  holder : placement;  (** where the value lives (producer or hop) *)
  reader_pe : Cgra_arch.Coord.t;
  read_time : int;
      (** when it is read, in the holder's iteration frame (loop-carried
          consumers add [distance * ii]) *)
}

val transfers : t -> transfer list
(** Every register-file read of the schedule — the input to register
    allocation ([Cgra_isa.Regalloc]) and the basis of the validator's
    register-pressure accounting. *)

val validate : ?check_mem:bool -> t -> (unit, string list) result
(** Checks every rule above plus: exclusive slot occupancy, memory-port
    limits per row and cycle, register-file capacity (rotating-file
    accounting: a value of lifetime [l] occupies [ceil (l / ii)]
    registers), route-chain well-formedness, and — when [paged] — the
    paging rules.  Returns all violations found.

    [check_mem:false] skips the memory-port check: PageMaster-transformed
    schedules concentrate the surviving pages onto fewer rows, raising
    row-bus pressure, and the paper explicitly assumes sufficient memory
    bandwidth at runtime (it lists balancing memory requirements as
    future work) — see DESIGN.md. *)

val pp : Format.formatter -> t -> unit
(** ASCII rendering: one grid per modulo slot, each PE cell showing the
    node mapped there. *)

val pp_stats : Format.formatter -> t -> unit
