open Cgra_arch
open Cgra_dfg

let log_src = Logs.Src.create "cgra.mapper" ~doc:"CGRA modulo scheduler"

module Log = (val Logs.src_log log_src : Logs.LOG)

type kind = Unconstrained | Paged

let schedulable_nodes g =
  List.filter_map
    (fun (n : Graph.node) ->
      match n.op with Op.Const _ -> None | _ -> Some n.id)
    (Graph.nodes g)

let mii kind arch g =
  let pes =
    match kind with
    | Unconstrained -> Cgra.pe_count arch
    | Paged -> Page.used_pe_count arch.Cgra.pages
  in
  let mem_slots_per_cycle = arch.Cgra.grid.Grid.rows * arch.Cgra.mem_ports_per_row in
  (* Const nodes are not scheduled; correct the resource bound. *)
  let n_sched = List.length (schedulable_nodes g) in
  let cdiv a b = (a + b - 1) / b in
  let res =
    max (cdiv (max 1 n_sched) pes)
      (cdiv (Graph.mem_node_count g) mem_slots_per_cycle)
  in
  let extra = Memdep.as_edge_triples (Memdep.ordering g) in
  max res (Analysis.rec_mii_with ~extra g)

(* ----- per-map precomputation ---------------------------------------- *)

(* Everything here is a pure function of (kind, arch, graph): the same
   for all (ii, attempt) candidates of one [map] call, so it is computed
   once and shared — read-only — by every attempt, including attempts
   racing on other domains. *)
module Prep = struct
  type t = {
    kind : kind;
    arch : Cgra.t;
    graph : Graph.t;
    ordering : Memdep.t list;
        (* memory ordering constraints: timing-only edges *)
    order : int list;  (* node placement order (rank, height, asap, id) *)
    all_pes : Coord.t array;  (* row-major *)
    nbrs_self : Coord.t list array;
        (* pe index -> mesh neighbours (N/E/S/W) followed by the PE
           itself: the exact expansion list the router uses *)
    page_idx : int array;  (* pe index -> page, or -1 when unpaged *)
    boundary : bool array;
        (* pe index -> boundary-adjacent to the next page (ops with
           unplaced consumers prefer these under the spread personality) *)
    is_band : bool;  (* band-shaped pages: serpentine adjacency applies *)
    mem_ports : int;
    port_budget : int array;
        (* row -> memory-port budget: the per-(row, slot) allowance the
           bandwidth-aware cost prices against.  Uniform today
           ([mem_ports_per_row] everywhere), but kept as a table so the
           cost model already supports heterogeneous rows. *)
  }

  let make kind arch graph =
    let grid = arch.Cgra.grid in
    let pages = arch.Cgra.pages in
    let n = Grid.pe_count grid in
    let all_pes = Array.of_list (Grid.all_pes grid) in
    let nbrs_self =
      Array.map (fun pe -> Grid.neighbors grid pe @ [ pe ]) all_pes
    in
    let page_idx =
      Array.map
        (fun pe -> Option.value ~default:(-1) (Page.page_of_pe pages pe))
        all_pes
    in
    let boundary = Array.make n false in
    for p = 0 to Page.n_pages pages - 2 do
      List.iter
        (fun (a, _) -> boundary.(Grid.index grid a) <- true)
        (Page.boundary_pairs pages p)
    done;
    let order =
      let rank = Analysis.scc_topo_rank graph in
      let h = Analysis.height graph in
      let a = Analysis.asap graph in
      List.sort
        (fun v w ->
          let c = Int.compare rank.(v) rank.(w) in
          if c <> 0 then c
          else
            let c = Int.compare h.(w) h.(v) in
            if c <> 0 then c
            else
              let c = Int.compare a.(v) a.(w) in
              if c <> 0 then c else Int.compare v w)
        (schedulable_nodes graph)
    in
    {
      kind;
      arch;
      graph;
      ordering = Memdep.ordering graph;
      order;
      all_pes;
      nbrs_self;
      page_idx;
      boundary;
      is_band = not (Page.is_rect pages);
      mem_ports = arch.Cgra.mem_ports_per_row;
      port_budget = Array.make grid.Grid.rows arch.Cgra.mem_ports_per_row;
    }
end

(* ----- one scheduling attempt ---------------------------------------- *)

module Attempt = struct
  type t = {
    prep : Prep.t;
    ii : int;
    spread : bool;
        (* search personality: [false] packs operations into the fewest
           pages (maximizing the fabric left for other threads); [true]
           uses pages freely, favouring a lower II.  Restart attempts
           alternate between the two. *)
    bus : bool;
        (* bandwidth-aware personality: price row-bus pressure in the
           candidate cost, steer routing hops off port-saturated slots,
           and repair failures with a bounded memory-op spill pass.
           [false] reproduces the pre-bandwidth scheduler byte for
           byte. *)
    rng : Cgra_util.Rng.t;
    cancel : unit -> bool;
        (* polled between node placements: [true] once a better race
           candidate has won, making this attempt's outcome irrelevant *)
    debug : (unit -> string) -> unit;
        (* failure-diagnostics sink: the direct Logs emitter when running
           sequentially, a per-attempt buffer when racing *)
    placements : Mapping.placement option array;
    occupied : Bytes.t;  (* pe_index * ii + slot *)
    mem_use : int array;  (* row * ii + slot -> count *)
    row_occ : int array;
        (* row * ii + slot -> occupied PEs (ops and routing hops): how
           much of the row is left to host its remaining port budget *)
    overlay : int array;  (* generation stamps, pe_index * ii + slot *)
    mutable overlay_gen : int;
    mutable routes : Mapping.route list;
    mutable max_page_used : int;  (* -1 when none *)
    mutable spills_left : int;
  }

  let create ?(spread = false) ?(bus = false) ?(cancel = fun () -> false)
      ~debug prep ii rng =
    let n_pes = Array.length prep.Prep.all_pes in
    {
      prep;
      ii;
      spread;
      bus;
      rng;
      cancel;
      debug;
      placements = Array.make (Graph.n_nodes prep.Prep.graph) None;
      occupied = Bytes.make (n_pes * ii) '\000';
      mem_use = Array.make (prep.Prep.arch.Cgra.grid.Grid.rows * ii) 0;
      row_occ = Array.make (prep.Prep.arch.Cgra.grid.Grid.rows * ii) 0;
      overlay = Array.make (n_pes * ii) 0;
      overlay_gen = 0;
      routes = [];
      max_page_used = -1;
      spills_left = (if bus then 8 else 0);
    }

  let grid t = t.prep.Prep.arch.Cgra.grid

  let graph t = t.prep.Prep.graph

  let kind t = t.prep.Prep.kind

  let slot t time = time mod t.ii

  (* Packed single-int keys: with [slot < ii] the pair (pe index, slot)
     packs bijectively into [pe_index * ii + slot], and (row, slot) into
     [row * ii + slot] — a dense array index, no hashing in the
     placement inner loop. *)
  let occ_key t pe time = (Grid.index (grid t) pe * t.ii) + slot t time

  let mem_key t pe time = (pe.Coord.row * t.ii) + slot t time

  let base_free t pe time = Bytes.get t.occupied (occ_key t pe time) = '\000'

  let is_const t v =
    match (Graph.node (graph t) v).op with Op.Const _ -> true | _ -> false

  let page_of_idx t pe = t.prep.Prep.page_idx.(Grid.index (grid t) pe)

  (* ----- bandwidth pricing ------------------------------------------- *)

  (* Occupying (pe, time) "strands" row-bus budget when the row still has
     unspent memory ports at that slot but is running out of free PEs to
     issue them from: each such placement makes the residual bandwidth
     harder to spend later.  Only the bandwidth-aware personality pays
     this price. *)
  let port_strand t pe time =
    let k = mem_key t pe time in
    let slack = t.prep.Prep.port_budget.(pe.Coord.row) - t.mem_use.(k) in
    if slack > 0 && (grid t).Grid.cols - t.row_occ.(k) <= slack then 1 else 0

  (* Reach relation for reads: same PE or mesh neighbour; for band pages
     under paging constraints, same-page reads must additionally be
     path-consecutive so that page reversal stays legal. *)
  let read_adjacent t ~same_page a b =
    Coord.equal a b
    || Coord.adjacent a b
       &&
       if same_page && kind t = Paged && t.prep.Prep.is_band then
         abs (Grid.serp_index (grid t) a - Grid.serp_index (grid t) b) = 1
       else true

  (* Adjacency for the boundary crossing of a cross-page read. *)
  let cross_adjacent t a b =
    Coord.adjacent a b
    && ((not t.prep.Prep.is_band)
       || abs (Grid.serp_index (grid t) a - Grid.serp_index (grid t) b) = 1)

  (* Feasibility of one edge given both endpoints, with an overlay of
     tentatively routed hops.  [producer]/[consumer] are the edge's
     endpoint placements; returns the hops needed (possibly []). *)
  let edge_feasible t (e : Graph.edge) ~(producer : Mapping.placement)
      ~(consumer : Mapping.placement) =
    let read_time = consumer.time + (e.distance * t.ii) in
    let gen = t.overlay_gen in
    let free pe time =
      let k = occ_key t pe time in
      Bytes.get t.occupied k = '\000' && t.overlay.(k) <> gen
    in
    let neighbors pe = t.prep.Prep.nbrs_self.(Grid.index (grid t) pe) in
    (* Bus-aware routing: among equally short chains, prefer hops that do
       not strand port budget.  Legacy attempts pass no cost and keep the
       original (hops, time) search exactly. *)
    let hop_cost = if t.bus then Some (port_strand t) else None in
    match kind t with
    | Unconstrained ->
        Router.find ~grid:(grid t) ~ii:t.ii ~free ~allowed:(fun _ -> true)
          ~read_adjacent:(read_adjacent t ~same_page:false)
          ~neighbors ?hop_cost ~src:producer ~dst_pe:consumer.pe
          ~deadline:read_time ~max_hops:8 ()
    | Paged -> (
        match (page_of_idx t producer.pe, page_of_idx t consumer.pe) with
        | pu, pv when pu >= 0 && pv >= pu ->
            (* Values may relay forward through intermediate pages; each
               step stays in its page or crosses one boundary. *)
            let allowed pe =
              let p = page_of_idx t pe in
              p >= pu && p <= pv
            in
            let step a b =
              let pa = page_of_idx t a and pb = page_of_idx t b in
              if pa < 0 || pb < 0 then false
              else if pb = pa then read_adjacent t ~same_page:true a b
              else if pb = pa + 1 then cross_adjacent t a b
              else false
            in
            Router.find ~grid:(grid t) ~ii:t.ii ~free ~allowed ~read_adjacent:step
              ~neighbors ?hop_cost ~src:producer ~dst_pe:consumer.pe
              ~deadline:read_time
              ~max_hops:(2 * (pv - pu + 4))
              ()
        | _, _ -> None)

  (* All edges of candidate [v] at [cand] whose other endpoint is already
     placed — [preds]/[succs] are precomputed once per node in
     [place_node].  Returns the routes to commit, or None if infeasible. *)
  let edges_feasible t ~preds ~succs (cand : Mapping.placement) =
    t.overlay_gen <- t.overlay_gen + 1;
    let gen = t.overlay_gen in
    let add_overlay hops =
      List.iter
        (fun (h : Mapping.placement) -> t.overlay.(occ_key t h.pe h.time) <- gen)
        hops
    in
    let rec go_succs acc = function
      | [] -> Some acc
      | (e, pw) :: rest -> (
          match edge_feasible t e ~producer:cand ~consumer:pw with
          | None -> None
          | Some [] -> go_succs acc rest
          | Some hops ->
              add_overlay hops;
              go_succs ({ Mapping.edge = e; hops } :: acc) rest)
    in
    let rec go_preds acc = function
      | [] -> go_succs acc succs
      | (e, pu) :: rest -> (
          match edge_feasible t e ~producer:pu ~consumer:cand with
          | None -> None
          | Some [] -> go_preds acc rest
          | Some hops ->
              add_overlay hops;
              go_preds ({ Mapping.edge = e; hops } :: acc) rest)
    in
    go_preds [] preds

  let mem_ok t ~v_is_mem pe time =
    (not v_is_mem) || t.mem_use.(mem_key t pe time) < t.prep.Prep.mem_ports

  let candidate_pes t =
    let all = t.prep.Prep.all_pes in
    match kind t with
    | Unconstrained -> Array.copy all
    | Paged ->
        (* Only pages forming a contiguous prefix may be used; allow one
           fresh page beyond the current maximum. *)
        let page_idx = t.prep.Prep.page_idx in
        let keep i = page_idx.(i) >= 0 && page_idx.(i) <= t.max_page_used + 1 in
        let count = ref 0 in
        Array.iteri (fun i _ -> if keep i then incr count) all;
        let out = Array.make !count all.(0) in
        let j = ref 0 in
        Array.iteri
          (fun i pe ->
            if keep i then begin
              out.(!j) <- pe;
              incr j
            end)
          all;
        out

  let has_unplaced_consumer t v =
    List.exists
      (fun (e : Graph.edge) -> t.placements.(e.dst) = None)
      (Graph.succs (graph t) v)

  (* Bus-pressure price of a feasible candidate, the bandwidth-aware
     term of the cost tuple (0 for legacy attempts).  A memory op pays
     for the load already on its (row, slot) — steering memory traffic
     toward slack rows — plus a saturation surcharge when it would spend
     the row's last port; any placement (op or routing hop) additionally
     pays the stranding price of eating a would-be port issuer's PE. *)
  let bus_cost t ~v_is_mem (cand : Mapping.placement) routes =
    if not t.bus then 0
    else begin
      let own =
        if v_is_mem then begin
          let k = mem_key t cand.pe cand.time in
          let used = t.mem_use.(k) in
          let saturating =
            if used + 1 >= t.prep.Prep.port_budget.(cand.pe.Coord.row) then 1
            else 0
          in
          (4 * used) + (2 * saturating)
        end
        else port_strand t cand.pe cand.time
      in
      List.fold_left
        (fun acc (r : Mapping.route) ->
          List.fold_left
            (fun acc (h : Mapping.placement) -> acc + port_strand t h.pe h.time)
            acc r.hops)
        own routes
    end

  (* Cost of a feasible candidate.  Packing personality: fewer fresh
     pages and lower page index first (harvestable fabric); spreading
     personality: fewer routing hops and boundary access for ops whose
     consumers are still unplaced (lower II pressure).  The fourth
     component is the bus-pressure term — tie-break-level for legacy
     attempts (always 0 there), an active allocation signal for
     bandwidth-aware ones. *)
  let cost t v ~v_is_mem (cand : Mapping.placement) routes =
    let hops =
      List.fold_left (fun acc (r : Mapping.route) -> acc + List.length r.hops) 0 routes
    in
    let bus = bus_cost t ~v_is_mem cand routes in
    match kind t with
    | Unconstrained -> (0, 0, hops, bus, Cgra_util.Rng.int t.rng 1024)
    | Paged when t.spread ->
        let interior_penalty =
          if
            has_unplaced_consumer t v
            && not t.prep.Prep.boundary.(Grid.index (grid t) cand.pe)
          then 1
          else 0
        in
        (0, hops, interior_penalty, bus, Cgra_util.Rng.int t.rng 1024)
    | Paged ->
        let pg = max 0 (page_of_idx t cand.pe) in
        let fresh = if pg > t.max_page_used then 1 else 0 in
        (fresh, pg, hops, bus, Cgra_util.Rng.int t.rng 1024)

  let commit t v (cand : Mapping.placement) routes =
    t.placements.(v) <- Some cand;
    Bytes.set t.occupied (occ_key t cand.pe cand.time) '\001';
    let rk = mem_key t cand.pe cand.time in
    t.row_occ.(rk) <- t.row_occ.(rk) + 1;
    if Op.is_mem (Graph.node (graph t) v).op then
      t.mem_use.(rk) <- t.mem_use.(rk) + 1;
    List.iter
      (fun (r : Mapping.route) ->
        List.iter
          (fun (h : Mapping.placement) ->
            Bytes.set t.occupied (occ_key t h.pe h.time) '\001';
            let k = mem_key t h.pe h.time in
            t.row_occ.(k) <- t.row_occ.(k) + 1)
          r.hops;
        t.routes <- r :: t.routes)
      routes;
    let pg = page_of_idx t cand.pe in
    if pg >= 0 then t.max_page_used <- max t.max_page_used pg

  (* Roll node [u] back out of the schedule: its slot, bus ports, row
     occupancy, and every committed route with [u] as an endpoint.
     Returns the removed placement and routes so [recommit] can restore
     the exact state if the spill does not work out. *)
  let uncommit t u =
    match t.placements.(u) with
    | None -> None
    | Some (p : Mapping.placement) ->
        t.placements.(u) <- None;
        Bytes.set t.occupied (occ_key t p.pe p.time) '\000';
        let rk = mem_key t p.pe p.time in
        t.row_occ.(rk) <- t.row_occ.(rk) - 1;
        if Op.is_mem (Graph.node (graph t) u).op then
          t.mem_use.(rk) <- t.mem_use.(rk) - 1;
        let mine, keep =
          List.partition
            (fun (r : Mapping.route) ->
              r.edge.Graph.src = u || r.edge.Graph.dst = u)
            t.routes
        in
        List.iter
          (fun (r : Mapping.route) ->
            List.iter
              (fun (h : Mapping.placement) ->
                Bytes.set t.occupied (occ_key t h.pe h.time) '\000';
                let k = mem_key t h.pe h.time in
                t.row_occ.(k) <- t.row_occ.(k) - 1)
              r.hops)
          mine;
        t.routes <- keep;
        Some (p, mine)

  let recommit t u (p : Mapping.placement) removed_routes =
    t.placements.(u) <- Some p;
    Bytes.set t.occupied (occ_key t p.pe p.time) '\001';
    let rk = mem_key t p.pe p.time in
    t.row_occ.(rk) <- t.row_occ.(rk) + 1;
    if Op.is_mem (Graph.node (graph t) u).op then
      t.mem_use.(rk) <- t.mem_use.(rk) + 1;
    List.iter
      (fun (r : Mapping.route) ->
        List.iter
          (fun (h : Mapping.placement) ->
            Bytes.set t.occupied (occ_key t h.pe h.time) '\001';
            let k = mem_key t h.pe h.time in
            t.row_occ.(k) <- t.row_occ.(k) + 1)
          r.hops;
        t.routes <- r :: t.routes)
      removed_routes

  (* Modulo scheduling window of node [v] from its placed neighbours —
     data edges and memory ordering constraints alike. *)
  let window t v =
    let lo =
      List.fold_left
        (fun acc (e : Graph.edge) ->
          if is_const t e.src then acc
          else
            match t.placements.(e.src) with
            | Some pu -> max acc (pu.time + 1 - (e.distance * t.ii))
            | None -> acc)
        0
        (Graph.preds (graph t) v)
    in
    let lo =
      List.fold_left
        (fun acc (o : Memdep.t) ->
          if o.dst <> v then acc
          else
            match t.placements.(o.src) with
            | Some pu -> max acc (pu.time + 1 - (o.distance * t.ii))
            | None -> acc)
        lo t.prep.Prep.ordering
    in
    let hi =
      List.fold_left
        (fun acc (e : Graph.edge) ->
          match t.placements.(e.dst) with
          | Some pw -> min acc (pw.time - 1 + (e.distance * t.ii))
          | None -> acc)
        max_int
        (Graph.succs (graph t) v)
    in
    let hi =
      List.fold_left
        (fun acc (o : Memdep.t) ->
          if o.src <> v then acc
          else
            match t.placements.(o.dst) with
            | Some pw -> min acc (pw.time - 1 + (o.distance * t.ii))
            | None -> acc)
        hi t.prep.Prep.ordering
    in
    (* Resource slots repeat modulo II, so [ii] distinct times cover every
       slot — but routing deadlines are not modular: a later time buys a
       longer cross-page relay chain.  The bandwidth-aware personality
       searches a second period for exactly that reason. *)
    let span = if t.bus && kind t = Paged then 2 * t.ii else t.ii in
    (lo, min hi (lo + span - 1))

  let place_node t v =
    let lo, hi = window t v in
    if hi < lo then false
    else begin
      let pes = candidate_pes t in
      Cgra_util.Rng.shuffle t.rng pes;
      let preds =
        List.filter_map
          (fun (e : Graph.edge) ->
            if is_const t e.src then None
            else
              match t.placements.(e.src) with
              | Some pu -> Some (e, pu)
              | None -> None)
          (Graph.preds (graph t) v)
      in
      let succs =
        List.filter_map
          (fun (e : Graph.edge) ->
            match t.placements.(e.dst) with
            | Some pw -> Some (e, pw)
            | None -> None)
          (Graph.succs (graph t) v)
      in
      let v_is_mem = Op.is_mem (Graph.node (graph t) v).op in
      let rec try_time time =
        if time > hi then false
        else begin
          let best = ref None in
          Array.iter
            (fun pe ->
              let cand = { Mapping.pe; time } in
              if base_free t pe time && mem_ok t ~v_is_mem pe time then
                match edges_feasible t ~preds ~succs cand with
                | None -> ()
                | Some routes ->
                    let c = cost t v ~v_is_mem cand routes in
                    (match !best with
                    | Some (c0, _, _) when c0 <= c -> ()
                    | Some _ | None -> best := Some (c, cand, routes)))
            pes;
          match !best with
          | Some ((c1, c2, c3, c4, c5), cand, routes) ->
              commit t v cand routes;
              t.debug (fun () ->
                  Printf.sprintf
                    "%s ii=%d: node %d -> pe=(%d,%d) t=%d cost=(%d,%d,%d,%d,%d)"
                    (Graph.name (graph t))
                    t.ii v cand.pe.Coord.row cand.pe.Coord.col cand.time c1 c2
                    c3 c4 c5);
              true
          | None -> try_time (time + 1)
        end
      in
      try_time lo
    end

  (* Bounded repair for the bandwidth-aware personality: when a node has
     no feasible slot, evict a placed victim, place the stuck node, then
     find the evictee a new home (re-timed or re-rowed).  Victims are
     tried in two tiers: first the stuck node's already placed graph
     neighbours — they pin its modulo window, so moving one is the only
     cure when the window has closed — then the memory ops on the most
     port-saturated (row, slot) pairs, whose eviction returns bus budget.
     Failures restore the exact pre-spill state, so a spill can only
     turn a failing attempt into a succeeding one. *)
  let try_spill t v =
    if (not t.bus) || kind t <> Paged || t.spills_left <= 0 then false
    else begin
      let neighbours =
        List.sort_uniq Int.compare
          (List.filter_map
             (fun (e : Graph.edge) ->
               let u = if e.src = v then e.dst else e.src in
               if u <> v && t.placements.(u) <> None && not (is_const t u)
               then Some u
               else None)
             (Graph.preds (graph t) v @ Graph.succs (graph t) v))
      in
      let mem_victims =
        List.sort
          (fun (u1, load1) (u2, load2) ->
            let c = Int.compare load2 load1 in
            if c <> 0 then c else Int.compare u1 u2)
          (List.concat_map
             (fun (n : Graph.node) ->
               if n.id = v || not (Op.is_mem n.op) || List.mem n.id neighbours
               then []
               else
                 match t.placements.(n.id) with
                 | None -> []
                 | Some p -> [ (n.id, t.mem_use.(mem_key t p.pe p.time)) ])
             (Graph.nodes (graph t)))
      in
      (* A closed modulo window (hi < lo) is pinned entirely by the
         placed neighbours: evicting a non-adjacent memory op cannot
         reopen it, so skip the second tier and save the doomed
         placement scans. *)
      let lo, hi = window t v in
      let victims =
        List.map (fun u -> (u, 0)) neighbours
        @ (if hi < lo then [] else mem_victims)
      in
      let rec go = function
        | [] -> false
        | (u, _) :: rest ->
            if t.spills_left <= 0 then false
            else begin
              t.spills_left <- t.spills_left - 1;
              match uncommit t u with
              | None -> go rest
              | Some (p, removed) ->
                  if place_node t v then begin
                    if place_node t u then begin
                      t.debug (fun () ->
                          Printf.sprintf
                            "%s ii=%d: spilled node %d to place node %d"
                            (Graph.name (graph t))
                            t.ii u v);
                      true
                    end
                    else begin
                      ignore (uncommit t v);
                      recommit t u p removed;
                      go rest
                    end
                  end
                  else begin
                    recommit t u p removed;
                    go rest
                  end
            end
      in
      go victims
    end

  let run t =
    let place v =
      let ok = place_node t v || try_spill t v in
      if not ok then
        t.debug (fun () ->
            Printf.sprintf "%s ii=%d: no slot for node %d (%s)"
              (Graph.name (graph t))
              t.ii v
              (Op.to_string (Graph.node (graph t) v).op));
      ok
    in
    let rec go = function
      | [] ->
          let m =
            {
              Mapping.arch = t.prep.Prep.arch;
              graph = graph t;
              ii = t.ii;
              placements = t.placements;
              routes = t.routes;
              paged = (kind t = Paged);
            }
          in
          (match Mapping.validate m with
          | Ok () -> Some m
          | Error es ->
              t.debug (fun () ->
                  Printf.sprintf "%s ii=%d: validation failed: %s"
                    (Graph.name (graph t))
                    t.ii (String.concat "; " es));
              None)
      | v :: rest ->
          (* a raced attempt that can no longer win abandons its work;
             its outcome is unobservable, so this cannot change results *)
          if t.cancel () then None
          else if place v then go rest
          else None
    in
    go t.prep.Prep.order
end

(* ----- the II / restart ladder --------------------------------------- *)

let debug_sink msg = Log.debug (fun m -> m "%s" (msg ()))

let map ?(seed = 0) ?max_ii ?(attempts = 64) ?(bus_aware = true) ?pool
    ?(trace = Cgra_trace.Trace.null) kind arch g =
  let start = mii kind arch g in
  let max_ii = Option.value ~default:(start + 40) max_ii in
  let prep = Prep.make kind arch g in
  let launched = Atomic.make 0 in
  let polish_runs = Atomic.make 0 in
  (* With [bus_aware] each II gets two attempt families: indices
     [0, bus_n) run the bandwidth-aware cost (bus-pressure pricing,
     cost-guided routing, spill repair, a second window period), and
     [bus_n, bus_n + attempts) replay the legacy family byte-identically
     — attempt [bus_n + k] here is exactly attempt [k] of the
     pre-bandwidth scheduler (same rng seed, same personality, zero bus
     term).  Any II the legacy search could close therefore still
     closes: the resulting II is monotonically no worse, by
     construction.  The bandwidth family is capped small: measured
     winners sit in its first few indices, so a deep tail would only
     tax the IIs that fail outright. *)
  let bus_n = if bus_aware then min attempts 16 else 0 in
  let per_ii = attempts + bus_n in
  let one_attempt ?cancel ?(debug = debug_sink) ~bus ~rng_a ~spread ~ii () =
    let rng =
      Cgra_util.Rng.create
        ~seed:(((seed * 31) + (ii * 1009) + rng_a) lxor 0x5bf03635)
    in
    Attempt.run (Attempt.create ~spread ~bus ?cancel ~debug prep ii rng)
  in
  let ladder_attempt ?cancel ?debug ~ii ~a () =
    let bus = a < bus_n in
    let al = if a >= bus_n then a - bus_n else a in
    one_attempt ?cancel ?debug ~bus ~rng_a:al ~spread:(al mod 2 = 1) ~ii ()
  in
  (* The (ii, attempt) ladder, in the deterministic priority order: the
     winner is always the earliest candidate here that succeeds, whether
     the ladder is walked sequentially or raced across the pool. *)
  let candidates =
    List.concat_map
      (fun i -> List.init per_ii (fun a -> (start + i, a)))
      (List.init (max 0 (max_ii - start + 1)) Fun.id)
  in
  let n_candidates = List.length candidates in
  (* Per-attempt diagnostics must read as if the ladder ran sequentially:
     when racing, each attempt logs into its own buffer and the buffers
     of every candidate at or before the winner are flushed in ladder
     order afterwards (candidates past the winner are unreachable in a
     sequential run, so their speculative diagnostics are dropped). *)
  let debug_on =
    match Logs.Src.level log_src with Some Logs.Debug -> true | _ -> false
  in
  let scan_sequential () =
    let rec go = function
      | [] -> None
      | (ii, a) :: rest -> (
          Atomic.incr launched;
          match ladder_attempt ~ii ~a () with
          | Some m -> Some ((ii, a), m)
          | None -> go rest)
    in
    go candidates
  in
  let scan_raced p =
    let bufs = Array.make (if debug_on then n_candidates else 0) [] in
    let eval ~doomed (ii, a) =
      Atomic.incr launched;
      let logs = ref [] in
      let debug =
        if debug_on then fun msg -> logs := msg () :: !logs else debug_sink
      in
      let r = ladder_attempt ~cancel:doomed ~debug ~ii ~a () in
      if debug_on then bufs.((ii - start) * per_ii + a) <- List.rev !logs;
      r
    in
    let res = Cgra_util.Pool.race_poll p eval candidates in
    if debug_on then begin
      let last =
        match res with
        | Some ((ii, a), _) -> ((ii - start) * per_ii) + a
        | None -> n_candidates - 1
      in
      for i = 0 to last do
        List.iter (fun line -> Log.debug (fun m -> m "%s" line)) bufs.(i)
      done
    end;
    res
  in
  (* Once the minimal feasible II is found, spend a few packing-personality
     attempts reducing the page footprint at that II: unused pages are
     what the multithreading runtime harvests.  The fold keeps the
     earliest of the fewest-page results, so the parallel run (which
     always evaluates all eight) agrees with the sequential one (which
     may stop early once a single page is reached — no attempt can beat
     that). *)
  let polish_pages ii first =
    if kind <> Paged then first
    else begin
      let run_one a =
        Atomic.incr polish_runs;
        one_attempt ~bus:bus_aware ~rng_a:(1000 + a) ~spread:false ~ii ()
      in
      let better best cand =
        if Mapping.n_pages_used cand < Mapping.n_pages_used best then cand
        else best
      in
      match pool with
      | Some p when Cgra_util.Pool.width p > 1 ->
          List.fold_left
            (fun best -> function Some m -> better best m | None -> best)
            first
            (Cgra_util.Pool.map p run_one (List.init 8 Fun.id))
      | Some _ | None ->
          let rec go best a =
            if a >= 8 || Mapping.n_pages_used best = 1 then best
            else
              match run_one a with
              | Some m -> go (better best m) (a + 1)
              | None -> go best (a + 1)
          in
          go first 0
    end
  in
  Cgra_trace.Trace.with_span trace "sched.race" (fun () ->
      let res =
        match pool with
        | Some p when Cgra_util.Pool.width p > 1 -> scan_raced p
        | Some _ | None -> scan_sequential ()
      in
      let res = Option.map (fun (w, m) -> (w, polish_pages (fst w) m)) res in
      if Cgra_trace.Trace.enabled trace then begin
        let l = Atomic.get launched in
        let counter name value =
          Cgra_trace.Trace.emit trace
            (Cgra_trace.Trace.Counter { name; value = float_of_int value })
        in
        counter "sched.race.candidates" n_candidates;
        counter "sched.race.launched" l;
        counter "sched.race.cancelled" (n_candidates - l);
        counter "sched.race.polish" (Atomic.get polish_runs);
        Cgra_trace.Trace.emit trace
          (Cgra_trace.Trace.Mark
             {
               name = "sched.race.winner";
               detail =
                 (match res with
                 | Some ((ii, a), _) -> Printf.sprintf "ii=%d attempt=%d" ii a
                 | None -> "none");
             })
      end;
      match res with
      | Some (_, m) -> Ok m
      | None ->
          Error
            (Printf.sprintf "Scheduler.map: %s does not fit on %s within II %d"
               (Graph.name g)
               (Format.asprintf "%a" Cgra.pp arch)
               max_ii))
