open Cgra_arch
open Cgra_dfg

let log_src = Logs.Src.create "cgra.mapper" ~doc:"CGRA modulo scheduler"

module Log = (val Logs.src_log log_src : Logs.LOG)

type kind = Unconstrained | Paged

let schedulable_nodes g =
  List.filter_map
    (fun (n : Graph.node) ->
      match n.op with Op.Const _ -> None | _ -> Some n.id)
    (Graph.nodes g)

let mii kind arch g =
  let pes =
    match kind with
    | Unconstrained -> Cgra.pe_count arch
    | Paged -> Page.used_pe_count arch.Cgra.pages
  in
  let mem_slots_per_cycle = arch.Cgra.grid.Grid.rows * arch.Cgra.mem_ports_per_row in
  (* Const nodes are not scheduled; correct the resource bound. *)
  let n_sched = List.length (schedulable_nodes g) in
  let cdiv a b = (a + b - 1) / b in
  let res =
    max (cdiv (max 1 n_sched) pes)
      (cdiv (Graph.mem_node_count g) mem_slots_per_cycle)
  in
  let extra = Memdep.as_edge_triples (Memdep.ordering g) in
  max res (Analysis.rec_mii_with ~extra g)

(* ----- per-map precomputation ---------------------------------------- *)

(* Everything here is a pure function of (kind, arch, graph): the same
   for all (ii, attempt) candidates of one [map] call, so it is computed
   once and shared — read-only — by every attempt, including attempts
   racing on other domains. *)
module Prep = struct
  type t = {
    kind : kind;
    arch : Cgra.t;
    graph : Graph.t;
    ordering : Memdep.t list;
        (* memory ordering constraints: timing-only edges *)
    order : int list;  (* node placement order (rank, height, asap, id) *)
    all_pes : Coord.t array;  (* row-major *)
    nbrs_self : Coord.t list array;
        (* pe index -> mesh neighbours (N/E/S/W) followed by the PE
           itself: the exact expansion list the router uses *)
    page_idx : int array;  (* pe index -> page, or -1 when unpaged *)
    boundary : bool array;
        (* pe index -> boundary-adjacent to the next page (ops with
           unplaced consumers prefer these under the spread personality) *)
    is_band : bool;  (* band-shaped pages: serpentine adjacency applies *)
    mem_ports : int;
  }

  let make kind arch graph =
    let grid = arch.Cgra.grid in
    let pages = arch.Cgra.pages in
    let n = Grid.pe_count grid in
    let all_pes = Array.of_list (Grid.all_pes grid) in
    let nbrs_self =
      Array.map (fun pe -> Grid.neighbors grid pe @ [ pe ]) all_pes
    in
    let page_idx =
      Array.map
        (fun pe -> Option.value ~default:(-1) (Page.page_of_pe pages pe))
        all_pes
    in
    let boundary = Array.make n false in
    for p = 0 to Page.n_pages pages - 2 do
      List.iter
        (fun (a, _) -> boundary.(Grid.index grid a) <- true)
        (Page.boundary_pairs pages p)
    done;
    let order =
      let rank = Analysis.scc_topo_rank graph in
      let h = Analysis.height graph in
      let a = Analysis.asap graph in
      List.sort
        (fun v w ->
          let c = Int.compare rank.(v) rank.(w) in
          if c <> 0 then c
          else
            let c = Int.compare h.(w) h.(v) in
            if c <> 0 then c
            else
              let c = Int.compare a.(v) a.(w) in
              if c <> 0 then c else Int.compare v w)
        (schedulable_nodes graph)
    in
    {
      kind;
      arch;
      graph;
      ordering = Memdep.ordering graph;
      order;
      all_pes;
      nbrs_self;
      page_idx;
      boundary;
      is_band = not (Page.is_rect pages);
      mem_ports = arch.Cgra.mem_ports_per_row;
    }
end

(* ----- one scheduling attempt ---------------------------------------- *)

module Attempt = struct
  type t = {
    prep : Prep.t;
    ii : int;
    spread : bool;
        (* search personality: [false] packs operations into the fewest
           pages (maximizing the fabric left for other threads); [true]
           uses pages freely, favouring a lower II.  Restart attempts
           alternate between the two. *)
    rng : Cgra_util.Rng.t;
    cancel : unit -> bool;
        (* polled between node placements: [true] once a better race
           candidate has won, making this attempt's outcome irrelevant *)
    debug : (unit -> string) -> unit;
        (* failure-diagnostics sink: the direct Logs emitter when running
           sequentially, a per-attempt buffer when racing *)
    placements : Mapping.placement option array;
    occupied : Bytes.t;  (* pe_index * ii + slot *)
    mem_use : int array;  (* row * ii + slot -> count *)
    overlay : int array;  (* generation stamps, pe_index * ii + slot *)
    mutable overlay_gen : int;
    mutable routes : Mapping.route list;
    mutable max_page_used : int;  (* -1 when none *)
  }

  let create ?(spread = false) ?(cancel = fun () -> false) ~debug prep ii rng =
    let n_pes = Array.length prep.Prep.all_pes in
    {
      prep;
      ii;
      spread;
      rng;
      cancel;
      debug;
      placements = Array.make (Graph.n_nodes prep.Prep.graph) None;
      occupied = Bytes.make (n_pes * ii) '\000';
      mem_use = Array.make (prep.Prep.arch.Cgra.grid.Grid.rows * ii) 0;
      overlay = Array.make (n_pes * ii) 0;
      overlay_gen = 0;
      routes = [];
      max_page_used = -1;
    }

  let grid t = t.prep.Prep.arch.Cgra.grid

  let graph t = t.prep.Prep.graph

  let kind t = t.prep.Prep.kind

  let slot t time = time mod t.ii

  (* Packed single-int keys: with [slot < ii] the pair (pe index, slot)
     packs bijectively into [pe_index * ii + slot], and (row, slot) into
     [row * ii + slot] — a dense array index, no hashing in the
     placement inner loop. *)
  let occ_key t pe time = (Grid.index (grid t) pe * t.ii) + slot t time

  let mem_key t pe time = (pe.Coord.row * t.ii) + slot t time

  let base_free t pe time = Bytes.get t.occupied (occ_key t pe time) = '\000'

  let is_const t v =
    match (Graph.node (graph t) v).op with Op.Const _ -> true | _ -> false

  let page_of_idx t pe = t.prep.Prep.page_idx.(Grid.index (grid t) pe)

  (* Reach relation for reads: same PE or mesh neighbour; for band pages
     under paging constraints, same-page reads must additionally be
     path-consecutive so that page reversal stays legal. *)
  let read_adjacent t ~same_page a b =
    Coord.equal a b
    || Coord.adjacent a b
       &&
       if same_page && kind t = Paged && t.prep.Prep.is_band then
         abs (Grid.serp_index (grid t) a - Grid.serp_index (grid t) b) = 1
       else true

  (* Adjacency for the boundary crossing of a cross-page read. *)
  let cross_adjacent t a b =
    Coord.adjacent a b
    && ((not t.prep.Prep.is_band)
       || abs (Grid.serp_index (grid t) a - Grid.serp_index (grid t) b) = 1)

  (* Feasibility of one edge given both endpoints, with an overlay of
     tentatively routed hops.  [producer]/[consumer] are the edge's
     endpoint placements; returns the hops needed (possibly []). *)
  let edge_feasible t (e : Graph.edge) ~(producer : Mapping.placement)
      ~(consumer : Mapping.placement) =
    let read_time = consumer.time + (e.distance * t.ii) in
    let gen = t.overlay_gen in
    let free pe time =
      let k = occ_key t pe time in
      Bytes.get t.occupied k = '\000' && t.overlay.(k) <> gen
    in
    let neighbors pe = t.prep.Prep.nbrs_self.(Grid.index (grid t) pe) in
    match kind t with
    | Unconstrained ->
        Router.find ~grid:(grid t) ~ii:t.ii ~free ~allowed:(fun _ -> true)
          ~read_adjacent:(read_adjacent t ~same_page:false)
          ~neighbors ~src:producer ~dst_pe:consumer.pe ~deadline:read_time
          ~max_hops:8 ()
    | Paged -> (
        match (page_of_idx t producer.pe, page_of_idx t consumer.pe) with
        | pu, pv when pu >= 0 && pv >= pu ->
            (* Values may relay forward through intermediate pages; each
               step stays in its page or crosses one boundary. *)
            let allowed pe =
              let p = page_of_idx t pe in
              p >= pu && p <= pv
            in
            let step a b =
              let pa = page_of_idx t a and pb = page_of_idx t b in
              if pa < 0 || pb < 0 then false
              else if pb = pa then read_adjacent t ~same_page:true a b
              else if pb = pa + 1 then cross_adjacent t a b
              else false
            in
            Router.find ~grid:(grid t) ~ii:t.ii ~free ~allowed ~read_adjacent:step
              ~neighbors ~src:producer ~dst_pe:consumer.pe ~deadline:read_time
              ~max_hops:(2 * (pv - pu + 4))
              ()
        | _, _ -> None)

  (* All edges of candidate [v] at [cand] whose other endpoint is already
     placed — [preds]/[succs] are precomputed once per node in
     [place_node].  Returns the routes to commit, or None if infeasible. *)
  let edges_feasible t ~preds ~succs (cand : Mapping.placement) =
    t.overlay_gen <- t.overlay_gen + 1;
    let gen = t.overlay_gen in
    let add_overlay hops =
      List.iter
        (fun (h : Mapping.placement) -> t.overlay.(occ_key t h.pe h.time) <- gen)
        hops
    in
    let rec go_succs acc = function
      | [] -> Some acc
      | (e, pw) :: rest -> (
          match edge_feasible t e ~producer:cand ~consumer:pw with
          | None -> None
          | Some [] -> go_succs acc rest
          | Some hops ->
              add_overlay hops;
              go_succs ({ Mapping.edge = e; hops } :: acc) rest)
    in
    let rec go_preds acc = function
      | [] -> go_succs acc succs
      | (e, pu) :: rest -> (
          match edge_feasible t e ~producer:pu ~consumer:cand with
          | None -> None
          | Some [] -> go_preds acc rest
          | Some hops ->
              add_overlay hops;
              go_preds ({ Mapping.edge = e; hops } :: acc) rest)
    in
    go_preds [] preds

  let mem_ok t ~v_is_mem pe time =
    (not v_is_mem) || t.mem_use.(mem_key t pe time) < t.prep.Prep.mem_ports

  let candidate_pes t =
    let all = t.prep.Prep.all_pes in
    match kind t with
    | Unconstrained -> Array.copy all
    | Paged ->
        (* Only pages forming a contiguous prefix may be used; allow one
           fresh page beyond the current maximum. *)
        let page_idx = t.prep.Prep.page_idx in
        let keep i = page_idx.(i) >= 0 && page_idx.(i) <= t.max_page_used + 1 in
        let count = ref 0 in
        Array.iteri (fun i _ -> if keep i then incr count) all;
        let out = Array.make !count all.(0) in
        let j = ref 0 in
        Array.iteri
          (fun i pe ->
            if keep i then begin
              out.(!j) <- pe;
              incr j
            end)
          all;
        out

  let has_unplaced_consumer t v =
    List.exists
      (fun (e : Graph.edge) -> t.placements.(e.dst) = None)
      (Graph.succs (graph t) v)

  (* Cost of a feasible candidate.  Packing personality: fewer fresh
     pages and lower page index first (harvestable fabric); spreading
     personality: fewer routing hops and boundary access for ops whose
     consumers are still unplaced (lower II pressure). *)
  let cost t v (cand : Mapping.placement) routes =
    let hops =
      List.fold_left (fun acc (r : Mapping.route) -> acc + List.length r.hops) 0 routes
    in
    match kind t with
    | Unconstrained -> (0, 0, hops, 0, Cgra_util.Rng.int t.rng 1024)
    | Paged when t.spread ->
        let interior_penalty =
          if
            has_unplaced_consumer t v
            && not t.prep.Prep.boundary.(Grid.index (grid t) cand.pe)
          then 1
          else 0
        in
        (0, hops, interior_penalty, 0, Cgra_util.Rng.int t.rng 1024)
    | Paged ->
        let pg = max 0 (page_of_idx t cand.pe) in
        let fresh = if pg > t.max_page_used then 1 else 0 in
        (fresh, pg, hops, 0, Cgra_util.Rng.int t.rng 1024)

  let commit t v (cand : Mapping.placement) routes =
    t.placements.(v) <- Some cand;
    Bytes.set t.occupied (occ_key t cand.pe cand.time) '\001';
    if Op.is_mem (Graph.node (graph t) v).op then begin
      let key = mem_key t cand.pe cand.time in
      t.mem_use.(key) <- t.mem_use.(key) + 1
    end;
    List.iter
      (fun (r : Mapping.route) ->
        List.iter
          (fun (h : Mapping.placement) ->
            Bytes.set t.occupied (occ_key t h.pe h.time) '\001')
          r.hops;
        t.routes <- r :: t.routes)
      routes;
    let pg = page_of_idx t cand.pe in
    if pg >= 0 then t.max_page_used <- max t.max_page_used pg

  (* Modulo scheduling window of node [v] from its placed neighbours —
     data edges and memory ordering constraints alike. *)
  let window t v =
    let lo =
      List.fold_left
        (fun acc (e : Graph.edge) ->
          if is_const t e.src then acc
          else
            match t.placements.(e.src) with
            | Some pu -> max acc (pu.time + 1 - (e.distance * t.ii))
            | None -> acc)
        0
        (Graph.preds (graph t) v)
    in
    let lo =
      List.fold_left
        (fun acc (o : Memdep.t) ->
          if o.dst <> v then acc
          else
            match t.placements.(o.src) with
            | Some pu -> max acc (pu.time + 1 - (o.distance * t.ii))
            | None -> acc)
        lo t.prep.Prep.ordering
    in
    let hi =
      List.fold_left
        (fun acc (e : Graph.edge) ->
          match t.placements.(e.dst) with
          | Some pw -> min acc (pw.time - 1 + (e.distance * t.ii))
          | None -> acc)
        max_int
        (Graph.succs (graph t) v)
    in
    let hi =
      List.fold_left
        (fun acc (o : Memdep.t) ->
          if o.src <> v then acc
          else
            match t.placements.(o.dst) with
            | Some pw -> min acc (pw.time - 1 + (o.distance * t.ii))
            | None -> acc)
        hi t.prep.Prep.ordering
    in
    (lo, min hi (lo + t.ii - 1))

  let place_node t v =
    let lo, hi = window t v in
    if hi < lo then false
    else begin
      let pes = candidate_pes t in
      Cgra_util.Rng.shuffle t.rng pes;
      let preds =
        List.filter_map
          (fun (e : Graph.edge) ->
            if is_const t e.src then None
            else
              match t.placements.(e.src) with
              | Some pu -> Some (e, pu)
              | None -> None)
          (Graph.preds (graph t) v)
      in
      let succs =
        List.filter_map
          (fun (e : Graph.edge) ->
            match t.placements.(e.dst) with
            | Some pw -> Some (e, pw)
            | None -> None)
          (Graph.succs (graph t) v)
      in
      let v_is_mem = Op.is_mem (Graph.node (graph t) v).op in
      let rec try_time time =
        if time > hi then false
        else begin
          let best = ref None in
          Array.iter
            (fun pe ->
              let cand = { Mapping.pe; time } in
              if base_free t pe time && mem_ok t ~v_is_mem pe time then
                match edges_feasible t ~preds ~succs cand with
                | None -> ()
                | Some routes ->
                    let c = cost t v cand routes in
                    (match !best with
                    | Some (c0, _, _) when c0 <= c -> ()
                    | Some _ | None -> best := Some (c, cand, routes)))
            pes;
          match !best with
          | Some (_, cand, routes) ->
              commit t v cand routes;
              true
          | None -> try_time (time + 1)
        end
      in
      try_time lo
    end

  let run t =
    let place v =
      let ok = place_node t v in
      if not ok then
        t.debug (fun () ->
            Printf.sprintf "%s ii=%d: no slot for node %d (%s)"
              (Graph.name (graph t))
              t.ii v
              (Op.to_string (Graph.node (graph t) v).op));
      ok
    in
    let rec go = function
      | [] ->
          let m =
            {
              Mapping.arch = t.prep.Prep.arch;
              graph = graph t;
              ii = t.ii;
              placements = t.placements;
              routes = t.routes;
              paged = (kind t = Paged);
            }
          in
          (match Mapping.validate m with
          | Ok () -> Some m
          | Error es ->
              t.debug (fun () ->
                  Printf.sprintf "%s ii=%d: validation failed: %s"
                    (Graph.name (graph t))
                    t.ii (String.concat "; " es));
              None)
      | v :: rest ->
          (* a raced attempt that can no longer win abandons its work;
             its outcome is unobservable, so this cannot change results *)
          if t.cancel () then None
          else if place v then go rest
          else None
    in
    go t.prep.Prep.order
end

(* ----- the II / restart ladder --------------------------------------- *)

let debug_sink msg = Log.debug (fun m -> m "%s" (msg ()))

let map ?(seed = 0) ?max_ii ?(attempts = 64) ?pool
    ?(trace = Cgra_trace.Trace.null) kind arch g =
  let start = mii kind arch g in
  let max_ii = Option.value ~default:(start + 40) max_ii in
  let prep = Prep.make kind arch g in
  let launched = Atomic.make 0 in
  let polish_runs = Atomic.make 0 in
  let one_attempt ?cancel ?(debug = debug_sink) ~ii ~a ~spread () =
    let rng =
      Cgra_util.Rng.create ~seed:(((seed * 31) + (ii * 1009) + a) lxor 0x5bf03635)
    in
    Attempt.run (Attempt.create ~spread ?cancel ~debug prep ii rng)
  in
  (* The (ii, attempt) ladder, in the deterministic priority order: the
     winner is always the earliest candidate here that succeeds, whether
     the ladder is walked sequentially or raced across the pool. *)
  let candidates =
    List.concat_map
      (fun i -> List.init attempts (fun a -> (start + i, a)))
      (List.init (max 0 (max_ii - start + 1)) Fun.id)
  in
  let n_candidates = List.length candidates in
  (* Per-attempt diagnostics must read as if the ladder ran sequentially:
     when racing, each attempt logs into its own buffer and the buffers
     of every candidate at or before the winner are flushed in ladder
     order afterwards (candidates past the winner are unreachable in a
     sequential run, so their speculative diagnostics are dropped). *)
  let debug_on =
    match Logs.Src.level log_src with Some Logs.Debug -> true | _ -> false
  in
  let scan_sequential () =
    let rec go = function
      | [] -> None
      | (ii, a) :: rest -> (
          Atomic.incr launched;
          match one_attempt ~ii ~a ~spread:(a mod 2 = 1) () with
          | Some m -> Some ((ii, a), m)
          | None -> go rest)
    in
    go candidates
  in
  let scan_raced p =
    let bufs = Array.make (if debug_on then n_candidates else 0) [] in
    let eval ~doomed (ii, a) =
      Atomic.incr launched;
      let logs = ref [] in
      let debug =
        if debug_on then fun msg -> logs := msg () :: !logs else debug_sink
      in
      let r = one_attempt ~cancel:doomed ~debug ~ii ~a ~spread:(a mod 2 = 1) () in
      if debug_on then bufs.((ii - start) * attempts + a) <- List.rev !logs;
      r
    in
    let res = Cgra_util.Pool.race_poll p eval candidates in
    if debug_on then begin
      let last =
        match res with
        | Some ((ii, a), _) -> ((ii - start) * attempts) + a
        | None -> n_candidates - 1
      in
      for i = 0 to last do
        List.iter (fun line -> Log.debug (fun m -> m "%s" line)) bufs.(i)
      done
    end;
    res
  in
  (* Once the minimal feasible II is found, spend a few packing-personality
     attempts reducing the page footprint at that II: unused pages are
     what the multithreading runtime harvests.  The fold keeps the
     earliest of the fewest-page results, so the parallel run (which
     always evaluates all eight) agrees with the sequential one (which
     may stop early once a single page is reached — no attempt can beat
     that). *)
  let polish_pages ii first =
    if kind <> Paged then first
    else begin
      let run_one a =
        Atomic.incr polish_runs;
        one_attempt ~ii ~a:(1000 + a) ~spread:false ()
      in
      let better best cand =
        if Mapping.n_pages_used cand < Mapping.n_pages_used best then cand
        else best
      in
      match pool with
      | Some p when Cgra_util.Pool.width p > 1 ->
          List.fold_left
            (fun best -> function Some m -> better best m | None -> best)
            first
            (Cgra_util.Pool.map p run_one (List.init 8 Fun.id))
      | Some _ | None ->
          let rec go best a =
            if a >= 8 || Mapping.n_pages_used best = 1 then best
            else
              match run_one a with
              | Some m -> go (better best m) (a + 1)
              | None -> go best (a + 1)
          in
          go first 0
    end
  in
  Cgra_trace.Trace.with_span trace "sched.race" (fun () ->
      let res =
        match pool with
        | Some p when Cgra_util.Pool.width p > 1 -> scan_raced p
        | Some _ | None -> scan_sequential ()
      in
      let res = Option.map (fun (w, m) -> (w, polish_pages (fst w) m)) res in
      if Cgra_trace.Trace.enabled trace then begin
        let l = Atomic.get launched in
        let counter name value =
          Cgra_trace.Trace.emit trace
            (Cgra_trace.Trace.Counter { name; value = float_of_int value })
        in
        counter "sched.race.candidates" n_candidates;
        counter "sched.race.launched" l;
        counter "sched.race.cancelled" (n_candidates - l);
        counter "sched.race.polish" (Atomic.get polish_runs);
        Cgra_trace.Trace.emit trace
          (Cgra_trace.Trace.Mark
             {
               name = "sched.race.winner";
               detail =
                 (match res with
                 | Some ((ii, a), _) -> Printf.sprintf "ii=%d attempt=%d" ii a
                 | None -> "none");
             })
      end;
      match res with
      | Some (_, m) -> Ok m
      | None ->
          Error
            (Printf.sprintf "Scheduler.map: %s does not fit on %s within II %d"
               (Graph.name g)
               (Format.asprintf "%a" Cgra.pp arch)
               max_ii))
