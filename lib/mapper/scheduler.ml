open Cgra_arch
open Cgra_dfg

let log_src = Logs.Src.create "cgra.mapper" ~doc:"CGRA modulo scheduler"

module Log = (val Logs.src_log log_src : Logs.LOG)

type kind = Unconstrained | Paged

let schedulable_nodes g =
  List.filter_map
    (fun (n : Graph.node) ->
      match n.op with Op.Const _ -> None | _ -> Some n.id)
    (Graph.nodes g)

let mii kind arch g =
  let pes =
    match kind with
    | Unconstrained -> Cgra.pe_count arch
    | Paged -> Page.used_pe_count arch.Cgra.pages
  in
  let mem_slots_per_cycle = arch.Cgra.grid.Grid.rows * arch.Cgra.mem_ports_per_row in
  (* Const nodes are not scheduled; correct the resource bound. *)
  let n_sched = List.length (schedulable_nodes g) in
  let cdiv a b = (a + b - 1) / b in
  let res =
    max (cdiv (max 1 n_sched) pes)
      (cdiv (Graph.mem_node_count g) mem_slots_per_cycle)
  in
  let extra = Memdep.as_edge_triples (Memdep.ordering g) in
  max res (Analysis.rec_mii_with ~extra g)

(* ----- one scheduling attempt ---------------------------------------- *)

module Attempt = struct
  type t = {
    kind : kind;
    arch : Cgra.t;
    graph : Graph.t;
    ii : int;
    spread : bool;
        (* search personality: [false] packs operations into the fewest
           pages (maximizing the fabric left for other threads); [true]
           uses pages freely, favouring a lower II.  Restart attempts
           alternate between the two. *)
    rng : Cgra_util.Rng.t;
    ordering : Memdep.t list;
        (* memory ordering constraints: timing-only edges *)
    placements : Mapping.placement option array;
    occupied : (int, unit) Hashtbl.t;  (* pe_index * ii + slot *)
    mem_use : (int, int) Hashtbl.t;  (* row * ii + slot -> count *)
    mutable routes : Mapping.route list;
    mutable max_page_used : int;  (* -1 when none *)
  }

  let create ?(spread = false) kind arch graph ii rng =
    {
      kind;
      arch;
      graph;
      ii;
      spread;
      rng;
      ordering = Memdep.ordering graph;
      placements = Array.make (Graph.n_nodes graph) None;
      occupied = Hashtbl.create 128;
      mem_use = Hashtbl.create 32;
      routes = [];
      max_page_used = -1;
    }

  let grid t = t.arch.Cgra.grid

  let pages t = t.arch.Cgra.pages

  let slot t time = time mod t.ii

  (* Packed single-int hashtable keys: with [slot < ii] the pair
     (pe index, slot) packs bijectively into [pe_index * ii + slot], and
     (row, slot) into [row * ii + slot] — no tuple allocation per probe
     in the placement inner loop. *)
  let occ_key t pe time = (Grid.index (grid t) pe * t.ii) + slot t time

  let mem_key t pe time = (pe.Coord.row * t.ii) + slot t time

  let base_free t pe time = not (Hashtbl.mem t.occupied (occ_key t pe time))

  let is_const t v =
    match (Graph.node t.graph v).op with Op.Const _ -> true | _ -> false

  let page_of t pe = Page.page_of_pe (pages t) pe

  (* Reach relation for reads: same PE or mesh neighbour; for band pages
     under paging constraints, same-page reads must additionally be
     path-consecutive so that page reversal stays legal. *)
  let read_adjacent t ~same_page a b =
    Coord.equal a b
    || Coord.adjacent a b
       &&
       if same_page && t.kind = Paged && not (Page.is_rect (pages t)) then
         abs (Grid.serp_index (grid t) a - Grid.serp_index (grid t) b) = 1
       else true

  (* Adjacency for the boundary crossing of a cross-page read. *)
  let cross_adjacent t a b =
    Coord.adjacent a b
    && (Page.is_rect (pages t)
       || abs (Grid.serp_index (grid t) a - Grid.serp_index (grid t) b) = 1)

  (* Feasibility of one edge given both endpoints, with an overlay of
     tentatively routed hops.  [producer]/[consumer] are the edge's
     endpoint placements; returns the hops needed (possibly []). *)
  let edge_feasible t ~overlay (e : Graph.edge) ~(producer : Mapping.placement)
      ~(consumer : Mapping.placement) =
    let read_time = consumer.time + (e.distance * t.ii) in
    let free pe time =
      base_free t pe time && not (Hashtbl.mem overlay (occ_key t pe time))
    in
    match t.kind with
    | Unconstrained ->
        Router.find ~grid:(grid t) ~ii:t.ii ~free ~allowed:(fun _ -> true)
          ~read_adjacent:(read_adjacent t ~same_page:false)
          ~src:producer ~dst_pe:consumer.pe ~deadline:read_time ~max_hops:8 ()
    | Paged -> (
        match (page_of t producer.pe, page_of t consumer.pe) with
        | Some pu, Some pv when pv >= pu ->
            (* Values may relay forward through intermediate pages; each
               step stays in its page or crosses one boundary. *)
            let allowed pe =
              match page_of t pe with Some p -> p >= pu && p <= pv | None -> false
            in
            let step a b =
              match (page_of t a, page_of t b) with
              | Some pa, Some pb when pb = pa -> read_adjacent t ~same_page:true a b
              | Some pa, Some pb when pb = pa + 1 -> cross_adjacent t a b
              | Some _, Some _ | None, _ | _, None -> false
            in
            Router.find ~grid:(grid t) ~ii:t.ii ~free ~allowed ~read_adjacent:step
              ~src:producer ~dst_pe:consumer.pe ~deadline:read_time
              ~max_hops:(2 * (pv - pu + 4))
              ()
        | Some _, Some _ | None, _ | _, None -> None)

  (* All edges of candidate [v] at [cand] whose other endpoint is already
     placed.  Returns the routes to commit, or None if infeasible. *)
  let edges_feasible t v (cand : Mapping.placement) =
    let overlay = Hashtbl.create 8 in
    let add_overlay hops =
      List.iter
        (fun (h : Mapping.placement) ->
          Hashtbl.replace overlay (occ_key t h.pe h.time) ())
        hops
    in
    let rec go acc = function
      | [] -> Some acc
      | (e, producer, consumer) :: rest -> (
          match edge_feasible t ~overlay e ~producer ~consumer with
          | None -> None
          | Some [] -> go acc rest
          | Some hops ->
              add_overlay hops;
              go ({ Mapping.edge = e; hops } :: acc) rest)
    in
    let pred_edges =
      List.filter_map
        (fun (e : Graph.edge) ->
          if is_const t e.src then None
          else
            match t.placements.(e.src) with
            | Some pu -> Some (e, pu, cand)
            | None -> None)
        (Graph.preds t.graph v)
    in
    let succ_edges =
      List.filter_map
        (fun (e : Graph.edge) ->
          match t.placements.(e.dst) with
          | Some pw -> Some (e, cand, pw)
          | None -> None)
        (Graph.succs t.graph v)
    in
    go [] (pred_edges @ succ_edges)

  let mem_ok t v pe time =
    if not (Op.is_mem (Graph.node t.graph v).op) then true
    else
      Option.value ~default:0 (Hashtbl.find_opt t.mem_use (mem_key t pe time))
      < t.arch.Cgra.mem_ports_per_row

  let candidate_pes t =
    let all = Grid.all_pes (grid t) in
    match t.kind with
    | Unconstrained -> all
    | Paged ->
        (* Only pages forming a contiguous prefix may be used; allow one
           fresh page beyond the current maximum. *)
        List.filter
          (fun pe ->
            match page_of t pe with
            | Some pg -> pg <= t.max_page_used + 1
            | None -> false)
          all

  (* PEs of each page that are boundary-adjacent to the next page.  Ops
     with unplaced consumers prefer these: their values can still leave
     the page without relays. *)
  let boundary_pes t =
    let tbl = Hashtbl.create 16 in
    for n = 0 to Page.n_pages (pages t) - 2 do
      List.iter
        (fun (a, _) -> Hashtbl.replace tbl (Grid.index (grid t) a) ())
        (Page.boundary_pairs (pages t) n)
    done;
    tbl

  let has_unplaced_consumer t v =
    List.exists
      (fun (e : Graph.edge) -> t.placements.(e.dst) = None)
      (Graph.succs t.graph v)

  (* Cost of a feasible candidate.  Packing personality: fewer fresh
     pages and lower page index first (harvestable fabric); spreading
     personality: fewer routing hops and boundary access for ops whose
     consumers are still unplaced (lower II pressure). *)
  let cost t ~boundary v (cand : Mapping.placement) routes =
    let hops =
      List.fold_left (fun acc (r : Mapping.route) -> acc + List.length r.hops) 0 routes
    in
    match t.kind with
    | Unconstrained -> (0, 0, hops, 0, Cgra_util.Rng.int t.rng 1024)
    | Paged when t.spread ->
        let interior_penalty =
          if
            has_unplaced_consumer t v
            && not (Hashtbl.mem boundary (Grid.index (grid t) cand.pe))
          then 1
          else 0
        in
        (0, hops, interior_penalty, 0, Cgra_util.Rng.int t.rng 1024)
    | Paged ->
        let pg = Option.value ~default:0 (page_of t cand.pe) in
        let fresh = if pg > t.max_page_used then 1 else 0 in
        (fresh, pg, hops, 0, Cgra_util.Rng.int t.rng 1024)

  let commit t v (cand : Mapping.placement) routes =
    t.placements.(v) <- Some cand;
    Hashtbl.replace t.occupied (occ_key t cand.pe cand.time) ();
    if Op.is_mem (Graph.node t.graph v).op then begin
      let key = mem_key t cand.pe cand.time in
      let n = Option.value ~default:0 (Hashtbl.find_opt t.mem_use key) in
      Hashtbl.replace t.mem_use key (n + 1)
    end;
    List.iter
      (fun (r : Mapping.route) ->
        List.iter
          (fun (h : Mapping.placement) ->
            Hashtbl.replace t.occupied (occ_key t h.pe h.time) ())
          r.hops;
        t.routes <- r :: t.routes)
      routes;
    (match page_of t cand.pe with
    | Some pg -> t.max_page_used <- max t.max_page_used pg
    | None -> ())

  (* Modulo scheduling window of node [v] from its placed neighbours —
     data edges and memory ordering constraints alike. *)
  let window t v =
    let lo =
      List.fold_left
        (fun acc (e : Graph.edge) ->
          if is_const t e.src then acc
          else
            match t.placements.(e.src) with
            | Some pu -> max acc (pu.time + 1 - (e.distance * t.ii))
            | None -> acc)
        0 (Graph.preds t.graph v)
    in
    let lo =
      List.fold_left
        (fun acc (o : Memdep.t) ->
          if o.dst <> v then acc
          else
            match t.placements.(o.src) with
            | Some pu -> max acc (pu.time + 1 - (o.distance * t.ii))
            | None -> acc)
        lo t.ordering
    in
    let hi =
      List.fold_left
        (fun acc (e : Graph.edge) ->
          match t.placements.(e.dst) with
          | Some pw -> min acc (pw.time - 1 + (e.distance * t.ii))
          | None -> acc)
        max_int (Graph.succs t.graph v)
    in
    let hi =
      List.fold_left
        (fun acc (o : Memdep.t) ->
          if o.src <> v then acc
          else
            match t.placements.(o.dst) with
            | Some pw -> min acc (pw.time - 1 + (o.distance * t.ii))
            | None -> acc)
        hi t.ordering
    in
    (lo, min hi (lo + t.ii - 1))

  let place_node t ~boundary v =
    let lo, hi = window t v in
    if hi < lo then false
    else begin
      let pes = Array.of_list (candidate_pes t) in
      Cgra_util.Rng.shuffle t.rng pes;
      let rec try_time time =
        if time > hi then false
        else begin
          let best = ref None in
          Array.iter
            (fun pe ->
              let cand = { Mapping.pe; time } in
              if base_free t pe time && mem_ok t v pe time then
                match edges_feasible t v cand with
                | None -> ()
                | Some routes ->
                    let c = cost t ~boundary v cand routes in
                    (match !best with
                    | Some (c0, _, _) when c0 <= c -> ()
                    | Some _ | None -> best := Some (c, cand, routes)))
            pes;
          match !best with
          | Some (_, cand, routes) ->
              commit t v cand routes;
              true
          | None -> try_time (time + 1)
        end
      in
      try_time lo
    end

  let run t =
    let order =
      let rank = Analysis.scc_topo_rank t.graph in
      let h = Analysis.height t.graph in
      let a = Analysis.asap t.graph in
      List.sort
        (fun v w ->
          let c = Int.compare rank.(v) rank.(w) in
          if c <> 0 then c
          else
            let c = Int.compare h.(w) h.(v) in
            if c <> 0 then c
            else
              let c = Int.compare a.(v) a.(w) in
              if c <> 0 then c else Int.compare v w)
        (schedulable_nodes t.graph)
    in
    let boundary = boundary_pes t in
    let place v =
      let ok = place_node t ~boundary v in
      if not ok then
        Log.debug (fun m ->
            m "%s ii=%d: no slot for node %d (%s)" (Graph.name t.graph) t.ii v
              (Op.to_string (Graph.node t.graph v).op));
      ok
    in
    if List.for_all place order then
      let m =
        {
          Mapping.arch = t.arch;
          graph = t.graph;
          ii = t.ii;
          placements = t.placements;
          routes = t.routes;
          paged = (t.kind = Paged);
        }
      in
      match Mapping.validate m with
      | Ok () -> Some m
      | Error es ->
          Log.debug (fun m ->
              m "%s ii=%d: validation failed: %s" (Graph.name t.graph) t.ii
                (String.concat "; " es));
          None
    else None
end

let map ?(seed = 0) ?max_ii ?(attempts = 64) kind arch g =
  let start = mii kind arch g in
  let max_ii = Option.value ~default:(start + 40) max_ii in
  let one_attempt ~ii ~a ~spread =
    let rng =
      Cgra_util.Rng.create ~seed:(((seed * 31) + (ii * 1009) + a) lxor 0x5bf03635)
    in
    Attempt.run (Attempt.create ~spread kind arch g ii rng)
  in
  (* Once the minimal feasible II is found, spend a few packing-personality
     attempts reducing the page footprint at that II: unused pages are
     what the multithreading runtime harvests. *)
  let polish_pages ii first =
    let better best cand =
      if Mapping.n_pages_used cand < Mapping.n_pages_used best then cand else best
    in
    let rec go best a =
      if a >= 8 then best
      else
        match one_attempt ~ii ~a:(1000 + a) ~spread:false with
        | Some m -> go (better best m) (a + 1)
        | None -> go best (a + 1)
    in
    if kind = Paged then go first 0 else first
  in
  let rec try_ii ii =
    if ii > max_ii then
      Error
        (Printf.sprintf "Scheduler.map: %s does not fit on %s within II %d"
           (Graph.name g)
           (Format.asprintf "%a" Cgra.pp arch)
           max_ii)
    else
      let rec try_attempt a =
        if a >= attempts then try_ii (ii + 1)
        else
          match one_attempt ~ii ~a ~spread:(a mod 2 = 1) with
          | Some m -> Ok (polish_pages ii m)
          | None -> try_attempt (a + 1)
      in
      try_attempt 0
  in
  try_ii start
