type range = { base : int; len : int }

type policy = Halving | Repack_equal | Cost_halving

type seg = { range : range; owner : int option (* None = free *) }

type t = {
  total : int;
  policy : policy;
  mutable segs : seg list;  (* sorted by base, covering [0, total) *)
  desired : (int, int) Hashtbl.t;
  trace : Cgra_trace.Trace.t;
}

let create ?(policy = Halving) ?(trace = Cgra_trace.Trace.null) ~total_pages () =
  if total_pages <= 0 then invalid_arg "Allocator.create: no pages";
  {
    total = total_pages;
    policy;
    segs = [ { range = { base = 0; len = total_pages }; owner = None } ];
    desired = Hashtbl.create 16;
    trace;
  }

let normalize segs =
  (* merge adjacent free segments; keep sorted *)
  let sorted = List.sort (fun a b -> compare a.range.base b.range.base) segs in
  let rec merge = function
    | ({ owner = None; range = r1 } as a) :: { owner = None; range = r2 } :: rest
      when r1.base + r1.len = r2.base ->
        merge ({ a with range = { r1 with len = r1.len + r2.len } } :: rest)
    | s :: rest -> s :: merge rest
    | [] -> []
  in
  merge sorted

let free_pages t =
  List.fold_left
    (fun acc s -> match s.owner with None -> acc + s.range.len | Some _ -> acc)
    0 t.segs

let clients t =
  List.filter_map
    (fun s -> Option.map (fun o -> (o, s.range)) s.owner)
    t.segs

let allocation t ~client =
  List.find_map
    (fun s -> if s.owner = Some client then Some s.range else None)
    t.segs

let shrunk_clients t =
  List.filter
    (fun (c, r) ->
      match Hashtbl.find_opt t.desired c with
      | Some d -> r.len < d
      | None -> false)
    (clients t)

(* Carve [want] pages out of a free segment (from its base). *)
let carve t ~client ~want seg =
  let r = seg.range in
  let take = min want r.len in
  let alloc = { base = r.base; len = take } in
  let rest =
    if take = r.len then []
    else [ { range = { base = r.base + take; len = r.len - take }; owner = None } ]
  in
  t.segs <-
    normalize
      (List.concat_map
         (fun s -> if s == seg then { range = alloc; owner = Some client } :: rest else [ s ])
         t.segs);
  alloc

let largest p t =
  List.fold_left
    (fun acc s ->
      if p s then
        match acc with
        | Some best when best.range.len >= s.range.len -> acc
        | Some _ | None -> Some s
      else acc)
    None t.segs

(* Repack every resident plus the newcomer into equal contiguous shares
   (remainder pages spread over the first few, in ring order). *)
let repack_with t ~client =
  let incumbents = List.map fst (clients t) in
  let everyone = incumbents @ [ client ] in
  let n = List.length everyone in
  if n > t.total then None
  else begin
    let share = t.total / n and extra = t.total mod n in
    let segs = ref [] in
    let base = ref 0 in
    List.iteri
      (fun i c ->
        let len = share + if i < extra then 1 else 0 in
        segs := { range = { base = !base; len }; owner = Some c } :: !segs;
        base := !base + len)
      everyone;
    if !base < t.total then
      segs := { range = { base = !base; len = t.total - !base }; owner = None } :: !segs;
    t.segs <- normalize (List.rev !segs);
    allocation t ~client
  end

let trace_range (r : range) =
  { Cgra_trace.Trace.base = r.base; len = r.len }

let request t ~client ~desired =
  if desired <= 0 then invalid_arg "Allocator.request: desired <= 0";
  if allocation t ~client <> None then invalid_arg "Allocator.request: duplicate client";
  Hashtbl.replace t.desired client desired;
  (* snapshot the alternatives the policy is about to weigh, before the
     segment list is rewritten *)
  let considered =
    if Cgra_trace.Trace.enabled t.trace then
      List.filter_map
        (fun s ->
          match (s.owner, t.policy) with
          | None, _ -> Some ("free", trace_range s.range)
          | Some o, Halving when s.range.len >= 2 ->
              Some (Printf.sprintf "halve c%d" o, trace_range s.range)
          | Some o, Cost_halving when s.range.len >= 2 ->
              (* the rewrite cost of halving this victim: the kept half the
                 PageMaster must re-fold *)
              Some
                ( Printf.sprintf "halve c%d cost=%d" o (s.range.len / 2),
                  trace_range s.range )
          | Some o, Repack_equal ->
              Some (Printf.sprintf "repack c%d" o, trace_range s.range)
          | Some _, (Halving | Cost_halving) -> None)
        t.segs
    else []
  in
  let decided granted =
    Cgra_trace.Trace.emit t.trace
      (Cgra_trace.Trace.Alloc_decision
         { client; desired; granted = Option.map trace_range granted; considered });
    granted
  in
  let halve victim =
    let r = victim.range in
    let keep = r.len / 2 in
    let kept = { range = { base = r.base; len = keep }; owner = victim.owner } in
    let freed =
      { range = { base = r.base + keep; len = r.len - keep }; owner = None }
    in
    t.segs <-
      normalize
        (List.concat_map
           (fun s -> if s == victim then [ kept; freed ] else [ s ])
           t.segs);
    let free_seg =
      match List.find_opt (fun s -> s.range.base = freed.range.base) t.segs with
      | Some s -> s
      | None -> assert false
    in
    Some (carve t ~client ~want:desired free_seg)
  in
  let contended () =
    match t.policy with
    | Repack_equal -> (
        match repack_with t ~client with
        | Some r -> Some r
        | None ->
            Hashtbl.remove t.desired client;
            None)
    | Halving -> (
        (* the paper's policy: shrink the biggest running client to half *)
        match largest (fun s -> s.owner <> None && s.range.len >= 2) t with
        | None ->
            Hashtbl.remove t.desired client;
            None
        | Some victim -> halve victim)
    | Cost_halving -> (
        (* cost-aware victim pick: among residents whose freed half would
           cover the request, shrink the one whose kept half — the pages
           the PageMaster must re-fold, i.e. the Reshape cost — is
           smallest (lowest base on ties, since segs are base-sorted);
           when nobody's freed half is big enough, fall back to the
           classic largest victim so the grant is never smaller than
           under [Halving] *)
        let shrinkable s = s.owner <> None && s.range.len >= 2 in
        let sufficient =
          List.filter
            (fun s -> shrinkable s && s.range.len - (s.range.len / 2) >= desired)
            t.segs
        in
        let victim =
          match sufficient with
          | v :: rest ->
              Some
                (List.fold_left
                   (fun best s ->
                     if s.range.len / 2 < best.range.len / 2 then s else best)
                   v rest)
          | [] -> largest shrinkable t
        in
        match victim with
        | None ->
            Hashtbl.remove t.desired client;
            None
        | Some victim -> halve victim)
  in
  match largest (fun s -> s.owner = None) t with
  | Some free_seg -> decided (Some (carve t ~client ~want:desired free_seg))
  | None -> decided (contended ())

let release t ~client =
  if allocation t ~client = None then invalid_arg "Allocator.release: unknown client";
  Hashtbl.remove t.desired client;
  t.segs <-
    normalize
      (List.map
         (fun s -> if s.owner = Some client then { s with owner = None } else s)
         t.segs)

let expand t =
  let changed = Hashtbl.create 8 in
  let deficit (c, (r : range)) =
    match Hashtbl.find_opt t.desired c with Some d -> d - r.len | None -> 0
  in
  let rec pass () =
    (* grow the adjacent client with the largest deficit into each free
       segment, one step at a time, until stable *)
    let grow =
      List.find_map
        (fun s ->
          match s.owner with
          | Some _ -> None
          | None ->
              let adjacent =
                List.filter
                  (fun (_, (r : range)) ->
                    r.base + r.len = s.range.base || s.range.base + s.range.len = r.base)
                  (clients t)
              in
              let candidates =
                List.filter (fun cr -> deficit cr > 0) adjacent
                |> List.sort (fun a b -> compare (deficit b) (deficit a))
              in
              (match candidates with
              | [] -> None
              | (c, r) :: _ -> Some (s, c, r)))
        t.segs
    in
    match grow with
    | None -> ()
    | Some (free_seg, c, r) ->
        let take = min (deficit (c, r)) free_seg.range.len in
        let before_client = r.base + r.len = free_seg.range.base in
        let new_range =
          if before_client then { base = r.base; len = r.len + take }
          else { base = r.base - take; len = r.len + take }
        in
        let rest_free =
          if take = free_seg.range.len then []
          else if before_client then
            [ { range =
                  { base = free_seg.range.base + take; len = free_seg.range.len - take };
                owner = None } ]
          else
            [ { range = { base = free_seg.range.base; len = free_seg.range.len - take };
                owner = None } ]
        in
        t.segs <-
          normalize
            (List.concat_map
               (fun s ->
                 if s == free_seg then rest_free
                 else if s.owner = Some c then [ { range = new_range; owner = Some c } ]
                 else [ s ])
               t.segs);
        Hashtbl.replace changed c ();
        pass ()
  in
  pass ();
  List.filter (fun (c, _) -> Hashtbl.mem changed c) (clients t)

let pp ppf t =
  List.iter
    (fun s ->
      match s.owner with
      | None -> Format.fprintf ppf "[%d+%d free]" s.range.base s.range.len
      | Some c -> Format.fprintf ppf "[%d+%d c%d]" s.range.base s.range.len c)
    t.segs
