open Cgra_mapper

type t = {
  name : string;
  graph : Cgra_dfg.Graph.t;
  base : Mapping.t;
  paged : Mapping.t;
}

let ii_base t = t.base.Mapping.ii

let ii_paged t = t.paged.Mapping.ii

let pages_used t = Mapping.n_pages_used t.paged

let iteration_cycles t ~pages =
  if pages <= 0 then invalid_arg "Binary.iteration_cycles: pages <= 0";
  Transform.ii_q ~ii_p:(ii_paged t) ~n_used:(pages_used t) ~target_pages:pages

(* ----- compile cache ----- *)

(* The canonical field-by-field arch encoding, NOT [Cgra.pp]: the pretty
   printer's wording and line wrapping are free to drift, while cache
   keys — in-memory and, through [Cgra_store], on disk — must not.  The
   kernel name suffices for the in-memory tier because the bundled suite
   is a fixed set of named graphs; the disk tier additionally keys on a
   digest of the graph structure. *)
let fingerprint arch = Cgra_arch.Cgra.fingerprint arch

type store_tier = {
  tier_load : seed:int -> Cgra_arch.Cgra.t -> Cgra_kernels.Kernels.t -> t option;
  tier_save : seed:int -> Cgra_arch.Cgra.t -> Cgra_kernels.Kernels.t -> t -> unit;
}

type stats = { mem_hits : int; disk_hits : int; compiles : int; stores : int }

let cache : (string * string * int, (t, string) result) Hashtbl.t =
  Hashtbl.create 64

let cache_lock = Mutex.create ()

let store : store_tier option Atomic.t = Atomic.make None

let set_store t = Atomic.set store t

let mem_hits = Atomic.make 0

let disk_hits = Atomic.make 0

let compiles = Atomic.make 0

let stores = Atomic.make 0

let stats () =
  {
    mem_hits = Atomic.get mem_hits;
    disk_hits = Atomic.get disk_hits;
    compiles = Atomic.get compiles;
    stores = Atomic.get stores;
  }

let cache_stats () = (Atomic.get mem_hits + Atomic.get disk_hits, Atomic.get compiles)

let reset_stats () =
  Atomic.set mem_hits 0;
  Atomic.set disk_hits 0;
  Atomic.set compiles 0;
  Atomic.set stores 0

let clear_cache () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  Mutex.unlock cache_lock

let compile_uncached ~seed ?pool ?trace arch (k : Cgra_kernels.Kernels.t) =
  match Scheduler.map ~seed ?pool ?trace Unconstrained arch k.graph with
  | Error e -> Error e
  | Ok base -> (
      match Scheduler.map ~seed ?pool ?trace Paged arch k.graph with
      | Error e -> Error e
      | Ok paged -> Ok { name = k.name; graph = k.graph; base; paged })

let memoize key r =
  Mutex.lock cache_lock;
  Hashtbl.replace cache key r;
  Mutex.unlock cache_lock

let tcount trace name =
  match trace with Some tr -> Cgra_trace.Trace.count tr name 1.0 | None -> ()

let compile ?(seed = 0) ?pool ?trace arch (k : Cgra_kernels.Kernels.t) =
  let key = (fingerprint arch, k.name, seed) in
  let cached =
    Mutex.lock cache_lock;
    let r = Hashtbl.find_opt cache key in
    Mutex.unlock cache_lock;
    r
  in
  match cached with
  | Some r ->
      Atomic.incr mem_hits;
      tcount trace "binary.cache.mem_hit";
      r
  | None -> (
      (* Both slow tiers run outside the lock: two domains may briefly
         duplicate a disk load or a compile, but the result is
         deterministic per key so either copy is interchangeable.  The
         pool width is deliberately absent from the cache key — raced and
         sequential compiles are bit-identical (Scheduler.map's
         determinism contract), so they memoize to the same entry. *)
      let disk =
        match Atomic.get store with
        | None -> None
        | Some tier -> tier.tier_load ~seed arch k
      in
      match disk with
      | Some b ->
          Atomic.incr disk_hits;
          tcount trace "binary.cache.disk_hit";
          let r = Ok b in
          memoize key r;
          r
      | None ->
          Atomic.incr compiles;
          tcount trace "binary.cache.compile";
          let r = compile_uncached ~seed ?pool ?trace arch k in
          (match (r, Atomic.get store) with
          | Ok b, Some tier ->
              tier.tier_save ~seed arch k b;
              Atomic.incr stores;
              tcount trace "binary.cache.store"
          | Ok _, None | Error _, _ -> ());
          memoize key r;
          r)

let compile_suite ?(seed = 0) ?pool ?trace arch =
  (* One kernel at a time — with [pool], each kernel races its scheduling
     ladder across the whole pool: ladder attempts have near-uniform
     cost, so racing them load-balances better than one-kernel-per-domain
     (kernel compile times vary by an order of magnitude).  The walk
     short-circuits on the first [Error], so a failing early kernel does
     not pay for compiling the rest of the suite; the reported error —
     the first in suite order — is unchanged. *)
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | k :: rest -> (
        match compile ~seed ?pool ?trace arch k with
        | Error _ as e -> e
        | Ok b -> go (b :: acc) rest)
  in
  go [] Cgra_kernels.Kernels.all
