open Cgra_mapper

type t = {
  name : string;
  graph : Cgra_dfg.Graph.t;
  base : Mapping.t;
  paged : Mapping.t;
}

let ii_base t = t.base.Mapping.ii

let ii_paged t = t.paged.Mapping.ii

let pages_used t = Mapping.n_pages_used t.paged

let iteration_cycles t ~pages =
  if pages <= 0 then invalid_arg "Binary.iteration_cycles: pages <= 0";
  Transform.ii_q ~ii_p:(ii_paged t) ~n_used:(pages_used t) ~target_pages:pages

(* ----- compile cache ----- *)

(* [Cgra.pp] renders every field of the architecture record (grid, page
   shape and count, register capacity, memory ports), so its output is a
   complete fingerprint; the kernel name suffices for the kernel because
   the bundled suite is a fixed set of named graphs. *)
let fingerprint arch = Format.asprintf "%a" Cgra_arch.Cgra.pp arch

let cache : (string * string * int, (t, string) result) Hashtbl.t =
  Hashtbl.create 64

let cache_lock = Mutex.create ()

let hits = Atomic.make 0

let misses = Atomic.make 0

let cache_stats () = (Atomic.get hits, Atomic.get misses)

let clear_cache () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  Mutex.unlock cache_lock

let compile_uncached ~seed ?pool ?trace arch (k : Cgra_kernels.Kernels.t) =
  match Scheduler.map ~seed ?pool ?trace Unconstrained arch k.graph with
  | Error e -> Error e
  | Ok base -> (
      match Scheduler.map ~seed ?pool ?trace Paged arch k.graph with
      | Error e -> Error e
      | Ok paged -> Ok { name = k.name; graph = k.graph; base; paged })

let compile ?(seed = 0) ?pool ?trace arch (k : Cgra_kernels.Kernels.t) =
  let key = (fingerprint arch, k.name, seed) in
  let cached =
    Mutex.lock cache_lock;
    let r = Hashtbl.find_opt cache key in
    Mutex.unlock cache_lock;
    r
  in
  match cached with
  | Some r ->
      Atomic.incr hits;
      r
  | None ->
      (* compiled outside the lock: two domains may briefly duplicate the
         same compile, but the result is deterministic so either copy is
         interchangeable.  The pool width is deliberately absent from the
         cache key — raced and sequential compiles are bit-identical
         (Scheduler.map's determinism contract), so they memoize to the
         same entry. *)
      Atomic.incr misses;
      let r = compile_uncached ~seed ?pool ?trace arch k in
      Mutex.lock cache_lock;
      Hashtbl.replace cache key r;
      Mutex.unlock cache_lock;
      r

let compile_suite ?(seed = 0) ?pool ?trace arch =
  let compiled =
    match pool with
    | Some p ->
        (* One kernel at a time, each racing its scheduling ladder across
           the whole pool: ladder attempts have near-uniform cost, so
           racing them load-balances better than one-kernel-per-domain
           (kernel compile times vary by an order of magnitude). *)
        List.map (compile ~seed ~pool:p ?trace arch) Cgra_kernels.Kernels.all
    | None -> List.map (compile ~seed ?trace arch) Cgra_kernels.Kernels.all
  in
  (* first failure wins, in suite order, as the sequential fold did *)
  List.fold_left
    (fun acc r ->
      match (acc, r) with
      | (Error _ as e), _ -> e
      | Ok done_, Ok b -> Ok (b :: done_)
      | Ok _, Error e -> Error e)
    (Ok []) compiled
  |> Result.map List.rev
