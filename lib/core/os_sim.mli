(** Discrete-event simulation of the whole system: a multithreaded host
    processor plus the CGRA accelerator (Section VII-B).

    Threads alternate CPU phases (each thread has its own hardware
    context, in {e both} modes — the paper deliberately keeps processor
    multithreading out of the comparison) with CGRA kernel segments.

    - {b Single} mode models today's CGRAs: one kernel at a time,
      non-preemptive, FIFO queue, unconstrained binaries at [II_b].
    - {b Multi} mode models the paper's system: paged binaries at
      [II_c], space-multiplexed through {!Allocator}, shrunk and expanded
      by the PageMaster transformation (whose runtime the paper — and we —
      treat as negligible next to the code/data transfer it overlaps).

    A kernel holding [m] of its [N]-page schedule runs one iteration per
    [II_c * ceil (N/m)] cycles ({!Binary.iteration_cycles}). *)

type mode = Single | Multi

type params = {
  suite : Binary.t list;
  threads : Thread_model.t list;
  total_pages : int;
  mode : mode;
}

type result_t = {
  makespan : float;  (** cycles until the last thread finishes *)
  finishes : (int * float) list;  (** per-thread completion times *)
  total_ops : float;  (** kernel micro-ops executed on the CGRA *)
  ipc : float;  (** [total_ops / makespan] — the paper's throughput metric *)
  busy_page_cycles : float;  (** integral of allocated pages over time *)
  page_utilization : float;  (** busy page-cycles / (makespan * pages) *)
  transformations : int;  (** PageMaster invocations (shrinks + expands) *)
  stalls : int;  (** kernel requests that had to queue *)
}

module Engine : sig
  (** The incremental, event-driven core of the simulator.

      {!run} is a thin wrapper: create, submit every thread at time 0,
      drain, read the result — and is event-for-event identical to the
      historical closed-batch simulator.  An open system (the
      {!Cgra_farm} front end) instead interleaves {!submit} calls at
      arrival times with {!step}/{!run_until}, using the engine as the
      online scheduler of one fabric shard.

      Time must be driven monotonically: a {!submit} at time [at] is only
      valid when every queued internal event at a strictly earlier time
      has already been stepped (use {!next_event}/{!run_until}).  The
      contract is enforced: an out-of-order submit raises rather than
      silently simulating a run that never happened — the epoch-stepped
      farm coordinator leans on this to catch boundary bugs. *)

  type t

  val create :
    ?policy:Allocator.policy ->
    ?reconfig_cost:float ->
    ?trace:Cgra_trace.Trace.t ->
    ?n_threads:int ->
    suite:Binary.t list ->
    total_pages:int ->
    mode:mode ->
    unit ->
    t
  (** [n_threads] (default 0) only stamps the [Run_begin] trace header —
      an open system does not know its population up front. *)

  val submit : t -> at:float -> Thread_model.t -> unit
  (** Admit a thread at time [at]: emits its [Thread_arrival] and starts
      its first segment immediately (so a kernel-first thread requests
      pages at [at]).  Raises [Invalid_argument] on duplicate ids,
      unknown kernels, or an out-of-order arrival — [at] earlier than an
      already stepped event, an earlier pending internal event, or a
      previous submit. *)

  val next_event : t -> float option
  (** Time of the earliest pending internal event, or [None] when idle.
      May name a superseded (stale-generation) event; stepping it is a
      harmless no-op, so callers interleaving external arrivals can
      simply compare times and step. *)

  val step : t -> bool
  (** Process one pending event; [false] when the queue is empty. *)

  val run_until : t -> float -> unit
  (** Step every pending event with time [<=] the given bound. *)

  val drain : t -> unit
  (** Step until idle. *)

  val in_flight : t -> int
  (** Submitted threads that have not yet finished. *)

  val free_pages : t -> int

  val used_page_fraction : t -> float
  (** Allocated fraction of the fabric, in [0, 1] — the load signal the
      farm's shard picker reads. *)

  val set_on_finish : t -> (int -> float -> unit) -> unit
  (** Called as [f id time] whenever a thread finishes (at
      [Thread_finish] emission).  The callback must not re-enter the
      engine; record the notification and act after {!step} returns. *)

  val set_on_grant : t -> (int -> float -> unit) -> unit
  (** Called as [f id time] at every kernel grant (first grant = the
      thread became resident on the fabric).  Same re-entrancy rule as
      {!set_on_finish}. *)

  val result : t -> result_t
  (** Aggregate over every submitted thread, in submission order; also
      emits the closing [os.transformations] counter and [Run_end] event
      when tracing.  Raises [Invalid_argument] if any thread is
      unfinished (drain first). *)
end

val run :
  ?policy:Allocator.policy ->
  ?reconfig_cost:float ->
  ?trace:Cgra_trace.Trace.t ->
  params ->
  result_t
(** Raises [Invalid_argument] on unknown kernels or an empty thread
    list.

    [policy] (default [Halving]) selects the allocator's contention
    policy.  [reconfig_cost] (default 0) charges that many cycles of
    stalled progress to a kernel each time PageMaster reshapes it — the
    paper argues the transformation is negligible next to the overlapped
    code/data transfer; the ablation benches sweep this to find where the
    argument would break.

    [trace] (default {!Cgra_trace.Trace.null}, which costs one branch per
    emission point) records the full event timeline: thread arrivals and
    finishes, kernel request/grant/stall/release, PageMaster reshapes
    with before/after ranges and cycles charged, allocator decisions,
    and per-interval page-occupancy samples.  The stream is complete:
    {!Cgra_trace.Replay.aggregates} folds it back into a record equal to
    the returned {!result_t} field for field. *)

val improvement_percent : single:result_t -> multi:result_t -> float
(** Throughput improvement of Multi over Single:
    [(makespan_single / makespan_multi - 1) * 100] — Fig. 9's y-axis. *)
