(** Discrete-event simulation of the whole system: a multithreaded host
    processor plus the CGRA accelerator (Section VII-B).

    Threads alternate CPU phases (each thread has its own hardware
    context, in {e both} modes — the paper deliberately keeps processor
    multithreading out of the comparison) with CGRA kernel segments.

    - {b Single} mode models today's CGRAs: one kernel at a time,
      non-preemptive, FIFO queue, unconstrained binaries at [II_b].
    - {b Multi} mode models the paper's system: paged binaries at
      [II_c], space-multiplexed through {!Allocator}, shrunk and expanded
      by the PageMaster transformation (whose runtime the paper — and we —
      treat as negligible next to the code/data transfer it overlaps).

    A kernel holding [m] of its [N]-page schedule runs one iteration per
    [II_c * ceil (N/m)] cycles ({!Binary.iteration_cycles}). *)

type mode = Single | Multi

type params = {
  suite : Binary.t list;
  threads : Thread_model.t list;
  total_pages : int;
  mode : mode;
}

type result_t = {
  makespan : float;  (** cycles until the last thread finishes *)
  finishes : (int * float) list;  (** per-thread completion times *)
  total_ops : float;  (** kernel micro-ops executed on the CGRA *)
  ipc : float;  (** [total_ops / makespan] — the paper's throughput metric *)
  busy_page_cycles : float;  (** integral of allocated pages over time *)
  page_utilization : float;  (** busy page-cycles / (makespan * pages) *)
  transformations : int;  (** PageMaster invocations (shrinks + expands) *)
  stalls : int;  (** kernel requests that had to queue *)
}

val run :
  ?policy:Allocator.policy ->
  ?reconfig_cost:float ->
  ?trace:Cgra_trace.Trace.t ->
  params ->
  result_t
(** Raises [Invalid_argument] on unknown kernels or an empty thread
    list.

    [policy] (default [Halving]) selects the allocator's contention
    policy.  [reconfig_cost] (default 0) charges that many cycles of
    stalled progress to a kernel each time PageMaster reshapes it — the
    paper argues the transformation is negligible next to the overlapped
    code/data transfer; the ablation benches sweep this to find where the
    argument would break.

    [trace] (default {!Cgra_trace.Trace.null}, which costs one branch per
    emission point) records the full event timeline: thread arrivals and
    finishes, kernel request/grant/stall/release, PageMaster reshapes
    with before/after ranges and cycles charged, allocator decisions,
    and per-interval page-occupancy samples.  The stream is complete:
    {!Cgra_trace.Replay.aggregates} folds it back into a record equal to
    the returned {!result_t} field for field. *)

val improvement_percent : single:result_t -> multi:result_t -> float
(** Throughput improvement of Multi over Single:
    [(makespan_single / makespan_multi - 1) * 100] — Fig. 9's y-axis. *)
