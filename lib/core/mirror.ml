open Cgra_arch

let relocate ~pages ~src_page ~dst_page o pe =
  let tile_rows, tile_cols = Page.vdims pages in
  match Page.vlocal pages src_page pe with
  | None ->
      invalid_arg
        (Printf.sprintf "Mirror.relocate: %s not in page %d" (Coord.to_string pe)
           src_page)
  | Some local -> (
      let local' = Orient.apply o ~tile_rows ~tile_cols local in
      match Page.vglobal pages dst_page local' with
      | Some pe' -> pe'
      | None -> assert false (* symmetries preserve the tile *))

let solve ~pages ~src_base ~n_used ~s ~base ~cross_steps =
  let candidates = Orient.all ~square:(Page.is_square_tile pages) in
  let dst n = base + (n / s) in
  (* [n] is relative to the source mapping's lowest used page
     [src_base]; [cross_steps] is indexed the same way. *)
  (* A pair (o_n, o_next) satisfies the steps crossing page n -> n+1 when
     every transferred value stays within register-file reach. *)
  let pair_ok n o_n o_next =
    List.for_all
      (fun (a, b) ->
        let a' = relocate ~pages ~src_page:(src_base + n) ~dst_page:(dst n) o_n a in
        let b' =
          relocate ~pages ~src_page:(src_base + n + 1) ~dst_page:(dst (n + 1)) o_next b
        in
        Coord.equal a' b' || Coord.adjacent a' b')
      cross_steps.(n)
  in
  if n_used <= 0 then Some [||]
  else begin
    (* DP over the page path: feasible orientations of page n, with a
       witness predecessor for path reconstruction. *)
    let feasible = Array.make n_used [] in
    feasible.(0) <- List.map (fun o -> (o, None)) candidates;
    for n = 1 to n_used - 1 do
      feasible.(n) <-
        List.filter_map
          (fun o ->
            let pred =
              List.find_opt (fun (o_prev, _) -> pair_ok (n - 1) o_prev o) feasible.(n - 1)
            in
            Option.map (fun (o_prev, _) -> (o, Some o_prev)) pred)
          candidates
    done;
    match feasible.(n_used - 1) with
    | [] -> None
    | (last, _) :: _ ->
        let result = Array.make n_used Orient.identity in
        result.(n_used - 1) <- last;
        (* walk back through witnesses *)
        let rec back n o =
          if n = 0 then ()
          else
            let o_prev =
              match List.find_opt (fun (o', _) -> Orient.equal o' o) feasible.(n) with
              | Some (_, Some p) -> p
              | Some (_, None) | None -> assert false
            in
            result.(n - 1) <- o_prev;
            back (n - 1) o_prev
        in
        back (n_used - 1) last;
        Some result
  end
