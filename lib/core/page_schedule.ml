open Cgra_arch
open Cgra_mapper

type t = {
  ii : int;
  n_pages : int;
  page_ids : int array;
  ops : int list array array;
  hops : int array array;
}

let of_mapping (m : Mapping.t) =
  let page_ids = Array.of_list (Mapping.pages_used m) in
  let n_pages = Array.length page_ids in
  (* Rows are ranks within the used pages, not absolute page ids: the
     runtime relocates mappings to arbitrary base pages. *)
  let rank = Hashtbl.create 8 in
  Array.iteri (fun i pg -> Hashtbl.replace rank pg i) page_ids;
  let ops = Array.init (max 1 n_pages) (fun _ -> Array.make m.ii []) in
  let hops = Array.make_matrix (max 1 n_pages) m.ii 0 in
  Array.iteri
    (fun v pl ->
      match pl with
      | Some (p : Mapping.placement) -> (
          match Page.page_of_pe m.arch.Cgra.pages p.pe with
          | Some pg ->
              let slot = p.time mod m.ii in
              let pg = Hashtbl.find rank pg in
              ops.(pg).(slot) <- v :: ops.(pg).(slot)
          | None -> ())
      | None -> ())
    m.placements;
  List.iter
    (fun (r : Mapping.route) ->
      List.iter
        (fun (h : Mapping.placement) ->
          match Page.page_of_pe m.arch.Cgra.pages h.pe with
          | Some pg ->
              let slot = h.time mod m.ii in
              let pg = Hashtbl.find rank pg in
              hops.(pg).(slot) <- hops.(pg).(slot) + 1
          | None -> ())
        r.hops)
    m.routes;
  Array.iter (fun row -> Array.iteri (fun i l -> row.(i) <- List.rev l) row) ops;
  { ii = m.ii; n_pages; page_ids; ops; hops }

let slot_empty t ~page ~slot = t.ops.(page).(slot) = [] && t.hops.(page).(slot) = 0

let occupancy t =
  if t.n_pages = 0 then 0.0
  else begin
    let filled = ref 0 in
    for pg = 0 to t.n_pages - 1 do
      for s = 0 to t.ii - 1 do
        if not (slot_empty t ~page:pg ~slot:s) then incr filled
      done
    done;
    float_of_int !filled /. float_of_int (t.n_pages * t.ii)
  end

let pp ppf t =
  Format.fprintf ppf "slot";
  for pg = 0 to t.n_pages - 1 do
    Format.fprintf ppf "  page%-8d" t.page_ids.(pg)
  done;
  Format.pp_print_newline ppf ();
  for s = 0 to t.ii - 1 do
    Format.fprintf ppf "%4d" s;
    for pg = 0 to t.n_pages - 1 do
      let cell =
        let ids = String.concat "," (List.map string_of_int t.ops.(pg).(s)) in
        if t.hops.(pg).(s) > 0 then
          Printf.sprintf "%s+%dr" ids t.hops.(pg).(s)
        else ids
      in
      Format.fprintf ppf "  %-12s" (if cell = "" then "-" else cell)
    done;
    Format.pp_print_newline ppf ()
  done
