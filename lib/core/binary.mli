(** Compiled kernel "binaries": what the OS ships to the CGRA.

    Each kernel is compiled twice for a given fabric — with the original
    (unconstrained) compiler and with the paging constraints — exactly as
    in the paper's experimental setup.  The single-threaded system runs
    the unconstrained binary; the multithreaded system runs the paged one
    and shrinks it with the PageMaster transformation as needed. *)

type t = {
  name : string;
  graph : Cgra_dfg.Graph.t;
  base : Cgra_mapper.Mapping.t;  (** unconstrained mapping, [II_b] *)
  paged : Cgra_mapper.Mapping.t;  (** paging-constrained mapping, [II_c] *)
}

val ii_base : t -> int

val ii_paged : t -> int

val pages_used : t -> int
(** Pages the paged mapping occupies — what the thread gets when the CGRA
    is otherwise idle. *)

val iteration_cycles : t -> pages:int -> int
(** Cycles per kernel iteration when the thread holds [pages] pages:
    [ii_paged * ceil (pages_used / pages)], clamped at [ii_paged] when
    the allocation covers the whole schedule ([Transform.ii_q]). *)

val compile :
  ?seed:int ->
  ?pool:Cgra_util.Pool.t ->
  ?trace:Cgra_trace.Trace.t ->
  Cgra_arch.Cgra.t ->
  Cgra_kernels.Kernels.t ->
  (t, string) result
(** Memoized: results are cached on (architecture fingerprint, kernel
    name, seed), so figure sweeps and fuzz corpora that revisit the same
    fabric stop recompiling the suite.  Compilation is deterministic per
    key — including at any [pool] width, since the raced scheduler is
    bit-identical to the sequential one — so cached and fresh results
    are interchangeable and the pool width is not part of the key; the
    cache is safe to share across domains.  With [pool], both scheduler
    runs race their (II, attempt) ladders across its domains
    ({!Cgra_mapper.Scheduler.map}). *)

val compile_suite :
  ?seed:int ->
  ?pool:Cgra_util.Pool.t ->
  ?trace:Cgra_trace.Trace.t ->
  Cgra_arch.Cgra.t ->
  (t list, string) result
(** Compile the full 11-kernel suite; fails if any kernel fails to map
    (treated as a bug by the test-suite).  With [pool], each kernel's
    scheduling ladder is raced across the pool's domains, one kernel at
    a time; the suite order — and on failure, {e which} error is
    reported (the first kernel's, in suite order) — is unchanged. *)

val fingerprint : Cgra_arch.Cgra.t -> string
(** The architecture component of the cache key (every [Cgra.t] field). *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of the compile cache since start-up or the last
    {!clear_cache}. *)

val clear_cache : unit -> unit
