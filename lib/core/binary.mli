(** Compiled kernel "binaries": what the OS ships to the CGRA.

    Each kernel is compiled twice for a given fabric — with the original
    (unconstrained) compiler and with the paging constraints — exactly as
    in the paper's experimental setup.  The single-threaded system runs
    the unconstrained binary; the multithreaded system runs the paged one
    and shrinks it with the PageMaster transformation as needed. *)

type t = {
  name : string;
  graph : Cgra_dfg.Graph.t;
  base : Cgra_mapper.Mapping.t;  (** unconstrained mapping, [II_b] *)
  paged : Cgra_mapper.Mapping.t;  (** paging-constrained mapping, [II_c] *)
}

val ii_base : t -> int

val ii_paged : t -> int

val pages_used : t -> int
(** Pages the paged mapping occupies — what the thread gets when the CGRA
    is otherwise idle. *)

val iteration_cycles : t -> pages:int -> int
(** Cycles per kernel iteration when the thread holds [pages] pages:
    [ii_paged * ceil (pages_used / pages)], clamped at [ii_paged] when
    the allocation covers the whole schedule ([Transform.ii_q]). *)

val compile :
  ?seed:int ->
  ?pool:Cgra_util.Pool.t ->
  ?trace:Cgra_trace.Trace.t ->
  Cgra_arch.Cgra.t ->
  Cgra_kernels.Kernels.t ->
  (t, string) result
(** Two-tier memoization: results are looked up in the in-process memo
    (keyed on architecture fingerprint x kernel name x seed), then in
    the installed on-disk store tier if any ({!set_store}, normally
    wired by [Cgra_store.install]), and only then compiled — so a warm
    store makes thread launch a disk read instead of a scheduler run.
    Compilation is deterministic per key — including at any [pool]
    width, since the raced scheduler is bit-identical to the sequential
    one — so cached and fresh results are interchangeable and the pool
    width is not part of the key; both tiers are safe to share across
    domains.  With [pool], both scheduler runs race their (II, attempt)
    ladders across its domains ({!Cgra_mapper.Scheduler.map}).  With
    [trace], tier outcomes bump the [binary.cache.{mem_hit, disk_hit,
    compile, store}] counters. *)

val compile_suite :
  ?seed:int ->
  ?pool:Cgra_util.Pool.t ->
  ?trace:Cgra_trace.Trace.t ->
  Cgra_arch.Cgra.t ->
  (t list, string) result
(** Compile the full 11-kernel suite; fails if any kernel fails to map
    (treated as a bug by the test-suite), short-circuiting on the first
    failing kernel in suite order — later kernels are not compiled.
    With [pool], each kernel's scheduling ladder is raced across the
    pool's domains, one kernel at a time; the suite order — and on
    failure, {e which} error is reported (the first kernel's, in suite
    order) — is unchanged. *)

val fingerprint : Cgra_arch.Cgra.t -> string
(** The architecture component of the cache key: the canonical,
    golden-tested {!Cgra_arch.Cgra.fingerprint} — {e not} the pretty
    printer, whose output may drift cosmetically. *)

type store_tier = {
  tier_load : seed:int -> Cgra_arch.Cgra.t -> Cgra_kernels.Kernels.t -> t option;
  tier_save : seed:int -> Cgra_arch.Cgra.t -> Cgra_kernels.Kernels.t -> t -> unit;
}
(** A persistent second cache tier.  [tier_load] returns [None] for
    missing, corrupt, or version-mismatched artifacts (the cache then
    falls through to a compile); [tier_save] must be atomic and
    best-effort (a failed save must not fail the compile). *)

val set_store : store_tier option -> unit
(** Install (or remove) the disk tier consulted between the in-memory
    memo and the compiler.  [Cgra_store.install] is the usual caller. *)

type stats = { mem_hits : int; disk_hits : int; compiles : int; stores : int }

val stats : unit -> stats
(** Per-tier outcome counts since start-up or the last {!reset_stats}:
    [compiles] counts actual scheduler runs, so a fully warm start shows
    [compiles = 0]. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] — hits across both tiers, misses = [compiles]. *)

val reset_stats : unit -> unit
(** Zero the counters (the caches themselves are untouched). *)

val clear_cache : unit -> unit
(** Drop the in-memory memo (the disk tier, if any, is untouched). *)
