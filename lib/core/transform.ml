open Cgra_arch
open Cgra_mapper

type shrunk = {
  mapping : Mapping.t;
  source : Mapping.t;
  n_used : int;
  m_eff : int;
  s : int;
  base_page : int;
  orientations : Orient.t array;
  pe_exact : bool;
}

let cdiv a b = (a + b - 1) / b

let ii_q ~ii_p ~n_used ~target_pages =
  if n_used <= 0 then ii_p else ii_p * cdiv n_used (min target_pages (max 1 n_used))

let fold ?(base_page = 0) ~target_pages (src : Mapping.t) =
  let pages = src.arch.Cgra.pages in
  let page_of pe =
    match Page.page_of_pe pages pe with
    | Some p -> p
    | None -> invalid_arg "Transform.fold: occupant outside any page"
  in
  if not src.paged then Error "Transform.fold: source mapping is not paged"
  else if target_pages < 1 then Error "Transform.fold: target_pages < 1"
  else begin
    let used = Mapping.pages_used src in
    let n_used = List.length used in
    if n_used = 0 then Error "Transform.fold: empty mapping"
    else begin
      (* The allocator may have placed the source at any base: renumber
         its pages relative to the lowest one so the fold arrays are
         indexed [0 .. n_used-1] whatever the source's absolute range. *)
      let src_base = List.hd used in
      let contiguous =
        List.for_all2 (fun pg i -> pg = src_base + i) used (List.init n_used Fun.id)
      in
      if not contiguous then
        Error "Transform.fold: source pages are not a contiguous ring run"
      else begin
        let rel pg = pg - src_base in
        let m_eff = min target_pages n_used in
        let s = cdiv n_used m_eff in
        if base_page < 0 || base_page + m_eff > Page.n_pages pages then
          Error
            (Printf.sprintf "Transform.fold: pages [%d, %d) exceed the fabric" base_page
               (base_page + m_eff))
        else begin
          (* Cross-page steps constrain the per-page mirroring. *)
          let cross_steps = Array.make (max 1 (n_used - 1)) [] in
          List.iter
            (fun ((a : Mapping.placement), (b : Mapping.placement)) ->
              let pa = rel (page_of a.pe) and pb = rel (page_of b.pe) in
              if pb = pa + 1 then cross_steps.(pa) <- (a.pe, b.pe) :: cross_steps.(pa))
            (Mapping.steps src);
          let orientations, pe_exact =
            match
              Mirror.solve ~pages ~src_base ~n_used ~s ~base:base_page ~cross_steps
            with
            | Some o -> (o, true)
            | None -> (Array.make n_used Orient.identity, false)
          in
          let move (p : Mapping.placement) =
            let n = rel (page_of p.pe) in
            let pe =
              Mirror.relocate ~pages ~src_page:(src_base + n)
                ~dst_page:(base_page + (n / s)) orientations.(n) p.pe
            in
            { Mapping.pe; time = (p.time * s) + (n mod s) }
          in
          let mapping =
            {
              src with
              Mapping.ii = src.ii * s;
              placements = Array.map (Option.map move) src.placements;
              routes =
                List.map
                  (fun (r : Mapping.route) -> { r with hops = List.map move r.hops })
                  src.routes;
              paged = false;
            }
          in
          Ok { mapping; source = src; n_used; m_eff; s; base_page; orientations; pe_exact }
        end
      end
    end
  end
