(** Page-level view of a mapped kernel — the [P = { p_(n,t) }] abstraction
    of Section VI-C: which operations each page executes in each modulo
    slot.  Used by the greedy transformation reproduction, the ASCII
    walkthroughs, and the runtime's accounting. *)

type t = {
  ii : int;
  n_pages : int;  (** pages the mapping uses *)
  page_ids : int array;
      (** absolute page id of each row, ascending — the used pages need
          not start at page 0 (the runtime relocates mappings) *)
  ops : int list array array;  (** [ops.(rank).(slot)] = node ids *)
  hops : int array array;  (** routing-hop counts per page rank and slot *)
}

val of_mapping : Cgra_mapper.Mapping.t -> t

val slot_empty : t -> page:int -> slot:int -> bool

val occupancy : t -> float
(** Fraction of page-slots holding at least one operation or hop. *)

val pp : Format.formatter -> t -> unit
(** Table in the style of Fig. 6(a): pages across, slots down. *)
