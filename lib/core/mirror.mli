(** Intra-page mirroring for the PageMaster transformation (Fig. 6 of the
    paper: "the internal page mapping must be mirrored across the
    among-page dependency direction").

    When the fold transformation stacks source pages onto destination
    tiles, each page's internal mapping may be reflected (and, for square
    tiles, rotated) so that every inter-page data transfer still lands
    within register-file reach — on the same PE (pages stacked in time) or
    a mesh neighbour (pages on adjacent tiles).

    Intra-page steps are preserved by {e any} symmetry (isometries keep
    mesh adjacency; band pages are restricted to path-consecutive
    adjacency, which survives reversal), so only cross-page steps
    constrain orientations.  Consecutive pages form a path, so a small
    dynamic program over candidate symmetries solves the assignment
    exactly: if the DP fails, no orientation assignment exists (this
    happens for non-square tiles whose fold mixes horizontal and vertical
    page boundaries; square tiles always admit the needed rotation). *)

val solve :
  pages:Cgra_arch.Page.t ->
  src_base:int ->
  n_used:int ->
  s:int ->
  base:int ->
  cross_steps:(Cgra_arch.Coord.t * Cgra_arch.Coord.t) list array ->
  Cgra_arch.Orient.t array option
(** [solve ~pages ~src_base ~n_used ~s ~base ~cross_steps] assigns one
    symmetry per source page, where source page [src_base + n] (for
    [n] in [0 .. n_used-1]) is relocated to
    destination page [base + n/s] and [cross_steps.(n)] lists the
    producer/consumer PE pairs of steps crossing from page
    [src_base + n] to page [src_base + n + 1].  Returns [None] when no
    assignment satisfies every step. *)

val relocate :
  pages:Cgra_arch.Page.t ->
  src_page:int ->
  dst_page:int ->
  Cgra_arch.Orient.t ->
  Cgra_arch.Coord.t ->
  Cgra_arch.Coord.t
(** [relocate ~pages ~src_page ~dst_page o pe] is the new position of
    [pe] (a member of [src_page]) after applying symmetry [o] and moving
    to [dst_page]'s tile.  Raises [Invalid_argument] if [pe] is not in
    [src_page]. *)
