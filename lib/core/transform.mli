(** The PageMaster transformation (Section VI of the paper): reschedule a
    kernel compiled for the whole CGRA onto fewer pages, at runtime, in
    low-order polynomial time.

    {!fold} is the engine the multithreading runtime uses.  Source pages
    are grouped in ring order, [s = ceil (N/M)] consecutive pages per
    destination tile; within a group, pages execute back-to-back in time
    (the "execute the pages in order of dependency" of Fig. 6), and the
    new initiation interval is [II_q = II_p * s] — which meets the
    paper's optimality bound (using [1/s] of the fabric costs exactly a
    factor [s]).  Every operation's intra-page position is preserved up
    to a mirroring chosen by {!Mirror.solve}; when an exact PE-level
    embedding exists (always for [M = 1] and for square tiles) the result
    re-validates under [Mapping.validate].

    The transformation visits each operation and routing hop exactly
    once: O(ops + hops + pages * steps) — the low-order-polynomial claim,
    substantiated by the bechamel benchmarks. *)

type shrunk = {
  mapping : Cgra_mapper.Mapping.t;
      (** the rescheduled kernel, occupying pages [base_page ..
          base_page + m_eff - 1]; [paged] is false (it is a runtime
          schedule, not a compiler artifact) *)
  source : Cgra_mapper.Mapping.t;
  n_used : int;  (** pages the source actually occupied *)
  m_eff : int;  (** destination pages actually used, [min target n_used] *)
  s : int;  (** fold factor [ceil (n_used / m_eff)] *)
  base_page : int;
  orientations : Cgra_arch.Orient.t array;  (** per source page *)
  pe_exact : bool;
      (** whether an exact PE-level embedding was found; when false the
          mapping's PE coordinates are positional only (page-level
          semantics) and must not be fed to the cycle-accurate simulator *)
}

val ii_q : ii_p:int -> n_used:int -> target_pages:int -> int
(** The transformed initiation interval:
    [ii_p * ceil (n_used / min target_pages n_used)]. *)

val fold :
  ?base_page:int ->
  target_pages:int ->
  Cgra_mapper.Mapping.t ->
  (shrunk, string) result
(** [fold ~target_pages m] shrinks the paged mapping [m] to at most
    [target_pages] pages starting at [base_page] (default 0).  The
    source may occupy any contiguous run of pages, not necessarily
    starting at page 0 — the runtime re-folds mappings the allocator
    already relocated.  Errors when [m] is not a paged mapping, its used
    pages are not contiguous, [target_pages < 1], or the destination
    range exceeds the fabric. *)
