type mode = Single | Multi

type params = {
  suite : Binary.t list;
  threads : Thread_model.t list;
  total_pages : int;
  mode : mode;
}

type result_t = {
  makespan : float;
  finishes : (int * float) list;
  total_ops : float;
  ipc : float;
  busy_page_cycles : float;
  page_utilization : float;
  transformations : int;
  stalls : int;
}

type tstate =
  | On_cpu of Thread_model.segment list  (* rest after the running cpu phase *)
  | Waiting of string * int * Thread_model.segment list  (* kernel, iters, rest *)
  | On_cgra of {
      mutable iters_left : float;
      mutable rate : float;  (* cycles per iteration *)
      mutable pages : int;
      mutable base : int;  (* first allocated page: a move is a reshape *)
      mutable last_update : float;
      rest : Thread_model.segment list;
    }
  | Done of float

type thread_rec = {
  id : int;
  mutable state : tstate;
  mutable gen : int;  (* event generation; stale events are ignored *)
}

let ops_of (b : Binary.t) =
  List.length
    (List.filter
       (fun (n : Cgra_dfg.Graph.node) ->
         match n.op with Cgra_dfg.Op.Const _ -> false | _ -> true)
       (Cgra_dfg.Graph.nodes b.graph))

let improvement_percent ~single ~multi =
  Cgra_util.Stats.improvement_percent ~baseline:single.makespan
    ~improved:multi.makespan

let run ?(policy = Allocator.Halving) ?(reconfig_cost = 0.0)
    ?(trace = Cgra_trace.Trace.null) p =
  if p.threads = [] then invalid_arg "Os_sim.run: no threads";
  if reconfig_cost < 0.0 then invalid_arg "Os_sim.run: negative reconfig cost";
  let module T = Cgra_trace.Trace in
  let tracing = T.enabled trace in
  let binary name =
    match List.find_opt (fun (b : Binary.t) -> b.name = name) p.suite with
    | Some b -> b
    | None -> invalid_arg ("Os_sim.run: unknown kernel " ^ name)
  in
  let threads =
    List.map (fun (t : Thread_model.t) -> { id = t.id; state = Done 0.0; gen = 0 })
      p.threads
  in
  let by_id = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace by_id t.id t) threads;
  let alloc = Allocator.create ~policy ~trace ~total_pages:p.total_pages () in
  if tracing then begin
    (* fabric geometry, so post-hoc analyzers (row-bus contention) need no
       arch arguments: every binary in a suite shares one fabric *)
    let rows, mem_ports =
      match p.suite with
      | [] -> (0, 0)
      | b :: _ ->
          let a = b.Binary.paged.Cgra_mapper.Mapping.arch in
          (a.Cgra_arch.Cgra.grid.Cgra_arch.Grid.rows,
           a.Cgra_arch.Cgra.mem_ports_per_row)
    in
    T.emit_at trace ~time:0.0
      (T.Run_begin
         {
           mode = (match p.mode with Single -> "single" | Multi -> "multi");
           total_pages = p.total_pages;
           n_threads = List.length p.threads;
           policy =
             (match policy with
             | Allocator.Halving -> "halving"
             | Allocator.Repack_equal -> "repack_equal");
           reconfig_cost;
           rows;
           mem_ports;
         })
  end;
  let waiters : int Queue.t = Queue.create () in
  let running_kernel : (int, Binary.t) Hashtbl.t = Hashtbl.create 16 in
  let cgra_busy_single = ref false in
  let transformations = ref 0 in
  let stalls = ref 0 in
  let busy_page_cycles = ref 0.0 in
  let total_ops = ref 0.0 in
  let queue = ref (Cgra_util.Pqueue.empty ~cmp:Float.compare) in
  let post time tid gen = queue := Cgra_util.Pqueue.push !queue time (tid, gen) in
  let settle now t =
    match t.state with
    | On_cgra k ->
        let elapsed = now -. k.last_update in
        if elapsed > 0.0 then begin
          k.iters_left <- k.iters_left -. (elapsed /. k.rate);
          busy_page_cycles := !busy_page_cycles +. (elapsed *. float_of_int k.pages);
          (* one occupancy sample per accrual: Replay re-sums these in
             stream order to reproduce busy_page_cycles bit-exactly *)
          if tracing then
            T.emit_at trace ~time:now
              (T.Occupancy { thread = t.id; pages = k.pages; elapsed });
          k.last_update <- now
        end
    | On_cpu _ | Waiting _ | Done _ -> ()
  in
  let reschedule now t =
    match t.state with
    | On_cgra k ->
        t.gen <- t.gen + 1;
        post (now +. (Float.max 0.0 k.iters_left *. k.rate)) t.id t.gen
    | On_cpu _ | Waiting _ | Done _ -> ()
  in
  let rate_for tid pages =
    float_of_int (Binary.iteration_cycles (Hashtbl.find running_kernel tid) ~pages)
  in
  (* Multi mode: after any allocator change, refresh every running
     kernel whose allocation moved (a PageMaster shrink or expand). *)
  let resync now =
    List.iter
      (fun t ->
        match t.state with
        | On_cgra k -> (
            match Allocator.allocation alloc ~client:t.id with
            | Some r when r.Allocator.len <> k.pages || r.Allocator.base <> k.base ->
                settle now t;
                let rate = rate_for t.id r.Allocator.len in
                if tracing then begin
                  let before = { T.base = k.base; len = k.pages } in
                  let after = { T.base = r.Allocator.base; len = r.Allocator.len } in
                  let kind =
                    if after.T.len < before.T.len then T.Shrink
                    else if after.T.len > before.T.len then T.Expand
                    else T.Move
                  in
                  T.count trace "os.reshapes" 1.0;
                  T.emit_at trace ~time:now
                    (T.Reshape
                       {
                         thread = t.id;
                         kind;
                         before;
                         after;
                         pages_rewritten = after.T.len;
                         cost = reconfig_cost;
                         rate;
                       })
                end;
                k.pages <- r.Allocator.len;
                k.base <- r.Allocator.base;
                k.rate <- rate;
                incr transformations;
                (* the kernel makes no progress while being reshaped *)
                k.last_update <- now +. reconfig_cost;
                t.gen <- t.gen + 1;
                post (now +. reconfig_cost +. (Float.max 0.0 k.iters_left *. k.rate))
                  t.id t.gen
            | Some _ | None -> ())
        | On_cpu _ | Waiting _ | Done _ -> ())
      threads
  in
  let rec advance now t segments =
    match segments with
    | [] ->
        t.state <- Done now;
        if tracing then T.emit_at trace ~time:now (T.Thread_finish { thread = t.id })
    | Thread_model.Cpu c :: rest ->
        t.state <- On_cpu rest;
        t.gen <- t.gen + 1;
        post (now +. float_of_int c) t.id t.gen
    | Thread_model.Kernel { kernel; iterations } :: rest ->
        let segment_ops = ops_of (binary kernel) * iterations in
        total_ops := !total_ops +. float_of_int segment_ops;
        if tracing then
          T.emit_at trace ~time:now
            (T.Kernel_request
               {
                 thread = t.id;
                 kernel;
                 iterations;
                 ops = segment_ops;
                 mem = Cgra_dfg.Graph.mem_node_count (binary kernel).graph;
                 desired = Binary.pages_used (binary kernel);
               });
        start_kernel now t ~kernel ~iterations ~rest
  (* [enqueue] is false when the thread is already the front entry of
     [waiters] (a retry from [serve]): it must neither be re-enqueued —
     that would leave a duplicate queue entry — nor counted as a fresh
     stall. *)
  and record_stall now t ~kernel =
    incr stalls;
    Queue.add t.id waiters;
    if tracing then begin
      T.count trace "os.stalls" 1.0;
      T.emit_at trace ~time:now
        (T.Kernel_stall { thread = t.id; kernel; queue_depth = Queue.length waiters })
    end
  and record_grant now t ~kernel ~base ~pages ~shrunk ~cost ~rate =
    if tracing then begin
      T.count trace "os.grants" 1.0;
      T.emit_at trace ~time:now
        (T.Kernel_grant
           { thread = t.id; kernel; range = { T.base; len = pages }; shrunk; cost;
             rate })
    end
  and start_kernel ?(enqueue = true) now t ~kernel ~iterations ~rest =
    let b = binary kernel in
    match p.mode with
    | Single ->
        if !cgra_busy_single then begin
          if enqueue then record_stall now t ~kernel;
          t.state <- Waiting (kernel, iterations, rest)
        end
        else begin
          cgra_busy_single := true;
          Hashtbl.replace running_kernel t.id b;
          let rate = float_of_int (Binary.ii_base b) in
          record_grant now t ~kernel ~base:0 ~pages:p.total_pages ~shrunk:false
            ~cost:0.0 ~rate;
          t.state <-
            On_cgra
              { iters_left = float_of_int iterations; rate; pages = p.total_pages;
                base = 0; last_update = now; rest };
          t.gen <- t.gen + 1;
          post (now +. (float_of_int iterations *. rate)) t.id t.gen
        end
    | Multi -> (
        let desired = max 1 (min (Binary.pages_used b) p.total_pages) in
        Hashtbl.replace running_kernel t.id b;
        T.set_clock trace now;
        match Allocator.request alloc ~client:t.id ~desired with
        | None ->
            Hashtbl.remove running_kernel t.id;
            if enqueue then record_stall now t ~kernel;
            t.state <- Waiting (kernel, iterations, rest)
        | Some r ->
            let shrunk_entry = r.Allocator.len < desired in
            if shrunk_entry then incr transformations;
            let entry_cost = if shrunk_entry then reconfig_cost else 0.0 in
            let rate = rate_for t.id r.Allocator.len in
            t.state <-
              On_cgra
                { iters_left = float_of_int iterations; rate; pages = r.Allocator.len;
                  base = r.Allocator.base; last_update = now +. entry_cost; rest };
            t.gen <- t.gen + 1;
            post (now +. entry_cost +. (float_of_int iterations *. rate)) t.id t.gen;
            (* the request may have shrunk a victim; PageMaster reshapes it
               before the newcomer occupies the freed half, so the victim's
               Reshape event must precede the newcomer's grant *)
            resync now;
            record_grant now t ~kernel ~base:r.Allocator.base ~pages:r.Allocator.len
              ~shrunk:shrunk_entry ~cost:entry_cost ~rate)
  (* The waiter stays at the front of [waiters] while it retries; the
     caller pops it only on success. *)
  and try_start_waiter now wid =
    let w = Hashtbl.find by_id wid in
    match w.state with
    | Waiting (kernel, iterations, rest) -> (
        start_kernel ~enqueue:false now w ~kernel ~iterations ~rest;
        match w.state with Waiting _ -> false | _ -> true)
    | On_cpu _ | On_cgra _ | Done _ -> true (* stale entry; drop it *)
  and record_release now t ~base ~pages =
    if tracing then
      let kernel =
        match Hashtbl.find_opt running_kernel t.id with
        | Some (b : Binary.t) -> b.name
        | None -> "?"
      in
      T.emit_at trace ~time:now
        (T.Kernel_release { thread = t.id; kernel; range = { T.base; len = pages } })
  and finish_kernel now t rest =
    (match p.mode with
    | Single -> (
        record_release now t ~base:0 ~pages:p.total_pages;
        cgra_busy_single := false;
        Hashtbl.remove running_kernel t.id;
        match Queue.peek_opt waiters with
        | Some wid -> if try_start_waiter now wid then ignore (Queue.take waiters)
        | None -> ())
    | Multi ->
        (if tracing then
           match Allocator.allocation alloc ~client:t.id with
           | Some r -> record_release now t ~base:r.Allocator.base ~pages:r.Allocator.len
           | None -> ());
        T.set_clock trace now;
        Allocator.release alloc ~client:t.id;
        Hashtbl.remove running_kernel t.id;
        let rec serve () =
          match Queue.peek_opt waiters with
          | None -> ()
          | Some wid ->
              if try_start_waiter now wid then begin
                ignore (Queue.take waiters);
                serve ()
              end
        in
        serve ();
        ignore (Allocator.expand alloc);
        resync now);
    advance now t rest
  in
  (* kick off *)
  List.iter2
    (fun t (spec : Thread_model.t) ->
      if tracing then
        T.emit_at trace ~time:0.0
          (T.Thread_arrival
             { thread = t.id; segments = List.length spec.segments });
      advance 0.0 t spec.segments)
    threads p.threads;
  let rec loop () =
    match Cgra_util.Pqueue.pop !queue with
    | None -> ()
    | Some ((now, (tid, gen)), rest) ->
        queue := rest;
        let t = Hashtbl.find by_id tid in
        if gen = t.gen then begin
          match t.state with
          | On_cpu segs -> advance now t segs
          | On_cgra k ->
              settle now t;
              if k.iters_left <= 1e-6 then finish_kernel now t k.rest
              else reschedule now t
          | Waiting _ | Done _ -> ()
        end;
        loop ()
  in
  loop ();
  let finishes =
    List.map
      (fun t ->
        match t.state with
        | Done time -> (t.id, time)
        | On_cpu _ | Waiting _ | On_cgra _ ->
            invalid_arg "Os_sim.run: deadlock — a thread never finished")
      threads
  in
  let makespan = List.fold_left (fun acc (_, f) -> Float.max acc f) 0.0 finishes in
  if tracing then begin
    T.count trace "os.transformations" (float_of_int !transformations);
    T.emit_at trace ~time:makespan (T.Run_end { makespan })
  end;
  {
    makespan;
    finishes;
    total_ops = !total_ops;
    ipc = (if makespan > 0.0 then !total_ops /. makespan else 0.0);
    busy_page_cycles = !busy_page_cycles;
    page_utilization =
      (if makespan > 0.0 then
         !busy_page_cycles /. (makespan *. float_of_int p.total_pages)
       else 0.0);
    transformations = !transformations;
    stalls = !stalls;
  }
