type mode = Single | Multi

type params = {
  suite : Binary.t list;
  threads : Thread_model.t list;
  total_pages : int;
  mode : mode;
}

type result_t = {
  makespan : float;
  finishes : (int * float) list;
  total_ops : float;
  ipc : float;
  busy_page_cycles : float;
  page_utilization : float;
  transformations : int;
  stalls : int;
}

type tstate =
  | On_cpu of Thread_model.segment list  (* rest after the running cpu phase *)
  | Waiting of string * int * Thread_model.segment list  (* kernel, iters, rest *)
  | On_cgra of {
      mutable iters_left : float;
      mutable rate : float;  (* cycles per iteration *)
      mutable pages : int;
      mutable base : int;  (* first allocated page: a move is a reshape *)
      mutable last_update : float;
      rest : Thread_model.segment list;
    }
  | Done of float

type thread_rec = {
  id : int;
  mutable state : tstate;
  mutable gen : int;  (* event generation; stale events are ignored *)
}

let ops_of (b : Binary.t) =
  List.length
    (List.filter
       (fun (n : Cgra_dfg.Graph.node) ->
         match n.op with Cgra_dfg.Op.Const _ -> false | _ -> true)
       (Cgra_dfg.Graph.nodes b.graph))

let improvement_percent ~single ~multi =
  Cgra_util.Stats.improvement_percent ~baseline:single.makespan
    ~improved:multi.makespan

module T = Cgra_trace.Trace

module Engine = struct
  type t = {
    suite : Binary.t list;
    total_pages : int;
    mode : mode;
    reconfig_cost : float;
    trace : T.t;
    tracing : bool;
    alloc : Allocator.t;
    threads : thread_rec Queue.t;  (* submission order — resync iterates it *)
    by_id : (int, thread_rec) Hashtbl.t;
    waiters : int Queue.t;
    running_kernel : (int, Binary.t) Hashtbl.t;
    mutable cgra_busy_single : bool;
    mutable transformations : int;
    mutable stalls : int;
    mutable busy_page_cycles : float;
    mutable total_ops : float;
    mutable queue : (float, int * int) Cgra_util.Pqueue.t;
    mutable unfinished : int;
    mutable horizon : float;  (* latest stepped-event or submit time *)
    mutable on_finish : int -> float -> unit;
    mutable on_grant : int -> float -> unit;
  }

  let create ?(policy = Allocator.Halving) ?(reconfig_cost = 0.0)
      ?(trace = T.null) ?(n_threads = 0) ~suite ~total_pages ~mode () =
    if reconfig_cost < 0.0 then invalid_arg "Os_sim.run: negative reconfig cost";
    let tracing = T.enabled trace in
    let alloc = Allocator.create ~policy ~trace ~total_pages () in
    if tracing then begin
      (* fabric geometry, so post-hoc analyzers (row-bus contention) need no
         arch arguments: every binary in a suite shares one fabric *)
      let rows, mem_ports =
        match suite with
        | [] -> (0, 0)
        | b :: _ ->
            let a = b.Binary.paged.Cgra_mapper.Mapping.arch in
            (a.Cgra_arch.Cgra.grid.Cgra_arch.Grid.rows,
             a.Cgra_arch.Cgra.mem_ports_per_row)
      in
      T.emit_at trace ~time:0.0
        (T.Run_begin
           {
             mode = (match mode with Single -> "single" | Multi -> "multi");
             total_pages;
             n_threads;
             policy =
               (match policy with
               | Allocator.Halving -> "halving"
               | Allocator.Repack_equal -> "repack_equal"
               | Allocator.Cost_halving -> "cost_halving");
             reconfig_cost;
             rows;
             mem_ports;
           })
    end;
    {
      suite;
      total_pages;
      mode;
      reconfig_cost;
      trace;
      tracing;
      alloc;
      threads = Queue.create ();
      by_id = Hashtbl.create 16;
      waiters = Queue.create ();
      running_kernel = Hashtbl.create 16;
      cgra_busy_single = false;
      transformations = 0;
      stalls = 0;
      busy_page_cycles = 0.0;
      total_ops = 0.0;
      queue = Cgra_util.Pqueue.empty ~cmp:Float.compare;
      unfinished = 0;
      horizon = neg_infinity;
      on_finish = (fun _ _ -> ());
      on_grant = (fun _ _ -> ());
    }

  let set_on_finish e f = e.on_finish <- f
  let set_on_grant e f = e.on_grant <- f

  let binary e name =
    match List.find_opt (fun (b : Binary.t) -> b.name = name) e.suite with
    | Some b -> b
    | None -> invalid_arg ("Os_sim.run: unknown kernel " ^ name)

  let post e time tid gen = e.queue <- Cgra_util.Pqueue.push e.queue time (tid, gen)

  let settle e now t =
    match t.state with
    | On_cgra k ->
        let elapsed = now -. k.last_update in
        if elapsed > 0.0 then begin
          k.iters_left <- k.iters_left -. (elapsed /. k.rate);
          e.busy_page_cycles <-
            e.busy_page_cycles +. (elapsed *. float_of_int k.pages);
          (* one occupancy sample per accrual: Replay re-sums these in
             stream order to reproduce busy_page_cycles bit-exactly *)
          if e.tracing then
            T.emit_at e.trace ~time:now
              (T.Occupancy { thread = t.id; pages = k.pages; elapsed });
          k.last_update <- now
        end
    | On_cpu _ | Waiting _ | Done _ -> ()

  let reschedule e now t =
    match t.state with
    | On_cgra k ->
        t.gen <- t.gen + 1;
        post e (now +. (Float.max 0.0 k.iters_left *. k.rate)) t.id t.gen
    | On_cpu _ | Waiting _ | Done _ -> ()

  let rate_for e tid pages =
    float_of_int
      (Binary.iteration_cycles (Hashtbl.find e.running_kernel tid) ~pages)

  (* Multi mode: after any allocator change, refresh every running
     kernel whose allocation moved (a PageMaster shrink or expand). *)
  let resync e now =
    Queue.iter
      (fun t ->
        match t.state with
        | On_cgra k -> (
            match Allocator.allocation e.alloc ~client:t.id with
            | Some r when r.Allocator.len <> k.pages || r.Allocator.base <> k.base
              ->
                settle e now t;
                let rate = rate_for e t.id r.Allocator.len in
                if e.tracing then begin
                  let before = { T.base = k.base; len = k.pages } in
                  let after = { T.base = r.Allocator.base; len = r.Allocator.len } in
                  let kind =
                    if after.T.len < before.T.len then T.Shrink
                    else if after.T.len > before.T.len then T.Expand
                    else T.Move
                  in
                  T.count e.trace "os.reshapes" 1.0;
                  T.emit_at e.trace ~time:now
                    (T.Reshape
                       {
                         thread = t.id;
                         kind;
                         before;
                         after;
                         pages_rewritten = after.T.len;
                         cost = e.reconfig_cost;
                         rate;
                       })
                end;
                k.pages <- r.Allocator.len;
                k.base <- r.Allocator.base;
                k.rate <- rate;
                e.transformations <- e.transformations + 1;
                (* the kernel makes no progress while being reshaped *)
                k.last_update <- now +. e.reconfig_cost;
                t.gen <- t.gen + 1;
                post e
                  (now +. e.reconfig_cost +. (Float.max 0.0 k.iters_left *. k.rate))
                  t.id t.gen
            | Some _ | None -> ())
        | On_cpu _ | Waiting _ | Done _ -> ())
      e.threads

  let rec advance e now t segments =
    match segments with
    | [] ->
        t.state <- Done now;
        e.unfinished <- e.unfinished - 1;
        if e.tracing then
          T.emit_at e.trace ~time:now (T.Thread_finish { thread = t.id });
        e.on_finish t.id now
    | Thread_model.Cpu c :: rest ->
        t.state <- On_cpu rest;
        t.gen <- t.gen + 1;
        post e (now +. float_of_int c) t.id t.gen
    | Thread_model.Kernel { kernel; iterations } :: rest ->
        let segment_ops = ops_of (binary e kernel) * iterations in
        e.total_ops <- e.total_ops +. float_of_int segment_ops;
        if e.tracing then
          T.emit_at e.trace ~time:now
            (T.Kernel_request
               {
                 thread = t.id;
                 kernel;
                 iterations;
                 ops = segment_ops;
                 mem = Cgra_dfg.Graph.mem_node_count (binary e kernel).graph;
                 desired = Binary.pages_used (binary e kernel);
               });
        start_kernel e now t ~kernel ~iterations ~rest

  (* [enqueue] is false when the thread is already the front entry of
     [waiters] (a retry from [serve]): it must neither be re-enqueued —
     that would leave a duplicate queue entry — nor counted as a fresh
     stall. *)
  and record_stall e now t ~kernel =
    e.stalls <- e.stalls + 1;
    Queue.add t.id e.waiters;
    if e.tracing then begin
      T.count e.trace "os.stalls" 1.0;
      T.emit_at e.trace ~time:now
        (T.Kernel_stall
           { thread = t.id; kernel; queue_depth = Queue.length e.waiters })
    end

  and record_grant e now t ~kernel ~base ~pages ~shrunk ~cost ~rate =
    if e.tracing then begin
      T.count e.trace "os.grants" 1.0;
      T.emit_at e.trace ~time:now
        (T.Kernel_grant
           { thread = t.id; kernel; range = { T.base; len = pages }; shrunk; cost;
             rate })
    end;
    e.on_grant t.id now

  and start_kernel ?(enqueue = true) e now t ~kernel ~iterations ~rest =
    let b = binary e kernel in
    match e.mode with
    | Single ->
        if e.cgra_busy_single then begin
          if enqueue then record_stall e now t ~kernel;
          t.state <- Waiting (kernel, iterations, rest)
        end
        else begin
          e.cgra_busy_single <- true;
          Hashtbl.replace e.running_kernel t.id b;
          let rate = float_of_int (Binary.ii_base b) in
          record_grant e now t ~kernel ~base:0 ~pages:e.total_pages ~shrunk:false
            ~cost:0.0 ~rate;
          t.state <-
            On_cgra
              { iters_left = float_of_int iterations; rate; pages = e.total_pages;
                base = 0; last_update = now; rest };
          t.gen <- t.gen + 1;
          post e (now +. (float_of_int iterations *. rate)) t.id t.gen
        end
    | Multi -> (
        let desired = max 1 (min (Binary.pages_used b) e.total_pages) in
        Hashtbl.replace e.running_kernel t.id b;
        T.set_clock e.trace now;
        match Allocator.request e.alloc ~client:t.id ~desired with
        | None ->
            Hashtbl.remove e.running_kernel t.id;
            if enqueue then record_stall e now t ~kernel;
            t.state <- Waiting (kernel, iterations, rest)
        | Some r ->
            let shrunk_entry = r.Allocator.len < desired in
            if shrunk_entry then e.transformations <- e.transformations + 1;
            let entry_cost = if shrunk_entry then e.reconfig_cost else 0.0 in
            let rate = rate_for e t.id r.Allocator.len in
            t.state <-
              On_cgra
                { iters_left = float_of_int iterations; rate;
                  pages = r.Allocator.len; base = r.Allocator.base;
                  last_update = now +. entry_cost; rest };
            t.gen <- t.gen + 1;
            post e (now +. entry_cost +. (float_of_int iterations *. rate)) t.id
              t.gen;
            (* the request may have shrunk a victim; PageMaster reshapes it
               before the newcomer occupies the freed half, so the victim's
               Reshape event must precede the newcomer's grant *)
            resync e now;
            record_grant e now t ~kernel ~base:r.Allocator.base
              ~pages:r.Allocator.len ~shrunk:shrunk_entry ~cost:entry_cost ~rate)

  (* The waiter stays at the front of [waiters] while it retries; the
     caller pops it only on success. *)
  and try_start_waiter e now wid =
    let w = Hashtbl.find e.by_id wid in
    match w.state with
    | Waiting (kernel, iterations, rest) -> (
        start_kernel ~enqueue:false e now w ~kernel ~iterations ~rest;
        match w.state with Waiting _ -> false | _ -> true)
    | On_cpu _ | On_cgra _ | Done _ -> true (* stale entry; drop it *)

  and record_release e now t ~base ~pages =
    if e.tracing then
      let kernel =
        match Hashtbl.find_opt e.running_kernel t.id with
        | Some (b : Binary.t) -> b.name
        | None -> "?"
      in
      T.emit_at e.trace ~time:now
        (T.Kernel_release { thread = t.id; kernel; range = { T.base; len = pages } })

  and finish_kernel e now t rest =
    (match e.mode with
    | Single -> (
        record_release e now t ~base:0 ~pages:e.total_pages;
        e.cgra_busy_single <- false;
        Hashtbl.remove e.running_kernel t.id;
        match Queue.peek_opt e.waiters with
        | Some wid -> if try_start_waiter e now wid then ignore (Queue.take e.waiters)
        | None -> ())
    | Multi ->
        (if e.tracing then
           match Allocator.allocation e.alloc ~client:t.id with
           | Some r ->
               record_release e now t ~base:r.Allocator.base ~pages:r.Allocator.len
           | None -> ());
        T.set_clock e.trace now;
        Allocator.release e.alloc ~client:t.id;
        Hashtbl.remove e.running_kernel t.id;
        let rec serve () =
          match Queue.peek_opt e.waiters with
          | None -> ()
          | Some wid ->
              if try_start_waiter e now wid then begin
                ignore (Queue.take e.waiters);
                serve ()
              end
        in
        serve ();
        ignore (Allocator.expand e.alloc);
        resync e now);
    advance e now t rest

  let submit e ~at (spec : Thread_model.t) =
    if Hashtbl.mem e.by_id spec.id then
      invalid_arg "Os_sim.Engine.submit: duplicate thread id";
    (* Enforce the monotonic-submission contract instead of silently
       producing a run that never happened: an arrival below the horizon
       (something already stepped or submitted later than [at]), or with
       an earlier internal event still queued, is rejected. *)
    if at < e.horizon then
      invalid_arg "Os_sim.Engine.submit: out-of-order arrival (before horizon)";
    (match Cgra_util.Pqueue.peek e.queue with
    | Some (te, _) when te < at ->
        invalid_arg
          "Os_sim.Engine.submit: out-of-order arrival (earlier event pending)"
    | Some _ | None -> ());
    e.horizon <- at;
    let t = { id = spec.id; state = Done at; gen = 0 } in
    Queue.add t e.threads;
    Hashtbl.replace e.by_id t.id t;
    e.unfinished <- e.unfinished + 1;
    if e.tracing then
      T.emit_at e.trace ~time:at
        (T.Thread_arrival { thread = t.id; segments = List.length spec.segments });
    advance e at t spec.segments

  let next_event e =
    match Cgra_util.Pqueue.peek e.queue with
    | Some (time, _) -> Some time
    | None -> None

  let step e =
    match Cgra_util.Pqueue.pop e.queue with
    | None -> false
    | Some ((now, (tid, gen)), rest) ->
        e.queue <- rest;
        e.horizon <- Float.max e.horizon now;
        let t = Hashtbl.find e.by_id tid in
        if gen = t.gen then begin
          match t.state with
          | On_cpu segs -> advance e now t segs
          | On_cgra k ->
              settle e now t;
              if k.iters_left <= 1e-6 then finish_kernel e now t k.rest
              else reschedule e now t
          | Waiting _ | Done _ -> ()
        end;
        true

  let rec run_until e time =
    match next_event e with
    | Some te when te <= time ->
        ignore (step e);
        run_until e time
    | Some _ | None -> ()

  let rec drain e = if step e then drain e

  let in_flight e = e.unfinished
  let free_pages e = Allocator.free_pages e.alloc
  let used_page_fraction e =
    float_of_int (e.total_pages - Allocator.free_pages e.alloc)
    /. float_of_int e.total_pages

  let result e =
    let finishes =
      Queue.fold
        (fun acc t ->
          match t.state with
          | Done time -> (t.id, time) :: acc
          | On_cpu _ | Waiting _ | On_cgra _ ->
              invalid_arg "Os_sim.run: deadlock — a thread never finished")
        [] e.threads
      |> List.rev
    in
    let makespan = List.fold_left (fun acc (_, f) -> Float.max acc f) 0.0 finishes in
    if e.tracing then begin
      T.count e.trace "os.transformations" (float_of_int e.transformations);
      T.emit_at e.trace ~time:makespan (T.Run_end { makespan })
    end;
    {
      makespan;
      finishes;
      total_ops = e.total_ops;
      ipc = (if makespan > 0.0 then e.total_ops /. makespan else 0.0);
      busy_page_cycles = e.busy_page_cycles;
      page_utilization =
        (if makespan > 0.0 then
           e.busy_page_cycles /. (makespan *. float_of_int e.total_pages)
         else 0.0);
      transformations = e.transformations;
      stalls = e.stalls;
    }
end

let run ?(policy = Allocator.Halving) ?(reconfig_cost = 0.0)
    ?(trace = Cgra_trace.Trace.null) p =
  if p.threads = [] then invalid_arg "Os_sim.run: no threads";
  let e =
    Engine.create ~policy ~reconfig_cost ~trace
      ~n_threads:(List.length p.threads) ~suite:p.suite
      ~total_pages:p.total_pages ~mode:p.mode ()
  in
  List.iter (fun spec -> Engine.submit e ~at:0.0 spec) p.threads;
  Engine.drain e;
  Engine.result e
