(** The OS-side CGRA page allocator (Section VII-B.1 of the paper).

    Pages are allocated as {e contiguous} ranges of the serpentine ring
    order — the PageMaster fold needs physically adjacent destination
    tiles.  The policy is the paper's:

    - a kernel that fits in the unused portion of the CGRA is placed
      there without disturbing anyone;
    - otherwise the thread holding the most pages is shrunk to half as
      many (its schedule re-folded by PageMaster), and the new thread
      takes the freed half;
    - when a thread leaves, its pages are merged with adjacent free space
      and running neighbours are expanded toward their desired sizes.

    The allocator is purely functional state-in/state-out at the module
    boundary (mutable inside) and knows nothing about time; the
    discrete-event simulator drives it. *)

type range = { base : int; len : int }

type policy =
  | Halving  (** the paper's policy: shrink the largest holder to half *)
  | Repack_equal
      (** ablation: on contention, repack every resident to an equal
          contiguous share (more transformations, fairer splits) *)
  | Cost_halving
      (** reconfiguration-cost-aware halving: among residents whose freed
          half covers the request, shrink the one whose kept half (the
          pages the PageMaster must re-fold — the per-reshape cost the
          [Reshape]/[Alloc_decision] trace events record) is smallest;
          falls back to the largest victim when none is big enough, so a
          grant is never smaller than under [Halving] *)

type t

val create :
  ?policy:policy -> ?trace:Cgra_trace.Trace.t -> total_pages:int -> unit -> t
(** Default policy: [Halving].  When [trace] is a live collector (default
    {!Cgra_trace.Trace.null}), every {!request} records an
    [Alloc_decision] event carrying the grant and the alternatives the
    policy weighed (free segments, halving victims, repack residents);
    the driver is expected to keep the collector's clock current. *)

val request : t -> client:int -> desired:int -> range option
(** Allocate for a new client wanting [desired] pages (its paged
    mapping's footprint).  [None] when every running client is down to a
    single page — the new client must wait (the stall regime of the 4x4
    results).  The allocation may be smaller than [desired]. *)

val release : t -> client:int -> unit
(** Free the client's range and merge free space.  Raises
    [Invalid_argument] for unknown clients. *)

val expand : t -> (int * range) list
(** Grow running clients into free space, largest deficit first, and
    return every client whose range changed (with its new range).  Call
    after {!release} and after waiters have been served. *)

val allocation : t -> client:int -> range option

val shrunk_clients : t -> (int * range) list
(** Clients whose current allocation is below their desired size. *)

val free_pages : t -> int

val clients : t -> (int * range) list
(** All allocations, sorted by base. *)

val pp : Format.formatter -> t -> unit
