type fig8_row = {
  kernel : string;
  ii_base : int;
  ii_paged : int;
  pages_used : int;
  performance_pct : float;
}

type fig8 = {
  size : int;
  page_pes : int;
  rows : fig8_row list;
  geomean_pct : float;
}

let cgra_sizes = [ 4; 6; 8 ]

let page_sizes = [ 2; 4; 8 ]

(* Optional pool plumbing: [None] keeps the historical strictly
   sequential execution; [Some pool] fans independent tasks out across
   its domains.  Both paths produce identical results (order-preserving
   maps over per-task seeds), so figures are byte-identical at any
   width. *)
let pmap pool f xs =
  match pool with Some p -> Cgra_util.Pool.map p f xs | None -> List.map f xs

let pfilter_map pool f xs =
  match pool with
  | Some p -> Cgra_util.Pool.filter_map p f xs
  | None -> List.filter_map f xs

let arch_for ~size ~page_pes =
  match Cgra_arch.Cgra.standard ~size ~page_pes with
  | Some arch -> Ok arch
  | None ->
      Error
        (Printf.sprintf
           "%dx%d with %d-PE pages leaves fewer than two pages (no multithreading \
            potential)"
           size size page_pes)

let fig8 ?(seed = 0) ?pool ~size ~page_pes () =
  match arch_for ~size ~page_pes with
  | Error _ as e -> e
  | Ok arch -> (
      match Binary.compile_suite ~seed ?pool arch with
      | Error e -> Error e
      | Ok suite ->
          let rows =
            List.map
              (fun (b : Binary.t) ->
                {
                  kernel = b.name;
                  ii_base = Binary.ii_base b;
                  ii_paged = Binary.ii_paged b;
                  pages_used = Binary.pages_used b;
                  performance_pct =
                    100.0 *. float_of_int (Binary.ii_base b)
                    /. float_of_int (Binary.ii_paged b);
                })
              suite
          in
          let geomean_pct =
            Cgra_util.Stats.geomean (List.map (fun r -> r.performance_pct) rows)
          in
          Ok { size; page_pes; rows; geomean_pct })

let fig8_all ?(seed = 0) ?pool ~size () =
  List.filter_map
    (fun page_pes -> Result.to_option (fig8 ~seed ?pool ~size ~page_pes ()))
    page_sizes

type fig9_point = {
  n_threads : int;
  improvement_pct : float;
  ipc_single : float;
  ipc_multi : float;
  utilization_single : float;
  utilization_multi : float;
  stalls : int;
  transformations : int;
}

type fig9_series = { cgra_need : float; points : fig9_point list }

type fig9 = { size : int; page_pes : int; series : fig9_series list }

let thread_counts = [ 1; 2; 4; 8; 16 ]

let cgra_needs = [ 0.5; 0.75; 0.875 ]

let fig9 ?(seed = 0) ?(replicates = 3) ?pool ~size ~page_pes () =
  match arch_for ~size ~page_pes with
  | Error _ as e -> e
  | Ok arch -> (
      match Binary.compile_suite ~seed ?pool arch with
      | Error e -> Error e
      | Ok suite ->
          let total_pages = Cgra_arch.Cgra.n_pages arch in
          let one cgra_need n_threads rep =
            let threads =
              Workload.generate
                ~seed:(seed + (1009 * rep) + (31 * n_threads))
                ~n_threads ~cgra_need ~suite ()
            in
            let run mode = Os_sim.run { suite; threads; total_pages; mode } in
            let s = run Os_sim.Single and m = run Os_sim.Multi in
            (Os_sim.improvement_percent ~single:s ~multi:m, s, m)
          in
          (* the whole (cgra_need, n_threads, replicate) grid as one flat
             task list; each task's seed depends only on its coordinates,
             and regrouping below restores the sequential accumulation
             order exactly *)
          let tasks =
            List.concat_map
              (fun cgra_need ->
                List.concat_map
                  (fun n_threads ->
                    List.init replicates (fun rep -> (cgra_need, n_threads, rep)))
                  thread_counts)
              cgra_needs
          in
          let results =
            Array.of_list
              (pmap pool (fun (need, n_threads, rep) -> one need n_threads rep) tasks)
          in
          let n_counts = List.length thread_counts in
          let point need_i nt_i n_threads =
            let runs =
              List.init replicates (fun rep ->
                  results.((((need_i * n_counts) + nt_i) * replicates) + rep))
            in
            let mean f = Cgra_util.Stats.mean (List.map f runs) in
            {
              n_threads;
              improvement_pct = mean (fun (i, _, _) -> i);
              ipc_single = mean (fun (_, s, _) -> s.Os_sim.ipc);
              ipc_multi = mean (fun (_, _, m) -> m.Os_sim.ipc);
              utilization_single = mean (fun (_, s, _) -> s.Os_sim.page_utilization);
              utilization_multi = mean (fun (_, _, m) -> m.Os_sim.page_utilization);
              stalls =
                List.fold_left (fun acc (_, _, m) -> acc + m.Os_sim.stalls) 0 runs;
              transformations =
                List.fold_left
                  (fun acc (_, _, m) -> acc + m.Os_sim.transformations)
                  0 runs;
            }
          in
          let series =
            List.mapi
              (fun need_i cgra_need ->
                {
                  cgra_need;
                  points =
                    List.mapi
                      (fun nt_i n_threads -> point need_i nt_i n_threads)
                      thread_counts;
                })
              cgra_needs
          in
          Ok { size; page_pes; series })

let fig9_all ?(seed = 0) ?(replicates = 3) ?pool ~size () =
  List.filter_map
    (fun page_pes ->
      Result.to_option (fig9 ~seed ~replicates ?pool ~size ~page_pes ()))
    page_sizes

let render_fig8 (f : fig8) =
  let header = [ "kernel"; "II_base"; "II_paged"; "pages"; "performance" ] in
  let rows =
    List.map
      (fun r ->
        [
          r.kernel;
          string_of_int r.ii_base;
          string_of_int r.ii_paged;
          string_of_int r.pages_used;
          Cgra_util.Table.fmt_percent r.performance_pct;
        ])
      f.rows
    @ [ [ "geomean"; ""; ""; ""; Cgra_util.Table.fmt_percent f.geomean_pct ] ]
  in
  Printf.sprintf "Fig. 8 — %dx%d CGRA, %d-PE pages (constrained vs baseline II)\n%s"
    f.size f.size f.page_pes
    (Cgra_util.Table.render ~header rows)

(* ----- ablations ----- *)

type ablation_row = { label : string; metrics : (string * float) list }

let improvement_at ~suite ~total_pages ~seed ?policy ?reconfig_cost n_threads =
  let replicates = 2 in
  let one rep =
    let threads =
      Workload.generate ~seed:(seed + (1009 * rep) + (31 * n_threads)) ~n_threads
        ~cgra_need:0.875 ~suite ()
    in
    let s = Os_sim.run { suite; threads; total_pages; mode = Os_sim.Single } in
    let m = Os_sim.run ?policy ?reconfig_cost { suite; threads; total_pages; mode = Os_sim.Multi } in
    (Os_sim.improvement_percent ~single:s ~multi:m, m.Os_sim.transformations)
  in
  let runs = List.init replicates one in
  ( Cgra_util.Stats.mean (List.map (fun (i, _) -> i) runs),
    List.fold_left (fun acc (_, t) -> acc + t) 0 runs )

let ablation_reconfig_cost ?(seed = 0) ?pool ~size ~page_pes ~costs () =
  match arch_for ~size ~page_pes with
  | Error _ as e -> e
  | Ok arch -> (
      match Binary.compile_suite ~seed ?pool arch with
      | Error e -> Error e
      | Ok suite ->
          let total_pages = Cgra_arch.Cgra.n_pages arch in
          (* (cost, thread count) cells fan out; rows regroup in order *)
          let cells =
            pmap pool
              (fun (cost, n_threads) ->
                fst
                  (improvement_at ~suite ~total_pages ~seed
                     ~reconfig_cost:(float_of_int cost) n_threads))
              (List.concat_map (fun c -> [ (c, 8); (c, 16) ]) costs)
          in
          let cells = Array.of_list cells in
          Ok
            (List.mapi
               (fun i cost ->
                 {
                   label = Printf.sprintf "%d cycles/reshape" cost;
                   metrics =
                     [
                       ("T8 improvement %", cells.(2 * i));
                       ("T16 improvement %", cells.((2 * i) + 1));
                     ];
                 })
               costs))

let ablation_policy ?(seed = 0) ?pool ~size ~page_pes () =
  match arch_for ~size ~page_pes with
  | Error _ as e -> e
  | Ok arch -> (
      match Binary.compile_suite ~seed ?pool arch with
      | Error e -> Error e
      | Ok suite ->
          let total_pages = Cgra_arch.Cgra.n_pages arch in
          let policies =
            [
              ("halving (paper)", Allocator.Halving);
              ("equal repack", Allocator.Repack_equal);
            ]
          in
          let cells =
            pmap pool
              (fun (policy, n_threads) ->
                improvement_at ~suite ~total_pages ~seed ~policy n_threads)
              (List.concat_map (fun (_, p) -> [ (p, 8); (p, 16) ]) policies)
          in
          let cells = Array.of_list cells in
          Ok
            (List.mapi
               (fun i (label, _) ->
                 let i8, t8 = cells.(2 * i) in
                 let i16, t16 = cells.((2 * i) + 1) in
                 {
                   label;
                   metrics =
                     [
                       ("T8 improvement %", i8);
                       ("T16 improvement %", i16);
                       ("T8 reshapes", float_of_int t8);
                       ("T16 reshapes", float_of_int t16);
                     ];
                 })
               policies))

let ablation_mem_ports ?(seed = 0) ?pool ~size ~page_pes ~ports () =
  match Cgra_arch.Page.for_size (Cgra_arch.Grid.square size) page_pes with
  | None -> Error "unsupported configuration"
  | Some pages ->
      let rows =
        pfilter_map pool
          (fun p ->
            let arch = Cgra_arch.Cgra.make ~mem_ports_per_row:p pages in
            match Binary.compile_suite ~seed arch with
            | Error _ -> None
            | Ok suite ->
                let perf =
                  Cgra_util.Stats.geomean
                    (List.map
                       (fun (b : Binary.t) ->
                         100.0 *. float_of_int (Binary.ii_base b)
                         /. float_of_int (Binary.ii_paged b))
                       suite)
                in
                Some
                  {
                    label = Printf.sprintf "%d port(s)/row" p;
                    metrics = [ ("Fig.8 geomean %", perf) ];
                  })
          ports
      in
      Ok rows

let render_ablation ~title rows =
  match rows with
  | [] -> title ^ ": (no rows)"
  | first :: _ ->
      let header = "" :: List.map fst first.metrics in
      let body =
        List.map
          (fun r -> r.label :: List.map (fun (_, v) -> Printf.sprintf "%.1f" v) r.metrics)
          rows
      in
      Printf.sprintf "%s\n%s" title (Cgra_util.Table.render ~header body)

let render_fig9 (f : fig9) =
  let header =
    [ "need"; "threads"; "improvement"; "IPC single"; "IPC multi"; "util multi";
      "stalls"; "transforms" ]
  in
  let rows =
    List.concat_map
      (fun s ->
        List.map
          (fun p ->
            [
              Printf.sprintf "%.1f%%" (100.0 *. s.cgra_need);
              string_of_int p.n_threads;
              Cgra_util.Table.fmt_percent p.improvement_pct;
              Cgra_util.Table.fmt_float ~decimals:2 p.ipc_single;
              Cgra_util.Table.fmt_float ~decimals:2 p.ipc_multi;
              Cgra_util.Table.fmt_percent (100.0 *. p.utilization_multi);
              string_of_int p.stalls;
              string_of_int p.transformations;
            ])
          s.points)
      f.series
  in
  Printf.sprintf
    "Fig. 9 — %dx%d CGRA, %d-PE pages (multithreaded vs single-threaded)\n%s" f.size
    f.size f.page_pes
    (Cgra_util.Table.render ~header rows)
