(** The paper's evaluation, reproduced (Section VII).

    Figure 8: per-benchmark performance of the paging-constrained compiler
    relative to the unconstrained baseline, [100 * II_b / II_c], for each
    CGRA size and page size.  100% means the constraints cost nothing.

    Figure 9: total-throughput improvement of the multithreaded CGRA over
    the single-threaded non-preemptive CGRA for 1–16 concurrent threads at
    low/medium/high CGRA need (50% / 75% / 87.5%), averaged over several
    random workloads.

    Both figures are returned as structured rows and rendered as aligned
    text tables by the bench harness; see EXPERIMENTS.md for the recorded
    paper-vs-measured comparison.

    Every entry point takes an optional [?pool] ({!Cgra_util.Pool}): the
    independent (CGRA-need, thread-count, replicate) tasks — each with
    its own derived seed — then fan out across domains.  Results are
    regrouped in sequential order, so output is {e byte-identical} at
    any pool width; omitting [pool] keeps the historical sequential
    path. *)

type fig8_row = {
  kernel : string;
  ii_base : int;
  ii_paged : int;
  pages_used : int;
  performance_pct : float;  (** [100 * ii_base / ii_paged] *)
}

type fig8 = {
  size : int;
  page_pes : int;
  rows : fig8_row list;
  geomean_pct : float;
}

val fig8 :
  ?seed:int -> ?pool:Cgra_util.Pool.t -> size:int -> page_pes:int -> unit ->
  (fig8, string) result
(** [Error] when the page size leaves fewer than two pages (the paper's
    own omission, e.g. 8-PE pages on 4x4) or a kernel fails to map. *)

val fig8_all : ?seed:int -> ?pool:Cgra_util.Pool.t -> size:int -> unit -> fig8 list
(** The page sizes 2, 4, 8 that apply to this CGRA size — one Fig. 8
    sub-figure. *)

type fig9_point = {
  n_threads : int;
  improvement_pct : float;  (** mean over replicates *)
  ipc_single : float;
  ipc_multi : float;
  utilization_single : float;
  utilization_multi : float;
  stalls : int;  (** total over replicates, multithreaded mode *)
  transformations : int;  (** PageMaster invocations over replicates *)
}

type fig9_series = { cgra_need : float; points : fig9_point list }

type fig9 = { size : int; page_pes : int; series : fig9_series list }

val fig9 :
  ?seed:int -> ?replicates:int -> ?pool:Cgra_util.Pool.t -> size:int ->
  page_pes:int -> unit -> (fig9, string) result
(** Default 3 replicate workloads per point; thread counts 1, 2, 4, 8,
    16; CGRA needs 0.5, 0.75, 0.875. *)

val fig9_all :
  ?seed:int -> ?replicates:int -> ?pool:Cgra_util.Pool.t -> size:int -> unit ->
  fig9 list

val render_fig8 : fig8 -> string

val render_fig9 : fig9 -> string

val cgra_sizes : int list
(** [4; 6; 8] — the paper's three fabrics. *)

val page_sizes : int list
(** [2; 4; 8]. *)

(** {2 Ablations}

    Design-choice sweeps DESIGN.md calls out, not present in the paper:
    each reports the Fig. 9 improvement at 8 and 16 threads (87.5% CGRA
    need) under a varied assumption. *)

type ablation_row = { label : string; metrics : (string * float) list }

val ablation_reconfig_cost :
  ?seed:int -> ?pool:Cgra_util.Pool.t -> size:int -> page_pes:int ->
  costs:int list -> unit -> (ablation_row list, string) result
(** Charge N cycles per PageMaster reshape (the paper assumes 0): where
    does the multithreading gain erode?  Metrics: improvement at 8 and
    16 threads, 87.5% CGRA need. *)

val ablation_policy :
  ?seed:int -> ?pool:Cgra_util.Pool.t -> size:int -> page_pes:int -> unit ->
  (ablation_row list, string) result
(** The paper's halving policy vs. equal-share repacking.  Metrics:
    improvement and transformation counts at 8 and 16 threads. *)

val ablation_mem_ports :
  ?seed:int -> ?pool:Cgra_util.Pool.t -> size:int -> page_pes:int ->
  ports:int list -> unit -> (ablation_row list, string) result
(** Row-bus width sensitivity of the {e compiler}: Fig. 8 geomean per
    ports-per-row value. *)

val render_ablation : title:string -> ablation_row list -> string
