(* Benchmark harness: regenerates every figure of the paper's evaluation
   and micro-benchmarks the PageMaster transformation (the low-order
   polynomial-time claim) and the compiler.

   Usage:  dune exec bench/main.exe                  (everything)
           dune exec bench/main.exe -- fig8          (Fig. 8 only)
           dune exec bench/main.exe -- fig9          (Fig. 9 only)
           dune exec bench/main.exe -- micro         (micro-benchmarks)
           dune exec bench/main.exe -- micro --json  (also write BENCH_micro.json)
           dune exec bench/main.exe -- fig9 --json   (also write BENCH_fig9.json)
           dune exec bench/main.exe -- fig8 --json   (also write BENCH_fig8.json)
           dune exec bench/main.exe -- farm --json   (also write BENCH_farm.json)
           dune exec bench/main.exe -- gate          (re-run + compare baselines)
           dune exec bench/main.exe -- gate --check  (validate baselines only)

   Timing discipline: every micro row is min-of-N (warm-up, calibrated
   repetition count, N timed samples, minimum recorded) with the run
   count and (max-min)/min spread stored beside the value, so the
   committed BENCH_*.json rows are gate-able — `gate` re-measures and
   fails loudly when a row regresses beyond its tolerance
   (Cgra_prof.Bench_gate).

   Parallel sections (fig8/fig9/ablation sweeps) fan out across
   CGRA_DOMAINS worker domains; output is byte-identical at any width.
   The BENCH_*.json files at the repo root are the committed perf
   baseline — regenerate with `make bench-json` and compare trajectories
   across PRs. *)

open Cgra_core

let line = String.make 78 '='

let section title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* ----- min-of-N timing ----- *)

type measured = {
  m_name : string;
  ns : float;  (* minimum ns per run over the samples *)
  runs : int;  (* samples taken *)
  spread : float;  (* (max-min)/min over the samples, percent *)
  domains : int;  (* pool width the measured code ran at *)
}

let n_samples = 5

(* One measurement: warm up once, grow the repetition count until one
   batch takes >= 20 ms (so the 1 us clock quantizes below 0.01%), then
   take [n_samples] batches and keep the minimum — the least-disturbed
   run on a shared machine, which is what makes committed rows stable
   enough to gate on. *)
let measure ?(domains = 1) name f =
  ignore (f ());
  let batch reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    Unix.gettimeofday () -. t0
  in
  let rec calibrate reps =
    if batch reps >= 0.02 || reps >= 1_000_000 then reps
    else calibrate (reps * 4)
  in
  let reps = calibrate 1 in
  let samples =
    List.init n_samples (fun _ -> batch reps /. float_of_int reps *. 1e9)
  in
  let mn = List.fold_left Float.min infinity samples in
  let mx = List.fold_left Float.max neg_infinity samples in
  {
    m_name = name;
    ns = mn;
    runs = n_samples;
    spread = (if mn > 0.0 then (mx -. mn) /. mn *. 100.0 else 0.0);
    domains;
  }

let show rows =
  List.iter
    (fun r ->
      let human =
        if r.ns >= 1_000_000.0 then Printf.sprintf "%10.2f ms/run" (r.ns /. 1e6)
        else if r.ns >= 1_000.0 then Printf.sprintf "%10.2f us/run" (r.ns /. 1e3)
        else Printf.sprintf "%10.0f ns/run" r.ns
      in
      Printf.printf "  %-40s %s  (min of %d, spread %.1f%%)\n" r.m_name human
        r.runs r.spread)
    rows

(* ----- machine-readable baselines ----- *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* [results] are measured rows in [unit_]; validated with the project's
   own JSON parser before the file is written, and parseable back with
   Cgra_prof.Bench_gate.parse (the gate's reader). *)
let bench_doc ~bench ~unit_ ~domains ~extras results =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"bench\": %s,\n" (json_string bench);
  Printf.bprintf b "  \"domains\": %d,\n" domains;
  List.iter (fun (k, v) -> Printf.bprintf b "  %s: %s,\n" (json_string k) v) extras;
  Printf.bprintf b "  \"unit\": %s,\n" (json_string unit_);
  Buffer.add_string b "  \"results\": [\n";
  let n = List.length results in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    { \"name\": %s, \"value\": %.3f, \"domains\": %d, \"runs\": %d, \
         \"spread\": %.1f }%s\n"
        (json_string r.m_name) r.ns r.domains r.runs r.spread
        (if i = n - 1 then "" else ","))
    results;
  Buffer.add_string b "  ]\n}\n";
  let data = Buffer.contents b in
  (match Cgra_trace.Json.parse data with
  | Ok _ -> ()
  | Error e -> failwith ("emitted " ^ bench ^ " baseline is not valid JSON: " ^ e));
  (match Cgra_prof.Bench_gate.parse data with
  | Ok _ -> ()
  | Error e -> failwith ("emitted " ^ bench ^ " baseline does not gate-parse: " ^ e));
  data

let write_bench_json ~path ~bench ~unit_ ~domains ~extras results =
  let data = bench_doc ~bench ~unit_ ~domains ~extras results in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data);
  Printf.printf "\nwrote %s (%d results, %s)\n" path (List.length results) unit_

(* ----- Fig. 8: compile-time constraint cost ----- *)

(* The gated quality rows: every fabric's 4-PE-page geomean (the page
   size all three fabrics share, and the one Fig. 8 headlines).  These
   are deterministic functions of the scheduler at seed 0 — no timing,
   no spread — so the gate direction flips: a drop in any row means the
   compiler got worse at its job. *)
let fig8_rows ~pool ~quiet () =
  let w = Cgra_util.Pool.width pool in
  List.filter_map
    (fun size ->
      List.find_map
        (fun (f : Experiments.fig8) ->
          if f.page_pes <> 4 then None
          else begin
            if not quiet then begin
              print_newline ();
              print_endline (Experiments.render_fig8 f)
            end;
            Some
              {
                m_name = Printf.sprintf "fig8 %dx%d p4 geomean" size size;
                ns = f.geomean_pct;
                runs = 1;
                spread = 0.0;
                domains = w;
              }
          end)
        (Experiments.fig8_all ~pool ~size ()))
    Experiments.cgra_sizes

let run_fig8 ~pool ~json () =
  section "Figure 8 - performance cost of the paging constraints (100 * II_b / II_c)";
  List.iter
    (fun size ->
      List.iter
        (fun f ->
          print_newline ();
          print_endline (Experiments.render_fig8 f))
        (Experiments.fig8_all ~pool ~size ()))
    Experiments.cgra_sizes;
  if json then
    write_bench_json ~path:"BENCH_fig8.json" ~bench:"fig8" ~unit_:"percent"
      ~domains:(Cgra_util.Pool.width pool) ~extras:[]
      (fig8_rows ~pool ~quiet:true ())

(* ----- Fig. 9: multithreading improvement ----- *)

(* Wall-clock rows are min-of-N too: each sample clears the compile memo
   so every run pays the same (cold) compile path, and only the first
   sample prints the figures. *)
let fig9_samples = 3

let fig9_rows ~pool ~replicates ~quiet () =
  let w = Cgra_util.Pool.width pool in
  List.map
    (fun size ->
      let sample i =
        Binary.clear_cache ();
        let t0 = Unix.gettimeofday () in
        let figs = Experiments.fig9_all ~replicates ~pool ~size () in
        let dt = Unix.gettimeofday () -. t0 in
        if i = 0 && not quiet then
          List.iter
            (fun f ->
              print_newline ();
              print_endline (Experiments.render_fig9 f))
            figs;
        dt
      in
      let samples = List.init fig9_samples sample in
      let mn = List.fold_left Float.min infinity samples in
      let mx = List.fold_left Float.max neg_infinity samples in
      {
        m_name = Printf.sprintf "fig9 %dx%d sweep" size size;
        ns = mn;
        runs = fig9_samples;
        spread = (if mn > 0.0 then (mx -. mn) /. mn *. 100.0 else 0.0);
        domains = w;
      })
    Experiments.cgra_sizes

let fig9_with_total rows ~w =
  let total = List.fold_left (fun acc r -> acc +. r.ns) 0.0 rows in
  let spread =
    List.fold_left (fun acc r -> Float.max acc r.spread) 0.0 rows
  in
  rows
  @ [
      { m_name = "fig9 full sweep"; ns = total; runs = fig9_samples; spread;
        domains = w };
    ]

let run_fig9 ~pool ~replicates ~json () =
  section
    (Printf.sprintf
       "Figure 9 - throughput improvement of multithreading (mean of %d workloads)"
       replicates);
  let rows = fig9_rows ~pool ~replicates ~quiet:false () in
  let w = Cgra_util.Pool.width pool in
  if json then
    write_bench_json ~path:"BENCH_fig9.json" ~bench:"fig9" ~unit_:"wall_s"
      ~domains:w
      ~extras:[ ("replicates", string_of_int replicates) ]
      (fig9_with_total rows ~w)

(* ----- micro-benchmarks ----- *)

let transform_benches () =
  (* the PageMaster fold on real kernel mappings *)
  let arch = Option.get (Cgra_arch.Cgra.standard ~size:8 ~page_pes:4) in
  let mapping name =
    match
      Cgra_mapper.Scheduler.map Cgra_mapper.Scheduler.Paged arch
        (Cgra_kernels.Kernels.find_exn name).graph
    with
    | Ok m -> m
    | Error e -> failwith e
  in
  let sobel = mapping "sobel" in
  let swim = mapping "swim" in
  [
    ( "fold sobel 8x8 to 1 page",
      fun () -> ignore (Result.get_ok (Transform.fold ~target_pages:1 sobel)) );
    ( "fold swim 8x8 to 2 pages",
      fun () -> ignore (Result.get_ok (Transform.fold ~target_pages:2 swim)) );
  ]

let greedy_benches () =
  (* Algorithm 1 at growing page counts: the low-order-polynomial claim *)
  List.map
    (fun n ->
      ( Printf.sprintf "greedy transform N=%03d to M=%03d" n (max 1 (n / 2)),
        fun () -> ignore (Greedy.run ~n ~m:(max 1 (n / 2)) ~ii_p:2 ~iterations:8)
      ))
    [ 8; 16; 32; 64; 128; 256 ]

let mapper_benches () =
  let arch = Option.get (Cgra_arch.Cgra.standard ~size:4 ~page_pes:4) in
  let mpeg = (Cgra_kernels.Kernels.find_exn "mpeg").graph in
  let sobel = (Cgra_kernels.Kernels.find_exn "sobel").graph in
  [
    ( "compile mpeg 4x4 (paged)",
      fun () ->
        ignore
          (Result.get_ok
             (Cgra_mapper.Scheduler.map Cgra_mapper.Scheduler.Paged arch mpeg)) );
    ( "compile sobel 4x4 (paged)",
      fun () ->
        ignore
          (Result.get_ok
             (Cgra_mapper.Scheduler.map Cgra_mapper.Scheduler.Paged arch sobel)) );
  ]

(* The same compiles with the (II, attempt) ladder raced across a pool —
   results are bit-identical to the sequential rows above; only the wall
   clock differs.  [j] is the requested lane count (the pool clamps to
   the machine's cores, so the effective width may be lower). *)
let mapper_raced_benches ~pool ~j () =
  let arch = Option.get (Cgra_arch.Cgra.standard ~size:4 ~page_pes:4) in
  let mpeg = (Cgra_kernels.Kernels.find_exn "mpeg").graph in
  let sobel = (Cgra_kernels.Kernels.find_exn "sobel").graph in
  [
    ( Printf.sprintf "compile mpeg 4x4 (paged, -j %d)" j,
      fun () ->
        ignore
          (Result.get_ok
             (Cgra_mapper.Scheduler.map ~pool Cgra_mapper.Scheduler.Paged arch
                mpeg)) );
    ( Printf.sprintf "compile sobel 4x4 (paged, -j %d)" j,
      fun () ->
        ignore
          (Result.get_ok
             (Cgra_mapper.Scheduler.map ~pool Cgra_mapper.Scheduler.Paged arch
                sobel)) );
  ]

(* Warm start: thread launch as a disk read.  The suite is compiled once
   into a throwaway store; each timed run then drops the in-memory memo,
   so what's on the clock is the full artifact path — open, integrity
   check, decode — with zero scheduler runs.  Contrast with the cold
   "compile sobel 4x4 (paged)" row above. *)
let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_warm_store f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cgra-bench-store-%d" (Unix.getpid ()))
  in
  let store = Cgra_store.open_ dir in
  let arch = Option.get (Cgra_arch.Cgra.standard ~size:4 ~page_pes:4) in
  Binary.clear_cache ();
  (match Binary.compile_suite arch with
  | Ok bs ->
      List.iter2
        (fun b k -> Cgra_store.save store ~seed:0 arch k b)
        bs Cgra_kernels.Kernels.all
  | Error e -> failwith e);
  Cgra_store.install store;
  Fun.protect
    ~finally:(fun () ->
      Cgra_store.uninstall ();
      Binary.clear_cache ();
      rm_rf dir)
    (fun () -> f arch)

let warm_start_benches arch =
  let sobel = Cgra_kernels.Kernels.find_exn "sobel" in
  [
    ( "compile-sobel-warm",
      fun () ->
        Binary.clear_cache ();
        ignore (Result.get_ok (Binary.compile arch sobel)) );
    ( "compile-suite-warm",
      fun () ->
        Binary.clear_cache ();
        ignore (Result.get_ok (Binary.compile_suite arch)) );
  ]

let micro_rows ~quiet () =
  let collect title benches =
    if not quiet then print_endline title;
    let rows = List.map (fun (name, f) -> measure name f) benches in
    if not quiet then show rows;
    rows
  in
  let transform_rows =
    collect "\nPageMaster fold (runtime transformation):" (transform_benches ())
  in
  let greedy_rows =
    collect "\nGreedy Algorithm 1 (page-level, growing N, 8 kernel iterations):"
      (greedy_benches ())
  in
  let mapper_rows =
    collect
      "\nCompiler (for contrast: the transformation must be, and is, orders of\n\
       magnitude cheaper than recompiling):"
      (mapper_benches ())
  in
  let raced_rows =
    if not quiet then
      print_endline
        "\nCompiler, speculative race (same results, ladder fanned across 4 \
         domains):";
    let rows =
      Cgra_util.Pool.with_pool ~domains:4 (fun pool ->
          List.map
            (fun (name, f) -> measure ~domains:4 name f)
            (mapper_raced_benches ~pool ~j:4 ()))
    in
    if not quiet then show rows;
    rows
  in
  let warm_rows =
    if not quiet then
      print_endline
        "\nWarm start from the persistent store (per-run: drop the in-memory \
         memo,\n\
         then load, integrity-check and decode the disk artifact; 0 scheduler \
         runs):";
    let rows =
      with_warm_store (fun arch ->
          List.map (fun (name, f) -> measure name f) (warm_start_benches arch))
    in
    if not quiet then show rows;
    rows
  in
  transform_rows @ greedy_rows @ mapper_rows @ raced_rows @ warm_rows

let run_micro ~json () =
  section "Micro-benchmarks - PageMaster runtime vs. compiler runtime";
  let rows = micro_rows ~quiet:false () in
  if json then
    write_bench_json ~path:"BENCH_micro.json" ~bench:"micro" ~unit_:"ns_per_run"
      ~domains:1 ~extras:[] rows

(* ----- farm: sustained-load serving rows ----- *)

(* The farm quality rows are virtual-clock simulation outputs —
   deterministic functions of the seed, like fig8 — and the gate
   compares them with a flat epsilon: throughput rows gate upward, the
   latency quantiles gate downward.  They still run min-of-3 with the
   spread measured rather than asserted: a nonzero spread in a committed
   file would itself be a determinism bug, surfaced where the gate can
   see it.  Three-plus offered loads trace the load curve from headroom
   through saturation. *)
let farm_samples = 3

let farm_loads = [ 0.5; 1.0; 2.0; 4.0 ]

let farm_run ~pool p =
  match Cgra_farm.Farm.run ~pool p with
  | Ok r -> r
  | Error e ->
      failwith
        (Printf.sprintf "farm load %.1f: %s" p.Cgra_farm.Farm.offered_load e)

let farm_quality_metrics =
  [
    ("req/kcycle", fun (r : Cgra_farm.Farm.report) -> r.Cgra_farm.Farm.throughput);
    ("latency p50", fun r -> r.Cgra_farm.Farm.latency.p50);
    ("latency p99", fun r -> r.Cgra_farm.Farm.latency.p99);
  ]

(* One config, min-of-[farm_samples]: returns the first report (for
   rendering) and the metric rows. *)
let farm_metric_rows ~pool ~prefix p =
  let w = Cgra_util.Pool.width pool in
  let reports = List.init farm_samples (fun _ -> farm_run ~pool p) in
  let rows =
    List.map
      (fun (name, read) ->
        let samples = List.map read reports in
        let mn = List.fold_left Float.min infinity samples in
        let mx = List.fold_left Float.max neg_infinity samples in
        {
          m_name = Printf.sprintf "%s %s" prefix name;
          ns = mn;
          runs = farm_samples;
          spread = (if mn > 0.0 then (mx -. mn) /. mn *. 100.0 else 0.0);
          domains = w;
        })
      farm_quality_metrics
  in
  (List.hd reports, rows)

let farm_rows ~pool ~quiet () =
  List.concat_map
    (fun load ->
      let p = { Cgra_farm.Farm.default_params with offered_load = load } in
      let first, rows =
        farm_metric_rows ~pool ~prefix:(Printf.sprintf "farm load%.1f" load) p
      in
      if not quiet then begin
        print_newline ();
        print_string (Cgra_farm.Farm.render first)
      end;
      rows)
    farm_loads

let run_farm ~pool ~json () =
  section
    "Farm - sustained multi-tenant load on the mixed fleet (deterministic, \
     virtual clock)";
  let rows = farm_rows ~pool ~quiet:false () in
  if json then
    write_bench_json ~path:"BENCH_farm.json" ~bench:"farm"
      ~unit_:"req_per_kcycle|cycles" ~domains:(Cgra_util.Pool.width pool)
      ~extras:
        [ ("requests", string_of_int Cgra_farm.Farm.default_params.n_requests);
          ("seed", string_of_int Cgra_farm.Farm.default_params.seed) ]
      rows

(* ----- farm-big: the at-scale harness ----- *)

(* Farm.big_params: 24 mixed shards, 8 tenants, 10^4 requests.  The
   committed file carries three row families: quality at nominal load,
   the overload pair (load 2.0, reconfig cost 100) that pins the
   cost-aware dispatch win — least-loaded and cost-aware side by side,
   so the p99 improvement is in the baseline itself, not a claim — and
   the wall-clock simulation rate of the epoch coordinator at -j1 vs
   -j4 with the speedup row Bench_gate holds to its machine-aware
   floor. *)

let farm_big_quality_rows ~pool ~quiet () =
  let p = Cgra_farm.Farm.big_params in
  let show (r : Cgra_farm.Farm.report) =
    if not quiet then begin
      print_newline ();
      print_string (Cgra_farm.Farm.render r)
    end
  in
  let first, base_rows =
    farm_metric_rows ~pool ~prefix:"farm-big load1.0" p
  in
  show first;
  let overload dispatch =
    let p =
      { p with Cgra_farm.Farm.offered_load = 2.0; reconfig_cost = 100.0;
        dispatch }
    in
    let first, rows =
      farm_metric_rows ~pool
        ~prefix:
          (Printf.sprintf "farm-big load2.0 rc100 %s"
             (Cgra_farm.Farm.dispatch_name dispatch))
        p
    in
    show first;
    rows
  in
  base_rows
  @ overload Cgra_farm.Farm.Least_loaded
  @ overload Cgra_farm.Farm.Cost_aware

(* Requests per wall-second through the coordinator, min-of-N (best
   rate), with the suite compile pre-warmed so the clock sees the
   discrete-event front end and not the mapper.  Each width gets its own
   pool; the row records the pool's effective width, which is what the
   gate's speedup floor keys on. *)
let farm_big_rate_rows ~quiet () =
  let p = Cgra_farm.Farm.big_params in
  let rate j =
    Cgra_util.Pool.with_pool ~domains:j (fun pool ->
        let w = Cgra_util.Pool.width pool in
        ignore (farm_run ~pool p);
        let samples =
          List.init farm_samples (fun _ ->
              let t0 = Unix.gettimeofday () in
              ignore (farm_run ~pool p);
              float_of_int p.Cgra_farm.Farm.n_requests
              /. (Unix.gettimeofday () -. t0))
        in
        let mn = List.fold_left Float.min infinity samples in
        let mx = List.fold_left Float.max neg_infinity samples in
        let spread = if mn > 0.0 then (mx -. mn) /. mn *. 100.0 else 0.0 in
        (w, mx, spread))
  in
  let w1, r1, s1 = rate 1 in
  let w4, r4, s4 = rate 4 in
  let rows =
    [
      { m_name = "farm-big sim-rate -j1"; ns = r1; runs = farm_samples;
        spread = s1; domains = w1 };
      { m_name = "farm-big sim-rate -j4"; ns = r4; runs = farm_samples;
        spread = s4; domains = w4 };
      { m_name = "farm-big sim-rate speedup -j4/-j1"; ns = r4 /. r1;
        runs = farm_samples; spread = 0.0; domains = w4 };
    ]
  in
  if not quiet then begin
    print_endline "\nFront-end simulation rate (requests/wall-second):";
    List.iter
      (fun r ->
        let value =
          if Cgra_prof.Bench_gate.speedup r.m_name then
            Printf.sprintf "%12.2fx" r.ns
          else Printf.sprintf "%7.0f req/s" r.ns
        in
        Printf.printf "  %-36s %s  (best of %d, spread %.1f%%, %d domain%s)\n"
          r.m_name value r.runs r.spread r.domains
          (if r.domains = 1 then "" else "s"))
      rows
  end;
  rows

let run_farm_big ~pool ~json () =
  section
    "Farm at scale - 24 mixed shards, 8 tenants, 10000 requests (epoch \
     coordinator)";
  let quality = farm_big_quality_rows ~pool ~quiet:false () in
  let rates = farm_big_rate_rows ~quiet:false () in
  if json then
    write_bench_json ~path:"BENCH_farm_big.json" ~bench:"farm-big"
      ~unit_:"req_per_kcycle|cycles|req_per_wall_s"
      ~domains:(Cgra_util.Pool.width pool)
      ~extras:
        [ ("requests", string_of_int Cgra_farm.Farm.big_params.n_requests);
          ("shards",
           string_of_int (List.length Cgra_farm.Farm.big_params.fleet));
          ("tenants", string_of_int Cgra_farm.Farm.big_params.n_tenants);
          ("seed", string_of_int Cgra_farm.Farm.big_params.seed) ]
      (quality @ rates)

(* ----- gate: the enforced perf contract ----- *)

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error e -> failwith e

let load_baseline path =
  match Cgra_prof.Bench_gate.parse (read_file path) with
  | Ok doc -> doc
  | Error e -> failwith (path ^ ": " ^ e)

(* [check_only] compares each committed baseline against itself: it
   proves the file parses, every row has a tolerance, and the
   self-comparison passes — cheap enough for @smoke.  The full gate
   re-measures and compares for real. *)
let run_gate ~pool ~check_only ~micro_path ~fig9_path ~fig8_path ~farm_path
    ~farm_big_path () =
  section
    (if check_only then "Bench gate - baseline validation (tolerance check only)"
     else "Bench gate - fresh measurements vs. committed baselines");
  let gate name baseline current =
    let outcomes = Cgra_prof.Bench_gate.check ~baseline ~current in
    Printf.printf "\n%s (%s):\n%s" name baseline.Cgra_prof.Bench_gate.unit_
      (Cgra_prof.Bench_gate.render ~unit_:baseline.Cgra_prof.Bench_gate.unit_
         outcomes);
    Cgra_prof.Bench_gate.failures outcomes
  in
  let micro_base = load_baseline micro_path in
  let fig9_base = load_baseline fig9_path in
  let fig8_base = load_baseline fig8_path in
  let farm_base = load_baseline farm_path in
  let farm_big_base = Option.map load_baseline farm_big_path in
  let micro_cur, fig9_cur, fig8_cur, farm_cur, farm_big_cur =
    if check_only then
      (micro_base, fig9_base, fig8_base, farm_base, farm_big_base)
    else begin
      let micro_rows = micro_rows ~quiet:true () in
      let micro_doc =
        bench_doc ~bench:"micro" ~unit_:"ns_per_run" ~domains:1 ~extras:[]
          micro_rows
      in
      let fig9_rows = fig9_rows ~pool ~replicates:3 ~quiet:true () in
      let w = Cgra_util.Pool.width pool in
      let fig9_doc =
        bench_doc ~bench:"fig9" ~unit_:"wall_s" ~domains:w
          ~extras:[ ("replicates", "3") ]
          (fig9_with_total fig9_rows ~w)
      in
      let fig8_doc =
        bench_doc ~bench:"fig8" ~unit_:"percent" ~domains:w ~extras:[]
          (fig8_rows ~pool ~quiet:true ())
      in
      let farm_doc =
        bench_doc ~bench:"farm" ~unit_:"req_per_kcycle|cycles" ~domains:w
          ~extras:[] (farm_rows ~pool ~quiet:true ())
      in
      let farm_big_doc =
        Option.map
          (fun _ ->
            bench_doc ~bench:"farm-big"
              ~unit_:"req_per_kcycle|cycles|req_per_wall_s" ~domains:w
              ~extras:[]
              (farm_big_quality_rows ~pool ~quiet:true ()
              @ farm_big_rate_rows ~quiet:true ()))
          farm_big_base
      in
      ( Result.get_ok (Cgra_prof.Bench_gate.parse micro_doc),
        Result.get_ok (Cgra_prof.Bench_gate.parse fig9_doc),
        Result.get_ok (Cgra_prof.Bench_gate.parse fig8_doc),
        Result.get_ok (Cgra_prof.Bench_gate.parse farm_doc),
        Option.map
          (fun d -> Result.get_ok (Cgra_prof.Bench_gate.parse d))
          farm_big_doc )
    end
  in
  let micro_failures = gate "micro" micro_base micro_cur in
  let fig9_failures = gate "fig9" fig9_base fig9_cur in
  let fig8_failures = gate "fig8" fig8_base fig8_cur in
  let farm_failures = gate "farm" farm_base farm_cur in
  let farm_big_failures =
    match (farm_big_base, farm_big_cur) with
    | Some base, Some cur -> gate "farm-big" base cur
    | _ -> 0
  in
  let failures =
    micro_failures + fig9_failures + fig8_failures + farm_failures
    + farm_big_failures
  in
  if failures > 0 then begin
    Printf.printf "\nbench gate: %d row(s) FAILED\n" failures;
    exit 1
  end
  else print_endline "\nbench gate: all rows within tolerance"

(* ----- ablations (design choices DESIGN.md calls out) ----- *)

let run_ablation ~pool () =
  section "Ablations - assumptions and design choices, varied";
  let show title = function
    | Ok rows ->
        print_newline ();
        print_endline (Experiments.render_ablation ~title rows)
    | Error e -> Printf.printf "%s: error %s\n" title e
  in
  show
    "Reconfiguration cost per PageMaster reshape (8x8, 4-PE pages; the paper \
     assumes 0)"
    (Experiments.ablation_reconfig_cost ~pool ~size:8 ~page_pes:4
       ~costs:[ 0; 10; 100; 1000; 10000 ] ());
  show "Allocation policy (8x8, 4-PE pages)"
    (Experiments.ablation_policy ~pool ~size:8 ~page_pes:4 ());
  show "Memory ports per row bus (4x4, 4-PE pages)"
    (Experiments.ablation_mem_ports ~pool ~size:4 ~page_pes:4 ~ports:[ 1; 2; 4; 8 ] ())

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let check_only = List.mem "--check" args in
  let rec opt_value key = function
    | [] -> None
    | k :: v :: _ when k = key -> Some v
    | _ :: rest -> opt_value key rest
  in
  let micro_path = Option.value ~default:"BENCH_micro.json" (opt_value "--micro" args) in
  let fig9_path = Option.value ~default:"BENCH_fig9.json" (opt_value "--fig9" args) in
  let fig8_path = Option.value ~default:"BENCH_fig8.json" (opt_value "--fig8" args) in
  let farm_path = Option.value ~default:"BENCH_farm.json" (opt_value "--farm" args) in
  (* --farm-big opts the at-scale baseline into the gate (it re-measures
     a 10^4-request fleet seven ways, so it is not in the default set) *)
  let farm_big_path =
    if List.mem "--farm-big" args then Some "BENCH_farm_big.json" else None
  in
  let rec drop_opts = function
    | [] -> []
    | ("--micro" | "--fig9" | "--fig8" | "--farm") :: _ :: rest -> drop_opts rest
    | ("--json" | "--check" | "--farm-big") :: rest -> drop_opts rest
    | a :: rest -> a :: drop_opts rest
  in
  let mode = match drop_opts args with [] -> "all" | m :: _ -> m in
  Cgra_util.Pool.with_pool (fun pool ->
      if Cgra_util.Pool.width pool > 1 then
        Printf.printf "(parallel sections across %d domains)\n"
          (Cgra_util.Pool.width pool);
      match mode with
      | "fig8" -> run_fig8 ~pool ~json ()
      | "fig9" -> run_fig9 ~pool ~replicates:3 ~json ()
      | "micro" -> run_micro ~json ()
      | "farm" -> run_farm ~pool ~json ()
      | "farm-big" -> run_farm_big ~pool ~json ()
      | "ablation" -> run_ablation ~pool ()
      | "gate" ->
          run_gate ~pool ~check_only ~micro_path ~fig9_path ~fig8_path
            ~farm_path ~farm_big_path ()
      | "all" ->
          run_fig8 ~pool ~json ();
          run_fig9 ~pool ~replicates:3 ~json ();
          run_farm ~pool ~json ();
          run_ablation ~pool ();
          run_micro ~json ()
      | other ->
          Printf.eprintf
            "unknown mode %s (expected fig8 | fig9 | farm | farm-big | \
             ablation | micro | gate | all; flags: --json, --check, \
             --farm-big, --micro PATH, --fig9 PATH, --fig8 PATH, --farm \
             PATH)\n"
            other;
          exit 1)
