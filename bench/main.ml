(* Benchmark harness: regenerates every figure of the paper's evaluation
   and micro-benchmarks the PageMaster transformation (the low-order
   polynomial-time claim) and the compiler.

   Usage:  dune exec bench/main.exe                  (everything)
           dune exec bench/main.exe -- fig8          (Fig. 8 only)
           dune exec bench/main.exe -- fig9          (Fig. 9 only)
           dune exec bench/main.exe -- micro         (bechamel micro-benchmarks)
           dune exec bench/main.exe -- micro --json  (also write BENCH_micro.json)
           dune exec bench/main.exe -- fig9 --json   (also write BENCH_fig9.json)

   Parallel sections (fig8/fig9/ablation sweeps) fan out across
   CGRA_DOMAINS worker domains; output is byte-identical at any width.
   The BENCH_*.json files at the repo root are the committed perf
   baseline — regenerate with `make bench-json` and compare trajectories
   across PRs. *)

open Cgra_core

let line = String.make 78 '='

let section title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* ----- machine-readable baselines ----- *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* [results] are (name, value, domains) points in [unit_] — [domains] is
   the pool width that specific measurement ran at (the compiler race
   rows differ from the sequential rest); validated with the project's
   own JSON parser before the file is written *)
let write_bench_json ~path ~bench ~unit_ ~domains ~extras results =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"bench\": %s,\n" (json_string bench);
  Printf.bprintf b "  \"domains\": %d,\n" domains;
  List.iter (fun (k, v) -> Printf.bprintf b "  %s: %s,\n" (json_string k) v) extras;
  Printf.bprintf b "  \"unit\": %s,\n" (json_string unit_);
  Buffer.add_string b "  \"results\": [\n";
  let n = List.length results in
  List.iteri
    (fun i (name, v, d) ->
      Printf.bprintf b "    { \"name\": %s, \"value\": %.3f, \"domains\": %d }%s\n"
        (json_string name) v d
        (if i = n - 1 then "" else ","))
    results;
  Buffer.add_string b "  ]\n}\n";
  let data = Buffer.contents b in
  (match Cgra_trace.Json.parse data with
  | Ok _ -> ()
  | Error e -> failwith ("emitted " ^ path ^ " is not valid JSON: " ^ e));
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data);
  Printf.printf "\nwrote %s (%d results, %s)\n" path n unit_

(* ----- Fig. 8: compile-time constraint cost ----- *)

let run_fig8 ~pool () =
  section "Figure 8 - performance cost of the paging constraints (100 * II_b / II_c)";
  List.iter
    (fun size ->
      List.iter
        (fun f ->
          print_newline ();
          print_endline (Experiments.render_fig8 f))
        (Experiments.fig8_all ~pool ~size ()))
    Experiments.cgra_sizes

(* ----- Fig. 9: multithreading improvement ----- *)

let run_fig9 ~pool ~replicates ~json () =
  section
    (Printf.sprintf
       "Figure 9 - throughput improvement of multithreading (mean of %d workloads)"
       replicates);
  Binary.clear_cache ();
  let timed =
    List.map
      (fun size ->
        let t0 = Unix.gettimeofday () in
        let figs = Experiments.fig9_all ~replicates ~pool ~size () in
        let dt = Unix.gettimeofday () -. t0 in
        List.iter
          (fun f ->
            print_newline ();
            print_endline (Experiments.render_fig9 f))
          figs;
        (Printf.sprintf "fig9 %dx%d sweep" size size, dt))
      Experiments.cgra_sizes
  in
  if json then
    let total = List.fold_left (fun acc (_, dt) -> acc +. dt) 0.0 timed in
    let w = Cgra_util.Pool.width pool in
    write_bench_json ~path:"BENCH_fig9.json" ~bench:"fig9" ~unit_:"wall_s"
      ~domains:w
      ~extras:[ ("replicates", string_of_int replicates) ]
      (List.map (fun (name, dt) -> (name, dt, w)) timed
      @ [ ("fig9 full sweep", total, w) ])

(* ----- bechamel micro-benchmarks ----- *)

let stage = Bechamel.Staged.stage

let transform_tests () =
  (* the PageMaster fold on real kernel mappings *)
  let arch = Option.get (Cgra_arch.Cgra.standard ~size:8 ~page_pes:4) in
  let mapping name =
    match
      Cgra_mapper.Scheduler.map Cgra_mapper.Scheduler.Paged arch
        (Cgra_kernels.Kernels.find_exn name).graph
    with
    | Ok m -> m
    | Error e -> failwith e
  in
  let sobel = mapping "sobel" in
  let swim = mapping "swim" in
  [
    Bechamel.Test.make ~name:"fold sobel 8x8 to 1 page"
      (stage (fun () -> Result.get_ok (Transform.fold ~target_pages:1 sobel)));
    Bechamel.Test.make ~name:"fold swim 8x8 to 2 pages"
      (stage (fun () -> Result.get_ok (Transform.fold ~target_pages:2 swim)));
  ]

let greedy_tests () =
  (* Algorithm 1 at growing page counts: the low-order-polynomial claim *)
  List.map
    (fun n ->
      Bechamel.Test.make
        ~name:(Printf.sprintf "greedy transform N=%03d to M=%03d" n (max 1 (n / 2)))
        (stage (fun () -> Greedy.run ~n ~m:(max 1 (n / 2)) ~ii_p:2 ~iterations:8)))
    [ 8; 16; 32; 64; 128; 256 ]

let mapper_tests () =
  let arch = Option.get (Cgra_arch.Cgra.standard ~size:4 ~page_pes:4) in
  let mpeg = (Cgra_kernels.Kernels.find_exn "mpeg").graph in
  let sobel = (Cgra_kernels.Kernels.find_exn "sobel").graph in
  [
    Bechamel.Test.make ~name:"compile mpeg 4x4 (paged)"
      (stage (fun () ->
           Result.get_ok
             (Cgra_mapper.Scheduler.map Cgra_mapper.Scheduler.Paged arch mpeg)));
    Bechamel.Test.make ~name:"compile sobel 4x4 (paged)"
      (stage (fun () ->
           Result.get_ok
             (Cgra_mapper.Scheduler.map Cgra_mapper.Scheduler.Paged arch sobel)));
  ]

(* The same compiles with the (II, attempt) ladder raced across a pool —
   results are bit-identical to the sequential rows above; only the wall
   clock differs.  [j] is the requested lane count (the pool clamps to
   the machine's cores, so the effective width may be lower). *)
let mapper_raced_tests ~pool ~j () =
  let arch = Option.get (Cgra_arch.Cgra.standard ~size:4 ~page_pes:4) in
  let mpeg = (Cgra_kernels.Kernels.find_exn "mpeg").graph in
  let sobel = (Cgra_kernels.Kernels.find_exn "sobel").graph in
  [
    Bechamel.Test.make ~name:(Printf.sprintf "compile mpeg 4x4 (paged, -j %d)" j)
      (stage (fun () ->
           Result.get_ok
             (Cgra_mapper.Scheduler.map ~pool Cgra_mapper.Scheduler.Paged arch mpeg)));
    Bechamel.Test.make
      ~name:(Printf.sprintf "compile sobel 4x4 (paged, -j %d)" j)
      (stage (fun () ->
           Result.get_ok
             (Cgra_mapper.Scheduler.map ~pool Cgra_mapper.Scheduler.Paged arch sobel)));
  ]

(* Warm start: thread launch as a disk read.  The suite is compiled once
   into a throwaway store; each timed run then drops the in-memory memo,
   so what's on the clock is the full artifact path — open, integrity
   check, decode — with zero scheduler runs.  Contrast with the cold
   "compile sobel 4x4 (paged)" row above. *)
let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_warm_store f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cgra-bench-store-%d" (Unix.getpid ()))
  in
  let store = Cgra_store.open_ dir in
  let arch = Option.get (Cgra_arch.Cgra.standard ~size:4 ~page_pes:4) in
  Binary.clear_cache ();
  (match Binary.compile_suite arch with
  | Ok bs ->
      List.iter2
        (fun b k -> Cgra_store.save store ~seed:0 arch k b)
        bs Cgra_kernels.Kernels.all
  | Error e -> failwith e);
  Cgra_store.install store;
  Fun.protect
    ~finally:(fun () ->
      Cgra_store.uninstall ();
      Binary.clear_cache ();
      rm_rf dir)
    (fun () -> f arch)

let warm_start_tests arch =
  let sobel = Cgra_kernels.Kernels.find_exn "sobel" in
  [
    Bechamel.Test.make ~name:"compile-sobel-warm"
      (stage (fun () ->
           Binary.clear_cache ();
           Result.get_ok (Binary.compile arch sobel)));
    Bechamel.Test.make ~name:"compile-suite-warm"
      (stage (fun () ->
           Binary.clear_cache ();
           Result.get_ok (Binary.compile_suite arch)));
  ]

let run_micro ~json () =
  section "Micro-benchmarks - PageMaster runtime vs. compiler runtime";
  let open Bechamel in
  let open Toolkit in
  let benchmark tests =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"bench" tests) in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let collect tests =
    let results = benchmark tests in
    let rows = ref [] in
    Hashtbl.iter
      (fun name ols ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | Some [] | None -> nan
        in
        let name =
          match String.index_opt name '/' with
          | Some i -> String.sub name (i + 1) (String.length name - i - 1)
          | None -> name
        in
        rows := (name, ns) :: !rows)
      results;
    List.sort compare !rows
  in
  let show rows =
    List.iter
      (fun (name, ns) ->
        if ns >= 1_000_000.0 then
          Printf.printf "  %-40s %10.2f ms/run\n" name (ns /. 1e6)
        else if ns >= 1_000.0 then
          Printf.printf "  %-40s %10.2f us/run\n" name (ns /. 1e3)
        else Printf.printf "  %-40s %10.0f ns/run\n" name ns)
      rows
  in
  print_endline "\nPageMaster fold (runtime transformation):";
  let transform_rows = collect (transform_tests ()) in
  show transform_rows;
  print_endline "\nGreedy Algorithm 1 (page-level, growing N, 8 kernel iterations):";
  let greedy_rows = collect (greedy_tests ()) in
  show greedy_rows;
  print_endline
    "\nCompiler (for contrast: the transformation must be, and is, orders of\n\
     magnitude cheaper than recompiling):";
  let mapper_rows = collect (mapper_tests ()) in
  show mapper_rows;
  print_endline
    "\nCompiler, speculative race (same results, ladder fanned across 4 domains):";
  let raced_rows =
    Cgra_util.Pool.with_pool ~domains:4 (fun pool ->
        collect (mapper_raced_tests ~pool ~j:4 ()))
  in
  show raced_rows;
  print_endline
    "\nWarm start from the persistent store (per-run: drop the in-memory memo,\n\
     then load, integrity-check and decode the disk artifact; 0 scheduler runs):";
  let warm_rows = with_warm_store (fun arch -> collect (warm_start_tests arch)) in
  show warm_rows;
  if json then
    let seq rows = List.map (fun (name, v) -> (name, v, 1)) rows in
    write_bench_json ~path:"BENCH_micro.json" ~bench:"micro" ~unit_:"ns_per_run"
      ~domains:1 ~extras:[]
      (seq transform_rows @ seq greedy_rows @ seq mapper_rows
      @ List.map (fun (name, v) -> (name, v, 4)) raced_rows
      @ seq warm_rows)

(* ----- ablations (design choices DESIGN.md calls out) ----- *)

let run_ablation ~pool () =
  section "Ablations - assumptions and design choices, varied";
  let show title = function
    | Ok rows ->
        print_newline ();
        print_endline (Experiments.render_ablation ~title rows)
    | Error e -> Printf.printf "%s: error %s\n" title e
  in
  show
    "Reconfiguration cost per PageMaster reshape (8x8, 4-PE pages; the paper \
     assumes 0)"
    (Experiments.ablation_reconfig_cost ~pool ~size:8 ~page_pes:4
       ~costs:[ 0; 10; 100; 1000; 10000 ] ());
  show "Allocation policy (8x8, 4-PE pages)"
    (Experiments.ablation_policy ~pool ~size:8 ~page_pes:4 ());
  show "Memory ports per row bus (4x4, 4-PE pages)"
    (Experiments.ablation_mem_ports ~pool ~size:4 ~page_pes:4 ~ports:[ 1; 2; 4; 8 ] ())

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let modes = List.filter (fun a -> a <> "--json") args in
  let mode = match modes with [] -> "all" | m :: _ -> m in
  Cgra_util.Pool.with_pool (fun pool ->
      if Cgra_util.Pool.width pool > 1 then
        Printf.printf "(parallel sections across %d domains)\n"
          (Cgra_util.Pool.width pool);
      match mode with
      | "fig8" -> run_fig8 ~pool ()
      | "fig9" -> run_fig9 ~pool ~replicates:3 ~json ()
      | "micro" -> run_micro ~json ()
      | "ablation" -> run_ablation ~pool ()
      | "all" ->
          run_fig8 ~pool ();
          run_fig9 ~pool ~replicates:3 ~json ();
          run_ablation ~pool ();
          run_micro ~json ()
      | other ->
          Printf.eprintf
            "unknown mode %s (expected fig8 | fig9 | ablation | micro | all; \
             flags: --json)\n"
            other;
          exit 1)
