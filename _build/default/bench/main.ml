(* Benchmark harness: regenerates every figure of the paper's evaluation
   and micro-benchmarks the PageMaster transformation (the low-order
   polynomial-time claim) and the compiler.

   Usage:  dune exec bench/main.exe            (everything)
           dune exec bench/main.exe -- fig8    (Fig. 8 only)
           dune exec bench/main.exe -- fig9    (Fig. 9 only)
           dune exec bench/main.exe -- micro   (bechamel micro-benchmarks) *)

open Cgra_core

let line = String.make 78 '='

let section title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* ----- Fig. 8: compile-time constraint cost ----- *)

let run_fig8 () =
  section "Figure 8 - performance cost of the paging constraints (100 * II_b / II_c)";
  List.iter
    (fun size ->
      List.iter
        (fun f ->
          print_newline ();
          print_endline (Experiments.render_fig8 f))
        (Experiments.fig8_all ~size ()))
    Experiments.cgra_sizes

(* ----- Fig. 9: multithreading improvement ----- *)

let run_fig9 ~replicates () =
  section
    (Printf.sprintf
       "Figure 9 - throughput improvement of multithreading (mean of %d workloads)"
       replicates);
  List.iter
    (fun size ->
      List.iter
        (fun f ->
          print_newline ();
          print_endline (Experiments.render_fig9 f))
        (Experiments.fig9_all ~replicates ~size ()))
    Experiments.cgra_sizes

(* ----- bechamel micro-benchmarks ----- *)

let stage = Bechamel.Staged.stage

let transform_tests () =
  (* the PageMaster fold on real kernel mappings *)
  let arch = Option.get (Cgra_arch.Cgra.standard ~size:8 ~page_pes:4) in
  let mapping name =
    match
      Cgra_mapper.Scheduler.map Cgra_mapper.Scheduler.Paged arch
        (Cgra_kernels.Kernels.find_exn name).graph
    with
    | Ok m -> m
    | Error e -> failwith e
  in
  let sobel = mapping "sobel" in
  let swim = mapping "swim" in
  [
    Bechamel.Test.make ~name:"fold sobel 8x8 to 1 page"
      (stage (fun () -> Result.get_ok (Transform.fold ~target_pages:1 sobel)));
    Bechamel.Test.make ~name:"fold swim 8x8 to 2 pages"
      (stage (fun () -> Result.get_ok (Transform.fold ~target_pages:2 swim)));
  ]

let greedy_tests () =
  (* Algorithm 1 at growing page counts: the low-order-polynomial claim *)
  List.map
    (fun n ->
      Bechamel.Test.make
        ~name:(Printf.sprintf "greedy transform N=%03d to M=%03d" n (max 1 (n / 2)))
        (stage (fun () -> Greedy.run ~n ~m:(max 1 (n / 2)) ~ii_p:2 ~iterations:8)))
    [ 8; 16; 32; 64; 128; 256 ]

let mapper_tests () =
  let arch = Option.get (Cgra_arch.Cgra.standard ~size:4 ~page_pes:4) in
  let mpeg = (Cgra_kernels.Kernels.find_exn "mpeg").graph in
  let sobel = (Cgra_kernels.Kernels.find_exn "sobel").graph in
  [
    Bechamel.Test.make ~name:"compile mpeg 4x4 (paged)"
      (stage (fun () ->
           Result.get_ok
             (Cgra_mapper.Scheduler.map Cgra_mapper.Scheduler.Paged arch mpeg)));
    Bechamel.Test.make ~name:"compile sobel 4x4 (paged)"
      (stage (fun () ->
           Result.get_ok
             (Cgra_mapper.Scheduler.map Cgra_mapper.Scheduler.Paged arch sobel)));
  ]

let run_micro () =
  section "Micro-benchmarks - PageMaster runtime vs. compiler runtime";
  let open Bechamel in
  let open Toolkit in
  let benchmark tests =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"bench" tests) in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let show tests =
    let results = benchmark tests in
    let rows = ref [] in
    Hashtbl.iter
      (fun name ols ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | Some [] | None -> nan
        in
        rows := (name, ns) :: !rows)
      results;
    List.iter
      (fun (name, ns) ->
        let name =
          match String.index_opt name '/' with
          | Some i -> String.sub name (i + 1) (String.length name - i - 1)
          | None -> name
        in
        if ns >= 1_000_000.0 then
          Printf.printf "  %-40s %10.2f ms/run\n" name (ns /. 1e6)
        else if ns >= 1_000.0 then
          Printf.printf "  %-40s %10.2f us/run\n" name (ns /. 1e3)
        else Printf.printf "  %-40s %10.0f ns/run\n" name ns)
      (List.sort compare !rows)
  in
  print_endline "\nPageMaster fold (runtime transformation):";
  show (transform_tests ());
  print_endline "\nGreedy Algorithm 1 (page-level, growing N, 8 kernel iterations):";
  show (greedy_tests ());
  print_endline
    "\nCompiler (for contrast: the transformation must be, and is, orders of\n\
     magnitude cheaper than recompiling):";
  show (mapper_tests ())

(* ----- ablations (design choices DESIGN.md calls out) ----- *)

let run_ablation () =
  section "Ablations - assumptions and design choices, varied";
  let show title = function
    | Ok rows ->
        print_newline ();
        print_endline (Experiments.render_ablation ~title rows)
    | Error e -> Printf.printf "%s: error %s\n" title e
  in
  show
    "Reconfiguration cost per PageMaster reshape (8x8, 4-PE pages; the paper \
     assumes 0)"
    (Experiments.ablation_reconfig_cost ~size:8 ~page_pes:4
       ~costs:[ 0; 10; 100; 1000; 10000 ] ());
  show "Allocation policy (8x8, 4-PE pages)"
    (Experiments.ablation_policy ~size:8 ~page_pes:4 ());
  show "Memory ports per row bus (4x4, 4-PE pages)"
    (Experiments.ablation_mem_ports ~size:4 ~page_pes:4 ~ports:[ 1; 2; 4; 8 ] ())

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "fig8" -> run_fig8 ()
  | "fig9" -> run_fig9 ~replicates:3 ()
  | "micro" -> run_micro ()
  | "ablation" -> run_ablation ()
  | "all" ->
      run_fig8 ();
      run_fig9 ~replicates:3 ();
      run_ablation ();
      run_micro ()
  | other ->
      Printf.eprintf
        "unknown mode %s (expected fig8 | fig9 | ablation | micro | all)\n" other;
      exit 1
