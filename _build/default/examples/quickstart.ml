(* Quickstart: the whole pipeline in one page of code.

   1. pick a kernel (the MPEG2 motion-compensation loop of Fig. 2),
   2. compile it onto a 4x4 CGRA with the paging constraints,
   3. shrink the schedule to a single page with the PageMaster
      transformation (what the OS does when another thread arrives),
   4. execute both schedules cycle-accurately and check them against the
      sequential interpreter.

   Run with:  dune exec examples/quickstart.exe *)

open Cgra_arch
open Cgra_mapper
open Cgra_core

let () =
  (* a 4x4 CGRA divided into four 2x2 pages, as in Fig. 1/Fig. 4 *)
  let arch = Option.get (Cgra.standard ~size:4 ~page_pes:4) in
  let kernel = Cgra_kernels.Kernels.find_exn "mpeg" in
  Format.printf "kernel: %a@." Cgra_dfg.Graph.pp_summary kernel.graph;

  (* compile with the paging constraints (ring-topology dataflow) *)
  let mapping =
    match Scheduler.map Scheduler.Paged arch kernel.graph with
    | Ok m -> m
    | Error e -> failwith e
  in
  Format.printf "compiled: %a@." Mapping.pp_stats mapping;
  Format.printf "@.page-level schedule (the P of Section VI-C):@.%a@."
    Page_schedule.pp
    (Page_schedule.of_mapping mapping);

  (* a second thread arrives: shrink to one page at runtime *)
  let shrunk =
    match Transform.fold ~target_pages:1 mapping with
    | Ok sh -> sh
    | Error e -> failwith e
  in
  Format.printf "shrunk to one page: II %d -> %d (factor %d), PE-exact: %b@."
    mapping.ii shrunk.mapping.ii shrunk.s shrunk.pe_exact;

  (* prove both schedules compute exactly what the loop means *)
  List.iter
    (fun (label, m) ->
      let memory = Cgra_kernels.Kernels.init_memory kernel in
      match Cgra_sim.Check.against_oracle m memory ~iterations:48 with
      | Ok () -> Format.printf "%s: 48 iterations bit-exact vs the oracle@." label
      | Error es -> List.iter print_endline es)
    [ ("original schedule", mapping); ("shrunk schedule", shrunk.mapping) ];

  Format.printf
    "@.The other three pages are now free: a second kernel can run beside this@.\
     one - that is the multithreading of the paper. See video_server.exe.@."
