(* The motivation of Section IV, measured on real mappings:

   1. a recurrence circuit bounds the II no matter how large the CGRA is
      (Fig. 3) — so a single kernel cannot use a big fabric;
   2. the IPC identity IPC = N * U_a: throughput is exactly proportional
      to average utilization;
   3. therefore utilization — and throughput — can only rise by running
      several kernels at once.

   Run with:  dune exec examples/utilization_study.exe *)

open Cgra_arch
open Cgra_dfg
open Cgra_mapper

let ops_of g =
  List.length
    (List.filter
       (fun (n : Graph.node) -> match n.op with Op.Const _ -> false | _ -> true)
       (Graph.nodes g))

let () =
  let sor = Cgra_kernels.Kernels.find_exn "sor" in
  Printf.printf "sor: %d ops, RecMII = %d (a 3-op recurrence circuit, distance 1)\n\n"
    (Graph.n_nodes sor.graph) (Analysis.rec_mii sor.graph);

  print_endline "1. Bigger fabrics do not help a recurrence-limited kernel (Fig. 3):";
  List.iter
    (fun size ->
      let arch = Option.get (Cgra.standard ~size ~page_pes:4) in
      match Scheduler.map Scheduler.Unconstrained arch sor.graph with
      | Ok m ->
          let pes = Cgra.pe_count arch in
          let util = Cgra_core.Metrics.utilization_of_kernel
              ~ops:(ops_of sor.graph) ~ii:m.ii ~pes in
          Printf.printf "   %dx%d: II=%d, PE utilization %.1f%%\n" size size m.ii
            (100.0 *. util)
      | Error e -> print_endline e)
    [ 4; 6; 8 ];

  print_endline "\n2. The IPC identity (Section IV): IPC = N x U_a.";
  let arch = Option.get (Cgra.standard ~size:8 ~page_pes:4) in
  let pes = Cgra.pe_count arch in
  let resident =
    List.filter_map
      (fun name ->
        let k = Cgra_kernels.Kernels.find_exn name in
        match Scheduler.map Scheduler.Paged arch k.graph with
        | Ok m -> Some (name, ops_of k.graph, m.ii)
        | Error _ -> None)
      [ "sor"; "mpeg"; "gsr"; "histeq" ]
  in
  let pairs = List.map (fun (_, ops, ii) -> (ops, ii)) resident in
  List.iter
    (fun (name, ops, ii) ->
      Printf.printf "   %-8s contributes IPC %.2f (utilization %.1f%%)\n" name
        (Cgra_core.Metrics.ipc_of_kernel ~ops ~ii)
        (100.0 *. Cgra_core.Metrics.utilization_of_kernel ~ops ~ii ~pes))
    resident;
  let ipc = Cgra_core.Metrics.aggregate_ipc pairs in
  let u_a =
    List.fold_left
      (fun acc (ops, ii) -> acc +. Cgra_core.Metrics.utilization_of_kernel ~ops ~ii ~pes)
      0.0 pairs
  in
  Printf.printf "   together: IPC %.2f = %d PEs x U_a %.3f (identity gap %.2e)\n" ipc
    pes u_a
    (Cgra_core.Metrics.ipc_identity_gap ~pes pairs);

  Printf.printf
    "\n3. One sor alone leaves %.1f%% of the 8x8 fabric idle every cycle;\n\
    \   space-multiplexing those idle pages is where Fig. 9's throughput\n\
    \   improvements come from.\n"
    (100.0
    *. (1.0
       -.
       let _, ops, ii = List.hd resident in
       Cgra_core.Metrics.utilization_of_kernel ~ops ~ii ~pes))
