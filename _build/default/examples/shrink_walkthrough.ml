(* Walkthrough of the two PageMaster transformations, reproducing the
   paper's Fig. 6 (fold to one page, with mirroring) and Fig. 7 (greedy
   Algorithm 1, N=6 pages onto M=5 columns).

   Run with:  dune exec examples/shrink_walkthrough.exe *)

open Cgra_arch
open Cgra_mapper
open Cgra_core

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

(* ----- Fig. 6: fold a multi-page schedule onto one page ----- *)

let fig6 () =
  rule "Fig. 6 - shrinking a schedule to one page (fold + mirroring)";
  let arch = Option.get (Cgra.standard ~size:4 ~page_pes:4) in
  let kernel = Cgra_kernels.Kernels.find_exn "laplace" in
  let m =
    match Scheduler.map Scheduler.Paged arch kernel.graph with
    | Ok m -> m
    | Error e -> failwith e
  in
  Printf.printf "laplace compiled for the whole CGRA: II=%d over %d pages\n" m.ii
    (Mapping.n_pages_used m);
  Format.printf "@.placement, one grid per modulo slot (node ids; r = routing PE):@.%a"
    Mapping.pp m;
  let sh = Result.get_ok (Transform.fold ~target_pages:1 m) in
  Printf.printf
    "\nafter PageMaster fold to page 0: II=%d (= %d x %d), mirrorings applied:\n"
    sh.mapping.ii m.ii sh.s;
  Array.iteri
    (fun n o -> Format.printf "  page %d: %a@." n Orient.pp o)
    sh.orientations;
  Format.printf "@.the same operations, stacked in time on one 2x2 tile:@.%a"
    Mapping.pp sh.mapping;
  let mem = Cgra_kernels.Kernels.init_memory kernel in
  match Cgra_sim.Check.against_oracle sh.mapping mem ~iterations:40 with
  | Ok () -> print_endline "cycle-accurate check: bit-exact vs the sequential loop"
  | Error es -> List.iter print_endline es

(* ----- Fig. 7: the greedy Algorithm 1, N=6 -> M=5 ----- *)

let fig7 () =
  rule "Fig. 7 - greedy Algorithm 1, six ring pages onto five columns";
  let r = Greedy.run ~n:6 ~m:5 ~ii_p:1 ~iterations:24 in
  (* draw the first few time rows: which source page sits in which column *)
  let max_time = 6 in
  let grid = Array.make_matrix (max_time + 1) 5 "." in
  Array.iteri
    (fun step row ->
      Array.iteri
        (fun page (p : Greedy.placement) ->
          if p.time <= max_time then
            grid.(p.time).(p.col) <- Printf.sprintf "p%d@%d" page step)
        row)
    r.place;
  print_endline "time  col0    col1    col2    col3    col4   (pX@s = page X, step s)";
  Array.iteri
    (fun t row ->
      Printf.printf "%4d  " t;
      Array.iter (fun c -> Printf.printf "%-8s" c) row;
      print_newline ())
    grid;
  Printf.printf
    "\nplacement cases used: two-hop %d, one-hop %d, zero-hop (tails) %d, fallbacks %d\n"
    r.case_two_hop r.case_one_hop r.case_zero_hop r.fallbacks;
  Printf.printf "dependency violations: %d\n" r.dep_violations;
  Printf.printf "steady-state II: %.2f per kernel iteration (fold optimum: %d)\n"
    r.steady_ii
    (Transform.ii_q ~ii_p:1 ~n_used:6 ~target_pages:5)

(* ----- the halving ladder the runtime actually uses ----- *)

let ladder () =
  rule "The runtime's halving ladder (sobel on 8x8, 16 pages of 4 PEs)";
  let arch = Option.get (Cgra.standard ~size:8 ~page_pes:4) in
  let kernel = Cgra_kernels.Kernels.find_exn "sobel" in
  let m =
    match Scheduler.map Scheduler.Paged arch kernel.graph with
    | Ok m -> m
    | Error e -> failwith e
  in
  let n = Mapping.n_pages_used m in
  Printf.printf "compiled: II=%d on %d pages\n" m.ii n;
  let rec go target =
    if target >= 1 then begin
      let sh = Result.get_ok (Transform.fold ~target_pages:target m) in
      Printf.printf "  -> %d page(s): II=%d (slowdown x%d), PE-exact %b\n" sh.m_eff
        sh.mapping.ii sh.s sh.pe_exact;
      go (target / 2)
    end
  in
  go n

let () =
  fig6 ();
  fig7 ();
  ladder ()
