(* Co-residency, down to the configuration bits.

   Four kernels share one 8x8 CGRA: the OS allocator hands each a
   contiguous page range, PageMaster folds each schedule into its range,
   the co-residency checker verifies the combined fabric (disjoint PEs,
   shared row buses), every resident is lowered to per-PE context words,
   and the decoder-level machine executes each image against the
   sequential oracle.

   Run with:  dune exec examples/coresidency.exe *)

open Cgra_arch
open Cgra_mapper
open Cgra_core

let () =
  let arch = Option.get (Cgra.standard ~size:8 ~page_pes:4) in
  let al = Allocator.create ~total_pages:(Cgra.n_pages arch) () in
  Printf.printf "8x8 CGRA, %d pages of 4 PEs\n\n" (Cgra.n_pages arch);
  let residents =
    List.mapi
      (fun i name ->
        let k = Cgra_kernels.Kernels.find_exn name in
        let m = Result.get_ok (Scheduler.map Paged arch k.graph) in
        let r =
          Option.get (Allocator.request al ~client:i ~desired:(Mapping.n_pages_used m))
        in
        let sh =
          Result.get_ok
            (Transform.fold ~base_page:r.Allocator.base ~target_pages:r.Allocator.len m)
        in
        Printf.printf "%-8s -> pages [%d, %d), II=%d, PE-exact %b\n" name
          r.Allocator.base
          (r.Allocator.base + r.Allocator.len)
          sh.mapping.ii sh.pe_exact;
        (k, sh))
      [ "mpeg"; "gsr"; "wavelet"; "histeq" ]
  in
  (* the melded fabric: Section V's combined schedule, checked *)
  (match
     Cgra_sim.Coexec.check ~check_mem:false
       (List.map (fun (_, sh) -> sh.Transform.mapping) residents)
   with
  | Ok rep ->
      Printf.printf
        "\nco-residency check: %d kernels, hyperperiod %d, aggregate IPC %.2f \
         (utilization %.1f%%)\n"
        rep.residents rep.hyperperiod rep.ipc (100.0 *. rep.utilization)
  | Error es -> List.iter print_endline es);
  (* lower each resident to configuration words and run the decoder *)
  print_endline "\nconfiguration images (what the OS ships to the fabric):";
  List.iter
    (fun ((k : Cgra_kernels.Kernels.t), (sh : Transform.shrunk)) ->
      if sh.pe_exact then begin
        match Cgra_isa.Config.encode sh.mapping with
        | Error e -> Printf.printf "  %-8s encode failed: %s\n" k.name e
        | Ok img -> (
            let mem = Cgra_kernels.Kernels.init_memory k in
            let mem_ref = Cgra_dfg.Memory.copy mem in
            let report = Cgra_isa.Exec_image.run img mem ~iterations:32 in
            Cgra_dfg.Interp.run k.graph mem_ref ~iterations:32;
            match Cgra_dfg.Memory.diff mem mem_ref with
            | [] ->
                Printf.printf
                  "  %-8s %3d context words, %4d firings, %3d squashed - decoder \
                   output bit-exact\n"
                  k.name
                  (Cgra_isa.Config.context_count img)
                  report.fired report.squashed
            | _ -> Printf.printf "  %-8s MISMATCH\n" k.name)
      end
      else Printf.printf "  %-8s (page-level fold: not lowered)\n" k.name)
    residents;
  (* contention: three more threads arrive and squeeze the residents,
     then leave again — shrink on demand, expand on release *)
  Printf.printf "\nthree bursty threads arrive (each wanting 8 pages):\n";
  List.iter
    (fun c ->
      match Allocator.request al ~client:c ~desired:8 with
      | Some r -> Printf.printf "  thread %d granted pages [%d, %d)\n" c r.base (r.base + r.len)
      | None -> Printf.printf "  thread %d must wait\n" c)
    [ 10; 11; 12 ];
  Format.printf "  fabric now: %a@." Allocator.pp al;
  List.iter (fun c -> Allocator.release al ~client:c) [ 10; 11; 12 ];
  let grants = Allocator.expand al in
  Printf.printf "they finish; the allocator re-expands squeezed residents:\n";
  if grants = [] then print_endline "  (everyone already at their full footprint)"
  else
    List.iter
      (fun (c, (r : Allocator.range)) ->
        Printf.printf "  client %d back to pages [%d, %d)\n" c r.base (r.base + r.len))
      grants
