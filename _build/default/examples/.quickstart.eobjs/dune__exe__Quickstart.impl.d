examples/quickstart.ml: Cgra Cgra_arch Cgra_core Cgra_dfg Cgra_kernels Cgra_mapper Cgra_sim Format List Mapping Option Page_schedule Scheduler Transform
