examples/coresidency.ml: Allocator Cgra Cgra_arch Cgra_core Cgra_dfg Cgra_isa Cgra_kernels Cgra_mapper Cgra_sim Format List Mapping Option Printf Result Scheduler Transform
