examples/shrink_walkthrough.ml: Array Cgra Cgra_arch Cgra_core Cgra_kernels Cgra_mapper Cgra_sim Format Greedy List Mapping Option Orient Printf Result Scheduler String Transform
