examples/shrink_walkthrough.mli:
