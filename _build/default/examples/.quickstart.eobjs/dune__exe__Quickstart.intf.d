examples/quickstart.mli:
