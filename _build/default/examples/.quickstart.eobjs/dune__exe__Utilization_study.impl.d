examples/utilization_study.ml: Analysis Cgra Cgra_arch Cgra_core Cgra_dfg Cgra_kernels Cgra_mapper Graph List Op Option Printf Scheduler
