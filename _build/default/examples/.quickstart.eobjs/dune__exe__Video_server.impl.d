examples/video_server.ml: Binary Cgra_arch Cgra_core List Option Os_sim Printf Thread_model
