examples/coresidency.mli:
