examples/utilization_study.mli:
