(** Random workload generation (Section VII-B.1).

    "Each thread is randomly and independently generated, where portions
    of the thread are either assigned to the processor or the CGRA.  For
    portions assigned to the CGRA, the schedule that is ran is randomly
    chosen so as to not create bias towards any one kernel."

    The CGRA-need fraction [f] is enforced in expectation: every kernel
    segment of full-CGRA cost [c] is preceded by a CPU segment of cost
    [c * (1-f)/f] (with bounded jitter), so kernel work is [f] of the
    total.  Generation is deterministic in the seed. *)

val generate :
  seed:int ->
  n_threads:int ->
  cgra_need:float ->
  suite:Binary.t list ->
  ?segments_per_thread:int ->
  unit ->
  Thread_model.t list
(** Defaults: 6 kernel segments per thread.  [cgra_need] must be in
    (0, 1). *)
