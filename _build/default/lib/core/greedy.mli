(** Faithful reproduction of the paper's Algorithm 1 — the greedy
    PageMaster placement (Section VI-D, Fig. 7).

    The algorithm works at pure page granularity: an [N]-page ring
    schedule with initiation interval [II_p] is replayed page-iteration by
    page-iteration onto [M] page-columns.  The first iteration is laid out
    as a folded ring along a serpentine through the columns (with tail
    pages in an edge column); every later page placement is decided by the
    three PlacePage cases from the column distance of its two
    dependencies (two hops apart / one hop at an edge / zero hops for
    tails).

    The paper presents the algorithm for an unrolled stream and does not
    specify how the pattern closes into a finite modulo schedule, so this
    module {e measures} the steady-state II over a configurable horizon
    and checks the paper's constraints on every placement (see DESIGN.md);
    the runtime uses the provably periodic {!Transform.fold} instead. *)

type placement = { col : int; time : int }

type result_t = {
  n : int;
  m : int;
  ii_p : int;
  iterations : int;  (** kernel iterations replayed *)
  place : placement array array;
      (** [place.(step).(page)] with [step = iter * ii_p + t] *)
  case_two_hop : int;
  case_one_hop : int;
  case_zero_hop : int;
  fallbacks : int;
      (** placements where none of the paper's three cases applied and a
          nearest feasible column was used instead *)
  dep_violations : int;
      (** placements violating the one-column/strictly-later constraint —
          0 in every configuration we test *)
  makespan : int;  (** last occupied time + 1 *)
  steady_ii : float;
      (** measured cycles per kernel iteration over the second half of
          the horizon; compare with [Transform.ii_q] *)
}

val run : n:int -> m:int -> ii_p:int -> iterations:int -> result_t
(** Raises [Invalid_argument] unless [1 <= m <= n], [ii_p >= 1], and
    [iterations >= 2]. *)
