type segment =
  | Cpu of int
  | Kernel of { kernel : string; iterations : int }

type t = { id : int; segments : segment list }

let kernel_names t =
  List.sort_uniq String.compare
    (List.filter_map
       (function Kernel { kernel; _ } -> Some kernel | Cpu _ -> None)
       t.segments)

let cgra_iterations t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (function
      | Kernel { kernel; iterations } ->
          let n = Option.value ~default:0 (Hashtbl.find_opt tbl kernel) in
          Hashtbl.replace tbl kernel (n + iterations)
      | Cpu _ -> ())
    t.segments;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let total_cpu t =
  List.fold_left
    (fun acc -> function Cpu c -> acc + c | Kernel _ -> acc)
    0 t.segments

let pp ppf t =
  Format.fprintf ppf "thread %d:" t.id;
  List.iter
    (function
      | Cpu c -> Format.fprintf ppf " cpu(%d)" c
      | Kernel { kernel; iterations } -> Format.fprintf ppf " %s(%d)" kernel iterations)
    t.segments
