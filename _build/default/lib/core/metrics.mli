(** Throughput metrics of Section IV.

    The paper argues that with [I = N * U * II] (instructions, PEs,
    utilization, initiation interval), the IPC of a set of co-resident
    kernels is [IPC = N * U_a] with [U_a] the average PE utilization — so
    throughput rises exactly when multithreading raises utilization. *)

val ipc_of_kernel : ops:int -> ii:int -> float
(** Instructions per cycle of one kernel: [ops / ii]. *)

val utilization_of_kernel : ops:int -> ii:int -> pes:int -> float
(** Fraction of PE slots the kernel fills: [ops / (pes * ii)]. *)

val aggregate_ipc : (int * int) list -> float
(** IPC of concurrently resident kernels given [(ops, ii)] pairs. *)

val ipc_identity_gap : pes:int -> (int * int) list -> float
(** |aggregate IPC - N * U_a| — zero up to float rounding; the §IV
    identity, checked by the test-suite and demonstrated by
    [examples/utilization_study]. *)
