type fig8_row = {
  kernel : string;
  ii_base : int;
  ii_paged : int;
  pages_used : int;
  performance_pct : float;
}

type fig8 = {
  size : int;
  page_pes : int;
  rows : fig8_row list;
  geomean_pct : float;
}

let cgra_sizes = [ 4; 6; 8 ]

let page_sizes = [ 2; 4; 8 ]

let arch_for ~size ~page_pes =
  match Cgra_arch.Cgra.standard ~size ~page_pes with
  | Some arch -> Ok arch
  | None ->
      Error
        (Printf.sprintf
           "%dx%d with %d-PE pages leaves fewer than two pages (no multithreading \
            potential)"
           size size page_pes)

let fig8 ?(seed = 0) ~size ~page_pes () =
  match arch_for ~size ~page_pes with
  | Error _ as e -> e
  | Ok arch -> (
      match Binary.compile_suite ~seed arch with
      | Error e -> Error e
      | Ok suite ->
          let rows =
            List.map
              (fun (b : Binary.t) ->
                {
                  kernel = b.name;
                  ii_base = Binary.ii_base b;
                  ii_paged = Binary.ii_paged b;
                  pages_used = Binary.pages_used b;
                  performance_pct =
                    100.0 *. float_of_int (Binary.ii_base b)
                    /. float_of_int (Binary.ii_paged b);
                })
              suite
          in
          let geomean_pct =
            Cgra_util.Stats.geomean (List.map (fun r -> r.performance_pct) rows)
          in
          Ok { size; page_pes; rows; geomean_pct })

let fig8_all ?(seed = 0) ~size () =
  List.filter_map
    (fun page_pes -> Result.to_option (fig8 ~seed ~size ~page_pes ()))
    page_sizes

type fig9_point = {
  n_threads : int;
  improvement_pct : float;
  ipc_single : float;
  ipc_multi : float;
  utilization_single : float;
  utilization_multi : float;
  stalls : int;
  transformations : int;
}

type fig9_series = { cgra_need : float; points : fig9_point list }

type fig9 = { size : int; page_pes : int; series : fig9_series list }

let thread_counts = [ 1; 2; 4; 8; 16 ]

let cgra_needs = [ 0.5; 0.75; 0.875 ]

let fig9 ?(seed = 0) ?(replicates = 3) ~size ~page_pes () =
  match arch_for ~size ~page_pes with
  | Error _ as e -> e
  | Ok arch -> (
      match Binary.compile_suite ~seed arch with
      | Error e -> Error e
      | Ok suite ->
          let total_pages = Cgra_arch.Cgra.n_pages arch in
          let point cgra_need n_threads =
            let one rep =
              let threads =
                Workload.generate
                  ~seed:(seed + (1009 * rep) + (31 * n_threads))
                  ~n_threads ~cgra_need ~suite ()
              in
              let run mode = Os_sim.run { suite; threads; total_pages; mode } in
              let s = run Os_sim.Single and m = run Os_sim.Multi in
              (Os_sim.improvement_percent ~single:s ~multi:m, s, m)
            in
            let runs = List.init replicates one in
            let mean f = Cgra_util.Stats.mean (List.map f runs) in
            {
              n_threads;
              improvement_pct = mean (fun (i, _, _) -> i);
              ipc_single = mean (fun (_, s, _) -> s.Os_sim.ipc);
              ipc_multi = mean (fun (_, _, m) -> m.Os_sim.ipc);
              utilization_single = mean (fun (_, s, _) -> s.Os_sim.page_utilization);
              utilization_multi = mean (fun (_, _, m) -> m.Os_sim.page_utilization);
              stalls =
                List.fold_left (fun acc (_, _, m) -> acc + m.Os_sim.stalls) 0 runs;
              transformations =
                List.fold_left
                  (fun acc (_, _, m) -> acc + m.Os_sim.transformations)
                  0 runs;
            }
          in
          let series =
            List.map
              (fun cgra_need ->
                { cgra_need; points = List.map (point cgra_need) thread_counts })
              cgra_needs
          in
          Ok { size; page_pes; series })

let fig9_all ?(seed = 0) ?(replicates = 3) ~size () =
  List.filter_map
    (fun page_pes -> Result.to_option (fig9 ~seed ~replicates ~size ~page_pes ()))
    page_sizes

let render_fig8 (f : fig8) =
  let header = [ "kernel"; "II_base"; "II_paged"; "pages"; "performance" ] in
  let rows =
    List.map
      (fun r ->
        [
          r.kernel;
          string_of_int r.ii_base;
          string_of_int r.ii_paged;
          string_of_int r.pages_used;
          Cgra_util.Table.fmt_percent r.performance_pct;
        ])
      f.rows
    @ [ [ "geomean"; ""; ""; ""; Cgra_util.Table.fmt_percent f.geomean_pct ] ]
  in
  Printf.sprintf "Fig. 8 — %dx%d CGRA, %d-PE pages (constrained vs baseline II)\n%s"
    f.size f.size f.page_pes
    (Cgra_util.Table.render ~header rows)

(* ----- ablations ----- *)

type ablation_row = { label : string; metrics : (string * float) list }

let improvement_at ~suite ~total_pages ~seed ?policy ?reconfig_cost n_threads =
  let replicates = 2 in
  let one rep =
    let threads =
      Workload.generate ~seed:(seed + (1009 * rep) + (31 * n_threads)) ~n_threads
        ~cgra_need:0.875 ~suite ()
    in
    let s = Os_sim.run { suite; threads; total_pages; mode = Os_sim.Single } in
    let m = Os_sim.run ?policy ?reconfig_cost { suite; threads; total_pages; mode = Os_sim.Multi } in
    (Os_sim.improvement_percent ~single:s ~multi:m, m.Os_sim.transformations)
  in
  let runs = List.init replicates one in
  ( Cgra_util.Stats.mean (List.map (fun (i, _) -> i) runs),
    List.fold_left (fun acc (_, t) -> acc + t) 0 runs )

let ablation_reconfig_cost ?(seed = 0) ~size ~page_pes ~costs () =
  match arch_for ~size ~page_pes with
  | Error _ as e -> e
  | Ok arch -> (
      match Binary.compile_suite ~seed arch with
      | Error e -> Error e
      | Ok suite ->
          let total_pages = Cgra_arch.Cgra.n_pages arch in
          Ok
            (List.map
               (fun cost ->
                 let rc = float_of_int cost in
                 let i8, _ =
                   improvement_at ~suite ~total_pages ~seed ~reconfig_cost:rc 8
                 in
                 let i16, _ =
                   improvement_at ~suite ~total_pages ~seed ~reconfig_cost:rc 16
                 in
                 {
                   label = Printf.sprintf "%d cycles/reshape" cost;
                   metrics = [ ("T8 improvement %", i8); ("T16 improvement %", i16) ];
                 })
               costs))

let ablation_policy ?(seed = 0) ~size ~page_pes () =
  match arch_for ~size ~page_pes with
  | Error _ as e -> e
  | Ok arch -> (
      match Binary.compile_suite ~seed arch with
      | Error e -> Error e
      | Ok suite ->
          let total_pages = Cgra_arch.Cgra.n_pages arch in
          Ok
            (List.map
               (fun (label, policy) ->
                 let i8, t8 = improvement_at ~suite ~total_pages ~seed ~policy 8 in
                 let i16, t16 = improvement_at ~suite ~total_pages ~seed ~policy 16 in
                 {
                   label;
                   metrics =
                     [
                       ("T8 improvement %", i8);
                       ("T16 improvement %", i16);
                       ("T8 reshapes", float_of_int t8);
                       ("T16 reshapes", float_of_int t16);
                     ];
                 })
               [
                 ("halving (paper)", Allocator.Halving);
                 ("equal repack", Allocator.Repack_equal);
               ]))

let ablation_mem_ports ?(seed = 0) ~size ~page_pes ~ports () =
  match Cgra_arch.Page.for_size (Cgra_arch.Grid.square size) page_pes with
  | None -> Error "unsupported configuration"
  | Some pages ->
      let rows =
        List.filter_map
          (fun p ->
            let arch = Cgra_arch.Cgra.make ~mem_ports_per_row:p pages in
            match Binary.compile_suite ~seed arch with
            | Error _ -> None
            | Ok suite ->
                let perf =
                  Cgra_util.Stats.geomean
                    (List.map
                       (fun (b : Binary.t) ->
                         100.0 *. float_of_int (Binary.ii_base b)
                         /. float_of_int (Binary.ii_paged b))
                       suite)
                in
                Some
                  {
                    label = Printf.sprintf "%d port(s)/row" p;
                    metrics = [ ("Fig.8 geomean %", perf) ];
                  })
          ports
      in
      Ok rows

let render_ablation ~title rows =
  match rows with
  | [] -> title ^ ": (no rows)"
  | first :: _ ->
      let header = "" :: List.map fst first.metrics in
      let body =
        List.map
          (fun r -> r.label :: List.map (fun (_, v) -> Printf.sprintf "%.1f" v) r.metrics)
          rows
      in
      Printf.sprintf "%s\n%s" title (Cgra_util.Table.render ~header body)

let render_fig9 (f : fig9) =
  let header =
    [ "need"; "threads"; "improvement"; "IPC single"; "IPC multi"; "util multi";
      "stalls"; "transforms" ]
  in
  let rows =
    List.concat_map
      (fun s ->
        List.map
          (fun p ->
            [
              Printf.sprintf "%.1f%%" (100.0 *. s.cgra_need);
              string_of_int p.n_threads;
              Cgra_util.Table.fmt_percent p.improvement_pct;
              Cgra_util.Table.fmt_float ~decimals:2 p.ipc_single;
              Cgra_util.Table.fmt_float ~decimals:2 p.ipc_multi;
              Cgra_util.Table.fmt_percent (100.0 *. p.utilization_multi);
              string_of_int p.stalls;
              string_of_int p.transformations;
            ])
          s.points)
      f.series
  in
  Printf.sprintf
    "Fig. 9 — %dx%d CGRA, %d-PE pages (multithreaded vs single-threaded)\n%s" f.size
    f.size f.page_pes
    (Cgra_util.Table.render ~header rows)
