open Cgra_mapper

type t = {
  name : string;
  graph : Cgra_dfg.Graph.t;
  base : Mapping.t;
  paged : Mapping.t;
}

let ii_base t = t.base.Mapping.ii

let ii_paged t = t.paged.Mapping.ii

let pages_used t = Mapping.n_pages_used t.paged

let iteration_cycles t ~pages =
  if pages <= 0 then invalid_arg "Binary.iteration_cycles: pages <= 0";
  Transform.ii_q ~ii_p:(ii_paged t) ~n_used:(pages_used t) ~target_pages:pages

let compile ?(seed = 0) arch (k : Cgra_kernels.Kernels.t) =
  match Scheduler.map ~seed Unconstrained arch k.graph with
  | Error e -> Error e
  | Ok base -> (
      match Scheduler.map ~seed Paged arch k.graph with
      | Error e -> Error e
      | Ok paged -> Ok { name = k.name; graph = k.graph; base; paged })

let compile_suite ?(seed = 0) arch =
  List.fold_left
    (fun acc k ->
      match acc with
      | Error _ as e -> e
      | Ok done_ -> (
          match compile ~seed arch k with
          | Ok b -> Ok (b :: done_)
          | Error e -> Error e))
    (Ok []) Cgra_kernels.Kernels.all
  |> Result.map List.rev
