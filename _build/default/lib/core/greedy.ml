type placement = { col : int; time : int }

type result_t = {
  n : int;
  m : int;
  ii_p : int;
  iterations : int;
  place : placement array array;
  case_two_hop : int;
  case_one_hop : int;
  case_zero_hop : int;
  fallbacks : int;
  dep_violations : int;
  makespan : int;
  steady_ii : float;
}

(* Column occupancy: a growable bitmap per column. *)
module Col = struct
  type t = { mutable busy : bool array }

  let create () = { busy = Array.make 64 false }

  let ensure t i =
    if i >= Array.length t.busy then begin
      let bigger = Array.make (max (i + 1) (2 * Array.length t.busy)) false in
      Array.blit t.busy 0 bigger 0 (Array.length t.busy);
      t.busy <- bigger
    end

  let take_earliest t ~after =
    let rec go i =
      ensure t i;
      if t.busy.(i) then go (i + 1)
      else begin
        t.busy.(i) <- true;
        i
      end
    in
    go (max 0 after)

  let count_below t ~limit =
    let c = ref 0 in
    for i = 0 to min (limit - 1) (Array.length t.busy - 1) do
      if t.busy.(i) then incr c
    done;
    !c
end

(* The folded-ring sequence of the initialization: p_0, p_{N-1}, p_1,
   p_{N-2}, ... — ring neighbours end up at most two positions apart. *)
let folded_sequence n =
  let seq = Array.make n 0 in
  let lo = ref 1 and hi = ref (n - 1) in
  let i = ref 1 in
  let take_hi = ref true in
  while !i < n do
    if !take_hi then begin
      seq.(!i) <- !hi;
      decr hi
    end
    else begin
      seq.(!i) <- !lo;
      incr lo
    end;
    take_hi := not !take_hi;
    incr i
  done;
  seq

let run ~n ~m ~ii_p ~iterations =
  if m < 1 || m > n then invalid_arg "Greedy.run: need 1 <= m <= n";
  if ii_p < 1 then invalid_arg "Greedy.run: ii_p >= 1";
  if iterations < 2 then invalid_arg "Greedy.run: iterations >= 2";
  let steps = iterations * ii_p in
  let place = Array.init steps (fun _ -> Array.make n { col = -1; time = -1 }) in
  let cols = Array.init m (fun _ -> Col.create ()) in
  let case_two = ref 0 and case_one = ref 0 and case_zero = ref 0 in
  let fallbacks = ref 0 and violations = ref 0 in
  (* --- schedule initialization: first page-iteration --- *)
  let seq = folded_sequence n in
  let full_rows = n / m in
  let tail = n mod m in
  Array.iteri
    (fun k page ->
      if k < full_rows * m then begin
        let row = k / m in
        let j = k mod m in
        let col = if row mod 2 = 0 then j else m - 1 - j in
        let time = Col.take_earliest cols.(col) ~after:row in
        place.(0).(page) <- { col; time }
      end
      else begin
        (* tails: stacked in the column where the serpentine turned *)
        let col = if full_rows mod 2 = 0 then m - 1 else 0 in
        let time = Col.take_earliest cols.(col) ~after:full_rows in
        place.(0).(page) <- { col; time }
      end)
    seq;
  ignore tail;
  (* --- fill the rest, pages in reverse of their init order --- *)
  let reverse_order = Array.of_list (List.rev (Array.to_list seq)) in
  for step = 1 to steps - 1 do
    Array.iter
      (fun page ->
        let dep_ring = place.(step - 1).(((page - 1) + n) mod n) in
        let dep_self = place.(step - 1).(page) in
        let d1 = dep_ring.col and d2 = dep_self.col in
        let after = max dep_ring.time dep_self.time in
        let pick col =
          let time = Col.take_earliest cols.(col) ~after:(after + 1) in
          place.(step).(page) <- { col; time }
        in
        let diff = abs (d1 - d2) in
        if diff = 2 then begin
          incr case_two;
          pick ((d1 + d2) / 2)
        end
        else if diff = 1 then begin
          (* the paper: this case only happens at column 0 or M-1; when
             both dependency columns are edges (M = 2) the paper leaves
             the choice open — balance by column load *)
          let edges =
            List.filter (fun c -> c = d1 || c = d2) [ 0; m - 1 ]
            |> List.sort_uniq compare
          in
          match edges with
          | [] ->
              (* outside the paper's cases: nearest feasible column *)
              incr fallbacks;
              pick (min d1 d2)
          | [ c ] ->
              incr case_one;
              pick c
          | cs ->
              incr case_one;
              let load c = Col.count_below cols.(c) ~limit:(after + 1 + (2 * ii_p * n)) in
              let best =
                List.fold_left
                  (fun acc c ->
                    match acc with
                    | Some (_, l0) when l0 <= load c -> acc
                    | Some _ | None -> Some (c, load c))
                  None cs
              in
              (match best with Some (c, _) -> pick c | None -> assert false)
        end
        else if diff = 0 then begin
          incr case_zero;
          let candidates =
            List.filter (fun c -> c >= 0 && c < m) [ d1 - 1; d1 + 1; d1 ]
          in
          let best =
            List.fold_left
              (fun acc c ->
                let load = Col.count_below cols.(c) ~limit:(after + 1 + (2 * ii_p * n)) in
                match acc with
                | Some (_, l0) when l0 <= load -> acc
                | Some _ | None -> Some (c, load))
              None candidates
          in
          match best with Some (c, _) -> pick c | None -> assert false
        end
        else begin
          (* dependencies drifted more than two columns apart: the
             constraint set is empty; place between them, flagged *)
          incr fallbacks;
          incr violations;
          pick ((d1 + d2) / 2)
        end)
      reverse_order;
    (* constraint audit for this step *)
    Array.iter
      (fun page ->
        let p = place.(step).(page) in
        let dep_ring = place.(step - 1).(((page - 1) + n) mod n) in
        let dep_self = place.(step - 1).(page) in
        if
          abs (p.col - dep_ring.col) > 1
          || abs (p.col - dep_self.col) > 1
          || p.time <= dep_ring.time
          || p.time <= dep_self.time
        then incr violations)
      reverse_order
  done;
  let makespan =
    1
    + Array.fold_left
        (fun acc row -> Array.fold_left (fun a (p : placement) -> max a p.time) acc row)
        0 place
  in
  (* steady-state II: growth of the per-iteration finish time over the
     second half of the horizon *)
  let finish iter =
    let t = ref 0 in
    for s = iter * ii_p to ((iter + 1) * ii_p) - 1 do
      Array.iter (fun (p : placement) -> t := max !t p.time) place.(s)
    done;
    !t
  in
  let mid = iterations / 2 in
  let steady_ii =
    float_of_int (finish (iterations - 1) - finish mid)
    /. float_of_int (max 1 (iterations - 1 - mid))
  in
  {
    n;
    m;
    ii_p;
    iterations;
    place;
    case_two_hop = !case_two;
    case_one_hop = !case_one;
    case_zero_hop = !case_zero;
    fallbacks = !fallbacks;
    dep_violations = !violations;
    makespan;
    steady_ii;
  }
