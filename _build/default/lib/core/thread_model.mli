(** Simulated threads (Section VII-B of the paper).

    A thread alternates CPU phases with loop kernels it wants accelerated.
    The CGRA-need fraction of a thread is the share of its total work (in
    cycles, at full-CGRA speed) spent in kernel segments — the paper
    evaluates 50% (low), 75% (medium), and 87.5% (high). *)

type segment =
  | Cpu of int  (** cycles on the host processor *)
  | Kernel of { kernel : string; iterations : int }
      (** iterations of a named suite kernel on the CGRA *)

type t = { id : int; segments : segment list }

val kernel_names : t -> string list
(** Distinct kernels the thread uses. *)

val cgra_iterations : t -> (string * int) list
(** Total iterations requested per kernel. *)

val total_cpu : t -> int

val pp : Format.formatter -> t -> unit
