let ipc_of_kernel ~ops ~ii =
  if ii <= 0 then invalid_arg "Metrics.ipc_of_kernel: ii <= 0";
  float_of_int ops /. float_of_int ii

let utilization_of_kernel ~ops ~ii ~pes =
  if pes <= 0 then invalid_arg "Metrics.utilization_of_kernel: pes <= 0";
  ipc_of_kernel ~ops ~ii /. float_of_int pes

let aggregate_ipc kernels =
  List.fold_left (fun acc (ops, ii) -> acc +. ipc_of_kernel ~ops ~ii) 0.0 kernels

let ipc_identity_gap ~pes kernels =
  let n = float_of_int pes in
  let u_a =
    List.fold_left
      (fun acc (ops, ii) -> acc +. utilization_of_kernel ~ops ~ii ~pes)
      0.0 kernels
  in
  Float.abs (aggregate_ipc kernels -. (n *. u_a))
