let generate ~seed ~n_threads ~cgra_need ~suite ?(segments_per_thread = 6) () =
  if cgra_need <= 0.0 || cgra_need >= 1.0 then
    invalid_arg "Workload.generate: cgra_need must be in (0, 1)";
  if suite = [] then invalid_arg "Workload.generate: empty suite";
  let root = Cgra_util.Rng.create ~seed in
  let binaries = Array.of_list suite in
  let make_thread id =
    let rng = Cgra_util.Rng.split root in
    let segments = ref [] in
    for _ = 1 to segments_per_thread do
      let b = Cgra_util.Rng.choose rng binaries in
      let iterations = Cgra_util.Rng.int_in rng 30 120 in
      let kernel_cycles = iterations * Binary.ii_base b in
      let ratio = (1.0 -. cgra_need) /. cgra_need in
      (* +/- 25% jitter on the CPU phase, mean preserved across segments *)
      let jitter = 0.75 +. Cgra_util.Rng.float rng 0.5 in
      let cpu = int_of_float (float_of_int kernel_cycles *. ratio *. jitter) in
      if cpu > 0 then segments := Thread_model.Cpu cpu :: !segments;
      segments :=
        Thread_model.Kernel { kernel = b.Binary.name; iterations } :: !segments
    done;
    { Thread_model.id; segments = List.rev !segments }
  in
  List.init n_threads make_thread
