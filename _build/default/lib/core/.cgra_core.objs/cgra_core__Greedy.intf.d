lib/core/greedy.mli:
