lib/core/experiments.ml: Allocator Binary Cgra_arch Cgra_util List Os_sim Printf Result Workload
