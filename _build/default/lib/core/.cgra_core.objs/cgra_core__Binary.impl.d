lib/core/binary.ml: Cgra_dfg Cgra_kernels Cgra_mapper List Mapping Result Scheduler Transform
