lib/core/transform.ml: Array Cgra Cgra_arch Cgra_mapper List Mapping Mirror Option Orient Page Printf
