lib/core/allocator.ml: Format Hashtbl List Option
