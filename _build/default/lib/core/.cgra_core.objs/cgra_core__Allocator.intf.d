lib/core/allocator.mli: Format
