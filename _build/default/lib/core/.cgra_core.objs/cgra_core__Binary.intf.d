lib/core/binary.mli: Cgra_arch Cgra_dfg Cgra_kernels Cgra_mapper
