lib/core/metrics.ml: Float List
