lib/core/workload.mli: Binary Thread_model
