lib/core/thread_model.ml: Format Hashtbl List Option String
