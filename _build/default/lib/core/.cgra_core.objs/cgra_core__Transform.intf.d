lib/core/transform.mli: Cgra_arch Cgra_mapper
