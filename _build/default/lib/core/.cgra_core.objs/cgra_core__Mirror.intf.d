lib/core/mirror.mli: Cgra_arch
