lib/core/page_schedule.ml: Array Cgra Cgra_arch Cgra_mapper Format List Mapping Page Printf String
