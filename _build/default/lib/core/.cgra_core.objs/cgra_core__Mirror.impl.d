lib/core/mirror.ml: Array Cgra_arch Coord List Option Orient Page Printf
