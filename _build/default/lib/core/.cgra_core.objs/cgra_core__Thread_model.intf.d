lib/core/thread_model.mli: Format
