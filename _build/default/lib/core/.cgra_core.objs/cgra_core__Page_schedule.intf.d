lib/core/page_schedule.mli: Cgra_mapper Format
