lib/core/workload.ml: Array Binary Cgra_util List Thread_model
