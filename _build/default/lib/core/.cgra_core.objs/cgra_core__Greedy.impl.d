lib/core/greedy.ml: Array List
