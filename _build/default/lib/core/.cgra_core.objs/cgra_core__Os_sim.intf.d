lib/core/os_sim.mli: Allocator Binary Thread_model
