lib/core/metrics.mli:
