lib/core/os_sim.ml: Allocator Binary Cgra_dfg Cgra_util Float Hashtbl List Queue Thread_model
