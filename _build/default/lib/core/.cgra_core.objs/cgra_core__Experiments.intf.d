lib/core/experiments.mli:
