(** Rotating register allocation (Rau et al., PLDI'92 — the paper's
    reference [10] for why rotating files are essential to modulo
    scheduling).

    Each PE's register file rotates once per II: the physical register
    behind logical name [r] at cycle [c] is [(r + c/II) mod capacity].
    Successive iterations of the same value therefore land in successive
    physical registers and never clobber each other, provided each value
    gets a logical {e offset} such that no two simultaneously live value
    instances share a physical register.

    A value born at time [b] (holder's frame) with last read at time [e]
    conflicts with another value of the same PE at relative iteration
    shift [k] iff their offset/stage congruence matches modulo the
    capacity and the shifted live ranges overlap; the allocator checks
    exactly that finite set of shifts and assigns first-fit offsets. *)

type value = {
  key : Cgra_mapper.Mapping.value_key;
  pe : Cgra_arch.Coord.t;
  born : int;
  last : int;  (** last read, in the holder's frame; [>= born] *)
}

type t = {
  capacity : int;
  offsets : (Cgra_mapper.Mapping.value_key, int) Hashtbl.t;
  values : value list;
}

val values_of_mapping : Cgra_mapper.Mapping.t -> value list
(** One entry per produced or relayed value that is actually read.
    Values with no readers (e.g. an unconsumed store result) need no
    register and are omitted. *)

val allocate : Cgra_mapper.Mapping.t -> (t, string) result
(** First-fit offsets within the architecture's register-file capacity.
    Errors name the PE that overflows. *)

val offset : t -> Cgra_mapper.Mapping.value_key -> int option

val logical_for_read :
  t -> ii:int -> holder_born:int -> read_time:int ->
  Cgra_mapper.Mapping.value_key -> int option
(** The logical register a consumer must name to see the value: the
    holder's offset corrected by the stage difference
    [(born/ii) - (read_time/ii)] modulo the capacity. *)

val pressure : t -> (Cgra_arch.Coord.t * int) list
(** Offsets in use per PE (a lower bound on the file size needed). *)
