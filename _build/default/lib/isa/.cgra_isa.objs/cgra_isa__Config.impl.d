lib/isa/config.ml: Array Cgra Cgra_arch Cgra_dfg Cgra_mapper Coord Format Graph Grid Hashtbl List Mapping Op Printf Regalloc
