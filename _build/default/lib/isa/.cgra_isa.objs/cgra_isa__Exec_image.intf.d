lib/isa/exec_image.mli: Cgra_dfg Cgra_mapper Config
