lib/isa/config.mli: Cgra_arch Cgra_dfg Cgra_mapper Format
