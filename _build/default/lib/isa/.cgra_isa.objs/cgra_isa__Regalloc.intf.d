lib/isa/regalloc.mli: Cgra_arch Cgra_mapper Hashtbl
