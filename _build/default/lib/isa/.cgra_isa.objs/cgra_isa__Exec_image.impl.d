lib/isa/exec_image.ml: Array Cgra_arch Cgra_dfg Cgra_mapper Config Coord Interp List Memory Op Printf
