lib/isa/regalloc.ml: Cgra Cgra_arch Cgra_mapper Coord Grid Hashtbl List Mapping Option Printf
