open Cgra_arch
open Cgra_dfg
open Cgra_mapper

type src =
  | Imm of int
  | Self of int
  | Neigh of Coord.dir * int

type operand = {
  sel : src;
  valid_from : int;
      (* iteration before which the operand reads as zero: loop-carried
         inputs have no producer instance during the prologue (the staged
         predication of real fabrics) *)
}

type context = {
  op : Op.t;
  srcs : operand list;
  dst : int option;
  stage : int;
  debug_node : int option;
}

type t = {
  ii : int;
  rows : int;
  cols : int;
  reg_capacity : int;
  contexts : context option array array;
}


let dir_from ~reader ~holder =
  if Coord.equal reader holder then None
  else
    List.find_opt (fun d -> Coord.equal (Coord.step reader d) holder) Coord.all_dirs

let encode (m : Mapping.t) =
  match Regalloc.allocate m with
  | Error e -> Error e
  | Ok ra -> (
      let g = m.Mapping.graph in
      let grid = m.Mapping.arch.Cgra.grid in
      let contexts =
        Array.make_matrix (Grid.pe_count grid) m.Mapping.ii None
      in
      let routes_by_edge = Hashtbl.create 16 in
      List.iter
        (fun (r : Mapping.route) ->
          Hashtbl.replace routes_by_edge
            (r.edge.Graph.src, r.edge.Graph.dst, r.edge.Graph.operand)
            r)
        m.Mapping.routes;
      let holder_of (e : Graph.edge) =
        match Hashtbl.find_opt routes_by_edge (e.src, e.dst, e.operand) with
        | Some r when r.hops <> [] ->
            let last = List.length r.hops - 1 in
            (List.nth r.hops last, Mapping.Relayed (e, last))
        | Some _ | None -> (Mapping.placement_exn m e.src, Mapping.Produced e.src)
      in
      let error = ref None in
      let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
      let operand_for ~(reader : Mapping.placement) ~read_time (e : Graph.edge) =
        match (Graph.node g e.src).op with
        | Op.Const k -> { sel = Imm k; valid_from = 0 }
        | _ ->
            let holder, key = holder_of e in
            let logical =
              Regalloc.logical_for_read ra ~ii:m.Mapping.ii
                ~holder_born:holder.Mapping.time ~read_time key
            in
            (match logical with
            | None ->
                fail "no register for operand %d of node %d" e.operand e.dst;
                { sel = Imm 0; valid_from = 0 }
            | Some r -> (
                if Coord.equal reader.Mapping.pe holder.Mapping.pe then
                  { sel = Self r; valid_from = e.distance }
                else
                  match dir_from ~reader:reader.Mapping.pe ~holder:holder.Mapping.pe with
                  | Some d -> { sel = Neigh (d, r); valid_from = e.distance }
                  | None ->
                      fail "operand of node %d out of reach" e.dst;
                      { sel = Imm 0; valid_from = 0 }))
      in
      let put (p : Mapping.placement) ctx =
        let idx = Grid.index grid p.pe in
        let slot = p.time mod m.Mapping.ii in
        match contexts.(idx).(slot) with
        | Some _ -> fail "context clash at %s slot %d" (Coord.to_string p.pe) slot
        | None -> contexts.(idx).(slot) <- Some ctx
      in
      (* operation contexts *)
      Array.iteri
        (fun v pl ->
          match pl with
          | None -> ()
          | Some (p : Mapping.placement) ->
              let srcs =
                List.map
                  (fun (e : Graph.edge) ->
                    operand_for ~reader:p
                      ~read_time:(p.time + (e.distance * m.Mapping.ii))
                      e)
                  (Graph.preds g v)
              in
              put p
                {
                  op = (Graph.node g v).op;
                  srcs;
                  dst = Regalloc.offset ra (Mapping.Produced v);
                  stage = p.time / m.Mapping.ii;
                  debug_node = Some v;
                })
        m.Mapping.placements;
      (* routing contexts *)
      List.iter
        (fun (r : Mapping.route) ->
          let e = r.edge in
          List.iteri
            (fun j (h : Mapping.placement) ->
              let holder, key =
                if j = 0 then (Mapping.placement_exn m e.Graph.src, Mapping.Produced e.Graph.src)
                else (List.nth r.hops (j - 1), Mapping.Relayed (e, j - 1))
              in
              let sel =
                match
                  Regalloc.logical_for_read ra ~ii:m.Mapping.ii
                    ~holder_born:holder.Mapping.time ~read_time:h.time key
                with
                | None ->
                    fail "no register feeding hop %d of edge %d->%d" j e.Graph.src
                      e.Graph.dst;
                    Imm 0
                | Some reg -> (
                    if Coord.equal h.pe holder.Mapping.pe then Self reg
                    else
                      match dir_from ~reader:h.pe ~holder:holder.Mapping.pe with
                      | Some d -> Neigh (d, reg)
                      | None ->
                          fail "hop %d of edge %d->%d out of reach" j e.Graph.src
                            e.Graph.dst;
                          Imm 0)
              in
              put h
                {
                  op = Op.Route;
                  srcs = [ { sel; valid_from = 0 } ];
                  dst = Regalloc.offset ra (Mapping.Relayed (e, j));
                  stage = h.time / m.Mapping.ii;
                  debug_node = None;
                })
            r.hops)
        m.Mapping.routes;
      match !error with
      | Some e -> Error e
      | None ->
          Ok
            {
              ii = m.Mapping.ii;
              rows = grid.Grid.rows;
              cols = grid.Grid.cols;
              reg_capacity = ra.Regalloc.capacity;
              contexts;
            })


let context_count t =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun a c -> match c with Some _ -> a + 1 | None -> a) acc row)
    0 t.contexts

let words t = Array.length t.contexts * t.ii

let pp_src ppf = function
  | Imm k -> Format.fprintf ppf "#%d" k
  | Self r -> Format.fprintf ppf "r%d" r
  | Neigh (d, r) -> Format.fprintf ppf "%a.r%d" Coord.pp_dir d r

let pp ppf t =
  Array.iteri
    (fun idx row ->
      Array.iteri
        (fun slot c ->
          match c with
          | None -> ()
          | Some ctx ->
              let row_i = idx / t.cols and col = idx mod t.cols in
              Format.fprintf ppf "PE(%d,%d) slot %d stage %d: %a" row_i col slot
                ctx.stage Op.pp ctx.op;
              List.iteri
                (fun i (o : operand) ->
                  Format.fprintf ppf "%s%a" (if i = 0 then " " else ", ") pp_src o.sel;
                  if o.valid_from > 0 then Format.fprintf ppf "[d%d]" o.valid_from)
                ctx.srcs;
              (match ctx.dst with
              | Some r -> Format.fprintf ppf " -> r%d" r
              | None -> ());
              Format.pp_print_newline ppf ())
        row)
    t.contexts
