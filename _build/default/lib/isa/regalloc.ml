open Cgra_arch
open Cgra_mapper

type value = {
  key : Mapping.value_key;
  pe : Coord.t;
  born : int;
  last : int;
}

type t = {
  capacity : int;
  offsets : (Mapping.value_key, int) Hashtbl.t;
  values : value list;
}

let values_of_mapping (m : Mapping.t) =
  let acc = Hashtbl.create 64 in
  List.iter
    (fun (tr : Mapping.transfer) ->
      let prev =
        match Hashtbl.find_opt acc tr.key with
        | Some v -> v
        | None ->
            { key = tr.key; pe = tr.holder.Mapping.pe; born = tr.holder.Mapping.time;
              last = tr.holder.Mapping.time }
      in
      Hashtbl.replace acc tr.key { prev with last = max prev.last tr.read_time })
    (Mapping.transfers m);
  Hashtbl.fold (fun _ v vs -> v :: vs) acc []
  |> List.sort (fun a b -> compare (a.born, a.key) (b.born, b.key))

(* Do values [u] (at offset [ou]) and [v] (at offset [ov]) of the same PE
   ever share a physical register while both live?  With rotation, u's
   instance shifted by k iterations occupies physical
   (ou + born_u/ii + k + i) and v's (ov + born_v/ii + i); congruence plus
   overlap of [born_u + k*ii, last_u + k*ii] with [born_v, last_v]. *)
let conflict ~ii ~capacity (u : value) ou (v : value) ov =
  let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
  (* safely wide shift range; [overlap] filters exactly *)
  let k_lo = fdiv (v.born - u.last) ii - 1 in
  let k_hi = fdiv (v.last - u.born) ii + 1 in
  let su = u.born / ii and sv = v.born / ii in
  let congruent k = (ou + su + k - (ov + sv)) mod capacity = 0 in
  let overlap k = u.born + (k * ii) <= v.last && v.born <= u.last + (k * ii) in
  let rec go k = k <= k_hi && ((congruent k && overlap k) || go (k + 1)) in
  go k_lo

let allocate (m : Mapping.t) =
  let capacity = m.Mapping.arch.Cgra.rf_capacity in
  let values = values_of_mapping m in
  let by_pe = Hashtbl.create 16 in
  let offsets = Hashtbl.create 64 in
  let rec place = function
    | [] -> Ok { capacity; offsets; values }
    | v :: rest ->
        let idx = Grid.index m.Mapping.arch.Cgra.grid v.pe in
        let placed = Option.value ~default:[] (Hashtbl.find_opt by_pe idx) in
        let fits o =
          not
            (List.exists
               (fun (u, ou) ->
                 conflict ~ii:m.Mapping.ii ~capacity u ou v o
                 || conflict ~ii:m.Mapping.ii ~capacity v o u ou)
               placed)
        in
        let rec first_fit o =
          if o >= capacity then None else if fits o then Some o else first_fit (o + 1)
        in
        (match first_fit 0 with
        | Some o ->
            Hashtbl.replace offsets v.key o;
            Hashtbl.replace by_pe idx ((v, o) :: placed);
            place rest
        | None ->
            Error
              (Printf.sprintf "Regalloc: PE %s needs more than %d rotating registers"
                 (Coord.to_string v.pe) capacity))
  in
  place values

let offset t key = Hashtbl.find_opt t.offsets key

let logical_for_read t ~ii ~holder_born ~read_time key =
  match offset t key with
  | None -> None
  | Some o ->
      let k = (read_time / ii) - (holder_born / ii) in
      let r = (o - k) mod t.capacity in
      Some (if r < 0 then r + t.capacity else r)

let pressure t =
  let by_pe = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let n = Option.value ~default:0 (Hashtbl.find_opt by_pe v.pe) in
      Hashtbl.replace by_pe v.pe (n + 1))
    t.values;
  Hashtbl.fold (fun pe n acc -> (pe, n) :: acc) by_pe []
  |> List.sort (fun (a, _) (b, _) -> Coord.compare a b)
