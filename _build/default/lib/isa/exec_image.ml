open Cgra_arch
open Cgra_dfg

type report = {
  cycles : int;
  fired : int;
  squashed : int;
}

let run (img : Config.t) mem ~iterations =
  if iterations < 0 then invalid_arg "Exec_image.run: negative iterations";
  let n_pes = img.Config.rows * img.Config.cols in
  let regs = Array.init n_pes (fun _ -> Array.make img.Config.reg_capacity 0) in
  let fired = ref 0 and squashed = ref 0 in
  (* the deepest pipeline stage bounds the epilogue *)
  let max_stage =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun a c ->
            match c with Some (ctx : Config.context) -> max a ctx.Config.stage | None -> a)
          acc row)
      0 img.Config.contexts
  in
  let last_cycle =
    if iterations = 0 then -1
    else (((iterations - 1) + max_stage) * img.Config.ii) + img.Config.ii - 1
  in
  let neighbor idx d =
    let row = idx / img.Config.cols and col = idx mod img.Config.cols in
    let c = Coord.step (Coord.make ~row ~col) d in
    if
      c.Coord.row >= 0 && c.Coord.row < img.Config.rows && c.Coord.col >= 0
      && c.Coord.col < img.Config.cols
    then Some ((c.Coord.row * img.Config.cols) + c.Coord.col)
    else None
  in
  for cycle = 0 to last_cycle do
    let slot = cycle mod img.Config.ii in
    let rotation = cycle / img.Config.ii in
    let phys r = (r + rotation) mod img.Config.reg_capacity in
    (* phase 1: decode and compute against the current register state *)
    let writes = ref [] in
    let stores = ref [] in
    for idx = 0 to n_pes - 1 do
      match img.Config.contexts.(idx).(slot) with
      | None -> ()
      | Some ctx ->
          let iter = rotation - ctx.Config.stage in
          if iter < 0 || iter >= iterations then incr squashed
          else begin
            incr fired;
            let read (o : Config.operand) =
              if iter < o.Config.valid_from then 0
              else
                match o.Config.sel with
                | Config.Imm k -> k
                | Config.Self r -> regs.(idx).(phys r)
                | Config.Neigh (d, r) -> (
                    match neighbor idx d with
                    | Some n -> regs.(n).(phys r)
                    | None -> 0)
            in
            let args = List.map read ctx.Config.srcs in
            let load a i = Memory.load mem a i in
            let store a i v = stores := (a, i, v) :: !stores in
            let result = Op.eval ctx.Config.op ~iter ~load ~store args in
            match ctx.Config.dst with
            | Some r -> writes := (idx, phys r, result) :: !writes
            | None -> ()
          end
    done;
    (* phase 2: commit *)
    List.iter (fun (idx, r, v) -> regs.(idx).(r) <- v) !writes;
    List.iter (fun (a, i, v) -> Memory.store mem a i v) !stores
  done;
  { cycles = last_cycle + 1; fired = !fired; squashed = !squashed }

let check (m : Cgra_mapper.Mapping.t) init ~iterations =
  match Config.encode m with
  | Error e -> Error [ e ]
  | Ok img ->
      let mem_isa = Memory.copy init in
      let mem_ref = Memory.copy init in
      let report = run img mem_isa ~iterations in
      Interp.run m.Cgra_mapper.Mapping.graph mem_ref ~iterations;
      let diffs = Memory.diff mem_isa mem_ref in
      if diffs = [] then Ok report
      else
        Error
          (List.map
             (fun (a, i, isa, oracle) ->
               Printf.sprintf "memory %s[%d]: image %d, oracle %d" a i isa oracle)
             diffs)
