(** Execution of configuration images — a decoder-level machine with no
    access to the mapping or the DFG: per-PE instruction memories, physical
    rotating register files, the mesh, and data memory are all it has.

    Running an image and matching the sequential interpreter's final
    memory proves the configuration encoding is self-contained: placement,
    routing, register rotation, operand steering, stage predication, and
    addressing all survived the lowering. *)

type report = {
  cycles : int;
  fired : int;  (** context executions (operations + routing) *)
  squashed : int;  (** stage-predicated executions (prologue/epilogue) *)
}

val run : Config.t -> Cgra_dfg.Memory.t -> iterations:int -> report
(** Executes [iterations] loop iterations, mutating the memory.  Each
    cycle is two-phase (all reads see the previous cycle's state), like
    the synchronous fabric it models. *)

val check :
  Cgra_mapper.Mapping.t -> Cgra_dfg.Memory.t -> iterations:int ->
  (report, string list) result
(** Encode the mapping, run the image, and compare the final memory with
    the interpreter's on an independent copy. *)
