(** The 2-D mesh of processing elements.

    Models the interconnect topology of Fig. 1: each PE can read, in the
    next cycle, a value held in the register file of any of its four mesh
    neighbours (or its own). *)

type t = private { rows : int; cols : int }

val make : rows:int -> cols:int -> t
(** Raises [Invalid_argument] unless both dimensions are positive. *)

val square : int -> t
(** [square n] is an [n x n] grid. *)

val pe_count : t -> int

val in_bounds : t -> Coord.t -> bool

val neighbors : t -> Coord.t -> Coord.t list
(** In-bounds mesh neighbours, in N/E/S/W order. *)

val adjacent : t -> Coord.t -> Coord.t -> bool
(** Mesh adjacency of two in-bounds coordinates. *)

val all_pes : t -> Coord.t list
(** Row-major enumeration. *)

val serpentine : t -> Coord.t array
(** All PEs along the boustrophedon path (row 0 left-to-right, row 1
    right-to-left, ...).  Consecutive entries are always mesh-adjacent. *)

val index : t -> Coord.t -> int
(** Row-major index, for array-backed per-PE state. *)

val serp_index : t -> Coord.t -> int
(** Position of a PE along the serpentine path ({!serpentine} inverse).
    Band-shaped pages treat PEs as path-adjacent when their serpentine
    positions are consecutive. *)

val pp : Format.formatter -> t -> unit
