type t = { rows : int; cols : int }

let make ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Grid.make: dimensions must be positive";
  { rows; cols }

let square n = make ~rows:n ~cols:n

let pe_count t = t.rows * t.cols

let in_bounds t (c : Coord.t) =
  c.row >= 0 && c.row < t.rows && c.col >= 0 && c.col < t.cols

let neighbors t c =
  List.filter_map
    (fun d ->
      let n = Coord.step c d in
      if in_bounds t n then Some n else None)
    Coord.all_dirs

let adjacent t a b = in_bounds t a && in_bounds t b && Coord.adjacent a b

let all_pes t =
  List.concat_map
    (fun row -> List.init t.cols (fun col -> Coord.make ~row ~col))
    (List.init t.rows Fun.id)

let serpentine t =
  Array.init (pe_count t) (fun k ->
      let row = k / t.cols in
      let j = k mod t.cols in
      let col = if row mod 2 = 0 then j else t.cols - 1 - j in
      Coord.make ~row ~col)

let index t (c : Coord.t) = (c.row * t.cols) + c.col

let serp_index t (c : Coord.t) =
  let j = if c.row mod 2 = 0 then c.col else t.cols - 1 - c.col in
  (c.row * t.cols) + j

let pp ppf t = Format.fprintf ppf "%dx%d" t.rows t.cols
