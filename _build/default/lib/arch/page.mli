(** Conceptual division of the CGRA into pages (Section VI-A of the paper).

    Pages are symmetrically equivalent groups of PEs arranged in a ring
    order such that consecutive pages are physically adjacent — the
    serpentine order over page tiles.  Two shapes are supported:

    - {b Rect}: the grid is tiled by [tile_rows x tile_cols] rectangles
      (the paper's 2x2 and 4x1 examples, Fig. 4); requires the grid
      dimensions to be divisible by the tile dimensions.
    - {b Band}: pages are contiguous runs of a given size along the PE
      serpentine.  This covers page sizes that do not tile the grid (the
      paper evaluates 8-PE pages on a 6x6 CGRA, and 36 is not divisible by
      8); remainder PEs are left unused.

    Paging requires no hardware support; this module is pure geometry used
    by the constrained mapper and the PageMaster transformation. *)

type shape =
  | Rect of { tile_rows : int; tile_cols : int }
  | Band of { size : int }

type t = private { grid : Grid.t; shape : shape }

val make : Grid.t -> shape -> t
(** Validates the shape against the grid: positive dimensions, divisibility
    for [Rect], [size <= pe_count] and at least one full page for [Band].
    Raises [Invalid_argument] otherwise. *)

val rect : Grid.t -> tile_rows:int -> tile_cols:int -> t

val band : Grid.t -> size:int -> t

val for_size : Grid.t -> int -> t option
(** The page geometry used throughout the experiments for a given page
    size: 2 -> 1x2 tiles, 4 -> 2x2 tiles, 8 -> 2x4 tiles when they divide
    the grid, falling back to [Band] when they do not (6x6 with 8-PE
    pages).  [None] when fewer than four pages would fit (no multithreading
    potential, matching the paper's omission of 8-PE pages on 4x4). *)

val n_pages : t -> int

val page_size : t -> int
(** PEs per page. *)

val used_pe_count : t -> int
(** [n_pages * page_size]; less than the grid's PE count only for [Band]
    shapes with a remainder. *)

val page_of_pe : t -> Coord.t -> int option
(** Page index of a PE; [None] for unused remainder PEs. *)

val pes_of_page : t -> int -> Coord.t list
(** The PEs of a page.  For [Rect], row-major within the tile; for [Band],
    along the serpentine. *)

val is_rect : t -> bool

val is_square_tile : t -> bool
(** True for [Rect] shapes with square tiles (full D4 mirroring
    available). *)

val tile_dims : t -> (int * int) option
(** [(tile_rows, tile_cols)] for [Rect] shapes. *)

val tile_origin : t -> int -> Coord.t option
(** Top-left corner of a page's tile ([Rect] only). *)

val local_of : t -> int -> Coord.t -> Coord.t option
(** Tile-local coordinate of a global PE within the given page ([Rect]
    only; [None] if the PE is not in the page or the shape is [Band]). *)

val global_of : t -> int -> Coord.t -> Coord.t option
(** Inverse of {!local_of}. *)

val vdims : t -> int * int
(** Virtual tile dimensions: the real tile for [Rect], a [1 x size] path
    for [Band].  The PageMaster mirroring machinery works uniformly on
    virtual tiles: a band page's only symmetries are identity and path
    reversal, i.e. the flips of a [1 x size] tile. *)

val vlocal : t -> int -> Coord.t -> Coord.t option
(** Virtual-tile-local coordinate of a global PE within the given page:
    tile-local for [Rect], [(0, position-within-segment)] for [Band]. *)

val vglobal : t -> int -> Coord.t -> Coord.t option
(** Inverse of {!vlocal}. *)

val dir_between : t -> int -> Coord.dir option
(** Direction from page [n]'s tile to page [n+1]'s tile in the serpentine
    ring order ([Rect] only; [None] for [Band] or the last page). *)

val boundary_pairs : t -> int -> (Coord.t * Coord.t) list
(** All mesh-adjacent PE pairs [(a, b)] with [a] in page [n] and [b] in
    page [n+1].  These are the only interconnect crossings the paging
    dataflow constraint allows. *)

val pp : Format.formatter -> t -> unit
