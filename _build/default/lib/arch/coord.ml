type t = { row : int; col : int }

type dir = North | East | South | West

let make ~row ~col = { row; col }

let equal a b = a.row = b.row && a.col = b.col

let compare a b =
  let c = Int.compare a.row b.row in
  if c <> 0 then c else Int.compare a.col b.col

let add a b = { row = a.row + b.row; col = a.col + b.col }

let step c = function
  | North -> { c with row = c.row - 1 }
  | South -> { c with row = c.row + 1 }
  | East -> { c with col = c.col + 1 }
  | West -> { c with col = c.col - 1 }

let opposite = function North -> South | South -> North | East -> West | West -> East

let all_dirs = [ North; East; South; West ]

let manhattan a b = abs (a.row - b.row) + abs (a.col - b.col)

let adjacent a b = manhattan a b = 1

let pp ppf c = Format.fprintf ppf "(%d,%d)" c.row c.col

let pp_dir ppf d =
  Format.pp_print_string ppf
    (match d with North -> "N" | East -> "E" | South -> "S" | West -> "W")

let to_string c = Format.asprintf "%a" pp c
