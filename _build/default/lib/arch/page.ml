type shape =
  | Rect of { tile_rows : int; tile_cols : int }
  | Band of { size : int }

type t = { grid : Grid.t; shape : shape }

let make grid shape =
  (match shape with
  | Rect { tile_rows; tile_cols } ->
      if tile_rows <= 0 || tile_cols <= 0 then
        invalid_arg "Page.make: tile dimensions must be positive";
      if grid.Grid.rows mod tile_rows <> 0 || grid.Grid.cols mod tile_cols <> 0 then
        invalid_arg "Page.make: tiles must divide the grid"
  | Band { size } ->
      if size <= 0 then invalid_arg "Page.make: band size must be positive";
      if size > Grid.pe_count grid then
        invalid_arg "Page.make: band larger than the grid");
  { grid; shape }

let rect grid ~tile_rows ~tile_cols = make grid (Rect { tile_rows; tile_cols })

let band grid ~size = make grid (Band { size })

let n_pages t =
  match t.shape with
  | Rect { tile_rows; tile_cols } ->
      (t.grid.Grid.rows / tile_rows) * (t.grid.Grid.cols / tile_cols)
  | Band { size } -> Grid.pe_count t.grid / size

let page_size t =
  match t.shape with
  | Rect { tile_rows; tile_cols } -> tile_rows * tile_cols
  | Band { size } -> size

let used_pe_count t = n_pages t * page_size t

let for_size grid size =
  let fits shape =
    match shape with
    | Rect { tile_rows; tile_cols } ->
        grid.Grid.rows mod tile_rows = 0 && grid.Grid.cols mod tile_cols = 0
    | Band _ -> true
  in
  let shape =
    match size with
    | 2 -> Some (Rect { tile_rows = 1; tile_cols = 2 })
    | 4 -> Some (Rect { tile_rows = 2; tile_cols = 2 })
    | 8 -> Some (Rect { tile_rows = 2; tile_cols = 4 })
    | n when n > 0 && Grid.pe_count grid mod n = 0 && n <= grid.Grid.cols ->
        Some (Rect { tile_rows = 1; tile_cols = n })
    | _ -> None
  in
  let shape =
    match shape with
    | Some s when fits s -> Some s
    | Some _ | None ->
        if size > 0 && size <= Grid.pe_count grid then Some (Band { size }) else None
  in
  match shape with
  | None -> None
  | Some s ->
      let t = make grid s in
      (* The paper skips configurations with fewer than four pages ("not
         enough multithreading potential using only two pages" for 8-PE
         pages on 4x4); this threshold reproduces exactly its eight
         size/page-size combinations. *)
      if n_pages t >= 4 then Some t else None

(* Serpentine order over the tile grid: tile-row 0 runs left-to-right,
   tile-row 1 right-to-left, and so on, so consecutive pages share an
   edge. *)
let tile_grid_dims t =
  match t.shape with
  | Rect { tile_rows; tile_cols } ->
      (t.grid.Grid.rows / tile_rows, t.grid.Grid.cols / tile_cols)
  | Band _ -> invalid_arg "Page.tile_grid_dims: band shape"

let tile_coord t n =
  let _, tc = tile_grid_dims t in
  let tile_row = n / tc in
  let j = n mod tc in
  let tile_col = if tile_row mod 2 = 0 then j else tc - 1 - j in
  (tile_row, tile_col)

let tile_index t ~tile_row ~tile_col =
  let _, tc = tile_grid_dims t in
  let j = if tile_row mod 2 = 0 then tile_col else tc - 1 - tile_col in
  (tile_row * tc) + j

let is_rect t = match t.shape with Rect _ -> true | Band _ -> false

let is_square_tile t =
  match t.shape with
  | Rect { tile_rows; tile_cols } -> tile_rows = tile_cols
  | Band _ -> false

let tile_dims t =
  match t.shape with
  | Rect { tile_rows; tile_cols } -> Some (tile_rows, tile_cols)
  | Band _ -> None

let tile_origin t n =
  match t.shape with
  | Band _ -> None
  | Rect { tile_rows; tile_cols } ->
      if n < 0 || n >= n_pages t then None
      else
        let tr, tc = tile_coord t n in
        Some (Coord.make ~row:(tr * tile_rows) ~col:(tc * tile_cols))

let page_of_pe t (c : Coord.t) =
  if not (Grid.in_bounds t.grid c) then None
  else
    match t.shape with
    | Rect { tile_rows; tile_cols } ->
        let tile_row = c.row / tile_rows and tile_col = c.col / tile_cols in
        Some (tile_index t ~tile_row ~tile_col)
    | Band { size } ->
        (* Position along the PE serpentine. *)
        let cols = t.grid.Grid.cols in
        let j = if c.row mod 2 = 0 then c.col else cols - 1 - c.col in
        let k = (c.row * cols) + j in
        let page = k / size in
        if page < n_pages t then Some page else None

let pes_of_page t n =
  if n < 0 || n >= n_pages t then invalid_arg "Page.pes_of_page: bad index";
  match t.shape with
  | Rect { tile_rows; tile_cols } ->
      let origin = Option.get (tile_origin t n) in
      List.concat_map
        (fun dr ->
          List.init tile_cols (fun dc ->
              Coord.make ~row:(origin.Coord.row + dr) ~col:(origin.Coord.col + dc)))
        (List.init tile_rows Fun.id)
  | Band { size } ->
      let path = Grid.serpentine t.grid in
      List.init size (fun i -> path.((n * size) + i))

let local_of t n (c : Coord.t) =
  match (t.shape, tile_origin t n) with
  | Rect _, Some origin
    when page_of_pe t c = Some n ->
      Some (Coord.make ~row:(c.row - origin.Coord.row) ~col:(c.col - origin.Coord.col))
  | (Rect _ | Band _), _ -> None

let global_of t n (local : Coord.t) =
  match (t.shape, tile_origin t n) with
  | Rect { tile_rows; tile_cols }, Some origin
    when local.row >= 0 && local.row < tile_rows && local.col >= 0
         && local.col < tile_cols ->
      Some (Coord.add origin local)
  | (Rect _ | Band _), _ -> None

let vdims t =
  match t.shape with
  | Rect { tile_rows; tile_cols } -> (tile_rows, tile_cols)
  | Band { size } -> (1, size)

let vlocal t n (c : Coord.t) =
  match t.shape with
  | Rect _ -> local_of t n c
  | Band { size } ->
      if page_of_pe t c = Some n then
        Some (Coord.make ~row:0 ~col:(Grid.serp_index t.grid c - (n * size)))
      else None

let vglobal t n (local : Coord.t) =
  match t.shape with
  | Rect _ -> global_of t n local
  | Band { size } ->
      if local.row = 0 && local.col >= 0 && local.col < size && n >= 0 && n < n_pages t
      then Some (Grid.serpentine t.grid).((n * size) + local.col)
      else None

let dir_between t n =
  match t.shape with
  | Band _ -> None
  | Rect _ ->
      if n < 0 || n + 1 >= n_pages t then None
      else
        let r0, c0 = tile_coord t n and r1, c1 = tile_coord t (n + 1) in
        if r1 = r0 && c1 = c0 + 1 then Some Coord.East
        else if r1 = r0 && c1 = c0 - 1 then Some Coord.West
        else if r1 = r0 + 1 && c1 = c0 then Some Coord.South
        else None

let boundary_pairs t n =
  if n < 0 || n + 1 >= n_pages t then []
  else
    let next = pes_of_page t (n + 1) in
    List.concat_map
      (fun a -> List.filter_map (fun b -> if Coord.adjacent a b then Some (a, b) else None) next)
      (pes_of_page t n)

let pp ppf t =
  match t.shape with
  | Rect { tile_rows; tile_cols } ->
      Format.fprintf ppf "%a/rect%dx%d(%d pages)" Grid.pp t.grid tile_rows tile_cols
        (n_pages t)
  | Band { size } ->
      Format.fprintf ppf "%a/band%d(%d pages)" Grid.pp t.grid size (n_pages t)
