lib/arch/page.mli: Coord Format Grid
