lib/arch/coord.mli: Format
