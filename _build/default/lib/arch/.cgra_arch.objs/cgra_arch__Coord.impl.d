lib/arch/coord.ml: Format Int
