lib/arch/cgra.ml: Format Grid Option Page
