lib/arch/orient.ml: Coord Format List
