lib/arch/orient.mli: Coord Format
