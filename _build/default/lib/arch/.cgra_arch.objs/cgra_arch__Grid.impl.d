lib/arch/grid.ml: Array Coord Format Fun List
