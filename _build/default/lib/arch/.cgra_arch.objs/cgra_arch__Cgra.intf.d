lib/arch/cgra.mli: Format Grid Page
