lib/arch/grid.mli: Coord Format
