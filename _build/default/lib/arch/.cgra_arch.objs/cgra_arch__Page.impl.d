lib/arch/page.ml: Array Coord Format Fun Grid List Option
