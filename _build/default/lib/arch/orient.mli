(** Page orientations: the symmetries applied to intra-page mappings when
    the PageMaster transformation relocates a page (the "mirroring" of
    Fig. 6 in the paper).

    A symmetry acts on tile-local coordinates.  For square tiles the full
    dihedral group D4 (8 elements) is available; for rectangular tiles only
    the four axis-aligned flips preserve the tile shape. *)

type t
(** A tile symmetry.  Internally transpose-then-flip, so every element of
    D4 is representable. *)

val identity : t

val flip_rows : t
(** Mirror across the horizontal centre axis (row [r] becomes
    [rows-1-r]) — the paper's "mirrored along the horizontal axis". *)

val flip_cols : t
(** Mirror across the vertical centre axis. *)

val equal : t -> t -> bool

val is_identity : t -> bool

val swaps_axes : t -> bool
(** True for the four elements involving a 90-degree component; these are
    only legal on square tiles. *)

val all : square:bool -> t list
(** The candidate symmetries: 8 when [square], else the 4 flips. *)

val apply : t -> tile_rows:int -> tile_cols:int -> Coord.t -> Coord.t
(** [apply o ~tile_rows ~tile_cols c] transforms the tile-local coordinate
    [c].  Raises [Invalid_argument] if [o] swaps axes on a non-square
    tile. *)

val compose : t -> t -> t
(** [compose f g] applies [g] first, then [f] (only meaningful on square
    tiles when either swaps axes). *)

val pp : Format.formatter -> t -> unit
