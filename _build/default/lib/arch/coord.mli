(** PE coordinates and mesh directions.

    The CGRA is a 2-D grid; [row] grows downwards and [col] grows to the
    right, matching the figures in the paper (page 0 at the top-left). *)

type t = { row : int; col : int }

type dir = North | East | South | West

val make : row:int -> col:int -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val add : t -> t -> t

val step : t -> dir -> t
(** Neighbouring coordinate in the given direction (may be out of grid
    bounds; bounds are the grid's concern). *)

val opposite : dir -> dir

val all_dirs : dir list
(** [North; East; South; West]. *)

val manhattan : t -> t -> int

val adjacent : t -> t -> bool
(** True when the two coordinates are mesh neighbours (manhattan distance
    one). *)

val pp : Format.formatter -> t -> unit
(** Prints as [(row,col)]. *)

val pp_dir : Format.formatter -> dir -> unit

val to_string : t -> string
