(* A symmetry is "transpose first (optional), then flip rows/cols".  This
   parameterization covers all eight elements of D4. *)
type t = { swap : bool; flip_r : bool; flip_c : bool }

let identity = { swap = false; flip_r = false; flip_c = false }

let flip_rows = { identity with flip_r = true }

let flip_cols = { identity with flip_c = true }

let equal a b = a = b

let is_identity o = o = identity

let swaps_axes o = o.swap

let all ~square =
  let flips =
    [
      identity;
      flip_rows;
      flip_cols;
      { swap = false; flip_r = true; flip_c = true };
    ]
  in
  if not square then flips
  else flips @ List.map (fun o -> { o with swap = true }) flips

let apply o ~tile_rows ~tile_cols (c : Coord.t) =
  if o.swap && tile_rows <> tile_cols then
    invalid_arg "Orient.apply: axis swap on non-square tile";
  let r, c' = if o.swap then (c.Coord.col, c.Coord.row) else (c.Coord.row, c.Coord.col) in
  let r = if o.flip_r then tile_rows - 1 - r else r in
  let c' = if o.flip_c then tile_cols - 1 - c' else c' in
  Coord.make ~row:r ~col:c'

(* Composition worked out on the matrix representation: each element is
   (P, f) where P is an optional transpose and f the flips.  We compute
   [compose f g] by brute force over a 2x2 support, which is safe because a
   symmetry is determined by its action on any square tile. *)
let compose f g =
  let probe = [ Coord.make ~row:0 ~col:0; Coord.make ~row:0 ~col:1 ] in
  let target c =
    apply f ~tile_rows:2 ~tile_cols:2 (apply g ~tile_rows:2 ~tile_cols:2 c)
  in
  let expected = List.map target probe in
  let matches o =
    List.for_all2
      (fun c e -> Coord.equal (apply o ~tile_rows:2 ~tile_cols:2 c) e)
      probe expected
  in
  match List.find_opt matches (all ~square:true) with
  | Some o -> o
  | None -> assert false (* D4 is closed under composition *)

let pp ppf o =
  Format.fprintf ppf "%s%s%s"
    (if o.swap then "T" else "")
    (if o.flip_r then "R" else "")
    (if o.flip_c then "C" else "");
  if is_identity o then Format.pp_print_string ppf "I"
