lib/mapper/scheduler.ml: Analysis Array Cgra Cgra_arch Cgra_dfg Cgra_util Coord Format Graph Grid Hashtbl Int List Logs Mapping Memdep Op Option Page Printf Router String
