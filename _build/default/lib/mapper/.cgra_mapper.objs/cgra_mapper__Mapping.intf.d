lib/mapper/mapping.mli: Cgra_arch Cgra_dfg Format
