lib/mapper/mapping.ml: Array Cgra Cgra_arch Cgra_dfg Coord Format Fun Graph Grid Hashtbl Int List Memdep Op Option Page Printf Set
