lib/mapper/scheduler.mli: Cgra_arch Cgra_dfg Logs Mapping
