lib/mapper/router.mli: Cgra_arch Mapping
