lib/mapper/router.ml: Cgra_arch Cgra_util Grid Hashtbl Int List Mapping Option
