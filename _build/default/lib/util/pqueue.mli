(** Purely functional min-priority queue (pairing heap).

    Used by the discrete-event system simulator ([Cgra_core.Os_sim]) and by
    the router's best-first searches.  Priorities are compared with a
    user-supplied total order; ties are broken by insertion sequence so
    event processing is deterministic. *)

type ('p, 'a) t
(** Queue with priorities ['p] and payloads ['a]. *)

val empty : cmp:('p -> 'p -> int) -> ('p, 'a) t
(** Empty queue ordered by [cmp]. *)

val is_empty : ('p, 'a) t -> bool

val size : ('p, 'a) t -> int
(** Number of elements; O(1). *)

val push : ('p, 'a) t -> 'p -> 'a -> ('p, 'a) t
(** [push q p x] inserts [x] with priority [p]; O(1). *)

val pop : ('p, 'a) t -> (('p * 'a) * ('p, 'a) t) option
(** Removes a minimum-priority element; among equal priorities the earliest
    insertion wins.  O(log n) amortized. *)

val peek : ('p, 'a) t -> ('p * 'a) option
(** Minimum-priority element without removing it. *)

val of_list : cmp:('p -> 'p -> int) -> ('p * 'a) list -> ('p, 'a) t

val to_sorted_list : ('p, 'a) t -> ('p * 'a) list
(** All elements in popping order; consumes O(n log n) time. *)
