(** Deterministic pseudo-random number generation.

    All randomness in the project flows through this module so that every
    experiment, workload, and property test is reproducible from an explicit
    seed.  The generator is splitmix64, which has a 64-bit state, passes
    BigCrush, and is trivially splittable — good enough for workload
    generation and scheduling tie-breaks (we make no cryptographic claims). *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that continues [t]'s stream;
    advancing one does not affect the other. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream, statistically
    independent of subsequent draws from [t].  Used to give each simulated
    thread its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean (> 0). *)
