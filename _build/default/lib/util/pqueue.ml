(* Pairing heap with an insertion sequence number for deterministic
   tie-breaking. *)

type ('p, 'a) node = { prio : 'p; seq : int; value : 'a; children : ('p, 'a) node list }

type ('p, 'a) t = {
  cmp : 'p -> 'p -> int;
  root : ('p, 'a) node option;
  next_seq : int;
  count : int;
}

let empty ~cmp = { cmp; root = None; next_seq = 0; count = 0 }

let is_empty t = t.root = None

let size t = t.count

let node_le cmp a b =
  let c = cmp a.prio b.prio in
  if c <> 0 then c < 0 else a.seq <= b.seq

let meld cmp a b =
  if node_le cmp a b then { a with children = b :: a.children }
  else { b with children = a :: b.children }

let push t prio value =
  let n = { prio; seq = t.next_seq; value; children = [] } in
  let root = match t.root with None -> n | Some r -> meld t.cmp r n in
  { t with root = Some root; next_seq = t.next_seq + 1; count = t.count + 1 }

let rec merge_pairs cmp = function
  | [] -> None
  | [ n ] -> Some n
  | a :: b :: rest -> (
      let ab = meld cmp a b in
      match merge_pairs cmp rest with None -> Some ab | Some r -> Some (meld cmp ab r))

let pop t =
  match t.root with
  | None -> None
  | Some r ->
      let rest = { t with root = merge_pairs t.cmp r.children; count = t.count - 1 } in
      Some ((r.prio, r.value), rest)

let peek t = match t.root with None -> None | Some r -> Some (r.prio, r.value)

let of_list ~cmp xs = List.fold_left (fun q (p, x) -> push q p x) (empty ~cmp) xs

let to_sorted_list t =
  let rec go acc q =
    match pop q with None -> List.rev acc | Some (px, q') -> go (px :: acc) q'
  in
  go [] t
