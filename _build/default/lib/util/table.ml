type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(align = []) ~header rows =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows
  in
  let get xs i = match List.nth_opt xs i with Some x -> x | None -> "" in
  let col_align i =
    match List.nth_opt align i with
    | Some a -> a
    | None -> if i = 0 then Left else Right
  in
  let width i =
    List.fold_left
      (fun acc r -> max acc (String.length (get r i)))
      (String.length (get header i))
      rows
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi (fun i w -> pad (col_align i) w (get row i)) widths)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let fmt_float ?(decimals = 1) x = Printf.sprintf "%.*f" decimals x

let fmt_percent ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals x
