lib/util/table.mli:
