lib/util/stats.mli:
