lib/util/pqueue.mli:
