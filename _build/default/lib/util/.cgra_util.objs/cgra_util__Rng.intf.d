lib/util/rng.mli:
