(** Small statistics helpers shared by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val minimum : float list -> float
(** Smallest element; raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Largest element; raises [Invalid_argument] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], linear interpolation between
    order statistics.  Raises [Invalid_argument] on the empty list. *)

val ratio_percent : float -> float -> float
(** [ratio_percent a b] is [100 * a / b]; 0 when [b = 0]. *)

val improvement_percent : baseline:float -> improved:float -> float
(** Speed-up of [improved] over [baseline], as a percentage:
    [(baseline / improved - 1) * 100] when both are times (lower = better).
    0 when [improved = 0]. *)
