let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
      let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
      exp (logsum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
      sqrt var

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty"
  | x :: xs -> List.fold_left max x xs

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty"
  | xs ->
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = int_of_float (ceil rank) in
      if lo = hi then arr.(lo)
      else
        let w = rank -. float_of_int lo in
        ((1.0 -. w) *. arr.(lo)) +. (w *. arr.(hi))

let ratio_percent a b = if b = 0.0 then 0.0 else 100.0 *. a /. b

let improvement_percent ~baseline ~improved =
  if improved = 0.0 then 0.0 else ((baseline /. improved) -. 1.0) *. 100.0
