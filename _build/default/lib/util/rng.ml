type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t ~mean =
  assert (mean > 0.0);
  let u = float t 1.0 in
  (* avoid log 0 *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u
