(** Plain-text table rendering for the experiment harness.

    The bench harness prints the same rows/series the paper's figures show;
    this module keeps that output aligned and diff-friendly. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the table out with a header rule.  [align]
    gives per-column alignment (default: first column left, rest right);
    missing entries default to [Right]. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting, default 1 decimal. *)

val fmt_percent : ?decimals:int -> float -> string
(** Like {!fmt_float} with a ["%"] suffix. *)
