(** Memory dependence analysis over the kernel's affine accesses.

    The reference semantics of a kernel is the interpreter's: iterations
    execute one after another, each in topological order.  A software
    pipeline overlaps iterations, so conflicting memory accesses (same
    array, same address, at least one store) must keep their sequential
    order — classic loop-carried memory dependences.

    Accesses with affine addresses ([stride * i + offset]) are solved
    exactly; dynamic-index accesses ([Load_idx]/[Store_idx]) and
    incommensurate stride pairs are handled conservatively (assumed to
    conflict in every iteration pair). *)

type t = {
  src : int;
  dst : int;
  distance : int;
      (** instance [(dst, i)] must execute strictly after [(src, i -
          distance)] — the same timing form as a data edge, with no
          operand transfer *)
}

val ordering : Graph.t -> t list
(** All ordering constraints of the kernel.  Pairs of loads never
    constrain; a memory op never constrains itself (its instances are
    already strictly ordered by the modulo schedule). *)

val as_edge_triples : t list -> (int * int * int) list
(** [(src, dst, distance)] view for {!Analysis.rec_mii_with}. *)
