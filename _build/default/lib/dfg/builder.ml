type v = int

type t = {
  name : string;
  mutable ops : Op.t list;  (* reversed *)
  mutable count : int;
  mutable edges : (int * int * int * int) list;
}

let create ~name = { name; ops = []; count = 0; edges = [] }

let add b op inputs =
  if List.length inputs <> Op.arity op then
    invalid_arg
      (Printf.sprintf "Builder.add: %s expects %d inputs, got %d" (Op.to_string op)
         (Op.arity op) (List.length inputs));
  let id = b.count in
  b.ops <- op :: b.ops;
  b.count <- id + 1;
  List.iteri
    (fun operand (src, distance) -> b.edges <- (src, id, operand, distance) :: b.edges)
    inputs;
  id

let op0 b op = add b op []

let op1 b op x = add b op [ (x, 0) ]

let op2 b op x y = add b op [ (x, 0); (y, 0) ]

let op3 b op x y z = add b op [ (x, 0); (y, 0); (z, 0) ]

let const b k = op0 b (Op.Const k)

let load b array ~offset ~stride = op0 b (Op.Load { array; offset; stride })

let store b array ~offset ~stride v = op1 b (Op.Store { array; offset; stride }) v

let carried v d = (v, d)

let defer b op =
  let id = b.count in
  b.ops <- op :: b.ops;
  b.count <- id + 1;
  id

let connect b ~src ~dst ~operand ~distance =
  b.edges <- (src, dst, operand, distance) :: b.edges

let finish b = Graph.create ~name:b.name ~ops:(List.rev b.ops) ~edges:(List.rev b.edges)
