(** Imperative construction of data-flow graphs.

    Kernel definitions read like straight-line code:
    {[
      let b = Builder.create ~name:"sobel" in
      let p  = Builder.load b "img" ~offset:0 ~stride:1 in
      let q  = Builder.load b "img" ~offset:1 ~stride:1 in
      let d  = Builder.op2 b Op.Sub p q in
      let _  = Builder.store b "out" ~offset:0 ~stride:1 (Builder.op1 b Op.Abs d) in
      Builder.finish b
    ]} *)

type t

type v
(** Handle to a node under construction. *)

val create : name:string -> t

val add : t -> Op.t -> (v * int) list -> v
(** [add b op inputs] appends a node; [inputs] pairs each operand (in
    order) with its iteration distance.  Raises [Invalid_argument] when
    the input count does not match the op's arity. *)

val op0 : t -> Op.t -> v

val op1 : t -> Op.t -> v -> v

val op2 : t -> Op.t -> v -> v -> v

val op3 : t -> Op.t -> v -> v -> v -> v

val const : t -> int -> v

val load : t -> string -> offset:int -> stride:int -> v

val store : t -> string -> offset:int -> stride:int -> v -> v

val carried : v -> int -> v * int
(** [carried v d] marks input [v] as coming from [d] iterations back. *)

val defer : t -> Op.t -> v
(** [defer b op] appends a node whose inputs will be wired later with
    {!connect} — the mechanism for building recurrence cycles, where a
    node consumes a value produced by a later-defined node in a previous
    iteration. *)

val connect : t -> src:v -> dst:v -> operand:int -> distance:int -> unit
(** Wires one operand of a deferred node.  Validation of completeness
    happens in {!finish}. *)

val finish : t -> Graph.t
(** Validates and freezes the graph. *)
