let res_mii ~pes ~mem_slots_per_cycle g =
  if pes <= 0 then invalid_arg "Analysis.res_mii: pes must be positive";
  let n = Graph.n_nodes g in
  let cdiv a b = (a + b - 1) / b in
  let compute = cdiv n pes in
  let mem =
    if mem_slots_per_cycle <= 0 then invalid_arg "Analysis.res_mii: mem slots"
    else cdiv (Graph.mem_node_count g) mem_slots_per_cycle
  in
  max 1 (max compute mem)

(* A positive cycle in the graph with edge weights [1 - ii * distance]
   means some recurrence circuit needs more than [ii] cycles per
   iteration.  Bellman-Ford longest-path relaxation, starting from 0
   everywhere (equivalent to a virtual source).  [extra] carries
   additional (src, dst, distance) timing constraints, e.g. memory
   ordering edges. *)
let has_positive_cycle ?(extra = []) g ii =
  let n = Graph.n_nodes g in
  let dist = Array.make n 0 in
  let constraints =
    List.map (fun (e : Graph.edge) -> (e.src, e.dst, e.distance)) (Graph.edges g)
    @ extra
  in
  let relax () =
    List.fold_left
      (fun changed (src, dst, d) ->
        let w = 1 - (ii * d) in
        if dist.(src) + w > dist.(dst) then begin
          dist.(dst) <- dist.(src) + w;
          true
        end
        else changed)
      false constraints
  in
  let rec go k = if k = 0 then relax () else if relax () then go (k - 1) else false in
  n > 0 && go n

let feasible_ii g ii = not (has_positive_cycle g ii)

let rec_mii_with ~extra g =
  if Graph.n_nodes g = 0 then 1
  else
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if has_positive_cycle ~extra g mid then search (mid + 1) hi else search lo mid
    in
    (* Any simple cycle has latency <= n + |extra| and distance >= 1. *)
    search 1 (max 1 (Graph.n_nodes g + List.length extra))

let rec_mii g = rec_mii_with ~extra:[] g

let mii ~pes ~mem_slots_per_cycle g =
  max (res_mii ~pes ~mem_slots_per_cycle g) (rec_mii g)

let asap g =
  let n = Graph.n_nodes g in
  let levels = Array.make n 0 in
  List.iter
    (fun v ->
      let lvl =
        List.fold_left
          (fun acc (e : Graph.edge) ->
            if e.distance = 0 then max acc (levels.(e.src) + 1) else acc)
          0 (Graph.preds g v)
      in
      levels.(v) <- lvl)
    (Graph.topo_order g);
  levels

let height g =
  let n = Graph.n_nodes g in
  let h = Array.make n 0 in
  List.iter
    (fun v ->
      let lvl =
        List.fold_left
          (fun acc (e : Graph.edge) ->
            if e.distance = 0 then max acc (h.(e.dst) + 1) else acc)
          0 (Graph.succs g v)
      in
      h.(v) <- lvl)
    (List.rev (Graph.topo_order g));
  h

let critical_path g =
  let a = asap g in
  if Array.length a = 0 then 0 else 1 + Array.fold_left max 0 a

(* Tarjan's strongly connected components, iterative to be safe on deep
   graphs.  Components are numbered in reverse topological order of the
   condensation (standard Tarjan property). *)
let sccs g =
  let n = Graph.n_nodes g in
  let succs v = List.map (fun (e : Graph.edge) -> e.dst) (Graph.succs g v) in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let counter = ref 0 in
  let n_comps = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs v);
    if lowlink.(v) = index.(v) then begin
      let rec popall () =
        match !stack with
        | [] -> ()
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- !n_comps;
            if w <> v then popall ()
      in
      popall ();
      incr n_comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  comp

let scc_topo_rank g =
  let comp = sccs g in
  let n_comps = Array.fold_left (fun acc c -> max acc (c + 1)) 0 comp in
  (* Tarjan numbers components in reverse topological order. *)
  Array.map (fun c -> n_comps - 1 - c) comp
