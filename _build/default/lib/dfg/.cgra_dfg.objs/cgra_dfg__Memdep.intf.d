lib/dfg/memdep.mli: Graph
