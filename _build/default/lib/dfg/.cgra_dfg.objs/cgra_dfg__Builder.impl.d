lib/dfg/builder.ml: Graph List Op Printf
