lib/dfg/memdep.ml: Array Graph List Op Option
