lib/dfg/analysis.ml: Array Graph List
