lib/dfg/interp.ml: Array Graph List Memory Op
