lib/dfg/memory.ml: Array Format Fun Hashtbl List String
