lib/dfg/memory.mli: Format
