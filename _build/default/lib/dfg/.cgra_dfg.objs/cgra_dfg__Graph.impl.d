lib/dfg/graph.ml: Array Format Hashtbl List Op Printf Queue
