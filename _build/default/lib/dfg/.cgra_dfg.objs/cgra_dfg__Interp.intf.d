lib/dfg/interp.mli: Graph Memory
