lib/dfg/dot.ml: Buffer Graph List Op Printf
