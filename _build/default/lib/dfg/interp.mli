(** Reference interpreter: executes a kernel sequentially, iteration by
    iteration, with no notion of the CGRA.  The cycle-accurate simulator's
    results are validated against this oracle. *)

val run : Graph.t -> Memory.t -> iterations:int -> unit
(** Executes [iterations] loop iterations, mutating the memory
    environment.  Loop-carried inputs read the value produced [distance]
    iterations earlier; before the loop starts these read as 0. *)

val run_history : Graph.t -> Memory.t -> iterations:int -> int array array
(** Like {!run} but also returns [values] with [values.(i).(v)] the result
    of node [v] in iteration [i] — the oracle stream the simulator checker
    compares against. *)
