(** Memory environment for kernel execution: named integer arrays standing
    in for the CGRA's local data memory.

    Out-of-range indices wrap (Euclidean modulo), keeping randomly
    generated index streams total and deterministic. *)

type t

val create : (string * int array) list -> t
(** Arrays are used as given (not copied).  Duplicate names are an
    error. *)

val copy : t -> t
(** Deep copy; the reference interpreter and the simulator each run on
    their own copy and the results are compared. *)

val load : t -> string -> int -> int
(** Raises [Not_found] for unknown arrays. *)

val store : t -> string -> int -> int -> unit

val get : t -> string -> int array

val mem : t -> string -> bool

val names : t -> string list
(** Sorted. *)

val equal : t -> t -> bool

val diff : t -> t -> (string * int * int * int) list
(** [(array, index, v_left, v_right)] for every differing cell — the
    simulator's failure report. *)

val pp : Format.formatter -> t -> unit
