let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (Graph.name g));
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun (n : Graph.node) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%d: %s\"];\n" n.id n.id (Op.to_string n.op)))
    (Graph.nodes g);
  List.iter
    (fun (e : Graph.edge) ->
      let attrs =
        if e.distance > 0 then
          Printf.sprintf " [style=dashed, label=\"d=%d\"]" e.distance
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" e.src e.dst attrs))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
