(** Initiation-interval lower bounds and scheduling priorities.

    Modulo scheduling theory (Rau, MICRO'94): the initiation interval of
    any valid software pipeline is bounded below by

    - [ResMII]: resource pressure — here [ceil (ops / PEs)], plus memory
      ports: [ceil (mem_ops / total_row_ports)];
    - [RecMII]: recurrence circuits — [max over cycles C of
      ceil (latency(C) / distance(C))] with unit latencies.

    [RecMII] is computed exactly by binary search over candidate IIs with
    positive-cycle detection (Bellman–Ford) on the constraint graph whose
    edge weights are [1 - II * distance]. *)

val res_mii : pes:int -> mem_slots_per_cycle:int -> Graph.t -> int
(** Resource-constrained lower bound for a fabric with [pes] usable PEs
    and [mem_slots_per_cycle] simultaneous memory operations. *)

val rec_mii : Graph.t -> int
(** Recurrence-constrained lower bound; 1 for acyclic graphs. *)

val rec_mii_with : extra:(int * int * int) list -> Graph.t -> int
(** Like {!rec_mii} with additional [(src, dst, distance)] timing
    constraints — the scheduler passes [Memdep.ordering] so that memory
    dependence circuits (e.g. in-place stencil updates) bound the II. *)

val mii : pes:int -> mem_slots_per_cycle:int -> Graph.t -> int
(** [max res_mii rec_mii]. *)

val feasible_ii : Graph.t -> int -> bool
(** Whether an II admits a legal schedule w.r.t. recurrences alone. *)

val asap : Graph.t -> int array
(** Earliest start levels on the zero-distance subgraph. *)

val height : Graph.t -> int array
(** Longest zero-distance path from each node to any sink — the classic
    list-scheduling priority (higher = schedule earlier). *)

val critical_path : Graph.t -> int
(** Length in nodes of the longest zero-distance chain. *)

val sccs : Graph.t -> int array
(** Strongly connected components over {e all} edges (loop-carried
    included): [sccs g].(v) is the component index of node [v], and
    component indices are a reverse-topological-order numbering of the
    condensation — scheduling components by ascending index places each
    recurrence circuit's feeders first.  Components with more than one
    node (or a self-loop) are recurrence circuits that must share a page
    under the paging constraints. *)

val scc_topo_rank : Graph.t -> int array
(** Component rank in topological order of the condensation, per node
    (rank 0 first). *)
