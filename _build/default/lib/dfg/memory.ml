type t = (string, int array) Hashtbl.t

let create bindings =
  let t = Hashtbl.create 16 in
  List.iter
    (fun (name, arr) ->
      if Hashtbl.mem t name then invalid_arg ("Memory.create: duplicate array " ^ name);
      Hashtbl.add t name arr)
    bindings;
  t

let copy t =
  let u = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter (fun k v -> Hashtbl.add u k (Array.copy v)) t;
  u

let wrap len i =
  let m = i mod len in
  if m < 0 then m + len else m

let get t name =
  match Hashtbl.find_opt t name with
  | Some arr -> arr
  | None -> raise Not_found

let load t name i =
  let arr = get t name in
  arr.(wrap (Array.length arr) i)

let store t name i v =
  let arr = get t name in
  arr.(wrap (Array.length arr) i) <- v

let mem t name = Hashtbl.mem t name

let names t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let equal a b =
  names a = names b
  && List.for_all (fun name -> get a name = get b name) (names a)

let diff a b =
  List.concat_map
    (fun name ->
      match Hashtbl.find_opt b name with
      | None -> [ (name, -1, 0, 0) ]
      | Some rb ->
          let ra = get a name in
          let n = min (Array.length ra) (Array.length rb) in
          List.filter_map
            (fun i -> if ra.(i) <> rb.(i) then Some (name, i, ra.(i), rb.(i)) else None)
            (List.init n Fun.id))
    (names a)

let pp ppf t =
  List.iter
    (fun name ->
      let arr = get t name in
      Format.fprintf ppf "%s[%d]: " name (Array.length arr);
      Array.iteri
        (fun i v -> if i < 16 then Format.fprintf ppf "%d " v)
        arr;
      if Array.length arr > 16 then Format.fprintf ppf "...";
      Format.pp_print_newline ppf ())
    (names t)
