(** Micro-operations of a loop-kernel data-flow graph.

    Each DFG vertex executes one of these per loop iteration on a PE
    (Fig. 2 of the paper: loads, a store, and arithmetic/logic in an MPEG2
    kernel).  Every operation has unit latency, matching the single-cycle
    ALU model of the target fabric.

    Memory operations address named arrays with an affine function of the
    iteration index ([stride * i + offset]) plus, for the [*_idx]
    variants, a dynamically computed index input — enough to express the
    streaming and table-lookup access patterns of the benchmark suite. *)

type cmp = Lt | Le | Eq | Ne | Gt | Ge

type t =
  | Const of int  (** loop-invariant constant; no inputs *)
  | Iter  (** current iteration index; no inputs *)
  | Add
  | Sub
  | Mul
  | Shl
  | Shr  (** arithmetic shift right *)
  | And
  | Or
  | Xor
  | Min
  | Max
  | Abs  (** one input *)
  | Neg  (** one input *)
  | Cmp of cmp  (** 1 when the comparison holds, else 0 *)
  | Select  (** inputs [cond; a; b]: [a] when [cond <> 0], else [b] *)
  | Clamp8  (** one input, clamped to the pixel range [0, 255] *)
  | Load of { array : string; offset : int; stride : int }
      (** no inputs; reads [array.(stride*i + offset)] (wrapped) *)
  | Load_idx of { array : string }  (** one input: the index (wrapped) *)
  | Store of { array : string; offset : int; stride : int }
      (** one input: the value to write *)
  | Store_idx of { array : string }  (** inputs [index; value] *)
  | Route  (** identity; inserted by the mapper to route data through a PE *)

val arity : t -> int
(** Number of data inputs. *)

val is_mem : t -> bool
(** True for loads and stores (these occupy a memory port on the PE's row
    bus). *)

val is_store : t -> bool

val array_of : t -> string option
(** The array a memory operation touches. *)

val eval : t -> iter:int -> load:(string -> int -> int) -> store:(string -> int -> int -> unit)
  -> int list -> int
(** [eval op ~iter ~load ~store args] computes the op's result for
    iteration [iter].  [load a i]/[store a i v] access the memory
    environment; index wrapping is the environment's concern.  Stores
    return the stored value (so routing a store's "output" is
    well-defined even though nothing consumes it).
    Raises [Invalid_argument] if [args] does not match {!arity}. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
