type cmp = Lt | Le | Eq | Ne | Gt | Ge

type t =
  | Const of int
  | Iter
  | Add
  | Sub
  | Mul
  | Shl
  | Shr
  | And
  | Or
  | Xor
  | Min
  | Max
  | Abs
  | Neg
  | Cmp of cmp
  | Select
  | Clamp8
  | Load of { array : string; offset : int; stride : int }
  | Load_idx of { array : string }
  | Store of { array : string; offset : int; stride : int }
  | Store_idx of { array : string }
  | Route

let arity = function
  | Const _ | Iter | Load _ -> 0
  | Abs | Neg | Clamp8 | Load_idx _ | Store _ | Route -> 1
  | Add | Sub | Mul | Shl | Shr | And | Or | Xor | Min | Max | Cmp _ | Store_idx _ -> 2
  | Select -> 3

let is_mem = function
  | Load _ | Load_idx _ | Store _ | Store_idx _ -> true
  | Const _ | Iter | Add | Sub | Mul | Shl | Shr | And | Or | Xor | Min | Max | Abs
  | Neg | Cmp _ | Select | Clamp8 | Route ->
      false

let is_store = function
  | Store _ | Store_idx _ -> true
  | Load _ | Load_idx _ | Const _ | Iter | Add | Sub | Mul | Shl | Shr | And | Or
  | Xor | Min | Max | Abs | Neg | Cmp _ | Select | Clamp8 | Route ->
      false

let array_of = function
  | Load { array; _ } | Load_idx { array } | Store { array; _ } | Store_idx { array } ->
      Some array
  | Const _ | Iter | Add | Sub | Mul | Shl | Shr | And | Or | Xor | Min | Max | Abs
  | Neg | Cmp _ | Select | Clamp8 | Route ->
      None

let eval_cmp c a b =
  let holds =
    match c with
    | Lt -> a < b
    | Le -> a <= b
    | Eq -> a = b
    | Ne -> a <> b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if holds then 1 else 0

let eval op ~iter ~load ~store args =
  let bad () = invalid_arg "Op.eval: arity mismatch" in
  let one () = match args with [ a ] -> a | _ -> bad () in
  let two () = match args with [ a; b ] -> (a, b) | _ -> bad () in
  match op with
  | Const k -> if args = [] then k else bad ()
  | Iter -> if args = [] then iter else bad ()
  | Add -> let a, b = two () in a + b
  | Sub -> let a, b = two () in a - b
  | Mul -> let a, b = two () in a * b
  | Shl -> let a, b = two () in a lsl (b land 63)
  | Shr -> let a, b = two () in a asr (b land 63)
  | And -> let a, b = two () in a land b
  | Or -> let a, b = two () in a lor b
  | Xor -> let a, b = two () in a lxor b
  | Min -> let a, b = two () in min a b
  | Max -> let a, b = two () in max a b
  | Abs -> abs (one ())
  | Neg -> -one ()
  | Cmp c -> let a, b = two () in eval_cmp c a b
  | Select -> (
      match args with [ cond; a; b ] -> if cond <> 0 then a else b | _ -> bad ())
  | Clamp8 -> max 0 (min 255 (one ()))
  | Load { array; offset; stride } ->
      if args = [] then load array ((stride * iter) + offset) else bad ()
  | Load_idx { array } -> load array (one ())
  | Store { array; offset; stride } ->
      let v = one () in
      store array ((stride * iter) + offset) v;
      v
  | Store_idx { array } ->
      let i, v = two () in
      store array i v;
      v
  | Route -> one ()

let equal a b = a = b

let cmp_to_string = function
  | Lt -> "lt" | Le -> "le" | Eq -> "eq" | Ne -> "ne" | Gt -> "gt" | Ge -> "ge"

let to_string = function
  | Const k -> Printf.sprintf "const %d" k
  | Iter -> "iter"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Shl -> "shl"
  | Shr -> "shr"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Min -> "min"
  | Max -> "max"
  | Abs -> "abs"
  | Neg -> "neg"
  | Cmp c -> "cmp." ^ cmp_to_string c
  | Select -> "select"
  | Clamp8 -> "clamp8"
  | Load { array; offset; stride } -> Printf.sprintf "ld %s[%di%+d]" array stride offset
  | Load_idx { array } -> Printf.sprintf "ldx %s" array
  | Store { array; offset; stride } -> Printf.sprintf "st %s[%di%+d]" array stride offset
  | Store_idx { array } -> Printf.sprintf "stx %s" array
  | Route -> "route"

let pp ppf op = Format.pp_print_string ppf (to_string op)
