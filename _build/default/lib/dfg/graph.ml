type node = { id : int; op : Op.t }

type edge = { src : int; dst : int; operand : int; distance : int }

type t = {
  name : string;
  node_arr : node array;
  edge_list : edge list;
  pred_arr : edge list array;  (* sorted by operand *)
  succ_arr : edge list array;
  topo : int list;
}

let name t = t.name

let n_nodes t = Array.length t.node_arr

let node t i = t.node_arr.(i)

let nodes t = Array.to_list t.node_arr

let edges t = t.edge_list

let n_edges t = List.length t.edge_list

let preds t i = t.pred_arr.(i)

let succs t i = t.succ_arr.(i)

let mem_node_count t =
  Array.fold_left (fun acc n -> if Op.is_mem n.op then acc + 1 else acc) 0 t.node_arr

let max_distance t = List.fold_left (fun acc e -> max acc e.distance) 0 t.edge_list

(* Kahn's algorithm on the zero-distance subgraph; [Error] when cyclic. *)
let topo_of ~n ~edges =
  let indeg = Array.make n 0 in
  let succ0 = Array.make n [] in
  List.iter
    (fun e ->
      if e.distance = 0 then begin
        indeg.(e.dst) <- indeg.(e.dst) + 1;
        succ0.(e.src) <- e.dst :: succ0.(e.src)
      end)
    edges;
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr count;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      succ0.(v)
  done;
  if !count = n then Ok (List.rev !order) else Error "zero-distance dependence cycle"

let validate_spec ~name ~ops ~edges =
  let n = Array.length ops in
  let err fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "%s: %s" name s)) fmt in
  let check_edge e =
    if e.src < 0 || e.src >= n then err "edge source %d out of range" e.src
    else if e.dst < 0 || e.dst >= n then err "edge target %d out of range" e.dst
    else if e.distance < 0 then err "negative distance on edge %d->%d" e.src e.dst
    else if e.operand < 0 || e.operand >= Op.arity ops.(e.dst) then
      err "operand %d invalid for %s (node %d)" e.operand (Op.to_string ops.(e.dst))
        e.dst
    else Ok ()
  in
  let rec check_edges = function
    | [] -> Ok ()
    | e :: rest -> ( match check_edge e with Ok () -> check_edges rest | e -> e)
  in
  let check_operands () =
    let seen = Hashtbl.create 64 in
    let dup =
      List.find_opt
        (fun e ->
          let key = (e.dst, e.operand) in
          if Hashtbl.mem seen key then true
          else begin
            Hashtbl.add seen key ();
            false
          end)
        edges
    in
    match dup with
    | Some e -> err "duplicate operand %d at node %d" e.operand e.dst
    | None ->
        let missing = ref None in
        Array.iteri
          (fun i op ->
            for k = 0 to Op.arity op - 1 do
              if (not (Hashtbl.mem seen (i, k))) && !missing = None then
                missing := Some (i, k)
            done)
          ops;
        (match !missing with
        | Some (i, k) ->
            err "node %d (%s) missing operand %d" i (Op.to_string ops.(i)) k
        | None -> Ok ())
  in
  match check_edges edges with
  | Error _ as e -> e
  | Ok () -> (
      match check_operands () with
      | Error _ as e -> e
      | Ok () -> (
          match topo_of ~n ~edges with
          | Error msg -> err "%s" msg
          | Ok _ -> Ok ()))

let create ~name ~ops ~edges =
  let ops = Array.of_list ops in
  let edge_list =
    List.map (fun (src, dst, operand, distance) -> { src; dst; operand; distance }) edges
  in
  (match validate_spec ~name ~ops ~edges:edge_list with
  | Error msg -> invalid_arg ("Graph.create: " ^ msg)
  | Ok () -> ());
  let n = Array.length ops in
  let node_arr = Array.init n (fun id -> { id; op = ops.(id) }) in
  let pred_arr = Array.make n [] in
  let succ_arr = Array.make n [] in
  List.iter
    (fun e ->
      pred_arr.(e.dst) <- e :: pred_arr.(e.dst);
      succ_arr.(e.src) <- e :: succ_arr.(e.src))
    edge_list;
  Array.iteri
    (fun i l -> pred_arr.(i) <- List.sort (fun a b -> compare a.operand b.operand) l)
    pred_arr;
  let topo =
    match topo_of ~n ~edges:edge_list with Ok o -> o | Error _ -> assert false
  in
  { name; node_arr; edge_list; pred_arr; succ_arr; topo }

let topo_order t = t.topo

let equal_structure a b =
  Array.length a.node_arr = Array.length b.node_arr
  && Array.for_all2 (fun x y -> Op.equal x.op y.op) a.node_arr b.node_arr
  && List.sort compare a.edge_list = List.sort compare b.edge_list

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d ops, %d edges, %d mem" t.name (n_nodes t) (n_edges t)
    (mem_node_count t)
