let run_history g mem ~iterations =
  if iterations < 0 then invalid_arg "Interp.run: negative iteration count";
  let n = Graph.n_nodes g in
  let order = Graph.topo_order g in
  let values = Array.init iterations (fun _ -> Array.make n 0) in
  let value ~iter v = if iter < 0 then 0 else values.(iter).(v) in
  let load = Memory.load mem in
  let store = Memory.store mem in
  for iter = 0 to iterations - 1 do
    List.iter
      (fun v ->
        let args =
          List.map
            (fun (e : Graph.edge) -> value ~iter:(iter - e.distance) e.src)
            (Graph.preds g v)
        in
        values.(iter).(v) <- Op.eval (Graph.node g v).op ~iter ~load ~store args)
      order
  done;
  values

let run g mem ~iterations = ignore (run_history g mem ~iterations)
