(** Graphviz export of data-flow graphs, for debugging and documentation
    (the DFGs of Fig. 2/3 render directly from this). *)

val to_dot : Graph.t -> string
(** DOT source; loop-carried edges are dashed and labelled with their
    distance. *)
