type t = { src : int; dst : int; distance : int }

type access =
  | Affine of { array : string; offset : int; stride : int; store : bool }
  | Dynamic of { array : string; store : bool }

let access_of (op : Op.t) =
  match op with
  | Op.Load { array; offset; stride } -> Some (Affine { array; offset; stride; store = false })
  | Op.Store { array; offset; stride } -> Some (Affine { array; offset; stride; store = true })
  | Op.Load_idx { array } -> Some (Dynamic { array; store = false })
  | Op.Store_idx { array } -> Some (Dynamic { array; store = true })
  | Op.Const _ | Op.Iter | Op.Add | Op.Sub | Op.Mul | Op.Shl | Op.Shr | Op.And
  | Op.Or | Op.Xor | Op.Min | Op.Max | Op.Abs | Op.Neg | Op.Cmp _ | Op.Select
  | Op.Clamp8 | Op.Route ->
      None

let array_of = function Affine a -> a.array | Dynamic d -> d.array

let is_store = function Affine a -> a.store | Dynamic d -> d.store

(* Constraints for one conflicting pair, given the topological positions
   used by the reference interpreter.  [pos a < pos b] means [a] executes
   first within an iteration. *)
let always_conflict ~a ~b ~pos =
  (* Conflicts at every iteration distance; it suffices to order the
     same-iteration pair both ways:
     - same iteration: earlier-in-topo first (distance 0), and
     - consecutive iterations: the later one must finish before the
       earlier node's next instance (distance 1 the other way).
     Larger distances follow because the schedule repeats every II. *)
  let first, second = if pos a < pos b then (a, b) else (b, a) in
  [ { src = first; dst = second; distance = 0 };
    { src = second; dst = first; distance = 1 } ]

let affine_pair ~a ~b ~(pa : int * int) ~(pb : int * int) ~pos =
  let oa, sa = pa and ob, sb = pb in
  if sa = sb && sa <> 0 then begin
    (* a's instance i and b's instance j touch the same address when
       sa*i + oa = sb*j + ob, i.e. j - i = (oa - ob) / sa. *)
    if (oa - ob) mod sa <> 0 then []
    else
      let k = (oa - ob) / sa in
      if k > 0 then [ { src = a; dst = b; distance = k } ]
      else if k < 0 then [ { src = b; dst = a; distance = -k } ]
      else
        let first, second = if pos a < pos b then (a, b) else (b, a) in
        [ { src = first; dst = second; distance = 0 } ]
  end
  else if sa = 0 && sb = 0 then
    if oa = ob then always_conflict ~a ~b ~pos else []
  else
    (* Mixed or zero/non-zero strides: conflicts at irregular distances;
       be conservative. *)
    always_conflict ~a ~b ~pos

let ordering g =
  let pos = Array.make (Graph.n_nodes g) 0 in
  List.iteri (fun i v -> pos.(v) <- i) (Graph.topo_order g);
  let pos v = pos.(v) in
  let accesses =
    List.filter_map
      (fun (n : Graph.node) -> Option.map (fun a -> (n.id, a)) (access_of n.op))
      (Graph.nodes g)
  in
  let rec pairs = function
    | [] -> []
    | (a, acc_a) :: rest ->
        List.concat_map
          (fun (b, acc_b) ->
            if array_of acc_a <> array_of acc_b then []
            else if (not (is_store acc_a)) && not (is_store acc_b) then []
            else
              match (acc_a, acc_b) with
              | Affine x, Affine y ->
                  affine_pair ~a ~b ~pa:(x.offset, x.stride) ~pb:(y.offset, y.stride)
                    ~pos
              | Dynamic _, (Affine _ | Dynamic _) | Affine _, Dynamic _ ->
                  always_conflict ~a ~b ~pos)
          rest
        @ pairs rest
  in
  pairs accesses

let as_edge_triples l = List.map (fun { src; dst; distance } -> (src, dst, distance)) l
