(** Loop-kernel data-flow graphs.

    Vertices are micro-operations; edges are data dependencies annotated
    with an operand position and an iteration {e distance}: an edge with
    distance [d] feeds the value produced [d] iterations earlier
    (loop-carried when [d > 0], as in the recurrences of Fig. 3).

    A graph is valid when every node receives exactly one incoming edge
    per operand slot and the zero-distance subgraph is acyclic (every
    dependence cycle must cross an iteration boundary). *)

type node = { id : int; op : Op.t }

type edge = {
  src : int;
  dst : int;
  operand : int;  (** input position at [dst], in [0, arity) *)
  distance : int;  (** iteration distance; 0 = same iteration *)
}

type t

val create : name:string -> ops:Op.t list -> edges:(int * int * int * int) list -> t
(** [create ~name ~ops ~edges] builds a graph whose node [i] runs
    [List.nth ops i]; each edge is [(src, dst, operand, distance)].
    Raises [Invalid_argument] when validation fails (see {!validate}). *)

val name : t -> string

val n_nodes : t -> int

val node : t -> int -> node

val nodes : t -> node list

val edges : t -> edge list

val n_edges : t -> int

val preds : t -> int -> edge list
(** Incoming edges of a node, sorted by operand position. *)

val succs : t -> int -> edge list

val mem_node_count : t -> int
(** Number of loads and stores. *)

val max_distance : t -> int

val topo_order : t -> int list
(** Topological order of the zero-distance subgraph. *)

val validate_spec :
  name:string -> ops:Op.t array -> edges:edge list -> (unit, string) result
(** The validation behind {!create}, usable to test rejection cases. *)

val equal_structure : t -> t -> bool
(** Same ops and edge set (names may differ). *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [name: n ops, m edges, k mem] summary. *)
