lib/sim/exec.mli: Cgra_dfg Cgra_mapper
