lib/sim/coexec.ml: Array Cgra Cgra_arch Cgra_dfg Cgra_mapper Check Coord Graph Grid Hashtbl List Mapping Op Option Printf
