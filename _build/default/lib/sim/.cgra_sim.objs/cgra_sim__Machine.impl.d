lib/sim/machine.ml: Array Cgra_arch Cgra_dfg Coord Grid Hashtbl Printf
