lib/sim/check.mli: Cgra_dfg Cgra_mapper
