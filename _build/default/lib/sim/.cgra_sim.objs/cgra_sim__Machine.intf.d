lib/sim/machine.mli: Cgra_arch Cgra_dfg
