lib/sim/check.ml: Array Cgra_dfg Cgra_mapper Exec Interp List Memory Printf
