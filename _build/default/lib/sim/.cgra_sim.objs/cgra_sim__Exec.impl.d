lib/sim/exec.ml: Array Cgra Cgra_arch Cgra_dfg Cgra_mapper Graph Grid Hashtbl List Machine Mapping Memory Op
