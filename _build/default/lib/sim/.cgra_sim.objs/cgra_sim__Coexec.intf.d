lib/sim/coexec.mli: Cgra_dfg Cgra_mapper
