open Cgra_arch

type tag =
  | Value of int * int
  | Relay of (int * int * int) * int * int

type t = {
  grid : Grid.t;
  rf : (int * tag, int * int) Hashtbl.t;  (* (pe index, tag) -> value, cycle *)
  mem : Cgra_dfg.Memory.t;
  mem_touch : (string * int, int * bool) Hashtbl.t;
      (* (array, wrapped index) -> last access cycle, was-write *)
}

let create grid mem = { grid; rf = Hashtbl.create 256; mem; mem_touch = Hashtbl.create 64 }

let pp_tag = function
  | Value (v, i) -> Printf.sprintf "node %d iter %d" v i
  | Relay ((s, d, _), k, i) -> Printf.sprintf "relay %d->%d/%d iter %d" s d k i

let write t ~pe ~tag ~cycle v =
  Hashtbl.replace t.rf (Grid.index t.grid pe, tag) (v, cycle)

let read t ~reader ~holder ~tag ~cycle =
  if not (Coord.equal reader holder || Coord.adjacent reader holder) then
    Error
      (Printf.sprintf "cycle %d: %s out of reach of %s for %s" cycle
         (Coord.to_string holder) (Coord.to_string reader) (pp_tag tag))
  else
    match Hashtbl.find_opt t.rf (Grid.index t.grid holder, tag) with
    | None ->
        Error
          (Printf.sprintf "cycle %d: %s absent from RF of %s" cycle (pp_tag tag)
             (Coord.to_string holder))
    | Some (_, written) when written >= cycle ->
        Error
          (Printf.sprintf "cycle %d: %s not yet written (write at %d)" cycle
             (pp_tag tag) written)
    | Some (v, _) -> Ok v

let wrap t array i =
  let arr = Cgra_dfg.Memory.get t.mem array in
  let len = Array.length arr in
  let m = i mod len in
  if m < 0 then m + len else m

let load t ~cycle array i =
  let key = (array, wrap t array i) in
  match Hashtbl.find_opt t.mem_touch key with
  | Some (c, true) when c = cycle ->
      Error
        (Printf.sprintf "cycle %d: load of %s[%d] races a same-cycle store" cycle array
           (snd key))
  | Some _ | None ->
      Hashtbl.replace t.mem_touch key (cycle, false);
      Ok (Cgra_dfg.Memory.load t.mem array i)

let store t ~cycle array i v =
  let key = (array, wrap t array i) in
  match Hashtbl.find_opt t.mem_touch key with
  | Some (c, _) when c = cycle ->
      Error
        (Printf.sprintf "cycle %d: store to %s[%d] races a same-cycle access" cycle
           array (snd key))
  | Some _ | None ->
      Hashtbl.replace t.mem_touch key (cycle, true);
      Cgra_dfg.Memory.store t.mem array i v;
      Ok ()

let memory t = t.mem
