(** Dynamic machine state for the cycle-accurate simulator: per-PE
    register files holding tagged values, and a memory front-end that
    detects same-cycle read/write races.

    The simulator is execution-driven: values live in the register file of
    the PE that produced (or relayed) them, and a read succeeds only if the
    value is present, was written in an earlier cycle, and the reader is
    the holder itself or one of its mesh neighbours — the physical
    realizability that [Mapping.validate] promises statically is thus
    re-checked dynamically. *)

type tag =
  | Value of int * int  (** node id, iteration *)
  | Relay of (int * int * int) * int * int
      (** edge (src node, dst node, operand), hop index, iteration *)

type t

val create : Cgra_arch.Grid.t -> Cgra_dfg.Memory.t -> t

val write : t -> pe:Cgra_arch.Coord.t -> tag:tag -> cycle:int -> int -> unit
(** Deposit a value in [pe]'s register file. *)

val read :
  t -> reader:Cgra_arch.Coord.t -> holder:Cgra_arch.Coord.t -> tag:tag -> cycle:int ->
  (int, string) result
(** Fetch a value from [holder]'s register file on behalf of an operation
    executing on [reader] at [cycle].  Errors describe the physical
    violation (value absent, written this very cycle, or out of reach). *)

val load : t -> cycle:int -> string -> int -> (int, string) result
(** Memory load; errors on a same-cycle write to the same cell. *)

val store : t -> cycle:int -> string -> int -> int -> (unit, string) result
(** Memory store; errors on a same-cycle access conflict. *)

val memory : t -> Cgra_dfg.Memory.t
