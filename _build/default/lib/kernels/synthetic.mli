(** Random kernel generation for property-based testing and workload
    variety.

    Generated graphs are always valid (constructed in topological layers,
    loop-carried edges only through {!Cgra_dfg.Builder.defer} cycles of
    bounded latency) and always executable against {!init_memory}-style
    environments. *)

type config = {
  n_ops : int;  (** target operation count, >= 3 *)
  mem_fraction : float;  (** share of loads/stores, in [0, 0.6] *)
  recurrence : bool;  (** include one distance-1 recurrence cycle *)
}

val default : config

val generate : seed:int -> config -> Cgra_dfg.Graph.t
(** Deterministic in the seed.  The graph ends with at least one store, so
    execution is observable. *)

val memory_for : seed:int -> ?size:int -> Cgra_dfg.Graph.t -> Cgra_dfg.Memory.t
(** A memory environment covering every array the graph addresses. *)
