open Cgra_dfg

type config = {
  n_ops : int;
  mem_fraction : float;
  recurrence : bool;
}

let default = { n_ops = 12; mem_fraction = 0.3; recurrence = false }

let binary_ops = [| Op.Add; Op.Sub; Op.Mul; Op.Min; Op.Max; Op.And; Op.Or; Op.Xor |]

let unary_ops = [| Op.Abs; Op.Neg; Op.Clamp8 |]

let generate ~seed cfg =
  if cfg.n_ops < 3 then invalid_arg "Synthetic.generate: n_ops >= 3";
  if cfg.mem_fraction < 0.0 || cfg.mem_fraction > 0.6 then
    invalid_arg "Synthetic.generate: mem_fraction in [0, 0.6]";
  let rng = Cgra_util.Rng.create ~seed in
  let b = Builder.create ~name:(Printf.sprintf "synthetic-%d" seed) in
  let pool = ref [] in
  let fresh_value () =
    match !pool with
    | [] -> Builder.load b "in0" ~offset:0 ~stride:1
    | vs -> Cgra_util.Rng.choose rng (Array.of_list vs)
  in
  let n_mem = max 1 (int_of_float (cfg.mem_fraction *. float_of_int cfg.n_ops)) in
  let n_loads = max 1 (n_mem - 1) in
  (* input layer: loads from a couple of arrays *)
  for i = 0 to n_loads - 1 do
    let array = Printf.sprintf "in%d" (i mod 3) in
    let v = Builder.load b array ~offset:(Cgra_util.Rng.int rng 8) ~stride:1 in
    pool := v :: !pool
  done;
  (* one optional recurrence cycle of latency 2 *)
  if cfg.recurrence then begin
    let acc = Builder.defer b Op.Add in
    let damped = Builder.op2 b Op.Shr acc (Builder.const b 1) in
    Builder.connect b ~src:damped ~dst:acc ~operand:0 ~distance:1;
    Builder.connect b ~src:(fresh_value ()) ~dst:acc ~operand:1 ~distance:0;
    pool := damped :: !pool
  end;
  (* arithmetic layers *)
  let arith_budget = max 1 (cfg.n_ops - n_loads - 1 - if cfg.recurrence then 2 else 0) in
  for _ = 1 to arith_budget do
    let v =
      if Cgra_util.Rng.float rng 1.0 < 0.25 then
        Builder.op1 b (Cgra_util.Rng.choose rng unary_ops) (fresh_value ())
      else
        let x = fresh_value () and y = fresh_value () in
        if Cgra_util.Rng.bool rng && Cgra_util.Rng.float rng 1.0 < 0.2 then
          (* occasional loop-carried (acyclic) edge *)
          Builder.add b
            (Cgra_util.Rng.choose rng binary_ops)
            [ (x, 0); (y, 1) ]
        else Builder.op2 b (Cgra_util.Rng.choose rng binary_ops) x y
    in
    pool := v :: !pool
  done;
  (* observable output *)
  let _ = Builder.store b "out" ~offset:0 ~stride:1 (fresh_value ()) in
  Builder.finish b

let memory_for ~seed ?(size = 48) g =
  let rng = Cgra_util.Rng.create ~seed in
  let module S = Set.Make (String) in
  let arrays =
    List.fold_left
      (fun acc (n : Graph.node) ->
        match Op.array_of n.op with Some a -> S.add a acc | None -> acc)
      S.empty (Graph.nodes g)
  in
  Memory.create
    (List.map
       (fun name -> (name, Array.init size (fun _ -> Cgra_util.Rng.int rng 256)))
       (S.elements arrays))
