lib/kernels/synthetic.mli: Cgra_dfg
