lib/kernels/kernels.mli: Cgra_dfg
