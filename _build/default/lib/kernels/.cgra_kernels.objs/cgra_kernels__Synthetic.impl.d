lib/kernels/synthetic.ml: Array Builder Cgra_dfg Cgra_util Graph List Memory Op Printf Set String
