lib/kernels/kernels.ml: Array Builder Cgra_dfg Cgra_util Graph List Memory Op Set String
