(** The benchmark suite of Section VII: inner-loop kernels from video
    decoding (mpeg, yuv2rgb), highly parallel codes (sor, compress), and
    filters (gsr, laplace, lowpass, swim, sobel, wavelet, histeq).

    The paper does not list its DFGs, so each kernel is reconstructed from
    the textbook form of its algorithm with realistic operation counts
    (9–30 micro-ops) and genuine loop-carried recurrences where the
    algorithm has them (sor, gsr, compress, swim, wavelet) — see
    DESIGN.md.  All kernels are executable: {!init_memory} builds the
    arrays they address, and [Cgra_dfg.Interp] runs them. *)

type t = {
  name : string;
  description : string;
  graph : Cgra_dfg.Graph.t;
  recurrent : bool;  (** has a loop-carried dependence cycle *)
}

val all : t list
(** The 11 kernels, in the order the figures list them. *)

val names : string list

val find : string -> t option

val find_exn : string -> t

val init_memory : ?seed:int -> ?size:int -> t -> Cgra_dfg.Memory.t
(** A memory environment containing every array the kernel addresses,
    filled with deterministic pseudo-random pixel-range data
    (default [size] 64 elements per array). *)
