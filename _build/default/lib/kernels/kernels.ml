open Cgra_dfg

type t = {
  name : string;
  description : string;
  graph : Graph.t;
  recurrent : bool;
}

(* --- video decoding ------------------------------------------------- *)

(* Motion-compensated prediction with saturation, after the MPEG2 kernel of
   Fig. 2: two reference loads are averaged, a residual is added, and the
   result is clamped to pixel range and stored. *)
let mpeg () =
  let b = Builder.create ~name:"mpeg" in
  let ref0 = Builder.load b "ref0" ~offset:0 ~stride:1 in
  let ref1 = Builder.load b "ref1" ~offset:0 ~stride:1 in
  let sum = Builder.op2 b Op.Add ref0 ref1 in
  let one = Builder.const b 1 in
  let rounded = Builder.op2 b Op.Add sum one in
  let avg = Builder.op2 b Op.Shr rounded one in
  let resid = Builder.load b "resid" ~offset:0 ~stride:1 in
  let raw = Builder.op2 b Op.Add avg resid in
  let pix = Builder.op1 b Op.Clamp8 raw in
  let _ = Builder.store b "out" ~offset:0 ~stride:1 pix in
  Builder.finish b

(* Fixed-point YCbCr to RGB conversion: three loads, per-channel multiply/
   shift chains, three clamped stores. *)
let yuv2rgb () =
  let b = Builder.create ~name:"yuv2rgb" in
  let y = Builder.load b "y" ~offset:0 ~stride:1 in
  let u = Builder.load b "u" ~offset:0 ~stride:1 in
  let v = Builder.load b "v" ~offset:0 ~stride:1 in
  let c128 = Builder.const b 128 in
  let ud = Builder.op2 b Op.Sub u c128 in
  let vd = Builder.op2 b Op.Sub v c128 in
  let sh = Builder.const b 8 in
  let term k x =
    let c = Builder.const b k in
    let m = Builder.op2 b Op.Mul c x in
    Builder.op2 b Op.Shr m sh
  in
  let r = Builder.op1 b Op.Clamp8 (Builder.op2 b Op.Add y (term 359 vd)) in
  let gsub = Builder.op2 b Op.Add (term 88 ud) (term 183 vd) in
  let g = Builder.op1 b Op.Clamp8 (Builder.op2 b Op.Sub y gsub) in
  let bl = Builder.op1 b Op.Clamp8 (Builder.op2 b Op.Add y (term 454 ud)) in
  let _ = Builder.store b "r" ~offset:0 ~stride:1 r in
  let _ = Builder.store b "g" ~offset:0 ~stride:1 g in
  let _ = Builder.store b "b" ~offset:0 ~stride:1 bl in
  Builder.finish b

(* --- highly parallel ------------------------------------------------- *)

(* 1-D successive over-relaxation sweep.  The smoothed value of cell i
   depends on the freshly computed value of cell i-1, giving a genuine
   loop-carried recurrence cycle (latency 3, distance 1, so RecMII = 3) —
   the RecMII-limited pattern of Fig. 3. *)
let sor () =
  let b = Builder.create ~name:"sor" in
  let right = Builder.load b "grid" ~offset:1 ~stride:1 in
  let here = Builder.load b "grid" ~offset:0 ~stride:1 in
  let two = Builder.const b 2 in
  let scaled = Builder.op2 b Op.Mul here two in
  (* cycle: partial(i) = relaxed(i-1) + right; sum = partial + 2*here;
     relaxed = sum >> 2 *)
  let partial = Builder.defer b Op.Add in
  let sum = Builder.op2 b Op.Add partial scaled in
  let relaxed = Builder.op2 b Op.Shr sum two in
  Builder.connect b ~src:relaxed ~dst:partial ~operand:0 ~distance:1;
  Builder.connect b ~src:right ~dst:partial ~operand:1 ~distance:0;
  let _ = Builder.store b "grid" ~offset:0 ~stride:1 relaxed in
  Builder.finish b

(* Delta/quantize compressor: each sample is predicted from the previous
   reconstructed sample, so reconstruction feeds back into the residual —
   a 4-op recurrence cycle (RecMII = 4). *)
let compress () =
  let b = Builder.create ~name:"compress" in
  let x = Builder.load b "samples" ~offset:0 ~stride:1 in
  let three = Builder.const b 3 in
  (* cycle: resid(i) = x - recon(i-1); q = resid >> 3; dq = q << 3;
     recon = dq + recon(i-1)... recon = dq + pred keeps latency 4 *)
  let resid = Builder.defer b Op.Sub in
  let q = Builder.op2 b Op.Shr resid three in
  let dq = Builder.op2 b Op.Shl q three in
  let recon = Builder.defer b Op.Add in
  Builder.connect b ~src:x ~dst:resid ~operand:0 ~distance:0;
  Builder.connect b ~src:recon ~dst:resid ~operand:1 ~distance:1;
  Builder.connect b ~src:dq ~dst:recon ~operand:0 ~distance:0;
  Builder.connect b ~src:recon ~dst:recon ~operand:1 ~distance:1;
  let code = Builder.op1 b Op.Clamp8 (Builder.op2 b Op.Add q (Builder.const b 128)) in
  let _ = Builder.store b "codes" ~offset:0 ~stride:1 code in
  let _ = Builder.store b "recon" ~offset:0 ~stride:1 recon in
  Builder.finish b

(* --- filters ---------------------------------------------------------- *)

(* Gauss-Seidel relaxation step: in-place smoothing where the west
   neighbour is the value produced one iteration ago. *)
let gsr () =
  let b = Builder.create ~name:"gsr" in
  let east = Builder.load b "field" ~offset:1 ~stride:1 in
  let north = Builder.load b "field" ~offset:(-8) ~stride:1 in
  let south = Builder.load b "field" ~offset:8 ~stride:1 in
  let ns = Builder.op2 b Op.Add north south in
  let esum = Builder.op2 b Op.Add east ns in
  (* cycle: acc(i) = relaxed(i-1) + esum; relaxed = acc >> 2  (RecMII 2) *)
  let acc = Builder.defer b Op.Add in
  let quarter = Builder.const b 2 in
  let relaxed = Builder.op2 b Op.Shr acc quarter in
  Builder.connect b ~src:relaxed ~dst:acc ~operand:0 ~distance:1;
  Builder.connect b ~src:esum ~dst:acc ~operand:1 ~distance:0;
  let _ = Builder.store b "field" ~offset:0 ~stride:1 relaxed in
  Builder.finish b

(* 5-point Laplacian edge detector. *)
let laplace () =
  let b = Builder.create ~name:"laplace" in
  let w = 8 in
  let centre = Builder.load b "img" ~offset:0 ~stride:1 in
  let north = Builder.load b "img" ~offset:(-w) ~stride:1 in
  let south = Builder.load b "img" ~offset:w ~stride:1 in
  let east = Builder.load b "img" ~offset:1 ~stride:1 in
  let west = Builder.load b "img" ~offset:(-1) ~stride:1 in
  let four = Builder.const b 4 in
  let ns = Builder.op2 b Op.Add north south in
  let ew = Builder.op2 b Op.Add east west in
  let ring = Builder.op2 b Op.Add ns ew in
  let c4 = Builder.op2 b Op.Mul centre four in
  let lap = Builder.op2 b Op.Sub ring c4 in
  let mag = Builder.op1 b Op.Abs lap in
  let pix = Builder.op1 b Op.Clamp8 mag in
  let _ = Builder.store b "edges" ~offset:0 ~stride:1 pix in
  Builder.finish b

(* 5-tap FIR low-pass filter with symmetric integer coefficients. *)
let lowpass () =
  let b = Builder.create ~name:"lowpass" in
  let tap k coeff =
    let x = Builder.load b "signal" ~offset:k ~stride:1 in
    let c = Builder.const b coeff in
    Builder.op2 b Op.Mul x c
  in
  let t0 = tap (-2) 1 in
  let t1 = tap (-1) 4 in
  let t2 = tap 0 6 in
  let t3 = tap 1 4 in
  let t4 = tap 2 1 in
  let s01 = Builder.op2 b Op.Add t0 t1 in
  let s34 = Builder.op2 b Op.Add t3 t4 in
  let s = Builder.op2 b Op.Add (Builder.op2 b Op.Add s01 t2) s34 in
  let sh = Builder.const b 4 in
  let y = Builder.op2 b Op.Shr s sh in
  let _ = Builder.store b "filtered" ~offset:0 ~stride:1 y in
  Builder.finish b

(* Shallow-water (swim) style update: velocity fields u and v are advanced
   from pressure differences; the pressure update accumulates across
   iterations. *)
let swim () =
  let b = Builder.create ~name:"swim" in
  let u = Builder.load b "u" ~offset:0 ~stride:1 in
  let v = Builder.load b "v" ~offset:0 ~stride:1 in
  let p0 = Builder.load b "p" ~offset:0 ~stride:1 in
  let p1 = Builder.load b "p" ~offset:1 ~stride:1 in
  let p8 = Builder.load b "p" ~offset:8 ~stride:1 in
  let dpx = Builder.op2 b Op.Sub p1 p0 in
  let dpy = Builder.op2 b Op.Sub p8 p0 in
  let g = Builder.const b 3 in
  let du = Builder.op2 b Op.Shr (Builder.op2 b Op.Mul dpx g) g in
  let dv = Builder.op2 b Op.Shr (Builder.op2 b Op.Mul dpy g) g in
  let u' = Builder.op2 b Op.Sub u du in
  let v' = Builder.op2 b Op.Sub v dv in
  let divergence = Builder.op2 b Op.Add u' v' in
  (* pressure integrates its own previous value minus the divergence:
     cycle p'(i) = damp(p'(i-1)) - divergence  (RecMII 2) *)
  let p' = Builder.defer b Op.Sub in
  let damped = Builder.op2 b Op.Shr p' (Builder.const b 0) in
  Builder.connect b ~src:damped ~dst:p' ~operand:0 ~distance:1;
  Builder.connect b ~src:divergence ~dst:p' ~operand:1 ~distance:0;
  let _ = Builder.store b "u" ~offset:0 ~stride:1 u' in
  let _ = Builder.store b "v" ~offset:0 ~stride:1 v' in
  let _ = Builder.store b "p" ~offset:0 ~stride:1 p' in
  Builder.finish b

(* Sobel gradient magnitude over a 3x3 window. *)
let sobel () =
  let b = Builder.create ~name:"sobel" in
  let w = 8 in
  let px r c = Builder.load b "img" ~offset:((r * w) + c) ~stride:1 in
  let nw = px (-1) (-1) and n = px (-1) 0 and ne = px (-1) 1 in
  let wp = px 0 (-1) and ep = px 0 1 in
  let sw = px 1 (-1) and s = px 1 0 and se = px 1 1 in
  let one = Builder.const b 1 in
  let dbl x = Builder.op2 b Op.Shl x one in
  (* gx = (ne + 2e + se) - (nw + 2w + sw) *)
  let east_sum = Builder.op2 b Op.Add (Builder.op2 b Op.Add ne (dbl ep)) se in
  let west_sum = Builder.op2 b Op.Add (Builder.op2 b Op.Add nw (dbl wp)) sw in
  let gx = Builder.op2 b Op.Sub east_sum west_sum in
  (* gy = (sw + 2s + se) - (nw + 2n + ne) *)
  let south_sum = Builder.op2 b Op.Add (Builder.op2 b Op.Add sw (dbl s)) se in
  let north_sum = Builder.op2 b Op.Add (Builder.op2 b Op.Add nw (dbl n)) ne in
  let gy = Builder.op2 b Op.Sub south_sum north_sum in
  let mag = Builder.op2 b Op.Add (Builder.op1 b Op.Abs gx) (Builder.op1 b Op.Abs gy) in
  let pix = Builder.op1 b Op.Clamp8 mag in
  let _ = Builder.store b "grad" ~offset:0 ~stride:1 pix in
  Builder.finish b

(* 5/3 lifting wavelet step: the detail coefficient is predicted from even
   samples; the smooth coefficient uses the previous detail (distance-1
   recurrence through the update lifting step). *)
let wavelet () =
  let b = Builder.create ~name:"wavelet" in
  let even = Builder.load b "signal" ~offset:0 ~stride:2 in
  let next_even = Builder.load b "signal" ~offset:2 ~stride:2 in
  let odd = Builder.load b "signal" ~offset:1 ~stride:2 in
  let one = Builder.const b 1 in
  let two = Builder.const b 2 in
  let pred = Builder.op2 b Op.Shr (Builder.op2 b Op.Add even next_even) one in
  let detail = Builder.op2 b Op.Sub odd pred in
  (* update step uses this detail and the previous iteration's detail —
     a loop-carried edge but no cycle (5/3 lifting is feed-forward) *)
  let dsum = Builder.add b Op.Add [ Builder.carried detail 0; (detail, 1) ] in
  let rounded = Builder.op2 b Op.Add dsum two in
  let smooth = Builder.op2 b Op.Add even (Builder.op2 b Op.Shr rounded two) in
  let _ = Builder.store b "detail" ~offset:0 ~stride:1 detail in
  let _ = Builder.store b "smooth" ~offset:0 ~stride:1 smooth in
  Builder.finish b

(* Histogram-equalization application pass: per-pixel table lookup through
   a dynamically computed index, plus a running maximum. *)
let histeq () =
  let b = Builder.create ~name:"histeq" in
  let pix = Builder.load b "img" ~offset:0 ~stride:1 in
  let idx = Builder.op2 b Op.And pix (Builder.const b 255) in
  let mapped = Builder.op1 b (Op.Load_idx { array = "lut" }) idx in
  (* running peak: self-recurrence max(mapped, running(i-1)) *)
  let running = Builder.defer b Op.Max in
  Builder.connect b ~src:mapped ~dst:running ~operand:0 ~distance:0;
  Builder.connect b ~src:running ~dst:running ~operand:1 ~distance:1;
  (* 50/50 blend of equalized and original pixel, a common display mode *)
  let one = Builder.const b 1 in
  let blend_sum = Builder.op2 b Op.Add (Builder.op2 b Op.Add mapped pix) one in
  let blend = Builder.op2 b Op.Shr blend_sum one in
  let _ = Builder.store b "out" ~offset:0 ~stride:1 mapped in
  let _ = Builder.store b "blend" ~offset:0 ~stride:1 blend in
  let _ = Builder.store b "peak" ~offset:0 ~stride:0 running in
  Builder.finish b

let make name description recurrent graph = { name; description; graph; recurrent }

let all =
  [
    make "mpeg" "MPEG2 motion compensation with saturation (Fig. 2)" false (mpeg ());
    make "yuv2rgb" "fixed-point YCbCr to RGB conversion" false (yuv2rgb ());
    make "sor" "successive over-relaxation sweep (recurrence-limited)" true (sor ());
    make "compress" "delta/quantize compressor with reconstruction feedback" true
      (compress ());
    make "gsr" "Gauss-Seidel relaxation filter" true (gsr ());
    make "laplace" "5-point Laplacian edge detector" false (laplace ());
    make "lowpass" "5-tap symmetric FIR low-pass filter" false (lowpass ());
    make "swim" "shallow-water velocity/pressure update" true (swim ());
    make "sobel" "3x3 Sobel gradient magnitude" false (sobel ());
    make "wavelet" "5/3 lifting wavelet step (loop-carried but acyclic)" false
      (wavelet ());
    make "histeq" "histogram-equalization lookup with running peak" true (histeq ());
  ]

let names = List.map (fun k -> k.name) all

let find name = List.find_opt (fun k -> k.name = name) all

let find_exn name =
  match find name with
  | Some k -> k
  | None -> invalid_arg ("Kernels.find_exn: unknown kernel " ^ name)

let arrays_of graph =
  let module S = Set.Make (String) in
  let set =
    List.fold_left
      (fun acc (n : Graph.node) ->
        match Op.array_of n.op with Some a -> S.add a acc | None -> acc)
      S.empty (Graph.nodes graph)
  in
  S.elements set

let init_memory ?(seed = 42) ?(size = 64) k =
  let rng = Cgra_util.Rng.create ~seed in
  let bindings =
    List.map
      (fun name -> (name, Array.init size (fun _ -> Cgra_util.Rng.int rng 256)))
      (arrays_of k.graph)
  in
  Memory.create bindings
