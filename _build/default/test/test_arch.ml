open Cgra_arch

let coord = Alcotest.testable Coord.pp Coord.equal

let c r k = Coord.make ~row:r ~col:k

(* ---------- Coord ---------- *)

let test_coord_step () =
  Alcotest.check coord "north" (c 0 1) (Coord.step (c 1 1) Coord.North);
  Alcotest.check coord "south" (c 2 1) (Coord.step (c 1 1) Coord.South);
  Alcotest.check coord "east" (c 1 2) (Coord.step (c 1 1) Coord.East);
  Alcotest.check coord "west" (c 1 0) (Coord.step (c 1 1) Coord.West)

let test_coord_opposite () =
  List.iter
    (fun d ->
      Alcotest.(check bool) "double opposite" true
        (Coord.opposite (Coord.opposite d) = d))
    Coord.all_dirs

let test_coord_adjacent () =
  Alcotest.(check bool) "side" true (Coord.adjacent (c 0 0) (c 0 1));
  Alcotest.(check bool) "diagonal" false (Coord.adjacent (c 0 0) (c 1 1));
  Alcotest.(check bool) "self" false (Coord.adjacent (c 0 0) (c 0 0))

let test_coord_manhattan () =
  Alcotest.(check int) "distance" 5 (Coord.manhattan (c 0 0) (c 2 3))

(* ---------- Orient ---------- *)

let test_orient_identity () =
  Alcotest.check coord "id" (c 1 0)
    (Orient.apply Orient.identity ~tile_rows:2 ~tile_cols:2 (c 1 0))

let test_orient_flips () =
  Alcotest.check coord "flip rows" (c 0 1)
    (Orient.apply Orient.flip_rows ~tile_rows:2 ~tile_cols:2 (c 1 1));
  Alcotest.check coord "flip cols on 1x4" (c 0 3)
    (Orient.apply Orient.flip_cols ~tile_rows:1 ~tile_cols:4 (c 0 0))

let test_orient_involution () =
  List.iter
    (fun o ->
      List.iter
        (fun p ->
          let once = Orient.apply o ~tile_rows:2 ~tile_cols:2 p in
          if not (Orient.swaps_axes o) then
            Alcotest.check coord "flip twice = identity" p
              (Orient.apply o ~tile_rows:2 ~tile_cols:2 once))
        [ c 0 0; c 0 1; c 1 0; c 1 1 ])
    (Orient.all ~square:true)

let test_orient_all_counts () =
  Alcotest.(check int) "non-square" 4 (List.length (Orient.all ~square:false));
  Alcotest.(check int) "square" 8 (List.length (Orient.all ~square:true))

let test_orient_swap_rejected () =
  let swap = List.find Orient.swaps_axes (Orient.all ~square:true) in
  Alcotest.check_raises "non-square swap"
    (Invalid_argument "Orient.apply: axis swap on non-square tile") (fun () ->
      ignore (Orient.apply swap ~tile_rows:1 ~tile_cols:2 (c 0 0)))

let test_orient_bijective () =
  (* every symmetry permutes the tile *)
  let tile = [ c 0 0; c 0 1; c 1 0; c 1 1 ] in
  List.iter
    (fun o ->
      let img = List.map (Orient.apply o ~tile_rows:2 ~tile_cols:2) tile in
      Alcotest.(check int) "bijective" 4
        (List.length (List.sort_uniq Coord.compare img)))
    (Orient.all ~square:true)

let test_orient_preserves_adjacency () =
  List.iter
    (fun o ->
      List.iter
        (fun (a, b) ->
          let a' = Orient.apply o ~tile_rows:2 ~tile_cols:2 a in
          let b' = Orient.apply o ~tile_rows:2 ~tile_cols:2 b in
          Alcotest.(check bool) "isometry" (Coord.adjacent a b) (Coord.adjacent a' b'))
        [ (c 0 0, c 0 1); (c 0 0, c 1 1); (c 1 0, c 1 1) ])
    (Orient.all ~square:true)

let test_orient_compose () =
  let fr = Orient.flip_rows and fc = Orient.flip_cols in
  let both = Orient.compose fr fc in
  Alcotest.check coord "compose acts like sequence"
    (Orient.apply fr ~tile_rows:2 ~tile_cols:2
       (Orient.apply fc ~tile_rows:2 ~tile_cols:2 (c 0 1)))
    (Orient.apply both ~tile_rows:2 ~tile_cols:2 (c 0 1))

(* ---------- Grid ---------- *)

let test_grid_bounds () =
  let g = Grid.make ~rows:3 ~cols:4 in
  Alcotest.(check bool) "inside" true (Grid.in_bounds g (c 2 3));
  Alcotest.(check bool) "outside row" false (Grid.in_bounds g (c 3 0));
  Alcotest.(check bool) "negative" false (Grid.in_bounds g (c (-1) 0));
  Alcotest.(check int) "count" 12 (Grid.pe_count g)

let test_grid_invalid () =
  Alcotest.check_raises "zero rows"
    (Invalid_argument "Grid.make: dimensions must be positive") (fun () ->
      ignore (Grid.make ~rows:0 ~cols:2))

let test_grid_neighbors () =
  let g = Grid.square 3 in
  Alcotest.(check int) "corner" 2 (List.length (Grid.neighbors g (c 0 0)));
  Alcotest.(check int) "edge" 3 (List.length (Grid.neighbors g (c 0 1)));
  Alcotest.(check int) "centre" 4 (List.length (Grid.neighbors g (c 1 1)))

let test_grid_serpentine () =
  let g = Grid.make ~rows:3 ~cols:3 in
  let path = Grid.serpentine g in
  Alcotest.(check int) "covers all" 9 (Array.length path);
  for i = 0 to Array.length path - 2 do
    Alcotest.(check bool) "consecutive adjacent" true
      (Coord.adjacent path.(i) path.(i + 1))
  done;
  let uniq = Array.to_list path |> List.sort_uniq Coord.compare in
  Alcotest.(check int) "no repeats" 9 (List.length uniq)

let test_grid_serp_index () =
  let g = Grid.make ~rows:4 ~cols:4 in
  let path = Grid.serpentine g in
  Array.iteri
    (fun i pe -> Alcotest.(check int) "inverse" i (Grid.serp_index g pe))
    path

let test_grid_index () =
  let g = Grid.make ~rows:2 ~cols:3 in
  Alcotest.(check int) "row major" 5 (Grid.index g (c 1 2))

(* ---------- Page ---------- *)

let test_page_rect_counts () =
  let g = Grid.square 4 in
  let p = Page.rect g ~tile_rows:2 ~tile_cols:2 in
  Alcotest.(check int) "pages" 4 (Page.n_pages p);
  Alcotest.(check int) "size" 4 (Page.page_size p);
  Alcotest.(check int) "used" 16 (Page.used_pe_count p)

let test_page_rect_divisibility () =
  Alcotest.check_raises "bad tiling" (Invalid_argument "Page.make: tiles must divide the grid")
    (fun () -> ignore (Page.rect (Grid.square 6) ~tile_rows:2 ~tile_cols:4))

let test_page_roundtrip () =
  let p = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  for n = 0 to Page.n_pages p - 1 do
    List.iter
      (fun pe ->
        Alcotest.(check (option int)) "page_of_pe inverse" (Some n) (Page.page_of_pe p pe))
      (Page.pes_of_page p n)
  done

let test_page_serpentine_ring () =
  (* consecutive pages in ring order are physically adjacent *)
  List.iter
    (fun p ->
      for n = 0 to Page.n_pages p - 2 do
        Alcotest.(check bool)
          (Printf.sprintf "pages %d,%d share a boundary" n (n + 1))
          true
          (Page.boundary_pairs p n <> [])
      done)
    [
      Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2;
      Page.rect (Grid.square 4) ~tile_rows:1 ~tile_cols:2;
      Page.rect (Grid.square 8) ~tile_rows:2 ~tile_cols:4;
      Page.band (Grid.square 6) ~size:8;
    ]

let test_page_dir_between_4x4 () =
  let p = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  (* serpentine over a 2x2 tile grid: E, S, W *)
  Alcotest.(check bool) "0->1 east" true (Page.dir_between p 0 = Some Coord.East);
  Alcotest.(check bool) "1->2 south" true (Page.dir_between p 1 = Some Coord.South);
  Alcotest.(check bool) "2->3 west" true (Page.dir_between p 2 = Some Coord.West);
  Alcotest.(check bool) "3->4 none" true (Page.dir_between p 3 = None)

let test_page_band_remainder () =
  let p = Page.band (Grid.square 6) ~size:8 in
  Alcotest.(check int) "4 pages of 8 on 36 PEs" 4 (Page.n_pages p);
  Alcotest.(check int) "32 used" 32 (Page.used_pe_count p);
  (* the 4 remainder PEs map to no page *)
  let unassigned =
    List.filter (fun pe -> Page.page_of_pe p pe = None) (Grid.all_pes (Grid.square 6))
  in
  Alcotest.(check int) "remainder" 4 (List.length unassigned)

let test_page_band_path () =
  let p = Page.band (Grid.square 4) ~size:4 in
  (* PEs of a band page are consecutive on the serpentine *)
  List.iter
    (fun n ->
      let pes = Page.pes_of_page p n in
      List.iteri
        (fun i pe ->
          Alcotest.(check int) "serp position" ((n * 4) + i)
            (Grid.serp_index (Grid.square 4) pe))
        pes)
    [ 0; 1; 2; 3 ]

let test_page_for_size () =
  (* standard shapes used in the experiments *)
  (match Page.for_size (Grid.square 4) 2 with
  | Some p -> Alcotest.(check int) "4x4 p2 -> 8 pages" 8 (Page.n_pages p)
  | None -> Alcotest.fail "4x4 p2");
  (match Page.for_size (Grid.square 4) 4 with
  | Some p -> Alcotest.(check int) "4x4 p4 -> 4 pages" 4 (Page.n_pages p)
  | None -> Alcotest.fail "4x4 p4");
  Alcotest.(check bool) "4x4 p8 omitted" true (Page.for_size (Grid.square 4) 8 = None);
  (match Page.for_size (Grid.square 6) 8 with
  | Some p ->
      Alcotest.(check bool) "6x6 p8 is a band" true (not (Page.is_rect p));
      Alcotest.(check int) "4 pages" 4 (Page.n_pages p)
  | None -> Alcotest.fail "6x6 p8");
  match Page.for_size (Grid.square 8) 8 with
  | Some p ->
      Alcotest.(check bool) "8x8 p8 is rect" true (Page.is_rect p);
      Alcotest.(check int) "8 pages" 8 (Page.n_pages p)
  | None -> Alcotest.fail "8x8 p8"

let test_page_vlocal_roundtrip () =
  List.iter
    (fun p ->
      for n = 0 to Page.n_pages p - 1 do
        List.iter
          (fun pe ->
            match Page.vlocal p n pe with
            | None -> Alcotest.fail "vlocal"
            | Some local -> (
                let tr, tc = Page.vdims p in
                Alcotest.(check bool) "local in vdims" true
                  (local.Coord.row >= 0 && local.Coord.row < tr && local.Coord.col >= 0
                 && local.Coord.col < tc);
                match Page.vglobal p n local with
                | Some pe' -> Alcotest.check coord "roundtrip" pe pe'
                | None -> Alcotest.fail "vglobal"))
          (Page.pes_of_page p n)
      done)
    [
      Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2;
      Page.rect (Grid.square 4) ~tile_rows:1 ~tile_cols:2;
      Page.band (Grid.square 6) ~size:8;
    ]

let test_page_boundary_pairs_cross_pages () =
  let p = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  List.iter
    (fun (a, b) ->
      Alcotest.(check (option int)) "a in page 0" (Some 0) (Page.page_of_pe p a);
      Alcotest.(check (option int)) "b in page 1" (Some 1) (Page.page_of_pe p b);
      Alcotest.(check bool) "adjacent" true (Coord.adjacent a b))
    (Page.boundary_pairs p 0);
  Alcotest.(check int) "two pairs across a 2-PE boundary" 2
    (List.length (Page.boundary_pairs p 0))

(* ---------- Cgra ---------- *)

let test_cgra_standard () =
  (match Cgra.standard ~size:4 ~page_pes:4 with
  | Some a ->
      Alcotest.(check int) "pages" 4 (Cgra.n_pages a);
      Alcotest.(check int) "pes" 16 (Cgra.pe_count a);
      Alcotest.(check bool) "rf provisioned" true (a.Cgra.rf_capacity >= 12)
  | None -> Alcotest.fail "4x4 p4");
  Alcotest.(check bool) "4x4 p8 omitted" true (Cgra.standard ~size:4 ~page_pes:8 = None)

let test_cgra_invalid () =
  let pages = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  Alcotest.check_raises "bad rf" (Invalid_argument "Cgra.make: rf_capacity must be positive")
    (fun () -> ignore (Cgra.make ~rf_capacity:0 pages))

let prop_page_partition =
  QCheck.Test.make ~name:"rect pages partition the used grid" ~count:50
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (tr, tc) ->
      let g = Grid.make ~rows:(tr * 3) ~cols:(tc * 3) in
      let p = Page.rect g ~tile_rows:tr ~tile_cols:tc in
      List.for_all
        (fun pe ->
          match Page.page_of_pe p pe with
          | Some n -> List.exists (Coord.equal pe) (Page.pes_of_page p n)
          | None -> false)
        (Grid.all_pes g))

let () =
  Alcotest.run "arch"
    [
      ( "coord",
        [
          Alcotest.test_case "step" `Quick test_coord_step;
          Alcotest.test_case "opposite" `Quick test_coord_opposite;
          Alcotest.test_case "adjacent" `Quick test_coord_adjacent;
          Alcotest.test_case "manhattan" `Quick test_coord_manhattan;
        ] );
      ( "orient",
        [
          Alcotest.test_case "identity" `Quick test_orient_identity;
          Alcotest.test_case "flips" `Quick test_orient_flips;
          Alcotest.test_case "involution" `Quick test_orient_involution;
          Alcotest.test_case "candidate counts" `Quick test_orient_all_counts;
          Alcotest.test_case "swap rejected on non-square" `Quick test_orient_swap_rejected;
          Alcotest.test_case "bijective" `Quick test_orient_bijective;
          Alcotest.test_case "preserves adjacency" `Quick test_orient_preserves_adjacency;
          Alcotest.test_case "compose" `Quick test_orient_compose;
        ] );
      ( "grid",
        [
          Alcotest.test_case "bounds" `Quick test_grid_bounds;
          Alcotest.test_case "invalid" `Quick test_grid_invalid;
          Alcotest.test_case "neighbors" `Quick test_grid_neighbors;
          Alcotest.test_case "serpentine" `Quick test_grid_serpentine;
          Alcotest.test_case "serp_index inverse" `Quick test_grid_serp_index;
          Alcotest.test_case "index" `Quick test_grid_index;
        ] );
      ( "page",
        [
          Alcotest.test_case "rect counts" `Quick test_page_rect_counts;
          Alcotest.test_case "divisibility" `Quick test_page_rect_divisibility;
          Alcotest.test_case "roundtrip" `Quick test_page_roundtrip;
          Alcotest.test_case "serpentine ring adjacency" `Quick test_page_serpentine_ring;
          Alcotest.test_case "dir_between 4x4" `Quick test_page_dir_between_4x4;
          Alcotest.test_case "band remainder" `Quick test_page_band_remainder;
          Alcotest.test_case "band path" `Quick test_page_band_path;
          Alcotest.test_case "for_size standard shapes" `Quick test_page_for_size;
          Alcotest.test_case "vlocal roundtrip" `Quick test_page_vlocal_roundtrip;
          Alcotest.test_case "boundary pairs" `Quick test_page_boundary_pairs_cross_pages;
          QCheck_alcotest.to_alcotest prop_page_partition;
        ] );
      ( "cgra",
        [
          Alcotest.test_case "standard" `Quick test_cgra_standard;
          Alcotest.test_case "invalid" `Quick test_cgra_invalid;
        ] );
    ]
