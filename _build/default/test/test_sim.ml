open Cgra_arch
open Cgra_dfg
open Cgra_mapper
open Cgra_sim

let arch size page_pes = Option.get (Cgra.standard ~size ~page_pes)

let map_ok kind a g =
  match Scheduler.map kind a g with
  | Ok m -> m
  | Error e -> Alcotest.failf "map: %s" e

(* ---------- Machine ---------- *)

let pe r c = Coord.make ~row:r ~col:c

let test_machine_write_read () =
  let m = Machine.create (Grid.square 4) (Memory.create []) in
  Machine.write m ~pe:(pe 0 0) ~tag:(Machine.Value (1, 0)) ~cycle:3 42;
  (match Machine.read m ~reader:(pe 0 1) ~holder:(pe 0 0) ~tag:(Machine.Value (1, 0)) ~cycle:4 with
  | Ok v -> Alcotest.(check int) "neighbour read" 42 v
  | Error e -> Alcotest.fail e);
  match Machine.read m ~reader:(pe 0 0) ~holder:(pe 0 0) ~tag:(Machine.Value (1, 0)) ~cycle:5 with
  | Ok v -> Alcotest.(check int) "self read" 42 v
  | Error e -> Alcotest.fail e

let test_machine_read_too_early () =
  let m = Machine.create (Grid.square 4) (Memory.create []) in
  Machine.write m ~pe:(pe 0 0) ~tag:(Machine.Value (1, 0)) ~cycle:3 42;
  match Machine.read m ~reader:(pe 0 0) ~holder:(pe 0 0) ~tag:(Machine.Value (1, 0)) ~cycle:3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "same-cycle read must fail"

let test_machine_read_absent () =
  let m = Machine.create (Grid.square 4) (Memory.create []) in
  match Machine.read m ~reader:(pe 0 0) ~holder:(pe 0 0) ~tag:(Machine.Value (9, 9)) ~cycle:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "absent value must fail"

let test_machine_out_of_reach () =
  let m = Machine.create (Grid.square 4) (Memory.create []) in
  Machine.write m ~pe:(pe 0 0) ~tag:(Machine.Value (1, 0)) ~cycle:0 7;
  match Machine.read m ~reader:(pe 3 3) ~holder:(pe 0 0) ~tag:(Machine.Value (1, 0)) ~cycle:2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "distant read must fail"

let test_machine_memory_race () =
  let m = Machine.create (Grid.square 4) (Memory.create [ ("a", Array.make 8 0) ]) in
  (match Machine.store m ~cycle:5 "a" 3 11 with Ok () -> () | Error e -> Alcotest.fail e);
  (match Machine.load m ~cycle:5 "a" 3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load after same-cycle store must fail");
  (match Machine.load m ~cycle:6 "a" 3 with
  | Ok v -> Alcotest.(check int) "later load sees store" 11 v
  | Error e -> Alcotest.fail e);
  match Machine.store m ~cycle:6 "a" 3 12 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "store after same-cycle load must fail"

let test_machine_memory_wrap () =
  let m = Machine.create (Grid.square 4) (Memory.create [ ("a", [| 5; 6 |]) ]) in
  match Machine.load m ~cycle:0 "a" (-1) with
  | Ok v -> Alcotest.(check int) "wrapped" 6 v
  | Error e -> Alcotest.fail e

(* ---------- Exec ---------- *)

let test_exec_no_violations_on_valid_mapping () =
  let k = Cgra_kernels.Kernels.find_exn "laplace" in
  let m = map_ok Unconstrained (arch 4 4) k.graph in
  let mem = Cgra_kernels.Kernels.init_memory k in
  let r = Exec.run m (Memory.copy mem) ~iterations:16 in
  Alcotest.(check (list string)) "no violations" [] r.violations;
  Alcotest.(check bool) "cycles cover schedule" true
    (r.cycles >= (15 * m.ii) + 1)

let test_exec_const_prefill () =
  let k = Cgra_kernels.Kernels.find_exn "mpeg" in
  let m = map_ok Unconstrained (arch 4 4) k.graph in
  let r = Exec.run m (Cgra_kernels.Kernels.init_memory k) ~iterations:2 in
  (* node 3 of mpeg is `const 1` *)
  Array.iteri
    (fun v (n : Graph.node) ->
      ignore v;
      match n.op with
      | Op.Const c -> Alcotest.(check int) "const value recorded" c r.values.(0).(n.id)
      | _ -> ())
    (Array.of_list (Graph.nodes m.graph))

let test_exec_zero_iterations () =
  let k = Cgra_kernels.Kernels.find_exn "mpeg" in
  let m = map_ok Unconstrained (arch 4 4) k.graph in
  let r = Exec.run m (Cgra_kernels.Kernels.init_memory k) ~iterations:0 in
  Alcotest.(check int) "no cycles" 0 r.cycles

let test_exec_rejects_negative () =
  let k = Cgra_kernels.Kernels.find_exn "mpeg" in
  let m = map_ok Unconstrained (arch 4 4) k.graph in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Exec.run m (Cgra_kernels.Kernels.init_memory k) ~iterations:(-1));
       false
     with Invalid_argument _ -> true)

let test_exec_detects_broken_schedule () =
  (* sabotage a valid mapping by moving a consumer one cycle too early *)
  let k = Cgra_kernels.Kernels.find_exn "laplace" in
  let m = map_ok Unconstrained (arch 4 4) k.graph in
  (* find a non-mem node with a placed predecessor and pull it to its
     producer's time *)
  let victim =
    List.find_map
      (fun (e : Graph.edge) ->
        match (m.placements.(e.src), m.placements.(e.dst)) with
        | Some pu, Some pv when pv.Mapping.time > pu.Mapping.time && e.distance = 0 ->
            Some (e.dst, pu.Mapping.time)
        | _ -> None)
      (List.filter
         (fun (e : Graph.edge) ->
           match (Graph.node m.graph e.src).op with Op.Const _ -> false | _ -> true)
         (Graph.edges m.graph))
  in
  match victim with
  | None -> Alcotest.fail "no victim edge"
  | Some (dst, t) ->
      let placements = Array.copy m.placements in
      placements.(dst) <-
        Option.map (fun (p : Mapping.placement) -> { p with time = t }) placements.(dst);
      let broken = { m with placements } in
      let r = Exec.run broken (Cgra_kernels.Kernels.init_memory k) ~iterations:4 in
      Alcotest.(check bool) "violations reported" true (r.violations <> [])

(* ---------- oracle equivalence, the headline result ---------- *)

let iterations = 32

let test_suite_equivalence kind size page_pes () =
  let a = arch size page_pes in
  List.iter
    (fun (k : Cgra_kernels.Kernels.t) ->
      let m = map_ok kind a k.graph in
      let mem = Cgra_kernels.Kernels.init_memory k in
      match Check.against_oracle m mem ~iterations with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s: %s" k.name (String.concat "; " es))
    Cgra_kernels.Kernels.all

let test_fold_ladder_equivalence () =
  let a = arch 4 4 in
  List.iter
    (fun (k : Cgra_kernels.Kernels.t) ->
      let m = map_ok Paged a k.graph in
      let rec ladder target =
        if target >= 1 then begin
          (match Cgra_core.Transform.fold ~target_pages:target m with
          | Ok sh when sh.pe_exact -> (
              let mem = Cgra_kernels.Kernels.init_memory k in
              match Check.against_oracle sh.mapping mem ~iterations with
              | Ok () -> ()
              | Error es ->
                  Alcotest.failf "%s fold %d: %s" k.name target (String.concat "; " es))
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s fold %d: %s" k.name target e);
          ladder (target / 2)
        end
      in
      ladder (Mapping.n_pages_used m))
    Cgra_kernels.Kernels.all

let test_relocated_fold_equivalence () =
  (* shrink into the upper half of the fabric: correctness must not
     depend on the base page *)
  let a = arch 4 4 in
  let k = Cgra_kernels.Kernels.find_exn "wavelet" in
  let m = map_ok Paged a k.graph in
  match Cgra_core.Transform.fold ~base_page:2 ~target_pages:2 m with
  | Ok sh when sh.pe_exact -> (
      let mem = Cgra_kernels.Kernels.init_memory k in
      match Check.against_oracle sh.mapping mem ~iterations with
      | Ok () -> ()
      | Error es -> Alcotest.failf "relocated: %s" (String.concat "; " es))
  | Ok _ -> Alcotest.fail "expected exact relocation"
  | Error e -> Alcotest.fail e

let prop_synthetic_equivalence =
  QCheck.Test.make ~name:"synthetic kernels run bit-exact (map + fold)" ~count:15
    QCheck.(int_range 0 3_000)
    (fun seed ->
      let cfg =
        {
          Cgra_kernels.Synthetic.n_ops = 9 + (seed mod 9);
          mem_fraction = 0.3;
          recurrence = seed mod 3 = 0;
        }
      in
      let g = Cgra_kernels.Synthetic.generate ~seed cfg in
      let mem = Cgra_kernels.Synthetic.memory_for ~seed g in
      match Scheduler.map Paged (arch 4 4) g with
      | Error _ -> false
      | Ok m -> (
          Check.against_oracle m mem ~iterations:12 = Ok ()
          &&
          match Cgra_core.Transform.fold ~target_pages:1 m with
          | Ok sh when sh.pe_exact ->
              Check.against_oracle sh.mapping mem ~iterations:12 = Ok ()
          | Ok _ | Error _ -> false))

let () =
  Alcotest.run "sim"
    [
      ( "machine",
        [
          Alcotest.test_case "write/read" `Quick test_machine_write_read;
          Alcotest.test_case "read too early" `Quick test_machine_read_too_early;
          Alcotest.test_case "read absent" `Quick test_machine_read_absent;
          Alcotest.test_case "out of reach" `Quick test_machine_out_of_reach;
          Alcotest.test_case "memory race" `Quick test_machine_memory_race;
          Alcotest.test_case "memory wrap" `Quick test_machine_memory_wrap;
        ] );
      ( "exec",
        [
          Alcotest.test_case "no violations when valid" `Quick
            test_exec_no_violations_on_valid_mapping;
          Alcotest.test_case "const prefill" `Quick test_exec_const_prefill;
          Alcotest.test_case "zero iterations" `Quick test_exec_zero_iterations;
          Alcotest.test_case "rejects negative" `Quick test_exec_rejects_negative;
          Alcotest.test_case "detects broken schedule" `Quick
            test_exec_detects_broken_schedule;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "baseline 4x4p4" `Quick
            (test_suite_equivalence Scheduler.Unconstrained 4 4);
          Alcotest.test_case "paged 4x4p4" `Quick
            (test_suite_equivalence Scheduler.Paged 4 4);
          Alcotest.test_case "paged 4x4p2" `Quick
            (test_suite_equivalence Scheduler.Paged 4 2);
          Alcotest.test_case "paged 6x6p8 (band)" `Slow
            (test_suite_equivalence Scheduler.Paged 6 8);
          Alcotest.test_case "paged 8x8p4" `Slow
            (test_suite_equivalence Scheduler.Paged 8 4);
          Alcotest.test_case "fold ladder equivalence" `Quick
            test_fold_ladder_equivalence;
          Alcotest.test_case "relocated fold equivalence" `Quick
            test_relocated_fold_equivalence;
          QCheck_alcotest.to_alcotest prop_synthetic_equivalence;
        ] );
    ]
