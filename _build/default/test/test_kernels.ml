open Cgra_dfg
open Cgra_kernels

(* Does the graph contain a dependence cycle (through loop-carried
   edges)?  The [recurrent] flag must agree with this. *)
let has_cycle g =
  let comp = Analysis.sccs g in
  let sizes = Hashtbl.create 8 in
  Array.iter
    (fun c -> Hashtbl.replace sizes c (1 + Option.value ~default:0 (Hashtbl.find_opt sizes c)))
    comp;
  let multi = Hashtbl.fold (fun _ n acc -> acc || n > 1) sizes false in
  multi
  || List.exists (fun (e : Graph.edge) -> e.src = e.dst) (Graph.edges g)

let test_suite_size () =
  Alcotest.(check int) "eleven kernels" 11 (List.length Kernels.all);
  Alcotest.(check int) "distinct names" 11
    (List.length (List.sort_uniq String.compare Kernels.names))

let test_expected_names () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (Kernels.find name <> None))
    [ "mpeg"; "yuv2rgb"; "sor"; "compress"; "gsr"; "laplace"; "lowpass"; "swim";
      "sobel"; "wavelet"; "histeq" ]

let test_find_unknown () =
  Alcotest.(check bool) "unknown" true (Kernels.find "fft" = None);
  Alcotest.check_raises "find_exn" (Invalid_argument "Kernels.find_exn: unknown kernel fft")
    (fun () -> ignore (Kernels.find_exn "fft"))

let test_realistic_sizes () =
  List.iter
    (fun (k : Kernels.t) ->
      let n = Graph.n_nodes k.graph in
      Alcotest.(check bool)
        (Printf.sprintf "%s has 8..40 ops (got %d)" k.name n)
        true (n >= 8 && n <= 40);
      Alcotest.(check bool) (k.name ^ " has a store") true
        (List.exists (fun (nd : Graph.node) -> Op.is_store nd.op) (Graph.nodes k.graph)))
    Kernels.all

let test_recurrent_flags () =
  List.iter
    (fun (k : Kernels.t) ->
      Alcotest.(check bool)
        (k.name ^ " recurrent flag matches cycle structure")
        k.recurrent (has_cycle k.graph))
    Kernels.all

let test_expected_rec_mii () =
  let expect = [ ("sor", 3); ("compress", 4); ("gsr", 2); ("swim", 2); ("histeq", 1) ] in
  List.iter
    (fun (name, mii) ->
      let k = Kernels.find_exn name in
      Alcotest.(check int) (name ^ " RecMII") mii (Analysis.rec_mii k.graph))
    expect

let test_acyclic_kernels_recmii_one () =
  List.iter
    (fun name ->
      let k = Kernels.find_exn name in
      Alcotest.(check int) (name ^ " RecMII = 1") 1 (Analysis.rec_mii k.graph))
    [ "mpeg"; "yuv2rgb"; "laplace"; "lowpass"; "sobel"; "wavelet" ]

let test_wavelet_carried_but_acyclic () =
  let k = Kernels.find_exn "wavelet" in
  Alcotest.(check bool) "has a carried edge" true (Graph.max_distance k.graph >= 1);
  Alcotest.(check bool) "not recurrent" false k.recurrent

let test_init_memory_covers_arrays () =
  List.iter
    (fun (k : Kernels.t) ->
      let mem = Kernels.init_memory k in
      (* executing must not hit a missing array *)
      Interp.run k.graph mem ~iterations:8)
    Kernels.all

let test_init_memory_deterministic () =
  let k = Kernels.find_exn "mpeg" in
  let a = Kernels.init_memory ~seed:5 k and b = Kernels.init_memory ~seed:5 k in
  Alcotest.(check bool) "same seed same data" true (Memory.equal a b);
  let c = Kernels.init_memory ~seed:6 k in
  Alcotest.(check bool) "different seed differs" false (Memory.equal a c)

let test_kernels_have_observable_effect () =
  List.iter
    (fun (k : Kernels.t) ->
      let mem = Kernels.init_memory k in
      let before = Memory.copy mem in
      Interp.run k.graph mem ~iterations:8;
      Alcotest.(check bool) (k.name ^ " writes memory") false (Memory.equal before mem))
    Kernels.all

let test_mpeg_semantics () =
  (* mpeg: out = clamp8(((ref0 + ref1 + 1) >> 1) + resid) *)
  let k = Kernels.find_exn "mpeg" in
  let mem =
    Memory.create
      [
        ("ref0", [| 10; 100 |]);
        ("ref1", [| 20; 101 |]);
        ("resid", [| 5; 200 |]);
        ("out", Array.make 2 0);
      ]
  in
  Interp.run k.graph mem ~iterations:2;
  Alcotest.(check (array int)) "motion compensation" [| 20; 255 |] (Memory.get mem "out")

let test_lowpass_semantics () =
  (* constant input stays constant under a normalized FIR *)
  let k = Kernels.find_exn "lowpass" in
  let mem =
    Memory.create [ ("signal", Array.make 16 64); ("filtered", Array.make 16 0) ]
  in
  Interp.run k.graph mem ~iterations:8;
  Array.iteri
    (fun i v -> if i < 8 then Alcotest.(check int) "dc gain 1" 64 v)
    (Memory.get mem "filtered")

let test_histeq_running_peak () =
  let k = Kernels.find_exn "histeq" in
  let lut = Array.init 256 (fun i -> 255 - i) in
  let mem =
    Memory.create
      [
        ("img", [| 0; 10; 5 |]);
        ("lut", lut);
        ("out", Array.make 3 0);
        ("blend", Array.make 3 0);
        ("peak", Array.make 1 0);
      ]
  in
  Interp.run k.graph mem ~iterations:3;
  Alcotest.(check (array int)) "lookup applied" [| 255; 245; 250 |] (Memory.get mem "out");
  Alcotest.(check int) "running max" 255 (Memory.get mem "peak").(0)

let test_sor_converges_smoother () =
  (* after a sweep, values move toward neighbours: just check effect and
     determinism across runs with the same memory *)
  let k = Kernels.find_exn "sor" in
  let mem = Memory.create [ ("grid", Array.init 16 (fun i -> i * 10)) ] in
  let h = Interp.run_history k.graph mem ~iterations:4 in
  Alcotest.(check int) "iterations recorded" 4 (Array.length h)

let () =
  Alcotest.run "kernels"
    [
      ( "suite",
        [
          Alcotest.test_case "size" `Quick test_suite_size;
          Alcotest.test_case "expected names" `Quick test_expected_names;
          Alcotest.test_case "find unknown" `Quick test_find_unknown;
          Alcotest.test_case "realistic sizes" `Quick test_realistic_sizes;
          Alcotest.test_case "recurrent flags" `Quick test_recurrent_flags;
          Alcotest.test_case "expected RecMII" `Quick test_expected_rec_mii;
          Alcotest.test_case "acyclic RecMII = 1" `Quick test_acyclic_kernels_recmii_one;
          Alcotest.test_case "wavelet carried but acyclic" `Quick
            test_wavelet_carried_but_acyclic;
        ] );
      ( "execution",
        [
          Alcotest.test_case "init_memory covers arrays" `Quick
            test_init_memory_covers_arrays;
          Alcotest.test_case "init_memory deterministic" `Quick
            test_init_memory_deterministic;
          Alcotest.test_case "observable effect" `Quick test_kernels_have_observable_effect;
          Alcotest.test_case "mpeg semantics" `Quick test_mpeg_semantics;
          Alcotest.test_case "lowpass dc gain" `Quick test_lowpass_semantics;
          Alcotest.test_case "histeq running peak" `Quick test_histeq_running_peak;
          Alcotest.test_case "sor history" `Quick test_sor_converges_smoother;
        ] );
    ]
