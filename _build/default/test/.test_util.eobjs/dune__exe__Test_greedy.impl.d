test/test_greedy.ml: Alcotest Array Cgra_core Float Greedy Hashtbl List Printf QCheck QCheck_alcotest Transform
