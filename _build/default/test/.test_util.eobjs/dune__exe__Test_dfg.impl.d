test/test_dfg.ml: Alcotest Analysis Array Builder Cgra_dfg Cgra_kernels Dot Graph Interp List Memdep Memory Op QCheck QCheck_alcotest String
