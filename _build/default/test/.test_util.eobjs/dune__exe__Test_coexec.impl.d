test/test_coexec.ml: Alcotest Allocator Cgra Cgra_arch Cgra_core Cgra_dfg Cgra_kernels Cgra_mapper Cgra_sim Coord Grid List Mapping Option Page Scheduler String Transform
