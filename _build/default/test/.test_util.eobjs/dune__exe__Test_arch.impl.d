test/test_arch.ml: Alcotest Array Cgra Cgra_arch Coord Grid List Orient Page Printf QCheck QCheck_alcotest
