test/test_experiments.ml: Alcotest Cgra_core Experiments Float Lazy List Printf Result String
