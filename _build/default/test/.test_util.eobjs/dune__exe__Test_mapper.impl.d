test/test_mapper.ml: Alcotest Array Cgra Cgra_arch Cgra_dfg Cgra_kernels Cgra_mapper Coord Graph Grid List Mapping Op Option Page Printf QCheck QCheck_alcotest Router Scheduler String
