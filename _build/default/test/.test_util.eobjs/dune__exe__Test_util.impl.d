test/test_util.ml: Alcotest Array Cgra_util Fun Int List Pqueue QCheck QCheck_alcotest Rng Stats String Table
