test/test_kernels.ml: Alcotest Analysis Array Cgra_dfg Cgra_kernels Graph Hashtbl Interp Kernels List Memory Op Option Printf String
