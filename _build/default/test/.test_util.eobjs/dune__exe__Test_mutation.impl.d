test/test_mutation.ml: Alcotest Array Cgra Cgra_arch Cgra_isa Cgra_kernels Cgra_mapper Cgra_sim Cgra_util Coord Grid Hashtbl Lazy List Mapping Option Scheduler
