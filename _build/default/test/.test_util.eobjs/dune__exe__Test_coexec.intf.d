test/test_coexec.mli:
