(* Failure injection: mutate valid schedules and check that the static
   validator and the cycle-accurate machine agree.

   The key soundness property: if [Mapping.validate] accepts a schedule,
   executing it must reproduce the sequential oracle bit-for-bit.  Any
   mutation that slips past validation but breaks execution exposes a
   validator hole; the fuzzer below hunts for exactly that.  (The reverse
   — a mutation the validator rejects — is the common case and needs no
   further checking.) *)

open Cgra_arch
open Cgra_mapper

let arch = lazy (Option.get (Cgra.standard ~size:4 ~page_pes:4))

let map_ok name =
  let k = Cgra_kernels.Kernels.find_exn name in
  match Scheduler.map Scheduler.Unconstrained (Lazy.force arch) k.graph with
  | Ok m -> m
  | Error e -> Alcotest.failf "map %s: %s" name e

type mutation =
  | Move_op  (* relocate one op to a random PE/time *)
  | Retime_op  (* shift one op in time *)
  | Drop_route  (* delete a routing chain *)
  | Swap_ops  (* exchange two ops' placements *)
  | Retime_hop  (* shift a routing hop *)

let mutations = [| Move_op; Retime_op; Drop_route; Swap_ops; Retime_hop |]

let placed_nodes (m : Mapping.t) =
  let acc = ref [] in
  Array.iteri (fun v pl -> if pl <> None then acc := v :: !acc) m.placements;
  Array.of_list (List.rev !acc)

let mutate rng (m : Mapping.t) =
  let placements = Array.copy m.placements in
  let routes = ref m.routes in
  let grid = m.arch.Cgra.grid in
  let nodes = placed_nodes m in
  let random_node () = Cgra_util.Rng.choose rng nodes in
  (match Cgra_util.Rng.choose rng mutations with
  | Move_op ->
      let v = random_node () in
      let pe =
        Coord.make
          ~row:(Cgra_util.Rng.int rng grid.Grid.rows)
          ~col:(Cgra_util.Rng.int rng grid.Grid.cols)
      in
      let time = Cgra_util.Rng.int rng (Mapping.schedule_length m + 2) in
      placements.(v) <- Some { Mapping.pe; time }
  | Retime_op ->
      let v = random_node () in
      let delta = Cgra_util.Rng.int_in rng (-3) 3 in
      placements.(v) <-
        Option.map
          (fun (p : Mapping.placement) -> { p with time = max 0 (p.time + delta) })
          placements.(v)
  | Drop_route -> (
      match !routes with
      | [] -> ()
      | rs ->
          let i = Cgra_util.Rng.int rng (List.length rs) in
          routes := List.filteri (fun j _ -> j <> i) rs)
  | Swap_ops ->
      let a = random_node () and b = random_node () in
      let tmp = placements.(a) in
      placements.(a) <- placements.(b);
      placements.(b) <- tmp
  | Retime_hop -> (
      match !routes with
      | [] -> ()
      | rs ->
          let i = Cgra_util.Rng.int rng (List.length rs) in
          routes :=
            List.mapi
              (fun j (r : Mapping.route) ->
                if j <> i || r.hops = [] then r
                else
                  let k = Cgra_util.Rng.int rng (List.length r.hops) in
                  let delta = Cgra_util.Rng.int_in rng (-2) 2 in
                  {
                    r with
                    hops =
                      List.mapi
                        (fun l (h : Mapping.placement) ->
                          if l = k then { h with time = max 0 (h.time + delta) } else h)
                        r.hops;
                  })
              rs));
  { m with placements; routes = !routes }

(* one fuzzing campaign over one kernel *)
let fuzz_kernel ?(trials = 120) name =
  let m = map_ok name in
  let k = Cgra_kernels.Kernels.find_exn name in
  let rng = Cgra_util.Rng.create ~seed:(Hashtbl.hash name) in
  let accepted = ref 0 and rejected = ref 0 in
  for _ = 1 to trials do
    let m' = mutate rng m in
    match Mapping.validate m' with
    | Error _ -> incr rejected
    | Ok () -> (
        incr accepted;
        (* soundness: the machine must agree with the oracle *)
        let mem = Cgra_kernels.Kernels.init_memory k in
        match Cgra_sim.Check.against_oracle m' mem ~iterations:16 with
        | Ok () -> ()
        | Error es ->
            Alcotest.failf "%s: validator accepted a broken schedule: %s" name
              (List.hd es))
  done;
  (!accepted, !rejected)

let test_soundness name () = ignore (fuzz_kernel name)

let test_mutations_mostly_caught () =
  (* sanity on the fuzzer itself: mutations must actually break things
     often, or the campaign tests nothing *)
  let _, rejected = fuzz_kernel ~trials:200 "laplace" in
  Alcotest.(check bool) "fuzzer produces invalid schedules" true (rejected > 100)

let test_isa_agrees_on_accepted_mutants () =
  (* harsher variant: accepted mutants must also survive the encode +
     decoder-machine path *)
  let m = map_ok "mpeg" in
  let k = Cgra_kernels.Kernels.find_exn "mpeg" in
  let rng = Cgra_util.Rng.create ~seed:99 in
  for _ = 1 to 120 do
    let m' = mutate rng m in
    if Mapping.validate m' = Ok () then begin
      let mem = Cgra_kernels.Kernels.init_memory k in
      match Cgra_isa.Exec_image.check m' mem ~iterations:12 with
      | Ok _ -> ()
      | Error es ->
          Alcotest.failf "decoder machine disagrees on accepted mutant: %s"
            (List.hd es)
    end
  done

let () =
  Alcotest.run "mutation"
    [
      ( "validator-soundness",
        [
          Alcotest.test_case "mpeg" `Quick (test_soundness "mpeg");
          Alcotest.test_case "laplace" `Quick (test_soundness "laplace");
          Alcotest.test_case "sor (recurrence)" `Quick (test_soundness "sor");
          Alcotest.test_case "swim (memdep)" `Quick (test_soundness "swim");
          Alcotest.test_case "sobel (routes)" `Quick (test_soundness "sobel");
          Alcotest.test_case "histeq (dynamic mem)" `Quick (test_soundness "histeq");
          Alcotest.test_case "fuzzer really mutates" `Quick
            test_mutations_mostly_caught;
          Alcotest.test_case "decoder machine agrees" `Quick
            test_isa_agrees_on_accepted_mutants;
        ] );
    ]
