open Cgra_util

let check_int = Alcotest.(check int)

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 13 in
    Alcotest.(check bool) "in [0,13)" true (x >= 0 && x < 13)
  done

let test_rng_int_in_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_rng_int_covers_range () =
  let r = Rng.create ~seed:3 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Rng.int r 4) <- true
  done;
  Alcotest.(check bool) "all residues appear" true (Array.for_all Fun.id seen)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues the stream" xa xb;
  ignore (Rng.bits64 a);
  let xa' = Rng.bits64 a and xb' = Rng.bits64 b in
  Alcotest.(check bool) "then diverges by position" true (xa' <> xb' || xa' = xb')

let test_rng_split_independent () =
  let a = Rng.create ~seed:11 in
  let c = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.bits64 a) in
  let ys = List.init 10 (fun _ -> Rng.bits64 c) in
  Alcotest.(check bool) "split stream differs" true (xs <> ys)

let test_rng_float_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_rng_bool_balanced () =
  let r = Rng.create ~seed:13 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool r then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 400 && !trues < 600)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:17 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_rng_choose () =
  let r = Rng.create ~seed:19 in
  for _ = 1 to 100 do
    let x = Rng.choose r [| 1; 2; 3 |] in
    Alcotest.(check bool) "member" true (List.mem x [ 1; 2; 3 ])
  done

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:23 in
  let n = 5000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential r ~mean:10.0 in
    Alcotest.(check bool) "positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 10" true (mean > 8.5 && mean < 11.5)

(* ---------- Pqueue ---------- *)

let int_q () = Pqueue.empty ~cmp:Int.compare

let test_pqueue_empty () =
  let q = int_q () in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek none" true (Pqueue.peek q = None)

let test_pqueue_sorted () =
  let q = List.fold_left (fun q p -> Pqueue.push q p p) (int_q ()) [ 5; 1; 4; 1; 3 ] in
  let order = List.map fst (Pqueue.to_sorted_list q) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] order

let test_pqueue_fifo_ties () =
  let q = int_q () in
  let q = Pqueue.push q 1 "first" in
  let q = Pqueue.push q 1 "second" in
  let q = Pqueue.push q 0 "zero" in
  let q = Pqueue.push q 1 "third" in
  let vals = List.map snd (Pqueue.to_sorted_list q) in
  Alcotest.(check (list string)) "ties in insertion order"
    [ "zero"; "first"; "second"; "third" ] vals

let test_pqueue_size () =
  let q = int_q () in
  check_int "empty size" 0 (Pqueue.size q);
  let q = Pqueue.push (Pqueue.push q 2 ()) 1 () in
  check_int "two" 2 (Pqueue.size q);
  match Pqueue.pop q with
  | Some (_, q') -> check_int "one after pop" 1 (Pqueue.size q')
  | None -> Alcotest.fail "pop"

let test_pqueue_peek_stable () =
  let q = Pqueue.of_list ~cmp:Int.compare [ (3, "c"); (1, "a"); (2, "b") ] in
  (match Pqueue.peek q with
  | Some (p, v) ->
      check_int "min prio" 1 p;
      Alcotest.(check string) "min value" "a" v
  | None -> Alcotest.fail "peek");
  check_int "peek does not consume" 3 (Pqueue.size q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing order" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let q = Pqueue.of_list ~cmp:Int.compare (List.map (fun x -> (x, x)) xs) in
      let popped = List.map fst (Pqueue.to_sorted_list q) in
      popped = List.sort compare xs)

(* ---------- Stats ---------- *)

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "empty" 0.0 (Stats.mean [])

let test_stats_geomean () =
  check_float "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  check_float "empty" 0.0 (Stats.geomean [])

let test_stats_stddev () =
  check_float "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "single" 0.0 (Stats.stddev [ 1.0 ]);
  check_float "known" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_minmax () =
  check_float "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  Alcotest.check_raises "empty min" (Invalid_argument "Stats.minimum: empty")
    (fun () -> ignore (Stats.minimum []))

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p0" 1.0 (Stats.percentile 0.0 xs);
  check_float "p50" 3.0 (Stats.percentile 50.0 xs);
  check_float "p100" 5.0 (Stats.percentile 100.0 xs);
  check_float "p25 interpolated" 2.0 (Stats.percentile 25.0 xs)

let test_stats_improvement () =
  check_float "2x faster = +100%" 100.0
    (Stats.improvement_percent ~baseline:10.0 ~improved:5.0);
  check_float "same = 0%" 0.0 (Stats.improvement_percent ~baseline:5.0 ~improved:5.0);
  check_float "slower is negative" (-50.0)
    (Stats.improvement_percent ~baseline:5.0 ~improved:10.0)

let test_stats_ratio () =
  check_float "ratio" 50.0 (Stats.ratio_percent 1.0 2.0);
  check_float "zero denominator" 0.0 (Stats.ratio_percent 1.0 0.0)

(* ---------- Table ---------- *)

let test_table_render () =
  let s = Table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  check_int "four lines" 4 (List.length lines);
  Alcotest.(check bool) "has rule" true
    (String.for_all (fun c -> c = '-' || c = ' ') (List.nth lines 1))

let test_table_alignment () =
  let s = Table.render ~header:[ "k"; "v" ] [ [ "x"; "123" ] ] in
  Alcotest.(check bool) "right-aligns numbers" true
    (String.length s > 0 && String.split_on_char '\n' s |> List.length = 3)

let test_table_fmt () =
  Alcotest.(check string) "float" "3.1" (Table.fmt_float 3.14159);
  Alcotest.(check string) "float decimals" "3.14" (Table.fmt_float ~decimals:2 3.14159);
  Alcotest.(check string) "percent" "99.5%" (Table.fmt_percent 99.5)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "copy continues stream" `Quick test_rng_copy_independent;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bool balance" `Quick test_rng_bool_balanced;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "choose membership" `Quick test_rng_choose;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "sorted pops" `Quick test_pqueue_sorted;
          Alcotest.test_case "FIFO ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "size" `Quick test_pqueue_size;
          Alcotest.test_case "peek stable" `Quick test_pqueue_peek_stable;
          QCheck_alcotest.to_alcotest prop_pqueue_sorted;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "improvement" `Quick test_stats_improvement;
          Alcotest.test_case "ratio" `Quick test_stats_ratio;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "formatting" `Quick test_table_fmt;
        ] );
    ]
