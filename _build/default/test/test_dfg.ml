open Cgra_dfg

let noload _ _ = Alcotest.fail "unexpected load"

let nostore _ _ _ = Alcotest.fail "unexpected store"

let ev ?(iter = 0) op args = Op.eval op ~iter ~load:noload ~store:nostore args

(* ---------- Op ---------- *)

let test_op_arity () =
  Alcotest.(check int) "const" 0 (Op.arity (Op.Const 3));
  Alcotest.(check int) "add" 2 (Op.arity Op.Add);
  Alcotest.(check int) "abs" 1 (Op.arity Op.Abs);
  Alcotest.(check int) "select" 3 (Op.arity Op.Select);
  Alcotest.(check int) "load" 0 (Op.arity (Op.Load { array = "a"; offset = 0; stride = 1 }));
  Alcotest.(check int) "store_idx" 2 (Op.arity (Op.Store_idx { array = "a" }))

let test_op_arith () =
  Alcotest.(check int) "add" 7 (ev Op.Add [ 3; 4 ]);
  Alcotest.(check int) "sub" (-1) (ev Op.Sub [ 3; 4 ]);
  Alcotest.(check int) "mul" 12 (ev Op.Mul [ 3; 4 ]);
  Alcotest.(check int) "shl" 12 (ev Op.Shl [ 3; 2 ]);
  Alcotest.(check int) "shr" 3 (ev Op.Shr [ 13; 2 ]);
  Alcotest.(check int) "shr negative" (-4) (ev Op.Shr [ -13; 2 ]);
  Alcotest.(check int) "and" 1 (ev Op.And [ 3; 5 ]);
  Alcotest.(check int) "or" 7 (ev Op.Or [ 3; 5 ]);
  Alcotest.(check int) "xor" 6 (ev Op.Xor [ 3; 5 ]);
  Alcotest.(check int) "min" 3 (ev Op.Min [ 3; 5 ]);
  Alcotest.(check int) "max" 5 (ev Op.Max [ 3; 5 ]);
  Alcotest.(check int) "abs" 4 (ev Op.Abs [ -4 ]);
  Alcotest.(check int) "neg" (-4) (ev Op.Neg [ 4 ])

let test_op_cmp_select () =
  Alcotest.(check int) "lt true" 1 (ev (Op.Cmp Op.Lt) [ 1; 2 ]);
  Alcotest.(check int) "lt false" 0 (ev (Op.Cmp Op.Lt) [ 2; 1 ]);
  Alcotest.(check int) "ge" 1 (ev (Op.Cmp Op.Ge) [ 2; 2 ]);
  Alcotest.(check int) "ne" 1 (ev (Op.Cmp Op.Ne) [ 1; 2 ]);
  Alcotest.(check int) "select then" 10 (ev Op.Select [ 1; 10; 20 ]);
  Alcotest.(check int) "select else" 20 (ev Op.Select [ 0; 10; 20 ])

let test_op_clamp () =
  Alcotest.(check int) "below" 0 (ev Op.Clamp8 [ -5 ]);
  Alcotest.(check int) "above" 255 (ev Op.Clamp8 [ 999 ]);
  Alcotest.(check int) "inside" 128 (ev Op.Clamp8 [ 128 ])

let test_op_iter_const_route () =
  Alcotest.(check int) "iter" 7 (ev ~iter:7 Op.Iter []);
  Alcotest.(check int) "const" 42 (ev (Op.Const 42) []);
  Alcotest.(check int) "route passes" 9 (ev Op.Route [ 9 ])

let test_op_memory_semantics () =
  let stored = ref None in
  let load a i = if a = "in" then 100 + i else Alcotest.fail "array" in
  let store a i v = stored := Some (a, i, v) in
  let v =
    Op.eval (Op.Load { array = "in"; offset = 2; stride = 3 }) ~iter:4 ~load ~store []
  in
  Alcotest.(check int) "affine load index" (100 + 14) v;
  let v = Op.eval (Op.Load_idx { array = "in" }) ~iter:0 ~load ~store [ 5 ] in
  Alcotest.(check int) "load_idx" 105 v;
  let v =
    Op.eval (Op.Store { array = "out"; offset = 1; stride = 2 }) ~iter:3 ~load ~store
      [ 77 ]
  in
  Alcotest.(check int) "store returns value" 77 v;
  Alcotest.(check bool) "store hits memory" true (!stored = Some ("out", 7, 77));
  ignore (Op.eval (Op.Store_idx { array = "out" }) ~iter:0 ~load ~store [ 9; 55 ]);
  Alcotest.(check bool) "store_idx" true (!stored = Some ("out", 9, 55))

let test_op_arity_mismatch () =
  Alcotest.check_raises "too few" (Invalid_argument "Op.eval: arity mismatch")
    (fun () -> ignore (ev Op.Add [ 1 ]))

let test_op_mem_predicates () =
  Alcotest.(check bool) "load is mem" true
    (Op.is_mem (Op.Load { array = "a"; offset = 0; stride = 1 }));
  Alcotest.(check bool) "add not mem" false (Op.is_mem Op.Add);
  Alcotest.(check bool) "store is store" true
    (Op.is_store (Op.Store { array = "a"; offset = 0; stride = 1 }));
  Alcotest.(check bool) "load not store" false
    (Op.is_store (Op.Load_idx { array = "a" }));
  Alcotest.(check (option string)) "array_of" (Some "a")
    (Op.array_of (Op.Store_idx { array = "a" }))

(* ---------- Graph validation ---------- *)

let simple_chain () =
  Graph.create ~name:"chain"
    ~ops:
      [
        Op.Load { array = "a"; offset = 0; stride = 1 };
        Op.Abs;
        Op.Store { array = "b"; offset = 0; stride = 1 };
      ]
    ~edges:[ (0, 1, 0, 0); (1, 2, 0, 0) ]

let test_graph_create () =
  let g = simple_chain () in
  Alcotest.(check int) "nodes" 3 (Graph.n_nodes g);
  Alcotest.(check int) "edges" 2 (Graph.n_edges g);
  Alcotest.(check int) "mem" 2 (Graph.mem_node_count g);
  Alcotest.(check string) "name" "chain" (Graph.name g)

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_graph_rejects_missing_operand () =
  expect_invalid (fun () ->
      Graph.create ~name:"bad" ~ops:[ Op.Const 1; Op.Abs ] ~edges:[])

let test_graph_rejects_duplicate_operand () =
  expect_invalid (fun () ->
      Graph.create ~name:"bad" ~ops:[ Op.Const 1; Op.Const 2; Op.Abs ]
        ~edges:[ (0, 2, 0, 0); (1, 2, 0, 0) ])

let test_graph_rejects_bad_operand_index () =
  expect_invalid (fun () ->
      Graph.create ~name:"bad" ~ops:[ Op.Const 1; Op.Abs ] ~edges:[ (0, 1, 1, 0) ])

let test_graph_rejects_out_of_range () =
  expect_invalid (fun () ->
      Graph.create ~name:"bad" ~ops:[ Op.Const 1; Op.Abs ] ~edges:[ (5, 1, 0, 0) ])

let test_graph_rejects_negative_distance () =
  expect_invalid (fun () ->
      Graph.create ~name:"bad" ~ops:[ Op.Const 1; Op.Abs ] ~edges:[ (0, 1, 0, -1) ])

let test_graph_rejects_zero_distance_cycle () =
  expect_invalid (fun () ->
      Graph.create ~name:"bad" ~ops:[ Op.Abs; Op.Abs ]
        ~edges:[ (0, 1, 0, 0); (1, 0, 0, 0) ])

let test_graph_accepts_carried_cycle () =
  let g =
    Graph.create ~name:"rec" ~ops:[ Op.Abs; Op.Abs ]
      ~edges:[ (0, 1, 0, 0); (1, 0, 0, 1) ]
  in
  Alcotest.(check int) "two nodes" 2 (Graph.n_nodes g)

let test_graph_topo_order () =
  let g = simple_chain () in
  Alcotest.(check (list int)) "chain order" [ 0; 1; 2 ] (Graph.topo_order g)

let test_graph_preds_sorted () =
  let g =
    Graph.create ~name:"two-operands" ~ops:[ Op.Const 1; Op.Const 2; Op.Sub ]
      ~edges:[ (1, 2, 1, 0); (0, 2, 0, 0) ]
  in
  let operands = List.map (fun (e : Graph.edge) -> e.operand) (Graph.preds g 2) in
  Alcotest.(check (list int)) "sorted by operand" [ 0; 1 ] operands

let test_graph_max_distance () =
  let g =
    Graph.create ~name:"d" ~ops:[ Op.Abs; Op.Abs ]
      ~edges:[ (0, 1, 0, 0); (1, 0, 0, 3) ]
  in
  Alcotest.(check int) "max distance" 3 (Graph.max_distance g)

(* ---------- Builder ---------- *)

let test_builder_basic () =
  let b = Builder.create ~name:"t" in
  let x = Builder.load b "a" ~offset:0 ~stride:1 in
  let y = Builder.const b 3 in
  let z = Builder.op2 b Op.Add x y in
  let _ = Builder.store b "o" ~offset:0 ~stride:1 z in
  let g = Builder.finish b in
  Alcotest.(check int) "nodes" 4 (Graph.n_nodes g);
  Alcotest.(check int) "edges" 3 (Graph.n_edges g)

let test_builder_arity_check () =
  let b = Builder.create ~name:"t" in
  let x = Builder.const b 1 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Builder.add b Op.Add [ (x, 0) ]);
       false
     with Invalid_argument _ -> true)

let test_builder_defer_cycle () =
  let b = Builder.create ~name:"t" in
  let x = Builder.load b "a" ~offset:0 ~stride:1 in
  let acc = Builder.defer b Op.Add in
  let out = Builder.op1 b Op.Abs acc in
  Builder.connect b ~src:x ~dst:acc ~operand:0 ~distance:0;
  Builder.connect b ~src:out ~dst:acc ~operand:1 ~distance:1;
  let _ = Builder.store b "o" ~offset:0 ~stride:1 out in
  let g = Builder.finish b in
  Alcotest.(check int) "rec_mii of 2-cycle" 2 (Analysis.rec_mii g)

(* ---------- Analysis ---------- *)

let test_analysis_res_mii () =
  let g = simple_chain () in
  Alcotest.(check int) "1 on 16 PEs" 1
    (Analysis.res_mii ~pes:16 ~mem_slots_per_cycle:8 g);
  Alcotest.(check int) "ceil 3/2" 2 (Analysis.res_mii ~pes:2 ~mem_slots_per_cycle:8 g);
  Alcotest.(check int) "mem bound" 2 (Analysis.res_mii ~pes:16 ~mem_slots_per_cycle:1 g)

let test_analysis_rec_mii () =
  Alcotest.(check int) "acyclic" 1 (Analysis.rec_mii (simple_chain ()));
  let self =
    Graph.create ~name:"self" ~ops:[ Op.Const 0; Op.Add ]
      ~edges:[ (0, 1, 0, 0); (1, 1, 1, 1) ]
  in
  Alcotest.(check int) "self loop" 1 (Analysis.rec_mii self);
  let three =
    Graph.create ~name:"three" ~ops:[ Op.Abs; Op.Abs; Op.Abs ]
      ~edges:[ (0, 1, 0, 0); (1, 2, 0, 0); (2, 0, 0, 1) ]
  in
  Alcotest.(check int) "3-cycle distance 1" 3 (Analysis.rec_mii three);
  let three_d2 =
    Graph.create ~name:"three" ~ops:[ Op.Abs; Op.Abs; Op.Abs ]
      ~edges:[ (0, 1, 0, 0); (1, 2, 0, 0); (2, 0, 0, 2) ]
  in
  Alcotest.(check int) "3-cycle distance 2" 2 (Analysis.rec_mii three_d2)

let test_analysis_feasible () =
  let three =
    Graph.create ~name:"three" ~ops:[ Op.Abs; Op.Abs; Op.Abs ]
      ~edges:[ (0, 1, 0, 0); (1, 2, 0, 0); (2, 0, 0, 1) ]
  in
  Alcotest.(check bool) "II=2 infeasible" false (Analysis.feasible_ii three 2);
  Alcotest.(check bool) "II=3 feasible" true (Analysis.feasible_ii three 3)

let test_analysis_asap_height () =
  let g = simple_chain () in
  Alcotest.(check (array int)) "asap" [| 0; 1; 2 |] (Analysis.asap g);
  Alcotest.(check (array int)) "height" [| 2; 1; 0 |] (Analysis.height g);
  Alcotest.(check int) "critical path" 3 (Analysis.critical_path g)

let test_analysis_sccs () =
  let g =
    Graph.create ~name:"mix" ~ops:[ Op.Const 0; Op.Add; Op.Abs; Op.Abs ]
      ~edges:[ (0, 1, 0, 0); (1, 1, 1, 1); (1, 2, 0, 0); (2, 3, 0, 0) ]
  in
  let comp = Analysis.sccs g in
  Alcotest.(check bool) "distinct components" true
    (comp.(1) <> comp.(2) && comp.(2) <> comp.(3));
  let rank = Analysis.scc_topo_rank g in
  Alcotest.(check bool) "const before add" true (rank.(0) < rank.(1));
  Alcotest.(check bool) "add before abs chain" true
    (rank.(1) < rank.(2) && rank.(2) < rank.(3))

let test_analysis_rec_mii_with () =
  let g = simple_chain () in
  (* the ordering back-edge closes a circuit with the two data edges:
     latency 3, distance 1 *)
  Alcotest.(check int) "ordering raises MII" 3
    (Analysis.rec_mii_with ~extra:[ (2, 0, 1) ] g);
  Alcotest.(check int) "without it, acyclic" 1 (Analysis.rec_mii g)

(* ---------- Memdep ---------- *)

(* Node 0 is a constant feeding every store's value operand; memory ops
   start at node 1. *)
let mk_mem ops =
  let edges =
    List.concat
      (List.mapi
         (fun i op -> if Op.arity op = 1 then [ (0, i + 1, 0, 0) ] else [])
         ops)
  in
  Graph.create ~name:"mem" ~ops:(Op.Const 0 :: ops) ~edges

let shift_free deps =
  (* drop the constant node from consideration: it is node 0 and never a
     memory op, so [Memdep.ordering] never mentions it anyway *)
  deps

let test_memdep_load_load () =
  let g =
    mk_mem
      [
        Op.Load { array = "a"; offset = 0; stride = 1 };
        Op.Load { array = "a"; offset = 0; stride = 1 };
      ]
  in
  Alcotest.(check int) "loads never conflict" 0
    (List.length (shift_free (Memdep.ordering g)))

let test_memdep_anti_dependence () =
  (* load a[i+1] vs store a[i]: the store of iteration i+1 touches what
     the load of iteration i read *)
  let g =
    Graph.create ~name:"sor-ish"
      ~ops:
        [
          Op.Load { array = "a"; offset = 1; stride = 1 };
          Op.Store { array = "a"; offset = 0; stride = 1 };
        ]
      ~edges:[ (0, 1, 0, 0) ]
  in
  let deps = Memdep.ordering g in
  Alcotest.(check bool) "anti dep load->store distance 1" true
    (List.exists
       (fun (d : Memdep.t) -> d.src = 0 && d.dst = 1 && d.distance = 1)
       deps)

let test_memdep_true_dependence () =
  (* store a[i] feeds load a[i-2] read two iterations later *)
  let g =
    Graph.create ~name:"fwd"
      ~ops:
        [
          Op.Load { array = "a"; offset = -2; stride = 1 };
          Op.Store { array = "a"; offset = 0; stride = 1 };
        ]
      ~edges:[ (0, 1, 0, 0) ]
  in
  let deps = Memdep.ordering g in
  Alcotest.(check bool) "true dep store->load distance 2" true
    (List.exists
       (fun (d : Memdep.t) -> d.src = 1 && d.dst = 0 && d.distance = 2)
       deps)

let test_memdep_different_arrays () =
  let g =
    mk_mem
      [
        Op.Store { array = "a"; offset = 0; stride = 1 };
        Op.Store { array = "b"; offset = 0; stride = 1 };
      ]
  in
  Alcotest.(check int) "no conflict across arrays" 0 (List.length (Memdep.ordering g))

let test_memdep_non_intersecting () =
  let g =
    mk_mem
      [
        Op.Store { array = "a"; offset = 0; stride = 2 };
        Op.Load { array = "a"; offset = 1; stride = 2 };
      ]
  in
  Alcotest.(check int) "disjoint lattices" 0 (List.length (Memdep.ordering g))

let test_memdep_stride0 () =
  let g =
    mk_mem
      [
        Op.Store { array = "a"; offset = 3; stride = 0 };
        Op.Store { array = "a"; offset = 3; stride = 0 };
      ]
  in
  Alcotest.(check int) "two constraints" 2 (List.length (Memdep.ordering g))

let test_memdep_dynamic_conservative () =
  let g =
    Graph.create ~name:"dyn"
      ~ops:
        [
          Op.Const 0;
          Op.Store_idx { array = "a" };
          Op.Load { array = "a"; offset = 0; stride = 1 };
        ]
      ~edges:[ (0, 1, 0, 0); (0, 1, 1, 0) ]
  in
  Alcotest.(check int) "conservative pair" 2 (List.length (Memdep.ordering g))

let test_memdep_self_free () =
  let g = mk_mem [ Op.Store { array = "a"; offset = 0; stride = 1 } ] in
  Alcotest.(check int) "no self constraint" 0 (List.length (Memdep.ordering g))

(* ---------- Memory ---------- *)

let test_memory_basics () =
  let m = Memory.create [ ("a", [| 1; 2; 3 |]) ] in
  Alcotest.(check int) "load" 2 (Memory.load m "a" 1);
  Alcotest.(check int) "wrap positive" 1 (Memory.load m "a" 3);
  Alcotest.(check int) "wrap negative" 3 (Memory.load m "a" (-1));
  Memory.store m "a" 4 99;
  Alcotest.(check int) "store wrapped" 99 (Memory.load m "a" 1)

let test_memory_duplicate () =
  Alcotest.check_raises "dup" (Invalid_argument "Memory.create: duplicate array a")
    (fun () -> ignore (Memory.create [ ("a", [| 0 |]); ("a", [| 1 |]) ]))

let test_memory_copy_isolated () =
  let m = Memory.create [ ("a", [| 1; 2 |]) ] in
  let m' = Memory.copy m in
  Memory.store m' "a" 0 42;
  Alcotest.(check int) "original untouched" 1 (Memory.load m "a" 0);
  Alcotest.(check bool) "not equal now" false (Memory.equal m m')

let test_memory_diff () =
  let a = Memory.create [ ("x", [| 1; 2 |]) ] in
  let b = Memory.create [ ("x", [| 1; 5 |]) ] in
  Alcotest.(check bool) "diff found" true (Memory.diff a b = [ ("x", 1, 2, 5) ])

(* ---------- Interp ---------- *)

let test_interp_chain () =
  let b = Builder.create ~name:"t" in
  let x = Builder.load b "a" ~offset:0 ~stride:1 in
  let y = Builder.op2 b Op.Add x (Builder.const b 10) in
  let _ = Builder.store b "o" ~offset:0 ~stride:1 y in
  let g = Builder.finish b in
  let mem = Memory.create [ ("a", [| 1; 2; 3; 4 |]); ("o", Array.make 4 0) ] in
  Interp.run g mem ~iterations:4;
  Alcotest.(check (array int)) "outputs" [| 11; 12; 13; 14 |] (Memory.get mem "o")

let test_interp_carried_initial_zero () =
  let b = Builder.create ~name:"t" in
  let x = Builder.load b "a" ~offset:0 ~stride:1 in
  let acc = Builder.defer b Op.Add in
  Builder.connect b ~src:x ~dst:acc ~operand:0 ~distance:0;
  Builder.connect b ~src:acc ~dst:acc ~operand:1 ~distance:1;
  let _ = Builder.store b "o" ~offset:0 ~stride:1 acc in
  let g = Builder.finish b in
  let mem = Memory.create [ ("a", [| 1; 2; 3 |]); ("o", Array.make 3 0) ] in
  Interp.run g mem ~iterations:3;
  Alcotest.(check (array int)) "prefix sums" [| 1; 3; 6 |] (Memory.get mem "o")

let test_interp_history () =
  let b = Builder.create ~name:"t" in
  let i = Builder.op0 b Op.Iter in
  let _ = Builder.store b "o" ~offset:0 ~stride:1 i in
  let g = Builder.finish b in
  let mem = Memory.create [ ("o", Array.make 4 0) ] in
  let h = Interp.run_history g mem ~iterations:3 in
  Alcotest.(check int) "iter value in history" 2 h.(2).(0)

let test_interp_determinism () =
  let k = Cgra_kernels.Kernels.find_exn "sobel" in
  let m1 = Cgra_kernels.Kernels.init_memory k in
  let m2 = Cgra_kernels.Kernels.init_memory k in
  Interp.run k.graph m1 ~iterations:10;
  Interp.run k.graph m2 ~iterations:10;
  Alcotest.(check bool) "same results" true (Memory.equal m1 m2)

(* ---------- Dot ---------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_dot_export () =
  let g =
    Graph.create ~name:"d" ~ops:[ Op.Abs; Op.Abs ]
      ~edges:[ (0, 1, 0, 0); (1, 0, 0, 2) ]
  in
  let s = Dot.to_dot g in
  Alcotest.(check bool) "has digraph" true (contains s "digraph");
  Alcotest.(check bool) "has dashed carried edge" true (contains s "dashed");
  Alcotest.(check bool) "labels distance" true (contains s "d=2")

(* ---------- Synthetic ---------- *)

let test_synthetic_valid_and_deterministic () =
  for seed = 0 to 19 do
    let cfg =
      {
        Cgra_kernels.Synthetic.n_ops = 14;
        mem_fraction = 0.3;
        recurrence = seed mod 2 = 0;
      }
    in
    let g1 = Cgra_kernels.Synthetic.generate ~seed cfg in
    let g2 = Cgra_kernels.Synthetic.generate ~seed cfg in
    Alcotest.(check bool) "deterministic" true (Graph.equal_structure g1 g2);
    let mem = Cgra_kernels.Synthetic.memory_for ~seed g1 in
    Interp.run g1 mem ~iterations:5
  done

let prop_synthetic_recurrence =
  QCheck.Test.make ~name:"synthetic recurrence raises RecMII" ~count:30
    QCheck.(int_range 0 1000)
    (fun seed ->
      let cfg = { Cgra_kernels.Synthetic.default with recurrence = true } in
      Analysis.rec_mii (Cgra_kernels.Synthetic.generate ~seed cfg) >= 2)

let () =
  Alcotest.run "dfg"
    [
      ( "op",
        [
          Alcotest.test_case "arity" `Quick test_op_arity;
          Alcotest.test_case "arith" `Quick test_op_arith;
          Alcotest.test_case "cmp/select" `Quick test_op_cmp_select;
          Alcotest.test_case "clamp" `Quick test_op_clamp;
          Alcotest.test_case "iter/const/route" `Quick test_op_iter_const_route;
          Alcotest.test_case "memory semantics" `Quick test_op_memory_semantics;
          Alcotest.test_case "arity mismatch" `Quick test_op_arity_mismatch;
          Alcotest.test_case "mem predicates" `Quick test_op_mem_predicates;
        ] );
      ( "graph",
        [
          Alcotest.test_case "create" `Quick test_graph_create;
          Alcotest.test_case "rejects missing operand" `Quick
            test_graph_rejects_missing_operand;
          Alcotest.test_case "rejects duplicate operand" `Quick
            test_graph_rejects_duplicate_operand;
          Alcotest.test_case "rejects bad operand index" `Quick
            test_graph_rejects_bad_operand_index;
          Alcotest.test_case "rejects out of range" `Quick test_graph_rejects_out_of_range;
          Alcotest.test_case "rejects negative distance" `Quick
            test_graph_rejects_negative_distance;
          Alcotest.test_case "rejects zero-distance cycle" `Quick
            test_graph_rejects_zero_distance_cycle;
          Alcotest.test_case "accepts carried cycle" `Quick test_graph_accepts_carried_cycle;
          Alcotest.test_case "topo order" `Quick test_graph_topo_order;
          Alcotest.test_case "preds sorted" `Quick test_graph_preds_sorted;
          Alcotest.test_case "max distance" `Quick test_graph_max_distance;
        ] );
      ( "builder",
        [
          Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "arity check" `Quick test_builder_arity_check;
          Alcotest.test_case "defer cycle" `Quick test_builder_defer_cycle;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "res_mii" `Quick test_analysis_res_mii;
          Alcotest.test_case "rec_mii" `Quick test_analysis_rec_mii;
          Alcotest.test_case "feasible_ii" `Quick test_analysis_feasible;
          Alcotest.test_case "asap/height" `Quick test_analysis_asap_height;
          Alcotest.test_case "sccs" `Quick test_analysis_sccs;
          Alcotest.test_case "rec_mii_with ordering" `Quick test_analysis_rec_mii_with;
        ] );
      ( "memdep",
        [
          Alcotest.test_case "load/load free" `Quick test_memdep_load_load;
          Alcotest.test_case "anti dependence" `Quick test_memdep_anti_dependence;
          Alcotest.test_case "true dependence" `Quick test_memdep_true_dependence;
          Alcotest.test_case "different arrays" `Quick test_memdep_different_arrays;
          Alcotest.test_case "disjoint lattices" `Quick test_memdep_non_intersecting;
          Alcotest.test_case "stride 0 pair" `Quick test_memdep_stride0;
          Alcotest.test_case "dynamic conservative" `Quick test_memdep_dynamic_conservative;
          Alcotest.test_case "no self constraint" `Quick test_memdep_self_free;
        ] );
      ( "memory",
        [
          Alcotest.test_case "basics" `Quick test_memory_basics;
          Alcotest.test_case "duplicate" `Quick test_memory_duplicate;
          Alcotest.test_case "copy isolation" `Quick test_memory_copy_isolated;
          Alcotest.test_case "diff" `Quick test_memory_diff;
        ] );
      ( "interp",
        [
          Alcotest.test_case "chain" `Quick test_interp_chain;
          Alcotest.test_case "carried initial zero" `Quick test_interp_carried_initial_zero;
          Alcotest.test_case "history" `Quick test_interp_history;
          Alcotest.test_case "determinism" `Quick test_interp_determinism;
        ] );
      ("dot", [ Alcotest.test_case "export" `Quick test_dot_export ]);
      ( "synthetic",
        [
          Alcotest.test_case "valid and deterministic" `Quick
            test_synthetic_valid_and_deterministic;
          QCheck_alcotest.to_alcotest prop_synthetic_recurrence;
        ] );
    ]
