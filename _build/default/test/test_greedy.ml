open Cgra_core

let run = Greedy.run

(* every (col, time) slot holds at most one page-instance, columns are in
   range, and the three-case audit found no dependency violations *)
let check_invariants (r : Greedy.result_t) =
  let seen = Hashtbl.create 256 in
  Array.iteri
    (fun step row ->
      Array.iteri
        (fun page (p : Greedy.placement) ->
          Alcotest.(check bool)
            (Printf.sprintf "col in range (step %d page %d)" step page)
            true
            (p.col >= 0 && p.col < r.m);
          Alcotest.(check bool) "time nonnegative" true (p.time >= 0);
          Alcotest.(check bool)
            (Printf.sprintf "slot free (%d,%d)" p.col p.time)
            false
            (Hashtbl.mem seen (p.col, p.time));
          Hashtbl.add seen (p.col, p.time) ())
        row)
    r.place

let test_invariants_sweep () =
  List.iter
    (fun (n, m, ii) ->
      let r = run ~n ~m ~ii_p:ii ~iterations:12 in
      check_invariants r)
    [
      (4, 4, 1); (4, 3, 1); (4, 2, 1); (4, 1, 1); (6, 5, 1); (6, 4, 2); (6, 3, 2);
      (8, 7, 2); (8, 4, 2); (8, 2, 3); (16, 8, 2); (16, 5, 1); (9, 4, 2);
    ]

let test_no_dep_violations_common_cases () =
  (* the paper's cases hold cleanly when M divides N or is close to it *)
  List.iter
    (fun (n, m, ii) ->
      let r = run ~n ~m ~ii_p:ii ~iterations:20 in
      Alcotest.(check int)
        (Printf.sprintf "N=%d M=%d: no violations" n m)
        0 r.dep_violations)
    [ (4, 4, 1); (4, 2, 1); (4, 1, 2); (6, 3, 2); (6, 2, 1); (8, 4, 2); (8, 2, 1);
      (16, 8, 1); (16, 4, 2) ]

let test_case_counts_cover_placements () =
  let n = 6 and m = 4 and ii = 2 and iterations = 15 in
  let r = run ~n ~m ~ii_p:ii ~iterations in
  let placements_after_init = n * ((iterations * ii) - 1) in
  Alcotest.(check int) "cases partition the fill phase" placements_after_init
    (r.case_two_hop + r.case_one_hop + r.case_zero_hop + r.fallbacks)

let test_steady_ii_optimal_divisors () =
  (* measured steady-state II equals the fold optimum when M | N *)
  List.iter
    (fun (n, m, ii) ->
      let r = run ~n ~m ~ii_p:ii ~iterations:40 in
      let optimal = Transform.ii_q ~ii_p:ii ~n_used:n ~target_pages:m in
      Alcotest.(check bool)
        (Printf.sprintf "N=%d M=%d ii=%d: steady %.2f vs optimal %d" n m ii r.steady_ii
           optimal)
        true
        (Float.abs (r.steady_ii -. float_of_int optimal) < 0.01))
    [ (4, 4, 1); (4, 2, 1); (4, 1, 1); (6, 3, 2); (6, 2, 1); (8, 4, 2); (8, 2, 2);
      (8, 1, 1); (16, 8, 1); (16, 4, 1) ]

let test_steady_ii_near_optimal_others () =
  (* for non-divisors the greedy algorithm stays within 2x of optimal *)
  List.iter
    (fun (n, m, ii) ->
      let r = run ~n ~m ~ii_p:ii ~iterations:40 in
      let optimal = float_of_int (Transform.ii_q ~ii_p:ii ~n_used:n ~target_pages:m) in
      Alcotest.(check bool)
        (Printf.sprintf "N=%d M=%d: steady %.2f <= 2x optimal %.0f" n m r.steady_ii
           optimal)
        true
        (r.steady_ii <= (2.0 *. optimal) +. 0.01))
    [ (6, 5, 1); (6, 4, 1); (8, 7, 1); (8, 5, 2); (8, 3, 1); (16, 7, 1) ]

let test_fig7_configuration () =
  (* N=6 -> M=5 with II=1, Fig. 7's example: one tail page *)
  let r = run ~n:6 ~m:5 ~ii_p:1 ~iterations:30 in
  check_invariants r;
  (* init row 0 holds 5 pages at time 0, the tail at a later time in an
     edge column *)
  let first = r.place.(0) in
  let at_time_0 = Array.to_list first |> List.filter (fun (p : Greedy.placement) -> p.time = 0) in
  Alcotest.(check int) "five pages in the first row" 5 (List.length at_time_0);
  let tail =
    Array.to_list first |> List.find (fun (p : Greedy.placement) -> p.time > 0)
  in
  Alcotest.(check bool) "tail in an edge column" true (tail.col = 0 || tail.col = 4);
  (* all three PlacePage cases appear, as in the figure *)
  Alcotest.(check bool) "two-hop used" true (r.case_two_hop > 0);
  Alcotest.(check bool) "one-hop used" true (r.case_one_hop > 0);
  Alcotest.(check bool) "zero-hop used" true (r.case_zero_hop > 0)

let test_m1_serializes_pages () =
  let r = run ~n:4 ~m:1 ~ii_p:1 ~iterations:10 in
  Alcotest.(check int) "no violations" 0 r.dep_violations;
  (* single column: pages execute strictly in sequence *)
  Alcotest.(check bool) "steady ii = N" true (Float.abs (r.steady_ii -. 4.0) < 0.01)

let test_m_equals_n_identity_rate () =
  let r = run ~n:8 ~m:8 ~ii_p:3 ~iterations:30 in
  Alcotest.(check bool) "full fabric keeps II" true
    (Float.abs (r.steady_ii -. 3.0) < 0.01)

let test_invalid_args () =
  let expect f = try ignore (f ()); Alcotest.fail "expected failure" with Invalid_argument _ -> () in
  expect (fun () -> run ~n:4 ~m:5 ~ii_p:1 ~iterations:4);
  expect (fun () -> run ~n:4 ~m:0 ~ii_p:1 ~iterations:4);
  expect (fun () -> run ~n:4 ~m:2 ~ii_p:0 ~iterations:4);
  expect (fun () -> run ~n:4 ~m:2 ~ii_p:1 ~iterations:1)

let test_deterministic () =
  let a = run ~n:6 ~m:4 ~ii_p:2 ~iterations:10 in
  let b = run ~n:6 ~m:4 ~ii_p:2 ~iterations:10 in
  Alcotest.(check bool) "same placements" true (a.place = b.place)

let prop_greedy_constraints =
  QCheck.Test.make ~name:"greedy keeps columns within one hop of dependencies"
    ~count:60
    QCheck.(triple (int_range 2 12) (int_range 1 12) (int_range 1 3))
    (fun (n, m, ii) ->
      QCheck.assume (m <= n);
      let r = run ~n ~m ~ii_p:ii ~iterations:8 in
      (* re-audit every fill placement *)
      let ok = ref true in
      for step = 1 to (8 * ii) - 1 do
        for page = 0 to n - 1 do
          let p = r.place.(step).(page) in
          let d1 = r.place.(step - 1).(((page - 1) + n) mod n) in
          let d2 = r.place.(step - 1).(page) in
          if r.dep_violations = 0 then
            if
              abs (p.col - d1.col) > 1
              || abs (p.col - d2.col) > 1
              || p.time <= d1.time
              || p.time <= d2.time
            then ok := false
        done
      done;
      !ok)

let prop_greedy_no_collisions =
  QCheck.Test.make ~name:"greedy never collides slots" ~count:60
    QCheck.(triple (int_range 1 12) (int_range 1 12) (int_range 1 3))
    (fun (n, m, ii) ->
      QCheck.assume (m <= n);
      let r = run ~n ~m ~ii_p:ii ~iterations:6 in
      let seen = Hashtbl.create 128 in
      Array.for_all
        (fun row ->
          Array.for_all
            (fun (p : Greedy.placement) ->
              if Hashtbl.mem seen (p.col, p.time) then false
              else begin
                Hashtbl.add seen (p.col, p.time) ();
                true
              end)
            row)
        r.place)

let () =
  Alcotest.run "greedy"
    [
      ( "algorithm-1",
        [
          Alcotest.test_case "invariants sweep" `Quick test_invariants_sweep;
          Alcotest.test_case "no violations in common cases" `Quick
            test_no_dep_violations_common_cases;
          Alcotest.test_case "case counts partition" `Quick
            test_case_counts_cover_placements;
          Alcotest.test_case "steady II optimal for divisors" `Quick
            test_steady_ii_optimal_divisors;
          Alcotest.test_case "steady II near-optimal otherwise" `Quick
            test_steady_ii_near_optimal_others;
          Alcotest.test_case "Fig. 7 configuration" `Quick test_fig7_configuration;
          Alcotest.test_case "M=1 serializes" `Quick test_m1_serializes_pages;
          Alcotest.test_case "M=N keeps II" `Quick test_m_equals_n_identity_rate;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_greedy_constraints;
          QCheck_alcotest.to_alcotest prop_greedy_no_collisions;
        ] );
    ]
