open Cgra_arch
open Cgra_dfg
open Cgra_mapper
open Cgra_verify

let arch size page_pes = Option.get (Cgra.standard ~size ~page_pes)

let map_ok kind a g =
  match Scheduler.map kind a g with
  | Ok m -> m
  | Error e -> Alcotest.failf "mapping failed: %s" e

let has_rule r vs = List.exists (fun (v : Verify.violation) -> v.rule = r) vs

(* A two-node producer/consumer graph whose placements the tests position
   by hand. *)
let pair_graph () =
  let b = Builder.create ~name:"pair" in
  let x = Builder.load b "in0" ~offset:0 ~stride:1 in
  let _ = Builder.store b "out" ~offset:0 ~stride:1 x in
  Builder.finish b

let pair_mapping ?(paged = true) ?(ii = 2) ~producer ~ptime ~consumer ~ctime a =
  let g = pair_graph () in
  {
    Mapping.arch = a;
    graph = g;
    ii;
    placements =
      [|
        Some { Mapping.pe = producer; time = ptime };
        Some { Mapping.pe = consumer; time = ctime };
      |];
    routes = [];
    paged;
  }

let coord row col = Coord.make ~row ~col

(* ---------- acceptance: everything the compiler produces passes ---------- *)

let test_accepts_scheduler_output (size, page_pes) kind () =
  let a = arch size page_pes in
  List.iter
    (fun (k : Cgra_kernels.Kernels.t) ->
      let m = map_ok kind a k.graph in
      match Verify.mapping m with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s rejected: %s" k.name (String.concat "; " es))
    Cgra_kernels.Kernels.all

let test_agrees_with_validator () =
  let a = arch 4 4 in
  List.iter
    (fun (k : Cgra_kernels.Kernels.t) ->
      List.iter
        (fun kind ->
          let m = map_ok kind a k.graph in
          Alcotest.(check bool)
            (k.name ^ " checker and validator agree")
            (Mapping.validate m = Ok ())
            (Verify.mapping m = Ok ()))
        [ Scheduler.Unconstrained; Scheduler.Paged ])
    Cgra_kernels.Kernels.all

(* ---------- rejection: hand-built violations of each rule ---------- *)

let test_rejects_ring_violation () =
  (* consumer on page 0 reads from a producer on page 1: data may only
     flow forward along the ring *)
  let a = arch 4 4 in
  let m =
    pair_mapping a ~producer:(coord 0 2) ~ptime:0 ~consumer:(coord 0 1) ~ctime:1
  in
  let vs = Verify.check m in
  Alcotest.(check bool) "ring violation found" true (has_rule Verify.Ring vs);
  Alcotest.(check bool) "validator agrees" true (Mapping.validate m <> Ok ())

let test_accepts_forward_ring_step () =
  (* the mirror image — page 0 feeding page 1 — is legal *)
  let a = arch 4 4 in
  let m =
    pair_mapping a ~producer:(coord 0 1) ~ptime:0 ~consumer:(coord 0 2) ~ctime:1
  in
  Alcotest.(check bool) "accepted" true (Verify.mapping m = Ok ())

let test_rejects_continuity_violation () =
  let a = arch 4 4 in
  let m =
    pair_mapping ~paged:false a ~producer:(coord 0 0) ~ptime:0 ~consumer:(coord 3 3)
      ~ctime:1
  in
  Alcotest.(check bool) "continuity violation found" true
    (has_rule Verify.Continuity (Verify.check m))

let test_rejects_premature_read () =
  (* adjacent PEs but the consumer fires in the same cycle the producer
     does: the value does not exist yet *)
  let a = arch 4 4 in
  let m =
    pair_mapping ~paged:false a ~producer:(coord 0 0) ~ptime:0 ~consumer:(coord 0 1)
      ~ctime:0
  in
  Alcotest.(check bool) "premature read found" true
    (has_rule Verify.Continuity (Verify.check m))

let test_rejects_slot_conflict () =
  (* same PE, times 0 and 2 under ii = 2: both land in modulo-slot 0 *)
  let a = arch 4 4 in
  let m =
    pair_mapping a ~producer:(coord 0 0) ~ptime:0 ~consumer:(coord 0 0) ~ctime:2
  in
  Alcotest.(check bool) "slot conflict found" true
    (has_rule Verify.Slot_conflict (Verify.check m))

let test_rejects_rf_overflow () =
  (* a value alive 100 cycles at ii = 2 needs 50 rotating registers;
     capacity is 16 *)
  let a = arch 4 4 in
  let m =
    pair_mapping a ~producer:(coord 0 2) ~ptime:0 ~consumer:(coord 0 3) ~ctime:100
  in
  let vs = Verify.check m in
  Alcotest.(check bool) "rf overflow found" true (has_rule Verify.Rf_capacity vs)

let test_rejects_noncontiguous_pages () =
  (* occupants on pages 0 and 2 with nothing on page 1 *)
  let a = arch 4 2 in
  let m =
    pair_mapping a ~producer:(coord 0 0) ~ptime:0 ~consumer:(coord 0 1) ~ctime:1
  in
  (* pe (0,0) is page 0 and (0,1) is page 0 on 1x2 tiles; move consumer *)
  let m =
    { m with
      Mapping.placements =
        [|
          Some { Mapping.pe = coord 0 0; time = 0 };
          Some { Mapping.pe = coord 1 2; time = 1 };
        |];
    }
  in
  let vs = Verify.check m in
  Alcotest.(check bool) "non-contiguous pages found" true (has_rule Verify.Ring vs)

let test_rejects_unplaced_node () =
  let a = arch 4 4 in
  let g = pair_graph () in
  let m =
    {
      Mapping.arch = a;
      graph = g;
      ii = 1;
      placements = [| Some { Mapping.pe = coord 0 0; time = 0 }; None |];
      routes = [];
      paged = false;
    }
  in
  Alcotest.(check bool) "unplaced node found" true
    (has_rule Verify.Schedule (Verify.check m))

let test_rejects_foreign_route () =
  let a = arch 4 4 in
  let m =
    pair_mapping ~paged:false a ~producer:(coord 0 0) ~ptime:0 ~consumer:(coord 0 1)
      ~ctime:1
  in
  let bogus =
    { Mapping.edge = { Graph.src = 1; dst = 0; operand = 3; distance = 0 }; hops = [] }
  in
  let m = { m with Mapping.routes = [ bogus ] } in
  Alcotest.(check bool) "foreign route found" true
    (has_rule Verify.Routes (Verify.check m))

let test_violation_rendering () =
  let a = arch 4 4 in
  let m =
    pair_mapping a ~producer:(coord 0 2) ~ptime:0 ~consumer:(coord 0 1) ~ctime:1
  in
  match Verify.mapping m with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error es ->
      Alcotest.(check bool) "rendered with rule prefix" true
        (List.exists (fun s -> String.length s > 5 && String.sub s 0 5 = "ring:") es)

(* ---------- acceptance at non-zero base pages ---------- *)

let test_accepts_relocated_base () =
  (* the same legal pair shifted one page up the ring: contiguous pages
     [1; 2] must be accepted even though they are not a prefix *)
  let a = arch 4 4 in
  let m =
    pair_mapping a ~producer:(coord 0 2) ~ptime:0 ~consumer:(coord 1 2) ~ctime:1
  in
  (* both on page 1 *)
  Alcotest.(check (list int)) "pages used" [ 1 ] (Mapping.pages_used m);
  Alcotest.(check bool) "accepted at base 1" true (Verify.mapping m = Ok ());
  Alcotest.(check bool) "validator also accepts" true (Mapping.validate m = Ok ())

(* ---------- bus-aware mappings through the independent checkers ---------- *)

let test_bus_aware_accepted_and_within_budget () =
  (* every bandwidth-aware mapping must clear the independent checker
     AND the Meld co-residency checker's Bus_capacity walk (solo
     resident), and its per-(row, slot) memory-port counts — recounted
     here from the raw placements, not via the scheduler's own tables —
     must never exceed the row-bus budget *)
  List.iter
    (fun (size, page_pes) ->
      let a = arch size page_pes in
      List.iter
        (fun (k : Cgra_kernels.Kernels.t) ->
          let tag = Printf.sprintf "%s %dx%d p%d" k.name size size page_pes in
          let m = map_ok Scheduler.Paged a k.graph in
          (match Verify.mapping m with
          | Ok () -> ()
          | Error es ->
              Alcotest.failf "%s rejected by Verify: %s" tag (String.concat "; " es));
          (match Meld.check_mappings [ m ] with
          | Ok _ -> ()
          | Error vs ->
              Alcotest.failf "%s rejected by Meld: %s" tag
                (String.concat "; "
                   (List.map (fun (v : Meld.violation) -> v.detail) vs)));
          let counts = Hashtbl.create 32 in
          Array.iteri
            (fun id p ->
              match p with
              | Some (p : Mapping.placement)
                when Op.is_mem (Graph.node m.graph id).op ->
                  let key = (p.pe.Coord.row, p.time mod m.ii) in
                  Hashtbl.replace counts key
                    (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
              | _ -> ())
            m.placements;
          Hashtbl.iter
            (fun (row, slot) n ->
              if n > a.Cgra.mem_ports_per_row then
                Alcotest.failf "%s: row %d slot %d issues %d accesses (budget %d)"
                  tag row slot n a.Cgra.mem_ports_per_row)
            counts)
        Cgra_kernels.Kernels.all)
    [ (4, 4); (6, 2); (8, 8) ]

(* ---------- validator / checker differential agreement ---------- *)

let test_fuzzed_agreement () =
  (* replay the fuzz generator and push every mapping — the source, a
     pe-exact fold, and randomly perturbed mutants — through both the
     mapper's own [Mapping.validate] and the independent [Verify.mapping]:
     the two must agree on accept/reject everywhere *)
  let agree ~what ?(check_mem = true) m =
    let v = Mapping.validate ~check_mem m = Ok () in
    let c = Verify.mapping ~check_mem m = Ok () in
    if v <> c then Alcotest.failf "%s: validator says %b, checker says %b" what v c;
    v
  in
  let mapped = ref 0 and mutants = ref 0 and mutant_rejects = ref 0 in
  let fabrics = Array.of_list Fuzz.default_fabrics in
  List.iter
    (fun seed ->
      let rng = Cgra_util.Rng.create ~seed in
      let size, page_pes = Cgra_util.Rng.choose rng fabrics in
      let a = arch size page_pes in
      let cfg =
        {
          Cgra_kernels.Synthetic.n_ops = Cgra_util.Rng.int_in rng 8 15;
          mem_fraction = 0.15 +. Cgra_util.Rng.float rng 0.15;
          recurrence = Cgra_util.Rng.bool rng;
        }
      in
      let g = Cgra_kernels.Synthetic.generate ~seed cfg in
      match Scheduler.map ~seed Scheduler.Paged a g with
      | Error _ -> () (* a capacity miss, not an invariant failure *)
      | Ok m ->
          incr mapped;
          if not (agree ~what:(Printf.sprintf "seed %d source" seed) m) then
            Alcotest.failf "seed %d: scheduler output rejected by both" seed;
          let n = Mapping.n_pages_used m in
          (match
             Cgra_core.Transform.fold ~base_page:0 ~target_pages:(max 1 (n / 2)) m
           with
          | Error _ -> ()
          | Ok sh ->
              if sh.Cgra_core.Transform.pe_exact then
                ignore
                  (agree ~check_mem:false
                     ~what:(Printf.sprintf "seed %d fold" seed)
                     sh.Cgra_core.Transform.mapping));
          (* mutants: nudge one placement in time or space *)
          for i = 1 to 4 do
            let pl = Array.copy m.Mapping.placements in
            let idx = Cgra_util.Rng.int rng (Array.length pl) in
            (match pl.(idx) with
            | None -> ()
            | Some p ->
                let p' =
                  if Cgra_util.Rng.bool rng then
                    { p with Mapping.time = p.time + Cgra_util.Rng.int_in rng 1 3 }
                  else
                    {
                      p with
                      Mapping.pe =
                        Coord.make
                          ~row:(Cgra_util.Rng.int rng a.Cgra.grid.Grid.rows)
                          ~col:(Cgra_util.Rng.int rng a.Cgra.grid.Grid.cols);
                    }
                in
                pl.(idx) <- Some p');
            let mutant = { m with Mapping.placements = pl } in
            incr mutants;
            if not (agree ~what:(Printf.sprintf "seed %d mutant %d" seed i) mutant)
            then incr mutant_rejects
          done)
    (List.init 60 Fun.id);
  Alcotest.(check bool) "most seeds mapped" true (!mapped >= 45);
  Alcotest.(check bool) "mutants exercised" true (!mutants >= 100);
  Alcotest.(check bool) "some mutants rejected" true (!mutant_rejects > 0)

(* ---------- the fuzz corpus ---------- *)

let test_fuzz_corpus () =
  let seeds = List.init 50 Fun.id in
  let o = Fuzz.run ~seeds () in
  (match o.failures with
  | [] -> ()
  | fs -> Alcotest.failf "fuzz failures:\n%s" (String.concat "\n" fs));
  Alcotest.(check int) "all cases attempted" 50 o.cases;
  Alcotest.(check bool) "most cases mapped" true (o.mapped >= 40);
  Alcotest.(check bool) "folds exercised" true (o.folds >= 100);
  Alcotest.(check bool) "non-zero bases exercised" true (o.nonzero_base_folds > 0);
  Alcotest.(check bool) "refolds from non-zero bases exercised" true (o.refolds > 0);
  Alcotest.(check bool) "oracle exercised" true (o.oracle_runs > o.folds / 2)

let test_fuzz_deterministic () =
  let seeds = List.init 5 (fun i -> 100 + i) in
  let a = Fuzz.run ~seeds () in
  let b = Fuzz.run ~seeds () in
  Alcotest.(check bool) "identical outcomes" true (a = b)

let () =
  Alcotest.run "verify"
    [
      ( "acceptance",
        [
          Alcotest.test_case "scheduler output 4x4 p4 paged" `Quick
            (test_accepts_scheduler_output (4, 4) Scheduler.Paged);
          Alcotest.test_case "scheduler output 4x4 p4 unconstrained" `Quick
            (test_accepts_scheduler_output (4, 4) Scheduler.Unconstrained);
          Alcotest.test_case "scheduler output 4x4 p2 paged" `Quick
            (test_accepts_scheduler_output (4, 2) Scheduler.Paged);
          Alcotest.test_case "scheduler output 6x6 p8 paged" `Quick
            (test_accepts_scheduler_output (6, 8) Scheduler.Paged);
          Alcotest.test_case "agrees with Mapping.validate" `Quick
            test_agrees_with_validator;
          Alcotest.test_case "forward ring step accepted" `Quick
            test_accepts_forward_ring_step;
          Alcotest.test_case "relocated base accepted" `Quick test_accepts_relocated_base;
          Alcotest.test_case "bus-aware mappings pass Verify + Meld" `Quick
            test_bus_aware_accepted_and_within_budget;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "ring violation" `Quick test_rejects_ring_violation;
          Alcotest.test_case "continuity violation" `Quick
            test_rejects_continuity_violation;
          Alcotest.test_case "premature read" `Quick test_rejects_premature_read;
          Alcotest.test_case "slot conflict" `Quick test_rejects_slot_conflict;
          Alcotest.test_case "register-file overflow" `Quick test_rejects_rf_overflow;
          Alcotest.test_case "non-contiguous pages" `Quick
            test_rejects_noncontiguous_pages;
          Alcotest.test_case "unplaced node" `Quick test_rejects_unplaced_node;
          Alcotest.test_case "foreign route" `Quick test_rejects_foreign_route;
          Alcotest.test_case "rendering" `Quick test_violation_rendering;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "validator and checker agree on fuzzed mappings"
            `Quick test_fuzzed_agreement;
          Alcotest.test_case "fixed 50-seed corpus is clean" `Quick test_fuzz_corpus;
          Alcotest.test_case "deterministic" `Quick test_fuzz_deterministic;
        ] );
    ]
