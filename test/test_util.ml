open Cgra_util

let check_int = Alcotest.(check int)

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 13 in
    Alcotest.(check bool) "in [0,13)" true (x >= 0 && x < 13)
  done

let test_rng_int_in_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_rng_int_covers_range () =
  let r = Rng.create ~seed:3 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Rng.int r 4) <- true
  done;
  Alcotest.(check bool) "all residues appear" true (Array.for_all Fun.id seen)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues the stream" xa xb;
  ignore (Rng.bits64 a);
  let xa' = Rng.bits64 a and xb' = Rng.bits64 b in
  Alcotest.(check bool) "then diverges by position" true (xa' <> xb' || xa' = xb')

let test_rng_split_independent () =
  let a = Rng.create ~seed:11 in
  let c = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.bits64 a) in
  let ys = List.init 10 (fun _ -> Rng.bits64 c) in
  Alcotest.(check bool) "split stream differs" true (xs <> ys)

let test_rng_float_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_rng_bool_balanced () =
  let r = Rng.create ~seed:13 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool r then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 400 && !trues < 600)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:17 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_rng_choose () =
  let r = Rng.create ~seed:19 in
  for _ = 1 to 100 do
    let x = Rng.choose r [| 1; 2; 3 |] in
    Alcotest.(check bool) "member" true (List.mem x [ 1; 2; 3 ])
  done

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:23 in
  let n = 5000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential r ~mean:10.0 in
    Alcotest.(check bool) "positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 10" true (mean > 8.5 && mean < 11.5)

(* ---------- Pqueue ---------- *)

let int_q () = Pqueue.empty ~cmp:Int.compare

let test_pqueue_empty () =
  let q = int_q () in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek none" true (Pqueue.peek q = None)

let test_pqueue_sorted () =
  let q = List.fold_left (fun q p -> Pqueue.push q p p) (int_q ()) [ 5; 1; 4; 1; 3 ] in
  let order = List.map fst (Pqueue.to_sorted_list q) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] order

let test_pqueue_fifo_ties () =
  let q = int_q () in
  let q = Pqueue.push q 1 "first" in
  let q = Pqueue.push q 1 "second" in
  let q = Pqueue.push q 0 "zero" in
  let q = Pqueue.push q 1 "third" in
  let vals = List.map snd (Pqueue.to_sorted_list q) in
  Alcotest.(check (list string)) "ties in insertion order"
    [ "zero"; "first"; "second"; "third" ] vals

let test_pqueue_size () =
  let q = int_q () in
  check_int "empty size" 0 (Pqueue.size q);
  let q = Pqueue.push (Pqueue.push q 2 ()) 1 () in
  check_int "two" 2 (Pqueue.size q);
  match Pqueue.pop q with
  | Some (_, q') -> check_int "one after pop" 1 (Pqueue.size q')
  | None -> Alcotest.fail "pop"

let test_pqueue_peek_stable () =
  let q = Pqueue.of_list ~cmp:Int.compare [ (3, "c"); (1, "a"); (2, "b") ] in
  (match Pqueue.peek q with
  | Some (p, v) ->
      check_int "min prio" 1 p;
      Alcotest.(check string) "min value" "a" v
  | None -> Alcotest.fail "peek");
  check_int "peek does not consume" 3 (Pqueue.size q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing order" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let q = Pqueue.of_list ~cmp:Int.compare (List.map (fun x -> (x, x)) xs) in
      let popped = List.map fst (Pqueue.to_sorted_list q) in
      popped = List.sort compare xs)

(* ---------- Stats ---------- *)

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "empty" 0.0 (Stats.mean [])

let test_stats_geomean () =
  check_float "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  check_float "empty" 0.0 (Stats.geomean [])

let test_stats_stddev () =
  check_float "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "single" 0.0 (Stats.stddev [ 1.0 ]);
  check_float "known" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_minmax () =
  check_float "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  Alcotest.check_raises "empty min" (Invalid_argument "Stats.minimum: empty")
    (fun () -> ignore (Stats.minimum []))

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p0" 1.0 (Stats.percentile 0.0 xs);
  check_float "p50" 3.0 (Stats.percentile 50.0 xs);
  check_float "p100" 5.0 (Stats.percentile 100.0 xs);
  check_float "p25 interpolated" 2.0 (Stats.percentile 25.0 xs)

let test_stats_improvement () =
  check_float "2x faster = +100%" 100.0
    (Stats.improvement_percent ~baseline:10.0 ~improved:5.0);
  check_float "same = 0%" 0.0 (Stats.improvement_percent ~baseline:5.0 ~improved:5.0);
  check_float "slower is negative" (-50.0)
    (Stats.improvement_percent ~baseline:5.0 ~improved:10.0)

let test_stats_ratio () =
  check_float "ratio" 50.0 (Stats.ratio_percent 1.0 2.0);
  check_float "zero denominator" 0.0 (Stats.ratio_percent 1.0 0.0)

(* ---------- Pool ---------- *)

let test_pool_order_preserved () =
  let xs = List.init 200 Fun.id in
  let f x = (x * x) + 7 in
  Alcotest.(check (list int))
    "parallel = sequential, in order" (List.map f xs)
    (Pool.parallel_map ~domains:4 f xs)

let test_pool_domains1_is_sequential () =
  let xs = List.init 50 Fun.id in
  let calls = ref [] in
  let f x =
    calls := x :: !calls;
    x * 2
  in
  let out = Pool.parallel_map ~domains:1 f xs in
  Alcotest.(check (list int)) "results" (List.map (fun x -> x * 2) xs) out;
  Alcotest.(check (list int)) "called in input order, on this domain" xs
    (List.rev !calls)

let test_pool_exception_propagates () =
  let f x = if x >= 50 then failwith (string_of_int x) else x in
  List.iter
    (fun domains ->
      match Pool.parallel_map ~domains f (List.init 100 Fun.id) with
      | _ -> Alcotest.failf "no exception at %d domains" domains
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "earliest failure wins at %d domains" domains)
            "50" msg)
    [ 1; 4 ]

let test_pool_filter_map () =
  let xs = List.init 100 Fun.id in
  let f x = if x mod 3 = 0 then Some (x * 10) else None in
  Alcotest.(check (list int))
    "survivors keep input order" (List.filter_map f xs)
    (Pool.parallel_filter_map ~domains:4 f xs)

let test_pool_reusable () =
  Pool.with_pool ~domains:3 (fun p ->
      (* requested width, clamped to the machine's cores *)
      Alcotest.(check int) "width"
        (min 3 (Domain.recommended_domain_count ()))
        (Pool.width p);
      let xs = List.init 64 Fun.id in
      Alcotest.(check (list int)) "first batch" (List.map succ xs)
        (Pool.map p succ xs);
      Alcotest.(check (list int))
        "second batch on the same pool"
        (List.map (fun x -> x - 1) xs)
        (Pool.map p (fun x -> x - 1) xs);
      (* nested use: a task fans out on the pool it is running on *)
      let nested =
        Pool.map p (fun x -> List.fold_left ( + ) 0 (Pool.map p (( * ) x) [ 1; 2; 3 ])) xs
      in
      Alcotest.(check (list int)) "nested batches" (List.map (fun x -> 6 * x) xs)
        nested)

let test_pool_shutdown_idempotent () =
  let p = Pool.create ~domains:2 () in
  Alcotest.(check (list int)) "map" [ 2; 4 ] (Pool.map p (( * ) 2) [ 1; 2 ]);
  Pool.shutdown p;
  Pool.shutdown p

let test_pool_env_default () =
  Alcotest.(check bool) "width >= 1" true (Pool.domains_from_env () >= 1)

(* burn deterministic CPU so slow/fast candidate orderings are real *)
let spin n =
  let acc = ref 0 in
  for i = 1 to n * 1000 do
    acc := !acc + (i * i)
  done;
  ignore !acc

let test_race_deterministic_winner () =
  (* adversarial ordering: the lower a candidate's index, the slower it
     is, so higher-index successes finish first — the lowest succeeding
     index must still win *)
  let xs = List.init 16 Fun.id in
  let f x =
    spin (16 - x);
    if x >= 3 then Some (x * 100) else None
  in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          match Pool.race p f xs with
          | Some (3, 300) -> ()
          | Some (x, y) ->
              Alcotest.failf "winner (%d, %d) at %d domains, wanted (3, 300)" x y
                domains
          | None -> Alcotest.failf "no winner at %d domains" domains))
    [ 1; 2; 4 ]

let test_race_cancellation_skips () =
  (* an instant success at index 0 dooms everything behind it: at most
     the candidates already in flight ever run *)
  let n = 200 in
  let evaluated = Atomic.make 0 in
  let f x =
    Atomic.incr evaluated;
    if x = 0 then Some () else (spin 5; None)
  in
  Pool.with_pool ~domains:4 (fun p ->
      match Pool.race p f (List.init n Fun.id) with
      | Some (0, ()) ->
          let e = Atomic.get evaluated in
          Alcotest.(check bool)
            (Printf.sprintf "doomed candidates skipped (%d of %d ran)" e n)
            true (e < n)
      | Some (x, ()) -> Alcotest.failf "wrong winner %d" x
      | None -> Alcotest.fail "no winner")

let test_race_mid_flight_doomed () =
  (* a long-running loser observes [doomed] turning true once the winner
     (index 0) lands, and can abandon its work *)
  let aborted = Atomic.make 0 in
  let f ~doomed x =
    if x = 0 then Some ()
    else begin
      let gave_up = ref false in
      (try
         for _ = 1 to 10_000 do
           spin 1;
           if doomed () then raise Exit
         done
       with Exit -> gave_up := true);
      if !gave_up then Atomic.incr aborted;
      None
    end
  in
  Pool.with_pool ~domains:4 (fun p ->
      match Pool.race_poll p f (List.init 8 Fun.id) with
      | Some (0, ()) -> ()
      | Some (x, ()) -> Alcotest.failf "wrong winner %d" x
      | None -> Alcotest.fail "no winner")

let test_race_exception_semantics () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          (* failure before any success: the earliest failure propagates,
             as in Pool.map *)
          (match
             Pool.race p (fun x -> if x = 10 then failwith "boom" else None) xs
           with
          | _ -> Alcotest.failf "no exception at %d domains" domains
          | exception Failure msg ->
              Alcotest.(check string)
                (Printf.sprintf "earliest failure at %d domains" domains)
                "boom" msg);
          (* success before the failure: the winner is returned and the
             speculative failure is discarded *)
          match
            Pool.race p
              (fun x ->
                if x = 50 then failwith "late"
                else if x = 10 then Some x
                else None)
              xs
          with
          | Some (10, 10) -> ()
          | Some (x, _) -> Alcotest.failf "wrong winner %d at %d domains" x domains
          | None -> Alcotest.failf "no winner at %d domains" domains
          | exception Failure _ ->
              Alcotest.failf "failure past the winner leaked at %d domains" domains))
    [ 1; 4 ]

let test_race_width1_lazy () =
  (* sequential fallback: evaluation stops at the winner *)
  let evaluated = ref 0 in
  let f x =
    incr evaluated;
    if x = 5 then Some x else None
  in
  Pool.with_pool ~domains:1 (fun p ->
      match Pool.race p f (List.init 100 Fun.id) with
      | Some (5, 5) -> check_int "nothing past the winner runs" 6 !evaluated
      | _ -> Alcotest.fail "wrong outcome")

let test_race_no_winner () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          Alcotest.(check bool)
            "all-fail race is None" true
            (Pool.race p (fun _ -> None) (List.init 40 Fun.id) = None);
          Alcotest.(check bool)
            "empty race is None" true
            (Pool.race p (fun x -> Some x) [] = None)))
    [ 1; 4 ]

(* ---------- Table ---------- *)

let test_table_render () =
  let s = Table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  check_int "four lines" 4 (List.length lines);
  Alcotest.(check bool) "has rule" true
    (String.for_all (fun c -> c = '-' || c = ' ') (List.nth lines 1))

let test_table_alignment () =
  let s = Table.render ~header:[ "k"; "v" ] [ [ "x"; "123" ] ] in
  Alcotest.(check bool) "right-aligns numbers" true
    (String.length s > 0 && String.split_on_char '\n' s |> List.length = 3)

let test_table_fmt () =
  Alcotest.(check string) "float" "3.1" (Table.fmt_float 3.14159);
  Alcotest.(check string) "float decimals" "3.14" (Table.fmt_float ~decimals:2 3.14159);
  Alcotest.(check string) "percent" "99.5%" (Table.fmt_percent 99.5)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "copy continues stream" `Quick test_rng_copy_independent;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bool balance" `Quick test_rng_bool_balanced;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "choose membership" `Quick test_rng_choose;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "sorted pops" `Quick test_pqueue_sorted;
          Alcotest.test_case "FIFO ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "size" `Quick test_pqueue_size;
          Alcotest.test_case "peek stable" `Quick test_pqueue_peek_stable;
          QCheck_alcotest.to_alcotest prop_pqueue_sorted;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "improvement" `Quick test_stats_improvement;
          Alcotest.test_case "ratio" `Quick test_stats_ratio;
        ] );
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick test_pool_order_preserved;
          Alcotest.test_case "domains=1 sequential" `Quick
            test_pool_domains1_is_sequential;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "filter_map" `Quick test_pool_filter_map;
          Alcotest.test_case "reusable + nested" `Quick test_pool_reusable;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "env default" `Quick test_pool_env_default;
          Alcotest.test_case "race: deterministic winner" `Quick
            test_race_deterministic_winner;
          Alcotest.test_case "race: cancellation skips doomed" `Quick
            test_race_cancellation_skips;
          Alcotest.test_case "race: mid-flight doomed poll" `Quick
            test_race_mid_flight_doomed;
          Alcotest.test_case "race: exception semantics" `Quick
            test_race_exception_semantics;
          Alcotest.test_case "race: width-1 lazy fallback" `Quick
            test_race_width1_lazy;
          Alcotest.test_case "race: no winner" `Quick test_race_no_winner;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "formatting" `Quick test_table_fmt;
        ] );
    ]
