open Cgra_arch
open Cgra_mapper
open Cgra_core

let arch size page_pes = Option.get (Cgra.standard ~size ~page_pes)

let paged_mapping ?(size = 4) ?(page_pes = 4) name =
  let k = Cgra_kernels.Kernels.find_exn name in
  match Scheduler.map Paged (arch size page_pes) k.graph with
  | Ok m -> m
  | Error e -> Alcotest.failf "mapping %s failed: %s" name e

let fold_ok ?base_page ~target_pages m =
  match Transform.fold ?base_page ~target_pages m with
  | Ok sh -> sh
  | Error e -> Alcotest.failf "fold failed: %s" e

let assert_valid ?(check_mem = false) m =
  match Mapping.validate ~check_mem m with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es)

(* ---------- ii_q formula ---------- *)

let test_ii_q () =
  Alcotest.(check int) "no shrink" 3 (Transform.ii_q ~ii_p:3 ~n_used:4 ~target_pages:4);
  Alcotest.(check int) "halve" 6 (Transform.ii_q ~ii_p:3 ~n_used:4 ~target_pages:2);
  Alcotest.(check int) "to one" 12 (Transform.ii_q ~ii_p:3 ~n_used:4 ~target_pages:1);
  Alcotest.(check int) "non-divisor ceil" 6 (Transform.ii_q ~ii_p:3 ~n_used:3 ~target_pages:2);
  Alcotest.(check int) "target beyond use" 3 (Transform.ii_q ~ii_p:3 ~n_used:2 ~target_pages:8)

(* ---------- fold mechanics ---------- *)

let test_fold_errors () =
  let m = paged_mapping "mpeg" in
  (match Transform.fold ~target_pages:0 m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "target 0 accepted");
  (match Transform.fold ~base_page:3 ~target_pages:4 m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-fabric range accepted");
  let base = { m with Mapping.paged = false } in
  match Transform.fold ~target_pages:1 base with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unpaged source accepted"

let test_fold_identity_when_target_covers () =
  let m = paged_mapping "laplace" in
  let n = Mapping.n_pages_used m in
  let sh = fold_ok ~target_pages:n m in
  Alcotest.(check int) "s = 1" 1 sh.s;
  Alcotest.(check int) "same ii" m.ii sh.mapping.ii;
  Alcotest.(check bool) "pe exact" true sh.pe_exact;
  assert_valid sh.mapping

let test_fold_ii_matches_formula () =
  List.iter
    (fun name ->
      let m = paged_mapping name in
      let n = Mapping.n_pages_used m in
      for target = 1 to n do
        let sh = fold_ok ~target_pages:target m in
        Alcotest.(check int)
          (Printf.sprintf "%s to %d pages" name target)
          (Transform.ii_q ~ii_p:m.ii ~n_used:n ~target_pages:target)
          sh.mapping.ii
      done)
    Cgra_kernels.Kernels.names

let test_fold_whole_ladder_validates () =
  List.iter
    (fun name ->
      let m = paged_mapping name in
      let rec ladder target =
        if target >= 1 then begin
          let sh = fold_ok ~target_pages:target m in
          if sh.pe_exact then assert_valid sh.mapping;
          ladder (target / 2)
        end
      in
      ladder (Mapping.n_pages_used m))
    Cgra_kernels.Kernels.names

let test_fold_square_tiles_always_exact () =
  (* 2x2 pages admit the full dihedral group: every shrink is PE-exact *)
  List.iter
    (fun name ->
      let m = paged_mapping ~size:4 ~page_pes:4 name in
      for target = 1 to Mapping.n_pages_used m do
        let sh = fold_ok ~target_pages:target m in
        Alcotest.(check bool)
          (Printf.sprintf "%s target %d exact" name target)
          true sh.pe_exact
      done)
    Cgra_kernels.Kernels.names

let test_fold_to_one_page_always_exact () =
  (* Fig. 6 semantics: folding onto a single page never needs rotations *)
  List.iter
    (fun (size, page_pes) ->
      List.iter
        (fun name ->
          let m = paged_mapping ~size ~page_pes name in
          let sh = fold_ok ~target_pages:1 m in
          Alcotest.(check bool) (name ^ " m1 exact") true sh.pe_exact;
          assert_valid sh.mapping)
        Cgra_kernels.Kernels.names)
    [ (4, 2); (4, 4); (6, 8); (8, 4) ]

let test_fold_stays_in_target_range () =
  let m = paged_mapping "swim" in
  let sh = fold_ok ~base_page:1 ~target_pages:2 m in
  let pages = m.Mapping.arch.Cgra.pages in
  Array.iter
    (fun pl ->
      match pl with
      | Some (p : Mapping.placement) ->
          let pg = Option.get (Page.page_of_pe pages p.pe) in
          Alcotest.(check bool) "in [1,3)" true (pg >= 1 && pg < 3)
      | None -> ())
    sh.mapping.Mapping.placements

let test_fold_base_page_relocation_valid () =
  let m = paged_mapping "mpeg" in
  let sh = fold_ok ~base_page:2 ~target_pages:2 m in
  if sh.pe_exact then assert_valid sh.mapping

let test_fold_from_relocated_base () =
  (* regression: fold indexed its per-page arrays with absolute page ids,
     so folding a mapping whose used pages start above page 0 read out of
     range.  Relocate to every feasible base, re-mark paged, and fold
     again all the way down. *)
  let k = Cgra_kernels.Kernels.find_exn "mpeg" in
  let m = paged_mapping "mpeg" in
  let n = Mapping.n_pages_used m in
  let total = Page.n_pages m.Mapping.arch.Cgra.pages in
  Alcotest.(check bool) "kernel leaves room to relocate" true (total > n);
  for base = 1 to total - n do
    let sh = fold_ok ~base_page:base ~target_pages:n m in
    Alcotest.(check bool) "relocation exact on square tiles" true sh.pe_exact;
    let src = { sh.mapping with Mapping.paged = true } in
    assert_valid src;
    Alcotest.(check int) "lowest used page" base (List.hd (Mapping.pages_used src));
    let sh1 = fold_ok ~target_pages:1 src in
    Alcotest.(check int)
      (Printf.sprintf "ii law from base %d" base)
      (Transform.ii_q ~ii_p:src.Mapping.ii ~n_used:n ~target_pages:1)
      sh1.mapping.ii;
    Alcotest.(check bool) "refold exact" true sh1.pe_exact;
    assert_valid sh1.mapping;
    let mem = Cgra_kernels.Kernels.init_memory k in
    match Cgra_sim.Check.against_oracle sh1.mapping mem ~iterations:24 with
    | Ok () -> ()
    | Error es -> Alcotest.failf "base %d diverges: %s" base (String.concat "; " es)
  done

let test_fold_no_slot_collisions () =
  (* validate already checks this, but assert directly for page-level
     results too *)
  List.iter
    (fun name ->
      let m = paged_mapping ~page_pes:2 name in
      let n = Mapping.n_pages_used m in
      for target = 1 to n do
        let sh = fold_ok ~target_pages:target m in
        let q = sh.mapping in
        let seen = Hashtbl.create 64 in
        let add (p : Mapping.placement) =
          let key = (Grid.index q.Mapping.arch.Cgra.grid p.pe, p.time mod q.ii) in
          Alcotest.(check bool)
            (Printf.sprintf "%s t%d no collision" name target)
            false (Hashtbl.mem seen key);
          Hashtbl.add seen key ()
        in
        Array.iter (Option.iter add) q.placements;
        List.iter (fun (r : Mapping.route) -> List.iter add r.hops) q.routes
      done)
    [ "sobel"; "swim"; "yuv2rgb" ]

let test_fold_factor () =
  let m = paged_mapping "swim" in
  let n = Mapping.n_pages_used m in
  for target = 1 to n + 2 do
    let sh = fold_ok ~target_pages:target m in
    Alcotest.(check int) "s = ceil(n/m_eff)"
      ((n + sh.m_eff - 1) / sh.m_eff)
      sh.s;
    Alcotest.(check int) "m_eff = min target n" (min target n) sh.m_eff
  done

let test_orientations_length () =
  let m = paged_mapping "laplace" in
  let sh = fold_ok ~target_pages:2 m in
  Alcotest.(check int) "one orientation per used page" sh.n_used
    (Array.length sh.orientations)

(* ---------- mirror ---------- *)

let test_mirror_relocate_identity () =
  let pages = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  List.iter
    (fun pe ->
      let pe' = Mirror.relocate ~pages ~src_page:0 ~dst_page:0 Orient.identity pe in
      Alcotest.(check bool) "fixed point" true (Coord.equal pe pe'))
    (Page.pes_of_page pages 0)

let test_mirror_relocate_moves_tile () =
  let pages = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  List.iter
    (fun pe ->
      let pe' = Mirror.relocate ~pages ~src_page:0 ~dst_page:2 Orient.identity pe in
      Alcotest.(check (option int)) "lands in page 2" (Some 2) (Page.page_of_pe pages pe'))
    (Page.pes_of_page pages 0)

let test_mirror_relocate_rejects_foreign () =
  let pages = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Mirror.relocate ~pages ~src_page:0 ~dst_page:1 Orient.identity
            (Coord.make ~row:3 ~col:3));
       false
     with Invalid_argument _ -> true)

let test_mirror_solve_no_steps () =
  let pages = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  match Mirror.solve ~pages ~src_base:0 ~n_used:3 ~s:3 ~base:0 ~cross_steps:[| []; []; [] |] with
  | Some o -> Alcotest.(check int) "length" 3 (Array.length o)
  | None -> Alcotest.fail "unconstrained solve must succeed"

let test_mirror_solve_fig6_fold () =
  (* Fig. 6: fold three ring pages onto one tile.  The 0-1 boundary is
     horizontal adjacency, the 1-2 boundary vertical (serpentine turn);
     mirroring must make every transferred value land within RF reach. *)
  let pages = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  let steps01 = Page.boundary_pairs pages 0 in
  let steps12 = Page.boundary_pairs pages 1 in
  Alcotest.(check bool) "boundaries exist" true (steps01 <> [] && steps12 <> []);
  match Mirror.solve ~pages ~src_base:0 ~n_used:3 ~s:3 ~base:0 ~cross_steps:[| steps01; steps12 |] with
  | Some o ->
      let reloc n orient pe = Mirror.relocate ~pages ~src_page:n ~dst_page:0 orient pe in
      List.iter
        (fun (a, b) ->
          let a' = reloc 0 o.(0) a and b' = reloc 1 o.(1) b in
          Alcotest.(check bool) "0-1 within RF reach" true
            (Coord.equal a' b' || Coord.adjacent a' b'))
        steps01;
      List.iter
        (fun (a, b) ->
          let a' = reloc 1 o.(1) a and b' = reloc 2 o.(2) b in
          Alcotest.(check bool) "1-2 within RF reach" true
            (Coord.equal a' b' || Coord.adjacent a' b'))
        steps12
  | None -> Alcotest.fail "Fig. 6 fold must solve"

let test_mirror_band_reversal () =
  let pages = Page.band (Grid.square 6) ~size:8 in
  (* junction pair between band pages 0 and 1 *)
  let junction =
    List.filter
      (fun (a, b) ->
        abs (Grid.serp_index (Grid.square 6) a - Grid.serp_index (Grid.square 6) b) = 1)
      (Page.boundary_pairs pages 0)
  in
  Alcotest.(check bool) "junction exists" true (junction <> []);
  match Mirror.solve ~pages ~src_base:0 ~n_used:2 ~s:2 ~base:0 ~cross_steps:[| junction |] with
  | Some o ->
      List.iter
        (fun (a, b) ->
          let a' = Mirror.relocate ~pages ~src_page:0 ~dst_page:0 o.(0) a in
          let b' = Mirror.relocate ~pages ~src_page:1 ~dst_page:0 o.(1) b in
          Alcotest.(check bool) "reach" true (Coord.equal a' b' || Coord.adjacent a' b'))
        junction
  | None -> Alcotest.fail "band fold must solve via reversal"

(* ---------- end-to-end: fold then simulate ---------- *)

let test_fold_simulates_correctly () =
  List.iter
    (fun name ->
      let k = Cgra_kernels.Kernels.find_exn name in
      let m = paged_mapping name in
      let rec ladder target =
        if target >= 1 then begin
          let sh = fold_ok ~target_pages:target m in
          if sh.pe_exact then begin
            let mem = Cgra_kernels.Kernels.init_memory k in
            match Cgra_sim.Check.against_oracle sh.mapping mem ~iterations:24 with
            | Ok () -> ()
            | Error es ->
                Alcotest.failf "%s target %d: %s" name target (String.concat "; " es)
          end;
          ladder (target / 2)
        end
      in
      ladder (Mapping.n_pages_used m))
    [ "mpeg"; "sor"; "histeq"; "wavelet" ]

let prop_fold_synthetic =
  QCheck.Test.make ~name:"synthetic kernels fold exactly on square pages" ~count:20
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let cfg =
        {
          Cgra_kernels.Synthetic.n_ops = 10 + (seed mod 8);
          mem_fraction = 0.25;
          recurrence = seed mod 4 = 0;
        }
      in
      let g = Cgra_kernels.Synthetic.generate ~seed cfg in
      match Scheduler.map Paged (arch 4 4) g with
      | Error _ -> false
      | Ok m -> (
          match Transform.fold ~target_pages:1 m with
          | Error _ -> false
          | Ok sh ->
              sh.pe_exact
              && Mapping.validate ~check_mem:false sh.mapping = Ok ()
              && sh.mapping.ii = Transform.ii_q ~ii_p:m.ii ~n_used:sh.n_used ~target_pages:1))

let () =
  Alcotest.run "transform"
    [
      ( "fold",
        [
          Alcotest.test_case "ii_q formula" `Quick test_ii_q;
          Alcotest.test_case "errors" `Quick test_fold_errors;
          Alcotest.test_case "identity when target covers" `Quick
            test_fold_identity_when_target_covers;
          Alcotest.test_case "ii matches formula (all kernels, all targets)" `Quick
            test_fold_ii_matches_formula;
          Alcotest.test_case "halving ladder validates" `Quick
            test_fold_whole_ladder_validates;
          Alcotest.test_case "square tiles always exact" `Quick
            test_fold_square_tiles_always_exact;
          Alcotest.test_case "fold to one page exact everywhere" `Slow
            test_fold_to_one_page_always_exact;
          Alcotest.test_case "stays in target range" `Quick test_fold_stays_in_target_range;
          Alcotest.test_case "fold from relocated base" `Quick
            test_fold_from_relocated_base;
          Alcotest.test_case "base page relocation" `Quick
            test_fold_base_page_relocation_valid;
          Alcotest.test_case "no slot collisions" `Quick test_fold_no_slot_collisions;
          Alcotest.test_case "fold factor" `Quick test_fold_factor;
          Alcotest.test_case "orientations length" `Quick test_orientations_length;
        ] );
      ( "mirror",
        [
          Alcotest.test_case "relocate identity" `Quick test_mirror_relocate_identity;
          Alcotest.test_case "relocate moves tile" `Quick test_mirror_relocate_moves_tile;
          Alcotest.test_case "relocate rejects foreign PE" `Quick
            test_mirror_relocate_rejects_foreign;
          Alcotest.test_case "solve without steps" `Quick test_mirror_solve_no_steps;
          Alcotest.test_case "Fig. 6 vertical fold" `Quick test_mirror_solve_fig6_fold;
          Alcotest.test_case "band reversal" `Quick test_mirror_band_reversal;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "fold simulates correctly" `Quick
            test_fold_simulates_correctly;
          QCheck_alcotest.to_alcotest prop_fold_synthetic;
        ] );
    ]
