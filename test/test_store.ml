(* The persistent binary store: canonical cache identity, byte-exact
   serialization round-trips, warm starts that never touch the
   scheduler, and graceful rejection of corrupt / stale artifacts. *)

open Cgra_arch
open Cgra_core
module Codec = Cgra_isa.Codec

let arch size page_pes = Option.get (Cgra.standard ~size ~page_pes)

let compile_ok a k =
  match Binary.compile a k with
  | Ok b -> b
  | Error e -> Alcotest.failf "compile %s: %s" k.Cgra_kernels.Kernels.name e

(* ----- throwaway store directories ----- *)

let dir_seq = ref 0

let fresh_dir () =
  incr dir_seq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "cgra-store-test-%d-%d" (Unix.getpid ()) !dir_seq)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_store f =
  let dir = fresh_dir () in
  let store = Cgra_store.open_ dir in
  Fun.protect
    ~finally:(fun () ->
      Cgra_store.uninstall ();
      rm_rf dir)
    (fun () -> f store)

(* ----- the cache-key contract: pinned golden fingerprints ----- *)

(* These strings are the arch component of every persistent cache key.
   If this test fails, the on-disk key format changed: that must be a
   deliberate decision, paired with a [Codec.format_version] bump so old
   stores are retired — never an accident of pretty-printing. *)
let test_fingerprint_golden () =
  List.iter
    (fun ((size, page_pes), expect) ->
      Alcotest.(check string)
        (Printf.sprintf "%dx%d/%d" size size page_pes)
        expect
        (Cgra.fingerprint (arch size page_pes)))
    [
      ((4, 4), "cgra-v1;grid=4,4;pages=rect:2,2;rf=16;memports=2");
      ((6, 4), "cgra-v1;grid=6,6;pages=rect:2,2;rf=27;memports=2");
      ((8, 4), "cgra-v1;grid=8,8;pages=rect:2,2;rf=48;memports=2");
      ((6, 8), "cgra-v1;grid=6,6;pages=band:8;rf=16;memports=2");
      ((4, 2), "cgra-v1;grid=4,4;pages=rect:1,2;rf=24;memports=2");
    ]

let test_fingerprint_is_canonical () =
  (* Binary's cache key is the canonical encoding, not the pretty
     printer's output (which wraps and re-words freely). *)
  let a = arch 4 4 in
  Alcotest.(check string) "Binary delegates" (Cgra.fingerprint a) (Binary.fingerprint a);
  Alcotest.(check bool)
    "distinct archs, distinct keys" true
    (Cgra.fingerprint (arch 4 4) <> Cgra.fingerprint (arch 8 4))

let test_graph_digest () =
  let k name = (Cgra_kernels.Kernels.find_exn name).graph in
  Alcotest.(check string)
    "digest is a function of structure"
    (Codec.graph_digest (k "mpeg"))
    (Codec.graph_digest (k "mpeg"));
  Alcotest.(check bool)
    "different kernels, different digests" true
    (Codec.graph_digest (k "mpeg") <> Codec.graph_digest (k "sobel"))

(* ----- serialization round-trips ----- *)

let check_mapping_equal what (a : Cgra_mapper.Mapping.t) (b : Cgra_mapper.Mapping.t) =
  Alcotest.(check int) (what ^ " ii") a.ii b.ii;
  Alcotest.(check bool) (what ^ " paged") a.paged b.paged;
  Alcotest.(check bool) (what ^ " placements") true (a.placements = b.placements);
  Alcotest.(check bool) (what ^ " routes") true (a.routes = b.routes)

(* encode -> decode -> re-encode is the identity on every suite kernel x
   {4x4, 6x6, 8x8}, for both the unconstrained and the paged mapping *)
let test_mapping_roundtrip_suite () =
  List.iter
    (fun size ->
      let a = arch size 4 in
      List.iter
        (fun (k : Cgra_kernels.Kernels.t) ->
          let b = compile_ok a k in
          List.iter
            (fun (what, m) ->
              let bytes = Codec.mapping_bytes m in
              match Codec.mapping_of_bytes ~arch:a ~graph:k.graph bytes with
              | Error e -> Alcotest.failf "%s %s decode: %s" k.name what e
              | Ok m' ->
                  check_mapping_equal
                    (Printf.sprintf "%s %s %dx%d" k.name what size size)
                    m m';
                  Alcotest.(check bool)
                    (k.name ^ " re-encode is byte-identical")
                    true
                    (Codec.mapping_bytes m' = bytes))
            [ ("base", b.Binary.base); ("paged", b.Binary.paged) ])
        Cgra_kernels.Kernels.all)
    [ 4; 6; 8 ]

(* compile -> save -> load across the store is bit-exact, and the loaded
   binary's context image executes identically to the fresh compile's *)
let test_store_roundtrip_suite () =
  with_store (fun store ->
      List.iter
        (fun size ->
          let a = arch size 4 in
          List.iter
            (fun (k : Cgra_kernels.Kernels.t) ->
              let b = compile_ok a k in
              Cgra_store.save store ~seed:0 a k b;
              match Cgra_store.load store ~seed:0 a k with
              | None -> Alcotest.failf "%s: artifact did not load back" k.name
              | Some b' ->
                  Alcotest.(check string) (k.name ^ " name") b.Binary.name b'.Binary.name;
                  check_mapping_equal (k.name ^ " base") b.Binary.base b'.Binary.base;
                  check_mapping_equal (k.name ^ " paged") b.Binary.paged b'.Binary.paged)
            Cgra_kernels.Kernels.all)
        [ 4; 6; 8 ];
      let c = Cgra_store.counters store in
      Alcotest.(check int) "every load hit" (3 * List.length Cgra_kernels.Kernels.all)
        c.Cgra_store.load_hits;
      Alcotest.(check int) "no rejects" 0 c.Cgra_store.rejects)

let test_loaded_binary_simulates_identically () =
  with_store (fun store ->
      let a = arch 4 4 in
      List.iter
        (fun (k : Cgra_kernels.Kernels.t) ->
          let fresh = compile_ok a k in
          Cgra_store.save store ~seed:0 a k fresh;
          let loaded = Option.get (Cgra_store.load store ~seed:0 a k) in
          let img m = Result.get_ok (Cgra_isa.Config.encode m) in
          let img_f = img fresh.Binary.paged and img_l = img loaded.Binary.paged in
          (* identical context images... *)
          Alcotest.(check bool)
            (k.name ^ " identical context image")
            true
            (Codec.config_bytes img_f = Codec.config_bytes img_l);
          (* ...and identical execution, memory included *)
          let mem_f = Cgra_kernels.Kernels.init_memory k in
          let mem_l = Cgra_dfg.Memory.copy mem_f in
          let rep_f = Cgra_isa.Exec_image.run img_f mem_f ~iterations:16 in
          let rep_l = Cgra_isa.Exec_image.run img_l mem_l ~iterations:16 in
          Alcotest.(check bool)
            (k.name ^ " same execution report")
            true (rep_f = rep_l);
          Alcotest.(check bool)
            (k.name ^ " same memory")
            true
            (Cgra_dfg.Memory.diff mem_f mem_l = []))
        Cgra_kernels.Kernels.all)

(* ----- warm start: launch without the scheduler ----- *)

let test_warm_start_compiles_nothing () =
  with_store (fun store ->
      let a = arch 4 4 in
      Cgra_store.install store;
      Binary.clear_cache ();
      Binary.reset_stats ();
      (match Binary.compile_suite a with
      | Error e -> Alcotest.fail e
      | Ok suite ->
          Alcotest.(check int) "11 kernels" 11 (List.length suite));
      let cold = Binary.stats () in
      Alcotest.(check int) "cold start compiles everything" 11 cold.Binary.compiles;
      Alcotest.(check int) "cold start stores everything" 11 cold.Binary.stores;
      (* new process, same store: drop the in-memory memo *)
      Binary.clear_cache ();
      Binary.reset_stats ();
      let trace = Cgra_trace.Trace.make () in
      (match Binary.compile_suite ~trace a with
      | Error e -> Alcotest.fail e
      | Ok _ -> ());
      let warm = Binary.stats () in
      Alcotest.(check int) "warm start compiles nothing" 0 warm.Binary.compiles;
      Alcotest.(check int) "warm start loads everything" 11 warm.Binary.disk_hits;
      (* the scheduler must never have run: no speculative race was even
         started *)
      let raced =
        List.exists
          (fun (e : Cgra_trace.Trace.event) ->
            match e.payload with
            | Cgra_trace.Trace.Span_begin { name } -> name = "sched.race"
            | _ -> false)
          (Cgra_trace.Trace.events trace)
      in
      Alcotest.(check bool) "no sched.race span in a warm start" false raced;
      Alcotest.(check (list (pair string (float 0.0))))
        "tier counters surface through the trace"
        [ ("binary.cache.disk_hit", 11.0) ]
        (Cgra_trace.Trace.counters trace))

(* a warm binary is interchangeable with a compiled one *)
let test_warm_equals_cold () =
  with_store (fun store ->
      let a = arch 4 4 in
      Binary.clear_cache ();
      let cold = Result.get_ok (Binary.compile_suite a) in
      List.iter2
        (fun b (k : Cgra_kernels.Kernels.t) -> Cgra_store.save store ~seed:0 a k b)
        cold Cgra_kernels.Kernels.all;
      Cgra_store.install store;
      Binary.clear_cache ();
      let warm = Result.get_ok (Binary.compile_suite a) in
      List.iter2
        (fun (c : Binary.t) (w : Binary.t) ->
          check_mapping_equal (c.Binary.name ^ " base") c.Binary.base w.Binary.base;
          check_mapping_equal (c.Binary.name ^ " paged") c.Binary.paged w.Binary.paged)
        cold warm)

(* ----- corruption: reject and recompile, never crash ----- *)

(* each corruption is applied to a freshly stored artifact; the poisoned
   load must come back [None] (a miss), and a compile through the
   installed store must fall back to the scheduler and succeed *)
let corruption_case mutate =
  with_store (fun store ->
      let a = arch 4 4 in
      let k = Cgra_kernels.Kernels.find_exn "mpeg" in
      let b = compile_ok a k in
      Cgra_store.save store ~seed:0 a k b;
      let path = Cgra_store.path_for store ~seed:0 a k in
      let content =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc (mutate content));
      Alcotest.(check bool)
        "poisoned artifact rejected" true
        (Cgra_store.load store ~seed:0 a k = None);
      Alcotest.(check bool)
        "reject counted" true
        ((Cgra_store.counters store).Cgra_store.rejects > 0);
      (* the two-tier cache heals: recompile, then re-publish *)
      Cgra_store.install store;
      Binary.clear_cache ();
      Binary.reset_stats ();
      (match Binary.compile a k with
      | Ok b' -> check_mapping_equal "recompiled" b.Binary.paged b'.Binary.paged
      | Error e -> Alcotest.fail ("fallback compile failed: " ^ e));
      Alcotest.(check int) "fell back to the scheduler" 1 (Binary.stats ()).Binary.compiles;
      Alcotest.(check bool)
        "healed artifact loads again" true
        (Cgra_store.load store ~seed:0 a k <> None))

let test_truncated_artifact () =
  corruption_case (fun s -> String.sub s 0 (String.length s / 2))

let test_flipped_byte () =
  corruption_case (fun s ->
      (* flip a byte in the middle of the payload *)
      let b = Bytes.of_string s in
      let i = String.length s / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
      Bytes.to_string b)

let test_stale_version () =
  corruption_case (fun s ->
      (* the version varint sits right after the 4-byte magic; rewrite it
         to a future format (zigzag: version v encodes as the byte 2v) *)
      let b = Bytes.of_string s in
      Bytes.set b 4 (Char.chr (2 * (Codec.format_version + 1)));
      Bytes.to_string b)

let test_empty_and_garbage_files () =
  with_store (fun store ->
      let a = arch 4 4 in
      let k = Cgra_kernels.Kernels.find_exn "sor" in
      let path = Cgra_store.path_for store ~seed:0 a k in
      rm_rf (Filename.dirname path);
      Unix.mkdir (Filename.dirname path) 0o755;
      List.iter
        (fun junk ->
          let oc = open_out_bin path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
              output_string oc junk);
          Alcotest.(check bool)
            "junk rejected" true
            (Cgra_store.load store ~seed:0 a k = None))
        [ ""; "CG"; "CGRB"; "NOTB" ^ String.make 64 '\255'; String.make 3 '\002' ])

let test_hostile_codec_bytes () =
  (* decoders are total: no byte string may raise *)
  let a = arch 4 4 in
  let g = (Cgra_kernels.Kernels.find_exn "mpeg").graph in
  let m = (compile_ok a (Cgra_kernels.Kernels.find_exn "mpeg")).Binary.paged in
  let good = Codec.mapping_bytes m in
  let cases =
    [ ""; "\255"; String.sub good 0 (String.length good - 1); good ^ "\000" ]
    @ List.init 32 (fun i ->
          let b = Bytes.of_string good in
          let j = i * String.length good / 32 in
          Bytes.set b j (Char.chr ((Char.code (Bytes.get b j) + 1 + i) land 0xff));
          Bytes.to_string b)
  in
  List.iter
    (fun bytes ->
      match Codec.mapping_of_bytes ~arch:a ~graph:g bytes with
      | Ok _ | Error _ -> ())
    cases

(* ----- store audit: scan, stats, gc ----- *)

let test_scan_stats_gc () =
  with_store (fun store ->
      let a = arch 4 4 in
      let kernels = [ "mpeg"; "sor"; "compress" ] in
      List.iter
        (fun name ->
          let k = Cgra_kernels.Kernels.find_exn name in
          Cgra_store.save store ~seed:0 a k (compile_ok a k))
        kernels;
      let st = Cgra_store.stats store in
      Alcotest.(check int) "3 artifacts" 3 st.Cgra_store.artifacts;
      Alcotest.(check int) "all intact" 3 st.Cgra_store.intact;
      (* poison one: flip a payload byte *)
      let victim =
        Cgra_store.path_for store ~seed:0 a (Cgra_kernels.Kernels.find_exn "sor")
      in
      let ic = open_in_bin victim in
      let content =
        Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
            really_input_string ic (in_channel_length ic))
      in
      let b = Bytes.of_string content in
      Bytes.set b (String.length content / 2) '\000';
      let oc = open_out_bin victim in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc (Bytes.to_string b));
      let st = Cgra_store.stats store in
      Alcotest.(check int) "one corrupt" 1 st.Cgra_store.corrupt;
      Alcotest.(check int) "two intact" 2 st.Cgra_store.intact;
      let removed, freed = Cgra_store.gc store in
      Alcotest.(check int) "gc removed the corrupt artifact" 1 removed;
      Alcotest.(check bool) "freed bytes" true (freed > 0);
      let st = Cgra_store.stats store in
      Alcotest.(check int) "intact survive gc" 2 st.Cgra_store.intact;
      Alcotest.(check int) "nothing corrupt remains" 0 st.Cgra_store.corrupt)

(* a key is the full 4-tuple: a different seed or arch never aliases *)
let test_key_separation () =
  with_store (fun store ->
      let k = Cgra_kernels.Kernels.find_exn "mpeg" in
      let a4 = arch 4 4 and a8 = arch 8 4 in
      let b = compile_ok a4 k in
      Cgra_store.save store ~seed:0 a4 k b;
      Alcotest.(check bool)
        "other seed misses" true
        (Cgra_store.load store ~seed:1 a4 k = None);
      Alcotest.(check bool)
        "other arch misses" true
        (Cgra_store.load store ~seed:0 a8 k = None);
      Alcotest.(check bool)
        "own key hits" true
        (Cgra_store.load store ~seed:0 a4 k <> None))

(* ----- compile_suite short-circuits on the first failure ----- *)

let test_suite_short_circuit () =
  (* a register-starved fabric: the suite fails at sobel (9th of 11).
     The sequential walk must stop there — the kernels after the failure
     are never compiled. *)
  let pages = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  let tiny = Cgra.make ~rf_capacity:3 pages in
  Binary.clear_cache ();
  Binary.reset_stats ();
  (match Binary.compile_suite tiny with
  | Ok _ -> Alcotest.fail "rf=3 fabric should not compile the suite"
  | Error e ->
      Alcotest.(check bool)
        "first failure in suite order is reported" true
        (let sub = "sobel" in
         let rec contains i =
           i + String.length sub <= String.length e
           && (String.sub e i (String.length sub) = sub || contains (i + 1))
         in
         contains 0));
  let st = Binary.stats () in
  Alcotest.(check bool)
    (Printf.sprintf "stopped at the failure (%d compiles)" st.Binary.compiles)
    true
    (st.Binary.compiles < List.length Cgra_kernels.Kernels.all);
  Binary.clear_cache ()

let () =
  Alcotest.run "store"
    [
      ( "identity",
        [
          Alcotest.test_case "golden fingerprints" `Quick test_fingerprint_golden;
          Alcotest.test_case "canonical, not pretty-printed" `Quick
            test_fingerprint_is_canonical;
          Alcotest.test_case "graph digest" `Quick test_graph_digest;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "mapping codec over suite x sizes" `Quick
            test_mapping_roundtrip_suite;
          Alcotest.test_case "store over suite x sizes" `Quick
            test_store_roundtrip_suite;
          Alcotest.test_case "loaded binary simulates identically" `Quick
            test_loaded_binary_simulates_identically;
        ] );
      ( "warm-start",
        [
          Alcotest.test_case "warm start never runs the scheduler" `Quick
            test_warm_start_compiles_nothing;
          Alcotest.test_case "warm equals cold" `Quick test_warm_equals_cold;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "truncated artifact" `Quick test_truncated_artifact;
          Alcotest.test_case "flipped byte" `Quick test_flipped_byte;
          Alcotest.test_case "stale format version" `Quick test_stale_version;
          Alcotest.test_case "empty and garbage files" `Quick
            test_empty_and_garbage_files;
          Alcotest.test_case "hostile codec bytes" `Quick test_hostile_codec_bytes;
        ] );
      ( "audit",
        [
          Alcotest.test_case "scan / stats / gc" `Quick test_scan_stats_gc;
          Alcotest.test_case "key separation" `Quick test_key_separation;
        ] );
      ( "suite",
        [
          Alcotest.test_case "short-circuit on first failure" `Quick
            test_suite_short_circuit;
        ] );
    ]
