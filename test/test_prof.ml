(* The observability layer's contract: histogram quantiles are exact at
   bucket edges and merges are order-independent; a profile report is a
   deterministic function of the trace (golden digests, live == post-hoc
   JSONL round-trip); stall attribution agrees with Replay's independent
   wait accounting; and the bench gate passes its own baselines while
   failing a row inflated beyond tolerance. *)

open Cgra_arch
open Cgra_core
module T = Cgra_trace.Trace
module Export = Cgra_trace.Export
module Replay = Cgra_trace.Replay
module Json = Cgra_trace.Json
module Metrics = Cgra_prof.Metrics
module Hist = Cgra_prof.Metrics.Hist
module Analyze = Cgra_prof.Analyze
module Render = Cgra_prof.Render
module Bench_gate = Cgra_prof.Bench_gate

let feq = Alcotest.float 1e-9

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

(* ---------- Hist: quantile exactness at bucket edges ---------- *)

(* Integers 16..31 are each their own bucket lower bound (ex=5 gives
   lower = 16 + sub), so every quantile answer must be exact. *)
let test_hist_exact_at_edges () =
  let h = Hist.create () in
  for v = 16 to 31 do
    Hist.observe h (float_of_int v)
  done;
  Alcotest.(check int) "n" 16 (Hist.count h);
  Alcotest.check feq "min" 16.0 (Hist.min_value h);
  Alcotest.check feq "max" 31.0 (Hist.max_value h);
  Alcotest.check feq "sum" 376.0 (Hist.sum h);
  Alcotest.check feq "mean" 23.5 (Hist.mean h);
  (* nearest rank: p50 -> 8th smallest = 23, p90 -> 15th = 30 *)
  Alcotest.check feq "p50" 23.0 (Hist.quantile h 50.0);
  Alcotest.check feq "p90" 30.0 (Hist.quantile h 90.0);
  Alcotest.check feq "p99" 31.0 (Hist.quantile h 99.0);
  Alcotest.check feq "p100" 31.0 (Hist.quantile h 100.0);
  Alcotest.check feq "p0 clamps to rank 1" 16.0 (Hist.quantile h 0.0)

let test_hist_mid_bucket_error_bound () =
  (* A mid-bucket value reports its bucket lower bound: within the
     documented 6.25% relative error, never above the true value. *)
  let h = Hist.create () in
  Hist.observe h 16.0;
  Hist.observe h 33.0;
  let q = Hist.quantile h 100.0 in
  Alcotest.check feq "bucket lower" 32.0 q;
  Alcotest.(check bool) "under 6.25% relative error" true
    ((33.0 -. q) /. 33.0 < 0.0625);
  (* a lone observation is exact regardless of bucket: the answer clamps
     to the tracked [min, max] *)
  let one = Hist.create () in
  Hist.observe one 33.0;
  Alcotest.check feq "singleton exact via clamp" 33.0 (Hist.quantile one 50.0)

let test_hist_zero_and_negative () =
  let h = Hist.create () in
  Hist.observe h (-5.0);
  Hist.observe h 0.0;
  Hist.observe h 2.0;
  Alcotest.check feq "exact min kept" (-5.0) (Hist.min_value h);
  Alcotest.check feq "low quantile clamps to zero bucket" 0.0
    (Hist.quantile h 1.0);
  Alcotest.check feq "p100" 2.0 (Hist.quantile h 100.0)

let test_hist_empty () =
  let h = Hist.create () in
  Alcotest.(check int) "n" 0 (Hist.count h);
  Alcotest.check feq "mean" 0.0 (Hist.mean h);
  Alcotest.check feq "quantile" 0.0 (Hist.quantile h 50.0)

let test_hist_merge_matches_union () =
  let all = Hist.create () and a = Hist.create () and b = Hist.create () in
  List.iteri
    (fun i v ->
      Hist.observe all v;
      Hist.observe (if i mod 2 = 0 then a else b) v)
    [ 1.0; 17.0; 300.5; 4.0; 1e6; 0.0; 23.0; 23.0; 512.0 ];
  let m = Hist.merge a b in
  Alcotest.(check int) "n" (Hist.count all) (Hist.count m);
  Alcotest.check feq "sum" (Hist.sum all) (Hist.sum m);
  Alcotest.check feq "min" (Hist.min_value all) (Hist.min_value m);
  Alcotest.check feq "max" (Hist.max_value all) (Hist.max_value m);
  List.iter
    (fun p ->
      Alcotest.check feq
        (Printf.sprintf "p%g" p)
        (Hist.quantile all p) (Hist.quantile m p))
    [ 10.0; 50.0; 90.0; 99.0 ]

(* ---------- Registry: cross-domain merge determinism ---------- *)

let fill seed =
  let r = Metrics.create () in
  Metrics.counter r "requests" (float_of_int (seed * 3));
  Metrics.counter r "reshapes" 1.0;
  Metrics.gauge r (Printf.sprintf "domain%d.depth" seed) (float_of_int seed);
  for i = 0 to 9 do
    Metrics.observe r "latency" (float_of_int ((seed * 100) + (i * 16)))
  done;
  r

let test_registry_merge_determinism () =
  let a = fill 1 and b = fill 2 and c = fill 3 in
  let orders =
    [
      Metrics.merge (Metrics.merge a b) c;
      Metrics.merge a (Metrics.merge b c);
      Metrics.merge (Metrics.merge c a) b;
      Metrics.merge b (Metrics.merge c a);
    ]
  in
  let strings = List.map (fun r -> Json.to_string (Metrics.to_json r)) orders in
  match strings with
  | first :: rest ->
      List.iteri
        (fun i s ->
          Alcotest.(check string)
            (Printf.sprintf "order %d byte-identical" (i + 1))
            first s)
        rest
  | [] -> assert false

let test_registry_merge_semantics () =
  let a = fill 1 and b = fill 2 in
  let m = Metrics.merge a b in
  Alcotest.check feq "counters sum" 9.0 (Metrics.counter_value m "requests");
  Alcotest.check feq "inputs untouched" 3.0 (Metrics.counter_value a "requests");
  (* gauges are right-biased on collision *)
  let x = Metrics.create () and y = Metrics.create () in
  Metrics.gauge x "g" 1.0;
  Metrics.gauge y "g" 2.0;
  (match Json.member "gauges" (Metrics.to_json (Metrics.merge x y)) with
  | Some (Json.Obj [ ("g", Json.Num v) ]) ->
      Alcotest.check feq "right wins" 2.0 v
  | _ -> Alcotest.fail "gauges shape");
  match Metrics.hist m "latency" with
  | Some h -> Alcotest.(check int) "hist merged" 20 (Hist.count h)
  | None -> Alcotest.fail "merged histogram missing"

(* ---------- profile on a fixed-seed traced fig9-style run ---------- *)

let arch_4x4 = lazy (Option.get (Cgra.standard ~size:4 ~page_pes:4))

let suite_4x4 =
  lazy
    (match Binary.compile_suite (Lazy.force arch_4x4) with
    | Ok s -> s
    | Error e -> Alcotest.failf "compile_suite: %s" e)

let traced_events () =
  let suite = Lazy.force suite_4x4 in
  let threads = Workload.generate ~seed:0 ~n_threads:8 ~cgra_need:0.875 ~suite () in
  let trace = T.make () in
  ignore
    (Os_sim.run ~trace
       { Os_sim.suite; threads; total_pages = 4; mode = Os_sim.Multi });
  T.events trace

let report_of events =
  match Analyze.profile events with
  | Ok r -> r
  | Error e -> Alcotest.failf "profile: %s" e

let test_profile_run_header () =
  let events = traced_events () in
  let r = report_of events in
  Alcotest.(check string) "mode" "multi" r.run.mode;
  Alcotest.(check string) "policy" "halving" r.run.policy;
  Alcotest.(check int) "pages" 4 r.run.total_pages;
  Alcotest.(check int) "threads" 8 r.run.n_threads;
  Alcotest.(check int) "rows stamped in trace" 4 r.run.rows;
  Alcotest.(check int) "mem ports stamped in trace" 2 r.run.mem_ports;
  Alcotest.(check int) "event count" (List.length events) r.run.n_events;
  Alcotest.(check int) "one heat row per thread" 8 (List.length r.residents);
  Alcotest.(check bool) "geometry present -> row bus" true
    (r.row_bus <> None)

(* The report is pinned byte-for-byte: same seed, same text, same JSON —
   however many domains produced the run, live or re-imported.  If a
   rendering or analysis change is intentional, re-run
   [dune exec bin/cgra_tool.exe -- profile ...] and update the digests. *)
let golden_text_digest = "8e4e52cf0670f2f891b78eba77f44645"
let golden_json_digest = "aa3a2b8c872bf4fa693484da645b5184"

let test_profile_golden () =
  let r = report_of (traced_events ()) in
  let text = Render.text r in
  let json = Render.json_string r in
  Alcotest.(check string) "golden text" golden_text_digest
    (Digest.to_hex (Digest.string text));
  Alcotest.(check string) "golden json" golden_json_digest
    (Digest.to_hex (Digest.string json));
  (match Json.parse json with
  | Ok (Json.Obj fields) ->
      Alcotest.(check (list string)) "top-level keys sorted"
        [ "counters"; "latency"; "occupancy"; "reshapes"; "row_bus"; "run";
          "stalls" ]
        (List.map fst fields)
  | Ok _ -> Alcotest.fail "profile JSON is not an object"
  | Error e -> Alcotest.failf "profile JSON does not parse: %s" e);
  (* a fresh identical run renders byte-identically *)
  let r2 = report_of (traced_events ()) in
  Alcotest.(check string) "re-run text identical" text (Render.text r2);
  Alcotest.(check string) "re-run json identical" json (Render.json_string r2)

let test_profile_posthoc_equals_live () =
  let events = traced_events () in
  let live = report_of events in
  match Export.of_jsonl (Export.jsonl events) with
  | Error e -> Alcotest.failf "of_jsonl: %s" e
  | Ok events' ->
      let posthoc = report_of events' in
      Alcotest.(check string) "text identical" (Render.text live)
        (Render.text posthoc);
      Alcotest.(check string) "json identical" (Render.json_string live)
        (Render.json_string posthoc)

let test_stall_attribution_vs_replay () =
  let events = traced_events () in
  let r = report_of events in
  let replay_wait =
    List.fold_left (fun acc (_, w) -> acc +. w) 0.0 (Replay.wait_intervals events)
  in
  let queueing =
    List.fold_left
      (fun acc (s : Analyze.stall_attrib) -> acc +. s.queueing)
      0.0 r.stalls
  in
  Alcotest.check (Alcotest.float 1e-6)
    "total queueing = Replay's wait-interval sum" replay_wait queueing;
  List.iter
    (fun (s : Analyze.stall_attrib) ->
      Alcotest.check (Alcotest.float 1e-6)
        (Printf.sprintf "t%d components sum to total" s.thread)
        s.total
        (s.queueing +. s.reshape +. s.execution);
      Alcotest.(check bool)
        (Printf.sprintf "t%d components non-negative" s.thread)
        true
        (s.queueing >= 0.0 && s.reshape >= 0.0 && s.execution >= 0.0))
    r.stalls;
  let segments =
    List.fold_left
      (fun acc (s : Analyze.stall_attrib) -> acc + s.segments)
      0 r.stalls
  in
  Alcotest.(check int) "latency histogram counts every segment" segments
    (Hist.count r.latency_all)

let test_profile_requires_header () =
  match Analyze.profile [] with
  | Ok _ -> Alcotest.fail "profiled an empty stream"
  | Error e ->
      Alcotest.(check bool) "mentions run_begin" true
        (String.length e > 0)

(* Differential against the farm front end: each shard's busy cycles
   are accounted twice, independently — the front end sums
   (retire - dispatch) per request it routed to the shard, and the
   profiler reconstructs per-thread request->release totals from the
   shard's own trace.  Every farm request is a single-kernel thread, so
   the two sums must agree exactly, shard by shard. *)
let test_farm_busy_vs_stall_attribution () =
  let p =
    {
      Cgra_farm.Farm.default_params with
      n_requests = 40;
      offered_load = 2.0;
      seed = 7;
    }
  in
  match Cgra_farm.Farm.run ~traced:true p with
  | Error e -> Alcotest.failf "Farm.run: %s" e
  | Ok r ->
      List.iter2
        (fun (sr : Cgra_farm.Farm.shard_report) events ->
          let rep = report_of events in
          let attributed =
            List.fold_left
              (fun acc (s : Analyze.stall_attrib) -> acc +. s.total)
              0.0 rep.stalls
          in
          Alcotest.check (Alcotest.float 1e-6)
            (Printf.sprintf "shard %d: front-end busy = attributed total"
               sr.Cgra_farm.Farm.s_index)
            sr.Cgra_farm.Farm.s_busy_cycles attributed;
          Alcotest.(check int)
            (Printf.sprintf "shard %d: one attribution per served request"
               sr.Cgra_farm.Farm.s_index)
            sr.Cgra_farm.Farm.s_served
            (List.length rep.stalls))
        r.Cgra_farm.Farm.shard_reports r.Cgra_farm.Farm.shard_events

(* ---------- bench gate ---------- *)

let doc_of_string s =
  match Bench_gate.parse s with
  | Ok d -> d
  | Error e -> Alcotest.failf "Bench_gate.parse: %s" e

let baseline_json =
  {|{ "bench": "micro", "domains": 1, "unit": "ns_per_run", "results": [
      { "name": "fold sobel", "value": 1000.0, "domains": 1, "runs": 5, "spread": 4.0 },
      { "name": "compile-sobel-warm", "value": 50.0, "domains": 1, "runs": 5, "spread": 30.0 },
      { "name": "greedy transform", "value": 2000.0, "domains": 1, "runs": 5, "spread": 2.0 } ] }|}

let current ?(fold = 1100.0) ?(warm = 120.0) ?(greedy = 1900.0) () =
  doc_of_string
    (Printf.sprintf
       {|{ "bench": "micro", "domains": 1, "unit": "ns_per_run", "results": [
           { "name": "fold sobel", "value": %f, "domains": 1, "runs": 5, "spread": 1.0 },
           { "name": "compile-sobel-warm", "value": %f, "domains": 1, "runs": 5, "spread": 1.0 },
           { "name": "greedy transform", "value": %f, "domains": 1, "runs": 5, "spread": 1.0 } ] }|}
       fold warm greedy)

let test_gate_tolerances () =
  Alcotest.check feq "warm rows jitter hardest" 4.0
    (Bench_gate.tolerance "compile-sobel-warm");
  Alcotest.check feq "suite warm too" 4.0
    (Bench_gate.tolerance "compile-suite-warm 8x8");
  Alcotest.check feq "default" 2.0 (Bench_gate.tolerance "fold sobel")

let test_gate_passes_in_tolerance () =
  let baseline = doc_of_string baseline_json in
  (* within tolerance, an improvement, and a warm row at 2.4x (under its
     4x allowance) all pass *)
  let outcomes = Bench_gate.check ~baseline ~current:(current ()) in
  Alcotest.(check int) "no failures" 0 (Bench_gate.failures outcomes);
  Alcotest.(check int) "one outcome per baseline row" 3 (List.length outcomes);
  (* baselines vs themselves is the --check mode invariant *)
  Alcotest.(check int) "self-check passes" 0
    (Bench_gate.failures (Bench_gate.check ~baseline ~current:baseline))

let test_gate_fails_inflated_row () =
  let baseline = doc_of_string baseline_json in
  let outcomes =
    Bench_gate.check ~baseline ~current:(current ~fold:2100.0 ())
  in
  Alcotest.(check int) "exactly the inflated row fails" 1
    (Bench_gate.failures outcomes);
  let bad = List.find (fun (o : Bench_gate.outcome) -> not o.ok) outcomes in
  Alcotest.(check string) "the 2.1x row" "fold sobel" bad.o_name;
  let rendered = Bench_gate.render ~unit_:"ns_per_run" outcomes in
  Alcotest.(check bool) "render says FAIL" true (contains ~sub:"FAIL" rendered);
  (* the same 2.1x inflation on a warm row is within its 4x tolerance *)
  Alcotest.(check int) "warm row absorbs 2.4x" 0
    (Bench_gate.failures
       (Bench_gate.check ~baseline ~current:(current ~warm:120.0 ())))

let test_gate_missing_row_fails () =
  let baseline = doc_of_string baseline_json in
  let current =
    doc_of_string
      {|{ "bench": "micro", "domains": 1, "unit": "ns_per_run", "results": [
          { "name": "fold sobel", "value": 1000.0 } ] }|}
  in
  let outcomes = Bench_gate.check ~baseline ~current in
  Alcotest.(check int) "two rows missing" 2 (Bench_gate.failures outcomes);
  List.iter
    (fun (o : Bench_gate.outcome) ->
      if o.o_name <> "fold sobel" then
        Alcotest.(check bool) (o.o_name ^ " missing -> fail") false o.ok)
    outcomes

let test_bus_pressure_exact_counts () =
  (* the static analyzer recounts the mapping's memory ops exactly: cell
     sums equal the placed load/store count, no cell exceeds the row-bus
     budget (the mapping validated), and both renderings are stable *)
  let a = Lazy.force arch_4x4 in
  let k = Cgra_kernels.Kernels.find_exn "sobel" in
  let m =
    match Cgra_mapper.Scheduler.map Cgra_mapper.Scheduler.Paged a k.graph with
    | Ok m -> m
    | Error e -> Alcotest.failf "map: %s" e
  in
  let b = Analyze.bus_pressure m in
  Alcotest.(check string) "kernel name" "sobel" b.kernel;
  Alcotest.(check int) "ii" m.ii b.ii;
  Alcotest.(check int) "mem ops counted"
    (Cgra_dfg.Graph.mem_node_count m.graph) b.mem_ops;
  let sum =
    Array.fold_left
      (fun acc row -> Array.fold_left ( + ) acc row)
      0 b.demand
  in
  Alcotest.(check int) "cells sum to mem ops" b.mem_ops sum;
  Array.iteri
    (fun r row ->
      Array.iteri
        (fun s d ->
          if d > b.capacity then
            Alcotest.failf "row %d slot %d: %d > capacity %d" r s d b.capacity)
        row)
    b.demand;
  (match Json.parse (Render.bus_pressure_json_string b) with
  | Ok (Json.Obj fields) ->
      Alcotest.(check (list string)) "json keys sorted"
        [ "capacity"; "demand"; "headroom"; "ii"; "kernel"; "mem_ops"; "rows";
          "saturated" ]
        (List.map fst fields)
  | Ok _ -> Alcotest.fail "bus-pressure JSON is not an object"
  | Error e -> Alcotest.failf "bus-pressure JSON does not parse: %s" e);
  let text = Render.bus_pressure_text b in
  Alcotest.(check bool) "text carries the header" true
    (contains ~sub:"bus pressure: sobel" text);
  Alcotest.(check string) "re-render identical" text
    (Render.bus_pressure_text (Analyze.bus_pressure m))

let test_gate_fig8_higher_is_better () =
  (* fig8 rows are quality scores: improvements pass, any real drop
     fails — the inverse of the wall-clock direction *)
  Alcotest.(check bool) "fig8 prefix flips direction" true
    (Bench_gate.higher_is_better "fig8 4x4 p4 geomean");
  Alcotest.(check bool) "wall rows unchanged" false
    (Bench_gate.higher_is_better "fold sobel");
  let baseline =
    doc_of_string
      {|{ "bench": "fig8", "domains": 1, "unit": "percent", "results": [
          { "name": "fig8 4x4 p4 geomean", "value": 88.159 } ] }|}
  in
  let current v =
    doc_of_string
      (Printf.sprintf
         {|{ "bench": "fig8", "domains": 1, "unit": "percent", "results": [
             { "name": "fig8 4x4 p4 geomean", "value": %f } ] }|}
         v)
  in
  let failures v =
    Bench_gate.failures (Bench_gate.check ~baseline ~current:(current v))
  in
  Alcotest.(check int) "self passes" 0 (failures 88.159);
  Alcotest.(check int) "improvement passes" 0 (failures 95.0);
  Alcotest.(check int) "formatting epsilon absorbed" 0 (failures 88.12);
  Alcotest.(check int) "quality drop fails" 1 (failures 82.0);
  (* the drop would have sailed through the wall-clock direction (82 <=
     88 * 2.0), so this asserts the direction actually flipped *)
  let rendered =
    Bench_gate.render ~unit_:"percent"
      (Bench_gate.check ~baseline ~current:(current 82.0))
  in
  Alcotest.(check bool) "render marks the drop" true
    (contains ~sub:"FAIL" rendered);
  Alcotest.(check bool) "render shows the flipped budget" true
    (contains ~sub:">=base" rendered)

let test_gate_farm_deterministic () =
  (* farm rows are virtual-clock outputs: flat-epsilon gating, direction
     by row — throughput (req/) up, latency quantiles down *)
  Alcotest.(check bool) "farm throughput gates upward" true
    (Bench_gate.higher_is_better "farm load1.0 req/kcycle");
  Alcotest.(check bool) "farm latency gates downward" false
    (Bench_gate.higher_is_better "farm load1.0 latency p99");
  Alcotest.(check bool) "farm rows are deterministic" true
    (Bench_gate.deterministic "farm load1.0 latency p99");
  let baseline =
    doc_of_string
      {|{ "bench": "farm", "domains": 1, "unit": "mixed", "results": [
          { "name": "farm load1.0 req/kcycle", "value": 13.856 },
          { "name": "farm load1.0 latency p99", "value": 464.0 } ] }|}
  in
  let current tput p99 =
    doc_of_string
      (Printf.sprintf
         {|{ "bench": "farm", "domains": 1, "unit": "mixed", "results": [
             { "name": "farm load1.0 req/kcycle", "value": %f },
             { "name": "farm load1.0 latency p99", "value": %f } ] }|}
         tput p99)
  in
  let failures tput p99 =
    Bench_gate.failures (Bench_gate.check ~baseline ~current:(current tput p99))
  in
  Alcotest.(check int) "self passes" 0 (failures 13.856 464.0);
  Alcotest.(check int) "improvements pass" 0 (failures 15.0 400.0);
  Alcotest.(check int) "%.3f rounding absorbed" 0 (failures 13.8555 464.0005);
  Alcotest.(check int) "throughput drop fails" 1 (failures 13.0 464.0);
  (* a 1-cycle p99 regression is far inside any wall-clock tolerance but
     must fail the deterministic row *)
  Alcotest.(check int) "latency regression fails" 1 (failures 13.856 465.0);
  let rendered =
    Bench_gate.render ~unit_:"mixed"
      (Bench_gate.check ~baseline ~current:(current 13.856 465.0))
  in
  Alcotest.(check bool) "render shows the downward budget" true
    (contains ~sub:"<=base" rendered)

let test_gate_parses_old_format () =
  (* rows written before min-of-N: no runs/spread/per-row domains *)
  let d =
    doc_of_string
      {|{ "bench": "micro", "domains": 4, "unit": "ns_per_run", "results": [
          { "name": "x", "value": 10.0 } ] }|}
  in
  match d.rows with
  | [ r ] ->
      Alcotest.(check int) "runs defaults" 1 r.runs;
      Alcotest.check feq "spread defaults" 0.0 r.spread;
      Alcotest.(check int) "domains from doc" 4 r.domains
  | _ -> Alcotest.fail "row count"

let () =
  Alcotest.run "prof"
    [
      ( "hist",
        [
          Alcotest.test_case "exact at bucket edges" `Quick
            test_hist_exact_at_edges;
          Alcotest.test_case "mid-bucket error bound" `Quick
            test_hist_mid_bucket_error_bound;
          Alcotest.test_case "zero and negative clamp" `Quick
            test_hist_zero_and_negative;
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "merge matches union" `Quick
            test_hist_merge_matches_union;
        ] );
      ( "registry",
        [
          Alcotest.test_case "merge order-independent" `Quick
            test_registry_merge_determinism;
          Alcotest.test_case "merge semantics" `Quick
            test_registry_merge_semantics;
        ] );
      ( "profile",
        [
          Alcotest.test_case "run header" `Quick test_profile_run_header;
          Alcotest.test_case "golden report digests" `Quick
            test_profile_golden;
          Alcotest.test_case "post-hoc JSONL = live" `Quick
            test_profile_posthoc_equals_live;
          Alcotest.test_case "stall attribution vs replay" `Quick
            test_stall_attribution_vs_replay;
          Alcotest.test_case "empty stream rejected" `Quick
            test_profile_requires_header;
          Alcotest.test_case "bus pressure exact counts" `Quick
            test_bus_pressure_exact_counts;
          Alcotest.test_case "farm busy cycles vs stall attribution" `Quick
            test_farm_busy_vs_stall_attribution;
        ] );
      ( "bench gate",
        [
          Alcotest.test_case "tolerances" `Quick test_gate_tolerances;
          Alcotest.test_case "passes in tolerance" `Quick
            test_gate_passes_in_tolerance;
          Alcotest.test_case "fails inflated row" `Quick
            test_gate_fails_inflated_row;
          Alcotest.test_case "missing row fails" `Quick
            test_gate_missing_row_fails;
          Alcotest.test_case "fig8 rows gate higher-is-better" `Quick
            test_gate_fig8_higher_is_better;
          Alcotest.test_case "farm rows gate deterministically" `Quick
            test_gate_farm_deterministic;
          Alcotest.test_case "old baseline format" `Quick
            test_gate_parses_old_format;
        ] );
    ]
