(* The independent co-residency checker and its differential fuzz
   harness: one seeded regression per meld rule (disjointness,
   page-range vs allocator grants, bus capacity over the hyperperiod,
   per-resident legality, resident-set shape), report parity with the
   runtime's own Coexec.check, and the fuzz corpus — including
   pool-width invariance of the aggregated outcome. *)

open Cgra_arch
open Cgra_mapper
open Cgra_core
open Cgra_verify

let arch size page_pes = Option.get (Cgra.standard ~size ~page_pes)

let has_rule r = function
  | Ok _ -> false
  | Error vs -> List.exists (fun (v : Meld.violation) -> v.rule = r) vs

let load_graph name =
  Cgra_dfg.Graph.create ~name
    ~ops:[ Cgra_dfg.Op.Load { array = "x"; offset = 0; stride = 1 } ]
    ~edges:[]

let load_mapping a ~ii ~row ~col ~time =
  {
    Mapping.arch = a;
    graph = load_graph "ld";
    ii;
    placements = [| Some { Mapping.pe = Coord.make ~row ~col; time } |];
    routes = [];
    paged = false;
  }

(* load feeding a store, placed by hand *)
let pair_mapping a ~producer ~ptime ~consumer ~ctime =
  let b = Cgra_dfg.Builder.create ~name:"pair" in
  let x = Cgra_dfg.Builder.load b "in0" ~offset:0 ~stride:1 in
  let _ = Cgra_dfg.Builder.store b "out" ~offset:0 ~stride:1 x in
  let g = Cgra_dfg.Builder.finish b in
  {
    Mapping.arch = a;
    graph = g;
    ii = 2;
    placements =
      [|
        Some { Mapping.pe = producer; time = ptime };
        Some { Mapping.pe = consumer; time = ctime };
      |];
    routes = [];
    paged = false;
  }

(* place kernels side by side through the allocator + fold, keeping the
   grants — the harness the meld checker is meant to audit *)
let melded a names =
  let al = Allocator.create ~total_pages:(Cgra.n_pages a) () in
  List.mapi
    (fun i name ->
      let k = Cgra_kernels.Kernels.find_exn name in
      let m =
        match Scheduler.map Scheduler.Paged a k.graph with
        | Ok m -> m
        | Error e -> Alcotest.failf "map %s: %s" name e
      in
      match Allocator.request al ~client:i ~desired:(Mapping.n_pages_used m) with
      | None -> Alcotest.failf "no pages for %s" name
      | Some r -> (
          match
            Transform.fold ~base_page:r.Allocator.base ~target_pages:r.Allocator.len
              m
          with
          | Ok sh -> Meld.of_shrunk ~grant:r ~id:i sh
          | Error e -> Alcotest.failf "fold %s: %s" name e))
    names

(* ---------- resident-set shape ---------- *)

let test_empty_rejected () =
  Alcotest.(check bool) "empty set rejected" true
    (has_rule Meld.Residents (Meld.check []))

let test_foreign_fabric_rejected () =
  let m4 = load_mapping (arch 4 4) ~ii:1 ~row:0 ~col:0 ~time:0 in
  let m8 = load_mapping (arch 8 4) ~ii:1 ~row:5 ~col:5 ~time:0 in
  let r = Meld.check_mappings [ m4; m8 ] in
  Alcotest.(check bool) "foreign fabric rejected" true (has_rule Meld.Residents r);
  Alcotest.(check bool) "runtime agrees" true
    (Result.is_error (Cgra_sim.Coexec.check [ m4; m8 ]))

(* ---------- disjointness ---------- *)

let test_shared_pe_rejected () =
  let a = arch 4 4 in
  let m = load_mapping a ~ii:1 ~row:1 ~col:1 ~time:0 in
  let r = Meld.check_mappings ~check_mem:false [ m; m ] in
  Alcotest.(check bool) "shared PE rejected" true (has_rule Meld.Disjoint r);
  Alcotest.(check bool) "runtime agrees" true
    (Result.is_error (Cgra_sim.Coexec.check ~check_mem:false [ m; m ]))

let test_disjoint_pes_accepted () =
  let a = arch 4 4 in
  let m1 = load_mapping a ~ii:1 ~row:0 ~col:0 ~time:0 in
  let m2 = load_mapping a ~ii:1 ~row:2 ~col:2 ~time:0 in
  match Meld.check_mappings [ m1; m2 ] with
  | Ok rep -> Alcotest.(check int) "two residents" 2 rep.Meld.residents
  | Error vs ->
      Alcotest.failf "rejected: %s"
        (Format.asprintf "%a" Meld.pp_violation (List.hd vs))

(* ---------- page ranges ---------- *)

let test_grant_mismatch_rejected () =
  (* resident occupies page 0 but claims a grant at pages [2, 3) *)
  let a = arch 4 4 in
  let m = load_mapping a ~ii:1 ~row:0 ~col:0 ~time:0 in
  let r =
    Meld.check [ Meld.resident ~grant:{ Allocator.base = 2; len = 1 } ~id:0 m ]
  in
  Alcotest.(check bool) "grant mismatch rejected" true (has_rule Meld.Page_range r)

let test_overlapping_grants_rejected () =
  let a = arch 4 4 in
  let m1 = load_mapping a ~ii:1 ~row:0 ~col:0 ~time:0 in
  let m2 = load_mapping a ~ii:1 ~row:2 ~col:2 ~time:0 in
  (* disjoint PEs, but the claimed grants [0+2] and [1+2] overlap *)
  let r =
    Meld.check
      [
        Meld.resident ~grant:{ Allocator.base = 0; len = 2 } ~id:0 m1;
        Meld.resident ~grant:{ Allocator.base = 1; len = 2 } ~id:1 m2;
      ]
  in
  Alcotest.(check bool) "overlapping grants rejected" true
    (has_rule Meld.Page_range r)

let test_noncontiguous_pages_rejected () =
  (* one resident with ops on pages 0 and 2 and nothing on page 1 *)
  let a = arch 4 4 in
  let m =
    pair_mapping a ~producer:(Coord.make ~row:0 ~col:0) ~ptime:0
      ~consumer:(Coord.make ~row:2 ~col:2) ~ctime:1
  in
  Alcotest.(check bool) "non-contiguous pages rejected" true
    (has_rule Meld.Page_range (Meld.check_mappings [ m ]))

(* ---------- bus capacity over the hyperperiod ---------- *)

let test_bus_collision_at_hyperperiod () =
  (* IIs 2 and 3 with modulo slots 0 and 2: the issue patterns only
     collide at cycle 2 of the 6-cycle hyperperiod, invisible at either
     resident's own II granularity *)
  let pages = Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2 in
  let a = Cgra.make ~mem_ports_per_row:1 pages in
  let m1 = load_mapping a ~ii:2 ~row:0 ~col:0 ~time:0 in
  let m2 = load_mapping a ~ii:3 ~row:0 ~col:2 ~time:2 in
  let r = Meld.check_mappings [ m1; m2 ] in
  Alcotest.(check bool) "hyperperiod collision rejected" true
    (has_rule Meld.Bus_capacity r);
  Alcotest.(check bool) "runtime agrees" true
    (Result.is_error (Cgra_sim.Coexec.check [ m1; m2 ]));
  (match Meld.check_mappings ~check_mem:false [ m1; m2 ] with
  | Ok _ -> ()
  | Error vs ->
      Alcotest.failf "check_mem:false should pass: %s"
        (Format.asprintf "%a" Meld.pp_violation (List.hd vs)));
  (* different rows never share a bus: same slots, row apart, accepted *)
  let m3 = load_mapping a ~ii:3 ~row:1 ~col:2 ~time:2 in
  Alcotest.(check bool) "different rows accepted" true
    (Result.is_ok (Meld.check_mappings [ m1; m3 ]))

(* ---------- per-resident legality ---------- *)

let test_exact_resident_checked () =
  (* an "exact" resident whose consumer cannot reach its producer: the
     single-mapping checker must fire through the meld checker *)
  let a = arch 4 4 in
  let m =
    pair_mapping a ~producer:(Coord.make ~row:0 ~col:0) ~ptime:0
      ~consumer:(Coord.make ~row:0 ~col:1) ~ctime:0
  in
  let r = Meld.check [ Meld.resident ~exact:true ~id:0 m ] in
  Alcotest.(check bool) "premature read surfaces" true
    (has_rule Meld.Resident_legal r);
  (* the same resident without the exact claim is only page-checked *)
  Alcotest.(check bool) "positional resident passes" true
    (Result.is_ok (Meld.check [ Meld.resident ~exact:false ~id:0 m ]))

(* ---------- report parity with the runtime ---------- *)

let test_report_matches_coexec () =
  let a = arch 8 4 in
  let residents = melded a [ "mpeg"; "gsr"; "wavelet" ] in
  let mappings = List.map (fun (r : Meld.resident) -> r.Meld.mapping) residents in
  match (Meld.check ~check_mem:false residents,
         Cgra_sim.Coexec.check ~check_mem:false mappings)
  with
  | Ok mr, Ok cr ->
      Alcotest.(check int) "residents" cr.Cgra_sim.Coexec.residents mr.Meld.residents;
      Alcotest.(check int) "hyperperiod" cr.Cgra_sim.Coexec.hyperperiod
        mr.Meld.hyperperiod;
      Alcotest.(check bool) "ipc bit-equal" true
        (compare cr.Cgra_sim.Coexec.ipc mr.Meld.ipc = 0);
      Alcotest.(check bool) "utilization bit-equal" true
        (compare cr.Cgra_sim.Coexec.utilization mr.Meld.utilization = 0)
  | Error vs, _ ->
      Alcotest.failf "meld rejected: %s"
        (Format.asprintf "%a" Meld.pp_violation (List.hd vs))
  | _, Error es -> Alcotest.failf "coexec rejected: %s" (List.hd es)

let test_single_resident_hyperperiod () =
  let a = arch 8 4 in
  match melded a [ "sor" ] with
  | [ r ] -> (
      match Meld.check ~check_mem:false [ r ] with
      | Ok rep ->
          Alcotest.(check int) "hyperperiod is the resident's own II"
            r.Meld.mapping.Mapping.ii rep.Meld.hyperperiod
      | Error vs ->
          Alcotest.failf "rejected: %s"
            (Format.asprintf "%a" Meld.pp_violation (List.hd vs)))
  | rs -> Alcotest.failf "expected one resident, got %d" (List.length rs)

(* ---------- the fuzz corpus ---------- *)

let test_meld_fuzz_corpus () =
  let o = Meld_fuzz.run ~seeds:(List.init 40 Fun.id) () in
  (match o.Meld_fuzz.failures with
  | [] -> ()
  | fs -> Alcotest.failf "meld fuzz failures:\n%s" (String.concat "\n" fs));
  Alcotest.(check int) "all cases attempted" 40 o.Meld_fuzz.cases;
  Alcotest.(check int) "one set per case" 40 o.Meld_fuzz.sets;
  Alcotest.(check bool) "both verdicts exercised" true
    (o.Meld_fuzz.accepts > 0 && o.Meld_fuzz.rejects > 0);
  Alcotest.(check bool) "mutants injected" true (o.Meld_fuzz.mutants > 40)

let test_meld_fuzz_deterministic () =
  let seeds = List.init 6 (fun i -> 200 + i) in
  let a = Meld_fuzz.run ~seeds () in
  let b = Meld_fuzz.run ~seeds () in
  Alcotest.(check bool) "identical outcomes" true (a = b)

let test_meld_fuzz_pool_invariant () =
  let seeds = List.init 12 Fun.id in
  let sequential = Meld_fuzz.run ~seeds () in
  let pooled =
    Cgra_util.Pool.with_pool ~domains:4 (fun pool -> Meld_fuzz.run ~pool ~seeds ())
  in
  Alcotest.(check bool) "outcome identical at width 4" true (sequential = pooled)

let () =
  Alcotest.run "meld"
    [
      ( "rules",
        [
          Alcotest.test_case "empty set rejected" `Quick test_empty_rejected;
          Alcotest.test_case "foreign fabric rejected" `Quick
            test_foreign_fabric_rejected;
          Alcotest.test_case "shared PE rejected" `Quick test_shared_pe_rejected;
          Alcotest.test_case "disjoint PEs accepted" `Quick test_disjoint_pes_accepted;
          Alcotest.test_case "grant mismatch rejected" `Quick
            test_grant_mismatch_rejected;
          Alcotest.test_case "overlapping grants rejected" `Quick
            test_overlapping_grants_rejected;
          Alcotest.test_case "non-contiguous pages rejected" `Quick
            test_noncontiguous_pages_rejected;
          Alcotest.test_case "bus collision at the hyperperiod" `Quick
            test_bus_collision_at_hyperperiod;
          Alcotest.test_case "exact resident checked" `Quick
            test_exact_resident_checked;
        ] );
      ( "parity",
        [
          Alcotest.test_case "report matches the runtime" `Quick
            test_report_matches_coexec;
          Alcotest.test_case "single resident hyperperiod" `Quick
            test_single_resident_hyperperiod;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "fixed 40-seed corpus is clean" `Quick
            test_meld_fuzz_corpus;
          Alcotest.test_case "deterministic" `Quick test_meld_fuzz_deterministic;
          Alcotest.test_case "pool-width invariant" `Quick
            test_meld_fuzz_pool_invariant;
        ] );
    ]
