(* The farm front end: seeded determinism at any pool width, admission
   properties, the golden-pinned farm_* stream, and the differential
   cross-checks between the front end's accounting and what the trace
   layer reconstructs. *)

module T = Cgra_trace.Trace
module Export = Cgra_trace.Export
module Hist = Cgra_prof.Metrics.Hist
open Cgra_farm

let small_params =
  {
    Farm.default_params with
    fleet = [ { Farm.size = 4; page_pes = 4 }; { Farm.size = 6; page_pes = 4 } ];
    n_tenants = 2;
    n_requests = 12;
    offered_load = 2.0;
    seed = 42;
  }

let run_ok ?pool ?traced p =
  match Farm.run ?pool ?traced p with
  | Ok r -> r
  | Error e -> Alcotest.failf "Farm.run: %s" e

(* ---------- seeded determinism at any -j ---------- *)

(* [clamp:false] keeps the requested width even on single-core machines,
   so the epoch coordinator's settle phase genuinely fans out across
   domains — the byte-compare then proves the parallel path, not the
   sequential fallback. *)
let test_determinism_across_widths () =
  let surface width =
    Cgra_util.Pool.with_pool ~clamp:false ~domains:width (fun pool ->
        let r = run_ok ~pool ~traced:true Farm.default_params in
        (Farm.render ~log:true r, Export.jsonl r.Farm.farm_events))
  in
  let text1, jsonl1 = surface 1 in
  List.iter
    (fun width ->
      let text, jsonl = surface width in
      Alcotest.(check string)
        (Printf.sprintf "render + retirement log byte-identical at -j %d" width)
        text1 text;
      Alcotest.(check string)
        (Printf.sprintf "farm_* stream byte-identical at -j %d" width)
        jsonl1 jsonl)
    [ 2; 4 ]

let test_same_seed_same_run () =
  let r1 = run_ok small_params in
  let r2 = run_ok small_params in
  Alcotest.(check string) "byte-identical report" (Farm.render ~log:true r1)
    (Farm.render ~log:true r2);
  Alcotest.(check (list (pair (pair int int) (pair int (float 0.0)))))
    "identical retirement log"
    (List.map (fun (a, b, c, d) -> ((a, b), (c, d))) r1.Farm.log)
    (List.map (fun (a, b, c, d) -> ((a, b), (c, d))) r2.Farm.log)

let test_different_seed_different_run () =
  let r1 = run_ok small_params in
  let r2 = run_ok { small_params with seed = 43 } in
  Alcotest.(check bool) "different arrivals" false (r1.Farm.log = r2.Farm.log)

(* ---------- admission properties ---------- *)

(* The stream monitor and the report-conservation checks hold over a
   spread of seeded random cases (mixed fleets, loads, bounds,
   policies): queue depth never exceeds the bound, admits pop the
   tenant's FIFO head, no admitted request is dropped, in-flight stays
   under max_resident, retired + rejected = offered. *)
let test_admission_properties () =
  let o = Farm_fuzz.run ~seeds:(List.init 10 Fun.id) () in
  Alcotest.(check int) "cases" 10 o.Farm_fuzz.cases;
  Alcotest.(check (list string)) "all invariants hold" [] o.Farm_fuzz.failures

let test_rejections_respect_bound () =
  (* a tight bound under heavy load must reject, and still conserve *)
  let p =
    { small_params with offered_load = 8.0; queue_bound = 1; max_resident = 1 }
  in
  let r = run_ok ~traced:true p in
  Alcotest.(check bool) "some rejections" true (r.Farm.rejected > 0);
  Alcotest.(check int) "conservation" r.Farm.offered
    (r.Farm.retired + r.Farm.rejected);
  Alcotest.(check (list string)) "stream invariants" []
    (Farm_fuzz.monitor ~queue_bound:1 ~max_resident:1 r.Farm.farm_events);
  Alcotest.(check (list string)) "report invariants" []
    (Farm_fuzz.check_report r)

(* ---------- golden farm_* stream ---------- *)

(* The small fixed-seed run's JSONL stream is pinned by digest: any
   change to arrival generation, admission order, dispatch policy, the
   shard engines, or the export encoding moves it.  If the change is
   intentional, print the stream and update. *)
let golden_stream_digest = "a7db4b97fef8df832ffa6e3d3dcc3e83"

let test_golden_stream () =
  let r = run_ok ~traced:true small_params in
  let jsonl = Export.jsonl r.Farm.farm_events in
  Alcotest.(check string) "golden farm_* JSONL digest" golden_stream_digest
    (Digest.to_hex (Digest.string jsonl));
  (* and the stream round-trips through the JSONL reader *)
  match Export.of_jsonl jsonl with
  | Error e -> Alcotest.failf "of_jsonl: %s" e
  | Ok events ->
      Alcotest.(check string) "round-trip re-encodes identically" jsonl
        (Export.jsonl events)

(* ---------- differential: spans vs front-end accounting ---------- *)

let test_span_latency_equals_accounting () =
  let r = run_ok ~traced:true small_params in
  let by_rid = Hashtbl.create 16 in
  List.iter (fun (q : Farm.request) -> Hashtbl.replace by_rid q.Farm.rid q)
    r.Farm.requests;
  let retires =
    List.filter_map
      (fun (e : T.event) ->
        match e.T.payload with
        | T.Farm_retire x -> Some (e.T.time, x.req, x.latency)
        | _ -> None)
      r.Farm.farm_events
  in
  Alcotest.(check int) "one retire span per retired request" r.Farm.retired
    (List.length retires);
  List.iter
    (fun (time, rid, latency) ->
      let q = Hashtbl.find by_rid rid in
      Alcotest.check (Alcotest.float 1e-9)
        (Printf.sprintf "r%d retire time = accounting" rid)
        q.Farm.retired_at time;
      Alcotest.check (Alcotest.float 1e-9)
        (Printf.sprintf "r%d span latency = accounting" rid)
        (q.Farm.retired_at -. q.Farm.arrival)
        latency)
    retires

(* ---------- differential: shard streams replay and verify ---------- *)

let test_shard_streams_verify () =
  let r = run_ok ~traced:true small_params in
  List.iter2
    (fun (sr : Farm.shard_report) events ->
      Alcotest.(check (list string))
        (Printf.sprintf "shard %d OS invariants" sr.Farm.s_index)
        []
        (Cgra_verify.Os_fuzz.monitor events);
      Alcotest.(check (list string))
        (Printf.sprintf "shard %d replay reproduces aggregates" sr.Farm.s_index)
        []
        (Cgra_verify.Os_fuzz.replay_check sr.Farm.s_os events))
    r.Farm.shard_reports r.Farm.shard_events

(* ---------- cost-aware dispatch under overload ---------- *)

(* The committed-benchmark claim, as a test: at 2x load with a real
   reconfiguration cost, pricing reshape cycles against the shard's next
   wake-up must cut the p99 latency without giving back throughput.
   Deterministic (fixed seed, virtual clock), so exact comparison is
   safe. *)
let test_cost_aware_improves_overload_tail () =
  let base =
    {
      Farm.default_params with
      offered_load = 2.0;
      reconfig_cost = 100.0;
      policy = Cgra_core.Allocator.Cost_halving;
    }
  in
  let r_ll = run_ok { base with dispatch = Farm.Least_loaded } in
  let r_ca = run_ok { base with dispatch = Farm.Cost_aware } in
  Alcotest.(check bool)
    (Printf.sprintf "p99 improves (%.0f < %.0f)" r_ca.Farm.latency.Hist.p99
       r_ll.Farm.latency.Hist.p99)
    true
    (r_ca.Farm.latency.Hist.p99 < r_ll.Farm.latency.Hist.p99);
  Alcotest.(check bool)
    (Printf.sprintf "throughput holds (%.3f >= %.3f)" r_ca.Farm.throughput
       r_ll.Farm.throughput)
    true
    (r_ca.Farm.throughput >= r_ll.Farm.throughput)

let test_cost_aware_zero_cost_degenerates () =
  (* at reconfig_cost = 0 the deferral predicate is always affordable,
     so Cost_aware must reproduce Least_loaded byte for byte *)
  let base = { small_params with reconfig_cost = 0.0 } in
  let r_ll = run_ok { base with dispatch = Farm.Least_loaded } in
  let r_ca = run_ok { base with dispatch = Farm.Cost_aware } in
  (* the params line names the dispatch, so compare the simulated
     surfaces rather than the full render *)
  Alcotest.(check (list (pair (pair int int) (pair int (float 0.0)))))
    "identical retirement log at zero cost"
    (List.map (fun (a, b, c, d) -> ((a, b), (c, d))) r_ll.Farm.log)
    (List.map (fun (a, b, c, d) -> ((a, b), (c, d))) r_ca.Farm.log);
  Alcotest.check (Alcotest.float 0.0) "identical makespan" r_ll.Farm.makespan
    r_ca.Farm.makespan

let test_served_counts_conserve () =
  let r = run_ok small_params in
  let served =
    List.fold_left (fun a (sr : Farm.shard_report) -> a + sr.Farm.s_served) 0
      r.Farm.shard_reports
  in
  Alcotest.(check int) "shard served sums to retired" r.Farm.retired served

let () =
  Alcotest.run "farm"
    [
      ( "determinism",
        [
          Alcotest.test_case "byte-identical at -j 1/2/4" `Quick
            test_determinism_across_widths;
          Alcotest.test_case "same seed, same run" `Quick test_same_seed_same_run;
          Alcotest.test_case "different seed, different run" `Quick
            test_different_seed_different_run;
        ] );
      ( "admission",
        [
          Alcotest.test_case "properties over seeded cases" `Quick
            test_admission_properties;
          Alcotest.test_case "tight bound rejects, conserves" `Quick
            test_rejections_respect_bound;
        ] );
      ( "golden",
        [ Alcotest.test_case "pinned farm_* stream" `Quick test_golden_stream ] );
      ( "cost-aware",
        [
          Alcotest.test_case "improves overload tail, holds throughput" `Quick
            test_cost_aware_improves_overload_tail;
          Alcotest.test_case "degenerates at zero cost" `Quick
            test_cost_aware_zero_cost_degenerates;
        ] );
      ( "differential",
        [
          Alcotest.test_case "span latency = accounting" `Quick
            test_span_latency_equals_accounting;
          Alcotest.test_case "shard streams verify + replay" `Quick
            test_shard_streams_verify;
          Alcotest.test_case "served counts conserve" `Quick
            test_served_counts_conserve;
        ] );
    ]
