open Cgra_core

(* ---------- Fig. 8 ---------- *)

let test_fig8_rows () =
  match Experiments.fig8 ~size:4 ~page_pes:4 () with
  | Error e -> Alcotest.fail e
  | Ok f ->
      Alcotest.(check int) "eleven rows" 11 (List.length f.rows);
      List.iter
        (fun (r : Experiments.fig8_row) ->
          Alcotest.(check bool) (r.kernel ^ " II_base >= 1") true (r.ii_base >= 1);
          Alcotest.(check bool) (r.kernel ^ " II_paged >= II computed") true
            (r.ii_paged >= 1);
          Alcotest.(check bool) (r.kernel ^ " performance positive") true
            (r.performance_pct > 0.0);
          Alcotest.(check (float 1e-6)) (r.kernel ^ " ratio definition")
            (100.0 *. float_of_int r.ii_base /. float_of_int r.ii_paged)
            r.performance_pct)
        f.rows;
      Alcotest.(check bool) "geomean in (0, 120]" true
        (f.geomean_pct > 0.0 && f.geomean_pct <= 120.0)

let test_fig8_paper_shape_page4_beats_page2 () =
  (* the paper: page size 4 performs (close to) baseline, page size 2
     degrades — the ordering must hold for the geomean *)
  let g8 page = (Result.get_ok (Experiments.fig8 ~size:4 ~page_pes:page ())).Experiments.geomean_pct in
  Alcotest.(check bool) "p4 >= p2" true (g8 4 >= g8 2 -. 1e-6)

let test_fig8_omits_4x4_p8 () =
  match Experiments.fig8 ~size:4 ~page_pes:8 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "4x4 with 8-PE pages must be omitted"

let test_fig8_all_page_sizes () =
  Alcotest.(check int) "4x4 has two sub-plots" 2
    (List.length (Experiments.fig8_all ~size:4 ()));
  Alcotest.(check int) "6x6 has three" 3 (List.length (Experiments.fig8_all ~size:6 ()));
  Alcotest.(check int) "8x8 has three" 3 (List.length (Experiments.fig8_all ~size:8 ()))

let test_fig8_deterministic () =
  let a = Result.get_ok (Experiments.fig8 ~size:4 ~page_pes:4 ()) in
  let b = Result.get_ok (Experiments.fig8 ~size:4 ~page_pes:4 ()) in
  Alcotest.(check bool) "same rows" true (a.rows = b.rows)

let test_fig8_render () =
  let f = Result.get_ok (Experiments.fig8 ~size:4 ~page_pes:4 ()) in
  let s = Experiments.render_fig8 f in
  Alcotest.(check bool) "mentions geomean" true
    (let rec find i =
       i + 7 <= String.length s && (String.sub s i 7 = "geomean" || find (i + 1))
     in
     find 0)

(* ---------- Fig. 9 ---------- *)

let fig9_4x4 =
  lazy (Result.get_ok (Experiments.fig9 ~replicates:1 ~size:4 ~page_pes:4 ()))

let test_fig9_structure () =
  let f = Lazy.force fig9_4x4 in
  Alcotest.(check int) "three needs" 3 (List.length f.series);
  List.iter
    (fun (s : Experiments.fig9_series) ->
      Alcotest.(check int) "five thread counts" 5 (List.length s.points);
      Alcotest.(check (list int)) "thread counts" [ 1; 2; 4; 8; 16 ]
        (List.map (fun (p : Experiments.fig9_point) -> p.n_threads) s.points))
    f.series

let test_fig9_improvement_grows_with_threads () =
  let f = Lazy.force fig9_4x4 in
  List.iter
    (fun (s : Experiments.fig9_series) ->
      let at n =
        (List.find (fun (p : Experiments.fig9_point) -> p.n_threads = n) s.points)
          .improvement_pct
      in
      Alcotest.(check bool)
        (Printf.sprintf "T16 beats T1 at need %.2f" s.cgra_need)
        true
        (at 16 > at 1))
    f.series

let best_t16 ~size ~page_pes ~replicates =
  match Experiments.fig9 ~replicates ~size ~page_pes () with
  | Error e -> Alcotest.fail e
  | Ok f ->
      List.fold_left
        (fun acc (s : Experiments.fig9_series) ->
          List.fold_left
            (fun acc (p : Experiments.fig9_point) ->
              if p.n_threads = 16 then Float.max acc p.improvement_pct else acc)
            acc s.points)
        neg_infinity f.series

let test_fig9_paper_headline_4x4 () =
  (* the paper reports >30% on 4x4 at high load (best page size); we
     measure ~27% — same order, recorded in EXPERIMENTS.md *)
  Alcotest.(check bool) "over 20% at 16 threads" true
    (best_t16 ~size:4 ~page_pes:4 ~replicates:2 > 20.0)

let test_fig9_paper_headline_6x6 () =
  (* the paper reports >75% on 6x6 *)
  Alcotest.(check bool) "over 75% at 16 threads" true
    (best_t16 ~size:6 ~page_pes:4 ~replicates:2 > 75.0)

let test_fig9_paper_headline_8x8 () =
  (* the paper reports >150% on 8x8 *)
  Alcotest.(check bool) "over 150% at 16 threads" true
    (best_t16 ~size:8 ~page_pes:4 ~replicates:2 > 150.0)

let test_fig9_multithreading_raises_throughput_under_load () =
  (* Section IV: throughput rises exactly when utilization rises — under
     load the multithreaded CGRA keeps its pages nearly always allocated
     and delivers more instructions per cycle *)
  let f = Lazy.force fig9_4x4 in
  List.iter
    (fun (s : Experiments.fig9_series) ->
      let t16 =
        List.find (fun (p : Experiments.fig9_point) -> p.n_threads = 16) s.points
      in
      Alcotest.(check bool) "pages nearly always allocated" true
        (t16.utilization_multi > 0.8);
      Alcotest.(check bool) "IPC up at 16 threads" true
        (t16.ipc_multi > t16.ipc_single))
    f.series

let test_fig9_stalls_on_small_fabric () =
  (* 4x4: many more threads than pages forces stalls (the paper's
     observed bottleneck) *)
  let f = Lazy.force fig9_4x4 in
  let any_stalls =
    List.exists
      (fun (s : Experiments.fig9_series) ->
        List.exists
          (fun (p : Experiments.fig9_point) -> p.n_threads = 16 && p.stalls > 0)
          s.points)
      f.series
  in
  Alcotest.(check bool) "stalls observed at 16 threads" true any_stalls

let test_fig9_transformations_happen () =
  let f = Lazy.force fig9_4x4 in
  let t16_transforms =
    List.fold_left
      (fun acc (s : Experiments.fig9_series) ->
        List.fold_left
          (fun acc (p : Experiments.fig9_point) ->
            if p.n_threads >= 4 then acc + p.transformations else acc)
          acc s.points)
      0 f.series
  in
  Alcotest.(check bool) "PageMaster invoked under contention" true (t16_transforms > 0)

let test_fig9_deterministic () =
  let a = Result.get_ok (Experiments.fig9 ~replicates:1 ~size:4 ~page_pes:4 ()) in
  let b = Result.get_ok (Experiments.fig9 ~replicates:1 ~size:4 ~page_pes:4 ()) in
  Alcotest.(check bool) "same series" true (a.series = b.series)

let test_fig9_parallel_identical () =
  (* the tentpole determinism contract: the full fig9 grid rendered at 1
     domain and at 4 domains must be byte-identical *)
  let render pool =
    Experiments.render_fig9
      (Result.get_ok (Experiments.fig9 ~replicates:2 ?pool ~size:4 ~page_pes:4 ()))
  in
  let sequential = render None in
  Cgra_util.Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check string) "1 vs 4 domains" sequential (render (Some pool)))

let test_fig9_render () =
  let s = Experiments.render_fig9 (Lazy.force fig9_4x4) in
  Alcotest.(check bool) "has header" true (String.length s > 100)

let test_constants () =
  Alcotest.(check (list int)) "sizes" [ 4; 6; 8 ] Experiments.cgra_sizes;
  Alcotest.(check (list int)) "page sizes" [ 2; 4; 8 ] Experiments.page_sizes

(* ---------- ablations ---------- *)

let metric row name =
  match List.assoc_opt name row.Experiments.metrics with
  | Some v -> v
  | None -> Alcotest.failf "missing metric %s" name

let test_ablation_reconfig_monotone () =
  match
    Experiments.ablation_reconfig_cost ~size:4 ~page_pes:4 ~costs:[ 0; 1000; 100000 ] ()
  with
  | Error e -> Alcotest.fail e
  | Ok rows ->
      Alcotest.(check int) "three rows" 3 (List.length rows);
      let t16 = List.map (fun r -> metric r "T16 improvement %") rows in
      (match t16 with
      | [ free; mid; huge ] ->
          Alcotest.(check bool) "gain erodes with cost" true (free > mid && mid > huge);
          Alcotest.(check bool) "huge cost kills multithreading" true (huge < 0.0)
      | _ -> Alcotest.fail "rows")

let test_ablation_policy_rows () =
  match Experiments.ablation_policy ~size:4 ~page_pes:4 () with
  | Error e -> Alcotest.fail e
  | Ok rows ->
      Alcotest.(check int) "two policies" 2 (List.length rows);
      List.iter
        (fun r ->
          Alcotest.(check bool) "reshape counts recorded" true
            (metric r "T16 reshapes" >= 0.0))
        rows

let test_ablation_mem_ports_rows () =
  match Experiments.ablation_mem_ports ~size:4 ~page_pes:4 ~ports:[ 1; 2 ] () with
  | Error e -> Alcotest.fail e
  | Ok rows ->
      Alcotest.(check int) "two rows" 2 (List.length rows);
      List.iter
        (fun r ->
          let g = metric r "Fig.8 geomean %" in
          Alcotest.(check bool) "geomean sane" true (g > 0.0 && g <= 120.0))
        rows

let test_ablation_render () =
  match Experiments.ablation_mem_ports ~size:4 ~page_pes:4 ~ports:[ 2 ] () with
  | Error e -> Alcotest.fail e
  | Ok rows ->
      let s = Experiments.render_ablation ~title:"t" rows in
      Alcotest.(check bool) "non-empty" true (String.length s > 10)

let () =
  Alcotest.run "experiments"
    [
      ( "fig8",
        [
          Alcotest.test_case "rows" `Quick test_fig8_rows;
          Alcotest.test_case "page 4 beats page 2" `Quick
            test_fig8_paper_shape_page4_beats_page2;
          Alcotest.test_case "omits 4x4 p8" `Quick test_fig8_omits_4x4_p8;
          Alcotest.test_case "all page sizes" `Slow test_fig8_all_page_sizes;
          Alcotest.test_case "deterministic" `Quick test_fig8_deterministic;
          Alcotest.test_case "render" `Quick test_fig8_render;
        ] );
      ( "fig9",
        [
          Alcotest.test_case "structure" `Quick test_fig9_structure;
          Alcotest.test_case "improvement grows with threads" `Quick
            test_fig9_improvement_grows_with_threads;
          Alcotest.test_case "paper headline 4x4" `Quick test_fig9_paper_headline_4x4;
          Alcotest.test_case "paper headline 6x6" `Slow test_fig9_paper_headline_6x6;
          Alcotest.test_case "paper headline 8x8" `Slow test_fig9_paper_headline_8x8;
          Alcotest.test_case "throughput raised under load" `Quick
            test_fig9_multithreading_raises_throughput_under_load;
          Alcotest.test_case "stalls on small fabric" `Quick
            test_fig9_stalls_on_small_fabric;
          Alcotest.test_case "transformations happen" `Quick
            test_fig9_transformations_happen;
          Alcotest.test_case "deterministic" `Quick test_fig9_deterministic;
          Alcotest.test_case "parallel identical to sequential" `Quick
            test_fig9_parallel_identical;
          Alcotest.test_case "render" `Quick test_fig9_render;
        ] );
      ("constants", [ Alcotest.test_case "sizes" `Quick test_constants ]);
      ( "ablations",
        [
          Alcotest.test_case "reconfig cost monotone" `Quick
            test_ablation_reconfig_monotone;
          Alcotest.test_case "policy rows" `Quick test_ablation_policy_rows;
          Alcotest.test_case "mem ports rows" `Quick test_ablation_mem_ports_rows;
          Alcotest.test_case "render" `Quick test_ablation_render;
        ] );
    ]
