open Cgra_arch
open Cgra_dfg
open Cgra_mapper

let arch_4x4_p4 () = Option.get (Cgra.standard ~size:4 ~page_pes:4)

let arch_4x4_p2 () = Option.get (Cgra.standard ~size:4 ~page_pes:2)

let arch_6x6_p8 () = Option.get (Cgra.standard ~size:6 ~page_pes:8)

let map_ok kind arch g =
  match Scheduler.map kind arch g with
  | Ok m -> m
  | Error e -> Alcotest.failf "mapping failed: %s" e

let assert_valid ?check_mem m =
  match Mapping.validate ?check_mem m with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid mapping: %s" (String.concat "; " es)

(* ---------- whole-suite mapping ---------- *)

let test_suite_maps_and_validates kind arch_fn () =
  let arch = arch_fn () in
  List.iter
    (fun (k : Cgra_kernels.Kernels.t) ->
      let m = map_ok kind arch k.graph in
      assert_valid m;
      Alcotest.(check bool) (k.name ^ " ii >= mii") true
        (m.ii >= Scheduler.mii kind arch k.graph))
    Cgra_kernels.Kernels.all

let test_paged_uses_prefix_pages () =
  let arch = arch_4x4_p4 () in
  List.iter
    (fun (k : Cgra_kernels.Kernels.t) ->
      let m = map_ok Paged arch k.graph in
      let used = Mapping.pages_used m in
      List.iteri
        (fun i pg -> Alcotest.(check int) (k.name ^ " prefix") i pg)
        used)
    Cgra_kernels.Kernels.all

let test_paged_packs_fewer_pages () =
  (* small kernels should leave fabric unused under the paged compiler *)
  let arch = arch_6x6_p8 () in
  let k = Cgra_kernels.Kernels.find_exn "mpeg" in
  let m = map_ok Paged arch k.graph in
  Alcotest.(check bool) "mpeg fits in one 8-PE page" true
    (Mapping.n_pages_used m <= 2)

let test_mapping_deterministic () =
  let arch = arch_4x4_p4 () in
  let k = Cgra_kernels.Kernels.find_exn "sobel" in
  let a = map_ok Paged arch k.graph in
  let b = map_ok Paged arch k.graph in
  Alcotest.(check int) "same ii" a.ii b.ii;
  Alcotest.(check bool) "same placements" true (a.placements = b.placements)

let test_race_matches_sequential () =
  (* the speculative (II, attempt) race must be bit-identical to the
     sequential ladder at any pool width — same mapping on success, same
     Error text on failure.  (The pool clamps to the machine's cores, so
     on a single-core host this exercises the lazy fallback; on
     multi-core hosts the same check covers the raced path.) *)
  let arch = arch_4x4_p4 () in
  Cgra_util.Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun (k : Cgra_kernels.Kernels.t) ->
          List.iter
            (fun (kind, tag) ->
              let seq = map_ok kind arch k.graph in
              match Scheduler.map ~pool kind arch k.graph with
              | Error e -> Alcotest.failf "raced %s %s failed: %s" k.name tag e
              | Ok raced ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s %s: raced = sequential" k.name tag)
                    true
                    ((seq.Mapping.ii, seq.placements, seq.routes, seq.paged)
                    = (raced.Mapping.ii, raced.placements, raced.routes,
                       raced.paged)))
            [ (Scheduler.Unconstrained, "base"); (Scheduler.Paged, "paged") ])
        Cgra_kernels.Kernels.all;
      (* infeasible case: identical Error text, produced only after every
         candidate up to max_ii is exhausted *)
      let k = Cgra_kernels.Kernels.find_exn "sobel" in
      match
        ( Scheduler.map ~max_ii:1 Paged arch k.graph,
          Scheduler.map ~max_ii:1 ~pool Paged arch k.graph )
      with
      | Error a, Error b -> Alcotest.(check string) "same error text" a b
      | _ -> Alcotest.fail "expected Error from both ladders")

let test_seed_changes_search () =
  let arch = arch_4x4_p4 () in
  let k = Cgra_kernels.Kernels.find_exn "sobel" in
  let a = map_ok Paged arch k.graph in
  match Scheduler.map ~seed:99 Paged arch k.graph with
  | Ok b -> Alcotest.(check bool) "both valid" true (a.ii >= 1 && b.ii >= 1)
  | Error e -> Alcotest.failf "seed 99 failed: %s" e

let test_mii_lower_bounds () =
  let arch = arch_4x4_p4 () in
  let sor = Cgra_kernels.Kernels.find_exn "sor" in
  Alcotest.(check int) "sor MII = RecMII = 3" 3 (Scheduler.mii Unconstrained arch sor.graph);
  let sobel = Cgra_kernels.Kernels.find_exn "sobel" in
  Alcotest.(check bool) "sobel MII >= 2 (resources)" true
    (Scheduler.mii Unconstrained arch sobel.graph >= 2)

let test_consts_not_placed () =
  let arch = arch_4x4_p4 () in
  let k = Cgra_kernels.Kernels.find_exn "mpeg" in
  let m = map_ok Unconstrained arch k.graph in
  Array.iteri
    (fun v pl ->
      match ((Graph.node m.graph v).op, pl) with
      | Op.Const _, Some _ -> Alcotest.fail "const placed"
      | Op.Const _, None -> ()
      | _, None -> Alcotest.fail "op unplaced"
      | _, Some _ -> ())
    m.placements

let test_unmappable_reports_error () =
  (* a graph needing more simultaneous memory ports than the fabric has at
     II=max cannot fit on a 1-wide window; use tiny max_ii to force error *)
  let k = Cgra_kernels.Kernels.find_exn "sobel" in
  let arch = arch_4x4_p4 () in
  match Scheduler.map ~max_ii:1 Paged arch k.graph with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure at max_ii 1"

(* ---------- validator negative cases ---------- *)

let tiny_graph () =
  (* load -> abs -> store, plus a second const-fed store for variety *)
  Graph.create ~name:"tiny"
    ~ops:
      [
        Op.Load { array = "a"; offset = 0; stride = 1 };
        Op.Abs;
        Op.Store { array = "b"; offset = 0; stride = 1 };
      ]
    ~edges:[ (0, 1, 0, 0); (1, 2, 0, 0) ]

let place ~row ~col ~time = Some { Mapping.pe = Coord.make ~row ~col; time }

let manual_mapping ?(paged = false) ?(routes = []) ~ii placements =
  {
    Mapping.arch = arch_4x4_p4 ();
    graph = tiny_graph ();
    ii;
    placements = Array.of_list placements;
    routes;
    paged;
  }

let expect_invalid_with fragment m =
  match Mapping.validate m with
  | Ok () -> Alcotest.failf "expected invalid (%s)" fragment
  | Error es ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "mentions %s in: %s" fragment (String.concat "; " es))
        true
        (List.exists (fun e -> contains e fragment) es)

let test_validate_ok_manual () =
  let m =
    manual_mapping ~ii:2
      [ place ~row:0 ~col:0 ~time:0; place ~row:0 ~col:1 ~time:1; place ~row:1 ~col:1 ~time:2 ]
  in
  assert_valid m

let test_validate_slot_conflict () =
  let m =
    manual_mapping ~ii:1
      [ place ~row:0 ~col:0 ~time:0; place ~row:0 ~col:0 ~time:1; place ~row:0 ~col:1 ~time:2 ]
  in
  (* nodes 0 and 1 share PE (0,0) with ii=1: same modulo slot *)
  expect_invalid_with "slot conflict" m

let test_validate_unreachable () =
  let m =
    manual_mapping ~ii:4
      [ place ~row:0 ~col:0 ~time:0; place ~row:3 ~col:3 ~time:1; place ~row:3 ~col:2 ~time:2 ]
  in
  expect_invalid_with "cannot read" m

let test_validate_time_order () =
  let m =
    manual_mapping ~ii:4
      [ place ~row:0 ~col:0 ~time:2; place ~row:0 ~col:1 ~time:2; place ~row:1 ~col:1 ~time:3 ]
  in
  expect_invalid_with "before value ready" m

let test_validate_unplaced () =
  let m =
    manual_mapping ~ii:2
      [ place ~row:0 ~col:0 ~time:0; None; place ~row:1 ~col:1 ~time:2 ]
  in
  expect_invalid_with "unplaced" m

let test_validate_negative_time () =
  let m =
    manual_mapping ~ii:2
      [ place ~row:0 ~col:0 ~time:(-1); place ~row:0 ~col:1 ~time:1; place ~row:1 ~col:1 ~time:2 ]
  in
  expect_invalid_with "negative" m

let test_validate_ring_violation () =
  (* paged: node 1 in page 0 consuming from node 0 in page 1 goes backwards *)
  let m =
    manual_mapping ~paged:true ~ii:4
      [ place ~row:0 ~col:2 ~time:0; place ~row:0 ~col:1 ~time:1; place ~row:1 ~col:1 ~time:2 ]
  in
  expect_invalid_with "cannot read" m

let test_validate_mem_ports () =
  (* three loads on one row at the same modulo slot exceed 2 ports/row *)
  let g =
    Graph.create ~name:"loads"
      ~ops:
        [
          Op.Load { array = "a"; offset = 0; stride = 1 };
          Op.Load { array = "a"; offset = 1; stride = 1 };
          Op.Load { array = "a"; offset = 2; stride = 1 };
          Op.Store { array = "b"; offset = 0; stride = 1 };
        ]
      ~edges:[ (0, 3, 0, 0) ]
  in
  let m =
    {
      Mapping.arch = arch_4x4_p4 ();
      graph = g;
      ii = 1;
      placements =
        Array.of_list
          [
            place ~row:0 ~col:0 ~time:0;
            place ~row:0 ~col:1 ~time:0;
            place ~row:0 ~col:2 ~time:0;
            place ~row:1 ~col:0 ~time:1;
          ];
      routes = [];
      paged = false;
    }
  in
  expect_invalid_with "memory ports" m;
  match Mapping.validate ~check_mem:false m with
  | Ok () -> ()
  | Error es -> Alcotest.failf "check_mem:false should pass: %s" (String.concat ";" es)

let test_validate_rf_capacity () =
  (* a value read rf_capacity+1 IIs later needs too many rotating regs *)
  let arch =
    Cgra.make ~rf_capacity:2
      (Page.rect (Grid.square 4) ~tile_rows:2 ~tile_cols:2)
  in
  let m =
    {
      (manual_mapping ~ii:1
         [ place ~row:0 ~col:0 ~time:0; place ~row:0 ~col:1 ~time:4; place ~row:1 ~col:1 ~time:5 ])
      with
      arch;
    }
  in
  expect_invalid_with "registers" m

let test_validate_memdep_violation () =
  (* store a[i] feeds load a[i-2] two iterations later (true dependence,
     distance 2).  Scheduling the store far after the load breaks the
     sequential memory order even though no data edge connects them. *)
  let g =
    Graph.create ~name:"st-ld"
      ~ops:
        [
          Op.Load { array = "x"; offset = 0; stride = 1 };
          Op.Store { array = "a"; offset = 0; stride = 1 };
          Op.Load { array = "a"; offset = -2; stride = 1 };
          Op.Store { array = "b"; offset = 0; stride = 1 };
        ]
      ~edges:[ (0, 1, 0, 0); (2, 3, 0, 0) ]
  in
  let m =
    {
      Mapping.arch = arch_4x4_p4 ();
      graph = g;
      ii = 1;
      (* load of a[] at time 0; store to a[] at time 10: the load of
         iteration i (cycle i) reads before the store of iteration i-2
         (cycle i+8) wrote the cell *)
      placements =
        Array.of_list
          [
            place ~row:0 ~col:0 ~time:9;
            place ~row:0 ~col:1 ~time:10;
            place ~row:2 ~col:0 ~time:0;
            place ~row:2 ~col:1 ~time:1;
          ];
      routes = [];
      paged = false;
    }
  in
  expect_invalid_with "memory ordering" m

(* ---------- routes ---------- *)

let test_route_through_pe () =
  (* producer at (0,0), consumer at (0,3): needs hops *)
  let g =
    Graph.create ~name:"far"
      ~ops:
        [
          Op.Load { array = "a"; offset = 0; stride = 1 };
          Op.Store { array = "b"; offset = 0; stride = 1 };
        ]
      ~edges:[ (0, 1, 0, 0) ]
  in
  let hop t r c = { Mapping.pe = Coord.make ~row:r ~col:c; time = t } in
  let m =
    {
      Mapping.arch = arch_4x4_p4 ();
      graph = g;
      ii = 4;
      placements = Array.of_list [ place ~row:0 ~col:0 ~time:0; place ~row:0 ~col:3 ~time:3 ];
      routes = [ { Mapping.edge = { src = 0; dst = 1; operand = 0; distance = 0 }; hops = [ hop 1 0 1; hop 2 0 2 ] } ];
      paged = false;
    }
  in
  assert_valid m;
  (* dropping the route must fail *)
  expect_invalid_with "cannot read" { m with routes = [] }

let test_router_finds_path () =
  let arch = arch_4x4_p4 () in
  let grid = arch.Cgra.grid in
  let free _ _ = true in
  let read_adjacent a b = Coord.equal a b || Coord.adjacent a b in
  match
    Router.find ~grid ~ii:4 ~free ~allowed:(fun _ -> true) ~read_adjacent
      ~src:{ Mapping.pe = Coord.make ~row:0 ~col:0; time = 0 }
      ~dst_pe:(Coord.make ~row:3 ~col:3) ~deadline:8 ~max_hops:8 ()
  with
  | Some hops ->
      Alcotest.(check bool) "needs >= 4 hops" true (List.length hops >= 4);
      (* chain is contiguous in space and increasing in time *)
      let rec check prev = function
        | [] -> ()
        | (h : Mapping.placement) :: rest ->
            Alcotest.(check bool) "adjacent" true
              (read_adjacent prev.Mapping.pe h.pe);
            Alcotest.(check bool) "later" true (h.time > prev.Mapping.time);
            check h rest
      in
      check { Mapping.pe = Coord.make ~row:0 ~col:0; time = 0 } hops
  | None -> Alcotest.fail "no route"

let test_router_direct_case () =
  let arch = arch_4x4_p4 () in
  match
    Router.find ~grid:arch.Cgra.grid ~ii:2
      ~free:(fun _ _ -> true)
      ~allowed:(fun _ -> true)
      ~read_adjacent:(fun a b -> Coord.equal a b || Coord.adjacent a b)
      ~src:{ Mapping.pe = Coord.make ~row:0 ~col:0; time = 0 }
      ~dst_pe:(Coord.make ~row:0 ~col:1) ~deadline:5 ~max_hops:4 ()
  with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "expected no hops"
  | None -> Alcotest.fail "expected direct"

let test_router_respects_deadline () =
  let arch = arch_4x4_p4 () in
  match
    Router.find ~grid:arch.Cgra.grid ~ii:8
      ~free:(fun _ _ -> true)
      ~allowed:(fun _ -> true)
      ~read_adjacent:(fun a b -> Coord.equal a b || Coord.adjacent a b)
      ~src:{ Mapping.pe = Coord.make ~row:0 ~col:0; time = 0 }
      ~dst_pe:(Coord.make ~row:3 ~col:3) ~deadline:2 ~max_hops:8 ()
  with
  | None -> ()
  | Some _ -> Alcotest.fail "deadline too tight for 4 hops"

let test_router_respects_occupancy () =
  (* wall of busy slots in column 1 except one cell forces the path
     through that cell *)
  let arch = arch_4x4_p4 () in
  let free (pe : Coord.t) _ = not (pe.col = 1 && pe.row <> 2) in
  match
    Router.find ~grid:arch.Cgra.grid ~ii:8 ~free
      ~allowed:(fun _ -> true)
      ~read_adjacent:(fun a b -> Coord.equal a b || Coord.adjacent a b)
      ~src:{ Mapping.pe = Coord.make ~row:0 ~col:0; time = 0 }
      ~dst_pe:(Coord.make ~row:0 ~col:3) ~deadline:20 ~max_hops:10 ()
  with
  | Some hops ->
      Alcotest.(check bool) "path uses the gap" true
        (List.exists
           (fun (h : Mapping.placement) -> h.pe.Coord.col = 1 && h.pe.Coord.row = 2)
           hops
        || List.for_all (fun (h : Mapping.placement) -> h.pe.Coord.col <> 1) hops)
  | None -> Alcotest.fail "router should find a detour"

(* ---------- bandwidth-aware scheduling ---------- *)

let grid_fabrics = [ (4, 2); (4, 4); (6, 2); (6, 4); (6, 8); (8, 2); (8, 4); (8, 8) ]

let test_bus_aware_ii_monotone () =
  (* The bus-aware ladder replays the complete legacy attempt family
     byte-identically after its own family, so for every (kernel,
     fabric, seed) cell of the Fig. 8 grid the achieved paged II can
     only improve.  264 cells: 11 kernels x 8 fabric/page combos x 3
     seeds, each compiled both ways. *)
  List.iter
    (fun (size, page_pes) ->
      let arch = Option.get (Cgra.standard ~size ~page_pes) in
      List.iter
        (fun (k : Cgra_kernels.Kernels.t) ->
          List.iter
            (fun seed ->
              let tag =
                Printf.sprintf "%s %dx%d p%d seed %d" k.name size size page_pes
                  seed
              in
              let compile ~bus_aware =
                match Scheduler.map ~seed ~bus_aware Paged arch k.graph with
                | Ok m -> m
                | Error e -> Alcotest.failf "%s (bus_aware=%b) failed: %s" tag bus_aware e
              in
              let legacy = compile ~bus_aware:false in
              let bus = compile ~bus_aware:true in
              assert_valid bus;
              if bus.ii > legacy.ii then
                Alcotest.failf "%s: bus-aware II %d worse than legacy II %d" tag
                  bus.ii legacy.ii)
            [ 0; 1; 2 ])
        Cgra_kernels.Kernels.all)
    grid_fabrics

let test_bus_aware_race_identical () =
  (* byte-identical results at -j 1/2/4 with the bus-aware family in the
     raced ladder (the lowest-index-winner contract must survive the
     doubled per-II attempt space) *)
  let kernels =
    List.map Cgra_kernels.Kernels.find_exn [ "yuv2rgb"; "swim"; "sobel" ]
  in
  List.iter
    (fun (size, page_pes) ->
      let arch = Option.get (Cgra.standard ~size ~page_pes) in
      List.iter
        (fun (k : Cgra_kernels.Kernels.t) ->
          let seq = map_ok Paged arch k.graph in
          List.iter
            (fun j ->
              Cgra_util.Pool.with_pool ~domains:j (fun pool ->
                  match Scheduler.map ~pool Paged arch k.graph with
                  | Error e ->
                      Alcotest.failf "%s %dx%d p%d -j %d failed: %s" k.name size
                        size page_pes j e
                  | Ok raced ->
                      Alcotest.(check bool)
                        (Printf.sprintf "%s %dx%d p%d -j %d = sequential" k.name
                           size size page_pes j)
                        true
                        ((seq.Mapping.ii, seq.placements, seq.routes)
                        = (raced.Mapping.ii, raced.placements, raced.routes))))
            [ 1; 2; 4 ])
        kernels)
    grid_fabrics

(* ---------- properties over synthetic kernels ---------- *)

let prop_synthetic_maps_validate kind name =
  QCheck.Test.make ~name ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let cfg =
        {
          Cgra_kernels.Synthetic.n_ops = 8 + (seed mod 10);
          mem_fraction = 0.3;
          recurrence = seed mod 3 = 0;
        }
      in
      let g = Cgra_kernels.Synthetic.generate ~seed cfg in
      match Scheduler.map kind (arch_4x4_p4 ()) g with
      | Ok m -> Mapping.validate m = Ok ()
      | Error _ -> false)

let test_steps_cover_edges () =
  let arch = arch_4x4_p4 () in
  let k = Cgra_kernels.Kernels.find_exn "laplace" in
  let m = map_ok Paged arch k.graph in
  let non_const_edges =
    List.filter
      (fun (e : Graph.edge) ->
        match (Graph.node m.graph e.src).op with Op.Const _ -> false | _ -> true)
      (Graph.edges m.graph)
  in
  Alcotest.(check bool) "at least one step per non-const edge" true
    (List.length (Mapping.steps m) >= List.length non_const_edges)

let test_mapping_stats () =
  let arch = arch_4x4_p4 () in
  let k = Cgra_kernels.Kernels.find_exn "mpeg" in
  let m = map_ok Unconstrained arch k.graph in
  Alcotest.(check bool) "utilization in (0,1]" true
    (Mapping.utilization m > 0.0 && Mapping.utilization m <= 1.0);
  Alcotest.(check bool) "schedule length >= ii" true (Mapping.schedule_length m >= m.ii);
  Alcotest.(check bool) "pages used non-empty" true (Mapping.n_pages_used m >= 1)

let () =
  Alcotest.run "mapper"
    [
      ( "suite",
        [
          Alcotest.test_case "baseline maps 4x4p4" `Quick
            (test_suite_maps_and_validates Scheduler.Unconstrained arch_4x4_p4);
          Alcotest.test_case "paged maps 4x4p4" `Quick
            (test_suite_maps_and_validates Scheduler.Paged arch_4x4_p4);
          Alcotest.test_case "paged maps 4x4p2" `Quick
            (test_suite_maps_and_validates Scheduler.Paged arch_4x4_p2);
          Alcotest.test_case "paged maps 6x6p8 (band)" `Quick
            (test_suite_maps_and_validates Scheduler.Paged arch_6x6_p8);
          Alcotest.test_case "paged prefix pages" `Quick test_paged_uses_prefix_pages;
          Alcotest.test_case "paged packs pages" `Quick test_paged_packs_fewer_pages;
          Alcotest.test_case "deterministic" `Quick test_mapping_deterministic;
          Alcotest.test_case "raced = sequential" `Quick
            test_race_matches_sequential;
          Alcotest.test_case "seed variation" `Quick test_seed_changes_search;
          Alcotest.test_case "mii bounds" `Quick test_mii_lower_bounds;
          Alcotest.test_case "consts not placed" `Quick test_consts_not_placed;
          Alcotest.test_case "unmappable errors" `Quick test_unmappable_reports_error;
          Alcotest.test_case "steps cover edges" `Quick test_steps_cover_edges;
          Alcotest.test_case "stats" `Quick test_mapping_stats;
        ] );
      ( "validate",
        [
          Alcotest.test_case "manual ok" `Quick test_validate_ok_manual;
          Alcotest.test_case "slot conflict" `Quick test_validate_slot_conflict;
          Alcotest.test_case "unreachable" `Quick test_validate_unreachable;
          Alcotest.test_case "time order" `Quick test_validate_time_order;
          Alcotest.test_case "unplaced node" `Quick test_validate_unplaced;
          Alcotest.test_case "negative time" `Quick test_validate_negative_time;
          Alcotest.test_case "ring violation" `Quick test_validate_ring_violation;
          Alcotest.test_case "memory ports" `Quick test_validate_mem_ports;
          Alcotest.test_case "rf capacity" `Quick test_validate_rf_capacity;
          Alcotest.test_case "memdep ordering" `Quick test_validate_memdep_violation;
        ] );
      ( "router",
        [
          Alcotest.test_case "route through PEs" `Quick test_route_through_pe;
          Alcotest.test_case "finds path" `Quick test_router_finds_path;
          Alcotest.test_case "direct case" `Quick test_router_direct_case;
          Alcotest.test_case "deadline" `Quick test_router_respects_deadline;
          Alcotest.test_case "occupancy detour" `Quick test_router_respects_occupancy;
        ] );
      ( "bus-aware",
        [
          Alcotest.test_case "II monotone over the Fig. 8 grid" `Slow
            test_bus_aware_ii_monotone;
          Alcotest.test_case "raced = sequential at -j 1/2/4" `Slow
            test_bus_aware_race_identical;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest
            (prop_synthetic_maps_validate Scheduler.Unconstrained
               "synthetic kernels map (baseline) and validate");
          QCheck_alcotest.to_alcotest
            (prop_synthetic_maps_validate Scheduler.Paged
               "synthetic kernels map (paged) and validate");
        ] );
    ]
