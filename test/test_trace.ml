(* The tracing subsystem's contract, from the bottom up: the hand-rolled
   JSON round-trips, a disabled sink is silent, a live trace is a
   byte-stable golden for a fixed seed, the Chrome export is valid JSON
   with every event kind represented, the invariant monitor rejects
   corrupted streams, and — the headline — Replay folds the event stream
   back into the exact result record the simulator returned, across the
   whole Fig. 9 grid. *)

open Cgra_arch
open Cgra_core
module T = Cgra_trace.Trace
module Json = Cgra_trace.Json
module Export = Cgra_trace.Export
module Replay = Cgra_trace.Replay

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let arch size page_pes = Option.get (Cgra.standard ~size ~page_pes)

let suite_for a =
  match Binary.compile_suite a with
  | Ok s -> s
  | Error e -> Alcotest.failf "compile_suite: %s" e

let suite_4x4_p4 = lazy (suite_for (arch 4 4))

let traced_run ?policy ?reconfig_cost ~seed ~n_threads ~need ~mode () =
  let suite = Lazy.force suite_4x4_p4 in
  let threads = Workload.generate ~seed ~n_threads ~cgra_need:need ~suite () in
  let trace = T.make () in
  let r =
    Os_sim.run ?policy ?reconfig_cost ~trace
      { Os_sim.suite; threads; total_pages = 4; mode }
  in
  (r, T.events trace)

(* ---------- Json ---------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Num 1.0);
        ("b", Json.Str "x\"y\n\t\\z");
        ("c", Json.Arr [ Json.Null; Json.Bool true; Json.Num (-0.125) ]);
        ("d", Json.Obj []);
        ("e", Json.Num 1e300);
        ("f", Json.Num 0.1);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.failf "parse: %s" e

let test_json_integral_floats () =
  Alcotest.(check string) "integers stay integral" "[0,1,-7,9007199254740992]"
    (Json.to_string
       (Json.Arr
          [ Json.num_of_int 0; Json.num_of_int 1; Json.num_of_int (-7);
            Json.Num 9007199254740992.0 ]))

let test_json_rejects_garbage () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "{\"a\":1,}";
  bad "[1] trailing";
  bad "nul";
  bad "\"unterminated"

let test_json_unicode_escape () =
  match Json.parse "\"a\\u0041\\n\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "decoded" "aA\n" s
  | Ok _ -> Alcotest.fail "wrong constructor"
  | Error e -> Alcotest.failf "parse: %s" e

(* ---------- the sink ---------- *)

let test_null_trace_is_silent () =
  let t = T.null in
  Alcotest.(check bool) "disabled" false (T.enabled t);
  T.emit t (T.Mark { name = "x"; detail = "y" });
  T.count t "c" 1.0;
  T.set_clock t 42.0;
  Alcotest.(check int) "no events" 0 (T.n_events t);
  Alcotest.(check (list (pair string (float 0.0)))) "no counters" [] (T.counters t)

let test_tracing_does_not_change_results () =
  let untraced, _ =
    let suite = Lazy.force suite_4x4_p4 in
    let threads =
      Workload.generate ~seed:3 ~n_threads:8 ~cgra_need:0.875 ~suite ()
    in
    (Os_sim.run { Os_sim.suite; threads; total_pages = 4; mode = Os_sim.Multi }, ())
  in
  let traced, _ =
    traced_run ~seed:3 ~n_threads:8 ~need:0.875 ~mode:Os_sim.Multi ()
  in
  Alcotest.(check bool) "identical result records" true (untraced = traced)

let test_counters_and_spans () =
  let t = T.make () in
  T.count t "b" 2.0;
  T.count t "a" 1.0;
  T.count t "b" 3.0;
  Alcotest.(check (list (pair string (float 0.0)))) "sorted totals"
    [ ("a", 1.0); ("b", 5.0) ]
    (T.counters t);
  (try T.with_span t "s" (fun () -> failwith "boom") with Failure _ -> ());
  match T.events t with
  | [ { T.payload = T.Span_begin { name = "s" }; _ };
      { T.payload = T.Span_end { name = "s" }; _ } ] ->
      ()
  | es -> Alcotest.failf "span not closed on exception (%d events)" (List.length es)

(* ---------- golden determinism ---------- *)

let test_jsonl_golden () =
  let _, ev1 = traced_run ~seed:0 ~n_threads:8 ~need:0.875 ~mode:Os_sim.Multi () in
  let _, ev2 = traced_run ~seed:0 ~n_threads:8 ~need:0.875 ~mode:Os_sim.Multi () in
  let j1 = Export.jsonl ev1 and j2 = Export.jsonl ev2 in
  Alcotest.(check string) "byte-identical across runs" j1 j2;
  let lines = String.split_on_char '\n' j1 in
  Alcotest.(check string) "golden first line"
    "{\"seq\":0,\"t\":0,\"kind\":\"run_begin\",\"mode\":\"multi\",\
     \"total_pages\":4,\"threads\":8,\"policy\":\"halving\",\"reconfig_cost\":0,\
     \"rows\":4,\"mem_ports\":2}"
    (List.hd lines);
  let last =
    List.fold_left (fun acc l -> if l = "" then acc else l) "" lines
  in
  Alcotest.(check bool) "last event is run_end" true
    (contains ~sub:"\"kind\":\"run_end\"" last)

let test_meld_violation_golden () =
  (* a meld rejection is itself byte-stable: exactly one violation mark
     inside the checker's span, with a fixed rendering *)
  let a = arch 4 4 in
  let g =
    Cgra_dfg.Graph.create ~name:"ld"
      ~ops:[ Cgra_dfg.Op.Load { array = "x"; offset = 0; stride = 1 } ]
      ~edges:[]
  in
  let m =
    {
      Cgra_mapper.Mapping.arch = a;
      graph = g;
      ii = 1;
      placements =
        [| Some { Cgra_mapper.Mapping.pe = Coord.make ~row:0 ~col:0; time = 0 } |];
      routes = [];
      paged = false;
    }
  in
  let trace = T.make () in
  (match Cgra_verify.Meld.check_mappings ~trace [ m; m ] with
  | Ok _ -> Alcotest.fail "duplicated resident must be rejected"
  | Error _ -> ());
  Alcotest.(check string) "golden meld rejection"
    "{\"seq\":0,\"t\":0,\"kind\":\"span_begin\",\"name\":\"meld.check\"}\n\
     {\"seq\":1,\"t\":0,\"kind\":\"mark\",\"name\":\"meld.violation\",\
     \"detail\":\"disjoint: residents 0 and 1 both occupy PE (0,0)\"}\n\
     {\"seq\":2,\"t\":0,\"kind\":\"span_end\",\"name\":\"meld.check\"}\n"
    (Export.jsonl (T.events trace))

let test_sched_race_golden () =
  (* the scheduler's race telemetry is byte-stable: the sequential ladder
     for mpeg/paged on 4x4 launches exactly 8 of the 3280 candidates (80
     per II: 16 bus-aware attempts ahead of the 64-attempt legacy replay)
     before bus attempt (1,7) wins at the MII, cancelling the rest, then
     polishes 8x *)
  let a = arch 4 4 in
  let k = Cgra_kernels.Kernels.find_exn "mpeg" in
  let trace = T.make () in
  (match Cgra_mapper.Scheduler.map ~trace Cgra_mapper.Scheduler.Paged a k.graph with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "map: %s" e);
  Alcotest.(check string) "golden race telemetry"
    "{\"seq\":0,\"t\":0,\"kind\":\"span_begin\",\"name\":\"sched.race\"}\n\
     {\"seq\":1,\"t\":0,\"kind\":\"counter\",\"name\":\"sched.race.candidates\",\"value\":3280}\n\
     {\"seq\":2,\"t\":0,\"kind\":\"counter\",\"name\":\"sched.race.launched\",\"value\":8}\n\
     {\"seq\":3,\"t\":0,\"kind\":\"counter\",\"name\":\"sched.race.cancelled\",\"value\":3272}\n\
     {\"seq\":4,\"t\":0,\"kind\":\"counter\",\"name\":\"sched.race.polish\",\"value\":8}\n\
     {\"seq\":5,\"t\":0,\"kind\":\"mark\",\"name\":\"sched.race.winner\",\"detail\":\"ii=1 attempt=7\"}\n\
     {\"seq\":6,\"t\":0,\"kind\":\"span_end\",\"name\":\"sched.race\"}\n"
    (Export.jsonl (T.events trace))

let test_jsonl_lines_parse () =
  let _, events = traced_run ~seed:1 ~n_threads:8 ~need:0.875 ~mode:Os_sim.Multi () in
  List.iteri
    (fun i line ->
      if line <> "" then
        match Json.parse line with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "line %d: %s" (i + 1) e)
    (String.split_on_char '\n' (Export.jsonl events))

(* ---------- Chrome export ---------- *)

let test_chrome_validates_with_kinds () =
  let _, events = traced_run ~seed:0 ~n_threads:8 ~need:0.875 ~mode:Os_sim.Multi () in
  let doc = Export.chrome events in
  match Json.parse doc with
  | Error e -> Alcotest.failf "chrome export is not valid JSON: %s" e
  | Ok v -> (
      match Json.member "traceEvents" v with
      | Some (Json.Arr entries) ->
          let cats =
            List.sort_uniq compare
              (List.filter_map
                 (fun e -> Option.bind (Json.member "cat" e) Json.to_str)
                 entries)
          in
          if List.length cats < 6 then
            Alcotest.failf "only %d event kinds in the Chrome trace: %s"
              (List.length cats) (String.concat ", " cats);
          Alcotest.(check bool) "entries present" true (List.length entries > 50)
      | Some _ | None -> Alcotest.fail "no traceEvents array")

(* ---------- the invariant monitor ---------- *)

let test_monitor_accepts_real_runs () =
  let _, events = traced_run ~seed:2 ~n_threads:8 ~need:0.875 ~mode:Os_sim.Multi () in
  Alcotest.(check (list string)) "clean stream" []
    (Cgra_verify.Os_fuzz.monitor events)

let test_monitor_rejects_duplicate_waiter () =
  let ev seq time payload = { T.seq; time; payload } in
  let stream =
    [
      ev 0 0.0
        (T.Run_begin
           { mode = "multi"; total_pages = 4; n_threads = 2; policy = "halving";
             reconfig_cost = 0.0; rows = 4; mem_ports = 2 });
      ev 1 1.0 (T.Kernel_stall { thread = 7; kernel = "sor"; queue_depth = 1 });
      ev 2 2.0 (T.Kernel_stall { thread = 7; kernel = "sor"; queue_depth = 2 });
    ]
  in
  Alcotest.(check bool) "duplicate waiter caught" true
    (Cgra_verify.Os_fuzz.monitor stream <> [])

let test_monitor_rejects_overlap () =
  let ev seq time payload = { T.seq; time; payload } in
  let grant seq time thread base len =
    ev seq time
      (T.Kernel_grant
         { thread; kernel = "sor"; range = { T.base; len }; shrunk = false;
           cost = 0.0; rate = 4.0 })
  in
  let stream =
    [
      ev 0 0.0
        (T.Run_begin
           { mode = "multi"; total_pages = 4; n_threads = 2; policy = "halving";
             reconfig_cost = 0.0; rows = 4; mem_ports = 2 });
      grant 1 0.0 0 0 3;
      grant 2 1.0 1 2 2;
    ]
  in
  Alcotest.(check bool) "overlapping grants caught" true
    (Cgra_verify.Os_fuzz.monitor stream <> [])

let test_monitor_rejects_bad_occupancy () =
  let ev seq time payload = { T.seq; time; payload } in
  let stream =
    [
      ev 0 0.0
        (T.Run_begin
           { mode = "multi"; total_pages = 4; n_threads = 1; policy = "halving";
             reconfig_cost = 0.0; rows = 4; mem_ports = 2 });
      ev 1 0.0
        (T.Kernel_grant
           { thread = 0; kernel = "sor"; range = { T.base = 0; len = 2 };
             shrunk = false; cost = 0.0; rate = 4.0 });
      ev 2 8.0 (T.Occupancy { thread = 0; pages = 4; elapsed = 8.0 });
    ]
  in
  Alcotest.(check bool) "occupancy/allocation mismatch caught" true
    (Cgra_verify.Os_fuzz.monitor stream <> [])

(* ---------- replay: the exact witness ---------- *)

let check_point ?policy ?reconfig_cost ~seed ~n_threads ~need mode =
  let r, events = traced_run ?policy ?reconfig_cost ~seed ~n_threads ~need ~mode () in
  match
    Cgra_verify.Os_fuzz.monitor events
    @ Cgra_verify.Os_fuzz.replay_check r events
  with
  | [] -> ()
  | es ->
      Alcotest.failf "%d threads, need %g, %s: %s" n_threads need
        (match mode with Os_sim.Single -> "single" | Os_sim.Multi -> "multi")
        (String.concat "; " es)

let test_replay_exact_fig9_grid () =
  List.iter
    (fun need ->
      List.iter
        (fun n_threads ->
          List.iter
            (fun mode -> check_point ~seed:0 ~n_threads ~need mode)
            [ Os_sim.Single; Os_sim.Multi ])
        [ 1; 2; 4; 8; 16 ])
    [ 0.5; 0.75; 0.875 ]

let test_replay_exact_with_reconfig_cost () =
  List.iter
    (fun reconfig_cost ->
      check_point ~reconfig_cost ~seed:0 ~n_threads:8 ~need:0.875 Os_sim.Multi)
    [ 7.0; 250.0 ];
  check_point ~policy:Allocator.Repack_equal ~reconfig_cost:7.0 ~seed:0
    ~n_threads:8 ~need:0.875 Os_sim.Multi

let test_wait_statistics () =
  let r, events = traced_run ~seed:0 ~n_threads:16 ~need:0.875 ~mode:Os_sim.Multi () in
  let ws = Replay.wait_statistics events in
  Alcotest.(check bool) "contended run has waits" true
    (r.Os_sim.stalls > 0 && ws.Replay.n > 0);
  Alcotest.(check bool) "served at most once per stall" true
    (ws.Replay.n <= r.Os_sim.stalls);
  Alcotest.(check bool) "ordered moments" true
    (ws.Replay.mean <= ws.Replay.max && ws.Replay.p95 <= ws.Replay.max)

let test_os_fuzz_corpus () =
  let o = Cgra_verify.Os_fuzz.run ~seeds:(List.init 10 (fun i -> i)) () in
  Alcotest.(check (list string)) "fixed 10-seed corpus is clean" [] o.failures;
  Alcotest.(check int) "two modes per seed" 20 o.runs;
  Alcotest.(check bool) "events were monitored" true (o.events > 1000)

let () =
  Alcotest.run "trace"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "integral floats" `Quick test_json_integral_floats;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
        ] );
      ( "sink",
        [
          Alcotest.test_case "null is silent" `Quick test_null_trace_is_silent;
          Alcotest.test_case "tracing changes nothing" `Quick
            test_tracing_does_not_change_results;
          Alcotest.test_case "counters and spans" `Quick test_counters_and_spans;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
          Alcotest.test_case "meld violation golden" `Quick
            test_meld_violation_golden;
          Alcotest.test_case "sched race golden" `Quick test_sched_race_golden;
          Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_lines_parse;
          Alcotest.test_case "chrome validates, >= 6 kinds" `Quick
            test_chrome_validates_with_kinds;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "accepts real runs" `Quick test_monitor_accepts_real_runs;
          Alcotest.test_case "rejects duplicate waiter" `Quick
            test_monitor_rejects_duplicate_waiter;
          Alcotest.test_case "rejects overlap" `Quick test_monitor_rejects_overlap;
          Alcotest.test_case "rejects bad occupancy" `Quick
            test_monitor_rejects_bad_occupancy;
        ] );
      ( "replay",
        [
          Alcotest.test_case "exact on the fig9 grid" `Quick
            test_replay_exact_fig9_grid;
          Alcotest.test_case "exact with reconfig cost" `Quick
            test_replay_exact_with_reconfig_cost;
          Alcotest.test_case "wait statistics" `Quick test_wait_statistics;
          Alcotest.test_case "os fuzz corpus" `Quick test_os_fuzz_corpus;
        ] );
    ]
